// Randomized differential fuzzing across the whole public surface: many
// random (shape, engine, direction, element type, thread count, policy)
// configurations, each checked against the out-of-place reference.  This
// is the catch-all net behind the targeted suites.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "core/tensor.hpp"
#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

template <typename T>
void fuzz_one(util::xoshiro256& rng) {
  const std::uint64_t m = rng.uniform(1, 260);
  const std::uint64_t n = rng.uniform(1, 260);
  options opts;
  switch (rng.uniform(0, 4)) {
    case 0:
      opts.engine = engine_kind::reference;
      break;
    case 1:
      opts.engine = engine_kind::blocked;
      break;
    case 2:
      opts.engine = engine_kind::skinny;
      break;
    default:
      opts.engine = engine_kind::automatic;
      break;
  }
  opts.strength_reduction = rng.uniform(0, 2) == 0;
  opts.threads = static_cast<int>(rng.uniform(0, 3));
  opts.block_bytes = 32u << rng.uniform(0, 4);  // 32..256
  const auto order = rng.uniform(0, 2) == 0 ? storage_order::row_major
                                            : storage_order::col_major;
  switch (rng.uniform(0, 3)) {
    case 0:
      opts.alg = options::algorithm::automatic;
      break;
    case 1:
      opts.alg = options::algorithm::c2r;
      break;
    default:
      opts.alg = options::algorithm::r2c;
      break;
  }

  std::vector<T> a(m * n);
  for (std::size_t l = 0; l < a.size(); ++l) {
    a[l] = static_cast<T>(l * 2654435761u + 97);
  }
  const auto src = a;
  transpose(a.data(), m, n, order, opts);

  // Model: row-major semantics; column-major input equals row-major n x m.
  const std::uint64_t rm = order == storage_order::row_major ? m : n;
  const std::uint64_t rn = order == storage_order::row_major ? n : m;
  const auto want =
      util::reference_transpose(std::span<const T>(src), rm, rn);
  ASSERT_EQ(util::first_mismatch(std::span<const T>(a),
                                 std::span<const T>(want)),
            -1)
      << m << "x" << n << " engine=" << static_cast<int>(opts.engine)
      << " sr=" << opts.strength_reduction
      << " order=" << (order == storage_order::row_major ? "rm" : "cm")
      << " alg=" << static_cast<int>(opts.alg)
      << " bw=" << opts.block_bytes;
}

TEST(Fuzz, TransposeU32) {
  util::xoshiro256 rng(0xF00D);
  for (int t = 0; t < 400; ++t) {
    fuzz_one<std::uint32_t>(rng);
  }
}

TEST(Fuzz, TransposeU8) {
  util::xoshiro256 rng(0xBEEF);
  for (int t = 0; t < 200; ++t) {
    fuzz_one<std::uint8_t>(rng);
  }
}

TEST(Fuzz, TransposeU64) {
  util::xoshiro256 rng(0xCAFE);
  for (int t = 0; t < 200; ++t) {
    fuzz_one<std::uint64_t>(rng);
  }
}

TEST(Fuzz, RawPermutationsRoundTrip) {
  util::xoshiro256 rng(0xD1CE);
  for (int t = 0; t < 250; ++t) {
    const std::uint64_t m = rng.uniform(1, 300);
    const std::uint64_t n = rng.uniform(1, 300);
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    const auto src = a;
    options opts;
    opts.engine = static_cast<engine_kind>(rng.uniform(0, 4));
    c2r(a.data(), m, n, opts);
    opts.engine = static_cast<engine_kind>(rng.uniform(0, 4));
    r2c(a.data(), m, n, opts);
    ASSERT_EQ(a, src) << m << "x" << n;
  }
}

TEST(Fuzz, TensorPermutationChains) {
  // Random chains of axis permutations tracked against a shadow model of
  // the current extent order.
  util::xoshiro256 rng(0xFACE);
  const axis_perm perms[] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                             {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int t = 0; t < 25; ++t) {
    std::size_t d[3] = {rng.uniform(1, 16), rng.uniform(1, 16),
                        rng.uniform(1, 16)};
    std::vector<std::uint32_t> a(d[0] * d[1] * d[2]);
    for (std::size_t l = 0; l < a.size(); ++l) {
      a[l] = static_cast<std::uint32_t>(l);
    }
    // Shadow: the original (i0, i1, i2) owning each current axis slot.
    int axis_of[3] = {0, 1, 2};
    for (int step = 0; step < 4; ++step) {
      const axis_perm p = perms[rng.uniform(0, 6)];
      permute3(a.data(), d[0], d[1], d[2], p);
      const std::size_t nd[3] = {d[p[0]], d[p[1]], d[p[2]]};
      const int na[3] = {axis_of[p[0]], axis_of[p[1]], axis_of[p[2]]};
      d[0] = nd[0];
      d[1] = nd[1];
      d[2] = nd[2];
      axis_of[0] = na[0];
      axis_of[1] = na[1];
      axis_of[2] = na[2];
    }
    // Verify a sample of entries against the shadow mapping.
    const std::size_t orig[3] = {d[0], d[1], d[2]};
    (void)orig;
    for (int probe = 0; probe < 50; ++probe) {
      const std::size_t i = rng.uniform(0, d[0]);
      const std::size_t j = rng.uniform(0, d[1]);
      const std::size_t k = rng.uniform(0, d[2]);
      // Reconstruct the original coordinates of this cell.
      std::size_t coord[3] = {};
      coord[static_cast<std::size_t>(axis_of[0])] = i;
      coord[static_cast<std::size_t>(axis_of[1])] = j;
      coord[static_cast<std::size_t>(axis_of[2])] = k;
      // Original extents, recovered from the shadow.
      std::size_t od[3] = {};
      od[static_cast<std::size_t>(axis_of[0])] = d[0];
      od[static_cast<std::size_t>(axis_of[1])] = d[1];
      od[static_cast<std::size_t>(axis_of[2])] = d[2];
      const std::uint32_t want = static_cast<std::uint32_t>(
          (coord[0] * od[1] + coord[1]) * od[2] + coord[2]);
      ASSERT_EQ(a[(i * d[1] + j) * d[2] + k], want);
    }
  }
}

}  // namespace
