// Tests for the 3-D in-place axis permutation (core/tensor.hpp): every
// axis order against a brute-force out-of-place model, degenerate
// extents, inverse compositions, and validation.

#include "core/tensor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace {

using namespace inplace;

/// Brute-force model: returns the row-major buffer of the permuted tensor.
std::vector<std::uint32_t> permuted_model(
    const std::vector<std::uint32_t>& in, std::size_t d0, std::size_t d1,
    std::size_t d2, const axis_perm& perm) {
  const std::size_t dims[3] = {d0, d1, d2};
  const std::size_t out_dims[3] = {dims[perm[0]], dims[perm[1]],
                                   dims[perm[2]]};
  std::vector<std::uint32_t> out(in.size());
  for (std::size_t i0 = 0; i0 < d0; ++i0) {
    for (std::size_t i1 = 0; i1 < d1; ++i1) {
      for (std::size_t i2 = 0; i2 < d2; ++i2) {
        const std::size_t idx[3] = {i0, i1, i2};
        const std::size_t a = idx[perm[0]];
        const std::size_t b = idx[perm[1]];
        const std::size_t c = idx[perm[2]];
        out[(a * out_dims[1] + b) * out_dims[2] + c] =
            in[(i0 * d1 + i1) * d2 + i2];
      }
    }
  }
  return out;
}

const axis_perm kAllPerms[] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                               {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};

class TensorPerms : public ::testing::TestWithParam<axis_perm> {};
INSTANTIATE_TEST_SUITE_P(AllOrders, TensorPerms,
                         ::testing::ValuesIn(kAllPerms));

TEST_P(TensorPerms, MatchesBruteForceOnFixedShape) {
  const axis_perm perm = GetParam();
  const std::size_t d0 = 7;
  const std::size_t d1 = 12;
  const std::size_t d2 = 5;
  std::vector<std::uint32_t> a(d0 * d1 * d2);
  for (std::size_t l = 0; l < a.size(); ++l) {
    a[l] = static_cast<std::uint32_t>(l);
  }
  const auto want = permuted_model(a, d0, d1, d2, perm);
  permute3(a.data(), d0, d1, d2, perm);
  EXPECT_EQ(a, want);
}

TEST_P(TensorPerms, MatchesBruteForceOnRandomShapes) {
  const axis_perm perm = GetParam();
  util::xoshiro256 rng(perm[0] * 9 + perm[1] * 3 + perm[2]);
  for (int t = 0; t < 15; ++t) {
    const std::size_t d0 = rng.uniform(1, 24);
    const std::size_t d1 = rng.uniform(1, 24);
    const std::size_t d2 = rng.uniform(1, 24);
    std::vector<std::uint32_t> a(d0 * d1 * d2);
    for (std::size_t l = 0; l < a.size(); ++l) {
      a[l] = static_cast<std::uint32_t>(l * 2654435761u);
    }
    const auto want = permuted_model(a, d0, d1, d2, perm);
    permute3(a.data(), d0, d1, d2, perm);
    ASSERT_EQ(a, want) << d0 << "x" << d1 << "x" << d2;
  }
}

TEST(Tensor, InversePermRoundTrips) {
  // Applying a permutation and then its inverse (on the permuted extents)
  // restores the original buffer.
  const std::size_t d[3] = {11, 8, 13};
  util::xoshiro256 rng(5);
  for (const auto& perm : kAllPerms) {
    axis_perm inv{};
    for (int k = 0; k < 3; ++k) {
      inv[perm[k]] = k;
    }
    std::vector<std::uint32_t> a(d[0] * d[1] * d[2]);
    for (auto& v : a) {
      v = static_cast<std::uint32_t>(rng());
    }
    const auto src = a;
    permute3(a.data(), d[0], d[1], d[2], perm);
    permute3(a.data(), d[perm[0]], d[perm[1]], d[perm[2]], inv);
    ASSERT_EQ(a, src) << perm[0] << perm[1] << perm[2];
  }
}

TEST(Tensor, DegenerateExtents) {
  std::vector<std::uint32_t> a = {1, 2, 3, 4, 5, 6};
  auto b = a;
  permute3(a.data(), 1, 2, 3, {1, 2, 0});  // leading singleton
  const auto want = permuted_model(b, 1, 2, 3, {1, 2, 0});
  EXPECT_EQ(a, want);
  EXPECT_NO_THROW(permute3<std::uint32_t>(nullptr, 0, 3, 3, {2, 1, 0}));
}

TEST(Tensor, BigSlabSmoke) {
  // A realistic attention-shaped tensor: [batch][seq][head_dim].
  const std::size_t d0 = 6;
  const std::size_t d1 = 128;
  const std::size_t d2 = 64;
  std::vector<std::uint32_t> a(d0 * d1 * d2);
  for (std::size_t l = 0; l < a.size(); ++l) {
    a[l] = static_cast<std::uint32_t>(l);
  }
  const auto want = permuted_model(a, d0, d1, d2, {2, 1, 0});
  permute3(a.data(), d0, d1, d2, {2, 1, 0});
  EXPECT_EQ(a, want);
}

TEST(Tensor, Validation) {
  std::vector<std::uint32_t> a(8);
  EXPECT_THROW(permute3(a.data(), 2, 2, 2, {0, 1, 3}), error);
  EXPECT_THROW(permute3(a.data(), 2, 2, 2, {0, 1, 1}), error);
  EXPECT_THROW(permute3(a.data(), 2, 2, 2, {-1, 1, 2}), error);
  EXPECT_THROW(permute3<std::uint32_t>(nullptr, 2, 2, 2, {2, 1, 0}),
               error);
}

TEST(Tensor, OverflowingExtentsThrowInsteadOfWrapping) {
  // Regression: permute3 and tensor_view used to compute d0*d1 (and
  // d0*d1*d2) before any overflow check, so crafted extents wrapped
  // size_t and the wrapped value — often 0, i.e. "empty tensor" — passed
  // validation silently.  Both now route through the N-D extent funnel,
  // which checks every partial product and the byte extent.
  std::vector<std::uint32_t> a(8);
  const std::size_t big = std::size_t{1} << 32;  // big * big wraps to 0
  EXPECT_THROW(permute3(a.data(), big, big, 2, {2, 1, 0}), error);
  EXPECT_THROW(permute3(a.data(), big, 2, big, {1, 0, 2}), error);
  EXPECT_THROW(permute3(a.data(), 2, big, big, {0, 2, 1}), error);
  // The element count fits size_t but the byte extent wraps.
  EXPECT_THROW(permute3(a.data(), std::size_t{1} << 62, 2, 2, {2, 1, 0}),
               error);
  EXPECT_THROW(tensor_view<std::uint32_t>(a.data(), big, big, 2), error);
  EXPECT_THROW(
      tensor_view<std::uint32_t>(a.data(), std::size_t{1} << 62, 2, 2),
      error);
}

}  // namespace
