// Unit tests for the number-theoretic helpers (core/gcdmath.hpp): the
// extended Euclidean algorithm, modular multiplicative inverses (used by
// Eqs. 31 and 34), and the (c, a, b) decomposition constants.

#include "core/gcdmath.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "util/rng.hpp"

namespace {

using inplace::decompose_gcd;
using inplace::extended_gcd;
using inplace::mmi;

TEST(ExtendedGcd, MatchesStdGcdOnSmallPairs) {
  for (std::uint64_t x = 0; x <= 64; ++x) {
    for (std::uint64_t y = 0; y <= 64; ++y) {
      if (x == 0 && y == 0) {
        continue;
      }
      EXPECT_EQ(extended_gcd(x, y).g, std::gcd(x, y)) << x << "," << y;
    }
  }
}

TEST(ExtendedGcd, BezoutIdentityHolds) {
  inplace::util::xoshiro256 rng(1);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t x = rng.uniform(1, 1u << 20);
    const std::uint64_t y = rng.uniform(1, 1u << 20);
    const auto e = extended_gcd(x, y);
    const auto lhs = static_cast<std::int64_t>(e.g);
    EXPECT_EQ(lhs, e.s * static_cast<std::int64_t>(x) +
                       e.t * static_cast<std::int64_t>(y));
  }
}

TEST(ExtendedGcd, HandlesZeroOperand) {
  EXPECT_EQ(extended_gcd(0, 7).g, 7u);
  EXPECT_EQ(extended_gcd(7, 0).g, 7u);
}

TEST(Mmi, InverseOfOneIsZeroByConvention) {
  EXPECT_EQ(mmi(5, 1), 0u);
  EXPECT_EQ(mmi(1, 1), 0u);
}

TEST(Mmi, ThrowsOnZeroModulus) {
  EXPECT_THROW((void)mmi(3, 0), std::exception);
}

TEST(Mmi, ThrowsWhenNotCoprime) {
  EXPECT_THROW((void)mmi(4, 6), std::invalid_argument);
  EXPECT_THROW((void)mmi(10, 5), std::invalid_argument);
}

TEST(Mmi, ProductIsOneModulo) {
  inplace::util::xoshiro256 rng(2);
  int checked = 0;
  while (checked < 2000) {
    const std::uint64_t y = rng.uniform(2, 1u << 16);
    const std::uint64_t x = rng.uniform(1, 1u << 16);
    if (std::gcd(x, y) != 1) {
      continue;
    }
    const std::uint64_t inv = mmi(x, y);
    ASSERT_LT(inv, y);
    EXPECT_EQ((x % y) * inv % y, 1u) << x << " mod " << y;
    ++checked;
  }
}

TEST(Mmi, ExhaustiveSmallModuli) {
  for (std::uint64_t y = 2; y <= 97; ++y) {
    for (std::uint64_t x = 1; x < y; ++x) {
      if (std::gcd(x, y) != 1) {
        continue;
      }
      EXPECT_EQ(x * mmi(x, y) % y, 1u);
    }
  }
}

TEST(DecomposeGcd, PaperExamples) {
  // The 3x8 example of Figure 1: c = 1 (coprime, no pre-rotation).
  auto g = decompose_gcd(3, 8);
  EXPECT_EQ(g.c, 1u);
  EXPECT_EQ(g.a, 3u);
  EXPECT_EQ(g.b, 8u);
  // The 4x8 example of Figure 2: c = 4.
  g = decompose_gcd(4, 8);
  EXPECT_EQ(g.c, 4u);
  EXPECT_EQ(g.a, 1u);
  EXPECT_EQ(g.b, 2u);
}

TEST(DecomposeGcd, ProductsRecoverExtents) {
  inplace::util::xoshiro256 rng(3);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t m = rng.uniform(1, 5000);
    const std::uint64_t n = rng.uniform(1, 5000);
    const auto g = decompose_gcd(m, n);
    EXPECT_EQ(g.a * g.c, m);
    EXPECT_EQ(g.b * g.c, n);
    EXPECT_EQ(std::gcd(g.a, g.b), 1u);
  }
}

}  // namespace
