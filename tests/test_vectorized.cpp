// Tests for the register-tile staged AoS<->SoA converters
// (simd/vectorized.hpp): agreement with the scalar kernels for every
// field count in the dispatch table, tail handling for counts that are
// not lane multiples, round trips, and the fallback path.
//
// The second half sweeps the hot-path kernel dispatch layer
// (cpu/kernels/) at the transpose level: every available tier must be
// bit-exact against the out-of-place reference for every small shape and
// element width, including with non-temporal streaming forced on, and
// the INPLACE_FORCE_KERNEL_TIER override must steer planning.

#include "simd/vectorized.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "cpu/kernels/kernel_set.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

class VectorizedFields : public ::testing::TestWithParam<unsigned> {};
INSTANTIATE_TEST_SUITE_P(AllFieldCounts, VectorizedFields,
                         ::testing::Range(1u, 33u));

TEST_P(VectorizedFields, AosToSoaMatchesScalar) {
  const unsigned fields = GetParam();
  // Count deliberately not a multiple of the lane width (tail path).
  const std::size_t count = 16 * 13 + 7;
  std::vector<float> aos(count * fields);
  for (std::size_t l = 0; l < aos.size(); ++l) {
    aos[l] = static_cast<float>(l);
  }
  std::vector<float> got(aos.size());
  std::vector<float> want(aos.size());
  simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
  simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
  EXPECT_EQ(got, want);
}

TEST_P(VectorizedFields, SoaToAosMatchesScalar) {
  const unsigned fields = GetParam();
  const std::size_t count = 16 * 9 + 3;
  std::vector<std::uint32_t> soa(count * fields);
  for (std::size_t l = 0; l < soa.size(); ++l) {
    soa[l] = static_cast<std::uint32_t>(l * 2654435761u);
  }
  std::vector<std::uint32_t> got(soa.size());
  std::vector<std::uint32_t> want(soa.size());
  simd::soa_to_aos_vectorized(got.data(), soa.data(), count, fields);
  simd::soa_to_aos_direct(want.data(), soa.data(), count, fields);
  EXPECT_EQ(got, want);
}

TEST_P(VectorizedFields, RoundTrip) {
  const unsigned fields = GetParam();
  const std::size_t count = 16 * 5 + 11;
  std::vector<double> aos(count * fields);
  for (std::size_t l = 0; l < aos.size(); ++l) {
    aos[l] = static_cast<double>(l) * 0.5;
  }
  std::vector<double> soa(aos.size());
  std::vector<double> back(aos.size());
  simd::aos_to_soa_vectorized(soa.data(), aos.data(), count, fields);
  simd::soa_to_aos_vectorized(back.data(), soa.data(), count, fields);
  EXPECT_EQ(back, aos);
}

TEST(Vectorized, LargeFieldCountsFallBack) {
  const std::size_t fields = 40;  // > vectorized_max_fields
  const std::size_t count = 100;
  std::vector<float> aos(count * fields, 1.5f);
  for (std::size_t l = 0; l < aos.size(); ++l) {
    aos[l] = static_cast<float>(l);
  }
  std::vector<float> got(aos.size());
  std::vector<float> want(aos.size());
  simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
  simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
  EXPECT_EQ(got, want);
}

TEST(Vectorized, DegenerateArgumentsAreNoOps) {
  float x = 3.0f;
  EXPECT_NO_THROW(simd::aos_to_soa_vectorized(&x, &x, 0, 4));
  EXPECT_NO_THROW(simd::soa_to_aos_vectorized(&x, &x, 5, 0));
}

TEST(Vectorized, TinyCountsUseOnlyTheTail) {
  for (std::size_t count : {1u, 2u, 15u}) {  // below one lane block
    const unsigned fields = 5;
    std::vector<int> aos(count * fields);
    for (std::size_t l = 0; l < aos.size(); ++l) {
      aos[l] = static_cast<int>(l);
    }
    std::vector<int> got(aos.size());
    std::vector<int> want(aos.size());
    simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
    simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
    ASSERT_EQ(got, want) << count;
  }
}

TEST(Vectorized, RandomizedAgainstScalar) {
  util::xoshiro256 rng(88);
  for (int t = 0; t < 20; ++t) {
    const std::size_t fields = rng.uniform(2, 33);
    const std::size_t count = rng.uniform(1, 5000);
    std::vector<std::uint16_t> aos(count * fields);
    for (auto& v : aos) {
      v = static_cast<std::uint16_t>(rng());
    }
    std::vector<std::uint16_t> got(aos.size());
    std::vector<std::uint16_t> want(aos.size());
    simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
    simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
    ASSERT_EQ(got, want) << count << "x" << fields;
  }
}

// --- dispatch-tier transpose sweep (cpu/kernels/) ---------------------------

using kernels::tier;

/// Restores (or removes) an environment variable when the test exits.
class env_guard {
 public:
  env_guard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~env_guard() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  env_guard(const env_guard&) = delete;
  env_guard& operator=(const env_guard&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

std::vector<tier> available_tiers() {
  std::vector<tier> out;
  for (tier t : {tier::scalar, tier::avx2, tier::avx512, tier::neon}) {
    if (kernels::tier_available(t)) {
      out.push_back(t);
    }
  }
  return out;
}

template <typename T>
void fill_unique(std::vector<T>& v) {
  for (std::size_t l = 0; l < v.size(); ++l) {
    v[l] = static_cast<T>(l);
  }
}

void fill_unique(std::vector<util::vec4f>& v) {
  for (std::size_t l = 0; l < v.size(); ++l) {
    const auto f = static_cast<float>(l);
    v[l] = util::vec4f{f, f + 0.25f, f + 0.5f, f + 0.75f};
  }
}

/// Transposes every m x n with m, n <= 64 through every available
/// kernel tier, in both planning directions, and demands bit-exact
/// agreement with the out-of-place reference.  Exhaustive by design: the
/// dispatch boundaries (segment length vs. row_pass_min_segment, vector
/// width vs. tail, gather-capable vs. byte-width elements) all fall
/// inside this range.
template <typename T>
void exhaustive_tier_sweep() {
  // The row-pass affine kernels normally wait for the scratch line to
  // spill L2; force them on so the sweep exercises that path too.
  const env_guard row_guard("INPLACE_ROW_KERNEL_MIN_LINE", "0");
  for (const tier t : available_tiers()) {
    for (const options::algorithm alg :
         {options::algorithm::c2r, options::algorithm::r2c}) {
      options opts;
      opts.alg = alg;
      opts.kernel = t;
      for (std::size_t m = 1; m <= 64; ++m) {
        for (std::size_t n = 1; n <= 64; ++n) {
          std::vector<T> a(m * n);
          fill_unique(a);
          const std::vector<T> want = util::reference_transpose(
              std::span<const T>(a), m, n);
          transposer<T> tr(m, n, storage_order::row_major, opts);
          ASSERT_EQ(tr.plan().ktier, t)
              << "plan did not record the forced tier for " << m << "x" << n;
          tr(a.data());
          ASSERT_EQ(-1, util::first_mismatch(std::span<const T>(a),
                                             std::span<const T>(want)))
              << kernels::tier_name(t) << " "
              << (alg == options::algorithm::c2r ? "c2r" : "r2c") << " "
              << m << "x" << n << " elem=" << sizeof(T);
        }
      }
    }
  }
}

TEST(KernelTierSweep, Width1) { exhaustive_tier_sweep<std::uint8_t>(); }
TEST(KernelTierSweep, Width2) { exhaustive_tier_sweep<std::uint16_t>(); }
TEST(KernelTierSweep, Width4) { exhaustive_tier_sweep<std::uint32_t>(); }
TEST(KernelTierSweep, Width8) { exhaustive_tier_sweep<std::uint64_t>(); }
TEST(KernelTierSweep, Width16) { exhaustive_tier_sweep<util::vec4f>(); }

/// Forcing the streaming threshold to zero makes every plan take the
/// non-temporal store paths (copy-backs, coarse rotation moves, fine
/// rotation gathers), which normally need a >L3 working set; shapes here
/// are chosen to hit skinny and blocked engines, gcd > 1 and coprime.
template <typename T>
void streaming_sweep() {
  const env_guard guard("INPLACE_NT_THRESHOLD", "0");
  const env_guard row_guard("INPLACE_ROW_KERNEL_MIN_LINE", "0");
  const struct {
    std::size_t m, n;
  } shapes[] = {{97, 89}, {128, 96}, {211, 199}, {64, 64},
                {63, 65}, {3, 500}, {500, 3},   {256, 64}};
  for (const tier t : available_tiers()) {
    options opts;
    opts.kernel = t;
    for (const auto& s : shapes) {
      std::vector<T> a(s.m * s.n);
      fill_unique(a);
      const std::vector<T> want = util::reference_transpose(
          std::span<const T>(a), s.m, s.n);
      transposer<T> tr(s.m, s.n, storage_order::row_major, opts);
      if (t == tier::avx2 || t == tier::avx512) {
        ASSERT_TRUE(tr.plan().streaming_stores)
            << "zero threshold must enable streaming on "
            << kernels::tier_name(t);
      } else {
        ASSERT_FALSE(tr.plan().streaming_stores)
            << kernels::tier_name(t) << " has no NT stores";
      }
      tr(a.data());
      ASSERT_EQ(-1, util::first_mismatch(std::span<const T>(a),
                                         std::span<const T>(want)))
          << kernels::tier_name(t) << " streaming " << s.m << "x" << s.n
          << " elem=" << sizeof(T);
    }
  }
}

TEST(KernelTierSweep, StreamingStoresForcedOnWidth4) {
  streaming_sweep<std::uint32_t>();
}
TEST(KernelTierSweep, StreamingStoresForcedOnWidth8) {
  streaming_sweep<std::uint64_t>();
}
TEST(KernelTierSweep, StreamingStoresForcedOnWidth16) {
  streaming_sweep<util::vec4f>();
}

TEST(KernelTierSweep, EnvOverrideSteersPlanning) {
  // Fresh transposer instances (not the default_context cache): the env
  // override applies at plan time and is deliberately not part of the
  // context cache key, so cached plans must not be consulted here.
  const std::size_t m = 96;
  const std::size_t n = 80;
  {
    const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "scalar");
    options opts;  // kernel stays automatic; the env must win
    transposer<std::uint32_t> tr(m, n, storage_order::row_major, opts);
    EXPECT_EQ(tr.plan().ktier, tier::scalar);
    std::vector<std::uint32_t> a(m * n);
    fill_unique(a);
    const auto want =
        util::reference_transpose(std::span<const std::uint32_t>(a), m, n);
    tr(a.data());
    EXPECT_EQ(-1, util::first_mismatch(std::span<const std::uint32_t>(a),
                                       std::span<const std::uint32_t>(want)));
  }
  {
    const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "native");
    options opts;
    opts.kernel = tier::scalar;  // the env overrides even explicit requests
    transposer<std::uint32_t> tr(m, n, storage_order::row_major, opts);
    EXPECT_EQ(tr.plan().ktier, kernels::native_tier());
  }
  {
    const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "not-an-isa");
    options opts;
    opts.kernel = tier::scalar;
    transposer<std::uint32_t> tr(m, n, storage_order::row_major, opts);
    EXPECT_EQ(tr.plan().ktier, tier::scalar) << "unknown values are ignored";
  }
  {
    // Bare "inreg": native tier plus the forced in-register tile path.
    // 96x8 f32 is tile-eligible on every SIMD tier (96 = 8*12 = 16*6,
    // n = 8 <= max_regs); on a scalar-only host no tier implements the
    // tile and the plan must quietly stay un-tiled.
    const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "inreg");
    options opts;
    opts.kernel = tier::scalar;  // env overrides explicit requests
    transposer<std::uint32_t> tr(96, 8, storage_order::row_major, opts);
    EXPECT_EQ(tr.plan().ktier, kernels::native_tier());
    const auto& ks = kernels::set_for(tr.plan().ktier);
    if (kernels::tile_lanes<std::uint32_t>(ks) >= 2) {
      EXPECT_EQ(tr.plan().tile_block, kernels::tile_lanes<std::uint32_t>(ks));
    } else {
      EXPECT_EQ(tr.plan().tile_block, 0u);
    }
  }
}

// --- forced in-register tile sweep (cpu/kernels/tile_inreg_*) ---------------

/// Mirror of plan.cpp's tile-eligibility gate with the profitability
/// condition dropped (exactly what a forced "<tier>-inreg" plan uses):
/// skinny engine resolution, 4/8-byte elements, a tier that implements
/// the tile at this width, lane-divisible m, and n within one register
/// file.  Keeping the predicate in sync with the planner is the point —
/// the sweep asserts engagement *exactly* where the gate says.
template <typename T>
bool tile_gate_forced(tier t, std::size_t m, std::size_t n) {
  if (sizeof(T) != 4 && sizeof(T) != 8) {
    return false;
  }
  if (n > skinny_col_limit || m <= n) {
    return false;  // automatic engine resolution picks blocked
  }
  const kernels::kernel_set& ks = kernels::set_for(t);
  const std::size_t lanes = kernels::tile_lanes<T>(ks);
  const std::size_t max_regs = kernels::tile_max_regs<T>(ks);
  return lanes >= 2 && n >= 2 && n <= max_regs && m % lanes == 0;
}

/// Transposes every m x n with m, n <= 64 under INPLACE_FORCE_KERNEL_TIER
/// = "<tier>-inreg" for every available tier: the plan must engage the
/// in-register tile exactly on the mirrored gate predicate, and every
/// shape — tiled or not — must stay bit-exact against the out-of-place
/// reference in both planning directions.
template <typename T>
void forced_inreg_sweep() {
  for (const tier t : available_tiers()) {
    const std::string forced = std::string(kernels::tier_name(t)) + "-inreg";
    const env_guard guard("INPLACE_FORCE_KERNEL_TIER", forced.c_str());
    for (const options::algorithm alg :
         {options::algorithm::c2r, options::algorithm::r2c}) {
      options opts;
      opts.alg = alg;
      for (std::size_t m = 1; m <= 64; ++m) {
        for (std::size_t n = 1; n <= 64; ++n) {
          std::vector<T> a(m * n);
          fill_unique(a);
          const std::vector<T> want =
              util::reference_transpose(std::span<const T>(a), m, n);
          transposer<T> tr(m, n, storage_order::row_major, opts);
          ASSERT_EQ(tr.plan().ktier, t)
              << forced << " did not pin the tier for " << m << "x" << n;
          // R2C plans the dual problem with swapped extents (Theorem 2);
          // the gate sees the directed shape, so mirror it on that.
          const bool c2r = alg == options::algorithm::c2r;
          const bool want_tile =
              tile_gate_forced<T>(t, c2r ? m : n, c2r ? n : m);
          ASSERT_EQ(tr.plan().tile_block != 0, want_tile)
              << forced << " tile engagement mismatch at " << m << "x" << n
              << " elem=" << sizeof(T);
          tr(a.data());
          ASSERT_EQ(-1, util::first_mismatch(std::span<const T>(a),
                                             std::span<const T>(want)))
              << forced << " "
              << (alg == options::algorithm::c2r ? "c2r" : "r2c") << " "
              << m << "x" << n << " elem=" << sizeof(T)
              << (want_tile ? " (tiled)" : " (untiled)");
        }
      }
    }
  }
}

TEST(KernelTierSweep, ForcedInRegisterWidth4) {
  forced_inreg_sweep<std::uint32_t>();
}
TEST(KernelTierSweep, ForcedInRegisterWidth8) {
  forced_inreg_sweep<std::uint64_t>();
}

}  // namespace
