// Tests for the register-tile staged AoS<->SoA converters
// (simd/vectorized.hpp): agreement with the scalar kernels for every
// field count in the dispatch table, tail handling for counts that are
// not lane multiples, round trips, and the fallback path.

#include "simd/vectorized.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace {

using namespace inplace;

class VectorizedFields : public ::testing::TestWithParam<unsigned> {};
INSTANTIATE_TEST_SUITE_P(AllFieldCounts, VectorizedFields,
                         ::testing::Range(1u, 33u));

TEST_P(VectorizedFields, AosToSoaMatchesScalar) {
  const unsigned fields = GetParam();
  // Count deliberately not a multiple of the lane width (tail path).
  const std::size_t count = 16 * 13 + 7;
  std::vector<float> aos(count * fields);
  for (std::size_t l = 0; l < aos.size(); ++l) {
    aos[l] = static_cast<float>(l);
  }
  std::vector<float> got(aos.size());
  std::vector<float> want(aos.size());
  simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
  simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
  EXPECT_EQ(got, want);
}

TEST_P(VectorizedFields, SoaToAosMatchesScalar) {
  const unsigned fields = GetParam();
  const std::size_t count = 16 * 9 + 3;
  std::vector<std::uint32_t> soa(count * fields);
  for (std::size_t l = 0; l < soa.size(); ++l) {
    soa[l] = static_cast<std::uint32_t>(l * 2654435761u);
  }
  std::vector<std::uint32_t> got(soa.size());
  std::vector<std::uint32_t> want(soa.size());
  simd::soa_to_aos_vectorized(got.data(), soa.data(), count, fields);
  simd::soa_to_aos_direct(want.data(), soa.data(), count, fields);
  EXPECT_EQ(got, want);
}

TEST_P(VectorizedFields, RoundTrip) {
  const unsigned fields = GetParam();
  const std::size_t count = 16 * 5 + 11;
  std::vector<double> aos(count * fields);
  for (std::size_t l = 0; l < aos.size(); ++l) {
    aos[l] = static_cast<double>(l) * 0.5;
  }
  std::vector<double> soa(aos.size());
  std::vector<double> back(aos.size());
  simd::aos_to_soa_vectorized(soa.data(), aos.data(), count, fields);
  simd::soa_to_aos_vectorized(back.data(), soa.data(), count, fields);
  EXPECT_EQ(back, aos);
}

TEST(Vectorized, LargeFieldCountsFallBack) {
  const std::size_t fields = 40;  // > vectorized_max_fields
  const std::size_t count = 100;
  std::vector<float> aos(count * fields, 1.5f);
  for (std::size_t l = 0; l < aos.size(); ++l) {
    aos[l] = static_cast<float>(l);
  }
  std::vector<float> got(aos.size());
  std::vector<float> want(aos.size());
  simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
  simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
  EXPECT_EQ(got, want);
}

TEST(Vectorized, DegenerateArgumentsAreNoOps) {
  float x = 3.0f;
  EXPECT_NO_THROW(simd::aos_to_soa_vectorized(&x, &x, 0, 4));
  EXPECT_NO_THROW(simd::soa_to_aos_vectorized(&x, &x, 5, 0));
}

TEST(Vectorized, TinyCountsUseOnlyTheTail) {
  for (std::size_t count : {1u, 2u, 15u}) {  // below one lane block
    const unsigned fields = 5;
    std::vector<int> aos(count * fields);
    for (std::size_t l = 0; l < aos.size(); ++l) {
      aos[l] = static_cast<int>(l);
    }
    std::vector<int> got(aos.size());
    std::vector<int> want(aos.size());
    simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
    simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
    ASSERT_EQ(got, want) << count;
  }
}

TEST(Vectorized, RandomizedAgainstScalar) {
  util::xoshiro256 rng(88);
  for (int t = 0; t < 20; ++t) {
    const std::size_t fields = rng.uniform(2, 33);
    const std::size_t count = rng.uniform(1, 5000);
    std::vector<std::uint16_t> aos(count * fields);
    for (auto& v : aos) {
      v = static_cast<std::uint16_t>(rng());
    }
    std::vector<std::uint16_t> got(aos.size());
    std::vector<std::uint16_t> want(aos.size());
    simd::aos_to_soa_vectorized(got.data(), aos.data(), count, fields);
    simd::aos_to_soa_direct(want.data(), aos.data(), count, fields);
    ASSERT_EQ(got, want) << count << "x" << fields;
  }
}

}  // namespace
