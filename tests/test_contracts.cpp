// Checked-mode contract tests.  This TU compiles with
// INPLACE_ENABLE_CHECKS=1 (see tests/CMakeLists.txt), so the
// INPLACE_REQUIRE/INPLACE_CHECK/INPLACE_ENSURE annotations in the headers
// are live here: the tests verify both that correct executions pass every
// contract and that corrupted index maps, undersized scratch and
// out-of-range accesses fail loudly with contract_violation.

#include "core/contracts.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "core/equations.hpp"
#include "core/executor.hpp"
#include "core/permute.hpp"
#include "core/rotate.hpp"
#include "core/tensor.hpp"
#include "util/aligned.hpp"
#include "core/transpose.hpp"
#include "util/matrix.hpp"

namespace {

using inplace::contract_violation;

static_assert(INPLACE_CHECKS_ENABLED == 1,
              "test_contracts must build with INPLACE_ENABLE_CHECKS");

// --- the macro layer itself --------------------------------------------------

TEST(Contracts, PassingContractIsSilent) {
  EXPECT_NO_THROW(INPLACE_REQUIRE(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(INPLACE_CHECK(true, "trivially true"));
  EXPECT_NO_THROW(INPLACE_ENSURE(2 > 1, "ordering"));
}

TEST(Contracts, FailingContractThrowsWithDiagnostics) {
  try {
    INPLACE_CHECK(1 == 2, "the message callers grep for");
    FAIL() << "contract did not fire";
  } catch (const contract_violation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message callers grep for"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
  }
}

TEST(Contracts, KindsAreDistinguished) {
  try {
    INPLACE_REQUIRE(false, "msg");
    FAIL();
  } catch (const contract_violation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
  try {
    INPLACE_ENSURE(false, "msg");
    FAIL();
  } catch (const contract_violation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

// --- shuffle primitives: bijectivity postconditions --------------------------

TEST(CheckedShuffles, CorrectShufflePassesAllContracts) {
  // A full checked transposition across engines: every shuffle's
  // visited-once postcondition holds on correct index math.
  for (const auto engine : {inplace::engine_kind::reference,
                            inplace::engine_kind::blocked,
                            inplace::engine_kind::skinny}) {
    inplace::options opts;
    opts.engine = engine;
    const std::size_t rows = engine == inplace::engine_kind::skinny ? 37 : 24;
    const std::size_t cols = engine == inplace::engine_kind::skinny ? 5 : 18;
    auto a = inplace::util::iota_matrix<std::uint32_t>(rows, cols);
    const auto want = inplace::util::reference_transpose(
        std::span<const std::uint32_t>(a), rows, cols);
    EXPECT_NO_THROW(inplace::transpose(a.data(), rows, cols,
                                       inplace::storage_order::row_major,
                                       opts));
    EXPECT_EQ(a, want);
  }
}

TEST(CheckedShuffles, ScatterCollisionIsCaught) {
  std::vector<int> row(8);
  std::iota(row.begin(), row.end(), 0);
  inplace::util::aligned_vector<int> tmp(8);
  // Maps both j=2 and j=5 to slot 1: not a bijection.
  EXPECT_THROW(inplace::detail::row_scatter_inplace(
                   row.data(), 8, tmp.data(),
                   [](std::uint64_t j) { return j == 5 ? 1ull : (j == 2 ? 1ull : j); }),
               contract_violation);
}

TEST(CheckedShuffles, GatherOutOfRangeIsCaught) {
  std::vector<int> row(8);
  inplace::util::aligned_vector<int> tmp(8);
  EXPECT_THROW(inplace::detail::row_gather_inplace(
                   row.data(), 8, tmp.data(),
                   [](std::uint64_t j) { return j + 1; }),  // j=7 -> 8
               contract_violation);
}

TEST(CheckedShuffles, ColumnShuffleDuplicateRowIsCaught) {
  std::vector<int> a(6 * 3);
  inplace::util::aligned_vector<int> tmp(6);
  EXPECT_THROW(inplace::detail::column_gather_inplace(
                   a.data(), 6, 3, 0, tmp.data(),
                   [](std::uint64_t i) { return i / 2; }),  // 0,0,1,1,2,2
               contract_violation);
}

TEST(CheckedShuffles, NonBijectivePermutationIsCaughtInCycleWalk) {
  std::vector<std::uint8_t> visited(6);
  std::vector<std::uint64_t> starts;
  // 0 -> 1 -> 2 -> 1 merges two cycles; the walk would never return to 0.
  EXPECT_THROW(inplace::detail::find_cycles(
                   6,
                   [](std::uint64_t i) { return i == 0 ? 1ull : (i == 1 ? 2ull : 1ull); },
                   visited, starts),
               contract_violation);
}

// --- corrupted index math through a full engine ------------------------------

TEST(CheckedEngines, SeededIndexBugFailsLoudly) {
  // A modulus typo in Eq. 24 (reducing mod m instead of mod n) collapses
  // whole blocks of a row onto the same slot: the shuffle's visited-once
  // postcondition must trip rather than silently corrupt the buffer.
  // (The subtler wrap off-by-one that permcheck --seed-bug=row plants
  // keeps each row a permutation and is only caught by the algebraic
  // mutual-inverse checks — see test_permcheck.cpp.)
  const std::uint64_t m = 6, n = 4;
  inplace::transpose_math<inplace::fast_divmod> mm(m, n);
  auto a = inplace::util::iota_matrix<std::uint32_t>(m, n);
  inplace::detail::workspace<std::uint32_t> ws;
  ws.reserve(m, n, 4);
  auto buggy_d_prime = [&](std::uint64_t i, std::uint64_t j) {
    std::uint64_t u = i + j / mm.b;
    if (u >= m) {
      u -= m;
    }
    return (u + j * m) % m;  // BUG: Eq. 24 reduces mod n, not mod m
  };
  bool caught = false;
  try {
    for (std::uint64_t i = 0; i < m; ++i) {
      inplace::detail::row_scatter_inplace(
          a.data() + i * n, n, ws.line.data(),
          [&](std::uint64_t j) { return buggy_d_prime(i, j); });
    }
  } catch (const contract_violation& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("Eq. 24"), std::string::npos);
  }
  EXPECT_TRUE(caught) << "seeded Eq. 24 bug survived the checked shuffle";
}

// --- planner / executor preconditions ---------------------------------------

TEST(CheckedExecutor, TransposerChecksPass) {
  inplace::transposer<float> tr(30, 20);
  std::vector<float> a(30 * 20);
  inplace::util::fill_iota(std::span<float>(a));
  EXPECT_NO_THROW(tr(a.data()));
  EXPECT_THROW(tr(nullptr), contract_violation);
}

TEST(CheckedExecutor, PlanPostconditionResolvesAutomatic) {
  // make_plan's INPLACE_ENSURE postcondition guarantees a concrete
  // engine even when the caller asks for automatic.
  inplace::options opts;
  opts.engine = inplace::engine_kind::automatic;
  const auto plan = inplace::make_plan_for_shape(
      300, 200, inplace::storage_order::row_major, opts, sizeof(float));
  EXPECT_NE(plan.engine, inplace::engine_kind::automatic);
}

TEST(CheckedExecutor, ForgedAutomaticPlanTripsContract) {
  // Regression: an unresolved engine_kind::automatic plan used to fall
  // through to the blocked engine silently.  In this checked TU the
  // dispatch contract fires before the release-mode throw.
  inplace::transpose_plan forged;
  forged.m = 8;
  forged.n = 8;
  forged.engine = inplace::engine_kind::automatic;
  std::vector<float> buf(64, 1.0f);
  EXPECT_THROW(inplace::detail::execute_plan(buf.data(), forged),
               contract_violation);
}

TEST(CheckedExecutor, BatchedOverflowPrecondition) {
  // The byte/element overflow validation throws inplace::error (public
  // API surface) even in checked mode, before any contract runs.
  const std::size_t batch =
      std::numeric_limits<std::size_t>::max() / 15 + 1;
  int dummy = 0;
  EXPECT_THROW(inplace::transpose_batched(&dummy, batch, 3, 5),
               inplace::error);
}

TEST(CheckedRotations, ResidualWindowViolationIsCaught) {
  // Residuals must stay below min(width, m); width+1 is out of window.
  std::vector<int> a(8 * 4);
  inplace::detail::workspace<int> ws;
  ws.reserve(8, 4, 2);
  const std::uint64_t res[2] = {0, 3};  // 3 >= min(width=2, m=8)
  EXPECT_THROW(inplace::detail::fine_rotate_group(a.data(), 8, 4, 0, 2, res,
                                                  ws.head.data()),
               contract_violation);
}

// --- tensor view bounds checks ----------------------------------------------

TEST(CheckedTensor, AtValidatesEveryIndex) {
  std::vector<int> buf(2 * 3 * 4);
  std::iota(buf.begin(), buf.end(), 0);
  const inplace::tensor_view<int> t(buf.data(), 2, 3, 4);
  EXPECT_EQ(t.at(1, 2, 3), t(1, 2, 3));
  EXPECT_EQ(t.at(0, 0, 0), 0);
  EXPECT_THROW((void)t.at(2, 0, 0), contract_violation);
  EXPECT_THROW((void)t.at(0, 3, 0), contract_violation);
  EXPECT_THROW((void)t.at(0, 0, 4), contract_violation);
  EXPECT_THROW((void)t.extent(3), contract_violation);
  EXPECT_EQ(t.extent(1), 3u);
  EXPECT_EQ(t.size(), 24u);
}

TEST(CheckedEquations, StepperRowIndexPrecondition) {
  const inplace::transpose_math<inplace::fast_divmod> mm(6, 4);
  EXPECT_NO_THROW(inplace::d_prime_stepper(mm, 5));
  EXPECT_THROW(inplace::d_prime_stepper(mm, 6), contract_violation);
}

}  // namespace
