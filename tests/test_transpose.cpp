// End-to-end correctness of the in-place transposition API across engines,
// directions, element types and shapes — plus Theorem 6's element-touch
// bound and the argument-validation contract.

#include "core/transpose.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cpu/soa.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

struct shape {
  std::uint64_t m;
  std::uint64_t n;
};

std::ostream& operator<<(std::ostream& os, const shape& s) {
  return os << s.m << "x" << s.n;
}

const shape kShapes[] = {
    {1, 1},   {1, 40},  {40, 1},  {2, 3},    {3, 2},    {3, 8},   {4, 8},
    {8, 4},   {5, 5},   {16, 16}, {7, 11},   {6, 9},    {12, 18}, {18, 12},
    {32, 48}, {48, 32}, {13, 64}, {64, 13},  {30, 42},  {97, 89}, {100, 10},
    {10, 100}, {36, 60}, {128, 96}, {33, 55}, {255, 85}, {85, 255},
    {200, 200}, {211, 199}, {512, 24}, {24, 512}, {1000, 6}, {6, 1000},
    {384, 144}, {144, 384}, {1024, 31}, {771, 129}};

class TransposeShapes : public ::testing::TestWithParam<shape> {};
INSTANTIATE_TEST_SUITE_P(AllShapes, TransposeShapes,
                         ::testing::ValuesIn(kShapes));

template <typename T>
void expect_transposed(const std::vector<T>& got, const std::vector<T>& src,
                       std::uint64_t m, std::uint64_t n, const char* what) {
  const auto want = util::reference_transpose(std::span<const T>(src), m, n);
  const std::ptrdiff_t bad =
      util::first_mismatch(std::span<const T>(got), std::span<const T>(want));
  EXPECT_EQ(bad, -1) << what << ": first mismatch at linear index " << bad
                     << " for " << m << "x" << n;
}

TEST_P(TransposeShapes, ReferenceEngineC2R) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  options opts;
  opts.engine = engine_kind::reference;
  c2r(a.data(), m, n, opts);
  expect_transposed(a, src, m, n, "reference c2r");
}

TEST_P(TransposeShapes, BlockedEngineC2R) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  options opts;
  opts.engine = engine_kind::blocked;
  c2r(a.data(), m, n, opts);
  expect_transposed(a, src, m, n, "blocked c2r");
}

TEST_P(TransposeShapes, SkinnyOrFallbackC2R) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  options opts;
  opts.engine = engine_kind::skinny;  // planner falls back when unsuitable
  c2r(a.data(), m, n, opts);
  expect_transposed(a, src, m, n, "skinny c2r");
}

TEST_P(TransposeShapes, R2CWithSwappedExtentsTransposes) {
  // Theorem 2: r2c(data, n, m) transposes a row-major m x n array.
  const auto [m, n] = GetParam();
  for (const engine_kind eng :
       {engine_kind::reference, engine_kind::blocked, engine_kind::skinny}) {
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    const auto src = a;
    options opts;
    opts.engine = eng;
    r2c(a.data(), n, m, opts);
    expect_transposed(a, src, m, n, "r2c swapped");
  }
}

TEST_P(TransposeShapes, R2CInvertsC2R) {
  const auto [m, n] = GetParam();
  for (const engine_kind eng :
       {engine_kind::reference, engine_kind::blocked, engine_kind::skinny}) {
    auto a = util::iota_matrix<std::uint64_t>(m, n);
    const auto src = a;
    options opts;
    opts.engine = eng;
    c2r(a.data(), m, n, opts);
    r2c(a.data(), m, n, opts);
    EXPECT_EQ(a, src);
  }
}

TEST_P(TransposeShapes, HeuristicTransposeRowMajor) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  transpose(a.data(), m, n);
  expect_transposed(a, src, m, n, "auto row-major");
}

TEST_P(TransposeShapes, TransposeTwiceIsIdentity) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  transpose(a.data(), m, n);
  transpose(a.data(), n, m);
  EXPECT_EQ(a, src);
}

TEST_P(TransposeShapes, ColumnMajorTranspose) {
  // A column-major m x n matrix: after transposition the buffer holds the
  // column-major n x m transpose, which equals the original row-major view.
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);  // col-major n x m view
  const auto src = a;
  // Interpret the buffer as a column-major m x n matrix B: B[i][j] =
  // a[i + j*m].  Its transpose, column-major, is Bt[j][i] at j + i*n.
  transpose(a.data(), m, n, storage_order::col_major);
  std::vector<std::uint32_t> want(src.size());
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      want[j + i * n] = src[i + j * m];
    }
  }
  EXPECT_EQ(a, want);
}

TEST_P(TransposeShapes, NoStrengthReduction) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  options opts;
  opts.strength_reduction = false;
  transpose(a.data(), m, n, storage_order::row_major, opts);
  expect_transposed(a, src, m, n, "plain division");
}

TEST_P(TransposeShapes, DoubleElements) {
  const auto [m, n] = GetParam();
  auto a = util::iota_matrix<double>(m, n);
  const auto src = a;
  transpose(a.data(), m, n);
  expect_transposed(a, src, m, n, "double");
}

TEST_P(TransposeShapes, SixteenByteStructElements) {
  const auto [m, n] = GetParam();
  std::vector<util::vec4f> a(m * n);
  for (std::size_t l = 0; l < a.size(); ++l) {
    a[l] = {float(l), float(l) + 0.25f, float(l) + 0.5f, float(l) + 0.75f};
  }
  const auto src = a;
  transpose(a.data(), m, n);
  expect_transposed(a, src, m, n, "vec4f");
}

TEST_P(TransposeShapes, SingleByteElements) {
  const auto [m, n] = GetParam();
  std::vector<std::uint8_t> a(m * n);
  for (std::size_t l = 0; l < a.size(); ++l) {
    a[l] = static_cast<std::uint8_t>(l * 131 + 17);
  }
  const auto src = a;
  transpose(a.data(), m, n);
  expect_transposed(a, src, m, n, "u8");
}

TEST_P(TransposeShapes, ForcedC2RAndR2CAgree) {
  const auto [m, n] = GetParam();
  auto via_c2r = util::iota_matrix<std::uint32_t>(m, n);
  auto via_r2c = via_c2r;
  options oc;
  oc.alg = options::algorithm::c2r;
  options orr;
  orr.alg = options::algorithm::r2c;
  transpose(via_c2r.data(), m, n, storage_order::row_major, oc);
  transpose(via_r2c.data(), m, n, storage_order::row_major, orr);
  EXPECT_EQ(via_c2r, via_r2c);
}

TEST_P(TransposeShapes, GatherBasedReferenceVariant) {
  // Section 4.2/5.1: the fully gather-based formulation (using d'^-1)
  // must produce the same permutation as the scatter-based Algorithm 1.
  const auto [m, n] = GetParam();
  if (m <= 1 || n <= 1) {
    GTEST_SKIP() << "degenerate shape handled before engine dispatch";
  }
  const transpose_math<fast_divmod> mm(m, n);
  detail::workspace<std::uint32_t> ws;
  ws.reserve(m, n, 16);
  auto scatter_form = util::iota_matrix<std::uint32_t>(m, n);
  auto gather_form = scatter_form;
  detail::c2r_reference(scatter_form.data(), mm, ws);
  detail::c2r_reference_gather(gather_form.data(), mm, ws);
  EXPECT_EQ(gather_form, scatter_form);
}

TEST_P(TransposeShapes, ExplicitThreadCounts) {
  // Thread-count overrides must not change results (load-balance claim:
  // rows/groups are independent).
  const auto [m, n] = GetParam();
  auto want = util::iota_matrix<std::uint32_t>(m, n);
  transpose(want.data(), m, n);
  for (int threads : {1, 2, 3}) {
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    options opts;
    opts.threads = threads;
    transpose(a.data(), m, n, storage_order::row_major, opts);
    ASSERT_EQ(a, want) << "threads=" << threads;
  }
}

TEST(Threading, OversubscribedThreadsShareNoWorkspace) {
  // Regression: requesting more OpenMP threads than hardware_threads()
  // once made two threads share a scratch workspace (the pool was sized
  // before the thread-count guard took effect).  Repeat to give the
  // interleaving a chance to manifest.
  const std::uint64_t m = 68;
  const std::uint64_t n = 249;
  auto want = util::iota_matrix<std::uint64_t>(m, n);
  options serial;
  serial.threads = 1;
  transpose(want.data(), m, n, storage_order::row_major, serial);
  for (int rep = 0; rep < 30; ++rep) {
    auto a = util::iota_matrix<std::uint64_t>(m, n);
    options opts;
    opts.threads = 4;  // deliberately above this host's core count
    opts.engine = engine_kind::blocked;
    transpose(a.data(), m, n, storage_order::row_major, opts);
    ASSERT_EQ(a, want) << "rep " << rep;
  }
}

// --- Theorem 6: work bound ------------------------------------------------

TEST(Complexity, ReferenceEngineTouchesAtMostSixPerElement) {
  for (auto [m, n] : {shape{30, 42}, shape{97, 89}, shape{64, 13},
                      shape{4, 8}, shape{128, 96}}) {
    const transpose_math<fast_divmod> mm(m, n);
    detail::workspace<std::uint32_t> ws;
    ws.reserve(m, n, 16);
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    detail::touch_counter tc;
    detail::c2r_reference(a.data(), mm, ws, &tc);
    EXPECT_LE(tc.reads, 3 * m * n) << m << "x" << n;
    EXPECT_LE(tc.writes, 3 * m * n) << m << "x" << n;

    detail::touch_counter tr;
    detail::r2c_reference(a.data(), mm, ws, &tr);
    EXPECT_LE(tr.reads, 3 * m * n) << m << "x" << n;
    EXPECT_LE(tr.writes, 3 * m * n) << m << "x" << n;
  }
}

TEST(Complexity, ScratchIsBoundedByMaxExtentPlusConstants) {
  options opts;
  const auto plan =
      make_plan(reinterpret_cast<void*>(0x1), 3000, 500,
                storage_order::row_major, opts, sizeof(double));
  EXPECT_LE(plan.scratch_elements(),
            3000 + plan.block_width * plan.block_width + plan.block_width);
}

// --- AoS <-> SoA ------------------------------------------------------------

TEST(AosSoa, RoundTripAndFieldLayout) {
  inplace::util::xoshiro256 rng(7);
  for (int t = 0; t < 30; ++t) {
    const std::size_t fields = rng.uniform(2, 32);
    const std::size_t count = rng.uniform(2, 4000);
    std::vector<float> a(count * fields);
    for (std::size_t l = 0; l < a.size(); ++l) {
      a[l] = static_cast<float>(l);
    }
    const auto src = a;
    aos_to_soa(a.data(), count, fields);
    // Field f of structure s must now live at f*count + s.
    for (std::size_t s = 0; s < count; s += std::max<std::size_t>(1, count / 17)) {
      for (std::size_t f = 0; f < fields; ++f) {
        ASSERT_EQ(a[f * count + s], src[s * fields + f])
            << "struct " << s << " field " << f;
      }
    }
    soa_to_aos(a.data(), count, fields);
    ASSERT_EQ(a, src);
  }
}

// --- Overflow-prone shapes ---------------------------------------------------

TEST(OverflowShapes, ExtentPastSixteenBitsSingleByte) {
  // m > 2^16 with 1-byte elements: linear indices reach ~2^26 and the
  // strength-reduction divisors (m, n, mn-1) leave the exhaustively
  // tested small range.  Verified in place against the iota-mod-256
  // pattern, so the ~45 MB buffer is the only large allocation.
  const std::uint64_t m = 65537, n = 719;  // coprime: no pre-rotation
  std::vector<std::uint8_t> a(m * n);
  util::fill_iota(std::span<std::uint8_t>(a));
  transpose(a.data(), m, n);
  for (std::uint64_t i = 0; i < m; i += 97) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(a[j * m + i], static_cast<std::uint8_t>(i * n + j))
          << "(" << i << "," << j << ")";
    }
  }
  transpose(a.data(), n, m);  // round-trip back to iota
  for (std::uint64_t l = 0; l < m * n; l += 101) {
    ASSERT_EQ(a[l], static_cast<std::uint8_t>(l)) << "linear index " << l;
  }
}

TEST(OverflowShapes, LargeGcdShapePrerotatesAtScale) {
  // c = gcd(m, n) = 10 forces the Eq. 23 pre-rotation on a ~45 MB
  // buffer; mn - 1 = 46,803,399 stresses reciprocals far outside the
  // small-shape sweeps.
  const std::uint64_t m = 46340, n = 1010;
  std::vector<std::uint8_t> a(m * n);
  util::fill_iota(std::span<std::uint8_t>(a));
  options opts;
  opts.engine = engine_kind::blocked;
  c2r(a.data(), m, n, opts);
  for (std::uint64_t i = 0; i < m; i += 211) {
    for (std::uint64_t j = 0; j < n; j += 3) {
      ASSERT_EQ(a[j * m + i], static_cast<std::uint8_t>(i * n + j))
          << "(" << i << "," << j << ")";
    }
  }
  r2c(a.data(), m, n, opts);
  for (std::uint64_t l = 0; l < m * n; l += 127) {
    ASSERT_EQ(a[l], static_cast<std::uint8_t>(l)) << "linear index " << l;
  }
}

// --- Validation -------------------------------------------------------------

TEST(Validation, NullDataWithNonzeroExtentThrows) {
  EXPECT_THROW(transpose<int>(nullptr, 2, 3), error);
  EXPECT_THROW(c2r<int>(nullptr, 2, 3), error);
  EXPECT_THROW(r2c<int>(nullptr, 2, 3), error);
}

TEST(Validation, ZeroExtentIsANoOp) {
  EXPECT_NO_THROW(transpose<int>(nullptr, 0, 5));
  EXPECT_NO_THROW(transpose<int>(nullptr, 5, 0));
  int x = 42;
  EXPECT_NO_THROW(transpose(&x, 1, 1));
  EXPECT_EQ(x, 42);
}

TEST(Validation, ExtentOverflowThrows) {
  int dummy = 0;
  const auto big = std::size_t{1} << 40;
  EXPECT_THROW(transpose(&dummy, big, big), error);
}

TEST(Validation, FailedCallsLeaveBuffersUntouched) {
  // Argument validation happens before any element moves: a throwing
  // call must leave the data bit-identical (basic exception guarantee is
  // actually strong here).
  std::vector<int> a = {1, 2, 3, 4, 5, 6};
  const auto src = a;
  const auto huge = std::size_t{1} << 40;
  EXPECT_THROW(transpose(a.data(), huge, huge), error);
  EXPECT_EQ(a, src);
  EXPECT_THROW(c2r(a.data(), huge, huge), error);
  EXPECT_EQ(a, src);
}

TEST(Validation, PlanReportsHeuristicChoice) {
  int dummy = 0;
  options opts;
  auto tall = make_plan(&dummy, 100, 10, storage_order::row_major, opts,
                        sizeof(int));
  EXPECT_EQ(tall.dir, direction::c2r);
  EXPECT_EQ(tall.m, 100u);
  EXPECT_EQ(tall.n, 10u);
  auto wide = make_plan(&dummy, 10, 100, storage_order::row_major, opts,
                        sizeof(int));
  EXPECT_EQ(wide.dir, direction::r2c);
  EXPECT_EQ(wide.m, 100u);
  EXPECT_EQ(wide.n, 10u);
}

TEST(Validation, SkinnyPlanSelection) {
  int dummy = 0;
  options opts;
  auto narrow = make_plan(&dummy, 100000, 8, storage_order::row_major, opts,
                          sizeof(int));
  EXPECT_EQ(narrow.engine, engine_kind::skinny);
  auto square = make_plan(&dummy, 1000, 1000, storage_order::row_major, opts,
                          sizeof(int));
  EXPECT_EQ(square.engine, engine_kind::blocked);
}

// --- Randomized cross-engine agreement --------------------------------------

TEST(Randomized, AllEnginesAgreeOnRandomShapes) {
  inplace::util::xoshiro256 rng(99);
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t m = rng.uniform(1, 300);
    const std::uint64_t n = rng.uniform(1, 300);
    auto ref = util::iota_matrix<std::uint32_t>(m, n);
    const auto src = ref;
    options ro;
    ro.engine = engine_kind::reference;
    c2r(ref.data(), m, n, ro);

    auto blk = src;
    options bo;
    bo.engine = engine_kind::blocked;
    c2r(blk.data(), m, n, bo);
    ASSERT_EQ(blk, ref) << m << "x" << n;

    auto want =
        util::reference_transpose(std::span<const std::uint32_t>(src), m, n);
    ASSERT_EQ(ref, want) << m << "x" << n;
  }
}

}  // namespace
