// Tests for the plan-reusing executor (core/executor.hpp): correctness of
// transposer<T> across engines and shapes, repeated reuse, batched
// transposition, and validation.

#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

struct shape {
  std::uint64_t m;
  std::uint64_t n;
};

std::ostream& operator<<(std::ostream& os, const shape& s) {
  return os << s.m << "x" << s.n;
}

const shape kShapes[] = {{1, 1},   {1, 9},    {9, 1},    {3, 8},
                         {4, 8},   {30, 42},  {97, 89},  {128, 96},
                         {512, 24}, {24, 512}, {1000, 6}, {211, 199}};

class ExecutorShapes : public ::testing::TestWithParam<shape> {};
INSTANTIATE_TEST_SUITE_P(AllShapes, ExecutorShapes,
                         ::testing::ValuesIn(kShapes));

TEST_P(ExecutorShapes, MatchesOneShotTranspose) {
  const auto [m, n] = GetParam();
  transposer<std::uint32_t> tr(m, n);
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  tr(a.data());
  auto b = src;
  transpose(b.data(), m, n);
  EXPECT_EQ(a, b);
}

TEST_P(ExecutorShapes, ReusePingPongsCorrectly) {
  // Transposing with a planned m x n executor and then a planned n x m
  // executor must round-trip; repeated many times to confirm scratch
  // reuse doesn't corrupt state.
  const auto [m, n] = GetParam();
  transposer<std::uint64_t> fwd(m, n);
  transposer<std::uint64_t> bwd(n, m);
  auto a = util::iota_matrix<std::uint64_t>(m, n);
  const auto src = a;
  for (int round = 0; round < 5; ++round) {
    fwd(a.data());
    bwd(a.data());
    ASSERT_EQ(a, src) << "round " << round;
  }
}

TEST_P(ExecutorShapes, AllEnginesAgree) {
  const auto [m, n] = GetParam();
  const auto src = util::iota_matrix<std::uint32_t>(m, n);
  std::vector<std::vector<std::uint32_t>> results;
  for (engine_kind eng : {engine_kind::reference, engine_kind::blocked,
                          engine_kind::skinny}) {
    options opts;
    opts.engine = eng;
    transposer<std::uint32_t> tr(m, n, storage_order::row_major, opts);
    auto a = src;
    tr(a.data());
    results.push_back(std::move(a));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Batched, TransposesEveryMatrixInTheBatch) {
  const std::size_t batch = 7;
  const std::size_t m = 33;
  const std::size_t n = 55;
  std::vector<float> data(batch * m * n);
  for (std::size_t l = 0; l < data.size(); ++l) {
    data[l] = static_cast<float>(l);
  }
  const auto src = data;
  transpose_batched(data.data(), batch, m, n);
  for (std::size_t k = 0; k < batch; ++k) {
    const std::span<const float> in(src.data() + k * m * n, m * n);
    const auto want = util::reference_transpose(in, m, n);
    for (std::size_t l = 0; l < m * n; ++l) {
      ASSERT_EQ(data[k * m * n + l], want[l]) << "matrix " << k;
    }
  }
}

TEST(Batched, ZeroBatchIsANoOp) {
  EXPECT_NO_THROW(transpose_batched<int>(nullptr, 0, 3, 4));
}

TEST(Batched, RandomizedAgainstLoop) {
  util::xoshiro256 rng(77);
  for (int t = 0; t < 10; ++t) {
    const std::size_t batch = rng.uniform(1, 6);
    const std::size_t m = rng.uniform(2, 100);
    const std::size_t n = rng.uniform(2, 100);
    std::vector<std::uint32_t> a(batch * m * n);
    for (std::size_t l = 0; l < a.size(); ++l) {
      a[l] = static_cast<std::uint32_t>(l * 7919);
    }
    auto b = a;
    transpose_batched(a.data(), batch, m, n);
    for (std::size_t k = 0; k < batch; ++k) {
      transpose(b.data() + k * m * n, m, n);
    }
    ASSERT_EQ(a, b);
  }
}

TEST(Executor, PlanIsExposed) {
  transposer<double> tall(1000, 8);
  EXPECT_EQ(tall.plan().dir, direction::c2r);
  EXPECT_EQ(tall.plan().engine, engine_kind::skinny);
  transposer<double> square(500, 500);
  EXPECT_EQ(square.plan().engine, engine_kind::blocked);
}

TEST(Executor, InvalidShapesThrowAtConstruction) {
  const auto big = std::size_t{1} << 40;
  EXPECT_THROW(transposer<int>(big, big), error);
}

// Regression: transpose_batched computed batch * rows * cols with plain
// size_t multiplies, so a huge batch wrapped the offsets and the loop
// scribbled from the start of the buffer instead of throwing.  The extent
// must now be validated in elements and in bytes before any work runs.
TEST(Batched, ElementCountOverflowThrows) {
  const std::size_t batch =
      std::numeric_limits<std::size_t>::max() / 15 + 1;
  int dummy = 0;
  EXPECT_THROW(transpose_batched(&dummy, batch, 3, 5), error);
}

TEST(Batched, ByteExtentOverflowThrows) {
  // 2^61 doubles fit size_t in elements but overflow it in bytes.
  const std::size_t batch = (std::size_t{1} << 61U) / 15 + 1;
  double dummy = 0.0;
  EXPECT_THROW(transpose_batched(&dummy, batch, 3, 5), error);
}

TEST(Batched, OverflowIsDetectedBeforeTouchingData) {
  // With a poisoned pointer the call must throw from the validation, not
  // reach the transposition loop.
  const std::size_t batch = std::numeric_limits<std::size_t>::max() / 2;
  auto* poisoned = reinterpret_cast<float*>(0x4);
  EXPECT_THROW(transpose_batched(poisoned, batch, 64, 64), error);
}

// Regression: a forged/corrupted plan that still carries
// engine_kind::automatic used to fall through and silently run the blocked
// engine; it must fail loudly now.  Checked builds trip the invariant's
// contract_violation before the error throw — both count as loud.
TEST(Executor, UnresolvedAutomaticPlanFailsLoudly) {
  transpose_plan forged;
  forged.m = 8;
  forged.n = 8;
  forged.engine = engine_kind::automatic;
  std::vector<float> buf(64, 1.0f);
  try {
    detail::execute_plan(buf.data(), forged);
    FAIL() << "a forged automatic plan executed silently";
  } catch (const error&) {
  } catch (const contract_violation&) {
  }
}

TEST(Executor, PlannedEnginesAreAlwaysConcrete) {
  util::xoshiro256 rng(11);
  for (int t = 0; t < 50; ++t) {
    const std::size_t m = rng.uniform(1, 3000);
    const std::size_t n = rng.uniform(1, 3000);
    options opts;
    opts.engine = engine_kind::automatic;  // explicit request must resolve
    transposer<float> tr(m, n, storage_order::row_major, opts);
    EXPECT_NE(tr.plan().engine, engine_kind::automatic)
        << m << "x" << n;
  }
}

}  // namespace
