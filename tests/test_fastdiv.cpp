// Tests for the strength-reduced division of Section 4.4
// (core/fastdiv.hpp): the reciprocal path must agree with hardware
// division everywhere the index equations can reach, including the
// fallback for 64-bit dividends.

#include "core/fastdiv.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace {

using inplace::fast_divmod;
using inplace::plain_divmod;

void expect_agrees(const fast_divmod& fd, std::uint64_t x) {
  const std::uint64_t d = fd.divisor();
  EXPECT_EQ(fd.div(x), x / d) << x << " / " << d;
  EXPECT_EQ(fd.mod(x), x % d) << x << " % " << d;
  const auto [q, r] = fd.divmod(x);
  EXPECT_EQ(q, x / d);
  EXPECT_EQ(r, x % d);
}

TEST(FastDivmod, ThrowsOnZeroDivisor) {
  EXPECT_THROW(fast_divmod(0), std::invalid_argument);
  EXPECT_THROW(plain_divmod(0), std::invalid_argument);
}

TEST(FastDivmod, DivisorOne) {
  const fast_divmod fd(1);
  expect_agrees(fd, 0);
  expect_agrees(fd, 12345);
  expect_agrees(fd, ~std::uint64_t{0});
}

TEST(FastDivmod, ExhaustiveSmallOperands) {
  for (std::uint64_t d = 1; d <= 128; ++d) {
    const fast_divmod fd(d);
    for (std::uint64_t x = 0; x <= 1024; ++x) {
      ASSERT_EQ(fd.div(x), x / d) << x << "/" << d;
      ASSERT_EQ(fd.mod(x), x % d) << x << "%" << d;
    }
  }
}

TEST(FastDivmod, PowersOfTwoDivisors) {
  for (int k = 0; k < 32; ++k) {
    const std::uint64_t d = std::uint64_t{1} << k;
    const fast_divmod fd(d);
    expect_agrees(fd, d - 1);
    expect_agrees(fd, d);
    expect_agrees(fd, d + 1);
    expect_agrees(fd, 3 * d + 7);
    expect_agrees(fd, 0xffffffffull);
  }
}

TEST(FastDivmod, BoundaryOperands) {
  const std::uint64_t interesting[] = {
      0, 1, 2, 0x7fffffffull, 0x80000000ull, 0xfffffffeull, 0xffffffffull};
  for (std::uint64_t d : {std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3}, std::uint64_t{7},
                          std::uint64_t{0x7fffffff}, std::uint64_t{0x80000000},
                          std::uint64_t{0xffffffff}}) {
    const fast_divmod fd(d);
    for (std::uint64_t x : interesting) {
      expect_agrees(fd, x);
    }
  }
}

TEST(FastDivmod, FallbackFor64BitDividends) {
  const fast_divmod fd(12345);
  expect_agrees(fd, std::uint64_t{1} << 33);
  expect_agrees(fd, ~std::uint64_t{0});
  expect_agrees(fd, 0x123456789abcdefull);
}

TEST(FastDivmod, FallbackForWideDivisors) {
  const fast_divmod fd(std::uint64_t{1} << 40);
  expect_agrees(fd, (std::uint64_t{1} << 41) + 17);
  expect_agrees(fd, 5);
}

TEST(FastDivmod, RandomizedAgainstHardware) {
  inplace::util::xoshiro256 rng(17);
  for (int t = 0; t < 200000; ++t) {
    const std::uint64_t d = rng.uniform(1, std::uint64_t{1} << 32);
    const fast_divmod fd(d);
    expect_agrees(fd, rng.uniform(0, std::uint64_t{1} << 32));
  }
}

TEST(FastDivmod, TransposeRelevantDivisors) {
  // The divisors actually instantiated by transpose_math: m, n, a, b, c for
  // the benchmark extent range, with dividends up to m*n.
  inplace::util::xoshiro256 rng(18);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t m = rng.uniform(1, 30000);
    const std::uint64_t n = rng.uniform(1, 30000);
    for (std::uint64_t d : {m, n}) {
      const fast_divmod fd(d);
      for (int s = 0; s < 50; ++s) {
        expect_agrees(fd, rng.uniform(0, m * n + 1));
      }
    }
  }
}

TEST(PlainDivmod, MatchesHardware) {
  inplace::util::xoshiro256 rng(19);
  for (int t = 0; t < 10000; ++t) {
    const std::uint64_t d = rng.uniform(1, std::uint64_t{1} << 48);
    const plain_divmod pd(d);
    const std::uint64_t x = rng.uniform(0, std::uint64_t{1} << 60);
    EXPECT_EQ(pd.div(x), x / d);
    EXPECT_EQ(pd.mod(x), x % d);
    const auto [q, r] = pd.divmod(x);
    EXPECT_EQ(q, x / d);
    EXPECT_EQ(r, x % d);
  }
}

}  // namespace
