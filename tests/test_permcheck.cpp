// Tests for the permcheck verification core (core/verify.hpp): clean
// sweeps verify every equation family, each seeded index bug is caught
// loudly with a diagnostic naming the broken equation, and the verifier
// agrees with an actual engine-level transposition on the same shapes.

#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/transpose.hpp"
#include "util/matrix.hpp"

namespace {

using inplace::verify::fault;
using inplace::verify::report;

std::string joined_messages(const report& rep) {
  std::string all;
  for (const auto& msg : rep.messages) {
    all += msg;
    all += '\n';
  }
  return all;
}

TEST(Permcheck, CleanSweepVerifiesAllShapes) {
  inplace::verify::sweep_options opt;
  opt.max_extent = 48;
  const report rep = inplace::verify::run_sweep(opt);
  EXPECT_TRUE(rep.ok()) << joined_messages(rep);
  EXPECT_EQ(rep.shapes, 47u * 47u);  // every (m, n) in [2, 48]^2
  EXPECT_GT(rep.checks, 0u);
}

TEST(Permcheck, PlainDivmodPolicySweep) {
  inplace::verify::sweep_options opt;
  opt.max_extent = 24;
  opt.use_plain_divmod = true;
  const report rep = inplace::verify::run_sweep(opt);
  EXPECT_TRUE(rep.ok()) << joined_messages(rep);
  EXPECT_EQ(rep.shapes, 23u * 23u);
}

TEST(Permcheck, PrimeAndDegenerateGcdShapes) {
  // Coprime (c = 1, no pre-rotation), square (c = m) and highly composite
  // shapes exercise different branches of Eqs. 23/31/34.
  for (const auto [m, n] : {std::pair<std::uint64_t, std::uint64_t>{97, 89},
                            {64, 64},
                            {60, 48},
                            {2, 512},
                            {512, 2},
                            {509, 503}}) {
    const report rep = inplace::verify::verify_shape(m, n);
    EXPECT_TRUE(rep.ok()) << joined_messages(rep);
  }
}

// --- seeded bugs must fail loudly -------------------------------------------

TEST(Permcheck, SeededRowShuffleBugIsCaught) {
  // The off-by-one wrap (u > m instead of u >= m) needs gcd > 1 and
  // m % n != 0 to change an index; (6, 4) is the smallest such shape.
  const report rep =
      inplace::verify::verify_shape(6, 4, fault::row_shuffle_wrap);
  ASSERT_FALSE(rep.ok()) << "planted Eq. 24 bug was not detected";
  EXPECT_NE(joined_messages(rep).find("Eq. 24"), std::string::npos)
      << joined_messages(rep);
}

TEST(Permcheck, SeededInverseBranchBugIsCaught) {
  const report rep =
      inplace::verify::verify_shape(7, 5, fault::inverse_branch);
  ASSERT_FALSE(rep.ok()) << "planted Eq. 31 bug was not detected";
  EXPECT_NE(joined_messages(rep).find("Eq. 31"), std::string::npos)
      << joined_messages(rep);
}

TEST(Permcheck, SeededColumnShuffleBugIsCaught) {
  const report rep =
      inplace::verify::verify_shape(6, 4, fault::column_shuffle_drift);
  ASSERT_FALSE(rep.ok()) << "planted Eq. 33 bug was not detected";
  const std::string msgs = joined_messages(rep);
  EXPECT_TRUE(msgs.find("Eq. 33") != std::string::npos ||
              msgs.find("Eq. 34") != std::string::npos ||
              msgs.find("Eq. 26") != std::string::npos)
      << msgs;
}

TEST(Permcheck, SeededFastdivBugIsCaught) {
  const report rep =
      inplace::verify::verify_shape(6, 4, fault::fastdiv_magic);
  ASSERT_FALSE(rep.ok()) << "planted reciprocal bug was not detected";
  EXPECT_NE(joined_messages(rep).find("fastdiv"), std::string::npos)
      << joined_messages(rep);
}

TEST(Permcheck, SeededBugSweepFailsAcrossShapes) {
  inplace::verify::sweep_options opt;
  opt.max_extent = 16;
  opt.inject = fault::row_shuffle_wrap;
  const report rep = inplace::verify::run_sweep(opt);
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.failures, 0u);
  EXPECT_FALSE(rep.messages.empty());
}

// --- the verifier models what the engines actually do ------------------------

TEST(Permcheck, CompositionMatchesEngineTransposition) {
  // The algebraic composition check and a real engine execution must agree:
  // any shape the sweep passes transposes correctly through the library.
  for (const auto [m, n] : {std::pair<std::size_t, std::size_t>{30, 42},
                            {41, 33},
                            {16, 256}}) {
    ASSERT_TRUE(inplace::verify::verify_shape(m, n).ok());
    auto a = inplace::util::iota_matrix<std::uint32_t>(m, n);
    const auto want = inplace::util::reference_transpose(
        std::span<const std::uint32_t>(a), m, n);
    inplace::transpose(a.data(), m, n);
    EXPECT_EQ(a, want) << "shape " << m << "x" << n;
  }
}

}  // namespace
