// Property tests for the decomposed permutation equations (Sections 3-4):
// Theorem 3's bijectivity of d', the closed-form inverses of Eqs. 31 and
// 34, the p∘q factorization of the column shuffle, and agreement between
// the strength-reduced and plain division policies.

#include "core/equations.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace {

using inplace::fast_divmod;
using inplace::plain_divmod;
using inplace::transpose_math;

struct shape {
  std::uint64_t m;
  std::uint64_t n;
};

std::ostream& operator<<(std::ostream& os, const shape& s) {
  return os << s.m << "x" << s.n;
}

class EquationsTest : public ::testing::TestWithParam<shape> {};

// Shapes covering: coprime, equal, one divides the other, shared factors,
// primes, powers of two, degenerate single row/column, and the paper's
// Figure 1 (3x8) and Figure 2 (4x8) examples.
const shape kShapes[] = {
    {3, 8},  {4, 8},   {8, 4},   {1, 1},   {1, 17},  {17, 1},  {2, 2},
    {5, 5},  {16, 16}, {7, 11},  {11, 7},  {6, 9},   {9, 6},   {12, 18},
    {18, 12}, {5, 25}, {25, 5},  {32, 48}, {48, 32}, {13, 64}, {64, 13},
    {30, 42}, {97, 89}, {100, 10}, {10, 100}, {36, 60}, {127, 127},
    {128, 96}, {33, 55}, {2, 64}, {64, 2},  {21, 14}, {255, 85}};

INSTANTIATE_TEST_SUITE_P(AllShapes, EquationsTest,
                         ::testing::ValuesIn(kShapes));

TEST_P(EquationsTest, ConstantsAreConsistent) {
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  EXPECT_EQ(mm.c, std::gcd(m, n));
  EXPECT_EQ(mm.a * mm.c, m);
  EXPECT_EQ(mm.b * mm.c, n);
  if (mm.b > 1) {
    EXPECT_EQ(mm.a * mm.a_inv % mm.b, 1u);
  }
  if (mm.a > 1) {
    EXPECT_EQ(mm.b * mm.b_inv % mm.a, 1u);
  }
}

TEST_P(EquationsTest, DPrimeIsBijectivePerRow) {
  // Theorem 3: after the pre-rotation, d'_i is a bijection on [0, n) for
  // every fixed row i.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<std::uint8_t> seen(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::fill(seen.begin(), seen.end(), 0);
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t d = mm.d_prime(i, j);
      ASSERT_LT(d, n);
      ASSERT_FALSE(seen[d]) << "collision in row " << i << " at j=" << j;
      seen[d] = 1;
    }
  }
}

TEST_P(EquationsTest, UnrotatedDIsNotBijectiveWhenGcdExceedsOne) {
  // Lemma 1: d_i(j) = (i + jm) mod n is periodic with period b, so for
  // c > 1 conflicts are guaranteed — the motivation for the pre-rotation.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  if (mm.c <= 1 || n < 2) {
    GTEST_SKIP() << "coprime extents: d is already bijective";
  }
  // Period check: d_i(j + b) == d_i(j).
  for (std::uint64_t j = 0; j + mm.b < n; ++j) {
    const std::uint64_t d0 = (0 + j * m) % n;
    const std::uint64_t d1 = (0 + (j + mm.b) * m) % n;
    EXPECT_EQ(d0, d1);
  }
}

TEST_P(EquationsTest, Eq31InvertsDPrime) {
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t d = mm.d_prime(i, j);
      ASSERT_EQ(mm.d_prime_inv(i, d), j)
          << "d'^-1(d'(j)) != j at i=" << i << " j=" << j;
    }
  }
}

TEST_P(EquationsTest, ColumnShuffleFactorsThroughPAndQ) {
  // Section 4.2: s'_j = p_j ∘ q, i.e. s'_j(i) = (q(i) + j) mod m.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  for (std::uint64_t j = 0; j < n; ++j) {
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t via_pq = (mm.q(i) + mm.p_offset(j)) % m;
      ASSERT_EQ(via_pq, mm.s_prime(i, j)) << "i=" << i << " j=" << j;
    }
  }
}

TEST_P(EquationsTest, SPrimeIsBijectivePerColumn) {
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<std::uint8_t> seen(m);
  for (std::uint64_t j = 0; j < n; ++j) {
    std::fill(seen.begin(), seen.end(), 0);
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t s = mm.s_prime(i, j);
      ASSERT_LT(s, m);
      ASSERT_FALSE(seen[s]);
      seen[s] = 1;
    }
  }
}

TEST_P(EquationsTest, Eq34InvertsQ) {
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t qi = mm.q(i);
    ASSERT_LT(qi, m);
    ASSERT_EQ(mm.q(mm.q_inv(i)), i) << "q(q^-1(i)) != i at i=" << i;
    ASSERT_EQ(mm.q_inv(qi), i) << "q^-1(q(i)) != i at i=" << i;
  }
}

TEST_P(EquationsTest, RotationOffsetsAreInRange) {
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  for (std::uint64_t j = 0; j < n; ++j) {
    EXPECT_LT(mm.prerotate_offset(j), mm.c == 0 ? 1 : std::max(mm.c, 1ul));
    EXPECT_LT(mm.p_offset(j), m);
    EXPECT_LT(mm.p_inv_offset(j), m);
    EXPECT_LT(mm.prerotate_inv_offset(j), std::max<std::uint64_t>(m, 1));
    // p^-1 undoes p as a rotation: offsets sum to 0 mod m.
    EXPECT_EQ((mm.p_offset(j) + mm.p_inv_offset(j)) % m, 0u);
    EXPECT_EQ((mm.prerotate_offset(j) + mm.prerotate_inv_offset(j)) % m, 0u);
  }
}

TEST_P(EquationsTest, FastAndPlainPoliciesAgree) {
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> fast(m, n);
  const transpose_math<plain_divmod> plain(m, n);
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      ASSERT_EQ(fast.d_prime(i, j), plain.d_prime(i, j));
      ASSERT_EQ(fast.d_prime_inv(i, j), plain.d_prime_inv(i, j));
      ASSERT_EQ(fast.s_prime(i, j), plain.s_prime(i, j));
    }
    ASSERT_EQ(fast.q(i), plain.q(i));
    ASSERT_EQ(fast.q_inv(i), plain.q_inv(i));
  }
}

TEST_P(EquationsTest, StepperMatchesDPrime) {
  // The incremental evaluator must track d'_i(j) and ⌊j/b⌋ exactly for
  // every row.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  for (std::uint64_t i = 0; i < m; ++i) {
    inplace::d_prime_stepper step(mm, i);
    for (std::uint64_t j = 0; j < n; ++j, step.advance()) {
      ASSERT_EQ(step.value(), mm.d_prime(i, j))
          << "i=" << i << " j=" << j;
      ASSERT_EQ(step.rotation(), mm.prerotate_offset(j))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST_P(EquationsTest, Lemma2MultiplesOfMAreDistinctModN) {
  // Lemma 2: for 0 <= x, y < b, mx ≡ my (mod n) implies x = y.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<std::uint8_t> seen(n);
  for (std::uint64_t x = 0; x < mm.b; ++x) {
    const std::uint64_t v = m * x % n;
    ASSERT_FALSE(seen[v]) << "collision at x=" << x;
    seen[v] = 1;
  }
}

TEST_P(EquationsTest, Lemma3MultiplesOfMEqualMultiplesOfC) {
  // Lemma 3: { hm mod n : h in [0,b) } = { hc : h in [0,b) }.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  std::vector<std::uint64_t> s;
  std::vector<std::uint64_t> t;
  for (std::uint64_t h = 0; h < mm.b; ++h) {
    s.push_back(h * m % n);
    t.push_back(h * mm.c);
  }
  std::sort(s.begin(), s.end());
  std::sort(t.begin(), t.end());
  EXPECT_EQ(s, t);
}

TEST_P(EquationsTest, Theorem5ColumnBoundsHold) {
  // The key correspondence in Theorem 5's proof: for every element, the
  // C2R source column c_j(i) = floor((j + i*n)/m) lies in
  // [kb, (k+1)b) where k = floor(i/a) — i.e. row group k reads only from
  // the column group that was rotated by k.
  const auto [m, n] = GetParam();
  const transpose_math<fast_divmod> mm(m, n);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t k = i / mm.a;
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t cj = (j + i * n) / m;
      ASSERT_GE(cj, k * mm.b) << "i=" << i << " j=" << j;
      ASSERT_LT(cj, (k + 1) * mm.b) << "i=" << i << " j=" << j;
    }
  }
}

TEST(EquationsSpot, CoprimeShapesNeedNoPrerotation) {
  const transpose_math<fast_divmod> mm(3, 8);
  EXPECT_FALSE(mm.needs_prerotate());
  // With c = 1, d' degenerates to d (the note after Theorem 3).
  for (std::uint64_t i = 0; i < 3; ++i) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(mm.d_prime(i, j), (i + j * 3) % 8);
    }
  }
}

TEST(EquationsSpot, Figure2PrerotationAmounts) {
  // Figure 2 (4x8): b = 2, so columns rotate by ⌊j/2⌋ = 0,0,1,1,2,2,3,3.
  const transpose_math<fast_divmod> mm(4, 8);
  EXPECT_TRUE(mm.needs_prerotate());
  const std::uint64_t expected[] = {0, 0, 1, 1, 2, 2, 3, 3};
  for (std::uint64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(mm.prerotate_offset(j), expected[j]);
  }
}

}  // namespace
