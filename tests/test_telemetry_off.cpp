// Telemetry-off tests: this TU deliberately does NOT define
// INPLACE_TELEMETRY, matching how the library, the tests and user code
// build by default.  The span hooks must compile to nothing — an empty
// span type and discarded-void macros — and an installed sink must see
// zero records from uninstrumented engines.

#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "core/executor.hpp"
#include "core/transpose.hpp"
#include "util/matrix.hpp"

namespace {

using namespace inplace;

static_assert(INPLACE_TELEMETRY_ENABLED == 0,
              "test_telemetry_off must build without INPLACE_TELEMETRY");

// The per-TU span alias must degenerate to the empty literal type: proof
// that instrumented code paths carry no per-call state when off.
static_assert(sizeof(telemetry::stage_span) == 1,
              "disabled spans must be empty");
static_assert(
    std::is_same_v<telemetry::stage_span, telemetry::disabled_span>,
    "telemetry-off TUs must alias the disabled span");

TEST(TelemetryOff, SpanMacroExpandsToNothing) {
  // The macro must be a discarded expression usable as a full statement
  // anywhere a live span would sit.
  INPLACE_TELEMETRY_SPAN(span_probe, telemetry::stage::total, 128, 0);
  SUCCEED();
}

TEST(TelemetryOff, UninstrumentedTransposeRecordsNothing) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  std::vector<double> a(64 * 48);
  util::fill_iota(std::span<double>(a));
  transpose(a.data(), 64, 48);
  transposer<double> tr(48, 64);
  tr(a.data());
  EXPECT_EQ(coll.spans_seen(), 0u);
  EXPECT_EQ(coll.plans_seen(), 0u);
  EXPECT_TRUE(coll.raw_spans().empty());
  EXPECT_TRUE(coll.plan_counts().empty());
}

TEST(TelemetryOff, SinkRegistryStillWorks) {
  // The registry itself is always compiled in (the collector lives in the
  // library), so tools can install sinks unconditionally.
  telemetry::collector coll;
  {
    telemetry::scoped_sink guard(&coll);
    EXPECT_EQ(telemetry::current_sink(), &coll);
    // Hand-fed records still flow: only the *hooks* are compiled out.
    telemetry::span_record rec;
    rec.s = telemetry::stage::total;
    rec.bytes_moved = 64;
    coll.on_span(rec);
  }
  EXPECT_EQ(telemetry::current_sink(), nullptr);
  EXPECT_EQ(coll.spans_seen(), 1u);
}

}  // namespace
