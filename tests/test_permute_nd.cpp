// Tests for the arbitrary-rank permutation engine (core/tensor_nd.hpp +
// core/tensor_plan.hpp): an exhaustive sweep of every permutation at
// rank <= 4 over extent grids that include 0 and 1, at element widths
// 1/2/4/8, against an out-of-place reference — plus normalization,
// planning invariants, and transpose_context integration (warm-path
// cache hits, normalized-key sharing, eviction accounting).

#include "core/tensor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/context.hpp"
#include "core/tensor_plan.hpp"

namespace {

using namespace inplace;

/// Out-of-place reference: permutes `in` (row-major, extents `dims`) into
/// the returned buffer (row-major, extents dims[perm[k]]).
template <typename T>
std::vector<T> reference_permute(const std::vector<T>& in,
                                 std::span<const std::size_t> dims,
                                 std::span<const int> perm) {
  const std::size_t rank = dims.size();
  std::vector<std::size_t> out_dims(rank);
  for (std::size_t k = 0; k < rank; ++k) {
    out_dims[k] = dims[static_cast<std::size_t>(perm[k])];
  }
  std::vector<std::size_t> out_strides(rank, 1);
  for (std::size_t k = rank; k-- > 1;) {
    out_strides[k - 1] = out_strides[k] * out_dims[k];
  }
  std::vector<T> out(in.size());
  std::vector<std::size_t> idx(rank, 0);
  for (std::size_t lin = 0; lin < in.size(); ++lin) {
    std::size_t olin = 0;
    for (std::size_t k = 0; k < rank; ++k) {
      olin += idx[static_cast<std::size_t>(perm[k])] * out_strides[k];
    }
    out[olin] = in[lin];
    for (std::size_t k = rank; k-- > 0;) {
      if (++idx[k] < dims[k]) {
        break;
      }
      idx[k] = 0;
    }
  }
  return out;
}

/// Runs permute_nd on a fresh deterministic buffer and compares
/// bit-exactly against the reference.
template <typename T>
void check_one(std::span<const std::size_t> dims, std::span<const int> perm) {
  std::size_t total = 1;
  for (const std::size_t d : dims) {
    total *= d;
  }
  std::vector<T> a(total);
  for (std::size_t l = 0; l < total; ++l) {
    a[l] = static_cast<T>(l * 2654435761u + 17u);
  }
  const std::vector<T> want = reference_permute(a, dims, perm);
  permute_nd(a.data(), dims, perm);
  ASSERT_EQ(a, want);
}

/// Dispatches check_one to the element width selected by `pick` — the
/// sweep cycles widths by flat case index so every (perm, extents) cell
/// exercises some width and every width covers the whole grid shape-wise.
void check_width(std::span<const std::size_t> dims, std::span<const int> perm,
                 std::size_t pick) {
  switch (pick % 4) {
    case 0:
      check_one<std::uint8_t>(dims, perm);
      break;
    case 1:
      check_one<std::uint16_t>(dims, perm);
      break;
    case 2:
      check_one<std::uint32_t>(dims, perm);
      break;
    default:
      check_one<std::uint64_t>(dims, perm);
      break;
  }
}

TEST(PermuteNd, RankZeroAndRankOne) {
  std::vector<std::uint32_t> a = {1, 2, 3, 4, 5};
  const auto before = a;
  permute_nd(a.data(), std::span<const std::size_t>{},
             std::span<const int>{});
  EXPECT_EQ(a, before);
  for (std::size_t d = 0; d <= 6; ++d) {
    const std::size_t dims[1] = {d};
    const int perm[1] = {0};
    check_one<std::uint32_t>(dims, perm);
  }
}

TEST(PermuteNd, ExhaustiveRank2) {
  std::size_t pick = 0;
  for (int p = 0; p < 2; ++p) {
    const int perm[2] = {p, 1 - p};
    for (std::size_t d0 = 0; d0 <= 6; ++d0) {
      for (std::size_t d1 = 0; d1 <= 6; ++d1) {
        const std::size_t dims[2] = {d0, d1};
        check_width(dims, perm, pick++);
        if (::testing::Test::HasFatalFailure()) {
          FAIL() << "perm {" << perm[0] << "," << perm[1] << "} dims " << d0
                 << "x" << d1;
        }
      }
    }
  }
}

TEST(PermuteNd, ExhaustiveRank3) {
  std::array<int, 3> perm = {0, 1, 2};
  std::size_t pick = 0;
  do {
    for (std::size_t d0 = 0; d0 <= 6; ++d0) {
      for (std::size_t d1 = 0; d1 <= 6; ++d1) {
        for (std::size_t d2 = 0; d2 <= 6; ++d2) {
          const std::size_t dims[3] = {d0, d1, d2};
          check_width(dims, perm, pick++);
          if (::testing::Test::HasFatalFailure()) {
            FAIL() << "perm {" << perm[0] << "," << perm[1] << ","
                   << perm[2] << "} dims " << d0 << "x" << d1 << "x" << d2;
          }
        }
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(PermuteNd, ExhaustiveRank4) {
  // All 24 permutations over an extent grid that still includes the empty
  // and unit edge cases; widths cycle by flat index as above.
  const std::size_t extents[] = {0, 1, 2, 3, 5, 6};
  std::array<int, 4> perm = {0, 1, 2, 3};
  std::size_t pick = 0;
  do {
    for (const std::size_t d0 : extents) {
      for (const std::size_t d1 : extents) {
        for (const std::size_t d2 : extents) {
          for (const std::size_t d3 : extents) {
            const std::size_t dims[4] = {d0, d1, d2, d3};
            check_width(dims, perm, pick++);
            if (::testing::Test::HasFatalFailure()) {
              FAIL() << "perm {" << perm[0] << "," << perm[1] << ","
                     << perm[2] << "," << perm[3] << "} dims " << d0 << "x"
                     << d1 << "x" << d2 << "x" << d3;
            }
          }
        }
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(PermuteNd, HighRankSmoke) {
  // Ranks 5..8 on small extents, a handful of structured perms each:
  // full reversal (worst case for fusion), a rotation, and a mixed order.
  for (std::size_t rank = 5; rank <= 8; ++rank) {
    std::vector<std::size_t> dims(rank);
    for (std::size_t k = 0; k < rank; ++k) {
      dims[k] = 2 + (k % 2);  // alternating 2s and 3s
    }
    std::vector<int> reversal(rank);
    std::vector<int> rotation(rank);
    std::vector<int> mixed(rank);
    for (std::size_t k = 0; k < rank; ++k) {
      reversal[k] = static_cast<int>(rank - 1 - k);
      rotation[k] = static_cast<int>((k + 1) % rank);
      mixed[k] = static_cast<int>(k % 2 == 0 ? k / 2 : rank - 1 - k / 2);
    }
    check_one<std::uint32_t>(dims, reversal);
    check_one<std::uint16_t>(dims, rotation);
    check_one<std::uint64_t>(dims, mixed);
  }
}

TEST(PermuteNd, NchwToNhwcAndBack) {
  // The ML layout conversion examples/ml_batched.cpp runs: NCHW -> NHWC
  // is perm {0, 2, 3, 1}; its inverse is {0, 3, 1, 2}.
  const std::size_t dims[4] = {3, 5, 7, 11};
  const int to_nhwc[4] = {0, 2, 3, 1};
  const int to_nchw[4] = {0, 3, 1, 2};
  check_one<float>(dims, to_nhwc);
  std::vector<float> a(3 * 5 * 7 * 11);
  std::iota(a.begin(), a.end(), 0.0f);
  const auto src = a;
  permute_nd(a.data(), dims, std::span<const int>(to_nhwc));
  const std::size_t nhwc_dims[4] = {3, 7, 11, 5};
  permute_nd(a.data(), nhwc_dims, std::span<const int>(to_nchw));
  EXPECT_EQ(a, src);
}

TEST(PermuteNd, Validation) {
  std::vector<std::uint32_t> a(16);
  const std::size_t dims3[3] = {2, 2, 4};
  const int short_perm[2] = {0, 1};
  EXPECT_THROW(permute_nd(a.data(), dims3, short_perm), error);
  const int dup[3] = {0, 1, 1};
  EXPECT_THROW(permute_nd(a.data(), dims3, dup), error);
  const int oob[3] = {0, 1, 3};
  EXPECT_THROW(permute_nd(a.data(), dims3, oob), error);
  const int neg[3] = {0, 1, -1};
  EXPECT_THROW(permute_nd(a.data(), dims3, neg), error);
  // Rank above tensor_max_rank.
  std::vector<std::size_t> dims9(9, 1);
  std::vector<int> perm9(9);
  std::iota(perm9.begin(), perm9.end(), 0);
  EXPECT_THROW(
      permute_nd(a.data(), std::span<const std::size_t>(dims9), perm9),
      error);
  // Null data: rejected with nonzero extent, accepted when empty.
  const int rev3[3] = {2, 1, 0};
  EXPECT_THROW(permute_nd<std::uint32_t>(nullptr, dims3, rev3), error);
  const std::size_t empty3[3] = {2, 0, 4};
  EXPECT_NO_THROW(permute_nd<std::uint32_t>(nullptr, empty3, rev3));
}

TEST(PermuteNd, OverflowingExtentsThrowInsteadOfWrapping) {
  // Crafted extents whose product wraps size_t: the pre-funnel code
  // computed the product first and validated the wrapped value (treating
  // these as empty tensors); the N-D funnel checks every partial product.
  std::vector<std::uint32_t> a(8);
  const std::size_t big = std::size_t{1} << 32;
  const int rev3[3] = {2, 1, 0};
  const std::size_t wrap_a[3] = {big, big, 2};
  EXPECT_THROW(permute_nd(a.data(), wrap_a, rev3), error);
  const std::size_t wrap_b[3] = {2, big, big};
  EXPECT_THROW(permute_nd(a.data(), wrap_b, rev3), error);
  // Element count fits size_t, but the byte extent does not.
  const std::size_t wrap_bytes[3] = {std::size_t{1} << 62, 2, 2};
  EXPECT_THROW(permute_nd(a.data(), wrap_bytes, rev3), error);
}

TEST(PermuteNdPlan, NormalizationFusesAndDropsUnits) {
  // NCHW -> NHWC fuses H,W and drops nothing: rank 3 residual.
  {
    const std::size_t dims[4] = {2, 3, 4, 5};
    const int perm[4] = {0, 2, 3, 1};
    const auto norm = detail::normalize_nd(dims, perm);
    EXPECT_EQ(norm.rank, 3u);
    EXPECT_EQ(norm.total, 2u * 3u * 4u * 5u);
  }
  // Unit extents drop: {4, 1, 5} under {2, 1, 0} is a plain 2-D swap.
  {
    const std::size_t dims[3] = {4, 1, 5};
    const int perm[3] = {2, 1, 0};
    const auto norm = detail::normalize_nd(dims, perm);
    EXPECT_EQ(norm.rank, 2u);
    EXPECT_EQ(norm.dims[0], 4u);
    EXPECT_EQ(norm.dims[1], 5u);
  }
  // Identity (after fusion) collapses to rank <= 1.
  {
    const std::size_t dims[3] = {4, 5, 6};
    const int perm[3] = {0, 1, 2};
    const auto norm = detail::normalize_nd(dims, perm);
    EXPECT_LE(norm.rank, 1u);
  }
}

TEST(PermuteNdPlan, SearchNeverLosesToTheWorstOrder) {
  // The ablation foil: on every probe shape the searched plan's model
  // cost is no worse than the worst-order decomposition's.
  const std::size_t shapes[][4] = {
      {64, 48, 32, 1}, {8, 96, 24, 16}, {128, 4, 64, 8}, {6, 6, 6, 6}};
  const int perms[][4] = {
      {2, 1, 0, 3}, {3, 2, 1, 0}, {1, 0, 3, 2}, {0, 2, 3, 1}};
  for (std::size_t c = 0; c < 4; ++c) {
    std::vector<std::size_t> dims;
    std::vector<int> perm;
    for (std::size_t k = 0; k < 4; ++k) {
      if (shapes[c][k] > 1) {
        dims.push_back(shapes[c][k]);
      }
    }
    // Use only valid rank-matching perms: rebuild as a permutation of the
    // kept axes by rank.
    const std::size_t rank = dims.size();
    for (std::size_t k = 0; k < 4; ++k) {
      if (perms[c][k] < static_cast<int>(rank)) {
        perm.push_back(perms[c][k]);
      }
    }
    const auto norm = detail::normalize_nd(
        std::span<const std::size_t>(dims), std::span<const int>(perm));
    if (norm.rank <= 1) {
      continue;
    }
    const auto best =
        detail::make_tensor_plan(norm, 4, detail::tensor_goal::best);
    const auto worst =
        detail::make_tensor_plan(norm, 4, detail::tensor_goal::worst);
    EXPECT_FALSE(best.passes.empty());
    EXPECT_LE(best.model_seconds, worst.model_seconds);
  }
}

TEST(PermuteNdContext, WarmRepeatsHitThePlanCache) {
  transpose_context ctx;
  const std::size_t dims[4] = {4, 5, 6, 7};
  const int perm[4] = {3, 0, 2, 1};
  std::vector<std::uint32_t> a(4 * 5 * 6 * 7);
  std::iota(a.begin(), a.end(), 0u);
  const auto want = reference_permute(
      a, std::span<const std::size_t>(dims), std::span<const int>(perm));
  ctx.permute_nd(a.data(), dims, std::span<const int>(perm));
  EXPECT_EQ(a, want);
  const context_stats cold = ctx.stats();
  EXPECT_EQ(cold.plan_misses, 1u);
  EXPECT_EQ(cold.arenas_created, 1u);
  EXPECT_EQ(cold.executions, 1u);

  // Steady state: repeats are pure warm-path — no new plans, no new
  // arenas, every checkout a reuse.
  const std::size_t reps = 8;
  for (std::size_t r = 0; r < reps; ++r) {
    std::vector<std::uint32_t> b(a.size());
    std::iota(b.begin(), b.end(), 0u);
    ctx.permute_nd(b.data(), dims, std::span<const int>(perm));
    ASSERT_EQ(b, want);
  }
  const context_stats warm = ctx.stats();
  EXPECT_EQ(warm.plan_misses, 1u);
  EXPECT_EQ(warm.plan_hits, cold.plan_hits + reps);
  EXPECT_EQ(warm.arenas_created, 1u);
  EXPECT_EQ(warm.arenas_reused, reps);
  EXPECT_EQ(warm.executions, 1u + reps);
}

TEST(PermuteNdContext, NormalizedKeySharedAcrossUnitAxes) {
  // {4,5,6} reversed and {4,1,5,6} reversed-with-a-unit-axis normalize to
  // the same residual problem, so the second call hits the first's plan.
  transpose_context ctx;
  std::vector<std::uint32_t> a(4 * 5 * 6);
  std::iota(a.begin(), a.end(), 0u);
  const std::size_t dims3[3] = {4, 5, 6};
  const int rev3[3] = {2, 1, 0};
  ctx.permute_nd(a.data(), dims3, rev3);
  EXPECT_EQ(ctx.stats().plan_misses, 1u);

  std::vector<std::uint32_t> b(4 * 5 * 6);
  std::iota(b.begin(), b.end(), 0u);
  const std::size_t dims4[4] = {4, 1, 5, 6};
  const int perm4[4] = {3, 1, 2, 0};  // drops to {2, 1, 0} on kept axes
  const auto want = reference_permute(
      b, std::span<const std::size_t>(dims4), std::span<const int>(perm4));
  ctx.permute_nd(b.data(), dims4, std::span<const int>(perm4));
  EXPECT_EQ(b, want);
  const context_stats s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
}

TEST(PermuteNdContext, IdentityAndEmptyBypassTheCache) {
  transpose_context ctx;
  std::vector<std::uint32_t> a(24);
  std::iota(a.begin(), a.end(), 0u);
  const auto before = a;
  const std::size_t dims[3] = {2, 3, 4};
  const int id3[3] = {0, 1, 2};
  ctx.permute_nd(a.data(), dims, id3);
  EXPECT_EQ(a, before);
  const std::size_t empty[3] = {2, 0, 4};
  const int rev3[3] = {2, 1, 0};
  ctx.permute_nd(a.data(), empty, rev3);
  // A unit-axis-heavy identity in disguise: {1, 6, 1} under {2, 1, 0}.
  const std::size_t units[3] = {1, 6, 1};
  ctx.permute_nd(a.data(), units, rev3);
  const context_stats s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 0u);
  EXPECT_EQ(s.plan_hits, 0u);
  EXPECT_EQ(s.executions, 0u);
  EXPECT_EQ(ctx.cached_plans(), 0u);
}

TEST(PermuteNdContext, EvictionAccountingWithPermExtendedKeys) {
  context_options copts;
  copts.max_plans = 2;
  copts.cache_shards = 1;  // exact LRU bound for the accounting check
  transpose_context ctx(copts);
  const int rev3[3] = {2, 1, 0};
  for (std::size_t n = 3; n <= 6; ++n) {
    const std::size_t dims[3] = {n, n + 1, n + 2};
    std::vector<std::uint32_t> a(n * (n + 1) * (n + 2));
    std::iota(a.begin(), a.end(), 0u);
    ctx.permute_nd(a.data(), dims, rev3);
  }
  const context_stats s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 4u);
  EXPECT_GE(s.plan_evictions, 2u);
  EXPECT_LE(ctx.cached_plans(), 2u);
  EXPECT_GT(ctx.cached_bytes(), 0u);
  ctx.clear();
  EXPECT_EQ(ctx.cached_plans(), 0u);
  EXPECT_EQ(ctx.cached_bytes(), 0u);
}

TEST(PermuteNdContext, MixedModesKeepDistinctKeys) {
  // A 2-D transpose and the equivalent rank-2 permute_nd are different
  // modes: both must run correctly and neither may poach the other's
  // cache slot.
  transpose_context ctx;
  std::vector<std::uint32_t> a(12 * 18);
  std::iota(a.begin(), a.end(), 0u);
  auto b = a;
  ctx.transpose(a.data(), 12, 18);
  const std::size_t dims[2] = {12, 18};
  const int swap2[2] = {1, 0};
  ctx.permute_nd(b.data(), dims, swap2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctx.stats().plan_misses, 2u);
  EXPECT_EQ(ctx.cached_plans(), 2u);
}

TEST(CheckedTensorNd, ViewValidatesAndIndexes) {
  std::vector<std::uint32_t> a(2 * 3 * 4 * 5);
  std::iota(a.begin(), a.end(), 0u);
  const std::size_t dims[4] = {2, 3, 4, 5};
  tensor_view_nd<std::uint32_t> v(a.data(), dims);
  EXPECT_EQ(v.rank(), 4u);
  EXPECT_EQ(v.size(), a.size());
  EXPECT_EQ(v.extent(2), 4u);
  const std::size_t idx[4] = {1, 2, 3, 4};
  EXPECT_EQ(v.at(idx), a[((1 * 3 + 2) * 4 + 3) * 5 + 4]);
  // Overflow-wrapping extents are rejected at construction (the PR-8
  // funnel), as are null buffers with nonzero extents.
  const std::size_t big = std::size_t{1} << 32;
  const std::size_t wrap[3] = {big, big, 2};
  EXPECT_THROW(tensor_view_nd<std::uint32_t>(a.data(), wrap), error);
  const std::size_t dims3[3] = {2, 3, 4};
  EXPECT_THROW(tensor_view_nd<std::uint32_t>(nullptr, dims3), error);
  const std::size_t empty3[3] = {2, 0, 4};
  EXPECT_NO_THROW(tensor_view_nd<std::uint32_t>(nullptr, empty3));
}

}  // namespace
