// Integration tests spanning modules: full AoS pipelines combining the
// in-place converters, the out-of-place vectorized converters, the warp
// register transpose and the coalesced accessor; consistency between the
// library transpose and warp-tile transposes; cycle statistics feeding
// the baselines; and a mixed executor workflow.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "baselines/cycle_follow.hpp"
#include "baselines/out_of_place.hpp"
#include "core/executor.hpp"
#include "core/transpose.hpp"
#include "cpu/soa.hpp"
#include "simd/coalesced.hpp"
#include "simd/register_transpose.hpp"
#include "simd/vectorized.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

TEST(Integration, InPlaceAndVectorizedConvertersAgree) {
  util::xoshiro256 rng(101);
  for (int t = 0; t < 12; ++t) {
    const std::size_t fields = rng.uniform(2, 32);
    const std::size_t count = rng.uniform(50, 20000);
    std::vector<float> aos(count * fields);
    for (std::size_t l = 0; l < aos.size(); ++l) {
      aos[l] = static_cast<float>(l);
    }
    // Out-of-place via register tiles.
    std::vector<float> soa_oop(aos.size());
    simd::aos_to_soa_vectorized(soa_oop.data(), aos.data(), count, fields);
    // In place via the skinny engine.
    auto soa_ip = aos;
    aos_to_soa(soa_ip.data(), count, fields);
    ASSERT_EQ(soa_ip, soa_oop) << count << "x" << fields;
  }
}

TEST(Integration, WarpTileTransposeEqualsLibraryTranspose) {
  // Transposing an m x 32 matrix through per-warp register tiles (one
  // column-block at a time) must equal the library's in-place transpose.
  constexpr unsigned kWidth = 32;
  for (unsigned m : {2u, 3u, 7u, 8u, 16u, 31u}) {
    const std::size_t tiles = 9;
    const std::size_t rows = m;
    const std::size_t cols = kWidth * tiles;
    // AoS view: `cols` structures of m fields = cols x m row-major.
    auto aos = util::iota_matrix<std::uint32_t>(cols, m);
    // Library: transpose to m x cols (the SoA layout).
    auto via_library = aos;
    transpose(via_library.data(), cols, m);

    // Warp path: each warp loads 32 structures and stores them into the
    // SoA layout register-row by register-row.
    std::vector<std::uint32_t> via_warp(aos.size());
    const auto mm = simd::warp_tile_math(m, kWidth);
    simd::warp<std::uint32_t> w(kWidth, m);
    for (std::size_t tile = 0; tile < tiles; ++tile) {
      simd::warp_load_structs(w, mm, aos.data() + tile * kWidth * m);
      for (unsigned r = 0; r < m; ++r) {
        for (unsigned t = 0; t < kWidth; ++t) {
          via_warp[r * cols + tile * kWidth + t] = w.reg(r, t);
        }
      }
    }
    ASSERT_EQ(via_warp, via_library) << "m=" << m;
    (void)rows;
  }
}

TEST(Integration, CoalescedPtrPipelineMatchesScalarPipeline) {
  struct sample {
    float value;
    std::uint32_t tag;
  };
  constexpr unsigned kWidth = 32;
  constexpr std::size_t kCount = kWidth * 40;
  std::vector<sample> a(kCount);
  std::vector<sample> b(kCount);
  for (std::size_t k = 0; k < kCount; ++k) {
    a[k] = b[k] = {static_cast<float>(k), static_cast<std::uint32_t>(k)};
  }
  // Scalar pipeline.
  for (auto& s : a) {
    s.value = s.value * 2 + 1;
    s.tag ^= 0xffu;
  }
  // Warp-cooperative pipeline through coalesced_ptr.
  simd::coalesced_ptr<sample> cp(b.data(), kWidth);
  std::vector<sample> batch(kWidth);
  for (std::size_t first = 0; first < kCount; first += kWidth) {
    cp.load_batch(first, batch);
    for (auto& s : batch) {
      s.value = s.value * 2 + 1;
      s.tag ^= 0xffu;
    }
    cp.store_batch(first, batch);
  }
  for (std::size_t k = 0; k < kCount; ++k) {
    ASSERT_EQ(a[k].value, b[k].value) << k;
    ASSERT_EQ(a[k].tag, b[k].tag) << k;
  }
}

TEST(Integration, AllTransposersAgreeOnOneWorkload) {
  // Library engines, both baselines and the out-of-place reference all
  // produce identical buffers.
  const std::uint64_t m = 84;
  const std::uint64_t n = 132;
  const auto src = util::iota_matrix<std::uint64_t>(m, n);
  std::vector<std::vector<std::uint64_t>> results;

  for (engine_kind eng : {engine_kind::reference, engine_kind::blocked}) {
    options opts;
    opts.engine = eng;
    auto a = src;
    transpose(a.data(), m, n, storage_order::row_major, opts);
    results.push_back(std::move(a));
  }
  {
    auto a = src;
    baselines::cycle_following_transpose(a.data(), m, n);
    results.push_back(std::move(a));
  }
  {
    auto a = src;
    baselines::out_of_place_transpose(a.data(), m, n);
    results.push_back(std::move(a));
  }
  for (std::size_t k = 1; k < results.size(); ++k) {
    ASSERT_EQ(results[k], results[0]) << "variant " << k;
  }
}

TEST(Integration, CycleStatisticsPredictCycleFollowingWork) {
  // The sum of cycle lengths equals the number of moved elements, which
  // is what the bitvector transposer actually moves.
  const std::uint64_t m = 30;
  const std::uint64_t n = 42;
  const auto lengths = baselines::transpose_cycle_lengths(m, n);
  const std::uint64_t moved = std::accumulate(
      lengths.begin(), lengths.end(), std::uint64_t{0});
  EXPECT_EQ(moved, m * n - 2);
}

TEST(Integration, ExecutorChainAcrossShapes) {
  // A 3-stage pipeline: AoS -> SoA (skinny), square transpose (blocked),
  // back again — using planned executors, verifying against a scalar
  // model.
  const std::size_t count = 64 * 64;
  const std::size_t fields = 16;
  auto data = util::iota_matrix<std::uint32_t>(count, fields);
  const auto src = data;

  transposer<std::uint32_t> to_soa(count, fields);
  transposer<std::uint32_t> back(fields, count);
  for (int round = 0; round < 3; ++round) {
    to_soa(data.data());
    // Field-major now; a cheap model check on one field.
    for (std::size_t s = 0; s < count; s += 977) {
      ASSERT_EQ(data[3 * count + s], src[s * fields + 3]);
    }
    back(data.data());
    ASSERT_EQ(data, src) << "round " << round;
  }
}

}  // namespace
