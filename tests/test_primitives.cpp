// Tests for the permutation and rotation primitives (core/permute.hpp,
// core/rotate.hpp) against brute-force models: row gathers/scatters,
// column gathers, cycle discovery and replay, coarse/fine/naive rotation
// equivalence, the window-normalization logic, and the fallback path for
// amount functions that violate the sub-row window assumption.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/permute.hpp"
#include "core/rotate.hpp"
#include "util/aligned.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;
using namespace inplace::detail;

// Brute-force rotation model: dst[i][j] = src[(i + amount(j)) % m][j].
template <typename AmountFn>
std::vector<std::uint32_t> rotated_model(const std::vector<std::uint32_t>& a,
                                         std::uint64_t m, std::uint64_t n,
                                         AmountFn amount) {
  std::vector<std::uint32_t> out(a.size());
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      out[i * n + j] = a[(i + amount(j)) % m * n + j];
    }
  }
  return out;
}

TEST(Primitives, RowGatherAndScatterAreInverses) {
  const std::uint64_t n = 17;
  std::vector<std::uint32_t> row(n);
  util::fill_iota(std::span<std::uint32_t>(row));
  const auto src = row;
  util::aligned_vector<std::uint32_t> tmp(n);
  const auto idx = [n](std::uint64_t j) { return (j * 5 + 3) % n; };
  row_gather_inplace(row.data(), n, tmp.data(), idx);
  for (std::uint64_t j = 0; j < n; ++j) {
    EXPECT_EQ(row[j], src[idx(j)]);
  }
  row_scatter_inplace(row.data(), n, tmp.data(), idx);
  EXPECT_EQ(row, src);
}

TEST(Primitives, ColumnGatherMatchesModel) {
  const std::uint64_t m = 9;
  const std::uint64_t n = 5;
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  util::aligned_vector<std::uint32_t> tmp(m);
  const auto idx = [m](std::uint64_t i) { return (i * 2 + 1) % m; };
  column_gather_inplace(a.data(), m, n, 3, tmp.data(), idx);
  for (std::uint64_t i = 0; i < m; ++i) {
    EXPECT_EQ(a[i * n + 3], src[idx(i) * n + 3]);
    EXPECT_EQ(a[i * n + 0], src[i * n + 0]);  // other columns untouched
  }
}

TEST(Primitives, FindCyclesCoversPermutation) {
  const std::uint64_t m = 12;
  const auto perm = [m](std::uint64_t i) { return (i * 5) % m; };  // gcd=1
  std::vector<std::uint8_t> visited(m);
  std::vector<std::uint64_t> cycles;
  find_cycles(m, perm, visited, cycles);
  // Every element visited exactly once.
  for (std::uint64_t i = 0; i < m; ++i) {
    EXPECT_TRUE(visited[i]) << i;
  }
  // Fixed points are not recorded as cycles.
  std::vector<std::uint8_t> v2(m);
  std::vector<std::uint64_t> c2;
  find_cycles(m, [](std::uint64_t i) { return i; }, v2, c2);
  EXPECT_TRUE(c2.empty());
}

TEST(Primitives, PermuteRowsInGroupMatchesModel) {
  const std::uint64_t m = 10;
  const std::uint64_t n = 8;
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  const auto perm = [m](std::uint64_t i) { return (i * 3 + 1) % m; };
  std::vector<std::uint8_t> visited(m);
  std::vector<std::uint64_t> cycles;
  find_cycles(m, perm, visited, cycles);
  std::vector<std::uint32_t> tmp(n);
  // Apply in two groups of width 4.
  permute_rows_in_group(a.data(), n, 0, 4, perm, cycles, tmp.data());
  permute_rows_in_group(a.data(), n, 4, 4, perm, cycles, tmp.data());
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      EXPECT_EQ(a[i * n + j], src[perm(i) * n + j]) << i << "," << j;
    }
  }
}

TEST(Primitives, CoarseRotateEqualsNaive) {
  util::xoshiro256 rng(31);
  for (int t = 0; t < 30; ++t) {
    const std::uint64_t m = rng.uniform(2, 40);
    const std::uint64_t n = rng.uniform(4, 24);
    const std::uint64_t w = rng.uniform(1, n + 1);
    const std::uint64_t k = rng.uniform(0, m);
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    const auto want = rotated_model(a, m, n, [&](std::uint64_t j) {
      return j < w ? k : 0;  // rotate only the group at j0 = 0
    });
    std::vector<std::uint32_t> sub(w);
    coarse_rotate_group(a.data(), m, n, 0, w, k, sub.data());
    ASSERT_EQ(a, want) << m << "x" << n << " w=" << w << " k=" << k;
  }
}

TEST(Primitives, FineRotateEqualsNaive) {
  util::xoshiro256 rng(32);
  for (int t = 0; t < 30; ++t) {
    const std::uint64_t m = rng.uniform(3, 50);
    const std::uint64_t n = rng.uniform(2, 16);
    const std::uint64_t w = n;
    const std::uint64_t max_res = std::min(w, m) - 1;
    std::vector<std::uint64_t> res(w);
    for (auto& r : res) {
      r = max_res == 0 ? 0 : rng.uniform(0, max_res + 1);
    }
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    const auto want = rotated_model(
        a, m, n, [&](std::uint64_t j) { return res[j]; });
    std::vector<std::uint32_t> head(std::max<std::uint64_t>(1, max_res) * w);
    fine_rotate_group(a.data(), m, n, 0, w, res.data(), head.data());
    ASSERT_EQ(a, want) << m << "x" << n;
  }
}

TEST(Primitives, GroupRotateHandlesAllPaperAmountFamilies) {
  // The four rotation families the engines use: +j, -j, +⌊j/b⌋, -⌊j/b⌋.
  util::xoshiro256 rng(33);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t m = rng.uniform(2, 60);
    const std::uint64_t n = rng.uniform(2, 60);
    const std::uint64_t b = rng.uniform(1, 8);
    const std::uint64_t width = rng.uniform(4, 20);
    const int family = static_cast<int>(rng.uniform(0, 4));
    const auto amount = [&](std::uint64_t j) -> std::uint64_t {
      switch (family) {
        case 0:
          return j % m;
        case 1:
          return (m - j % m) % m;
        case 2:
          return (j / b) % m;
        default:
          return (m - (j / b) % m) % m;
      }
    };
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    const auto want = rotated_model(a, m, n, amount);
    workspace<std::uint32_t> ws;
    ws.reserve(m, n, width);
    rotate_columns_blocked(a.data(), m, n, width, amount, ws);
    ASSERT_EQ(a, want) << "family " << family << " " << m << "x" << n
                       << " b=" << b << " w=" << width;
  }
}

TEST(Primitives, GroupRotateFallsBackOnWindowViolation) {
  // A pseudo-random amount function violates the window assumption; the
  // group machinery must detect it and fall back to naive rotation.
  const std::uint64_t m = 29;
  const std::uint64_t n = 16;
  const auto amount = [m](std::uint64_t j) { return (j * 13 + 5) % m; };
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto want = rotated_model(a, m, n, amount);
  workspace<std::uint32_t> ws;
  ws.reserve(m, n, 8);
  rotate_columns_blocked(a.data(), m, n, 8, amount, ws);
  EXPECT_EQ(a, want);
}

TEST(Primitives, RotateDegenerateRows) {
  // m == 1: rotation is the identity regardless of amounts.
  auto a = util::iota_matrix<std::uint32_t>(1, 10);
  const auto src = a;
  workspace<std::uint32_t> ws;
  ws.reserve(1, 10, 4);
  rotate_columns_blocked(a.data(), 1, 10, 4,
                         [](std::uint64_t j) { return j; }, ws);
  EXPECT_EQ(a, src);
}

TEST(Primitives, WorkspaceReserveSizes) {
  workspace<double> ws;
  ws.reserve(100, 30, 8);
  EXPECT_EQ(ws.line.size(), 100u);  // max(m, n)
  EXPECT_EQ(ws.head.size(), 64u);   // width^2
  EXPECT_EQ(ws.subrow.size(), 8u);
  EXPECT_EQ(ws.visited.size(), 100u);
  EXPECT_EQ(ws.offsets.size(), 8u);
}

}  // namespace
