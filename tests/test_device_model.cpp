// Tests for the analytic GPU device model (memsim/device_model.hpp):
// structural invariants (positive times, pass accounting, monotonicity)
// and the paper-facing shape properties it was built to reproduce —
// element-size ordering, the on-chip row band, skinny > general,
// degenerate-tile collapse, and Table 2 magnitudes within honest bands.

#include "memsim/device_model.hpp"

#include <gtest/gtest.h>

#include "baselines/sung_tiled.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#include <vector>

namespace {

using namespace inplace::memsim;

TEST(DeviceModel, PredictionsArePositiveAndAccounted) {
  const auto p = predict_c2r(5000, 4000, 4);
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.throughput_gbs, 0.0);
  EXPECT_FALSE(p.passes.empty());
  double sum = 0.0;
  for (const auto& pass : p.passes) {
    EXPECT_GT(pass.seconds, 0.0) << pass.name;
    EXPECT_LE(pass.read_efficiency, 1.0);
    EXPECT_LE(pass.write_efficiency, 1.0);
    sum += pass.seconds;
  }
  EXPECT_DOUBLE_EQ(sum, p.seconds);
}

TEST(DeviceModel, ThroughputBelowDevicePeak) {
  const device_params dev;
  for (auto [m, n] : {std::pair<std::uint64_t, std::uint64_t>{1000, 1000},
                      {20000, 100},
                      {100, 20000},
                      {7200, 1800}}) {
    EXPECT_LT(predict_heuristic(m, n, 8, dev).throughput_gbs,
              dev.achievable_bandwidth_gbs);
  }
}

TEST(DeviceModel, DoublesTransposeFasterThanFloats) {
  // Table 2 / Section 5.2: the scattered row-shuffle reads are more
  // efficient for 64-bit elements.
  // (Holds in the regime where both element sizes gather from global
  // memory, i.e. rows beyond the shared-memory capacity.)
  for (auto [m, n] : {std::pair<std::uint64_t, std::uint64_t>{9000, 8000},
                      {12000, 9000},
                      {19997, 15013}}) {
    EXPECT_GT(predict_heuristic(m, n, 8).throughput_gbs,
              predict_heuristic(m, n, 4).throughput_gbs)
        << m << "x" << n;
  }
}

TEST(DeviceModel, OnChipRowBandIsFaster) {
  // Figure 4's band: small n keeps rows entirely on chip; very large n
  // additionally pays the spill round trip.
  const auto band = predict_c2r(20000, 2000, 4);     // on-chip rows
  const auto bulk = predict_c2r(20000, 15000, 4);    // register regime
  const auto spill = predict_c2r(20000, 80000, 4);   // beyond registers
  EXPECT_GT(band.throughput_gbs, 1.2 * bulk.throughput_gbs);
  EXPECT_GT(bulk.throughput_gbs, spill.throughput_gbs);
}

TEST(DeviceModel, CoprimeExtentsSkipPrerotation) {
  const auto coprime = predict_c2r(9973, 9967, 4);   // primes
  const auto shared = predict_c2r(9984, 9984, 4);    // huge gcd
  EXPECT_LT(coprime.passes.size(), shared.passes.size());
  EXPECT_GT(coprime.throughput_gbs, shared.throughput_gbs);
}

TEST(DeviceModel, SkinnyBeatsGeneralEngine) {
  // Figure 7: the specialization's median is above the general engine.
  const auto skinny = predict_skinny(1'000'000, 16, 8);
  const auto general = predict_heuristic(1'000'000, 16, 8);
  EXPECT_GT(skinny.throughput_gbs, general.throughput_gbs);
}

TEST(DeviceModel, SkinnyImprovesWithWiderStructs) {
  // Wider rows amortize the sub-segment row-permute tax.
  EXPECT_GT(predict_skinny(1'000'000, 16, 8).throughput_gbs,
            predict_skinny(1'000'000, 3, 8).throughput_gbs);
}

TEST(DeviceModel, DegenerateTilesCollapse) {
  // Figure 6's tail: inconvenient dimensions hurt the tiled baseline.
  // (A traffic model understates the real collapse — on actual hardware
  // 345/2500 of Sung's runs did not complete at all — so the asserted
  // margin is conservative.)
  const auto good = predict_tiled(7200, 1800, 96, 72, 4);
  const auto bad = predict_tiled(7919, 7907, 1, 1, 4);
  EXPECT_GT(good.throughput_gbs, 1.25 * bad.throughput_gbs);
}

TEST(DeviceModel, Table2MedianMagnitudesWithinBand) {
  // The Table 2 comparison is over the random-extent distribution
  // (medians), not any single shape — well-tiled shapes legitimately
  // model near Sung's published 20.8 GB/s peak.  Allow a factor-2 band
  // around the paper's medians.
  inplace::util::xoshiro256 rng(42);
  std::vector<double> sung;
  std::vector<double> c2r_f;
  std::vector<double> c2r_d;
  for (int t = 0; t < 200; ++t) {
    const auto m = rng.uniform(1000, 20000);
    const auto n = rng.uniform(1000, 20000);
    const auto tiles = inplace::baselines::choose_tiles(m, n);
    sung.push_back(predict_tiled(m, n,
                                 tiles.well_tiled ? tiles.tile_rows : 1,
                                 tiles.well_tiled ? tiles.tile_cols : 1, 4)
                       .throughput_gbs);
    c2r_f.push_back(predict_heuristic(m, n, 4).throughput_gbs);
    c2r_d.push_back(predict_heuristic(m, n, 8).throughput_gbs);
  }
  const double med_sung = inplace::util::median(sung);
  const double med_f = inplace::util::median(c2r_f);
  const double med_d = inplace::util::median(c2r_d);
  EXPECT_GT(med_sung, 5.33 / 2);
  EXPECT_LT(med_sung, 5.33 * 2.5);
  EXPECT_GT(med_f, 14.23 / 2);
  EXPECT_LT(med_f, 14.23 * 2);
  EXPECT_GT(med_d, 19.53 / 2);
  EXPECT_LT(med_d, 19.53 * 2);
  // Orderings from Table 2, on medians.
  EXPECT_GT(med_d, med_f);
  EXPECT_GT(med_f, med_sung);
}

TEST(DeviceModel, WellTiledSungApproachesItsPublishedPeak) {
  // Sung [6] reports a 20.8 GB/s best case on 7200x1800; the model's
  // well-tiled prediction must land in that neighbourhood rather than at
  // the median.
  const auto tiles = inplace::baselines::choose_tiles(7200, 1800);
  ASSERT_TRUE(tiles.well_tiled);
  const double gbs =
      predict_tiled(7200, 1800, tiles.tile_rows, tiles.tile_cols, 4)
          .throughput_gbs;
  EXPECT_GT(gbs, 20.8 / 2);
  EXPECT_LT(gbs, 20.8 * 1.5);
}

TEST(DeviceModel, HeuristicPicksDirectionByShape) {
  // For the row-major transpose, m > n runs C2R on (m, n); otherwise R2C
  // on the swapped view — either way the pass model sees the same
  // (larger, smaller) pair, so both orientations predict identically.
  const auto tall = predict_heuristic(20000, 2000, 4);
  const auto wide = predict_heuristic(2000, 20000, 4);
  EXPECT_DOUBLE_EQ(tall.throughput_gbs, wide.throughput_gbs);
}

TEST(DeviceModel, CustomDeviceParametersScale) {
  device_params fast;
  fast.achievable_bandwidth_gbs = 360.0;  // 2x the K20c
  const auto base = predict_c2r(8000, 6000, 4);
  const auto doubled = predict_c2r(8000, 6000, 4, fast);
  EXPECT_NEAR(doubled.throughput_gbs / base.throughput_gbs, 2.0, 0.05);
}

}  // namespace
