// Telemetry-on tests.  This TU compiles with INPLACE_TELEMETRY=1 (see
// tests/CMakeLists.txt), so the INPLACE_TELEMETRY_SPAN hooks in the engine
// headers are live here — the same per-TU opt-in the bench binaries use.
// Verifies span nesting, the Eq. 37 byte accounting (2*m*n*elem_size moved
// per transposition), plan records, collector bounds and sink scoping.

#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.hpp"
#include "core/tensor.hpp"
#include "core/transpose.hpp"
#include "util/matrix.hpp"

namespace {

using namespace inplace;

static_assert(INPLACE_TELEMETRY_ENABLED == 1,
              "test_telemetry must build with INPLACE_TELEMETRY");

TEST(Telemetry, StageNamesAreStable) {
  EXPECT_STREQ(telemetry::stage_name(telemetry::stage::total), "total");
  EXPECT_STREQ(telemetry::stage_name(telemetry::stage::prerotate),
               "prerotate");
  EXPECT_STREQ(telemetry::stage_name(telemetry::stage::row_shuffle),
               "row_shuffle");
  EXPECT_STREQ(telemetry::stage_name(telemetry::stage::col_shuffle),
               "col_shuffle");
}

TEST(Telemetry, ScopedSinkInstallsAndRestores) {
  EXPECT_EQ(telemetry::current_sink(), nullptr);
  {
    telemetry::collector outer;
    telemetry::scoped_sink outer_guard(&outer);
    EXPECT_EQ(telemetry::current_sink(), &outer);
    {
      telemetry::collector inner;
      telemetry::scoped_sink inner_guard(&inner);
      EXPECT_EQ(telemetry::current_sink(), &inner);
    }
    EXPECT_EQ(telemetry::current_sink(), &outer);
  }
  EXPECT_EQ(telemetry::current_sink(), nullptr);
}

TEST(Telemetry, TransposeEmitsNestedStageSpans) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  std::vector<double> a(64 * 48);
  util::fill_iota(std::span<double>(a));
  transpose(a.data(), 64, 48);

  const auto spans = coll.raw_spans();
  ASSERT_FALSE(spans.empty());
  bool saw_total = false;
  bool saw_stage = false;
  for (const auto& s : spans) {
    if (s.s == telemetry::stage::total) {
      saw_total = true;
      EXPECT_EQ(s.depth, 0);
    } else {
      saw_stage = true;
      EXPECT_EQ(s.depth, 1) << telemetry::stage_name(s.s);
    }
    EXPECT_GE(s.seconds, 0.0);
  }
  EXPECT_TRUE(saw_total);
  EXPECT_TRUE(saw_stage);
  EXPECT_EQ(telemetry::span_depth(), 0);  // all spans closed
}

TEST(Telemetry, TotalSpanCarriesEq37Bytes) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  const std::uint64_t m = 64;
  const std::uint64_t n = 48;
  std::vector<double> a(m * n);
  util::fill_iota(std::span<double>(a));
  transpose(a.data(), m, n);

  const auto totals = coll.totals();
  const auto& total =
      totals[static_cast<std::size_t>(telemetry::stage::total)];
  EXPECT_EQ(total.calls, 1u);
  // Eq. 37: a transposition moves every element once — 2*m*n*elem_size
  // bytes of traffic (one read + one write per element).
  EXPECT_EQ(total.bytes_moved, 2 * m * n * sizeof(double));
  // Theorem 6: scratch stays within max(m, n) elements (plus the engines'
  // constant-size cache-aware buffers, all accounted by the plan).
  EXPECT_GT(total.scratch_bytes_max, 0u);
}

TEST(Telemetry, PlanRecordsMatchThePlan) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  transposer<float> tr(500, 500);  // blocked engine (square)
  std::vector<float> a(500 * 500);
  util::fill_iota(std::span<float>(a));
  tr(a.data());
  tr(a.data());  // repeated runs dedup into one record with count 2

  const auto plans = coll.plan_counts();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].count, 2u);
  EXPECT_STREQ(plans[0].rec.engine, engine_name(tr.plan().engine));
  EXPECT_STREQ(plans[0].rec.direction, direction_name(tr.plan().dir));
  EXPECT_EQ(plans[0].rec.m, tr.plan().m);
  EXPECT_EQ(plans[0].rec.n, tr.plan().n);
  EXPECT_EQ(plans[0].rec.elem_size, sizeof(float));
  EXPECT_EQ(coll.plans_seen(), 2u);
  EXPECT_FALSE(coll.plans_truncated());
}

TEST(Telemetry, CollectorRawCapBoundsMemory) {
  telemetry::collector coll(/*raw_cap=*/2);
  telemetry::scoped_sink guard(&coll);
  std::vector<float> a(32 * 24);
  for (int k = 0; k < 5; ++k) {
    util::fill_iota(std::span<float>(a));
    transpose(a.data(), 32, 24);
  }
  EXPECT_EQ(coll.raw_spans().size(), 2u);     // capped
  EXPECT_GT(coll.spans_seen(), 2u);           // but still counted
  // The on-the-fly aggregates keep full totals past the cap.
  const auto totals = coll.totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(telemetry::stage::total)].calls,
            5u);
}

TEST(Telemetry, ClearResetsEverything) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  std::vector<float> a(16 * 12);
  util::fill_iota(std::span<float>(a));
  transpose(a.data(), 16, 12);
  EXPECT_GT(coll.spans_seen(), 0u);
  coll.clear();
  EXPECT_EQ(coll.spans_seen(), 0u);
  EXPECT_EQ(coll.plans_seen(), 0u);
  EXPECT_TRUE(coll.raw_spans().empty());
}

// Regression: the degenerate-shape early return used to skip the
// telemetry hooks entirely, so 1 x n / m x 1 calls vanished from bench
// JSON.  Every execution path — the one-shot detail::execute_plan, the
// plan-reusing transposer, and the context route — must record the plan
// and a total span even when there is no data movement to do.
TEST(Telemetry, DegenerateShapesStillRecordPlanAndTotalSpan) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  const std::uint64_t n = 17;
  std::vector<float> row(n);
  util::fill_iota(std::span<float>(row));
  const auto before = row;

  transposer<float> tr(1, n);
  tr(row.data());                               // executor path
  detail::execute_plan(row.data(), tr.plan());  // one-shot path
  transpose_context ctx;
  ctx.transpose(row.data(), n, 1);              // context path
  EXPECT_EQ(row, before);  // a vector transposes to itself

  const auto totals = coll.totals();
  const auto& total =
      totals[static_cast<std::size_t>(telemetry::stage::total)];
  EXPECT_EQ(total.calls, 3u);
  EXPECT_EQ(total.bytes_moved, 3 * 2 * n * sizeof(float));
  EXPECT_EQ(coll.plans_seen(), 3u);
  // Two distinct records: the 1 x n plan (seen twice) and the n x 1 plan.
  ASSERT_EQ(coll.plan_counts().size(), 2u);
  EXPECT_EQ(telemetry::span_depth(), 0);
}

// Regression: permute3's early returns (identity permutation, empty or
// unit extents) used to skip telemetry entirely, so layout-conversion
// sweeps undercounted exactly the calls the normalizer elides.  Every
// tensor path — including the ones that move no data — must record a
// plan ("tensor" engine, direction naming the path) and a total span.
TEST(Telemetry, TensorIdentityAndEmptyPathsStillRecord) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  std::vector<float> a(2 * 3 * 4);
  util::fill_iota(std::span<float>(a));
  const auto before = a;
  permute3(a.data(), 2, 3, 4, {0, 1, 2});        // identity permutation
  EXPECT_EQ(a, before);
  permute3<float>(nullptr, 2, 0, 4, {2, 1, 0});  // empty tensor
  permute3(a.data(), 1, 24, 1, {2, 1, 0});       // identity in disguise
  EXPECT_EQ(a, before);

  std::uint64_t identity = 0;
  std::uint64_t empty = 0;
  for (const auto& p : coll.plan_counts()) {
    if (std::string(p.rec.engine) != "tensor") {
      continue;
    }
    if (std::string(p.rec.direction) == "identity") {
      identity += p.count;
      EXPECT_EQ(p.rec.m, 24u);     // element count
      EXPECT_EQ(p.rec.n, 0u);      // passes run
    } else if (std::string(p.rec.direction) == "empty") {
      empty += p.count;
      EXPECT_EQ(p.rec.m, 0u);
    }
  }
  EXPECT_EQ(identity, 2u);
  EXPECT_EQ(empty, 1u);
  const auto totals = coll.totals();
  const auto& total =
      totals[static_cast<std::size_t>(telemetry::stage::total)];
  EXPECT_EQ(total.calls, 3u);  // one envelope span per call, even empty
  EXPECT_EQ(telemetry::span_depth(), 0);
}

// A real N-D run records the "tensor" plan (direction "nd", n = pass
// count, block_width = normalized rank) plus nested spans: the envelope,
// one span per pass, and the inner 2-D executor's own records beneath.
TEST(Telemetry, TensorNdRunsRecordEnvelopeAndPerPassSpans) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  std::vector<float> a(6 * 5 * 4);
  util::fill_iota(std::span<float>(a));
  permute3(a.data(), 6, 5, 4, {2, 1, 0});

  std::uint64_t nd = 0;
  std::uint64_t nd_passes = 0;
  for (const auto& p : coll.plan_counts()) {
    if (std::string(p.rec.engine) == "tensor") {
      ASSERT_STREQ(p.rec.direction, "nd");
      nd += p.count;
      nd_passes = p.rec.n;
      EXPECT_EQ(p.rec.m, 120u);
      EXPECT_EQ(p.rec.block_width, 3u);  // normalized rank
    }
  }
  EXPECT_EQ(nd, 1u);
  EXPECT_GE(nd_passes, 1u);
  const auto totals = coll.totals();
  const auto& total =
      totals[static_cast<std::size_t>(telemetry::stage::total)];
  // Envelope + one span per pass (the inner executors add more).
  EXPECT_GE(total.calls, 1u + nd_passes);
  EXPECT_EQ(telemetry::span_depth(), 0);
}

// Context cache hits set plan_record::from_cache, so warm and cold
// executions of one plan land in separate dedup rows instead of blending.
TEST(Telemetry, ContextSeparatesWarmAndColdPlanRecords) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  transpose_context ctx;  // fresh context: first call is genuinely cold
  std::vector<double> a(40 * 28);
  util::fill_iota(std::span<double>(a));
  ctx.transpose(a.data(), 40, 28);  // cold: allocates + discovers cycles
  ctx.transpose(a.data(), 40, 28);  // warm
  ctx.transpose(a.data(), 40, 28);  // warm

  const auto plans = coll.plan_counts();
  ASSERT_EQ(plans.size(), 2u);
  std::uint64_t cold = 0;
  std::uint64_t warm = 0;
  for (const auto& p : plans) {
    EXPECT_EQ(p.rec.m, 40u);
    EXPECT_EQ(p.rec.n, 28u);
    (p.rec.from_cache ? warm : cold) += p.count;
  }
  EXPECT_EQ(cold, 1u);
  EXPECT_EQ(warm, 2u);
}

// Concurrent transposes under one installed sink: the collector contract
// says it must tolerate calls from any thread, and the sink registry is a
// process-global atomic.  (Named to contain "Transpose" so the sanitizer
// matrix's TSan filter runs it.)
TEST(Telemetry, ConcurrentTransposesRecordUnderOneSink) {
  telemetry::collector coll;
  telemetry::scoped_sink guard(&coll);
  transpose_context ctx;
  constexpr int workers = 6;
  constexpr int iters = 8;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t m = 24 + static_cast<std::size_t>(t % 3) * 8;
      std::vector<float> a(m * 18);
      util::fill_iota(std::span<float>(a));
      for (int k = 0; k < iters; ++k) {
        ctx.transpose(a.data(), m, 18);
      }
      EXPECT_EQ(telemetry::span_depth(), 0);  // per-thread nesting closed
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const auto totals = coll.totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(telemetry::stage::total)].calls,
            static_cast<std::uint64_t>(workers * iters));
  EXPECT_EQ(coll.plans_seen(), static_cast<std::uint64_t>(workers * iters));
}

TEST(Telemetry, NoSinkMeansNoRecords) {
  ASSERT_EQ(telemetry::current_sink(), nullptr);
  std::vector<float> a(16 * 12);
  util::fill_iota(std::span<float>(a));
  EXPECT_NO_THROW(transpose(a.data(), 16, 12));  // spans open, nobody listens
  EXPECT_EQ(telemetry::span_depth(), 0);
}

}  // namespace
