// Failure-semantics suite (this TU compiles with INPLACE_FAILPOINTS and
// INPLACE_TELEMETRY): the fault-injection registry itself, stage-boundary
// rollback across every engine and direction, the OOM degradation ladder
// (full -> reduced -> cycle_follow), and the async lifecycle guarantees of
// transpose_context — every future settles, queued jobs fail
// deterministically on shutdown/cancel, worker faults never lose a job.
//
// The per-entry-point contract under test (DESIGN.md §11): a failing call
// leaves the caller's buffer fully transposed or bit-exactly restored,
// never scrambled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/executor.hpp"
#include "core/failpoint.hpp"
#include "core/telemetry.hpp"
#include "util/matrix.hpp"

namespace {

using namespace inplace;
namespace fp = inplace::failpoint;

/// Sets (or, for value == nullptr, removes) an environment variable for
/// the test's duration, restoring the previous state on exit.
class env_guard {
 public:
  env_guard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~env_guard() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
    fp::reload_env();
  }
  env_guard(const env_guard&) = delete;
  env_guard& operator=(const env_guard&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

template <typename T>
void expect_same(const std::vector<T>& got, const std::vector<T>& want,
                 const char* what) {
  EXPECT_EQ(util::first_mismatch(std::span<const T>(got),
                                 std::span<const T>(want)),
            -1)
      << what;
}

template <typename T>
void expect_transposed(const std::vector<T>& got, const std::vector<T>& src,
                       std::size_t rows, std::size_t cols, const char* what) {
  const std::vector<T> want =
      util::reference_transpose(std::span<const T>(src), rows, cols);
  expect_same(got, want, what);
}

// --- the failpoint registry --------------------------------------------------

TEST(Failpoint, ArmFireDisarmAndRetiredCounters) {
  EXPECT_FALSE(fp::any_armed());
  fp::arm("t.unit");
  EXPECT_TRUE(fp::any_armed());
  EXPECT_THROW(fp::trigger("t.unit"), fp::injected_fault);
  EXPECT_EQ(fp::hits("t.unit"), 1u);
  EXPECT_EQ(fp::fires("t.unit"), 1u);
  // Unarmed names pass through silently, armed or not elsewhere.
  EXPECT_NO_THROW(fp::trigger("t.other"));
  EXPECT_TRUE(fp::disarm("t.unit"));
  EXPECT_FALSE(fp::disarm("t.unit"));
  EXPECT_FALSE(fp::any_armed());
  EXPECT_NO_THROW(fp::trigger("t.unit"));
  // Counters survive disarm (the retired table) so scoped_trigger tests
  // can assert after the scope closes.
  EXPECT_EQ(fp::hits("t.unit"), 1u);
  EXPECT_EQ(fp::fires("t.unit"), 1u);
}

TEST(Failpoint, SkipAndCountBoundTheFiringWindow) {
  fp::scoped_trigger armed("t.window", fp::mode::fault, /*skip=*/2,
                           /*count=*/1);
  EXPECT_NO_THROW(fp::trigger("t.window"));  // hit 1 (skipped)
  EXPECT_NO_THROW(fp::trigger("t.window"));  // hit 2 (skipped)
  EXPECT_THROW(fp::trigger("t.window"), fp::injected_fault);  // hit 3 fires
  EXPECT_NO_THROW(fp::trigger("t.window"));  // count exhausted
  EXPECT_EQ(fp::hits("t.window"), 4u);
  EXPECT_EQ(fp::fires("t.window"), 1u);
}

TEST(Failpoint, OomModeThrowsBadAllocAndCountModeNeverThrows) {
  {
    fp::scoped_trigger armed("t.oom", fp::mode::oom);
    EXPECT_THROW(fp::trigger("t.oom"), std::bad_alloc);
  }
  {
    fp::scoped_trigger armed("t.count", fp::mode::count);
    EXPECT_NO_THROW(fp::trigger("t.count"));
    EXPECT_NO_THROW(fp::trigger("t.count"));
  }
  EXPECT_EQ(fp::hits("t.count"), 2u);
  EXPECT_EQ(fp::fires("t.count"), 2u);  // fired (counted), never threw
}

TEST(Failpoint, EnvArmsReloadsAndRejectsMalformedEntries) {
  {
    const env_guard guard("INPLACE_FAILPOINTS",
                          "t.env:count:1,t.bad:explode,:fault");
    fp::reload_env();
    EXPECT_TRUE(fp::any_armed());
    EXPECT_NO_THROW(fp::trigger("t.env"));  // skipped (skip=1)
    EXPECT_NO_THROW(fp::trigger("t.env"));  // counted, mode count
    EXPECT_EQ(fp::hits("t.env"), 2u);
    EXPECT_EQ(fp::fires("t.env"), 1u);
    // The malformed entries were rejected loudly, not armed quietly.
    EXPECT_NO_THROW(fp::trigger("t.bad"));
    EXPECT_EQ(fp::hits("t.bad"), 0u);
  }
  // env_guard restored + reloaded: the env arm is gone.
  EXPECT_FALSE(fp::any_armed());
  EXPECT_NO_THROW(fp::trigger("t.env"));
  EXPECT_EQ(fp::hits("t.env"), 2u);  // retired counters persist
}

// --- stage-boundary rollback -------------------------------------------------

// Regression (noexcept audit): rollback_stages runs inside a catch block
// while the engine's exception is in flight; if the rollback itself could
// throw, the unwind would escalate to std::terminate.  The "never throws"
// contract is part of the signature, proven here at compile time.
static_assert(noexcept(detail::rollback_stages(
    static_cast<double*>(nullptr),
    std::declval<const transpose_math<fast_divmod>&>(),
    std::declval<const transpose_plan&>(),
    static_cast<detail::workspace<double>*>(nullptr),
    static_cast<detail::workspace_pool<double>*>(nullptr),
    std::declval<const detail::stage_progress&>())));

/// Arms `name`, runs a directed transposition of src through a fresh
/// transposer, and asserts the injected failure left the buffer
/// bit-exactly restored; then reruns unarmed and asserts success.
template <typename T>
void check_rollback(std::size_t m, std::size_t n, direction dir,
                    const options& opts, const char* name) {
  SCOPED_TRACE(name);
  const auto src = util::iota_matrix<T>(m, n);
  auto buf = src;
  const transpose_plan plan =
      make_directed_plan(buf.data(), m, n, dir, opts, sizeof(T));
  {
    fp::scoped_trigger armed(name);
    transposer<T> tr(plan);
    EXPECT_THROW(tr(buf.data()), fp::injected_fault);
    EXPECT_GE(fp::fires(name), 1u) << "failpoint never traversed";
  }
  expect_same(buf, src, "buffer not restored after injected fault");
  // Unarmed rerun on a fresh transposer: the same plan must now succeed.
  transposer<T> tr(plan);
  tr(buf.data());
  if (dir == direction::c2r) {
    expect_transposed(buf, src, m, n, "post-rollback rerun");
  } else {
    // r2c is c2r's inverse: c2r(r2c(x)) == x.
    transposer<T> inv(
        make_directed_plan(buf.data(), m, n, direction::c2r, opts,
                           sizeof(T)));
    inv(buf.data());
    expect_same(buf, src, "r2c/c2r round trip after rollback");
  }
}

TEST(Rollback, ReferenceEngineRestoresAtEveryStageBoundary) {
  options opts;
  opts.engine = engine_kind::reference;
  // 40 x 25: gcd 5 > 1, so the prerotate stage genuinely runs.
  for (const char* name :
       {"reference.c2r.after_prerotate", "reference.c2r.after_row_shuffle",
        "reference.c2r.after_col_shuffle"}) {
    check_rollback<double>(40, 25, direction::c2r, opts, name);
  }
  for (const char* name :
       {"reference.r2c.after_col_shuffle", "reference.r2c.after_row_shuffle",
        "reference.r2c.after_prerotate"}) {
    check_rollback<double>(40, 25, direction::r2c, opts, name);
  }
}

TEST(Rollback, SkinnyEngineRestoresAtEveryStageBoundary) {
  options opts;
  opts.engine = engine_kind::skinny;
  for (const char* name :
       {"skinny.c2r.after_fused_row", "skinny.c2r.after_rotation",
        "skinny.c2r.after_permute"}) {
    check_rollback<float>(1000, 8, direction::c2r, opts, name);
  }
  for (const char* name :
       {"skinny.r2c.after_permute", "skinny.r2c.after_rotation",
        "skinny.r2c.after_fused_row"}) {
    check_rollback<float>(1000, 8, direction::r2c, opts, name);
  }
}

TEST(Rollback, BlockedEngineRestoresAtEveryStageBoundary) {
  options opts;
  opts.engine = engine_kind::blocked;
  // 64 x 48: gcd 16 — prerotate runs, parallel pool engaged.
  for (const char* name :
       {"blocked.c2r.after_prerotate", "blocked.c2r.after_row_shuffle",
        "blocked.c2r.after_col_shuffle"}) {
    check_rollback<double>(64, 48, direction::c2r, opts, name);
  }
  for (const char* name :
       {"blocked.r2c.after_col_shuffle", "blocked.r2c.after_row_shuffle",
        "blocked.r2c.after_prerotate"}) {
    check_rollback<double>(64, 48, direction::r2c, opts, name);
  }
}

TEST(Rollback, OneShotExecutePlanPathRestoresToo) {
  // The uncached execute_plan path (free functions) shares run_with_math's
  // rollback; prove it independently of the transposer.
  const std::size_t m = 56;
  const std::size_t n = 42;
  const auto src = util::iota_matrix<double>(m, n);
  auto buf = src;
  const transpose_plan plan =
      make_directed_plan(buf.data(), m, n, direction::c2r, {}, sizeof(double));
  {
    fp::scoped_trigger armed("blocked.c2r.after_row_shuffle");
    EXPECT_THROW(detail::execute_plan(buf.data(), plan), fp::injected_fault);
  }
  expect_same(buf, src, "execute_plan rollback");
  detail::execute_plan(buf.data(), plan);
  expect_transposed(buf, src, m, n, "execute_plan rerun");
}

// --- the OOM degradation ladder ----------------------------------------------

TEST(OomLadder, FullRungFailureDegradesToReducedAndStaysExact) {
  const struct {
    std::size_t m, n;
    engine_kind engine;
    const char* what;
  } cases[] = {
      {64, 48, engine_kind::blocked, "blocked"},
      {1000, 8, engine_kind::skinny, "skinny"},
      {40, 25, engine_kind::reference, "reference"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.what);
    options opts;
    opts.engine = c.engine;
    const auto src = util::iota_matrix<double>(c.m, c.n);
    auto buf = src;
    const transpose_plan plan = make_directed_plan(
        buf.data(), c.m, c.n, direction::c2r, opts, sizeof(double));
    fp::scoped_trigger no_full("exec.alloc.full", fp::mode::oom);
    transposer<double> tr(plan);
    EXPECT_EQ(tr.plan().rung, scratch_rung::reduced);
    EXPECT_EQ(tr.plan().threads, 1);
    tr(buf.data());
    expect_transposed(buf, src, c.m, c.n, "reduced rung");
  }
}

TEST(OomLadder, BothAllocRungsFailingFallBackToCycleFollow) {
  for (const direction dir : {direction::c2r, direction::r2c}) {
    SCOPED_TRACE(dir == direction::c2r ? "c2r" : "r2c");
    const std::size_t m = 64;
    const std::size_t n = 48;
    const auto src = util::iota_matrix<double>(m, n);
    auto buf = src;
    const transpose_plan plan =
        make_directed_plan(buf.data(), m, n, dir, {}, sizeof(double));
    fp::scoped_trigger no_full("exec.alloc.full", fp::mode::oom);
    fp::scoped_trigger no_reduced("exec.alloc.reduced", fp::mode::oom);
    transposer<double> tr(plan);
    EXPECT_EQ(tr.plan().rung, scratch_rung::cycle_follow);
    tr(buf.data());
    if (dir == direction::c2r) {
      expect_transposed(buf, src, m, n, "cycle_follow rung");
    } else {
      transposer<double> inv(make_directed_plan(buf.data(), m, n,
                                                direction::c2r, {},
                                                sizeof(double)));
      inv(buf.data());
      expect_same(buf, src, "cycle_follow r2c round trip");
    }
  }
}

TEST(OomLadder, RealAllocatorFailuresWalkTheLadderMidReserve) {
  const std::size_t m = 64;
  const std::size_t n = 48;
  const auto src = util::iota_matrix<double>(m, n);

  {
    // Every scratch allocation fails (the aligned-allocator shim): both
    // allocating rungs collapse and the ladder lands on cycle_follow.
    auto buf = src;
    fp::scoped_trigger no_alloc("alloc.aligned", fp::mode::oom);
    transposer<double> tr(m, n);
    EXPECT_EQ(tr.plan().rung, scratch_rung::cycle_follow);
    tr(buf.data());
    // At least one real allocation failed through the shim (exactly one
    // per allocating rung the ladder still visited — the sanitizer pass
    // env-forces the full rung off before it allocates).
    EXPECT_GE(fp::fires("alloc.aligned"), 1u);
    expect_transposed(buf, src, m, n, "allocator-driven cycle_follow");
  }
  {
    // Mid-reserve failure: the first allocation succeeds, a later one
    // throws, and acquire_scratch must release the partial rung cleanly
    // and land on a lower one — never leak or scramble.
    auto buf = src;
    fp::scoped_trigger partial("alloc.aligned", fp::mode::oom, /*skip=*/1);
    transposer<double> tr(m, n);
    EXPECT_NE(tr.plan().rung, scratch_rung::full);
    tr(buf.data());
    expect_transposed(buf, src, m, n, "mid-reserve degradation");
  }
}

TEST(OomLadder, AllRungsForbiddenThrowsWithBufferUntouched) {
  transpose_context ctx;
  const std::size_t m = 48;
  const std::size_t n = 36;
  const auto src = util::iota_matrix<double>(m, n);
  auto buf = src;
  fp::scoped_trigger no_full("exec.alloc.full", fp::mode::oom);
  fp::scoped_trigger no_reduced("exec.alloc.reduced", fp::mode::oom);
  fp::scoped_trigger no_floor("exec.rung.cycle_follow");
  EXPECT_THROW(ctx.transpose(buf.data(), m, n), fp::injected_fault);
  expect_same(buf, src, "buffer touched before any pass ran");
  EXPECT_EQ(ctx.stats().executions, 0u);
  EXPECT_EQ(ctx.cached_bytes(), 0u);
}

TEST(OomLadder, EnvDrivenArmingDegradesProcessWide) {
  const env_guard guard("INPLACE_FAILPOINTS", "exec.alloc.full:oom");
  fp::reload_env();
  const std::size_t m = 40;
  const std::size_t n = 30;
  const auto src = util::iota_matrix<float>(m, n);
  auto buf = src;
  transposer<float> tr(m, n);
  EXPECT_EQ(tr.plan().rung, scratch_rung::reduced);
  tr(buf.data());
  expect_transposed(buf, src, m, n, "env-armed reduced rung");
}

TEST(OomLadder, ContextCountsDegradedArenasAndTelemetryRecordsTheRung) {
  telemetry::collector col;
  telemetry::scoped_sink sink(&col);
  transpose_context ctx;
  const std::size_t m = 64;
  const std::size_t n = 48;
  const auto src = util::iota_matrix<double>(m, n);
  auto buf = src;
  {
    fp::scoped_trigger no_full("exec.alloc.full", fp::mode::oom);
    ctx.transpose(buf.data(), m, n);
  }
  expect_transposed(buf, src, m, n, "degraded context execution");
  EXPECT_EQ(ctx.stats().arenas_degraded, 1u);

  // A second, unpressured execution of the same shape plans a fresh
  // arena?  No — the degraded arena was recycled; its plan still carries
  // the reduced rung, and the dedup table keeps the two rungs distinct.
  bool saw_reduced = false;
  for (const auto& pc : col.plan_counts()) {
    if (std::string(pc.rec.rung) == "reduced") {
      saw_reduced = true;
    }
  }
  EXPECT_TRUE(saw_reduced) << "telemetry lost the degradation rung";
}

// --- async lifecycle ---------------------------------------------------------

/// Settles every future and checks the per-job contract: completed jobs
/// hold the transpose, cancelled jobs hold the untouched input and threw
/// context_shutdown.  Returns how many were cancelled.
template <typename T>
std::size_t settle_all(std::vector<std::future<void>>& futs,
                       std::vector<std::vector<T>>& bufs,
                       const std::vector<T>& src, std::size_t rows,
                       std::size_t cols) {
  std::size_t cancelled = 0;
  for (std::size_t k = 0; k < futs.size(); ++k) {
    EXPECT_TRUE(futs[k].valid());
    try {
      futs[k].get();
      expect_transposed(bufs[k], src, rows, cols, "completed async job");
    } catch (const context_shutdown&) {
      ++cancelled;
      expect_same(bufs[k], src, "cancelled job must not touch its buffer");
    }
  }
  return cancelled;
}

TEST(Async, DestructionSettlesEveryOutstandingFuture) {
  const std::size_t m = 96;
  const std::size_t n = 72;
  const auto src = util::iota_matrix<double>(m, n);
  constexpr std::size_t jobs = 24;
  std::vector<std::vector<double>> bufs(jobs, src);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  std::size_t cancelled = 0;
  {
    context_options copts;
    copts.workers = 1;  // one worker: most jobs are still queued at exit
    transpose_context ctx(copts);
    for (auto& buf : bufs) {
      futs.push_back(ctx.submit(buf.data(), m, n));
    }
    // Context destroyed with jobs in flight and pending (the regression
    // this PR fixes: these futures used to hang unsatisfied).
  }
  cancelled = settle_all(futs, bufs, src, m, n);
  // With a single worker and immediate destruction, at least one job ran
  // (drained or in flight) or was cancelled; all 24 are accounted for.
  EXPECT_LE(cancelled, jobs);
}

TEST(Async, ShutdownDefaultFailsPendingAndCountsThem) {
  const std::size_t m = 80;
  const std::size_t n = 60;
  const auto src = util::iota_matrix<double>(m, n);
  constexpr std::size_t jobs = 16;
  std::vector<std::vector<double>> bufs(jobs, src);
  context_options copts;
  copts.workers = 1;
  transpose_context ctx(copts);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  for (auto& buf : bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  ctx.shutdown();  // drain_pending = false
  const std::size_t cancelled = settle_all(futs, bufs, src, m, n);
  EXPECT_EQ(ctx.stats().jobs_cancelled, cancelled);
  EXPECT_EQ(ctx.stats().async_jobs, jobs);
  // Idempotent: a second shutdown is a no-op.
  ctx.shutdown();
  EXPECT_EQ(ctx.stats().jobs_cancelled, cancelled);
}

TEST(Async, ShutdownDrainRunsEverythingAlreadyQueued) {
  const std::size_t m = 64;
  const std::size_t n = 40;
  const auto src = util::iota_matrix<float>(m, n);
  constexpr std::size_t jobs = 12;
  std::vector<std::vector<float>> bufs(jobs, src);
  context_options copts;
  copts.workers = 2;
  transpose_context ctx(copts);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  for (auto& buf : bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  ctx.shutdown(/*drain_pending=*/true);
  for (auto& fut : futs) {
    EXPECT_NO_THROW(fut.get());
  }
  for (const auto& buf : bufs) {
    expect_transposed(buf, src, m, n, "drained job");
  }
  EXPECT_EQ(ctx.stats().jobs_cancelled, 0u);
}

TEST(Async, SubmitAfterShutdownThrowsContextShutdown) {
  transpose_context ctx;
  auto buf = util::iota_matrix<double>(8, 6);
  ctx.shutdown();
  EXPECT_THROW(
      {
        auto fut = ctx.submit(buf.data(), std::size_t{8}, std::size_t{6});
        (void)fut;
      },
      context_shutdown);
  // Synchronous entry points keep working after shutdown.
  EXPECT_NO_THROW(ctx.transpose(buf.data(), 8, 6));
}

TEST(Async, CancelPendingFailsQueuedJobsButKeepsTheContextAlive) {
  const std::size_t m = 72;
  const std::size_t n = 54;
  const auto src = util::iota_matrix<double>(m, n);
  constexpr std::size_t jobs = 16;
  std::vector<std::vector<double>> bufs(jobs, src);
  context_options copts;
  copts.workers = 1;
  transpose_context ctx(copts);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  for (auto& buf : bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  const std::size_t reported = ctx.cancel_pending();
  const std::size_t cancelled = settle_all(futs, bufs, src, m, n);
  EXPECT_EQ(reported, cancelled);
  EXPECT_EQ(ctx.stats().jobs_cancelled, cancelled);
  // The pool survives a cancel: a fresh submit completes normally.
  auto buf = src;
  auto fut = ctx.submit(buf.data(), m, n);
  EXPECT_NO_THROW(fut.get());
  expect_transposed(buf, src, m, n, "submit after cancel_pending");
}

TEST(Async, BackpressureBoundsTheQueueWithoutLosingJobs) {
  const std::size_t m = 48;
  const std::size_t n = 32;
  const auto src = util::iota_matrix<float>(m, n);
  constexpr std::size_t jobs = 32;
  std::vector<std::vector<float>> bufs(jobs, src);
  context_options copts;
  copts.workers = 1;
  copts.max_queue = 1;  // every second submit must block and then resume
  transpose_context ctx(copts);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  for (auto& buf : bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  for (auto& fut : futs) {
    EXPECT_NO_THROW(fut.get());
  }
  for (const auto& buf : bufs) {
    expect_transposed(buf, src, m, n, "backpressured job");
  }
}

TEST(Async, WorkerFaultStillSettlesTheFuture) {
  const std::size_t m = 40;
  const std::size_t n = 24;
  const auto src = util::iota_matrix<double>(m, n);
  transpose_context ctx;
  auto buf = src;
  {
    fp::scoped_trigger armed("ctx.worker.job");
    auto fut = ctx.submit(buf.data(), m, n);
    EXPECT_THROW(fut.get(), fp::injected_fault);
  }
  expect_same(buf, src, "faulted worker must not touch the buffer");
  // Disarmed, the next submit on the same pool completes.
  auto fut = ctx.submit(buf.data(), m, n);
  EXPECT_NO_THROW(fut.get());
  expect_transposed(buf, src, m, n, "post-fault submit");
}

TEST(Async, EnqueueFaultLeavesNoDanglingFuture) {
  const std::size_t m = 32;
  const std::size_t n = 20;
  const auto src = util::iota_matrix<double>(m, n);
  transpose_context ctx;
  auto buf = src;
  {
    fp::scoped_trigger armed("ctx.queue.push");
    EXPECT_THROW(
        {
          auto fut = ctx.submit(buf.data(), m, n);
          (void)fut;
        },
        fp::injected_fault);
  }
  expect_same(buf, src, "failed enqueue must not touch the buffer");
  EXPECT_EQ(ctx.stats().async_jobs, 0u);  // never counted as enqueued
  auto fut = ctx.submit(buf.data(), m, n);
  EXPECT_NO_THROW(fut.get());
}

TEST(Async, PartialWorkerSpawnFailureCleansUpAndRecovers) {
  const std::size_t m = 36;
  const std::size_t n = 28;
  const auto src = util::iota_matrix<double>(m, n);
  context_options copts;
  copts.workers = 4;
  transpose_context ctx(copts);
  auto buf = src;
  {
    // Thread 1 spawns; thread 2's spawn throws: the constructor must join
    // the survivor and propagate, leaving no half-alive pool behind.
    fp::scoped_trigger armed("ctx.spawn", fp::mode::fault, /*skip=*/1);
    EXPECT_THROW(
        {
          auto fut = ctx.submit(buf.data(), m, n);
          (void)fut;
        },
        fp::injected_fault);
  }
  expect_same(buf, src, "spawn failure must not touch the buffer");
  // Disarmed, the lazy pool construction retries and succeeds.
  auto fut = ctx.submit(buf.data(), m, n);
  EXPECT_NO_THROW(fut.get());
  expect_transposed(buf, src, m, n, "submit after recovered spawn");
}

// --- plan-cache / arena consistency under failure ----------------------------

TEST(ArenaConsistency, ThrowingExecutionDropsTheArenaNotTheAccounting) {
  transpose_context ctx;
  const std::size_t m = 64;
  const std::size_t n = 48;
  const auto src = util::iota_matrix<double>(m, n);
  auto buf = src;
  {
    fp::scoped_trigger armed("blocked.c2r.after_row_shuffle");
    EXPECT_THROW(ctx.c2r(buf.data(), m, n), fp::injected_fault);
  }
  expect_same(buf, src, "context rollback");
  auto s = ctx.stats();
  EXPECT_EQ(s.executions, 1u);
  EXPECT_EQ(s.arenas_created, 1u);
  EXPECT_EQ(s.arenas_dropped, 1u);  // never recycled after a throw
  EXPECT_EQ(ctx.cached_bytes(), 0u);

  // The plan entry survives; the next call re-creates an arena and
  // recycles it normally.
  ctx.c2r(buf.data(), m, n);
  expect_transposed(buf, src, m, n, "post-failure context execution");
  s = ctx.stats();
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.arenas_created, 2u);
  EXPECT_EQ(s.arenas_created + s.arenas_reused, s.executions);
  EXPECT_GT(ctx.cached_bytes(), 0u);
}

TEST(ArenaConsistency, FailingExecutionsRacingClearStayConserved) {
  // Half the threads run a shape whose executions always fail (armed
  // stage failpoint), half a healthy shape, while the main thread churns
  // clear() — the counters must conserve and retained_bytes must not
  // underflow (the recycle/evict race this PR fixes).
  transpose_context ctx;
  fp::scoped_trigger armed("reference.c2r.after_row_shuffle");
  constexpr int workers = 6;
  constexpr int iters = 25;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      options ref_opts;
      ref_opts.engine = engine_kind::reference;
      const auto healthy_src = util::iota_matrix<double>(48, 36);
      const auto failing_src = util::iota_matrix<double>(40, 25);
      for (int it = 0; it < iters; ++it) {
        if (t % 2 == 0) {
          auto buf = failing_src;
          try {
            ctx.c2r(buf.data(), 40, 25, ref_opts);
            bad.fetch_add(1);  // must have thrown
          } catch (const fp::injected_fault&) {
            if (util::first_mismatch(std::span<const double>(buf),
                                     std::span<const double>(failing_src)) !=
                -1) {
              bad.fetch_add(1);  // not restored
            }
          }
        } else {
          auto buf = healthy_src;
          ctx.transpose(buf.data(), 48, 36);
          const auto want = util::reference_transpose(
              std::span<const double>(healthy_src), 48, 36);
          if (util::first_mismatch(std::span<const double>(buf),
                                   std::span<const double>(want)) != -1) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (int k = 0; k < 50; ++k) {
    ctx.clear();
    std::this_thread::yield();
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(bad.load(), 0);
  const auto s = ctx.stats();
  EXPECT_EQ(s.executions,
            static_cast<std::uint64_t>(workers * iters));
  EXPECT_EQ(s.arenas_created + s.arenas_reused, s.executions);
  // No retained_bytes underflow: after a final clear the gauge reads 0,
  // not a wrapped ~SIZE_MAX.
  ctx.clear();
  EXPECT_EQ(ctx.cached_bytes(), 0u);
}

// --- tensor engine (permute_nd) failure semantics ----------------------------

/// Out-of-place rank-3 reference for the tensor rollback checks.
std::vector<double> reference_permute3(const std::vector<double>& in,
                                       std::size_t d0, std::size_t d1,
                                       std::size_t d2, int p0, int p1,
                                       int p2) {
  const std::size_t dims[3] = {d0, d1, d2};
  const int perm[3] = {p0, p1, p2};
  const std::size_t od[3] = {dims[perm[0]], dims[perm[1]], dims[perm[2]]};
  std::vector<double> out(in.size());
  for (std::size_t i0 = 0; i0 < d0; ++i0) {
    for (std::size_t i1 = 0; i1 < d1; ++i1) {
      for (std::size_t i2 = 0; i2 < d2; ++i2) {
        const std::size_t idx[3] = {i0, i1, i2};
        out[(idx[perm[0]] * od[1] + idx[perm[1]]) * od[2] + idx[perm[2]]] =
            in[(i0 * d1 + i1) * d2 + i2];
      }
    }
  }
  return out;
}

// A plan-search fault fires before anything is planned or moved: the
// buffer is untouched, nothing executed, and nothing is retained.
TEST(TensorFailure, PlanSearchFaultLeavesBufferUntouched) {
  transpose_context ctx;
  const std::size_t dims[3] = {8, 6, 4};
  const int rev[3] = {2, 1, 0};
  std::vector<double> src(8 * 6 * 4);
  for (std::size_t l = 0; l < src.size(); ++l) {
    src[l] = static_cast<double>(l);
  }
  auto buf = src;
  {
    fp::scoped_trigger armed("tensor.plan.search");
    EXPECT_THROW(ctx.permute_nd(buf.data(), dims, rev),
                 fp::injected_fault);
    EXPECT_GE(fp::fires("tensor.plan.search"), 1u);
  }
  expect_same(buf, src, "buffer touched by a plan-time fault");
  EXPECT_EQ(ctx.stats().executions, 0u);
  EXPECT_EQ(ctx.cached_bytes(), 0u);
  // Unarmed retry on the same context succeeds.
  ctx.permute_nd(buf.data(), dims, rev);
  expect_same(buf, reference_permute3(src, 8, 6, 4, 2, 1, 0),
              "post-fault retry");
}

// The pass-boundary failpoint fires before pass k moves anything; the
// engine must invert the k completed passes and hand back the caller's
// buffer bit-exactly — at every boundary of a multi-pass plan.
TEST(TensorFailure, PassBoundaryFaultRollsBackCompletedPasses) {
  const std::size_t dims[3] = {6, 5, 4};
  const int rev[3] = {2, 1, 0};
  const detail::tensor_plan plan = detail::make_tensor_plan(
      std::span<const std::size_t>(dims, 3), std::span<const int>(rev, 3),
      sizeof(double));
  ASSERT_GE(plan.passes.size(), 2u) << "need a multi-pass decomposition";
  std::vector<double> src(6 * 5 * 4);
  for (std::size_t l = 0; l < src.size(); ++l) {
    src[l] = static_cast<double>(l) * 1.5 + 3.0;
  }
  for (std::size_t fail_at = 0; fail_at < plan.passes.size(); ++fail_at) {
    SCOPED_TRACE(fail_at);
    auto buf = src;
    fp::scoped_trigger armed("tensor.pass.begin", fp::mode::fault,
                             /*skip=*/fail_at, /*count=*/1);
    nd_transposer<double> tr(plan);
    EXPECT_THROW(tr(buf.data()), fp::injected_fault);
    expect_same(buf, src, "buffer not restored after pass-boundary fault");
  }
  // Unarmed run completes and matches the reference.
  auto buf = src;
  nd_transposer<double> tr(plan);
  tr(buf.data());
  expect_same(buf, reference_permute3(src, 6, 5, 4, 2, 1, 0),
              "unarmed tensor run");
}

// Context route for the same fault: the buffer restores, the checked-out
// arena is dropped (not recycled mid-update), and the accounting stays
// conserved — the ArenaConsistency contract extended to the tensor mode.
TEST(TensorFailure, MidRunFaultDropsTheTensorArenaNotTheAccounting) {
  transpose_context ctx;
  const std::size_t dims[3] = {6, 5, 4};
  const int rev[3] = {2, 1, 0};
  std::vector<double> src(6 * 5 * 4);
  for (std::size_t l = 0; l < src.size(); ++l) {
    src[l] = static_cast<double>(l);
  }
  auto buf = src;
  ctx.permute_nd(buf.data(), dims, rev);  // healthy cold run
  const auto want = buf;
  EXPECT_EQ(ctx.stats().arenas_created, 1u);

  buf = src;
  {
    fp::scoped_trigger armed("tensor.pass.begin", fp::mode::fault,
                             /*skip=*/1, /*count=*/1);
    EXPECT_THROW(ctx.permute_nd(buf.data(), dims, rev),
                 fp::injected_fault);
  }
  expect_same(buf, src, "context tensor run not rolled back");
  const auto s = ctx.stats();
  EXPECT_GE(s.arenas_dropped, 1u);
  EXPECT_EQ(s.arenas_created + s.arenas_reused, s.executions);

  // The dropped arena is rebuilt on the next call and the result is right.
  ctx.permute_nd(buf.data(), dims, rev);
  expect_same(buf, want, "post-drop tensor rerun");
  EXPECT_EQ(ctx.stats().arenas_created, 2u);
}

// The chunk-scratch funnel walks its own OOM ladder: full (byte visited
// map) -> reduced (packed bitset) -> cycle_follow (no allocation), and
// every rung stays bit-exact.
TEST(TensorOomLadder, ChunkScratchDegradesAndStaysExact) {
  // A hand-built single-chunk-pass plan pins the funnel directly
  // (regardless of which decomposition the search would pick).
  const std::size_t d0 = 12;
  const std::size_t d1 = 10;
  const std::size_t d2 = 6;
  detail::tensor_plan plan;
  plan.norm.rank = 3;
  plan.norm.dims = {d0, d1, d2};
  plan.norm.perm = {1, 0, 2};
  plan.norm.total = d0 * d1 * d2;
  plan.passes.push_back(detail::nd_pass{1, d0, d1, d2});
  std::vector<double> src(plan.norm.total);
  for (std::size_t l = 0; l < src.size(); ++l) {
    src[l] = static_cast<double>(l) * 0.25;
  }
  const auto want = reference_permute3(src, d0, d1, d2, 1, 0, 2);

  {
    // Healthy: the full rung (one visited byte per grid slot).
    auto buf = src;
    nd_transposer<double> tr(plan);
    EXPECT_FALSE(tr.degraded());
    tr(buf.data());
    expect_same(buf, want, "full rung");
  }
  {
    // First rung refused: the funnel lands on the packed bitset.
    auto buf = src;
    fp::scoped_trigger no_full("tensor.chunk.alloc", fp::mode::oom,
                               /*skip=*/0, /*count=*/1);
    nd_transposer<double> tr(plan);
    EXPECT_TRUE(tr.degraded());
    tr(buf.data());
    expect_same(buf, want, "reduced rung");
  }
  {
    // Both allocating rungs refused: O(1)-space cycle following.
    auto buf = src;
    fp::scoped_trigger no_alloc("tensor.chunk.alloc", fp::mode::oom);
    nd_transposer<double> tr(plan);
    EXPECT_TRUE(tr.degraded());
    tr(buf.data());
    EXPECT_GE(fp::fires("tensor.chunk.alloc"), 2u);
    expect_same(buf, want, "cycle_follow rung");
  }
  {
    // Real allocator failures (the aligned-allocator shim) walk the same
    // ladder — the funnel allocates only through the audited path.
    auto buf = src;
    fp::scoped_trigger no_alloc("alloc.aligned", fp::mode::oom);
    nd_transposer<double> tr(plan);
    EXPECT_TRUE(tr.degraded());
    tr(buf.data());
    expect_same(buf, want, "allocator-driven cycle_follow");
  }
}

// Degraded tensor arenas surface in the context stats exactly as the 2-D
// ladder's do.
TEST(TensorOomLadder, ContextCountsDegradedTensorArenas) {
  fp::scoped_trigger no_alloc("tensor.chunk.alloc", fp::mode::oom);
  transpose_context ctx;
  const std::size_t dims[3] = {12, 10, 6};
  const int swap01[3] = {1, 0, 2};
  std::vector<double> buf(12 * 10 * 6);
  for (std::size_t l = 0; l < buf.size(); ++l) {
    buf[l] = static_cast<double>(l);
  }
  const auto src = buf;
  ctx.permute_nd(buf.data(), dims, swap01);
  expect_same(buf, reference_permute3(src, 12, 10, 6, 1, 0, 2),
              "degraded context run");
  // Only counted if the searched plan actually contains a chunk pass;
  // either way the run stayed exact above.
  if (fp::fires("tensor.chunk.alloc") > 0) {
    EXPECT_EQ(ctx.stats().arenas_degraded, 1u);
  }
}

}  // namespace
