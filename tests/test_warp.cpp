// Tests for the SIMD warp model and the Section 6.2 in-register
// transposition: primitive semantics, transpose correctness for every
// structure size in the paper's range, the round trip behind Figure 10,
// and the ⌈log2 m⌉-selects-per-element cost claim.

#include "simd/register_transpose.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "simd/coalesced.hpp"
#include "simd/cpu_kernels.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;
using simd::warp;

TEST(Warp, RejectsZeroDimensions) {
  EXPECT_THROW(warp<int>(0, 4), std::invalid_argument);
  EXPECT_THROW(warp<int>(4, 0), std::invalid_argument);
}

TEST(Warp, ShflMovesAcrossLanes) {
  warp<int> w(8, 1);
  for (unsigned t = 0; t < 8; ++t) {
    w.reg(0, t) = static_cast<int>(t);
  }
  w.shfl(0, [](unsigned t) { return (t + 3) % 8; });
  for (unsigned t = 0; t < 8; ++t) {
    EXPECT_EQ(w.reg(0, t), static_cast<int>((t + 3) % 8));
  }
  EXPECT_EQ(w.counters().shuffles, 1u);
}

TEST(Warp, DynamicRotationMatchesGatherDefinition) {
  // Each lane rotates by its own amount: reg'[r] = reg[(r + amt) mod m].
  constexpr unsigned kRegs = 8;
  warp<int> w(4, kRegs);
  for (unsigned r = 0; r < kRegs; ++r) {
    for (unsigned t = 0; t < 4; ++t) {
      w.reg(r, t) = static_cast<int>(r * 10 + t);
    }
  }
  const unsigned amounts[4] = {0, 1, 5, 7};
  w.rotate_registers_dynamic([&](unsigned t) { return amounts[t]; });
  for (unsigned r = 0; r < kRegs; ++r) {
    for (unsigned t = 0; t < 4; ++t) {
      EXPECT_EQ(w.reg(r, t),
                static_cast<int>(((r + amounts[t]) % kRegs) * 10 + t));
    }
  }
}

TEST(Warp, BarrelRotatorCostIsCeilLog2PerElement) {
  // Section 6.2.2: ⌈log2 m⌉ selects per element, i.e. m·⌈log2 m⌉ per lane
  // vector, counted as warp instructions.
  for (unsigned m : {2u, 3u, 4u, 7u, 8u, 16u, 31u, 32u}) {
    warp<int> w(4, m);
    w.rotate_registers_dynamic([](unsigned) { return 1u; });
    unsigned ceil_log2 = 0;
    while ((1u << ceil_log2) < m) {
      ++ceil_log2;
    }
    EXPECT_EQ(w.counters().selects, static_cast<std::uint64_t>(m) * ceil_log2)
        << "m=" << m;
  }
}

TEST(Warp, StaticPermutationIsFree) {
  warp<int> w(2, 4);
  for (unsigned r = 0; r < 4; ++r) {
    w.reg(r, 0) = static_cast<int>(r);
    w.reg(r, 1) = static_cast<int>(10 + r);
  }
  w.permute_registers_static([](unsigned r) { return (r + 1) % 4; });
  EXPECT_EQ(w.reg(0, 0), 1);
  EXPECT_EQ(w.reg(3, 1), 10);
  EXPECT_EQ(w.counters().selects, 0u);
  EXPECT_EQ(w.counters().shuffles, 0u);
  EXPECT_EQ(w.counters().renames, 1u);
}

struct tile_case {
  unsigned regs;   // m — structure size in words
  unsigned width;  // n — warp width
};

std::ostream& operator<<(std::ostream& os, const tile_case& c) {
  return os << c.regs << "regs x " << c.width << "lanes";
}

class RegisterTranspose : public ::testing::TestWithParam<tile_case> {};

std::vector<tile_case> all_tile_cases() {
  std::vector<tile_case> cases;
  // The paper's AoS regime: structure sizes 2..32 words, warp width 32,
  // plus narrower widths to exercise gcd variety.
  for (unsigned m = 2; m <= 32; ++m) {
    cases.push_back({m, 32});
  }
  for (unsigned width : {4u, 8u, 16u}) {
    for (unsigned m : {2u, 3u, 5u, 8u, 12u, 16u, 27u}) {
      cases.push_back({m, width});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTiles, RegisterTranspose,
                         ::testing::ValuesIn(all_tile_cases()));

TEST_P(RegisterTranspose, C2REqualsReferenceTranspose) {
  const auto [m, width] = GetParam();
  warp<std::uint32_t> w(width, m);
  const auto tile = util::iota_matrix<std::uint32_t>(m, width);
  w.load_coalesced(tile.data());
  const auto mm = simd::warp_tile_math(m, width);
  simd::c2r_registers(w, mm);
  std::vector<std::uint32_t> out(tile.size());
  w.store_coalesced(out.data());
  const auto want = util::reference_transpose(
      std::span<const std::uint32_t>(tile), m, width);
  EXPECT_EQ(out, want);
}

TEST_P(RegisterTranspose, R2CInvertsC2R) {
  const auto [m, width] = GetParam();
  warp<std::uint32_t> w(width, m);
  const auto tile = util::iota_matrix<std::uint32_t>(m, width);
  w.load_coalesced(tile.data());
  const auto mm = simd::warp_tile_math(m, width);
  simd::c2r_registers(w, mm);
  simd::r2c_registers(w, mm);
  std::vector<std::uint32_t> out(tile.size());
  w.store_coalesced(out.data());
  EXPECT_EQ(out, tile);
}

TEST_P(RegisterTranspose, CoalescedLoadDeliversStructsToLanes) {
  // Figure 10 load path: after load_coalesced + R2C, lane t's registers
  // hold structure t, exactly as a direct (strided) load would deliver.
  const auto [m, width] = GetParam();
  const auto aos = util::iota_matrix<std::uint32_t>(width, m);  // width structs
  const auto mm = simd::warp_tile_math(m, width);

  warp<std::uint32_t> via_transpose(width, m);
  simd::warp_load_structs(via_transpose, mm, aos.data());

  warp<std::uint32_t> direct(width, m);
  direct.load_direct(aos.data());

  for (unsigned r = 0; r < m; ++r) {
    for (unsigned t = 0; t < width; ++t) {
      ASSERT_EQ(via_transpose.reg(r, t), direct.reg(r, t))
          << "reg " << r << " lane " << t;
    }
  }
}

TEST_P(RegisterTranspose, StoreInvertsLoad) {
  const auto [m, width] = GetParam();
  const auto aos = util::iota_matrix<std::uint32_t>(width, m);
  const auto mm = simd::warp_tile_math(m, width);
  warp<std::uint32_t> w(width, m);
  simd::warp_load_structs(w, mm, aos.data());
  std::vector<std::uint32_t> out(aos.size());
  simd::warp_store_structs(w, mm, out.data());
  EXPECT_EQ(out, aos);
}

TEST(CoalescedPtr, BatchRoundTripPreservesStructures) {
  struct particle {
    float x, y, z, mass;
  };
  constexpr unsigned kWidth = 32;
  std::vector<particle> storage(kWidth * 4);
  for (std::size_t k = 0; k < storage.size(); ++k) {
    storage[k] = {float(k), float(k) + 0.5f, float(k) + 0.25f, 1.0f};
  }
  simd::coalesced_ptr<particle> cp(storage.data(), kWidth);

  std::vector<particle> batch(kWidth);
  cp.load_batch(kWidth, batch);
  for (unsigned t = 0; t < kWidth; ++t) {
    EXPECT_EQ(batch[t].x, float(kWidth + t));
  }
  for (auto& p : batch) {
    p.mass = 2.0f;
  }
  cp.store_batch(kWidth, batch);
  for (unsigned t = 0; t < kWidth; ++t) {
    EXPECT_EQ(storage[kWidth + t].mass, 2.0f);
    EXPECT_EQ(storage[kWidth + t].x, float(kWidth + t));
  }
  EXPECT_GT(cp.counters().shuffles, 0u);
  EXPECT_GT(cp.counters().memory_ops, 0u);
}

TEST(CoalescedPtr, ForEachHandlesRaggedTails) {
  struct cell {
    std::uint32_t v, w;
  };
  for (const std::size_t count : {1u, 31u, 32u, 33u, 100u, 128u}) {
    std::vector<cell> storage(count + 8);  // slack past the range
    for (std::size_t k = 0; k < storage.size(); ++k) {
      storage[k] = {static_cast<std::uint32_t>(k), 0};
    }
    simd::coalesced_ptr<cell> cp(storage.data(), 32);
    cp.for_each(0, count, [](cell& c) { c.w = c.v * 3 + 1; });
    for (std::size_t k = 0; k < storage.size(); ++k) {
      if (k < count) {
        ASSERT_EQ(storage[k].w, k * 3 + 1) << "count=" << count << " k=" << k;
      } else {
        ASSERT_EQ(storage[k].w, 0u) << "touched past range, count=" << count;
      }
      ASSERT_EQ(storage[k].v, k);
    }
  }
}

TEST(CoalescedPtr, GatherScatterByIndex) {
  struct pair64 {
    std::uint32_t a, b;
  };
  std::vector<pair64> storage(500);
  for (std::size_t k = 0; k < storage.size(); ++k) {
    storage[k] = {static_cast<std::uint32_t>(k),
                  static_cast<std::uint32_t>(2 * k)};
  }
  simd::coalesced_ptr<pair64> cp(storage.data());
  util::xoshiro256 rng(11);
  std::vector<std::size_t> idx(64);
  for (auto& i : idx) {
    i = rng.uniform(0, storage.size());
  }
  std::vector<pair64> gathered(idx.size());
  cp.gather(idx, gathered);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(gathered[k].a, idx[k]);
  }
  for (auto& g : gathered) {
    g.b += 1;
  }
  cp.scatter(idx, gathered);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(storage[idx[k]].b, 2 * idx[k] + 1);
  }
}

TEST(CpuKernels, AllVariantsAgree) {
  // The staged and direct kernels must be bit-identical in effect; only
  // their memory traffic differs.
  util::xoshiro256 rng(13);
  for (int t = 0; t < 10; ++t) {
    const std::size_t fields = rng.uniform(2, 32);
    const std::size_t count = rng.uniform(10, 3000);
    std::vector<float> soa(count * fields);
    for (std::size_t l = 0; l < soa.size(); ++l) {
      soa[l] = static_cast<float>(l);
    }
    std::vector<float> aos_a(soa.size());
    std::vector<float> aos_b(soa.size());
    simd::soa_to_aos_direct(aos_a.data(), soa.data(), count, fields);
    simd::soa_to_aos_staged(aos_b.data(), soa.data(), count, fields);
    ASSERT_EQ(aos_a, aos_b);

    std::vector<float> back_a(soa.size());
    std::vector<float> back_b(soa.size());
    simd::aos_to_soa_direct(back_a.data(), aos_a.data(), count, fields);
    simd::aos_to_soa_staged(back_b.data(), aos_a.data(), count, fields);
    ASSERT_EQ(back_a, soa);
    ASSERT_EQ(back_b, soa);

    std::vector<std::uint64_t> idx(200);
    for (auto& i : idx) {
      i = rng.uniform(0, count);
    }
    std::vector<float> g1(idx.size() * fields);
    std::vector<float> g2(idx.size() * fields);
    simd::gather_structs_direct(g1.data(), aos_a.data(), idx.data(),
                                idx.size(), fields);
    simd::gather_structs_coalesced(g2.data(), aos_a.data(), idx.data(),
                                   idx.size(), fields);
    ASSERT_EQ(g1, g2);

    std::vector<float> s1(aos_a);
    std::vector<float> s2(aos_a);
    simd::scatter_structs_direct(s1.data(), g1.data(), idx.data(),
                                 idx.size(), fields);
    simd::scatter_structs_coalesced(s2.data(), g1.data(), idx.data(),
                                    idx.size(), fields);
    ASSERT_EQ(s1, s2);
  }
}

}  // namespace
