// Tests for the memory-coalescing model behind Figures 8-9: segment
// counting rules, the analytic invariants of each access pattern, and the
// qualitative curve shapes the paper reports (C2R ≈ peak everywhere,
// direct access collapsing by up to the 45x the abstract cites).

#include "memsim/bandwidth_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace {

using namespace inplace::memsim;
namespace util = inplace::util;

memory_params k20c() { return memory_params{}; }

TEST(Coalescer, FullyCoalescedWarpIsOneTransaction) {
  // 32 lanes x 4 bytes consecutive = one 128-byte segment.
  const coalescer co(k20c());
  std::vector<std::uint64_t> addrs(32);
  for (unsigned t = 0; t < 32; ++t) {
    addrs[t] = 4096 + 4 * t;
  }
  const traffic t = co.instruction(addrs, 4);
  EXPECT_EQ(t.transactions, 1u);
  EXPECT_EQ(t.useful_bytes, 128u);
  EXPECT_DOUBLE_EQ(t.efficiency(), 1.0);
}

TEST(Coalescer, MisalignedWarpTouchesTwoSegments) {
  const coalescer co(k20c());
  std::vector<std::uint64_t> addrs(32);
  for (unsigned t = 0; t < 32; ++t) {
    addrs[t] = 4096 + 64 + 4 * t;  // straddles a 128B boundary
  }
  EXPECT_EQ(co.instruction(addrs, 4).transactions, 2u);
}

TEST(Coalescer, FullyScatteredWarpPaysPerLane) {
  const coalescer co(k20c());
  std::vector<std::uint64_t> addrs(32);
  for (unsigned t = 0; t < 32; ++t) {
    addrs[t] = static_cast<std::uint64_t>(t) * 4096;
  }
  const traffic t = co.instruction(addrs, 4);
  EXPECT_EQ(t.transactions, 32u);
  EXPECT_NEAR(t.efficiency(), 4.0 / 128.0, 1e-12);
}

TEST(Coalescer, DuplicateAddressesCoalesce) {
  const coalescer co(k20c());
  std::vector<std::uint64_t> addrs(32, 512);
  EXPECT_EQ(co.instruction(addrs, 4).transactions, 1u);
}

TEST(Coalescer, WideAccessSpansMultipleSegments) {
  const coalescer co(k20c());
  const std::uint64_t addr[] = {0};
  EXPECT_EQ(co.instruction(addr, 512).transactions, 4u);
}

TEST(Coalescer, EmptyInstructionIsFree) {
  const coalescer co(k20c());
  EXPECT_EQ(co.instruction({}, 4).transactions, 0u);
  const std::uint64_t addr[] = {0};
  EXPECT_EQ(co.instruction(addr, 0).transactions, 0u);
}

TEST(Patterns, C2RUnitStrideIsNearPeak) {
  // The transpose-based access reads contiguous warp tiles: efficiency
  // must be ~1 for every struct size (the flat top line of Figure 8).
  for (std::uint64_t sb : {8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    pattern_params p;
    p.struct_bytes = sb;
    const traffic t = unit_stride_c2r(p);
    EXPECT_GT(t.efficiency(), 0.95) << "struct " << sb;
  }
}

TEST(Patterns, DirectUnitStrideWastesBandwidthOnLargeStructs) {
  // Element-wise strided access: every 4-byte element pays a whole
  // segment once structures exceed the segment size.
  pattern_params p;
  p.struct_bytes = 64;
  const traffic direct = unit_stride_direct(p);
  const traffic c2r = unit_stride_c2r(p);
  EXPECT_LT(direct.efficiency(), 0.2);
  EXPECT_GT(c2r.predicted_gbs(p.mem.peak_gbs) /
                direct.predicted_gbs(p.mem.peak_gbs),
            5.0);
}

TEST(Patterns, DirectDegradesMonotonicallyWithStructSize) {
  pattern_params p;
  double prev = 1e9;
  for (std::uint64_t sb : {4u, 8u, 16u, 32u, 64u}) {
    p.struct_bytes = sb;
    const double gbs = unit_stride_direct(p).predicted_gbs(p.mem.peak_gbs);
    EXPECT_LE(gbs, prev + 1e-9) << "struct " << sb;
    prev = gbs;
  }
}

TEST(Patterns, VectorSitsBetweenDirectAndC2R) {
  // 16-byte native vector accesses beat element-wise access but cannot
  // reach the transpose (Figure 8's middle curve) once structures are
  // larger than one vector.
  for (std::uint64_t sb : {32u, 48u, 64u}) {
    pattern_params p;
    p.struct_bytes = sb;
    const double d = unit_stride_direct(p).predicted_gbs(180);
    const double v = unit_stride_vector(p).predicted_gbs(180);
    const double c = unit_stride_c2r(p).predicted_gbs(180);
    EXPECT_GT(v, d) << sb;
    EXPECT_GT(c, v) << sb;
  }
}

TEST(Patterns, UpTo45xGapMatchesAbstract) {
  // The abstract's headline: up to 45x faster than compiler-generated
  // accesses.  Pure per-instruction coalescing caps the modelled gap at
  // segment/element = 32x (hit once structures reach one segment); the
  // remaining factor in the paper's 45x comes from effects outside this
  // model (store write-allocate, ECC).  EXPERIMENTS.md records this.
  pattern_params p;
  p.struct_bytes = 128;  // one full segment per element access
  const double d = unit_stride_direct(p).predicted_gbs(180);
  const double c = unit_stride_c2r(p).predicted_gbs(180);
  EXPECT_GT(c / d, 30.0);
  EXPECT_LE(c / d, 45.0);
}

TEST(Patterns, RandomC2RImprovesWithStructSize) {
  // Figure 9: cooperative per-structure access amortizes segment waste as
  // structures approach the segment size.
  util::xoshiro256 rng1(1);
  util::xoshiro256 rng2(1);
  pattern_params small;
  small.struct_bytes = 8;
  pattern_params large;
  large.struct_bytes = 64;
  const double g_small = random_c2r(small, rng1).predicted_gbs(180);
  const double g_large = random_c2r(large, rng2).predicted_gbs(180);
  EXPECT_GT(g_large, g_small * 2);
}

TEST(Patterns, RandomC2RBeatsRandomDirect) {
  for (std::uint64_t sb : {16u, 32u, 64u}) {
    pattern_params p;
    p.struct_bytes = sb;
    util::xoshiro256 r1(sb);
    util::xoshiro256 r2(sb);
    const double d = random_direct(p, r1).predicted_gbs(180);
    const double c = random_c2r(p, r2).predicted_gbs(180);
    EXPECT_GE(c, d) << sb;
  }
}

TEST(Sweep, ProducesOnePointPerSize) {
  pattern_params p;
  p.num_structs = 1 << 10;
  const std::vector<std::uint64_t> sizes = {8, 16, 24, 32};
  const auto curve =
      sweep_struct_sizes(access_kind::c2r, locality::unit_stride, sizes, p);
  ASSERT_EQ(curve.size(), sizes.size());
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    EXPECT_EQ(curve[k].struct_bytes, sizes[k]);
    EXPECT_GT(curve[k].gbs, 0.0);
    EXPECT_LE(curve[k].efficiency, 1.0);
  }
}

TEST(Sweep, RejectsNonMultipleStructSize) {
  pattern_params p;
  EXPECT_THROW(sweep_struct_sizes(access_kind::direct, locality::unit_stride,
                                  {6}, p),
               std::invalid_argument);
}

TEST(Traffic, AccumulationAndEfficiencyBounds) {
  traffic a;
  a.useful_bytes = 100;
  a.transactions = 1;
  a.segment_bytes = 128;
  traffic b = a;
  a += b;
  EXPECT_EQ(a.useful_bytes, 200u);
  EXPECT_EQ(a.transactions, 2u);
  EXPECT_LE(a.efficiency(), 1.0);
  const traffic zero;
  EXPECT_EQ(zero.efficiency(), 0.0);
}

}  // namespace
