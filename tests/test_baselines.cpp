// Correctness of the comparison baselines: classic cycle following (both
// space regimes), the Sung-like and Gustavson-like tiled algorithms, and
// the out-of-place reference — plus the cycle-distribution property the
// paper uses to argue cycle following parallelizes poorly.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "baselines/cycle_follow.hpp"
#include "baselines/gustavson_like.hpp"
#include "baselines/out_of_place.hpp"
#include "baselines/sung_tiled.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

struct shape {
  std::uint64_t m;
  std::uint64_t n;
};

std::ostream& operator<<(std::ostream& os, const shape& s) {
  return os << s.m << "x" << s.n;
}

const shape kShapes[] = {
    {1, 1},  {1, 12},  {12, 1},  {2, 3},   {3, 8},    {4, 8},   {5, 5},
    {7, 11}, {6, 9},   {12, 18}, {32, 48}, {13, 64},  {30, 42}, {97, 89},
    {100, 10}, {36, 60}, {128, 96}, {33, 55}, {144, 96}, {60, 84},
    {210, 330}, {121, 77}, {64, 64}, {48, 180}, {101, 103}};

class BaselineShapes : public ::testing::TestWithParam<shape> {};
INSTANTIATE_TEST_SUITE_P(AllShapes, BaselineShapes,
                         ::testing::ValuesIn(kShapes));

template <typename Fn>
void check_transposes(std::uint64_t m, std::uint64_t n, Fn run,
                      const char* what) {
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  const auto src = a;
  run(a.data(), m, n);
  const auto want =
      util::reference_transpose(std::span<const std::uint32_t>(src), m, n);
  ASSERT_EQ(util::first_mismatch(std::span<const std::uint32_t>(a),
                                 std::span<const std::uint32_t>(want)),
            -1)
      << what << " " << m << "x" << n;
}

TEST_P(BaselineShapes, CycleFollowingBitvector) {
  const auto [m, n] = GetParam();
  check_transposes(m, n, [](std::uint32_t* a, auto mm, auto nn) {
    baselines::cycle_following_transpose(a, mm, nn);
  }, "cycle bitvec");
}

TEST_P(BaselineShapes, CycleFollowingLimitedSpace) {
  const auto [m, n] = GetParam();
  check_transposes(m, n, [](std::uint32_t* a, auto mm, auto nn) {
    baselines::cycle_following_transpose_limited(a, mm, nn);
  }, "cycle limited");
}

TEST_P(BaselineShapes, SungTiled) {
  const auto [m, n] = GetParam();
  check_transposes(m, n, [](std::uint32_t* a, auto mm, auto nn) {
    baselines::sung_tiled_transpose(a, mm, nn);
  }, "sung tiled");
}

TEST_P(BaselineShapes, GustavsonLike) {
  const auto [m, n] = GetParam();
  check_transposes(m, n, [](std::uint32_t* a, auto mm, auto nn) {
    baselines::gustavson_like_transpose(a, mm, nn);
  }, "gustavson-like");
}

TEST_P(BaselineShapes, OutOfPlace) {
  const auto [m, n] = GetParam();
  check_transposes(m, n, [](std::uint32_t* a, auto mm, auto nn) {
    baselines::out_of_place_transpose(a, mm, nn);
  }, "out of place");
}

TEST(TileHeuristic, FactorProductReachesThreshold) {
  // 7200 = 2^5*3^2*5^2: smallest factors multiply to >= 72 without
  // degenerating (the shape Sung [6] reports 20.8 GB/s on).
  const auto t = baselines::choose_tiles(7200, 1800);
  EXPECT_TRUE(t.well_tiled);
  EXPECT_GE(t.tile_rows, 72u);
  EXPECT_EQ(7200 % t.tile_rows, 0u);
  EXPECT_EQ(1800 % t.tile_cols, 0u);
}

TEST(TileHeuristic, PrimeDimensionsDegenerate) {
  const auto t = baselines::choose_tiles(7919, 7907);  // both prime
  EXPECT_FALSE(t.well_tiled);
}

TEST(TileHeuristic, TileAlwaysDividesDimension) {
  util::xoshiro256 rng(4);
  for (int k = 0; k < 500; ++k) {
    const std::uint64_t m = rng.uniform(2, 20000);
    const std::uint64_t n = rng.uniform(2, 20000);
    const auto t = baselines::choose_tiles(m, n);
    ASSERT_EQ(m % t.tile_rows, 0u);
    ASSERT_EQ(n % t.tile_cols, 0u);
  }
}

TEST(CycleStructure, LengthsPartitionThePermutation) {
  for (auto [m, n] : {shape{4, 8}, shape{30, 42}, shape{97, 89}}) {
    const auto lengths = baselines::transpose_cycle_lengths(m, n);
    std::uint64_t covered = std::accumulate(lengths.begin(), lengths.end(),
                                            std::uint64_t{0});
    // All positions except the two fixed endpoints lie in recorded cycles
    // (cycles of length 1 inside the range are also recorded).
    EXPECT_EQ(covered, m * n - 2);
  }
}

TEST(CycleStructure, LengthsAreSkewed) {
  // The paper's parallelization argument: cycle lengths are poorly
  // distributed.  For 97x89 the longest cycle dwarfs the shortest.
  const auto lengths = baselines::transpose_cycle_lengths(97, 89);
  ASSERT_GE(lengths.size(), 2u);
  EXPECT_GE(lengths.back(), 8 * lengths.front());
}

TEST(CycleStructure, SquareMatrixCyclesArePairs) {
  const auto lengths = baselines::transpose_cycle_lengths(16, 16);
  for (const auto len : lengths) {
    EXPECT_LE(len, 2u);  // square transposition is an involution
  }
}

TEST(Baselines, RandomizedAgreementWithLibrary) {
  util::xoshiro256 rng(5);
  for (int t = 0; t < 40; ++t) {
    const std::uint64_t m = rng.uniform(2, 200);
    const std::uint64_t n = rng.uniform(2, 200);
    auto a = util::iota_matrix<std::uint64_t>(m, n);
    auto b = a;
    baselines::cycle_following_transpose(a.data(), m, n);
    baselines::sung_tiled_transpose(b.data(), m, n);
    ASSERT_EQ(a, b) << m << "x" << n;
  }
}

}  // namespace
