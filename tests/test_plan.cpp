// Tests for the planner (core/plan): the Section 5.2 heuristic, Theorem 2
// extent swapping, column-major normalization, engine resolution, block
// width sizing, scratch accounting and validation.

#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "core/errors.hpp"

namespace {

using namespace inplace;

int dummy;
void* data = &dummy;

TEST(Plan, HeuristicPicksC2RForTallMatrices) {
  const auto p = make_plan(data, 2000, 100, storage_order::row_major, {},
                           4);
  EXPECT_EQ(p.dir, direction::c2r);
  EXPECT_EQ(p.m, 2000u);
  EXPECT_EQ(p.n, 100u);
}

TEST(Plan, HeuristicPicksR2CWithSwappedExtentsForWideMatrices) {
  const auto p = make_plan(data, 100, 2000, storage_order::row_major, {},
                           4);
  EXPECT_EQ(p.dir, direction::r2c);
  // Theorem 2: R2C runs with swapped extents.
  EXPECT_EQ(p.m, 2000u);
  EXPECT_EQ(p.n, 100u);
}

TEST(Plan, SquareMatrixGoesToR2CBranch) {
  // m > n is strict, so squares take the else branch — either direction
  // is correct for squares.
  const auto p = make_plan(data, 64, 64, storage_order::row_major, {}, 4);
  EXPECT_EQ(p.dir, direction::r2c);
}

TEST(Plan, ColumnMajorNormalizesToSwappedRowMajor) {
  // A col-major m x n buffer is a row-major n x m buffer: plans must
  // coincide.
  const auto pc = make_plan(data, 300, 70, storage_order::col_major, {}, 8);
  const auto pr = make_plan(data, 70, 300, storage_order::row_major, {}, 8);
  EXPECT_EQ(pc.dir, pr.dir);
  EXPECT_EQ(pc.m, pr.m);
  EXPECT_EQ(pc.n, pr.n);
}

TEST(Plan, ForcedDirectionsOverrideHeuristic) {
  options oc;
  oc.alg = options::algorithm::c2r;
  const auto pc = make_plan(data, 10, 1000, storage_order::row_major, oc, 4);
  EXPECT_EQ(pc.dir, direction::c2r);
  EXPECT_EQ(pc.m, 10u);

  options orr;
  orr.alg = options::algorithm::r2c;
  const auto pr = make_plan(data, 1000, 10, storage_order::row_major, orr,
                            4);
  EXPECT_EQ(pr.dir, direction::r2c);
  EXPECT_EQ(pr.m, 10u);  // swapped
}

TEST(Plan, BlockWidthTracksElementSize) {
  options opts;
  opts.block_bytes = 128;
  EXPECT_EQ(make_plan(data, 100, 50, storage_order::row_major, opts, 8)
                .block_width,
            16u);
  EXPECT_EQ(make_plan(data, 100, 50, storage_order::row_major, opts, 4)
                .block_width,
            32u);
  // Wide elements floor at 4 so the sub-row machinery stays worthwhile.
  EXPECT_EQ(make_plan(data, 100, 50, storage_order::row_major, opts, 64)
                .block_width,
            4u);
}

TEST(Plan, SkinnySelectionRules) {
  // Narrow + tall (post-heuristic n <= 32 and m > n): skinny.
  EXPECT_EQ(make_plan(data, 100000, 8, storage_order::row_major, {}, 4)
                .engine,
            engine_kind::skinny);
  EXPECT_EQ(make_plan(data, 8, 100000, storage_order::row_major, {}, 4)
                .engine,
            engine_kind::skinny);  // wide: swapped to tall
  // Wide-enough problems stay blocked.
  EXPECT_EQ(make_plan(data, 1000, 40, storage_order::row_major, {}, 4)
                .engine,
            engine_kind::blocked);
  // Forcing skinny onto an unsuitable shape quietly degrades to blocked.
  options force;
  force.engine = engine_kind::skinny;
  EXPECT_EQ(make_plan(data, 40, 40, storage_order::row_major, force, 4)
                .engine,
            engine_kind::blocked);
  // Forcing reference is honored.
  options ref;
  ref.engine = engine_kind::reference;
  EXPECT_EQ(make_plan(data, 1000, 8, storage_order::row_major, ref, 4)
                .engine,
            engine_kind::reference);
}

TEST(Plan, StrengthReductionAndThreadsPropagate) {
  options opts;
  opts.strength_reduction = false;
  opts.threads = 5;
  const auto p = make_plan(data, 10, 10, storage_order::row_major, opts, 4);
  EXPECT_FALSE(p.strength_reduction);
  EXPECT_EQ(p.threads, 5);
}

TEST(Plan, ScratchBoundIsTheoremSix) {
  const auto p = make_plan(data, 5000, 300, storage_order::row_major, {},
                           8);
  EXPECT_EQ(p.scratch_elements(),
            5000 + p.block_width * p.block_width + p.block_width);
}

TEST(Plan, DirectedPlanKeepsExtentsVerbatim) {
  const auto p =
      make_directed_plan(data, 10, 1000, direction::c2r, {}, 4);
  EXPECT_EQ(p.m, 10u);
  EXPECT_EQ(p.n, 1000u);
  EXPECT_EQ(p.dir, direction::c2r);
}

TEST(Plan, ShapeOnlyPlanningSkipsPointerCheck) {
  EXPECT_NO_THROW(make_plan_for_shape(100, 100, storage_order::row_major,
                                      {}, 4));
  EXPECT_THROW(
      make_plan_for_shape(std::size_t{1} << 40, std::size_t{1} << 40,
                          storage_order::row_major, {}, 4),
      error);
}

TEST(Plan, Validation) {
  EXPECT_THROW(
      make_plan(nullptr, 2, 2, storage_order::row_major, {}, 4), error);
  EXPECT_NO_THROW(
      make_plan(nullptr, 0, 2, storage_order::row_major, {}, 4));
  EXPECT_THROW(make_plan(data, 2, 2, storage_order::row_major, {}, 0),
               error);
  EXPECT_THROW(make_plan(data, std::size_t{1} << 40, std::size_t{1} << 40,
                         storage_order::row_major, {}, 4),
               error);
}

}  // namespace
