// Tests for the 128-bit Barrett divider (core/fastdiv64.hpp): exactness
// over exhaustive small operands, boundary 64-bit operands, randomized
// sweeps, and usability as the transpose_math division policy.

#include "core/fastdiv64.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/equations.hpp"
#include "util/rng.hpp"

namespace {

using inplace::barrett_divmod;

void expect_agrees(const barrett_divmod& bd, std::uint64_t x) {
  const std::uint64_t d = bd.divisor();
  ASSERT_EQ(bd.div(x), x / d) << x << " / " << d;
  ASSERT_EQ(bd.mod(x), x % d) << x << " % " << d;
  const auto [q, r] = bd.divmod(x);
  ASSERT_EQ(q, x / d);
  ASSERT_EQ(r, x % d);
}

TEST(Barrett, ThrowsOnZeroDivisor) {
  EXPECT_THROW(barrett_divmod(0), std::invalid_argument);
}

TEST(Barrett, ExhaustiveSmallOperands) {
  for (std::uint64_t d = 1; d <= 64; ++d) {
    const barrett_divmod bd(d);
    for (std::uint64_t x = 0; x <= 512; ++x) {
      expect_agrees(bd, x);
    }
  }
}

TEST(Barrett, BoundaryOperands) {
  const std::uint64_t max64 = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t divisors[] = {1,
                                    2,
                                    3,
                                    7,
                                    0xffffffffull,
                                    0x100000000ull,
                                    0x100000001ull,
                                    max64 / 2,
                                    max64 - 1,
                                    max64};
  const std::uint64_t dividends[] = {0,        1,         2,
                                     max64,    max64 - 1, max64 / 2,
                                     1ull << 32, (1ull << 32) - 1,
                                     (1ull << 63) + 12345};
  for (const std::uint64_t d : divisors) {
    const barrett_divmod bd(d);
    for (const std::uint64_t x : dividends) {
      expect_agrees(bd, x);
    }
  }
}

TEST(Barrett, PowersOfTwo) {
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t d = std::uint64_t{1} << k;
    const barrett_divmod bd(d);
    expect_agrees(bd, d - 1);
    expect_agrees(bd, d);
    expect_agrees(bd, d + 1);
    expect_agrees(bd, std::numeric_limits<std::uint64_t>::max());
  }
}

TEST(Barrett, RandomizedFull64Bit) {
  inplace::util::xoshiro256 rng(64);
  for (int t = 0; t < 200000; ++t) {
    const std::uint64_t d =
        rng.uniform(1, std::numeric_limits<std::uint64_t>::max());
    const barrett_divmod bd(d);
    expect_agrees(bd, rng());
  }
}

TEST(Barrett, RandomizedSmallDivisorsLargeDividends) {
  inplace::util::xoshiro256 rng(65);
  for (int t = 0; t < 50000; ++t) {
    const std::uint64_t d = rng.uniform(1, 1u << 20);
    const barrett_divmod bd(d);
    expect_agrees(bd, rng());
  }
}

TEST(Barrett, WorksAsTransposeMathPolicy) {
  // The policy interface (div/mod/divmod + divisor constructor) must slot
  // straight into the index equations.
  const inplace::transpose_math<barrett_divmod> mm(30, 42);
  const inplace::transpose_math<inplace::fast_divmod> ref(30, 42);
  for (std::uint64_t i = 0; i < 30; ++i) {
    for (std::uint64_t j = 0; j < 42; ++j) {
      ASSERT_EQ(mm.d_prime(i, j), ref.d_prime(i, j));
      ASSERT_EQ(mm.d_prime_inv(i, j), ref.d_prime_inv(i, j));
      ASSERT_EQ(mm.s_prime(i, j), ref.s_prime(i, j));
    }
    ASSERT_EQ(mm.q(i), ref.q(i));
    ASSERT_EQ(mm.q_inv(i), ref.q_inv(i));
  }
}

}  // namespace
