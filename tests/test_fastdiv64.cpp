// Tests for the 128-bit Barrett divider (core/fastdiv64.hpp): exactness
// over exhaustive small operands, boundary 64-bit operands, randomized
// sweeps, and usability as the transpose_math division policy.

#include "core/fastdiv64.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/equations.hpp"
#include "util/rng.hpp"

namespace {

using inplace::barrett_divmod;

void expect_agrees(const barrett_divmod& bd, std::uint64_t x) {
  const std::uint64_t d = bd.divisor();
  ASSERT_EQ(bd.div(x), x / d) << x << " / " << d;
  ASSERT_EQ(bd.mod(x), x % d) << x << " % " << d;
  const auto [q, r] = bd.divmod(x);
  ASSERT_EQ(q, x / d);
  ASSERT_EQ(r, x % d);
}

TEST(Barrett, ThrowsOnZeroDivisor) {
  EXPECT_THROW(barrett_divmod(0), std::invalid_argument);
}

TEST(Barrett, ExhaustiveSmallOperands) {
  for (std::uint64_t d = 1; d <= 64; ++d) {
    const barrett_divmod bd(d);
    for (std::uint64_t x = 0; x <= 512; ++x) {
      expect_agrees(bd, x);
    }
  }
}

TEST(Barrett, BoundaryOperands) {
  const std::uint64_t max64 = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t divisors[] = {1,
                                    2,
                                    3,
                                    7,
                                    0xffffffffull,
                                    0x100000000ull,
                                    0x100000001ull,
                                    max64 / 2,
                                    max64 - 1,
                                    max64};
  const std::uint64_t dividends[] = {0,        1,         2,
                                     max64,    max64 - 1, max64 / 2,
                                     1ull << 32, (1ull << 32) - 1,
                                     (1ull << 63) + 12345};
  for (const std::uint64_t d : divisors) {
    const barrett_divmod bd(d);
    for (const std::uint64_t x : dividends) {
      expect_agrees(bd, x);
    }
  }
}

TEST(Barrett, PowersOfTwo) {
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t d = std::uint64_t{1} << k;
    const barrett_divmod bd(d);
    expect_agrees(bd, d - 1);
    expect_agrees(bd, d);
    expect_agrees(bd, d + 1);
    expect_agrees(bd, std::numeric_limits<std::uint64_t>::max());
  }
}

TEST(Barrett, RandomizedFull64Bit) {
  inplace::util::xoshiro256 rng(64);
  for (int t = 0; t < 200000; ++t) {
    const std::uint64_t d =
        rng.uniform(1, std::numeric_limits<std::uint64_t>::max());
    const barrett_divmod bd(d);
    expect_agrees(bd, rng());
  }
}

TEST(Barrett, RandomizedSmallDivisorsLargeDividends) {
  inplace::util::xoshiro256 rng(65);
  for (int t = 0; t < 50000; ++t) {
    const std::uint64_t d = rng.uniform(1, 1u << 20);
    const barrett_divmod bd(d);
    expect_agrees(bd, rng());
  }
}

TEST(Barrett, DivisorsStraddlingTwoToThe32) {
  // mn - 1 for shapes at the 32-bit boundary: exactly where the 32-bit
  // reciprocal trick stops being exact and the Barrett path must take
  // over.  Dividends cover the index range [0, 2*d] plus full-width
  // randoms.
  const std::uint64_t divisors[] = {
      (1ull << 32) - 2,      // m=65535, n=65537: mn - 1 = 2^32 - 2
      (1ull << 32) - 1,      // mn = 2^32
      (1ull << 32),          // mn = 2^32 + 1
      (1ull << 32) + 1,
      65536ull * 65537 - 1,  // mn just past 2^32
      92681ull * 46337 - 1,  // odd, non-smooth
  };
  inplace::util::xoshiro256 rng(4242);
  for (const std::uint64_t d : divisors) {
    const barrett_divmod bd(d);
    for (const std::uint64_t x :
         {std::uint64_t{0}, d - 1, d, d + 1, 2 * d - 1, 2 * d, 2 * d + 1}) {
      expect_agrees(bd, x);
    }
    for (int t = 0; t < 20000; ++t) {
      expect_agrees(bd, rng());
      expect_agrees(bd, rng() % (2 * d + 1));
    }
  }
}

TEST(Barrett, TransposeMathAgreesWithPlainDivisionBeyond32Bits) {
  // Math-only overflow stress: for shapes with m*n >= 2^32 every index
  // equation driven by Barrett reciprocals must agree with plain / and %.
  // (No buffer of that size is allocated -- only the permutation algebra
  // runs.)  Edges plus a coarse interior lattice keep this fast.
  struct big_shape {
    std::uint64_t m, n;
  };
  for (const auto [m, n] : {big_shape{65536, 65537},  // mn = 2^32 + 65536
                            big_shape{65537, 65536},
                            big_shape{92681, 46337},  // coprime, mn > 2^32
                            big_shape{1ull << 20, (1ull << 12) + 1}}) {
    const inplace::transpose_math<barrett_divmod> fast(m, n);
    const inplace::transpose_math<inplace::plain_divmod> plain(m, n);
    ASSERT_EQ(fast.c, plain.c);
    const std::uint64_t istep = m / 19 + 1;
    const std::uint64_t jstep = n / 19 + 1;
    auto sample = [](std::uint64_t k, std::uint64_t step, std::uint64_t lim) {
      // 0, 1, lim-2, lim-1 plus the lattice points.
      return k < 2 ? k : (k < 4 ? lim - 4 + k : (k - 3) * step % lim);
    };
    for (std::uint64_t ik = 0; ik < 23; ++ik) {
      const std::uint64_t i = sample(ik, istep, m);
      ASSERT_EQ(fast.q(i), plain.q(i)) << m << "x" << n << " i=" << i;
      ASSERT_EQ(fast.q_inv(i), plain.q_inv(i)) << m << "x" << n;
      ASSERT_EQ(plain.q_inv(plain.q(i)), i) << "Eq. 33/34 roundtrip";
      for (std::uint64_t jk = 0; jk < 23; ++jk) {
        const std::uint64_t j = sample(jk, jstep, n);
        const std::uint64_t d = fast.d_prime(i, j);
        ASSERT_EQ(d, plain.d_prime(i, j))
            << m << "x" << n << " (" << i << "," << j << ")";
        ASSERT_EQ(fast.d_prime_inv(i, d), plain.d_prime_inv(i, d));
        ASSERT_EQ(plain.d_prime_inv(i, d), j) << "Eq. 31 must invert Eq. 24";
        ASSERT_EQ(fast.s_prime(i, j), plain.s_prime(i, j));
      }
    }
  }
}

TEST(Barrett, WorksAsTransposeMathPolicy) {
  // The policy interface (div/mod/divmod + divisor constructor) must slot
  // straight into the index equations.
  const inplace::transpose_math<barrett_divmod> mm(30, 42);
  const inplace::transpose_math<inplace::fast_divmod> ref(30, 42);
  for (std::uint64_t i = 0; i < 30; ++i) {
    for (std::uint64_t j = 0; j < 42; ++j) {
      ASSERT_EQ(mm.d_prime(i, j), ref.d_prime(i, j));
      ASSERT_EQ(mm.d_prime_inv(i, j), ref.d_prime_inv(i, j));
      ASSERT_EQ(mm.s_prime(i, j), ref.s_prime(i, j));
    }
    ASSERT_EQ(mm.q(i), ref.q(i));
    ASSERT_EQ(mm.q_inv(i), ref.q_inv(i));
  }
}

}  // namespace
