// Tests for the perf-gate comparator core (util/bench_compare.hpp): the
// noise-aware thresholds that tools/bench_gate applies to two BENCH_*.json
// reports.  A 20% regression must be flagged, a 2% wobble must pass, a
// drop inside the MAD noise band must pass, and series that vanish from
// the candidate must fail the gate.

#include "util/bench_compare.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace inplace::util;

struct series_spec {
  std::string name;
  std::string direction = "higher_is_better";
  double median = 0.0;
  double mad = 0.0;
  double count = 9.0;
};

json::value make_report(const std::string& artifact,
                        const std::vector<series_spec>& series) {
  json::object doc;
  doc.emplace_back("schema", bench_schema);
  doc.emplace_back("artifact", artifact);
  json::array arr;
  for (const auto& spec : series) {
    json::object s;
    s.emplace_back("name", spec.name);
    s.emplace_back("unit", "GB/s");
    s.emplace_back("direction", spec.direction);
    s.emplace_back("count", spec.count);
    if (spec.count > 0) {
      s.emplace_back("median", spec.median);
      s.emplace_back("mad", spec.mad);
    }
    arr.emplace_back(std::move(s));
  }
  doc.emplace_back("series", std::move(arr));
  return doc;
}

const gate_options kDefaults;  // 10% threshold, 4-MAD noise band

TEST(BenchGate, TwentyPercentDropIsFlagged) {
  const auto base = make_report("a", {{"tput", "higher_is_better", 100, 1}});
  const auto cand = make_report("a", {{"tput", "higher_is_better", 80, 1}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_FALSE(r.passed(kDefaults));
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].status, gate_status::regressed);
  EXPECT_NEAR(r.findings[0].rel_change, -0.20, 1e-12);
}

TEST(BenchGate, TwoPercentWobblePasses) {
  const auto base = make_report("a", {{"tput", "higher_is_better", 100, 1}});
  const auto cand = make_report("a", {{"tput", "higher_is_better", 98, 1}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_TRUE(r.passed(kDefaults));
  EXPECT_EQ(r.findings[0].status, gate_status::ok);
}

TEST(BenchGate, NoisySeriesEarnAWiderBand) {
  // MAD 5 on a median of 100 -> 4-MAD band = 20%; a 15% drop is noise.
  const auto base = make_report("a", {{"tput", "higher_is_better", 100, 5}});
  const auto cand = make_report("a", {{"tput", "higher_is_better", 85, 5}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_TRUE(r.passed(kDefaults));
  EXPECT_NEAR(r.findings[0].allowed_drop, 0.20, 1e-12);
  // The same drop on a quiet series regresses.
  const auto quiet_base =
      make_report("a", {{"tput", "higher_is_better", 100, 0.5}});
  const auto quiet_cand =
      make_report("a", {{"tput", "higher_is_better", 85, 0.5}});
  const auto q = compare_reports(quiet_base, quiet_cand, kDefaults);
  EXPECT_FALSE(q.passed(kDefaults));
}

TEST(BenchGate, LowerIsBetterDirectionFlips) {
  const auto base =
      make_report("a", {{"lat", "lower_is_better", 10, 0.05}});
  const auto worse =
      make_report("a", {{"lat", "lower_is_better", 13, 0.05}});
  const auto better =
      make_report("a", {{"lat", "lower_is_better", 7, 0.05}});
  EXPECT_FALSE(compare_reports(base, worse, kDefaults).passed(kDefaults));
  EXPECT_TRUE(compare_reports(base, better, kDefaults).passed(kDefaults));
}

TEST(BenchGate, ImprovementsNeverFail) {
  const auto base = make_report("a", {{"tput", "higher_is_better", 100, 1}});
  const auto cand =
      make_report("a", {{"tput", "higher_is_better", 250, 1}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_TRUE(r.passed(kDefaults));
  EXPECT_NEAR(r.findings[0].rel_change, 1.5, 1e-12);
}

TEST(BenchGate, MissingSeriesFailUnlessAllowed) {
  const auto base = make_report(
      "a", {{"tput", "higher_is_better", 100, 1},
            {"lat", "lower_is_better", 10, 0.1}});
  const auto cand = make_report("a", {{"tput", "higher_is_better", 100, 1}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_FALSE(r.passed(kDefaults));
  EXPECT_EQ(r.missing, 1u);
  gate_options lax = kDefaults;
  lax.fail_on_missing = false;
  EXPECT_TRUE(r.passed(lax));
}

TEST(BenchGate, NewSeriesInCandidateAreIgnored) {
  const auto base = make_report("a", {{"tput", "higher_is_better", 100, 1}});
  const auto cand = make_report(
      "a", {{"tput", "higher_is_better", 100, 1},
            {"brand_new", "higher_is_better", 5, 0.1}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_TRUE(r.passed(kDefaults));
  EXPECT_EQ(r.findings.size(), 1u);  // only base-side series are findings
}

TEST(BenchGate, EmptyAndZeroSeriesAreSkippedNotFailed) {
  const auto base = make_report(
      "a", {{"empty", "higher_is_better", 0, 0, /*count=*/0},
            {"zero", "higher_is_better", 0, 0}});
  const auto r = compare_reports(base, base, kDefaults);
  EXPECT_TRUE(r.passed(kDefaults));
  EXPECT_EQ(r.compared, 0u);
  for (const auto& f : r.findings) {
    EXPECT_EQ(f.status, gate_status::skipped) << f.series;
  }
}

TEST(BenchGate, DirectionChangeIsNotSilentlyCompared) {
  const auto base = make_report("a", {{"x", "higher_is_better", 10, 0.1}});
  const auto cand = make_report("a", {{"x", "lower_is_better", 10, 0.1}});
  const auto r = compare_reports(base, cand, kDefaults);
  EXPECT_FALSE(r.passed(kDefaults));
}

TEST(BenchGate, IncomparableDocumentsThrow) {
  const auto base = make_report("a", {{"x", "higher_is_better", 10, 0.1}});
  const auto other = make_report("b", {{"x", "higher_is_better", 10, 0.1}});
  EXPECT_THROW((void)compare_reports(base, other, kDefaults),
               std::runtime_error);
  json::object bogus;
  bogus.emplace_back("schema", "not.a.bench/9");
  EXPECT_THROW((void)compare_reports(json::value(bogus), base, kDefaults),
               std::runtime_error);
}

TEST(BenchGate, CustomThresholdsAreHonored) {
  gate_options strict;
  strict.rel_threshold = 0.01;
  strict.mad_k = 0.0;
  const auto base = make_report("a", {{"tput", "higher_is_better", 100, 1}});
  const auto cand = make_report("a", {{"tput", "higher_is_better", 98, 1}});
  EXPECT_FALSE(compare_reports(base, cand, strict).passed(strict));
  gate_options loose;
  loose.rel_threshold = 0.5;
  const auto big_drop =
      make_report("a", {{"tput", "higher_is_better", 60, 1}});
  EXPECT_TRUE(compare_reports(base, big_drop, loose).passed(loose));
}

}  // namespace
