// Tests for the reusable execution context (core/context.hpp): plan
// cache hit/miss/eviction accounting, warm-path correctness (memoized
// cycle replay must produce the same permutation as discovery), async
// submission and batch error capture, and a concurrent mixed-shape
// stress run over one shared context.  The Context suite name is matched
// by the TSan filter in tools/run_sanitizers.sh — the arena checkout,
// the LRU, and the worker pool must all be race-free.
//
// Also hosts the regression tests for this PR's concurrency bugfixes:
// workspace_pool growth past its construction hint (two threads must
// never alias one workspace) and the non-mutating thread-count probe.

#include "core/context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/threads.hpp"

#if defined(INPLACE_HAVE_OPENMP)
#include <omp.h>
#endif

namespace {

using namespace inplace;

template <typename T>
void expect_transposed(const std::vector<T>& got, const std::vector<T>& src,
                       std::size_t rows, std::size_t cols, const char* what) {
  const std::vector<T> want =
      util::reference_transpose(std::span<const T>(src), rows, cols);
  const auto mismatch = util::first_mismatch(std::span<const T>(got),
                                             std::span<const T>(want));
  EXPECT_EQ(mismatch, -1) << what << ": first mismatch at " << mismatch;
}

/// Transposes rows x cols through `ctx` and verifies the result.
void roundtrip(transpose_context& ctx, std::size_t rows, std::size_t cols,
               const char* what, const options& opts = {}) {
  const auto src = util::iota_matrix<double>(rows, cols);
  auto buf = src;
  ctx.transpose(buf.data(), rows, cols, storage_order::row_major, opts);
  expect_transposed(buf, src, rows, cols, what);
}

TEST(Context, ColdAndWarmPathsAreCorrectAcrossEngines) {
  transpose_context ctx;
  // Each shape runs three times: cold (discovery) then twice warm (memo
  // replay) — a wrong memoized cycle list would corrupt the warm runs.
  const struct {
    std::size_t rows, cols;
    const char* what;
  } shapes[] = {
      {64, 48, "blocked, gcd > 1"},
      {97, 89, "blocked, coprime"},
      {4000, 8, "skinny"},
      {33, 77, "blocked, wide"},
      {1, 17, "degenerate row"},
      {17, 1, "degenerate column"},
  };
  for (const auto& s : shapes) {
    for (int rep = 0; rep < 3; ++rep) {
      roundtrip(ctx, s.rows, s.cols, s.what);
    }
  }
  // Forced engines share the cache without cross-talk (distinct keys).
  options ref;
  ref.engine = engine_kind::reference;
  roundtrip(ctx, 40, 25, "reference engine", ref);
  roundtrip(ctx, 40, 25, "reference engine warm", ref);
}

TEST(Context, RawPermutationsRoundTripWarm) {
  transpose_context ctx;
  const std::size_t m = 56;
  const std::size_t n = 40;
  const auto src = util::iota_matrix<float>(m, n);
  auto buf = src;
  for (int rep = 0; rep < 3; ++rep) {
    ctx.c2r(buf.data(), m, n);
    expect_transposed(buf, src, m, n, "context c2r");
    ctx.r2c(buf.data(), m, n);  // inverse restores the original
    EXPECT_EQ(util::first_mismatch(std::span<const float>(buf),
                                   std::span<const float>(src)),
              -1)
        << "r2c failed to invert c2r on rep " << rep;
  }
}

TEST(Context, HitMissAndArenaAccounting) {
  transpose_context ctx;
  auto a = util::iota_matrix<double>(30, 20);
  ctx.transpose(a.data(), 30, 20);
  auto s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 0u);
  EXPECT_EQ(s.arenas_created, 1u);
  EXPECT_EQ(s.arenas_reused, 0u);
  EXPECT_EQ(s.executions, 1u);

  ctx.transpose(a.data(), 30, 20);  // same shape: hit + arena reuse
  s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.arenas_created, 1u);
  EXPECT_EQ(s.arenas_reused, 1u);

  auto b = util::iota_matrix<double>(20, 30);
  ctx.transpose(b.data(), 20, 30);  // different shape: miss
  s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 2u);
  EXPECT_EQ(s.arenas_created, 2u);

  // Same shape, different element type: a distinct key (the cached
  // workspace is a different template instantiation).
  auto c = util::iota_matrix<float>(30, 20);
  ctx.transpose(c.data(), 30, 20);
  s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 3u);

  // Different options: also a distinct key.
  options plain;
  plain.strength_reduction = false;
  ctx.transpose(a.data(), 20, 30, storage_order::row_major, plain);
  s = ctx.stats();
  EXPECT_EQ(s.plan_misses, 4u);
  EXPECT_EQ(ctx.cached_plans(), 4u);
  EXPECT_GT(ctx.cached_bytes(), 0u);
}

TEST(Context, WarmPathPerformsNoSteadyStateAllocations) {
  transpose_context ctx;
  auto a = util::iota_matrix<double>(60, 36);
  ctx.transpose(a.data(), 60, 36);  // warmup: plan + arena + cycles
  const auto warm0 = ctx.stats();
  for (int rep = 0; rep < 20; ++rep) {
    ctx.transpose(a.data(), 60, 36);
  }
  const auto warm1 = ctx.stats();
  EXPECT_EQ(warm1.arenas_created - warm0.arenas_created, 0u);
  EXPECT_EQ(warm1.plan_misses - warm0.plan_misses, 0u);
  EXPECT_EQ(warm1.arenas_reused - warm0.arenas_reused, 20u);
  EXPECT_EQ(warm1.arenas_dropped - warm0.arenas_dropped, 0u);
}

TEST(Context, LruEvictionBoundsTheCache) {
  context_options copts;
  copts.max_plans = 2;
  // One shard recovers the exact global LRU order this test asserts on;
  // the sharded cache's per-shard bounds are covered by the Sharding
  // tests below.
  copts.cache_shards = 1;
  transpose_context ctx(copts);
  auto a = util::iota_matrix<double>(24, 18);
  auto b = util::iota_matrix<double>(18, 24);
  auto c = util::iota_matrix<double>(12, 36);
  ctx.transpose(a.data(), 24, 18);
  ctx.transpose(b.data(), 18, 24);
  EXPECT_EQ(ctx.cached_plans(), 2u);
  ctx.transpose(c.data(), 12, 36);  // evicts the LRU entry (shape a)
  EXPECT_EQ(ctx.cached_plans(), 2u);
  EXPECT_EQ(ctx.stats().plan_evictions, 1u);

  util::fill_iota(std::span<double>(a));
  ctx.transpose(a.data(), 24, 18);  // re-planned: a was evicted
  EXPECT_EQ(ctx.stats().plan_misses, 4u);

  // Touch order matters: b is now LRU; re-touching c then adding a fourth
  // shape must evict b, not c.
  util::fill_iota(std::span<double>(c));
  ctx.transpose(c.data(), 12, 36);
  auto d = util::iota_matrix<double>(36, 12);
  ctx.transpose(d.data(), 36, 12);
  util::fill_iota(std::span<double>(c));
  ctx.transpose(c.data(), 12, 36);
  EXPECT_EQ(ctx.stats().plan_misses, 5u);  // c stayed cached
}

TEST(Context, ClearDropsCachedStateButKeepsCounters) {
  transpose_context ctx;
  auto a = util::iota_matrix<double>(24, 18);
  ctx.transpose(a.data(), 24, 18);
  EXPECT_EQ(ctx.cached_plans(), 1u);
  EXPECT_GT(ctx.cached_bytes(), 0u);
  ctx.clear();
  EXPECT_EQ(ctx.cached_plans(), 0u);
  EXPECT_EQ(ctx.cached_bytes(), 0u);
  EXPECT_EQ(ctx.stats().executions, 1u);  // monotonic counters survive
  util::fill_iota(std::span<double>(a));
  ctx.transpose(a.data(), 24, 18);
  EXPECT_EQ(ctx.stats().plan_misses, 2u);  // cold again after clear
}

TEST(Context, InvalidArgumentsThrowWithoutCachingAnything) {
  transpose_context ctx;
  EXPECT_THROW(ctx.transpose(static_cast<double*>(nullptr), 4, 5),
               inplace::error);
  EXPECT_EQ(ctx.stats().executions, 0u);
  EXPECT_EQ(ctx.cached_plans(), 0u);
}

TEST(Context, SubmitCompletesAsynchronously) {
  transpose_context ctx;
  const std::size_t m = 48;
  const std::size_t n = 36;
  constexpr int jobs = 8;
  std::vector<std::vector<double>> bufs;
  bufs.reserve(jobs);
  const auto src = util::iota_matrix<double>(m, n);
  for (int k = 0; k < jobs; ++k) {
    bufs.push_back(src);
  }
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  for (auto& buf : bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  for (auto& fut : futs) {
    EXPECT_NO_THROW(fut.get());
  }
  for (const auto& buf : bufs) {
    expect_transposed(buf, src, m, n, "submitted job");
  }
  EXPECT_EQ(ctx.stats().async_jobs, static_cast<std::uint64_t>(jobs));
}

TEST(Context, SubmitPropagatesErrorsThroughTheFuture) {
  transpose_context ctx;
  auto fut = ctx.submit(static_cast<float*>(nullptr), 6, 7);
  EXPECT_THROW(fut.get(), inplace::error);
}

TEST(Context, BatchRunsEveryJobAndCapturesErrorsPerJob) {
  transpose_context ctx;
  const std::size_t m = 40;
  const std::size_t n = 28;
  const auto src = util::iota_matrix<float>(m, n);
  std::vector<std::vector<float>> bufs(4, src);
  std::vector<transpose_job<float>> jobs;
  for (auto& buf : bufs) {
    jobs.push_back({buf.data(), m, n});
  }
  jobs[2].data = nullptr;  // job 2 must fail; 0, 1 and 3 must still run

  const batch_result res =
      ctx.transpose_batch(std::span<const transpose_job<float>>(jobs));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.failed, 1u);
  ASSERT_EQ(res.errors.size(), 4u);
  for (std::size_t k = 0; k < res.errors.size(); ++k) {
    EXPECT_EQ(static_cast<bool>(res.errors[k]), k == 2) << "job " << k;
  }
  EXPECT_THROW(res.rethrow_first(), inplace::error);
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    expect_transposed(bufs[k], src, m, n, "batch job");
  }

  const batch_result empty =
      ctx.transpose_batch(std::span<const transpose_job<float>>{});
  EXPECT_TRUE(empty.ok());
  EXPECT_NO_THROW(empty.rethrow_first());
}

// Many threads hammering one shared context with mixed shapes — the LRU,
// the per-entry arena checkout and the memo replay must all stay
// race-free (this is the suite TSan watches).  Every thread verifies its
// own buffers, so an aliased workspace or a cross-thread arena handout
// shows up as a data corruption, not just a race report.
TEST(Context, ConcurrentMixedShapeStressOnOneSharedContext) {
  context_options copts;
  copts.max_plans = 4;  // force eviction churn while executions are live
  transpose_context ctx(copts);
  const struct {
    std::size_t rows, cols;
  } shapes[] = {{64, 48}, {48, 64}, {1000, 8}, {33, 77}, {29, 31}};
  constexpr int workers = 8;
  constexpr int iters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < iters; ++it) {
        const auto& s = shapes[static_cast<std::size_t>(t + it) %
                               std::size(shapes)];
        const auto src = util::iota_matrix<double>(s.rows, s.cols);
        auto buf = src;
        ctx.transpose(buf.data(), s.rows, s.cols);
        const auto want = util::reference_transpose(
            std::span<const double>(src), s.rows, s.cols);
        if (util::first_mismatch(std::span<const double>(buf),
                                 std::span<const double>(want)) != -1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const auto s = ctx.stats();
  EXPECT_EQ(s.executions, static_cast<std::uint64_t>(workers * iters));
  // Conservation: every execution either created or reused an arena.
  EXPECT_EQ(s.arenas_created + s.arenas_reused, s.executions);
}

// Mixing synchronous calls and submit() on the same context from
// multiple threads must also be clean.
TEST(Context, ConcurrentSubmitAndTransposeStress) {
  transpose_context ctx;
  const std::size_t m = 52;
  const std::size_t n = 44;
  const auto src = util::iota_matrix<float>(m, n);
  constexpr int per_side = 12;
  std::vector<std::vector<float>> async_bufs(per_side, src);
  std::vector<std::future<void>> futs;
  futs.reserve(per_side);
  std::atomic<int> failures{0};
  std::thread sync_side([&] {
    for (int k = 0; k < per_side; ++k) {
      auto buf = src;
      ctx.transpose(buf.data(), m, n);
      const auto want = util::reference_transpose(
          std::span<const float>(src), m, n);
      if (util::first_mismatch(std::span<const float>(buf),
                               std::span<const float>(want)) != -1) {
        failures.fetch_add(1);
      }
    }
  });
  for (auto& buf : async_bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  for (auto& fut : futs) {
    fut.get();
  }
  sync_side.join();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& buf : async_bufs) {
    expect_transposed(buf, src, m, n, "async side");
  }
}

// Regression (worker-pool shutdown bugfix): destroying a context with
// jobs in flight and queued used to abandon the queued-but-unstarted
// jobs, leaving their futures unsatisfied forever (a fut.get() after the
// dtor deadlocked).  Now every future settles: completed jobs hold the
// transpose, abandoned ones throw context_shutdown with their buffer
// untouched.
TEST(Context, DestructionWithPendingJobsSettlesEveryFuture) {
  const std::size_t m = 80;
  const std::size_t n = 64;
  const auto src = util::iota_matrix<double>(m, n);
  constexpr std::size_t jobs = 24;
  std::vector<std::vector<double>> bufs(jobs, src);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  {
    context_options copts;
    copts.workers = 1;  // keep most jobs queued when the dtor runs
    transpose_context ctx(copts);
    for (auto& buf : bufs) {
      futs.push_back(ctx.submit(buf.data(), m, n));
    }
  }
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (std::size_t k = 0; k < futs.size(); ++k) {
    ASSERT_TRUE(futs[k].valid());
    try {
      futs[k].get();
      ++completed;
      expect_transposed(bufs[k], src, m, n, "job completed before dtor");
    } catch (const context_shutdown&) {
      ++cancelled;
      // Never started: the buffer must be bit-exactly untouched.
      EXPECT_EQ(util::first_mismatch(std::span<const double>(bufs[k]),
                                     std::span<const double>(src)),
                -1)
          << "cancelled job " << k << " touched its buffer";
    }
  }
  EXPECT_EQ(completed + cancelled, jobs);
}

// shutdown(drain_pending=true) instead runs everything already queued.
TEST(Context, ShutdownDrainCompletesQueuedJobs) {
  const std::size_t m = 48;
  const std::size_t n = 40;
  const auto src = util::iota_matrix<float>(m, n);
  constexpr std::size_t jobs = 10;
  std::vector<std::vector<float>> bufs(jobs, src);
  context_options copts;
  copts.workers = 1;
  transpose_context ctx(copts);
  std::vector<std::future<void>> futs;
  futs.reserve(jobs);
  for (auto& buf : bufs) {
    futs.push_back(ctx.submit(buf.data(), m, n));
  }
  ctx.shutdown(/*drain_pending=*/true);
  for (auto& fut : futs) {
    EXPECT_NO_THROW(fut.get());
  }
  for (const auto& buf : bufs) {
    expect_transposed(buf, src, m, n, "drained job");
  }
  EXPECT_THROW(
      {
        auto buf = src;
        auto fut = ctx.submit(buf.data(), m, n);
        (void)fut;
      },
      context_shutdown);
}

// Regression (workspace aliasing bugfix): a thread_count_guard raising
// the OpenMP pool past what workspace_pool was constructed for used to
// make local() wrap around and alias one workspace across two threads.
// ensure() must grow the pool to the active team, and every thread in a
// parallel region must get a distinct workspace.
TEST(Context, WorkspacePoolCoversAThreadCountRaisedPastItsHint) {
#if defined(INPLACE_HAVE_OPENMP)
  detail::workspace_pool<float> pool(64, 48, 16, /*threads_hint=*/1);
  const int raised = static_cast<int>(pool.size()) + 3;
  util::thread_count_guard guard(raised);
  // The engines call ensure() after installing their guard; without it
  // the pool would be `raised - 3` workspaces short.
  pool.ensure(util::hardware_threads());
  ASSERT_GE(pool.size(), static_cast<std::size_t>(raised));

  std::vector<detail::workspace<float>*> slot(pool.size(), nullptr);
  std::atomic<int> active{0};
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    if (tid < slot.size()) {
      slot[tid] = &pool.local();
      active.fetch_add(1);
    }
  }
  ASSERT_GE(active.load(), 1);
  for (std::size_t i = 0; i < slot.size(); ++i) {
    for (std::size_t j = i + 1; j < slot.size(); ++j) {
      if (slot[i] != nullptr) {
        EXPECT_NE(slot[i], slot[j])
            << "threads " << i << " and " << j << " alias one workspace";
      }
    }
  }
#else
  GTEST_SKIP() << "OpenMP not available";
#endif
}

// End-to-end variant: requesting more threads than the machine has used
// to be exactly the undersizing scenario (pool sized from
// hardware_threads(), guard raising past it inside the engine).
TEST(Context, TransposeWithOversubscribedThreadRequestStaysCorrect) {
  transpose_context ctx;
  options opts;
  opts.threads = util::hardware_threads() + 3;
  roundtrip(ctx, 96, 64, "oversubscribed blocked", opts);
  roundtrip(ctx, 96, 64, "oversubscribed blocked warm", opts);
}

// Regression (telemetry thread-probe bugfix): probing what a thread
// request would achieve must not mutate the OpenMP runtime.  The old
// probe constructed a thread_count_guard, whose omp_set_num_threads leaks
// a wrong pool size into concurrently launching parallel regions.
TEST(Context, ThreadProbeDoesNotMutateTheOmpRuntime) {
  const int before = util::hardware_threads();

  const auto def = util::probe_thread_count(0);
  EXPECT_EQ(def.requested, 0);
  EXPECT_EQ(def.active, before);
  EXPECT_TRUE(def.honored);
  EXPECT_EQ(util::hardware_threads(), before);

  const auto raised = util::probe_thread_count(before + 5);
  EXPECT_EQ(raised.requested, before + 5);
  EXPECT_GE(raised.active, 1);
  EXPECT_EQ(util::hardware_threads(), before)
      << "probe_thread_count mutated the OpenMP pool size";

#if defined(INPLACE_HAVE_OPENMP)
  // The prediction matches what a real guard achieves (sequentially —
  // the guard itself is the mutating operation the probe replaces).
  const auto predicted = util::probe_thread_count(3);
  {
    util::thread_count_guard g(3);
    EXPECT_EQ(predicted.active, g.active());
    EXPECT_EQ(predicted.honored, g.honored());
  }
  EXPECT_EQ(util::hardware_threads(), before);
#endif
}

TEST(Context, ConcurrentThreadProbesAreRaceFree) {
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < 200; ++k) {
        const auto p = util::probe_thread_count(t);
        if (p.active < 1) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------------
// Sharded plan cache.

/// Builds the context key a transpose(rows, cols) of double would use.
detail::context_key shape_key(std::uint64_t rows, std::uint64_t cols) {
  detail::context_key key;
  key.rows = rows;
  key.cols = cols;
  key.elem_size = sizeof(double);
  key.type_tag = &detail::context_type_tag<double>;
  return key;
}

/// Chi-square statistic of `counts` against a uniform expectation.
double chi_square(const std::vector<std::size_t>& counts, double total) {
  const double expected = total / static_cast<double>(counts.size());
  double chi = 0.0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

TEST(Sharding, HashDispersesAdversarialShapeFamilies) {
  // Adversarial sweeps a service actually sees: power-of-two extents and
  // equal-area (m*n == const) families differ in few, structured bits.
  // If context_key_hash's high bits (the shard stripe) washed those
  // structures out to a few values, sharding would silently degrade to
  // one lock.  Bound each family's dispersion with a chi-square test:
  // for 16 shards (15 dof) the 99.9th percentile is ~37.7; a collapsed
  // family scores in the hundreds.  Factor 2 on top absorbs the
  // deterministic hash having no sampling noise to average over.
  constexpr std::size_t shards = 16;
  constexpr double chi_bound = 2.0 * 37.7;

  std::vector<std::size_t> pow2(shards, 0);
  double pow2_total = 0.0;
  for (std::uint64_t rp = 0; rp <= 12; ++rp) {
    for (std::uint64_t cp = 0; cp <= 12; ++cp) {
      const auto key = shape_key(std::uint64_t{1} << rp, std::uint64_t{1} << cp);
      ++pow2[detail::context_shard_index(key, shards)];
      pow2_total += 1.0;
    }
  }
  EXPECT_LT(chi_square(pow2, pow2_total), chi_bound)
      << "power-of-two shapes collapsed into few shards";

  // Equal m*n families: every divisor split of a highly composite area.
  std::vector<std::size_t> area(shards, 0);
  double area_total = 0.0;
  for (const std::uint64_t product : {720720ull, 1048576ull, 362880ull}) {
    for (std::uint64_t m = 1; m * m <= product; ++m) {
      if (product % m != 0) {
        continue;
      }
      ++area[detail::context_shard_index(shape_key(m, product / m), shards)];
      ++area[detail::context_shard_index(shape_key(product / m, m), shards)];
      area_total += 2.0;
    }
  }
  EXPECT_LT(chi_square(area, area_total), chi_bound)
      << "equal-area shape families collapsed into few shards";

  // Dense small-shape sweep (the soak driver's working set shape-space).
  std::vector<std::size_t> dense(shards, 0);
  double dense_total = 0.0;
  for (std::uint64_t m = 1; m <= 48; ++m) {
    for (std::uint64_t n = 1; n <= 48; ++n) {
      ++dense[detail::context_shard_index(shape_key(m, n), shards)];
      dense_total += 1.0;
    }
  }
  EXPECT_LT(chi_square(dense, dense_total), chi_bound)
      << "dense shape sweep collapsed into few shards";
}

TEST(Sharding, ShardIndexIsStableAndInRange) {
  const auto key = shape_key(123, 457);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}, std::size_t{64},
                                   std::size_t{256}}) {
    const std::size_t idx = detail::context_shard_index(key, shards);
    EXPECT_LT(idx, shards);
    EXPECT_EQ(idx, detail::context_shard_index(key, shards));  // pure
  }
  EXPECT_EQ(detail::context_shard_index(key, 1), 0u);
}

TEST(Sharding, ShardCountResolvesToPowerOfTwo) {
  context_options copts;
  copts.cache_shards = 0;  // 0 picks the default
  EXPECT_EQ(transpose_context(copts).cache_shards(), 8u);
  copts.cache_shards = 3;  // rounded up to a power of two
  EXPECT_EQ(transpose_context(copts).cache_shards(), 4u);
  copts.cache_shards = 1;
  EXPECT_EQ(transpose_context(copts).cache_shards(), 1u);
  copts.cache_shards = 1024;  // clamped
  EXPECT_EQ(transpose_context(copts).cache_shards(), 256u);
}

TEST(Sharding, EvictionStillBoundsPlansAndReleasesBytes) {
  // With the default shard count, the global plan population stays
  // within max_plans + (shards - 1) rounding slack, evictions do fire,
  // and clear() releases every retained byte (no cross-shard accounting
  // drift in retained_bytes_).
  context_options copts;
  copts.max_plans = 8;
  transpose_context ctx(copts);
  for (std::uint64_t m = 8; m < 40; ++m) {
    auto a = util::iota_matrix<double>(m, 24);
    ctx.transpose(a.data(), m, 24);
  }
  const std::size_t slack = ctx.cache_shards() - 1;
  EXPECT_LE(ctx.cached_plans(), copts.max_plans + slack);
  EXPECT_GT(ctx.stats().plan_evictions, 0u);
  ctx.clear();
  EXPECT_EQ(ctx.cached_plans(), 0u);
  EXPECT_EQ(ctx.cached_bytes(), 0u);
}

TEST(Sharding, ShardEvictFaultLeavesCacheIntact) {
  // An injected ctx.shard.evict fault fires before the eviction mutates
  // anything: the transpose that triggered it fails, but the cache keeps
  // its population and byte accounting, and recovers once disarmed.
  context_options copts;
  copts.max_plans = 2;
  copts.cache_shards = 1;  // deterministic: third insert must evict
  transpose_context ctx(copts);
  auto a = util::iota_matrix<double>(24, 18);
  auto b = util::iota_matrix<double>(18, 24);
  auto c = util::iota_matrix<double>(12, 36);
  ctx.transpose(a.data(), 24, 18);
  ctx.transpose(b.data(), 18, 24);
  const std::size_t plans_before = ctx.cached_plans();
  const std::size_t bytes_before = ctx.cached_bytes();

  {
    failpoint::scoped_trigger fault("ctx.shard.evict",
                                    failpoint::mode::fault);
    EXPECT_THROW(ctx.transpose(c.data(), 12, 36), failpoint::injected_fault);
    EXPECT_EQ(ctx.cached_plans(), plans_before);
    EXPECT_EQ(ctx.cached_bytes(), bytes_before);
    EXPECT_EQ(ctx.stats().plan_evictions, 0u);
  }

  util::fill_iota(std::span<double>(c));
  ctx.transpose(c.data(), 12, 36);  // eviction works again
  EXPECT_EQ(ctx.cached_plans(), 2u);
  EXPECT_EQ(ctx.stats().plan_evictions, 1u);
}

TEST(Sharding, ConcurrentMixedShapeTrafficSpreadsAndStaysConsistent) {
  // The contention scenario sharding exists for: several threads, each
  // with its own shape family, hammering one context.  Correctness per
  // call plus conserved arena accounting at the end.
  context_options copts;
  copts.max_plans = 64;
  transpose_context ctx(copts);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t rows = 16 + static_cast<std::size_t>(t) * 7;
      const std::size_t cols = 24 + static_cast<std::size_t>(t) * 5;
      const auto src = util::iota_matrix<double>(rows, cols);
      for (int rep = 0; rep < 25; ++rep) {
        auto buf = src;
        ctx.transpose(buf.data(), rows, cols);
        const auto want = util::reference_transpose(
            std::span<const double>(src), rows, cols);
        if (util::first_mismatch(std::span<const double>(buf),
                                 std::span<const double>(want)) != -1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const auto s = ctx.stats();
  EXPECT_EQ(s.executions, static_cast<std::uint64_t>(kThreads) * 25u);
  // Conservation: every created or reused arena belongs to exactly one
  // execution.
  EXPECT_EQ(s.arenas_created + s.arenas_reused, s.executions);
  ctx.clear();
  EXPECT_EQ(ctx.cached_bytes(), 0u);
}

}  // namespace
