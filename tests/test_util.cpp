// Tests for the shared infrastructure (src/util): RNG determinism and
// bounds, order statistics, histograms, CSV quoting, ASCII plots, the
// benchmark-harness CLI, timers and thread guards.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "util/ascii_plot.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/matrix.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace::util;

// --- strict parsing (util/parse.hpp) ----------------------------------------
//
// Regression: example and tool CLIs used bare strtoull/atoi, so "3x2",
// "", or "-1" silently became shape 3 (or 0, or a 64-bit wrap).  The
// strict funnel rejects anything but a complete decimal token.

static_assert(parse_u64("42") == 42u);  // usable in constant expressions
static_assert(!parse_u64("4 2").has_value());

TEST(Parse, U64AcceptsOnlyFullDecimalTokens) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("007"), 7u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  for (const char* bad : {"", "3x2", " 7", "7 ", "-1", "+1", "0x10", "1e3",
                          "18446744073709551616", "99999999999999999999"}) {
    EXPECT_FALSE(parse_u64(bad).has_value()) << "accepted: '" << bad << "'";
  }
}

TEST(Parse, SizeNarrowsU64) {
  EXPECT_EQ(parse_size("4096"), std::size_t{4096});
  EXPECT_FALSE(parse_size("one").has_value());
}

TEST(Parse, IntHandlesSignAndRange) {
  EXPECT_EQ(parse_int("-2147483648"), std::numeric_limits<int>::min());
  EXPECT_EQ(parse_int("2147483647"), std::numeric_limits<int>::max());
  EXPECT_EQ(parse_int("-0"), 0);
  for (const char* bad : {"2147483648", "-2147483649", "--1", "-", "", "1.5"}) {
    EXPECT_FALSE(parse_int(bad).has_value()) << "accepted: '" << bad << "'";
  }
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds) {
  xoshiro256 a(123);
  xoshiro256 b(123);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256 a(1);
  xoshiro256 b(2);
  int equal = 0;
  for (int k = 0; k < 64; ++k) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInRange) {
  xoshiro256 rng(7);
  for (int k = 0; k < 10000; ++k) {
    const auto v = rng.uniform(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LT(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  xoshiro256 rng(8);
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(rng.uniform(5, 6), 5u);
  }
}

TEST(Rng, UniformCoversRangeRoughlyEvenly) {
  xoshiro256 rng(9);
  int counts[8] = {};
  const int draws = 80000;
  for (int k = 0; k < draws; ++k) {
    ++counts[rng.uniform(0, 8)];
  }
  for (int bucket : counts) {
    EXPECT_NEAR(bucket, draws / 8, draws / 8 / 5);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  xoshiro256 rng(10);
  for (int k = 0; k < 10000; ++k) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

// --- stats ------------------------------------------------------------------

TEST(Stats, MedianOddAndEven) {
  const double odd[] = {5, 1, 3};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const double even[] = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileEndpointsAndInterpolation) {
  const double v[] = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 15.0);
}

TEST(Stats, QuantileValidation) {
  const double v[] = {1.0};
  EXPECT_THROW((void)quantile({v, 0}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.1), std::invalid_argument);
}

TEST(Stats, MeanMinMaxStddev) {
  const double v[] = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(min_value(v), 2.0);
  EXPECT_DOUBLE_EQ(max_value(v), 9.0);
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  const double one[] = {42.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

// --- histogram ---------------------------------------------------------------

TEST(Histogram, BinsAndClamping) {
  histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(11.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
  histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::out_of_range);
}

TEST(Histogram, RenderContainsCountsAndMarker) {
  histogram h(0.0, 4.0, 4);
  const double samples[] = {0.5, 1.5, 1.6, 3.5};
  h.add(samples);
  const std::string out = h.render(20, 1.55);
  EXPECT_NE(out.find("median"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

// --- csv ---------------------------------------------------------------------

TEST(Csv, WritesRowsWithQuoting) {
  const auto path =
      std::filesystem::temp_directory_path() / "inplace_csv_test.csv";
  {
    csv_writer csv(path.string());
    csv.row("m", "n", "note");
    csv.row(3, 4, "plain");
    csv.row(1, 2, "has,comma");
    csv.row(5, 6, "has\"quote");
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("m,n,note\n"), std::string::npos);
  EXPECT_NE(text.find("3,4,plain\n"), std::string::npos);
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(csv_writer("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

// --- ascii plots -------------------------------------------------------------

TEST(AsciiPlot, HeatmapRendersGridAndLegend) {
  std::vector<double> grid = {0.0, 1.0, 2.0, 3.0};
  const std::string out = heatmap(grid, 2, 2, "title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("scale:"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '|'), 4);  // 2 rows x 2 bars
}

TEST(AsciiPlot, HeatmapValidatesSize) {
  std::vector<double> grid(3);
  EXPECT_THROW((void)heatmap(grid, 2, 2, "t"), std::invalid_argument);
}

TEST(AsciiPlot, LineChartRendersSeriesLegend) {
  series s1{"alpha", {0, 1, 2}, {0, 5, 10}};
  series s2{"beta", {0, 1, 2}, {10, 5, 0}};
  const std::string out =
      line_chart({s1, s2}, "chart", "xlab", "ylab", 40, 10);
  EXPECT_NE(out.find("chart"), std::string::npos);
  EXPECT_NE(out.find("o=alpha"), std::string::npos);
  EXPECT_NE(out.find("x=beta"), std::string::npos);
}

TEST(AsciiPlot, LineChartValidatesSeries) {
  series bad{"bad", {0, 1}, {0}};
  EXPECT_THROW((void)line_chart({bad}, "t", "x", "y"),
               std::invalid_argument);
}

// --- bench harness -----------------------------------------------------------

TEST(BenchHarness, ParsesFlags) {
  const char* argv[] = {"prog", "--scale", "2.5", "--threads", "3",
                        "--csv",  "/tmp/x.csv"};
  const auto cfg = parse_bench_args(7, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cfg.scale, 2.5);
  EXPECT_EQ(cfg.threads, 3);
  ASSERT_TRUE(cfg.csv_path.has_value());
  EXPECT_EQ(*cfg.csv_path, "/tmp/x.csv");
}

TEST(BenchHarness, RejectsBadFlags) {
  const char* unknown[] = {"prog", "--bogus"};
  EXPECT_THROW((void)parse_bench_args(2, const_cast<char**>(unknown)),
               std::runtime_error);
  const char* missing[] = {"prog", "--scale"};
  EXPECT_THROW((void)parse_bench_args(2, const_cast<char**>(missing)),
               std::runtime_error);
  const char* negative[] = {"prog", "--scale", "-1"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(negative)),
               std::runtime_error);
}

TEST(BenchHarness, SamplesScaleWithFloor) {
  bench_config cfg;
  cfg.scale = 0.01;
  EXPECT_EQ(cfg.samples(100, 4), 4u);
  cfg.scale = 2.0;
  EXPECT_EQ(cfg.samples(100, 4), 200u);
}

// Regression: flag values were parsed with bare atoi/strtod, so "2.5x"
// silently became 2.5 and "x" became 0.  The whole token must now be a
// number or the flag is rejected.
TEST(BenchHarness, RejectsPartiallyNumericValues) {
  const char* trailing[] = {"prog", "--scale", "2.5x"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(trailing)),
               std::runtime_error);
  const char* alpha[] = {"prog", "--scale", "fast"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(alpha)),
               std::runtime_error);
  const char* inf[] = {"prog", "--scale", "inf"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(inf)),
               std::runtime_error);
  const char* nan_text[] = {"prog", "--scale", "nan"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(nan_text)),
               std::runtime_error);
  const char* frac_threads[] = {"prog", "--threads", "3.5"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(frac_threads)),
               std::runtime_error);
  const char* huge_threads[] = {"prog", "--threads",
                                "99999999999999999999"};
  EXPECT_THROW((void)parse_bench_args(3, const_cast<char**>(huge_threads)),
               std::runtime_error);
}

TEST(BenchHarness, MalformedEnvScaleIsIgnored) {
  ASSERT_EQ(setenv("INPLACE_BENCH_SCALE", "2.5x", 1), 0);
  const char* argv[] = {"prog"};
  const auto cfg = parse_bench_args(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cfg.scale, 1.0);  // fell back instead of reading 2.5

  ASSERT_EQ(setenv("INPLACE_BENCH_SCALE", "0.25", 1), 0);
  const auto good = parse_bench_args(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(good.scale, 0.25);
  ASSERT_EQ(unsetenv("INPLACE_BENCH_SCALE"), 0);
}

// Regression: samples() cast scale * base straight to size_t, which is
// undefined behaviour once the product leaves the representable range.
TEST(BenchHarness, SamplesSaturateInsteadOfWrapping) {
  bench_config cfg;
  cfg.scale = 1e30;
  EXPECT_EQ(cfg.samples(100, 4), std::size_t{1} << 53U);
  cfg.scale = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(cfg.samples(100, 4), 4u);
  cfg.scale = -1e30;  // not reachable via flags, but must still be defined
  EXPECT_EQ(cfg.samples(100, 4), 4u);
}

TEST(BenchHarness, JsonFlags) {
  const char* with_path[] = {"prog", "--json", "/tmp/out.json"};
  const auto cfg = parse_bench_args(3, const_cast<char**>(with_path));
  ASSERT_TRUE(cfg.json_path.has_value());
  EXPECT_EQ(*cfg.json_path, "/tmp/out.json");
  EXPECT_TRUE(cfg.emit_json);

  const char* off[] = {"prog", "--no-json"};
  const auto quiet = parse_bench_args(2, const_cast<char**>(off));
  EXPECT_FALSE(quiet.emit_json);
}

// --- timer / throughput -------------------------------------------------------

TEST(Timer, MeasuresElapsedTime) {
  timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, ThroughputFormula) {
  // Eq. 37: 2*m*n*s bytes in t seconds.
  EXPECT_DOUBLE_EQ(transpose_throughput_gbs(1000, 1000, 8, 1.0), 0.016);
  EXPECT_DOUBLE_EQ(transpose_throughput_gbs(1000, 1000, 8, 0.001), 16.0);
}

// --- matrix fixtures -----------------------------------------------------------

TEST(MatrixFixtures, ReferenceTransposeAndMismatch) {
  const auto a = iota_matrix<int>(2, 3);
  const auto t = reference_transpose(std::span<const int>(a), 2, 3);
  const std::vector<int> want = {0, 3, 1, 4, 2, 5};
  EXPECT_EQ(t, want);
  EXPECT_EQ(first_mismatch(std::span<const int>(t),
                           std::span<const int>(want)),
            -1);
  std::vector<int> bad = want;
  bad[4] = 99;
  EXPECT_EQ(first_mismatch(std::span<const int>(bad),
                           std::span<const int>(want)),
            4);
}

TEST(MatrixFixtures, ReferenceTransposeValidatesSize) {
  const std::vector<int> a(5);
  EXPECT_THROW((void)reference_transpose(std::span<const int>(a), 2, 3),
               std::invalid_argument);
}

// --- threads -------------------------------------------------------------------

TEST(Threads, GuardRestoresThreadCount) {
  const int before = hardware_threads();
  {
    thread_count_guard guard(1);
    EXPECT_EQ(hardware_threads(), 1);
  }
  EXPECT_EQ(hardware_threads(), before);
}

TEST(Threads, GuardReportsRequestAndActivePool) {
  thread_count_guard noop(0);
  EXPECT_EQ(noop.requested(), 0);
  EXPECT_TRUE(noop.honored());  // "no change" is always honored
  EXPECT_EQ(noop.active(), hardware_threads());

  thread_count_guard one(1);
  EXPECT_EQ(one.requested(), 1);
  EXPECT_TRUE(one.honored());
  EXPECT_EQ(one.active(), 1);
}

TEST(Threads, GuardHonoredTracksWhetherOverrideTookEffect) {
  // The honored() contract: true iff the active pool equals the positive
  // request.  Serial builds can never honor a multi-thread request;
  // OpenMP builds report whatever the runtime actually granted, so
  // callers can detect a silently-serial configuration.
  thread_count_guard guard(3);
  EXPECT_EQ(guard.requested(), 3);
#if defined(INPLACE_HAVE_OPENMP)
  EXPECT_EQ(guard.honored(), guard.active() == 3);
#else
  EXPECT_FALSE(guard.honored());
  EXPECT_EQ(guard.active(), 1);
#endif
}

}  // namespace
