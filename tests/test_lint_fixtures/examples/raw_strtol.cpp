// Seeded violations: bare strtoull/atoi in a CLI — "3x2" silently
// becomes extent 3 and "" becomes 0, so a demo would measure the wrong
// shape without a word of warning.  util/parse.hpp is the fix.

#include <cstdlib>

int main(int argc, char** argv) {
  const unsigned long long m =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;  // EXPECT-LINT: naked-strtol
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;  // EXPECT-LINT: naked-strtol
  return static_cast<int>(m) + reps > 0 ? 0 : 1;
}
