// Seeded violation: direct environment read outside the audited funnels
// (parse_env_size / parse_bench_args / the failpoint + contract-abort
// bootstraps) — undocumented configuration the operator cannot discover.

#include <cstdlib>

namespace fixture {

int tuning_knob() {
  const char* env = std::getenv("INPLACE_FIXTURE_KNOB");  // EXPECT-LINT: env-access
  return env != nullptr ? 1 : 0;
}

}  // namespace fixture
