#pragma once
// Seeded violations: a rollback-path function missing noexcept and a
// destructor that throws.  Both run while another exception may be in
// flight, where a second throw is std::terminate.

namespace fixture {

inline void rollback_partial(int* data) {  // EXPECT-LINT: noexcept-audit
  data[0] = 0;
}

class scoped_marker {
 public:
  explicit scoped_marker(bool armed) : armed_(armed) {}
  ~scoped_marker() {
    if (armed_) {
      throw 1;  // EXPECT-LINT: noexcept-audit
    }
  }

 private:
  const bool armed_;
};

}  // namespace fixture
