#pragma once
// Seeded violations: a mutex-owning class with a field that escaped the
// GUARDED_BY sweep, a raw std::mutex member bypassing the annotated
// wrapper, and a TSA opt-out with no allow() justification.

#include <cstddef>
#include <mutex>

namespace fixture {

class plan_cache {
 public:
  void touch(std::size_t key);
  std::size_t hits() const;

 private:
  mutable util::annotated_mutex mu_;
  std::size_t hits_ INPLACE_GUARDED_BY(mu_) = 0;
  std::size_t misses_ = 0;  // EXPECT-LINT: mutex-discipline
  std::mutex legacy_mu_;  // EXPECT-LINT: mutex-discipline
};

void drain_queue_unchecked() INPLACE_NO_THREAD_SAFETY_ANALYSIS;  // EXPECT-LINT: mutex-discipline

}  // namespace fixture
