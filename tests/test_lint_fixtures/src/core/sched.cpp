// Seeded violation: this stand-in for the scheduler translation unit carries every required failpoint EXCEPT "ctx.sched.pop".  EXPECT-LINT: failpoint-coverage
//
// The fault-injection suites and the soak driver's --expect-failpoints
// pass arm these by name; dropping one must be a lint finding, not a
// silent weakening of those gates.

#define INPLACE_FAILPOINT(name) fixture_failpoint(name)

namespace fixture {

void fixture_failpoint(const char*);

void spawn_workers() { INPLACE_FAILPOINT("ctx.spawn"); }

void enqueue_job() { INPLACE_FAILPOINT("ctx.queue.push"); }

void run_job() {
  // The pickup-side failpoint ("ctx.sched.pop") that should guard the
  // pop is gone — the seeded violation this fixture exists for.
  INPLACE_FAILPOINT("ctx.worker.job");
}

}  // namespace fixture
