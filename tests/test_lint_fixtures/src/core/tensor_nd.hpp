// Seeded violations: this stand-in for the tensor engine header carries the chunk-scratch failpoint but NOT the pass-boundary one ("tensor.pass.begin").  EXPECT-LINT: failpoint-coverage
//
// It also reproduces the pre-funnel scratch idiom the engine shipped
// with — sized std::vector declarations on the execution path, which
// allocate in the constructor and so dodge the member-call patterns
// (.resize/.reserve/...).  The raw-alloc rule must catch the
// declaration form itself.
#pragma once

#define INPLACE_FAILPOINT(name) fixture_failpoint(name)

namespace fixture {

void fixture_failpoint(const char*);

template <typename T>
void chunk_pass(T* a, std::size_t d0, std::size_t d1, std::size_t chunk) {
  INPLACE_FAILPOINT("tensor.chunk.alloc");
  std::vector<std::uint8_t> visited(d0 * d1);  // EXPECT-LINT: raw-alloc
  std::vector<T> tmp(chunk);  // EXPECT-LINT: raw-alloc
  // The pass-boundary failpoint ("tensor.pass.begin") that should fire
  // before the walk moves anything is gone — the seeded violation this
  // fixture exists for.
  (void)a;
  (void)visited;
  (void)tmp;
}

}  // namespace fixture
