#pragma once
// Seeded violation: a stage boundary with span + rollback registration
// but no INPLACE_FAILPOINT — fault injection could never exercise this
// boundary, so the rollback path would ship untested.

namespace fixture {

template <typename T>
void engine_pass_without_failpoint(T* a, int* prog) {
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle, 0, 0);
    begin_stage(prog, stage_id::row_shuffle);
    a[0] = a[0];
    end_stage(prog);  // EXPECT-LINT: stage-pairing
  }
}

}  // namespace fixture
