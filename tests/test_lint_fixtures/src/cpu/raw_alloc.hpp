#pragma once
// Seeded violations: allocation on an execution path.  The first two
// are bare; the third carries a suppression WITHOUT a reason, which must
// not suppress (reasonless allow() comments are ignored with a warning).

namespace fixture {

template <typename T>
void hot_path(std::vector<T>& scratch, T* a, std::size_t n) {
  scratch.resize(n);  // EXPECT-LINT: raw-alloc
  T* extra = new T[n];  // EXPECT-LINT: raw-alloc
  a[0] = extra[0];
  delete[] extra;
  scratch.push_back(a[0]);  // inplace-lint: allow(raw-alloc) EXPECT-LINT: raw-alloc
}

}  // namespace fixture
