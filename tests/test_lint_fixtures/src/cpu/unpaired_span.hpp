#pragma once
// Seeded violation: a stage executes (begin/end/failpoint) without a
// telemetry span — the stage's wall time would vanish from every bench
// attribution table while still moving 2*m*n*elem bytes.

namespace fixture {

template <typename T>
void engine_pass_without_span(T* a, int* prog) {
  begin_stage(prog, stage_id::row_shuffle);  // EXPECT-LINT: stage-pairing
  a[0] = a[0];
  end_stage(prog);
  INPLACE_FAILPOINT("fixture.after_row_shuffle");
}

}  // namespace fixture
