// Seeded violation: AVX2 intrinsics outside their
// INPLACE_KERNEL_COMPILE_AVX2 region, in a TU with no -mavx2 compile
// flag — a baseline (SSE2-only) build would fault with SIGILL at run
// time on older hardware.  The guarded function is fine.

#include <cstdint>

#if defined(INPLACE_KERNEL_COMPILE_AVX2)
#include <immintrin.h>

void copy_guarded(std::uint8_t* d, const std::uint8_t* s) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(d), v);
}
#endif

void copy_leaked(float* d, const float* s) {
  const __m256 v = _mm256_loadu_ps(s);  // EXPECT-LINT: isa-hygiene
  _mm256_storeu_ps(d, v);  // EXPECT-LINT: isa-hygiene
}
