#pragma once
// Negative-space fixture: the complete stage idiom, including the skinny
// engine's one-span-two-stages shape and an audited allocation with a
// reasoned suppression.  Must produce ZERO findings — this is the false
// positive tripwire for the selftest.

namespace fixture {

template <typename T>
void engine_pass_clean(T* a, int* prog, std::vector<T>& ws) {
  // inplace-lint: allow-next(raw-alloc): fixture stand-in for the
  // audited workspace::reserve acquisition funnel
  ws.reserve(16);
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle, 0, 0);
    begin_stage(prog, stage_id::row_shuffle);
    a[0] = a[0];
    end_stage(prog);
  }
  INPLACE_FAILPOINT("fixture.clean.after_row");
  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle, 0, 0);
    begin_stage(prog, stage_id::skinny_rotation);
    end_stage(prog);
    INPLACE_FAILPOINT("fixture.clean.after_rotation");
    begin_stage(prog, stage_id::skinny_permute);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("fixture.clean.after_permute");
}

}  // namespace fixture
