// Unit tests for the hot-path kernel layer (cpu/kernels/): every tier
// compiled into this binary must implement the kernel_set contract
// bit-exactly (the portable loops are the executable specification), the
// tier detection/resolution chain must degrade cleanly and honor the
// INPLACE_FORCE_KERNEL_TIER override, the cache probe and streaming
// threshold must behave, and the workspace scratch must satisfy the
// 64-byte alignment contract the kernels rely on (regression: the pool
// used to hand out unaligned lines).

#include "cpu/kernels/kernel_set.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "core/permute.hpp"
#include "cpu/engine_blocked.hpp"
#include "util/aligned.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;
using kernels::kernel_set;
using kernels::tier;

/// Sets (or, for value == nullptr, removes) an environment variable for
/// the test's duration, restoring the previous state on exit.
class env_guard {
 public:
  env_guard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~env_guard() {
    if (old_) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  env_guard(const env_guard&) = delete;
  env_guard& operator=(const env_guard&) = delete;

 private:
  std::string name_;
  std::optional<std::string> old_;
};

class KernelTiers : public ::testing::TestWithParam<tier> {
 protected:
  void SetUp() override {
    if (!kernels::tier_available(GetParam())) {
      GTEST_SKIP() << "tier " << kernels::tier_name(GetParam())
                   << " not available on this machine/build";
    }
  }
};

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelTiers,
                         ::testing::Values(tier::scalar, tier::avx2,
                                           tier::avx512, tier::neon),
                         [](const auto& info) {
                           return kernels::tier_name(info.param);
                         });

// --- dispatch / detection ---------------------------------------------------

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kernels::tier_available(tier::scalar));
  EXPECT_EQ(kernels::set_for(tier::scalar).t, tier::scalar);
}

TEST(KernelDispatch, NativeTierIsAvailableAndConcrete) {
  const tier native = kernels::native_tier();
  EXPECT_NE(native, tier::automatic);
  EXPECT_TRUE(kernels::tier_available(native));
}

TEST(KernelDispatch, ResolveAlwaysYieldsAnAvailableTier) {
  for (tier t : {tier::automatic, tier::scalar, tier::avx2, tier::avx512,
                 tier::neon}) {
    const tier r = kernels::resolve_tier(t);
    EXPECT_NE(r, tier::automatic) << kernels::tier_name(t);
    EXPECT_TRUE(kernels::tier_available(r)) << kernels::tier_name(t);
    // set_for must hand back the vtable of exactly the resolved tier.
    EXPECT_EQ(kernels::set_for(r).t, r) << kernels::tier_name(t);
  }
}

TEST(KernelDispatch, AutomaticResolvesToNative) {
  // Shield from an inherited forcing (the sanitizer matrix exports it).
  const env_guard guard("INPLACE_FORCE_KERNEL_TIER", nullptr);
  EXPECT_EQ(kernels::resolve_tier(tier::automatic), kernels::native_tier());
}

TEST(KernelDispatch, UnavailableTierDegradesDownItsFamily) {
  if (!kernels::tier_available(tier::avx512)) {
    const tier r = kernels::resolve_tier(tier::avx512);
    EXPECT_TRUE(r == tier::avx2 || r == tier::scalar);
  }
  if (!kernels::tier_available(tier::neon)) {
    EXPECT_EQ(kernels::resolve_tier(tier::neon), tier::scalar);
  }
}

TEST(KernelDispatch, EnvOverrideForcesScalar) {
  const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "scalar");
  EXPECT_EQ(kernels::resolve_tier(tier::automatic), tier::scalar);
  // The override wins even over an explicit vector request.
  EXPECT_EQ(kernels::resolve_tier(tier::avx512), tier::scalar);
}

TEST(KernelDispatch, EnvOverrideNativeAliasesAutomatic) {
  const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "native");
  EXPECT_EQ(kernels::resolve_tier(tier::scalar), kernels::native_tier());
}

TEST(KernelDispatch, EnvOverrideUnknownValueIsIgnored) {
  const env_guard guard("INPLACE_FORCE_KERNEL_TIER", "pentium-mmx");
  EXPECT_EQ(kernels::resolve_tier(tier::scalar), tier::scalar);
  EXPECT_EQ(kernels::resolve_tier(tier::automatic), kernels::native_tier());
}

// --- cache probe / streaming threshold --------------------------------------

TEST(KernelCaches, ProbedSizesAreSane) {
  const kernels::cache_sizes& cs = kernels::probed_caches();
  EXPECT_GT(cs.l1_bytes, 0u);
  EXPECT_GT(cs.l2_bytes, 0u);
  EXPECT_GE(cs.l3_bytes, cs.l2_bytes);  // normalized by the probe
}

TEST(KernelCaches, StreamingThresholdDefaultsToL3) {
  ::unsetenv("INPLACE_NT_THRESHOLD");
  EXPECT_EQ(kernels::streaming_threshold(),
            kernels::probed_caches().l3_bytes);
}

TEST(KernelCaches, StreamingThresholdEnvOverride) {
  const env_guard guard("INPLACE_NT_THRESHOLD", "4096");
  EXPECT_EQ(kernels::streaming_threshold(), 4096u);
}

TEST(KernelCaches, StreamingThresholdIgnoresGarbage) {
  const env_guard guard("INPLACE_NT_THRESHOLD", "lots");
  EXPECT_EQ(kernels::streaming_threshold(),
            kernels::probed_caches().l3_bytes);
}

TEST(KernelCaches, RowKernelMinLineDefaultsToL2) {
  ::unsetenv("INPLACE_ROW_KERNEL_MIN_LINE");
  EXPECT_EQ(kernels::row_kernel_min_line_bytes(),
            kernels::probed_caches().l2_bytes);
}

TEST(KernelCaches, RowKernelMinLineEnvOverride) {
  const env_guard guard("INPLACE_ROW_KERNEL_MIN_LINE", "0");
  EXPECT_EQ(kernels::row_kernel_min_line_bytes(), 0u);
}

TEST(KernelCaches, RowKernelMinLineIgnoresGarbage) {
  const env_guard guard("INPLACE_ROW_KERNEL_MIN_LINE", "big");
  EXPECT_EQ(kernels::row_kernel_min_line_bytes(),
            kernels::probed_caches().l2_bytes);
}

// Regression (strict env parsing): strtoull's lenient grammar used to
// accept these silently — "-1" negates and wraps to ULLONG_MAX, "12kb"
// parses its digit prefix, overflow saturates with errno unchecked.
// Every one must now fall back to the probed cache default.
TEST(KernelCaches, StreamingThresholdRejectsPartialAndWrappingValues) {
  const struct {
    const char* value;
    const char* why;
  } rejected[] = {
      {"-1", "negative wraps through strtoull"},
      {"+1", "explicit sign"},
      {"12kb", "trailing unit suffix"},
      {"1e9", "scientific notation"},
      {" 12", "leading whitespace"},
      {"12 ", "trailing whitespace"},
      {"0x10", "hex prefix"},
      {"18446744073709551616", "overflows uint64 (ERANGE)"},
      {"99999999999999999999999999", "far past ERANGE"},
  };
  for (const auto& r : rejected) {
    const env_guard guard("INPLACE_NT_THRESHOLD", r.value);
    EXPECT_EQ(kernels::streaming_threshold(),
              kernels::probed_caches().l3_bytes)
        << "accepted '" << r.value << "' (" << r.why << ")";
  }
  // The strict grammar still takes plain digit strings, zero included.
  {
    const env_guard guard("INPLACE_NT_THRESHOLD", "0");
    EXPECT_EQ(kernels::streaming_threshold(), 0u);
  }
  {
    const env_guard guard("INPLACE_NT_THRESHOLD", "4096");
    EXPECT_EQ(kernels::streaming_threshold(), 4096u);
  }
}

TEST(KernelCaches, RowKernelMinLineRejectsPartialAndWrappingValues) {
  for (const char* value :
       {"-1", "64k", "1_000", "18446744073709551616", "12.5"}) {
    const env_guard guard("INPLACE_ROW_KERNEL_MIN_LINE", value);
    EXPECT_EQ(kernels::row_kernel_min_line_bytes(),
              kernels::probed_caches().l2_bytes)
        << "accepted '" << value << "'";
  }
  const env_guard guard("INPLACE_ROW_KERNEL_MIN_LINE", "32768");
  EXPECT_EQ(kernels::row_kernel_min_line_bytes(), 32768u);
}

TEST(KernelCaches, StreamingProfitability) {
  const env_guard guard("INPLACE_NT_THRESHOLD", "1024");
  // The scalar/neon tiers have no NT stores: never profitable.
  EXPECT_FALSE(kernels::streaming_profitable(1 << 20, tier::scalar));
  EXPECT_FALSE(kernels::streaming_profitable(1 << 20, tier::neon));
  // The x86 vector tiers stream iff the working set crosses the threshold.
  for (tier t : {tier::avx2, tier::avx512}) {
    EXPECT_FALSE(kernels::streaming_profitable(512, t));
    EXPECT_TRUE(kernels::streaming_profitable(4096, t));
  }
}

// --- contiguous copies / streaming stores -----------------------------------

TEST_P(KernelTiers, CopyAndStreamAreExactAtEverySizeAndMisalignment) {
  const kernel_set& ks = kernels::set_for(GetParam());
  util::xoshiro256 rng(1234);
  // Sizes straddling the head/vector/tail split points, at byte-level
  // destination misalignments (the NT path must peel to alignment).
  const std::size_t sizes[] = {0,  1,  3,   31,  32,  33,  63,  64,
                               65, 96, 127, 128, 192, 255, 1024, 4093};
  for (const std::size_t bytes : sizes) {
    for (const std::size_t mis : {0u, 1u, 4u, 8u, 24u, 60u}) {
      util::aligned_vector<unsigned char> src(bytes + mis + 64);
      util::aligned_vector<unsigned char> dst(bytes + mis + 64, 0xAB);
      util::aligned_vector<unsigned char> want(bytes + mis + 64, 0xAB);
      for (auto& b : src) {
        b = static_cast<unsigned char>(rng());
      }
      std::memcpy(want.data() + mis, src.data() + mis, bytes);
      ks.copy(dst.data() + mis, src.data() + mis, bytes);
      ASSERT_EQ(0, std::memcmp(dst.data(), want.data(), dst.size()))
          << "copy " << bytes << "B at +" << mis;
      std::fill(dst.begin(), dst.end(), static_cast<unsigned char>(0xAB));
      ks.stream(dst.data() + mis, src.data() + mis, bytes);
      ASSERT_EQ(0, std::memcmp(dst.data(), want.data(), dst.size()))
          << "stream " << bytes << "B at +" << mis;
      std::fill(dst.begin(), dst.end(), static_cast<unsigned char>(0xAB));
      ks.stream_subrow(dst.data() + mis, src.data() + mis, bytes);
      ks.fence();
      ASSERT_EQ(0, std::memcmp(dst.data(), want.data(), dst.size()))
          << "stream_subrow " << bytes << "B at +" << mis;
    }
  }
}

// --- affine gather / scatter ------------------------------------------------

/// Affine parameter sets covering: tiny counts (below the vector
/// fallback), counts that are not lane multiples, step 0 / 1 / large,
/// wrap-heavy streams (step close to mod), and mod near the u32 hardware
/// gather limit.
struct affine_case {
  std::size_t count;
  std::uint64_t start;
  std::uint64_t step;
  std::uint64_t mod;
};

const affine_case kAffineCases[] = {
    {1, 0, 0, 5},        {7, 3, 2, 11},       {16, 0, 1, 16},
    {31, 5, 7, 37},      {32, 0, 17, 61},     {33, 60, 59, 61},
    {64, 1, 40, 67},     {100, 99, 98, 101},  {128, 0, 64, 129},
    {257, 11, 199, 509}, {500, 0, 251, 503},  {1000, 999, 3, 1009},
    {1024, 7, 511, 1031}, {4096, 1, 4095, 4099},
};

TEST_P(KernelTiers, GatherAffineU32MatchesPortable) {
  const kernel_set& ks = kernels::set_for(GetParam());
  for (const affine_case& c : kAffineCases) {
    util::aligned_vector<std::uint32_t> src(c.mod);
    std::iota(src.begin(), src.end(), 0x10000u);
    util::aligned_vector<std::uint32_t> got(c.count, 0xDEADu);
    std::vector<std::uint32_t> want(c.count);
    std::uint64_t idx = c.start;
    for (std::size_t j = 0; j < c.count; ++j) {
      want[j] = src[static_cast<std::size_t>(idx)];
      idx += c.step;
      if (idx >= c.mod) {
        idx -= c.mod;
      }
    }
    ks.gather_affine_u32(
        reinterpret_cast<kernels::u32lane*>(got.data()),
        reinterpret_cast<const kernels::u32lane*>(src.data()), c.count,
        c.start, c.step, c.mod);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "count=" << c.count << " start=" << c.start << " step=" << c.step
        << " mod=" << c.mod;
  }
}

TEST_P(KernelTiers, GatherAffineU64MatchesPortable) {
  const kernel_set& ks = kernels::set_for(GetParam());
  for (const affine_case& c : kAffineCases) {
    util::aligned_vector<std::uint64_t> src(c.mod);
    std::iota(src.begin(), src.end(), 0x100000000ull);
    util::aligned_vector<std::uint64_t> got(c.count, 0xDEADull);
    std::vector<std::uint64_t> want(c.count);
    std::uint64_t idx = c.start;
    for (std::size_t j = 0; j < c.count; ++j) {
      want[j] = src[static_cast<std::size_t>(idx)];
      idx += c.step;
      if (idx >= c.mod) {
        idx -= c.mod;
      }
    }
    ks.gather_affine_u64(
        reinterpret_cast<kernels::u64lane*>(got.data()),
        reinterpret_cast<const kernels::u64lane*>(src.data()), c.count,
        c.start, c.step, c.mod);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "count=" << c.count << " start=" << c.start << " step=" << c.step
        << " mod=" << c.mod;
  }
}

TEST_P(KernelTiers, ScatterAffineU32MatchesPortable) {
  const kernel_set& ks = kernels::set_for(GetParam());
  for (const affine_case& c : kAffineCases) {
    if (c.count > c.mod) {
      continue;  // a scatter stream longer than mod would collide
    }
    util::aligned_vector<std::uint32_t> src(c.count);
    std::iota(src.begin(), src.end(), 7u);
    util::aligned_vector<std::uint32_t> got(c.mod, 0xAAAAu);
    std::vector<std::uint32_t> want(c.mod, 0xAAAAu);
    std::uint64_t idx = c.start;
    for (std::size_t j = 0; j < c.count; ++j) {
      want[static_cast<std::size_t>(idx)] = src[j];
      idx += c.step;
      if (idx >= c.mod) {
        idx -= c.mod;
      }
    }
    ks.scatter_affine_u32(
        reinterpret_cast<kernels::u32lane*>(got.data()),
        reinterpret_cast<const kernels::u32lane*>(src.data()), c.count,
        c.start, c.step, c.mod);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "count=" << c.count << " start=" << c.start << " step=" << c.step
        << " mod=" << c.mod;
  }
}

TEST_P(KernelTiers, ScatterAffineU64MatchesPortable) {
  const kernel_set& ks = kernels::set_for(GetParam());
  for (const affine_case& c : kAffineCases) {
    if (c.count > c.mod) {
      continue;
    }
    util::aligned_vector<std::uint64_t> src(c.count);
    std::iota(src.begin(), src.end(), 7ull);
    util::aligned_vector<std::uint64_t> got(c.mod, 0xBBBBull);
    std::vector<std::uint64_t> want(c.mod, 0xBBBBull);
    std::uint64_t idx = c.start;
    for (std::size_t j = 0; j < c.count; ++j) {
      want[static_cast<std::size_t>(idx)] = src[j];
      idx += c.step;
      if (idx >= c.mod) {
        idx -= c.mod;
      }
    }
    ks.scatter_affine_u64(
        reinterpret_cast<kernels::u64lane*>(got.data()),
        reinterpret_cast<const kernels::u64lane*>(src.data()), c.count,
        c.start, c.step, c.mod);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "count=" << c.count << " start=" << c.start << " step=" << c.step
        << " mod=" << c.mod;
  }
}

TEST_P(KernelTiers, GatherAffineU32HugeModFallsBackCorrectly) {
  // mod >= 2^31 must take the portable path (hardware gathers sign-extend
  // 32-bit indices); the contract is still "correct answer", just not
  // vectorized.  Use a small count with indices near `start` so the
  // buffer stays allocatable: mod is a *modulus*, not a buffer size, so
  // fake the source with a window around the touched range.
  const kernel_set& ks = kernels::set_for(GetParam());
  const std::uint64_t mod = (std::uint64_t{1} << 31) + 13;
  const std::size_t count = 64;
  const std::uint64_t step = 3;  // touched indices: [5, 5 + 63*3]
  util::aligned_vector<std::uint32_t> src(256);
  std::iota(src.begin(), src.end(), 0u);
  util::aligned_vector<std::uint32_t> got(count, 0u);
  ks.gather_affine_u32(reinterpret_cast<kernels::u32lane*>(got.data()),
                       reinterpret_cast<const kernels::u32lane*>(src.data()),
                       count, 5, step, mod);
  for (std::size_t j = 0; j < count; ++j) {
    ASSERT_EQ(got[j], src[5 + j * step]) << j;
  }
}

// --- indexed gather ---------------------------------------------------------

TEST_P(KernelTiers, GatherIndexMatchesPortableOutOfPlace) {
  const kernel_set& ks = kernels::set_for(GetParam());
  util::xoshiro256 rng(99);
  for (const std::size_t count : {1u, 4u, 7u, 16u, 33u, 256u, 1000u}) {
    util::aligned_vector<std::uint32_t> src32(count * 3);
    util::aligned_vector<std::uint64_t> src64(count * 3);
    for (std::size_t l = 0; l < src32.size(); ++l) {
      src32[l] = static_cast<std::uint32_t>(rng());
      src64[l] = rng();
    }
    util::aligned_vector<std::uint64_t> offs(count);
    for (auto& o : offs) {
      o = rng.uniform(0, count * 3);
    }
    for (const bool stream : {false, true}) {
      util::aligned_vector<std::uint32_t> got32(count, 1u);
      util::aligned_vector<std::uint64_t> got64(count, 1ull);
      ks.gather_index_u32(reinterpret_cast<kernels::u32lane*>(got32.data()),
                          reinterpret_cast<const kernels::u32lane*>(
                              src32.data()),
                          offs.data(), count, stream);
      ks.gather_index_u64(reinterpret_cast<kernels::u64lane*>(got64.data()),
                          reinterpret_cast<const kernels::u64lane*>(
                              src64.data()),
                          offs.data(), count, stream);
      ks.fence();
      for (std::size_t j = 0; j < count; ++j) {
        ASSERT_EQ(got32[j], src32[static_cast<std::size_t>(offs[j])])
            << "u32 count=" << count << " stream=" << stream << " j=" << j;
        ASSERT_EQ(got64[j], src64[static_cast<std::size_t>(offs[j])])
            << "u64 count=" << count << " stream=" << stream << " j=" << j;
      }
    }
  }
}

TEST_P(KernelTiers, GatherIndexInPlaceForwardSweep) {
  // The sanctioned dst == src use: offsets only ever point at-or-ahead of
  // the slot being written (offs[j] >= j), as fine_rotate_group's
  // residual*n + jj streams do.  Mimic one group row: width slots,
  // offsets j + res with res in [0, 3], source window extending past the
  // row like the matrix rows below the current one.
  const kernel_set& ks = kernels::set_for(GetParam());
  const std::size_t width = 137;
  util::aligned_vector<std::uint64_t> offs(width);
  for (std::size_t j = 0; j < width; ++j) {
    offs[j] = j + (j * 7) % 4 * width;  // rows 0..3 of an imagined group
  }
  for (const bool stream : {false, true}) {
    util::aligned_vector<std::uint32_t> buf32(4 * width);
    util::aligned_vector<std::uint64_t> buf64(4 * width);
    std::iota(buf32.begin(), buf32.end(), 100u);
    std::iota(buf64.begin(), buf64.end(), 1000ull);
    const std::vector<std::uint32_t> src32(buf32.begin(), buf32.end());
    const std::vector<std::uint64_t> src64(buf64.begin(), buf64.end());
    ks.gather_index_u32(reinterpret_cast<kernels::u32lane*>(buf32.data()),
                        reinterpret_cast<const kernels::u32lane*>(
                            buf32.data()),
                        offs.data(), width, stream);
    ks.gather_index_u64(reinterpret_cast<kernels::u64lane*>(buf64.data()),
                        reinterpret_cast<const kernels::u64lane*>(
                            buf64.data()),
                        offs.data(), width, stream);
    ks.fence();
    for (std::size_t j = 0; j < width; ++j) {
      ASSERT_EQ(buf32[j], src32[static_cast<std::size_t>(offs[j])])
          << "u32 in-place stream=" << stream << " j=" << j;
      ASSERT_EQ(buf64[j], src64[static_cast<std::size_t>(offs[j])])
          << "u64 in-place stream=" << stream << " j=" << j;
    }
  }
}

// --- scratch alignment regression -------------------------------------------

TEST(KernelAlignment, WorkspaceScratchIs64ByteAligned) {
  detail::workspace<float> ws;
  ws.reserve(211, 199, 16);
  EXPECT_TRUE(util::is_scratch_aligned(ws.line.data()));
  EXPECT_TRUE(util::is_scratch_aligned(ws.head.data()));
  EXPECT_TRUE(util::is_scratch_aligned(ws.subrow.data()));
  EXPECT_TRUE(util::is_scratch_aligned(ws.index.data()));
  detail::workspace<util::vec4f> ws16;
  ws16.reserve(64, 48, 8);
  EXPECT_TRUE(util::is_scratch_aligned(ws16.line.data()));
  EXPECT_TRUE(util::is_scratch_aligned(ws16.head.data()));
}

TEST(KernelAlignment, WorkspacePoolHandsOutAlignedScratch) {
  // Regression: the pool's per-thread workspaces used to come from plain
  // std::vector (unaligned), breaking the NT-store and assume_aligned
  // contracts the kernel layer depends on.
  detail::workspace_pool<std::uint32_t> pool(97, 89, 16, 4);
  ASSERT_GE(pool.size(), 1u);
  EXPECT_TRUE(util::is_scratch_aligned(pool.front().line.data()));
  EXPECT_TRUE(util::is_scratch_aligned(pool.front().subrow.data()));
  EXPECT_TRUE(util::is_scratch_aligned(pool.front().head.data()));
  EXPECT_TRUE(util::is_scratch_aligned(pool.front().index.data()));
}

TEST(KernelAlignment, AlignedVectorIsAlignedForAllElementWidths) {
  util::aligned_vector<std::uint8_t> v1(3);
  util::aligned_vector<std::uint16_t> v2(5);
  util::aligned_vector<std::uint32_t> v4(7);
  util::aligned_vector<std::uint64_t> v8(9);
  util::aligned_vector<util::vec4f> v16(11);
  EXPECT_TRUE(util::is_scratch_aligned(v1.data()));
  EXPECT_TRUE(util::is_scratch_aligned(v2.data()));
  EXPECT_TRUE(util::is_scratch_aligned(v4.data()));
  EXPECT_TRUE(util::is_scratch_aligned(v8.data()));
  EXPECT_TRUE(util::is_scratch_aligned(v16.data()));
}

}  // namespace
