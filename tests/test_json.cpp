// Tests for the dependency-free JSON value/emitter/parser
// (util/json.hpp) and for the bench_report document built on it: dump ->
// parse round-trips, number fidelity, escaping, and malformed-input
// rejection.

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/bench_harness.hpp"

namespace {

using namespace inplace::util;

TEST(Json, ValueKindsAndAccessors) {
  json::value null_v;
  EXPECT_TRUE(null_v.is_null());
  json::value b = true;
  EXPECT_TRUE(b.is_bool());
  EXPECT_TRUE(b.as_bool());
  json::value num = 2.5;
  EXPECT_DOUBLE_EQ(num.as_number(), 2.5);
  json::value str = "hi";
  EXPECT_EQ(str.as_string(), "hi");
  EXPECT_THROW((void)str.as_number(), json::error);
  EXPECT_THROW((void)num.as_array(), json::error);
}

TEST(Json, ObjectPreservesInsertionOrderAndFinds) {
  json::object obj;
  obj.emplace_back("z", 1.0);
  obj.emplace_back("a", 2.0);
  const json::value v = obj;
  const std::string text = v.dump(0);
  EXPECT_LT(text.find("\"z\""), text.find("\"a\""));  // not sorted
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), json::error);
}

TEST(Json, DumpParseRoundTripsStructure) {
  json::object inner;
  inner.emplace_back("flag", true);
  inner.emplace_back("name", "x\"y\\z\n\t");
  json::array arr;
  arr.emplace_back(1.0);
  arr.emplace_back(json::value{});
  arr.emplace_back(std::move(inner));
  json::object doc;
  doc.emplace_back("items", std::move(arr));
  doc.emplace_back("count", 3.0);
  const json::value v = doc;

  const json::value back = json::parse(v.dump(2));
  EXPECT_EQ(back.at("count").as_number(), 3.0);
  const auto& items = back.at("items").as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(items[0].as_number(), 1.0);
  EXPECT_TRUE(items[1].is_null());
  EXPECT_TRUE(items[2].at("flag").as_bool());
  EXPECT_EQ(items[2].at("name").as_string(), "x\"y\\z\n\t");
}

TEST(Json, NumbersRoundTripExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.5,
                          1e-300,
                          1e300,
                          0.1,
                          1.0 / 3.0,
                          3.141592653589793,
                          static_cast<double>(1ULL << 53U),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max()};
  for (const double x : cases) {
    const json::value v = x;
    const double back = json::parse(v.dump(0)).as_number();
    EXPECT_EQ(back, x) << v.dump(0);
  }
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(json::value(std::nan("")).dump(0), "null");
  EXPECT_EQ(json::value(std::numeric_limits<double>::infinity()).dump(0),
            "null");
}

TEST(Json, ParsesUnicodeEscapes) {
  const auto v = json::parse(R"("aé€")");  // é and €
  EXPECT_EQ(v.as_string(), "a\xc3\xa9\xe2\x82\xac");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), json::error);
  EXPECT_THROW((void)json::parse("{"), json::error);
  EXPECT_THROW((void)json::parse("[1,]"), json::error);
  EXPECT_THROW((void)json::parse("{\"a\" 1}"), json::error);
  EXPECT_THROW((void)json::parse("\"unterminated"), json::error);
  EXPECT_THROW((void)json::parse("tru"), json::error);
  EXPECT_THROW((void)json::parse("1e"), json::error);
  EXPECT_THROW((void)json::parse("1 trailing"), json::error);
  // Depth bomb: deeper than the parser's max_depth must throw, not crash.
  std::string bomb(200, '[');
  EXPECT_THROW((void)json::parse(bomb), json::error);
}

// --- bench_report over the JSON layer ---------------------------------------

TEST(BenchReport, EmitsSchemaVersionedRoundTrippableDocument) {
  bench_config cfg;
  cfg.scale = 0.5;
  bench_report rep("unit_test_artifact", "a test claim", cfg);
  const double samples[] = {10.0, 12.0, 11.0, 13.0, 9.0};
  rep.add_series("tput", "GB/s", samples);
  rep.add_sample("latency", "s", 0.25, /*higher_is_better=*/false);
  rep.note("extra", json::value{true});

  const json::value doc = json::parse(rep.to_json().dump(2));
  EXPECT_EQ(doc.at("schema").as_string(), bench_schema);
  EXPECT_EQ(doc.at("artifact").as_string(), "unit_test_artifact");
  EXPECT_EQ(doc.at("paper_claim").as_string(), "a test claim");
  EXPECT_DOUBLE_EQ(doc.at("config").at("scale").as_number(), 0.5);

  const auto& series = doc.at("series").as_array();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].at("name").as_string(), "tput");
  EXPECT_EQ(series[0].at("direction").as_string(), "higher_is_better");
  EXPECT_EQ(series[0].at("count").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(series[0].at("median").as_number(), 11.0);
  EXPECT_DOUBLE_EQ(series[0].at("min").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(series[0].at("max").as_number(), 13.0);
  EXPECT_EQ(series[1].at("direction").as_string(), "lower_is_better");
  EXPECT_EQ(doc.at("meta").at("extra").as_bool(), true);
}

TEST(BenchReport, DefaultPathNamesTheArtifact) {
  bench_config cfg;
  bench_report rep("fig_x", "claim", cfg);
  EXPECT_EQ(rep.default_path(), "BENCH_fig_x.json");
}

}  // namespace
