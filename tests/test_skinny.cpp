// Focused tests for the skinny engine (cpu/skinny.hpp), which carries the
// trickiest index reasoning in the library: fused pre-rotation + row
// shuffle with a head buffer (C2R), and the mirrored bottom-up sweep with
// a tail buffer (R2C).  Exercises every boundary of that reasoning:
// c = n (n divides m), c = 1 (coprime), b = 1, m barely above n, and all
// structure sizes in the paper's AoS range.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/transpose.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace inplace;

struct shape {
  std::uint64_t m;
  std::uint64_t n;
  const char* why;
};

std::ostream& operator<<(std::ostream& os, const shape& s) {
  return os << s.m << "x" << s.n << " (" << s.why << ")";
}

const shape kSkinnyShapes[] = {
    {33, 32, "m barely above n"},
    {64, 32, "n divides m: c = n, b = 1"},
    {96, 32, "c = n again"},
    {97, 32, "coprime: no pre-rotation"},
    {100, 25, "c = 25 = n"},
    {101, 25, "coprime"},
    {48, 12, "c = 12 = n"},
    {50, 12, "c = 2"},
    {51, 12, "c = 3"},
    {52, 12, "c = 4"},
    {54, 12, "c = 6"},
    {1000, 2, "minimal n"},
    {1001, 2, "minimal n, odd m"},
    {999, 3, "c = 3 = n"},
    {1000, 3, "coprime"},
    {4, 3, "tiny everything"},
    {35, 5, "c = 5 = n"},
    {36, 5, "coprime"},
    {2048, 31, "prime n"},
    {2047, 32, "m = 2^11 - 1"},
    {527, 17, "c = 17 = n"},
    {528, 17, "coprime"},
};

class SkinnyShapes : public ::testing::TestWithParam<shape> {};
INSTANTIATE_TEST_SUITE_P(EdgeShapes, SkinnyShapes,
                         ::testing::ValuesIn(kSkinnyShapes));

TEST_P(SkinnyShapes, C2RMatchesReferenceEngine) {
  const auto [m, n, why] = GetParam();
  options skinny;
  skinny.engine = engine_kind::skinny;
  options reference;
  reference.engine = engine_kind::reference;
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  auto b = a;
  c2r(a.data(), m, n, skinny);
  c2r(b.data(), m, n, reference);
  EXPECT_EQ(a, b);
}

TEST_P(SkinnyShapes, R2CMatchesReferenceEngine) {
  const auto [m, n, why] = GetParam();
  options skinny;
  skinny.engine = engine_kind::skinny;
  options reference;
  reference.engine = engine_kind::reference;
  auto a = util::iota_matrix<std::uint32_t>(m, n);
  auto b = a;
  r2c(a.data(), m, n, skinny);
  r2c(b.data(), m, n, reference);
  EXPECT_EQ(a, b);
}

TEST_P(SkinnyShapes, RoundTrip) {
  const auto [m, n, why] = GetParam();
  options skinny;
  skinny.engine = engine_kind::skinny;
  auto a = util::iota_matrix<std::uint64_t>(m, n);
  const auto src = a;
  c2r(a.data(), m, n, skinny);
  r2c(a.data(), m, n, skinny);
  EXPECT_EQ(a, src);
}

TEST_P(SkinnyShapes, ByteElements) {
  // One-byte elements give the head/tail buffers the least slack.
  const auto [m, n, why] = GetParam();
  options skinny;
  skinny.engine = engine_kind::skinny;
  std::vector<std::uint8_t> a(m * n);
  for (std::size_t l = 0; l < a.size(); ++l) {
    a[l] = static_cast<std::uint8_t>(l * 37 + 11);
  }
  const auto src = a;
  c2r(a.data(), m, n, skinny);
  const auto want =
      util::reference_transpose(std::span<const std::uint8_t>(src), m, n);
  EXPECT_EQ(a, want);
}

TEST(SkinnyAllFieldCounts, EveryAoSStructSize) {
  // Structure sizes 2..32 (the Figure 7 workload) over several counts,
  // including counts adjacent to multiples of the structure size.
  util::xoshiro256 rng(55);
  options skinny;
  skinny.engine = engine_kind::skinny;
  for (std::uint64_t n = 2; n <= 32; ++n) {
    for (const std::uint64_t base : {std::uint64_t{257}, 8 * n, 8 * n + 1,
                                     rng.uniform(100, 3000)}) {
      const std::uint64_t m = std::max<std::uint64_t>(base, n + 1);
      auto a = util::iota_matrix<std::uint32_t>(m, n);
      const auto src = a;
      c2r(a.data(), m, n, skinny);
      const auto want = util::reference_transpose(
          std::span<const std::uint32_t>(src), m, n);
      ASSERT_EQ(util::first_mismatch(std::span<const std::uint32_t>(a),
                                     std::span<const std::uint32_t>(want)),
                -1)
          << m << "x" << n;
    }
  }
}

TEST(SkinnyRandomized, AgainstBlockedEngine) {
  util::xoshiro256 rng(56);
  options skinny;
  skinny.engine = engine_kind::skinny;
  options blocked;
  blocked.engine = engine_kind::blocked;
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t n = rng.uniform(2, 33);
    const std::uint64_t m = rng.uniform(n + 1, 5000);
    auto a = util::iota_matrix<std::uint32_t>(m, n);
    auto b = a;
    c2r(a.data(), m, n, skinny);
    c2r(b.data(), m, n, blocked);
    ASSERT_EQ(a, b) << m << "x" << n;

    r2c(a.data(), m, n, skinny);
    r2c(b.data(), m, n, blocked);
    ASSERT_EQ(a, b) << m << "x" << n << " (inverse)";
  }
}

}  // namespace
