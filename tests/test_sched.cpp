// Tests for the QoS-aware scheduler (core/sched.hpp): priority ordering
// across classes and deadlines, deadline expiry semantics, the per-class
// counter invariant (settled <= enqueued at every concurrent sample),
// worker pinning fallback, and the two queue-lifecycle regression fixes
// this PR ships:
//
//   * cancel_pending() must wake producers parked in the enqueue()
//     backpressure wait (CancelUnblocksBlockedProducer);
//   * a worker-thread re-entrant enqueue against a full queue must fail
//     fast with queue_overflow instead of deadlocking
//     (ReentrantEnqueueAtMaxQueueFailsFast).
//
// The Sched suite name is matched by the TSan filter in
// tools/run_sanitizers.sh — the heap, the counters and the condition
// variables must all be race-free.

#include "core/sched.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "util/matrix.hpp"
#include "util/threads.hpp"

namespace {

using namespace inplace;
using namespace std::chrono_literals;
using detail::context_workers;

/// A job that records its tag into `order` when run (and is counted as
/// settled either way — the pool requires every job to tolerate a
/// failure exception_ptr).
context_workers::job tagged(std::vector<int>& order, std::mutex& order_mu,
                            int tag) {
  return [&order, &order_mu, tag](std::exception_ptr abort) {
    if (abort) {
      return;  // cancelled/faulted: settle silently
    }
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(tag);
  };
}

/// Blocks the pool's (single) worker until `release` is satisfied, and
/// reports that the worker reached the job via `entered`.
context_workers::job gate_job(std::promise<void>& entered,
                              std::shared_future<void> release) {
  return [&entered, release](std::exception_ptr abort) {
    if (abort) {
      return;
    }
    entered.set_value();
    release.wait();
  };
}

TEST(Sched, QosClassesOvertakeInPriorityOrder) {
  context_workers::config cfg;
  cfg.count = 1;  // one worker: pops are totally ordered
  cfg.max_queue = 64;
  context_workers pool(cfg);

  // Park the worker so every subsequent enqueue lands in the heap before
  // any pop happens — the pop order is then pure scheduling policy.
  std::promise<void> entered;
  std::promise<void> release;
  pool.enqueue(gate_job(entered, release.get_future().share()), {});
  entered.get_future().wait();

  std::vector<int> order;
  std::mutex order_mu;
  job_options batch;
  batch.qos = qos_class::batch;
  job_options standard;  // default class
  job_options interactive;
  interactive.qos = qos_class::interactive;

  // Submission order deliberately inverts priority order.
  pool.enqueue(tagged(order, order_mu, 30), batch);
  pool.enqueue(tagged(order, order_mu, 31), batch);
  pool.enqueue(tagged(order, order_mu, 20), standard);
  pool.enqueue(tagged(order, order_mu, 21), standard);
  pool.enqueue(tagged(order, order_mu, 10), interactive);
  pool.enqueue(tagged(order, order_mu, 11), interactive);

  release.set_value();
  pool.shutdown(/*drain_pending=*/true);

  // Interactive before standard before batch; FIFO within each class.
  const std::vector<int> want = {10, 11, 20, 21, 30, 31};
  EXPECT_EQ(order, want);

  const auto qs = pool.qos_stats();
  EXPECT_EQ(qs[qos_index(qos_class::interactive)].enqueued, 2u);
  EXPECT_EQ(qs[qos_index(qos_class::interactive)].completed, 2u);
  EXPECT_EQ(qs[qos_index(qos_class::standard)].enqueued, 3u);  // + gate job
  EXPECT_EQ(qs[qos_index(qos_class::batch)].completed, 2u);
}

TEST(Sched, EarlierDeadlineRunsFirstWithinAClass) {
  context_workers::config cfg;
  cfg.count = 1;
  cfg.max_queue = 16;
  context_workers pool(cfg);

  std::promise<void> entered;
  std::promise<void> release;
  pool.enqueue(gate_job(entered, release.get_future().share()), {});
  entered.get_future().wait();

  std::vector<int> order;
  std::mutex order_mu;
  const auto now = std::chrono::steady_clock::now();
  job_options late;
  late.deadline = now + 1h;
  job_options early;
  early.deadline = now + 30min;
  job_options none;  // no_deadline sorts after every real deadline

  pool.enqueue(tagged(order, order_mu, 3), none);
  pool.enqueue(tagged(order, order_mu, 2), late);
  pool.enqueue(tagged(order, order_mu, 1), early);

  release.set_value();
  pool.shutdown(/*drain_pending=*/true);
  const std::vector<int> want = {1, 2, 3};
  EXPECT_EQ(order, want);
}

TEST(Sched, ExpiredDeadlineSettlesWithDeadlineExceededWithoutRunning) {
  context_workers::config cfg;
  cfg.count = 1;
  cfg.max_queue = 16;
  context_workers pool(cfg);

  std::promise<void> settled;
  std::atomic<bool> ran{false};
  job_options expired;
  expired.deadline = std::chrono::steady_clock::now() - 1ms;
  pool.enqueue(
      [&settled, &ran](std::exception_ptr abort) {
        if (abort) {
          settled.set_exception(abort);
          return;
        }
        ran.store(true);
        settled.set_value();
      },
      expired);

  EXPECT_THROW(settled.get_future().get(), deadline_exceeded);
  EXPECT_FALSE(ran.load());
  pool.shutdown(/*drain_pending=*/true);
  const auto qs = pool.qos_stats();
  EXPECT_EQ(qs[qos_index(qos_class::standard)].deadline_expired, 1u);
  EXPECT_EQ(qs[qos_index(qos_class::standard)].completed, 0u);
}

TEST(Sched, ContextSubmitHonorsDeadlineAndCountsPerClass) {
  // The public path: submit(data, ..., job_options) through a context.
  context_options copts;
  copts.workers = 1;
  transpose_context ctx(copts);
  auto a = util::iota_matrix<double>(24, 18);

  job_options expired;
  expired.qos = qos_class::interactive;
  expired.deadline = std::chrono::steady_clock::now() - 1ms;
  auto doomed = ctx.submit(a.data(), std::size_t{24}, std::size_t{18},
                           storage_order::row_major, options{}, expired);
  EXPECT_THROW(doomed.get(), deadline_exceeded);
  // The buffer was not touched: a live resubmission still transposes the
  // original contents correctly.
  job_options batch;
  batch.qos = qos_class::batch;
  auto fut = ctx.submit(a.data(), std::size_t{24}, std::size_t{18},
                        storage_order::row_major, options{}, batch);
  fut.get();
  const auto want = util::reference_transpose(
      std::span<const double>(util::iota_matrix<double>(24, 18)), 24, 18);
  EXPECT_EQ(util::first_mismatch(std::span<const double>(a),
                                 std::span<const double>(want)),
            -1);

  const auto s = ctx.stats();
  EXPECT_EQ(s.qos[qos_index(qos_class::interactive)].deadline_expired, 1u);
  EXPECT_EQ(s.qos[qos_index(qos_class::batch)].completed, 1u);
  EXPECT_EQ(s.async_jobs, 2u);
}

TEST(Sched, CancelUnblocksBlockedProducer) {
  // Regression: cancel_pending() drains the queue, so a producer parked
  // in the enqueue() backpressure wait must be woken — without the
  // cv_space_ notify it stays parked until an unrelated pop.
  context_workers::config cfg;
  cfg.count = 1;
  cfg.max_queue = 1;
  context_workers pool(cfg);

  std::promise<void> entered;
  std::promise<void> release;
  pool.enqueue(gate_job(entered, release.get_future().share()), {});
  entered.get_future().wait();  // worker busy; queue now empty

  std::vector<int> order;
  std::mutex order_mu;
  pool.enqueue(tagged(order, order_mu, 1), {});  // fills the queue

  std::promise<void> producer_done;
  std::thread producer([&] {
    // Blocks: the queue is at max_queue and the only worker is parked in
    // the gate job, so nothing pops.  Only a wakeup can free this.
    pool.enqueue(tagged(order, order_mu, 2), {});
    producer_done.set_value();
  });
  // Give the producer time to reach the backpressure wait.
  std::this_thread::sleep_for(50ms);

  EXPECT_EQ(pool.cancel_pending(), 1u);  // drains job 1, must notify

  const auto status = producer_done.get_future().wait_for(5s);
  EXPECT_EQ(status, std::future_status::ready)
      << "producer stayed parked after cancel_pending drained the queue";

  release.set_value();
  producer.join();
  pool.shutdown(/*drain_pending=*/true);
  const auto qs = pool.qos_stats();
  EXPECT_EQ(qs[qos_index(qos_class::standard)].cancelled, 1u);
}

TEST(Sched, ReentrantEnqueueAtMaxQueueFailsFast) {
  // Regression: a job enqueueing into its own pool while the queue is at
  // max_queue must get queue_overflow, not park in a backpressure wait
  // it can never be woken from (the queue drains only through the worker
  // that would be doing the waiting).
  context_workers::config cfg;
  cfg.count = 1;
  cfg.max_queue = 1;
  context_workers pool(cfg);

  std::promise<void> queue_full;
  std::promise<std::exception_ptr> nested_result;
  pool.enqueue(
      [&](std::exception_ptr abort) {
        if (abort) {
          nested_result.set_value(abort);
          return;
        }
        // Wait until the main thread filled the queue behind us.
        queue_full.get_future().wait();
        try {
          pool.enqueue([](std::exception_ptr) {}, {});
          nested_result.set_value(nullptr);  // would have deadlocked pre-fix
        } catch (...) {
          nested_result.set_value(std::current_exception());
        }
      },
      {});

  // Fill the queue while the worker is parked inside the job above.
  std::vector<int> order;
  std::mutex order_mu;
  pool.enqueue(tagged(order, order_mu, 1), {});
  queue_full.set_value();

  auto fut = nested_result.get_future();
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready)
      << "re-entrant enqueue deadlocked instead of failing fast";
  const std::exception_ptr err = fut.get();
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), queue_overflow);
  pool.shutdown(/*drain_pending=*/true);
}

TEST(Sched, ReentrantEnqueueWithRoomSucceeds) {
  // A worker submitting to its own pool is fine while there is room —
  // only the would-deadlock case (full queue) fails fast.
  context_workers::config cfg;
  cfg.count = 1;
  cfg.max_queue = 4;
  context_workers pool(cfg);

  std::promise<void> nested_ran;
  pool.enqueue(
      [&](std::exception_ptr abort) {
        if (abort) {
          return;
        }
        pool.enqueue(
            [&](std::exception_ptr inner_abort) {
              if (!inner_abort) {
                nested_ran.set_value();
              }
            },
            {});
      },
      {});
  EXPECT_EQ(nested_ran.get_future().wait_for(5s),
            std::future_status::ready);
  pool.shutdown(/*drain_pending=*/true);
}

TEST(Sched, StatsSnapshotNeverTearsSettledPastEnqueued) {
  // The coherence invariant under fire (the TSan matrix runs this suite):
  // while producers and workers churn, every qos_stats() sample must
  // satisfy settled() <= enqueued for every class — the settle side is
  // read first against release stores, so a torn read can only
  // undercount settles.
  context_workers::config cfg;
  cfg.count = 2;
  cfg.max_queue = 32;
  context_workers pool(cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto qs = pool.qos_stats();
      for (const auto& c : qs) {
        if (c.settled() > c.enqueued) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  constexpr int kJobs = 400;
  std::atomic<int> done{0};
  const qos_class classes[] = {qos_class::interactive, qos_class::standard,
                               qos_class::batch};
  for (int k = 0; k < kJobs; ++k) {
    job_options opts;
    opts.qos = classes[k % 3];
    if (k % 7 == 0) {
      opts.deadline = std::chrono::steady_clock::now() - 1ms;  // expires
    }
    pool.enqueue(
        [&done](std::exception_ptr) {
          done.fetch_add(1, std::memory_order_relaxed);
        },
        opts);
  }
  pool.shutdown(/*drain_pending=*/true);
  stop.store(true);
  sampler.join();

  EXPECT_EQ(torn.load(), 0u) << "a stats sample saw settled > enqueued";
  EXPECT_EQ(done.load(), kJobs);  // every job settled exactly once
  const auto qs = pool.qos_stats();
  std::uint64_t enqueued = 0;
  std::uint64_t settled = 0;
  for (const auto& c : qs) {
    enqueued += c.enqueued;
    settled += c.settled();
  }
  EXPECT_EQ(enqueued, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(settled, enqueued);  // quiescent: conservation holds exactly
}

TEST(Sched, SchedPopFaultSettlesTheTicketExactlyOnce) {
  // An injected ctx.sched.pop fault must neither kill the worker thread
  // nor orphan the popped ticket: the ticket settles with the injected
  // exception and the pool keeps serving afterwards.
  context_workers::config cfg;
  cfg.count = 1;
  cfg.max_queue = 8;
  context_workers pool(cfg);

  std::promise<void> first;
  {
    failpoint::scoped_trigger fault("ctx.sched.pop", failpoint::mode::fault,
                                    /*skip=*/0, /*count=*/1);
    pool.enqueue(
        [&first](std::exception_ptr abort) {
          if (abort) {
            first.set_exception(abort);
          } else {
            first.set_value();
          }
        },
        {});
    EXPECT_THROW(first.get_future().get(), failpoint::injected_fault);
  }

  // The worker survived: later jobs run normally.
  std::promise<void> second;
  pool.enqueue(
      [&second](std::exception_ptr abort) {
        if (!abort) {
          second.set_value();
        }
      },
      {});
  EXPECT_EQ(second.get_future().wait_for(5s), std::future_status::ready);
  pool.shutdown(/*drain_pending=*/true);
}

TEST(Sched, TopologyProbeAndPinningFallbackAreSane) {
  const auto topo = util::probe_topology();
  EXPECT_GE(topo.logical, 1);
  EXPECT_GE(topo.allowed, 1);
  EXPECT_LE(topo.allowed, topo.logical);

  context_workers::config cfg;
  cfg.count = 2;
  cfg.max_queue = 8;
  cfg.pin_workers = true;
  context_workers pool(cfg);
  // Pinning either stuck (supported platforms) or fell back loudly; the
  // pool serves jobs identically either way.
  std::promise<void> ran;
  pool.enqueue(
      [&ran](std::exception_ptr abort) {
        if (!abort) {
          ran.set_value();
        }
      },
      {});
  EXPECT_EQ(ran.get_future().wait_for(5s), std::future_status::ready);
  pool.shutdown(/*drain_pending=*/true);
  if (topo.pinning_supported) {
    EXPECT_EQ(pool.pinned_workers(), 2u);
  } else {
    EXPECT_EQ(pool.pinned_workers(), 0u);
  }

  // Context plumbing: pin_workers reaches the pool and the stats.
  context_options copts;
  copts.workers = 1;
  copts.pin_workers = true;
  transpose_context ctx(copts);
  auto a = util::iota_matrix<double>(12, 9);
  ctx.submit(a.data(), std::size_t{12}, std::size_t{9}).get();
  const auto s = ctx.stats();
  if (topo.pinning_supported) {
    EXPECT_EQ(s.pinned_workers, 1u);
  } else {
    EXPECT_EQ(s.pinned_workers, 0u);
  }
}

}  // namespace
