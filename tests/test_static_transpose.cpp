// Tests for the compile-time register transpose (simd/static_transpose):
// equality with the out-of-place reference for every structure size in
// the paper's 2..32 range at warp width 32 (plus narrower widths),
// inverse round trips, agreement with the runtime warp model, and
// constexpr evaluability of the index tables.

#include "simd/static_transpose.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cpu/kernels/kernel_set.hpp"
#include "cpu/kernels/tile_inreg.hpp"
#include "simd/register_transpose.hpp"
#include "util/matrix.hpp"

namespace {

using namespace inplace;

template <unsigned M, unsigned W>
void check_static_tile() {
  simd::static_tile<std::uint32_t, M, W> tile{};
  for (unsigned r = 0; r < M; ++r) {
    for (unsigned t = 0; t < W; ++t) {
      tile[r][t] = r * W + t;
    }
  }
  const auto original = tile;

  simd::static_c2r<std::uint32_t, M, W>(tile);

  // Flattened, the tile must equal the reference transpose's row-major
  // linearization (Theorem 1).
  const auto src = util::iota_matrix<std::uint32_t>(M, W);
  const auto want = util::reference_transpose(
      std::span<const std::uint32_t>(src), M, W);
  for (unsigned r = 0; r < M; ++r) {
    for (unsigned t = 0; t < W; ++t) {
      ASSERT_EQ(tile[r][t], want[r * W + t])
          << M << "x" << W << " at reg " << r << " lane " << t;
    }
  }

  // Agreement with the runtime warp model.
  simd::warp<std::uint32_t> w(W, M);
  w.load_coalesced(src.data());
  const auto mm = simd::warp_tile_math(M, W);
  simd::c2r_registers(w, mm);
  for (unsigned r = 0; r < M; ++r) {
    for (unsigned t = 0; t < W; ++t) {
      ASSERT_EQ(tile[r][t], w.reg(r, t));
    }
  }

  // Inverse round trip.
  simd::static_r2c<std::uint32_t, M, W>(tile);
  ASSERT_EQ(tile, original) << M << "x" << W;
}

template <unsigned W, unsigned... Ms>
void check_all_sizes(std::integer_sequence<unsigned, Ms...>) {
  (check_static_tile<Ms + 2, W>(), ...);
}

TEST(StaticTranspose, AllStructSizesAtWarpWidth32) {
  // m = 2..32, the paper's AoS structure-size range.
  check_all_sizes<32>(std::make_integer_sequence<unsigned, 31>{});
}

TEST(StaticTranspose, NarrowerWidths) {
  check_static_tile<3, 4>();
  check_static_tile<4, 4>();
  check_static_tile<5, 8>();
  check_static_tile<8, 8>();
  check_static_tile<12, 16>();
  check_static_tile<16, 16>();
  check_static_tile<27, 16>();
}

TEST(StaticTranspose, IndexTablesAreCompileTimeConstants) {
  using math = simd::static_tile_math<7, 32>;
  static_assert(math::c == 1);
  static_assert(math::a == 7);
  static_assert(math::b == 32);
  static_assert(math::a_inv * math::a % math::b == 1);
  static_assert(math::prerotate[31] == 0);  // c == 1: no pre-rotation
  static_assert(math::q_perm.size() == 7);

  using math2 = simd::static_tile_math<8, 32>;
  static_assert(math2::c == 8);
  static_assert(math2::prerotate[31] == 7);  // ⌊31/4⌋
  SUCCEED();
}

// --- ladder pins: the runtime SIMD tiles ARE the static schedules -----------
//
// The tile_inreg_* kernels are generated from the same shuffle_src /
// shuffle_src_inv schedules that drive static_r2c / static_c2r; these
// pins assert the generated vpunpck/vpermd (and portable) ladders match
// the compile-time transposes lane-for-lane, for every register count a
// tier implements, at both element widths.

template <typename T, unsigned M, unsigned W>
void check_ladder_pin(const kernels::kernel_set& ks, const char* name) {
  // Expected flat images from the compile-time schedules.
  simd::static_tile<T, M, W> fwd{};
  simd::static_tile<T, M, W> inv{};
  for (unsigned r = 0; r < M; ++r) {
    for (unsigned t = 0; t < W; ++t) {
      fwd[r][t] = static_cast<T>(r * W + t + 1);
      inv[r][t] = static_cast<T>(r * W + t + 1);
    }
  }
  simd::static_r2c<T, M, W>(fwd);
  simd::static_c2r<T, M, W>(inv);

  const auto check = [&](bool forward, bool portable) {
    const simd::static_tile<T, M, W>& want = forward ? fwd : inv;
    // Two blocks, to pin the per-block stride as well as the shuffle.
    std::vector<T> data(2 * M * W);
    for (std::size_t k = 0; k < data.size(); ++k) {
      data[k] = static_cast<T>(k % (M * W) + 1);
    }
    if (portable) {
      kernels::tile_pass_portable(data.data(), M, W, 2, forward);
    } else {
      kernels::tile_pass<T>(ks, data.data(), M, 2, forward);
    }
    for (unsigned blk = 0; blk < 2; ++blk) {
      for (unsigned r = 0; r < M; ++r) {
        for (unsigned t = 0; t < W; ++t) {
          ASSERT_EQ(data[blk * M * W + r * W + t], want[r][t])
              << (portable ? "portable" : name) << " "
              << (forward ? "forward" : "inverse") << " M=" << M
              << " W=" << W << " elem=" << sizeof(T) << " block=" << blk
              << " reg=" << r << " lane=" << t;
        }
      }
    }
  };
  check(true, false);
  check(false, false);
  check(true, true);
  check(false, true);
}

template <typename T, unsigned W, unsigned... Ms>
void ladder_pins_for(const kernels::kernel_set& ks, const char* name,
                     std::integer_sequence<unsigned, Ms...>) {
  const unsigned max_regs = kernels::tile_max_regs<T>(ks);
  // M = 2..16, clipped to what the tier's register file holds.
  ((Ms + 2 <= max_regs ? check_ladder_pin<T, Ms + 2, W>(ks, name) : void()),
   ...);
}

template <typename T>
void ladder_pins_all_tiers() {
  bool any = false;
  for (const kernels::tier t :
       {kernels::tier::avx2, kernels::tier::avx512, kernels::tier::neon}) {
    if (!kernels::tier_available(t)) {
      continue;
    }
    const kernels::kernel_set& ks = kernels::set_for(t);
    const unsigned lanes = kernels::tile_lanes<T>(ks);
    if (lanes < 2) {
      continue;
    }
    any = true;
    const char* name = kernels::tier_name(t);
    const auto ms = std::make_integer_sequence<unsigned, 15>{};
    switch (lanes) {
      case 2: ladder_pins_for<T, 2>(ks, name, ms); break;
      case 4: ladder_pins_for<T, 4>(ks, name, ms); break;
      case 8: ladder_pins_for<T, 8>(ks, name, ms); break;
      case 16: ladder_pins_for<T, 16>(ks, name, ms); break;
      default:
        FAIL() << name << " reports unexpected tile lane width " << lanes;
    }
  }
  if (!any) {
    GTEST_SKIP() << "no SIMD tier with an in-register tile on this host";
  }
}

TEST(StaticTranspose, LadderPinsMatchSchedulesU32) {
  ladder_pins_all_tiers<std::uint32_t>();
}

TEST(StaticTranspose, LadderPinsMatchSchedulesU64) {
  ladder_pins_all_tiers<std::uint64_t>();
}

TEST(StaticTranspose, ConstexprEvaluation) {
  // The whole transpose is usable in a constant expression.
  constexpr auto done = [] {
    simd::static_tile<int, 4, 8> tile{};
    for (unsigned r = 0; r < 4; ++r) {
      for (unsigned t = 0; t < 8; ++t) {
        tile[r][t] = static_cast<int>(r * 8 + t);
      }
    }
    simd::static_c2r<int, 4, 8>(tile);
    return tile;
  }();
  // Element (0, 1) of the transposed 8x4 tile is source (1, 0) = 8.
  static_assert(done[0][1] == 8);
  SUCCEED();
}

}  // namespace
