// Tests for the Section 2 linearizations and gather definitions
// (core/layout.hpp): round trips, the paper's worked example, and the
// equivalence A_C2R(rm) == A^T(rm) established by Theorem 1.

#include "core/layout.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace {

using namespace inplace;

TEST(Linearization, RowMajorRoundTrip) {
  const extents e{7, 13};
  for (std::uint64_t l = 0; l < e.m * e.n; ++l) {
    EXPECT_EQ(lin::lrm(lin::irm(l, e.n), lin::jrm(l, e.n), e.n), l);
  }
  for (std::uint64_t i = 0; i < e.m; ++i) {
    for (std::uint64_t j = 0; j < e.n; ++j) {
      const std::uint64_t l = lin::lrm(i, j, e.n);
      EXPECT_EQ(lin::irm(l, e.n), i);
      EXPECT_EQ(lin::jrm(l, e.n), j);
    }
  }
}

TEST(Linearization, ColMajorRoundTrip) {
  const extents e{7, 13};
  for (std::uint64_t l = 0; l < e.m * e.n; ++l) {
    EXPECT_EQ(lin::lcm(lin::icm(l, e.m), lin::jcm(l, e.m), e.m), l);
  }
  for (std::uint64_t i = 0; i < e.m; ++i) {
    for (std::uint64_t j = 0; j < e.n; ++j) {
      const std::uint64_t l = lin::lcm(i, j, e.m);
      EXPECT_EQ(lin::icm(l, e.m), i);
      EXPECT_EQ(lin::jcm(l, e.m), j);
    }
  }
}

TEST(GatherDefinitions, PaperWorkedExample) {
  // Section 2: for m = 3, n = 8, the element at i = 2, j = 0 (value 16 in
  // Figure 1) moves to i' = s(i,j) = 1, j' = c(i,j) = 5 under R2C.
  const extents e{3, 8};
  EXPECT_EQ(eq_s(2, 0, e), 1u);
  EXPECT_EQ(eq_c(2, 0, e), 5u);
}

TEST(GatherDefinitions, R2CMatchesFigure1) {
  // Figure 1: the R2C transposition maps the 3x8 row-major array 0..23
  // (left) to rows [0,3,...,21], [1,4,...,22], [2,5,...,23] (right);
  // element 16 moves from (2,0) to (1,5) as worked in Section 2.
  const extents e{3, 8};
  const auto a = util::iota_matrix<int>(3, 8);
  std::vector<int> r2c(24);
  for (std::uint64_t i = 0; i < e.m; ++i) {
    for (std::uint64_t j = 0; j < e.n; ++j) {
      r2c[i * e.n + j] =
          a[eq_t(i, j, e) * e.n + eq_d(i, j, e)];  // Eq. 12 gather
    }
  }
  const std::vector<int> expected = {0, 3, 6, 9,  12, 15, 18, 21,
                                     1, 4, 7, 10, 13, 16, 19, 22,
                                     2, 5, 8, 11, 14, 17, 20, 23};
  EXPECT_EQ(r2c, expected);
  EXPECT_EQ(r2c[1 * 8 + 5], 16);
}

TEST(GatherDefinitions, C2RInvertsFigure1) {
  // C2R is the inverse arrow of Figure 1: applied to the right-hand matrix
  // it recovers the left-hand 0..23 array.
  const extents e{3, 8};
  const std::vector<int> right = {0, 3, 6, 9,  12, 15, 18, 21,
                                  1, 4, 7, 10, 13, 16, 19, 22,
                                  2, 5, 8, 11, 14, 17, 20, 23};
  std::vector<int> c2r(24);
  for (std::uint64_t i = 0; i < e.m; ++i) {
    for (std::uint64_t j = 0; j < e.n; ++j) {
      c2r[i * e.n + j] =
          right[eq_s(i, j, e) * e.n + eq_c(i, j, e)];  // Eq. 11 gather
    }
  }
  EXPECT_EQ(c2r, util::iota_matrix<int>(3, 8));
}

TEST(GatherDefinitions, R2CInvertsC2R) {
  const extents e{4, 6};
  const auto a = util::iota_matrix<int>(4, 6);
  std::vector<int> after_c2r(a.size());
  for (std::uint64_t i = 0; i < e.m; ++i) {
    for (std::uint64_t j = 0; j < e.n; ++j) {
      after_c2r[i * e.n + j] = a[eq_s(i, j, e) * e.n + eq_c(i, j, e)];
    }
  }
  std::vector<int> back(a.size());
  for (std::uint64_t i = 0; i < e.m; ++i) {
    for (std::uint64_t j = 0; j < e.n; ++j) {
      back[i * e.n + j] =
          after_c2r[eq_t(i, j, e) * e.n + eq_d(i, j, e)];  // Eq. 12 gather
    }
  }
  EXPECT_EQ(back, a);
}

TEST(GatherDefinitions, Theorem1C2REqualsRowMajorTranspose) {
  for (auto [m, n] : {std::pair<std::uint64_t, std::uint64_t>{3, 8},
                      {4, 8},
                      {5, 5},
                      {7, 3},
                      {1, 9},
                      {9, 1},
                      {6, 10}}) {
    const extents e{m, n};
    const auto a = util::iota_matrix<int>(m, n);
    std::vector<int> c2r(a.size());
    for (std::uint64_t i = 0; i < m; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        c2r[i * n + j] = a[eq_s(i, j, e) * n + eq_c(i, j, e)];
      }
    }
    const auto t =
        util::reference_transpose(std::span<const int>(a), m, n);
    EXPECT_EQ(c2r, t) << m << "x" << n;
  }
}

TEST(GatherDefinitions, Theorem7LinearizationInvariance) {
  // Theorem 7: performing the C2R gather with column-major indexing on a
  // row-major array yields the same final buffer as performing it with
  // row-major indexing — the intermediate views differ, the result does
  // not.  (Eq. 28-30.)
  for (auto [m, n] : {std::pair<std::uint64_t, std::uint64_t>{4, 8},
                      {3, 8},
                      {6, 10},
                      {9, 6},
                      {5, 5}}) {
    const extents e{m, n};
    const auto a = util::iota_matrix<int>(m, n);

    // Row-major indexing: B_rm[l] = A[lrm(s(irm,jrm), c(irm,jrm))].
    std::vector<int> via_rm(a.size());
    for (std::uint64_t l = 0; l < a.size(); ++l) {
      const std::uint64_t i = lin::irm(l, n);
      const std::uint64_t j = lin::jrm(l, n);
      via_rm[l] = a[lin::lrm(eq_s(i, j, e), eq_c(i, j, e), n)];
    }

    // Column-major indexing (Eq. 28): B[l] =
    // A[lcm(s(icm,jcm), c(icm,jcm))].
    std::vector<int> via_cm(a.size());
    for (std::uint64_t l = 0; l < a.size(); ++l) {
      const std::uint64_t i = lin::icm(l, m);
      const std::uint64_t j = lin::jcm(l, m);
      via_cm[l] = a[lin::lcm(eq_s(i, j, e), eq_c(i, j, e), m)];
    }

    EXPECT_EQ(via_cm, via_rm) << m << "x" << n;
    // And both equal the row-major transpose (Theorem 1 / Eq. 30).
    const auto want = util::reference_transpose(std::span<const int>(a),
                                                m, n);
    EXPECT_EQ(via_rm, want) << m << "x" << n;
  }
}

}  // namespace
