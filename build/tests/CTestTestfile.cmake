# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_gcdmath[1]_include.cmake")
include("/root/repo/build/tests/test_fastdiv[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_equations[1]_include.cmake")
include("/root/repo/build/tests/test_transpose[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_warp[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_fastdiv64[1]_include.cmake")
include("/root/repo/build/tests/test_static_transpose[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_vectorized[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_skinny[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_device_model[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
