# Empty dependencies file for test_gcdmath.
# This may be replaced when dependencies are built.
