file(REMOVE_RECURSE
  "CMakeFiles/test_gcdmath.dir/test_gcdmath.cpp.o"
  "CMakeFiles/test_gcdmath.dir/test_gcdmath.cpp.o.d"
  "test_gcdmath"
  "test_gcdmath.pdb"
  "test_gcdmath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcdmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
