file(REMOVE_RECURSE
  "CMakeFiles/test_fastdiv.dir/test_fastdiv.cpp.o"
  "CMakeFiles/test_fastdiv.dir/test_fastdiv.cpp.o.d"
  "test_fastdiv"
  "test_fastdiv.pdb"
  "test_fastdiv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastdiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
