# Empty dependencies file for test_fastdiv.
# This may be replaced when dependencies are built.
