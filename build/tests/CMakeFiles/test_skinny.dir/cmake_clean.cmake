file(REMOVE_RECURSE
  "CMakeFiles/test_skinny.dir/test_skinny.cpp.o"
  "CMakeFiles/test_skinny.dir/test_skinny.cpp.o.d"
  "test_skinny"
  "test_skinny.pdb"
  "test_skinny[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skinny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
