# Empty dependencies file for test_skinny.
# This may be replaced when dependencies are built.
