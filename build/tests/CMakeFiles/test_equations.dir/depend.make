# Empty dependencies file for test_equations.
# This may be replaced when dependencies are built.
