file(REMOVE_RECURSE
  "CMakeFiles/test_equations.dir/test_equations.cpp.o"
  "CMakeFiles/test_equations.dir/test_equations.cpp.o.d"
  "test_equations"
  "test_equations.pdb"
  "test_equations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
