# Empty dependencies file for test_static_transpose.
# This may be replaced when dependencies are built.
