file(REMOVE_RECURSE
  "CMakeFiles/test_static_transpose.dir/test_static_transpose.cpp.o"
  "CMakeFiles/test_static_transpose.dir/test_static_transpose.cpp.o.d"
  "test_static_transpose"
  "test_static_transpose.pdb"
  "test_static_transpose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
