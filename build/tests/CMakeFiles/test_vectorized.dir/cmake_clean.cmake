file(REMOVE_RECURSE
  "CMakeFiles/test_vectorized.dir/test_vectorized.cpp.o"
  "CMakeFiles/test_vectorized.dir/test_vectorized.cpp.o.d"
  "test_vectorized"
  "test_vectorized.pdb"
  "test_vectorized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vectorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
