# Empty compiler generated dependencies file for test_vectorized.
# This may be replaced when dependencies are built.
