# Empty compiler generated dependencies file for test_fastdiv64.
# This may be replaced when dependencies are built.
