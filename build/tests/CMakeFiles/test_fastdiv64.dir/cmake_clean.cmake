file(REMOVE_RECURSE
  "CMakeFiles/test_fastdiv64.dir/test_fastdiv64.cpp.o"
  "CMakeFiles/test_fastdiv64.dir/test_fastdiv64.cpp.o.d"
  "test_fastdiv64"
  "test_fastdiv64.pdb"
  "test_fastdiv64[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastdiv64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
