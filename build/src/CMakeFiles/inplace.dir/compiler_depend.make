# Empty compiler generated dependencies file for inplace.
# This may be replaced when dependencies are built.
