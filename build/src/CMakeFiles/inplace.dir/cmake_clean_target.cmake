file(REMOVE_RECURSE
  "libinplace.a"
)
