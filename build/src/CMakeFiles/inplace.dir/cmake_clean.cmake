file(REMOVE_RECURSE
  "CMakeFiles/inplace.dir/baselines/cycle_follow.cpp.o"
  "CMakeFiles/inplace.dir/baselines/cycle_follow.cpp.o.d"
  "CMakeFiles/inplace.dir/baselines/gustavson_like.cpp.o"
  "CMakeFiles/inplace.dir/baselines/gustavson_like.cpp.o.d"
  "CMakeFiles/inplace.dir/baselines/sung_tiled.cpp.o"
  "CMakeFiles/inplace.dir/baselines/sung_tiled.cpp.o.d"
  "CMakeFiles/inplace.dir/core/errors.cpp.o"
  "CMakeFiles/inplace.dir/core/errors.cpp.o.d"
  "CMakeFiles/inplace.dir/core/plan.cpp.o"
  "CMakeFiles/inplace.dir/core/plan.cpp.o.d"
  "CMakeFiles/inplace.dir/memsim/bandwidth_model.cpp.o"
  "CMakeFiles/inplace.dir/memsim/bandwidth_model.cpp.o.d"
  "CMakeFiles/inplace.dir/memsim/coalescer.cpp.o"
  "CMakeFiles/inplace.dir/memsim/coalescer.cpp.o.d"
  "CMakeFiles/inplace.dir/memsim/device_model.cpp.o"
  "CMakeFiles/inplace.dir/memsim/device_model.cpp.o.d"
  "CMakeFiles/inplace.dir/util/ascii_plot.cpp.o"
  "CMakeFiles/inplace.dir/util/ascii_plot.cpp.o.d"
  "CMakeFiles/inplace.dir/util/bench_harness.cpp.o"
  "CMakeFiles/inplace.dir/util/bench_harness.cpp.o.d"
  "CMakeFiles/inplace.dir/util/histogram.cpp.o"
  "CMakeFiles/inplace.dir/util/histogram.cpp.o.d"
  "libinplace.a"
  "libinplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
