
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cycle_follow.cpp" "src/CMakeFiles/inplace.dir/baselines/cycle_follow.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/baselines/cycle_follow.cpp.o.d"
  "/root/repo/src/baselines/gustavson_like.cpp" "src/CMakeFiles/inplace.dir/baselines/gustavson_like.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/baselines/gustavson_like.cpp.o.d"
  "/root/repo/src/baselines/sung_tiled.cpp" "src/CMakeFiles/inplace.dir/baselines/sung_tiled.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/baselines/sung_tiled.cpp.o.d"
  "/root/repo/src/core/errors.cpp" "src/CMakeFiles/inplace.dir/core/errors.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/core/errors.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/inplace.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/core/plan.cpp.o.d"
  "/root/repo/src/memsim/bandwidth_model.cpp" "src/CMakeFiles/inplace.dir/memsim/bandwidth_model.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/memsim/bandwidth_model.cpp.o.d"
  "/root/repo/src/memsim/coalescer.cpp" "src/CMakeFiles/inplace.dir/memsim/coalescer.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/memsim/coalescer.cpp.o.d"
  "/root/repo/src/memsim/device_model.cpp" "src/CMakeFiles/inplace.dir/memsim/device_model.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/memsim/device_model.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "src/CMakeFiles/inplace.dir/util/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/bench_harness.cpp" "src/CMakeFiles/inplace.dir/util/bench_harness.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/util/bench_harness.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/inplace.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/inplace.dir/util/histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
