file(REMOVE_RECURSE
  "CMakeFiles/image_planar.dir/image_planar.cpp.o"
  "CMakeFiles/image_planar.dir/image_planar.cpp.o.d"
  "image_planar"
  "image_planar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_planar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
