# Empty compiler generated dependencies file for image_planar.
# This may be replaced when dependencies are built.
