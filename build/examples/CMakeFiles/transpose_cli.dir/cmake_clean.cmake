file(REMOVE_RECURSE
  "CMakeFiles/transpose_cli.dir/transpose_cli.cpp.o"
  "CMakeFiles/transpose_cli.dir/transpose_cli.cpp.o.d"
  "transpose_cli"
  "transpose_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
