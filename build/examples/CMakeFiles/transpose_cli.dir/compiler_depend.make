# Empty compiler generated dependencies file for transpose_cli.
# This may be replaced when dependencies are built.
