file(REMOVE_RECURSE
  "CMakeFiles/cycle_structure.dir/cycle_structure.cpp.o"
  "CMakeFiles/cycle_structure.dir/cycle_structure.cpp.o.d"
  "cycle_structure"
  "cycle_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
