# Empty compiler generated dependencies file for cycle_structure.
# This may be replaced when dependencies are built.
