# Empty compiler generated dependencies file for ml_batched.
# This may be replaced when dependencies are built.
