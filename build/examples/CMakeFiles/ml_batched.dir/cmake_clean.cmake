file(REMOVE_RECURSE
  "CMakeFiles/ml_batched.dir/ml_batched.cpp.o"
  "CMakeFiles/ml_batched.dir/ml_batched.cpp.o.d"
  "ml_batched"
  "ml_batched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_batched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
