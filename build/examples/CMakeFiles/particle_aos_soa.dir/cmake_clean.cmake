file(REMOVE_RECURSE
  "CMakeFiles/particle_aos_soa.dir/particle_aos_soa.cpp.o"
  "CMakeFiles/particle_aos_soa.dir/particle_aos_soa.cpp.o.d"
  "particle_aos_soa"
  "particle_aos_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_aos_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
