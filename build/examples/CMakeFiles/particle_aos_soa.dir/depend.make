# Empty dependencies file for particle_aos_soa.
# This may be replaced when dependencies are built.
