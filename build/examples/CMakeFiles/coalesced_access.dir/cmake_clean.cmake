file(REMOVE_RECURSE
  "CMakeFiles/coalesced_access.dir/coalesced_access.cpp.o"
  "CMakeFiles/coalesced_access.dir/coalesced_access.cpp.o.d"
  "coalesced_access"
  "coalesced_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalesced_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
