# Empty compiler generated dependencies file for coalesced_access.
# This may be replaced when dependencies are built.
