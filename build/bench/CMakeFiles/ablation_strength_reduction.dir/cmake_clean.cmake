file(REMOVE_RECURSE
  "CMakeFiles/ablation_strength_reduction.dir/ablation_strength_reduction.cpp.o"
  "CMakeFiles/ablation_strength_reduction.dir/ablation_strength_reduction.cpp.o.d"
  "ablation_strength_reduction"
  "ablation_strength_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strength_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
