# Empty compiler generated dependencies file for fig3_table1_cpu_histograms.
# This may be replaced when dependencies are built.
