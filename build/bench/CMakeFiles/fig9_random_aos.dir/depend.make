# Empty dependencies file for fig9_random_aos.
# This may be replaced when dependencies are built.
