file(REMOVE_RECURSE
  "CMakeFiles/fig9_random_aos.dir/fig9_random_aos.cpp.o"
  "CMakeFiles/fig9_random_aos.dir/fig9_random_aos.cpp.o.d"
  "fig9_random_aos"
  "fig9_random_aos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_random_aos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
