# Empty compiler generated dependencies file for gpu_model_predictions.
# This may be replaced when dependencies are built.
