file(REMOVE_RECURSE
  "CMakeFiles/gpu_model_predictions.dir/gpu_model_predictions.cpp.o"
  "CMakeFiles/gpu_model_predictions.dir/gpu_model_predictions.cpp.o.d"
  "gpu_model_predictions"
  "gpu_model_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_model_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
