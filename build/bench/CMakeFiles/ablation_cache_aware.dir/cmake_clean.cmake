file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_aware.dir/ablation_cache_aware.cpp.o"
  "CMakeFiles/ablation_cache_aware.dir/ablation_cache_aware.cpp.o.d"
  "ablation_cache_aware"
  "ablation_cache_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
