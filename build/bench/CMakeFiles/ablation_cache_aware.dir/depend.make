# Empty dependencies file for ablation_cache_aware.
# This may be replaced when dependencies are built.
