file(REMOVE_RECURSE
  "CMakeFiles/fig4_fig5_landscape.dir/fig4_fig5_landscape.cpp.o"
  "CMakeFiles/fig4_fig5_landscape.dir/fig4_fig5_landscape.cpp.o.d"
  "fig4_fig5_landscape"
  "fig4_fig5_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fig5_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
