# Empty compiler generated dependencies file for fig4_fig5_landscape.
# This may be replaced when dependencies are built.
