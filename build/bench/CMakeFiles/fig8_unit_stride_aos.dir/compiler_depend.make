# Empty compiler generated dependencies file for fig8_unit_stride_aos.
# This may be replaced when dependencies are built.
