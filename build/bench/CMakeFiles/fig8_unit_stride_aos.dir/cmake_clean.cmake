file(REMOVE_RECURSE
  "CMakeFiles/fig8_unit_stride_aos.dir/fig8_unit_stride_aos.cpp.o"
  "CMakeFiles/fig8_unit_stride_aos.dir/fig8_unit_stride_aos.cpp.o.d"
  "fig8_unit_stride_aos"
  "fig8_unit_stride_aos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_unit_stride_aos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
