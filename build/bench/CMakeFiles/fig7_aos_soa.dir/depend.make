# Empty dependencies file for fig7_aos_soa.
# This may be replaced when dependencies are built.
