file(REMOVE_RECURSE
  "CMakeFiles/fig7_aos_soa.dir/fig7_aos_soa.cpp.o"
  "CMakeFiles/fig7_aos_soa.dir/fig7_aos_soa.cpp.o.d"
  "fig7_aos_soa"
  "fig7_aos_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_aos_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
