# Empty compiler generated dependencies file for fig6_table2_histograms.
# This may be replaced when dependencies are built.
