# Empty dependencies file for ablation_block_width.
# This may be replaced when dependencies are built.
