file(REMOVE_RECURSE
  "CMakeFiles/ablation_block_width.dir/ablation_block_width.cpp.o"
  "CMakeFiles/ablation_block_width.dir/ablation_block_width.cpp.o.d"
  "ablation_block_width"
  "ablation_block_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
