#pragma once
// Real, measurable CPU kernels mirroring the access patterns of Figures
// 8-9.  A CPU has no warp coalescer, but the same dichotomy exists:
// strided element-wise traversal of an Array of Structures wastes cache
// -line bandwidth exactly as uncoalesced warp accesses waste segment
// bandwidth, while the transpose-staged form streams contiguously.
//
//   * "direct"  kernels traverse field-major: for each field, touch that
//     field of every structure — a stride of struct-size between touches
//     (the compiler-generated per-element pattern of the paper).
//   * "staged" kernels (the C2R analogue) move tile-sized groups of
//     structures through an L1-resident staging buffer, so every memory
//     touch is contiguous.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace inplace::simd {

/// SoA -> AoS copy ("store" direction, Fig. 8a), field-major: sequential
/// reads, strided writes.
template <typename T>
void soa_to_aos_direct(T* aos, const T* soa, std::size_t count,
                       std::size_t fields) {
  for (std::size_t f = 0; f < fields; ++f) {
    const T* src = soa + f * count;
    for (std::size_t s = 0; s < count; ++s) {
      aos[s * fields + f] = src[s];
    }
  }
}

/// SoA -> AoS copy, staged through an L1 tile of `tile` structures:
/// strided traffic is confined to the cache-resident tile, all memory
/// traffic is contiguous.
template <typename T>
void soa_to_aos_staged(T* aos, const T* soa, std::size_t count,
                       std::size_t fields, std::size_t tile = 256) {
  std::vector<T> stage(tile * fields);
  for (std::size_t s0 = 0; s0 < count; s0 += tile) {
    const std::size_t w = std::min(tile, count - s0);
    for (std::size_t f = 0; f < fields; ++f) {
      const T* src = soa + f * count + s0;
      for (std::size_t s = 0; s < w; ++s) {
        stage[s * fields + f] = src[s];
      }
    }
    T* dst = aos + s0 * fields;
    for (std::size_t l = 0; l < w * fields; ++l) {
      dst[l] = stage[l];
    }
  }
}

/// AoS -> SoA copy ("load" direction): strided reads, sequential writes.
template <typename T>
void aos_to_soa_direct(T* soa, const T* aos, std::size_t count,
                       std::size_t fields) {
  for (std::size_t f = 0; f < fields; ++f) {
    T* dst = soa + f * count;
    for (std::size_t s = 0; s < count; ++s) {
      dst[s] = aos[s * fields + f];
    }
  }
}

/// AoS -> SoA copy staged through an L1 tile.
template <typename T>
void aos_to_soa_staged(T* soa, const T* aos, std::size_t count,
                       std::size_t fields, std::size_t tile = 256) {
  std::vector<T> stage(tile * fields);
  for (std::size_t s0 = 0; s0 < count; s0 += tile) {
    const std::size_t w = std::min(tile, count - s0);
    const T* src = aos + s0 * fields;
    for (std::size_t l = 0; l < w * fields; ++l) {
      stage[l] = src[l];
    }
    for (std::size_t f = 0; f < fields; ++f) {
      T* dst = soa + f * count + s0;
      for (std::size_t s = 0; s < w; ++s) {
        dst[s] = stage[s * fields + f];
      }
    }
  }
}

/// Random gather of structures (Fig. 9b), field-major ("direct"): field f
/// of every requested structure before field f+1 — each structure's cache
/// lines are touched `fields` times, far apart.
template <typename T>
void gather_structs_direct(T* out, const T* aos,
                           const std::uint64_t* idx, std::size_t count,
                           std::size_t fields) {
  for (std::size_t f = 0; f < fields; ++f) {
    for (std::size_t k = 0; k < count; ++k) {
      out[k * fields + f] = aos[idx[k] * fields + f];
    }
  }
}

/// Random gather, struct-major (the cooperative/C2R analogue): each
/// structure's lines are touched once, contiguously.
template <typename T>
void gather_structs_coalesced(T* out, const T* aos,
                              const std::uint64_t* idx, std::size_t count,
                              std::size_t fields) {
  for (std::size_t k = 0; k < count; ++k) {
    const T* src = aos + idx[k] * fields;
    T* dst = out + k * fields;
    for (std::size_t f = 0; f < fields; ++f) {
      dst[f] = src[f];
    }
  }
}

/// Random scatter of structures (Fig. 9a), field-major.
template <typename T>
void scatter_structs_direct(T* aos, const T* in, const std::uint64_t* idx,
                            std::size_t count, std::size_t fields) {
  for (std::size_t f = 0; f < fields; ++f) {
    for (std::size_t k = 0; k < count; ++k) {
      aos[idx[k] * fields + f] = in[k * fields + f];
    }
  }
}

/// Random scatter, struct-major (coalesced analogue).
template <typename T>
void scatter_structs_coalesced(T* aos, const T* in,
                               const std::uint64_t* idx, std::size_t count,
                               std::size_t fields) {
  for (std::size_t k = 0; k < count; ++k) {
    const T* src = in + k * fields;
    T* dst = aos + idx[k] * fields;
    for (std::size_t f = 0; f < fields; ++f) {
      dst[f] = src[f];
    }
  }
}

}  // namespace inplace::simd
