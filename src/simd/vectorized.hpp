#pragma once
// CPU instantiation of the Section 6 access strategy for out-of-place
// layout conversion: structures are staged through compile-time register
// tiles (static_transpose.hpp) in blocks of `lanes` structures, so every
// memory touch is a contiguous `lanes`-wide run — the auto-vectorizable
// analogue of the GPU's coalesced warp accesses.  Field counts are
// dispatched to fully unrolled instantiations (1..32, the paper's AoS
// range); larger field counts fall back to the scalar staged kernel.

#include <array>
#include <cstddef>
#include <cstring>
#include <utility>

#include "simd/cpu_kernels.hpp"
#include "simd/static_transpose.hpp"

namespace inplace::simd {

inline constexpr unsigned vectorized_lanes = 16;
inline constexpr unsigned vectorized_max_fields = 32;

namespace detail_vec {

template <typename T, unsigned F>
void aos_to_soa_tile(T* soa, const T* aos, std::size_t count) {
  constexpr unsigned w = vectorized_lanes;
  std::size_t base = 0;
  static_tile<T, F, w> tile;
  for (; base + w <= count; base += w) {
    const T* block = aos + base * F;
    // Coalesced load: register r across lanes = w consecutive elements.
    for (unsigned r = 0; r < F; ++r) {
      std::memcpy(tile[r].data(), block + std::size_t{r} * w,
                  w * sizeof(T));
    }
    static_r2c<T, F, w>(tile);  // lane t now holds structure base + t
    for (unsigned f = 0; f < F; ++f) {
      std::memcpy(soa + std::size_t{f} * count + base, tile[f].data(),
                  w * sizeof(T));
    }
  }
  for (; base < count; ++base) {  // scalar tail
    for (unsigned f = 0; f < F; ++f) {
      soa[std::size_t{f} * count + base] = aos[base * F + f];
    }
  }
}

template <typename T, unsigned F>
void soa_to_aos_tile(T* aos, const T* soa, std::size_t count) {
  constexpr unsigned w = vectorized_lanes;
  std::size_t base = 0;
  static_tile<T, F, w> tile;
  for (; base + w <= count; base += w) {
    for (unsigned f = 0; f < F; ++f) {
      std::memcpy(tile[f].data(), soa + std::size_t{f} * count + base,
                  w * sizeof(T));
    }
    static_c2r<T, F, w>(tile);  // back to the memory-order tile
    T* block = aos + base * F;
    for (unsigned r = 0; r < F; ++r) {
      std::memcpy(block + std::size_t{r} * w, tile[r].data(),
                  w * sizeof(T));
    }
  }
  for (; base < count; ++base) {
    for (unsigned f = 0; f < F; ++f) {
      aos[base * F + f] = soa[std::size_t{f} * count + base];
    }
  }
}

template <typename T, bool ToSoa, unsigned... Fs>
auto make_dispatch(std::integer_sequence<unsigned, Fs...>) {
  using fn = void (*)(T*, const T*, std::size_t);
  if constexpr (ToSoa) {
    return std::array<fn, sizeof...(Fs)>{&aos_to_soa_tile<T, Fs + 1>...};
  } else {
    return std::array<fn, sizeof...(Fs)>{&soa_to_aos_tile<T, Fs + 1>...};
  }
}

}  // namespace detail_vec

/// Out-of-place AoS -> SoA conversion staged through register tiles.
template <typename T>
void aos_to_soa_vectorized(T* soa, const T* aos, std::size_t count,
                           std::size_t fields) {
  if (fields == 0 || count == 0) {
    return;
  }
  if (fields == 1) {
    std::memcpy(soa, aos, count * sizeof(T));
    return;
  }
  if (fields > vectorized_max_fields) {
    aos_to_soa_staged(soa, aos, count, fields);
    return;
  }
  static const auto table = detail_vec::make_dispatch<T, true>(
      std::make_integer_sequence<unsigned, vectorized_max_fields>{});
  table[fields - 1](soa, aos, count);
}

/// Out-of-place SoA -> AoS conversion staged through register tiles.
template <typename T>
void soa_to_aos_vectorized(T* aos, const T* soa, std::size_t count,
                           std::size_t fields) {
  if (fields == 0 || count == 0) {
    return;
  }
  if (fields == 1) {
    std::memcpy(aos, soa, count * sizeof(T));
    return;
  }
  if (fields > vectorized_max_fields) {
    soa_to_aos_staged(aos, soa, count, fields);
    return;
  }
  static const auto table = detail_vec::make_dispatch<T, false>(
      std::make_integer_sequence<unsigned, vectorized_max_fields>{});
  table[fields - 1](aos, soa, count);
}

}  // namespace inplace::simd
