#pragma once
// Figure 10's high-level interface: a pointer wrapper whose dereferences
// go through the in-register transpose, so Arrays of Structures are read
// and written with fully coalesced warp accesses and no on-chip staging
// memory.
//
// On real SIMD hardware every lane executes the same code; this CPU model
// exposes the warp-cooperative operations explicitly (load/store a batch
// of `width` consecutive structures, or gather/scatter by index) and
// carries the simulated warp's instruction counters so the costs of
// Section 6.2 are observable.

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/errors.hpp"
#include "simd/register_transpose.hpp"
#include "simd/warp.hpp"

namespace inplace::simd {

/// Cooperative Array-of-Structures accessor.  S must be trivially
/// copyable with sizeof(S) a multiple of sizeof(Word); Word is the scalar
/// moved per lane per instruction (a 32-bit register on the K20c).
template <typename S, typename Word = std::uint32_t>
class coalesced_ptr {
  static_assert(std::is_trivially_copyable_v<S>,
                "coalesced_ptr requires a trivially copyable structure");
  static_assert(sizeof(S) % sizeof(Word) == 0,
                "structure size must be a multiple of the word size");

 public:
  static constexpr unsigned words_per_struct = sizeof(S) / sizeof(Word);

  explicit coalesced_ptr(S* data, unsigned width = 32)
      : data_(data),
        width_(width),
        math_(words_per_struct, width),
        warp_(width, words_per_struct) {
    if (width == 0) {
      throw error("coalesced_ptr: warp width must be positive");
    }
  }

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] const warp_counters& counters() const {
    return warp_.counters();
  }

  /// Loads `width` consecutive structures starting at `first` with
  /// coalesced reads + an in-register R2C transpose (Figure 10's
  /// `T loaded = *c_ptr`).  out.size() must equal width().
  void load_batch(std::size_t first, std::span<S> out) {
    if (out.size() != width_) {
      throw error("coalesced_ptr::load_batch: out span must be warp-sized");
    }
    warp_load_structs(warp_, math_,
                      reinterpret_cast<const Word*>(data_ + first));
    for (unsigned t = 0; t < width_; ++t) {
      Word words[words_per_struct];
      for (unsigned r = 0; r < words_per_struct; ++r) {
        words[r] = warp_.reg(r, t);
      }
      std::memcpy(&out[t], words, sizeof(S));
    }
  }

  /// Stores `width` consecutive structures starting at `first` via an
  /// in-register C2R transpose + coalesced writes (Figure 10's
  /// `*c_ptr = value`).
  void store_batch(std::size_t first, std::span<const S> in) {
    if (in.size() != width_) {
      throw error("coalesced_ptr::store_batch: in span must be warp-sized");
    }
    for (unsigned t = 0; t < width_; ++t) {
      Word words[words_per_struct];
      std::memcpy(words, &in[t], sizeof(S));
      for (unsigned r = 0; r < words_per_struct; ++r) {
        warp_.reg(r, t) = words[r];
      }
    }
    warp_store_structs(warp_, math_, reinterpret_cast<Word*>(data_ + first));
  }

  /// Applies `fn` to every structure in [first, first + count) through
  /// warp-cooperative batches, handling the ragged tail with predicated
  /// lanes (inactive lanes replay their own data, as masked-off SIMD
  /// lanes do).  This is the loop a Figure 10 kernel body amounts to.
  template <typename Fn>
  void for_each(std::size_t first, std::size_t count, Fn fn) {
    std::vector<S> batch(width_);
    std::size_t pos = first;
    const std::size_t end = first + count;
    while (pos < end) {
      const std::size_t active = std::min<std::size_t>(width_, end - pos);
      if (active == width_) {
        load_batch(pos, batch);
        for (auto& s : batch) {
          fn(s);
        }
        store_batch(pos, batch);
      } else {
        // Tail: a full-width transposed access would read past the array
        // end, so the final partial warp falls back to per-structure
        // access (at most one such warp per call).
        for (std::size_t t = 0; t < active; ++t) {
          S s;
          std::memcpy(&s, data_ + pos + t, sizeof(S));
          fn(s);
          std::memcpy(data_ + pos + t, &s, sizeof(S));
        }
        auto& c = const_cast<warp_counters&>(warp_.counters());
        c.memory_ops += 2 * words_per_struct;
      }
      pos += active;
    }
  }

  /// Cooperative random gather: structure `idx[t]` is read with
  /// consecutive-lane accesses (one segment sweep per structure) and
  /// delivered to slot t.  Indices are exchanged between lanes with
  /// shuffles on real hardware; the model charges one shfl per register.
  void gather(std::span<const std::size_t> idx, std::span<S> out) {
    if (idx.size() != out.size()) {
      throw error("coalesced_ptr::gather: size mismatch");
    }
    for (std::size_t t = 0; t < idx.size(); ++t) {
      std::memcpy(&out[t], data_ + idx[t], sizeof(S));
    }
    charge_cooperative(idx.size());
  }

  /// Cooperative random scatter — inverse of gather().
  void scatter(std::span<const std::size_t> idx, std::span<const S> in) {
    if (idx.size() != in.size()) {
      throw error("coalesced_ptr::scatter: size mismatch");
    }
    for (std::size_t t = 0; t < idx.size(); ++t) {
      std::memcpy(data_ + idx[t], &in[t], sizeof(S));
    }
    charge_cooperative(idx.size());
  }

 private:
  void charge_cooperative(std::size_t structs) {
    // Each warp-sized group of structures costs one cooperative segment
    // read per structure plus the redistribution shuffles.
    const std::size_t warps = (structs + width_ - 1) / width_;
    auto& c = const_cast<warp_counters&>(warp_.counters());
    c.memory_ops += structs * ((words_per_struct + width_ - 1) / width_);
    c.shuffles += warps * words_per_struct;
  }

  S* data_;
  unsigned width_;
  transpose_math<fast_divmod> math_;
  warp<Word> warp_;
};

}  // namespace inplace::simd
