#pragma once
// Compile-time instantiation of the Section 6.2 register transpose, in
// the style of the authors' Trove library: for a tile whose extents
// (M registers per lane, W lanes) are template parameters, every index
// of every permutation is a constexpr table, so an optimizer sees only
// constant shuffles, constant-count select chains and free renames —
// "the task of computing indices can be simplified through careful
// strength reduction and static precomputation" (Section 6.2.4).
//
// The tile is held as std::array<std::array<T, W>, M> (row r = register
// r across lanes).  c2r/r2c produce exactly the same permutations as
// the runtime warp model; tests assert equality.

#include <array>
#include <cstdint>
#include <numeric>

namespace inplace::simd {

/// Compile-time constants and index tables for an M x W register tile.
template <unsigned M, unsigned W>
struct static_tile_math {
  static_assert(M >= 1 && W >= 1);
  static constexpr std::uint64_t c = std::gcd(M, W);
  static constexpr std::uint64_t a = M / c;
  static constexpr std::uint64_t b = W / c;

  /// Modular multiplicative inverse by brute force — runs at compile
  /// time on tiny operands.
  static constexpr std::uint64_t mmi_ct(std::uint64_t x, std::uint64_t y) {
    if (y == 1) {
      return 0;
    }
    for (std::uint64_t k = 1; k < y; ++k) {
      if (x % y * k % y == 1) {
        return k;
      }
    }
    return 0;
  }
  static constexpr std::uint64_t a_inv = mmi_ct(a, b);

  /// Eq. 23 per lane.
  static constexpr std::array<std::uint8_t, W> prerotate = [] {
    std::array<std::uint8_t, W> t{};
    for (unsigned j = 0; j < W; ++j) {
      t[j] = static_cast<std::uint8_t>(j / b);
    }
    return t;
  }();

  /// Eq. 31 per (register, lane): source lane of the row shuffle.
  static constexpr std::array<std::array<std::uint8_t, W>, M> shuffle_src =
      [] {
        std::array<std::array<std::uint8_t, W>, M> t{};
        for (unsigned i = 0; i < M; ++i) {
          for (unsigned j = 0; j < W; ++j) {
            const std::uint64_t base = j + std::uint64_t{i} * (W - 1);
            const std::uint64_t f =
                (i + c <= M + j % c) ? base : base + M;
            t[i][j] = static_cast<std::uint8_t>(
                (a_inv * (f / c % b)) % b + f % c * b);
          }
        }
        return t;
      }();

  /// Eq. 32 rotation amount per lane.
  static constexpr std::array<std::uint8_t, W> p_rot = [] {
    std::array<std::uint8_t, W> t{};
    for (unsigned j = 0; j < W; ++j) {
      t[j] = static_cast<std::uint8_t>(j % M);
    }
    return t;
  }();

  /// Eq. 33 register rename table.
  static constexpr std::array<std::uint8_t, M> q_perm = [] {
    std::array<std::uint8_t, M> t{};
    for (unsigned i = 0; i < M; ++i) {
      t[i] = static_cast<std::uint8_t>(
          (std::uint64_t{i} * W - i / a) % M);
    }
    return t;
  }();

  // Inverse tables for R2C.
  static constexpr std::uint64_t b_inv = mmi_ct(b, a);
  static constexpr std::array<std::array<std::uint8_t, W>, M>
      shuffle_src_inv = [] {
        // d'_i(j) directly (Eq. 24) — the R2C row shuffle gathers with it.
        std::array<std::array<std::uint8_t, W>, M> t{};
        for (unsigned i = 0; i < M; ++i) {
          for (unsigned j = 0; j < W; ++j) {
            t[i][j] = static_cast<std::uint8_t>(
                ((i + j / b) % M + std::uint64_t{j} * M) % W);
          }
        }
        return t;
      }();
  static constexpr std::array<std::uint8_t, M> q_inv_perm = [] {
    std::array<std::uint8_t, M> t{};
    for (unsigned i = 0; i < M; ++i) {
      t[i] = static_cast<std::uint8_t>(
          ((c - 1 + std::uint64_t{i}) / c * b_inv) % a +
          (c - 1) * std::uint64_t{i} % c * a);
    }
    return t;
  }();
};

/// An M x W tile of T held in "registers".
template <typename T, unsigned M, unsigned W>
using static_tile = std::array<std::array<T, W>, M>;

namespace detail_static {

/// Per-lane rotation by table[lane]: reg'[r] = reg[(r + amt) mod M].
/// On SIMD hardware this is the ⌈log2 M⌉-step select chain of Section
/// 6.2.2 (modelled and counted by warp.hpp); on a CPU a direct gather is
/// the faster instantiation of the same permutation.
template <typename T, unsigned M, unsigned W, typename Table>
constexpr void rotate_lanes(static_tile<T, M, W>& tile, const Table& amount,
                            bool invert) {
  for (unsigned t = 0; t < W; ++t) {
    unsigned amt = amount[t] % M;
    if (invert && amt != 0) {
      amt = M - amt;
    }
    if (amt == 0) {
      continue;
    }
    T lane[M];
    for (unsigned r = 0; r < M; ++r) {
      lane[r] = tile[(r + amt) % M][t];
    }
    for (unsigned r = 0; r < M; ++r) {
      tile[r][t] = lane[r];
    }
  }
}

}  // namespace detail_static

/// Compile-time-indexed C2R transpose of the register tile: afterwards
/// the tile holds the row-major linearization of the W x M transpose.
template <typename T, unsigned M, unsigned W>
constexpr void static_c2r(static_tile<T, M, W>& tile) {
  using math = static_tile_math<M, W>;
  if constexpr (math::c > 1) {
    detail_static::rotate_lanes<T, M, W>(tile, math::prerotate, false);
  }
  for (unsigned r = 0; r < M; ++r) {
    std::array<T, W> row{};
    for (unsigned j = 0; j < W; ++j) {
      row[j] = tile[r][math::shuffle_src[r][j]];
    }
    tile[r] = row;
  }
  detail_static::rotate_lanes<T, M, W>(tile, math::p_rot, false);
  {
    static_tile<T, M, W> renamed{};
    for (unsigned r = 0; r < M; ++r) {
      renamed[r] = tile[math::q_perm[r]];
    }
    tile = renamed;
  }
}

/// Inverse of static_c2r.
template <typename T, unsigned M, unsigned W>
constexpr void static_r2c(static_tile<T, M, W>& tile) {
  using math = static_tile_math<M, W>;
  {
    static_tile<T, M, W> renamed{};
    for (unsigned r = 0; r < M; ++r) {
      renamed[r] = tile[math::q_inv_perm[r]];
    }
    tile = renamed;
  }
  detail_static::rotate_lanes<T, M, W>(tile, math::p_rot, true);
  for (unsigned r = 0; r < M; ++r) {
    std::array<T, W> row{};
    for (unsigned j = 0; j < W; ++j) {
      row[j] = tile[r][math::shuffle_src_inv[r][j]];
    }
    tile[r] = row;
  }
  if constexpr (math::c > 1) {
    detail_static::rotate_lanes<T, M, W>(tile, math::prerotate, true);
  }
}

}  // namespace inplace::simd
