#pragma once
// A behavioural model of a SIMD processor executing one warp in lockstep
// (Section 6).  A warp of `width` lanes holds an m x width tile in its
// register file: register r of lane t is element (r, t).  The model
// provides exactly the three primitives the paper's in-register transpose
// needs —
//   * row shuffle        (Section 6.2.1, the hardware `shfl` instruction),
//   * dynamic per-lane register rotation as a barrel rotator built from
//     conditional selects (Section 6.2.2), and
//   * static row permutation, free at the register-renaming level
//     (Section 6.2.3)
// — and counts the instructions each primitive costs, so the paper's
// "⌈log2 m⌉ selects per element" claim is checkable.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace inplace::simd {

/// Instruction counts for one warp, in warp-instructions (one issue for
/// all lanes together, as on real SIMD hardware).
struct warp_counters {
  std::uint64_t shuffles = 0;       ///< cross-lane shfl instructions
  std::uint64_t selects = 0;        ///< conditional-move instructions
  std::uint64_t memory_ops = 0;     ///< warp-wide loads/stores issued
  std::uint64_t renames = 0;        ///< static permutations (zero-cost)
};

/// One warp's register file and lockstep primitives.
template <typename T>
class warp {
 public:
  warp(unsigned width, unsigned regs_per_lane)
      : width_(width),
        regs_(regs_per_lane),
        file_(static_cast<std::size_t>(width) * regs_per_lane) {
    if (width == 0 || regs_per_lane == 0) {
      throw std::invalid_argument("warp: width and registers must be > 0");
    }
  }

  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] unsigned regs_per_lane() const { return regs_; }
  [[nodiscard]] const warp_counters& counters() const { return counters_; }

  /// Register r of lane t.
  [[nodiscard]] T& reg(unsigned r, unsigned t) {
    return file_[static_cast<std::size_t>(r) * width_ + t];
  }
  [[nodiscard]] const T& reg(unsigned r, unsigned t) const {
    return file_[static_cast<std::size_t>(r) * width_ + t];
  }

  /// Row shuffle (Section 6.2.1): lane t's register r receives lane
  /// src(t)'s register r.  One shfl warp-instruction.
  template <typename SrcLaneFn>
  void shfl(unsigned r, SrcLaneFn src) {
    scratch_.resize(width_);
    for (unsigned t = 0; t < width_; ++t) {
      const auto s = static_cast<unsigned>(src(t));
      if (s >= width_) {
        throw std::out_of_range("warp::shfl: source lane out of range");
      }
      scratch_[t] = reg(r, s);
    }
    for (unsigned t = 0; t < width_; ++t) {
      reg(r, t) = scratch_[t];
    }
    ++counters_.shuffles;
  }

  /// Dynamic column rotation (Section 6.2.2): lane t rotates its own
  /// register vector by amount(t) — reg'[r] = reg[(r + amount) mod m] —
  /// implemented branch-free as a barrel rotator: ⌈log2 m⌉ static steps,
  /// each conditionally rotating by 2^k with per-register selects, so
  /// divergent rotation amounts cost no divergence.
  template <typename AmountFn>
  void rotate_registers_dynamic(AmountFn amount) {
    const unsigned m = regs_;
    lane_scratch_.resize(m);
    for (unsigned t = 0; t < width_; ++t) {
      const auto amt = static_cast<unsigned>(amount(t)) % m;
      for (unsigned step = 1; step < m; step <<= 1) {
        const bool take = (amt & step) != 0;
        // Static register indexing: every lane evaluates both operands of
        // the select, exactly as conditional moves would.
        for (unsigned r = 0; r < m; ++r) {
          lane_scratch_[r] = take ? reg((r + step) % m, t) : reg(r, t);
        }
        for (unsigned r = 0; r < m; ++r) {
          reg(r, t) = lane_scratch_[r];
        }
      }
    }
    // Cost model: per ⌈log2 m⌉ steps, one select per register (warp-wide).
    for (unsigned step = 1; step < m; step <<= 1) {
      counters_.selects += m;
    }
  }

  /// Static row permutation (Section 6.2.3): every lane applies the same
  /// compile-time-known gather reg'[r] = reg[perm(r)].  On real hardware
  /// the compiler renames registers; the model charges zero instructions.
  template <typename PermFn>
  void permute_registers_static(PermFn perm) {
    const unsigned m = regs_;
    scratch_.resize(static_cast<std::size_t>(m) * width_);
    for (unsigned r = 0; r < m; ++r) {
      const auto s = static_cast<unsigned>(perm(r));
      if (s >= m) {
        throw std::out_of_range("warp::permute: register out of range");
      }
      for (unsigned t = 0; t < width_; ++t) {
        scratch_[static_cast<std::size_t>(r) * width_ + t] = reg(s, t);
      }
    }
    file_.assign(scratch_.begin(),
                 scratch_.begin() +
                     static_cast<std::size_t>(m) * width_);
    ++counters_.renames;
  }

  /// Coalesced load: register r of lane t <- mem[r*width + t], i.e. each
  /// warp memory instruction reads `width` consecutive elements.
  void load_coalesced(const T* mem) {
    for (unsigned r = 0; r < regs_; ++r) {
      for (unsigned t = 0; t < width_; ++t) {
        reg(r, t) = mem[static_cast<std::size_t>(r) * width_ + t];
      }
      ++counters_.memory_ops;
    }
  }

  /// Coalesced store: mem[r*width + t] <- register r of lane t.
  void store_coalesced(T* mem) const {
    for (unsigned r = 0; r < regs_; ++r) {
      for (unsigned t = 0; t < width_; ++t) {
        mem[static_cast<std::size_t>(r) * width_ + t] = reg(r, t);
      }
      ++counters_.memory_ops;
    }
  }

  /// Direct (compiler-generated) strided load: lane t reads its own
  /// structure's element r at mem[t*regs + r] — the access pattern the
  /// paper's technique replaces.
  void load_direct(const T* mem) {
    for (unsigned r = 0; r < regs_; ++r) {
      for (unsigned t = 0; t < width_; ++t) {
        reg(r, t) = mem[static_cast<std::size_t>(t) * regs_ + r];
      }
      ++counters_.memory_ops;
    }
  }

  void store_direct(T* mem) const {
    for (unsigned r = 0; r < regs_; ++r) {
      for (unsigned t = 0; t < width_; ++t) {
        mem[static_cast<std::size_t>(t) * regs_ + r] = reg(r, t);
      }
      ++counters_.memory_ops;
    }
  }

 private:
  unsigned width_;
  unsigned regs_;
  std::vector<T> file_;
  std::vector<T> scratch_;
  std::vector<T> lane_scratch_;
  mutable warp_counters counters_;
};

}  // namespace inplace::simd
