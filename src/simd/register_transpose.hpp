#pragma once
// Section 6.2: the in-register instantiation of the decomposition.  A warp
// holding an m x width tile transposes it with
//   * shfl row shuffles          (row operations),
//   * dynamic barrel rotations   (per-lane column rotations), and
//   * static register renames    (the uniform row permutation q),
// with no on-chip memory beyond the register file — the property that
// makes coalesced_ptr-style AoS access possible (Figure 10).

#include "core/equations.hpp"
#include "simd/warp.hpp"

namespace inplace::simd {

/// In-register C2R transposition of the warp's m x width tile, where m is
/// the register count per lane.  Afterwards the register file holds the
/// row-major linearization of the transposed tile.
template <typename T, typename Math>
void c2r_registers(warp<T>& w, const Math& mm) {
  const unsigned m = w.regs_per_lane();
  if (mm.needs_prerotate()) {
    w.rotate_registers_dynamic(
        [&](unsigned lane) { return mm.prerotate_offset(lane); });
  }
  for (unsigned r = 0; r < m; ++r) {
    w.shfl(r, [&](unsigned lane) { return mm.d_prime_inv(r, lane); });
  }
  w.rotate_registers_dynamic(
      [&](unsigned lane) { return mm.p_offset(lane); });
  w.permute_registers_static([&](unsigned r) { return mm.q(r); });
}

/// In-register R2C transposition — the inverse of c2r_registers.
template <typename T, typename Math>
void r2c_registers(warp<T>& w, const Math& mm) {
  const unsigned m = w.regs_per_lane();
  w.permute_registers_static([&](unsigned r) { return mm.q_inv(r); });
  w.rotate_registers_dynamic(
      [&](unsigned lane) { return mm.p_inv_offset(lane); });
  for (unsigned r = 0; r < m; ++r) {
    w.shfl(r, [&](unsigned lane) { return mm.d_prime(r, lane); });
  }
  if (mm.needs_prerotate()) {
    w.rotate_registers_dynamic(
        [&](unsigned lane) { return mm.prerotate_inv_offset(lane); });
  }
}

/// Builds the index math for a warp tile: m = registers per lane (the
/// structure size), n = warp width.
template <typename Math = transpose_math<fast_divmod>>
[[nodiscard]] Math warp_tile_math(unsigned regs_per_lane, unsigned width) {
  return Math(regs_per_lane, width);
}

/// Cooperative AoS load (Figure 10's "load and R2C transpose"): the warp
/// reads `width` consecutive structures of `regs` elements with fully
/// coalesced accesses, then transposes in registers so lane t holds
/// structure t in its registers.
template <typename T, typename Math>
void warp_load_structs(warp<T>& w, const Math& mm, const T* aos) {
  w.load_coalesced(aos);
  r2c_registers(w, mm);
}

/// Cooperative AoS store (Figure 10's "C2R transpose and store"): inverse
/// of warp_load_structs.  Lane t's registers (structure t) are transposed
/// back and written with coalesced accesses.
template <typename T, typename Math>
void warp_store_structs(warp<T>& w, const Math& mm, T* aos) {
  c2r_registers(w, mm);
  w.store_coalesced(aos);
}

}  // namespace inplace::simd
