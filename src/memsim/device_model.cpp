#include "memsim/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

// Model assumptions (calibrated against the paper's published medians,
// see EXPERIMENTS.md):
//   * streaming passes move data at the device's achievable copy
//     bandwidth; sub-row-granular passes pay the block-vs-segment tax;
//     element-scattered passes pay elem/scattered_segment;
//   * the paper's row shuffle gathers elements from global memory at the
//     32-byte uncached granularity and writes coalesced — the reason the
//     paper gives for doubles transposing faster than floats;
//   * rows beyond the register-file capacity need a global temporary
//     round trip (Section 4.5 fits rows up to ~235 KB on chip);
//   * Sung-style PTTWAC moves elements individually inside tiles and
//     maintains per-element completion flags — both element-scattered;
//   * a uniform kernel-efficiency factor (default 0.7) accounts for
//     launch latency, partial occupancy and DRAM page effects that a
//     traffic model cannot see.

namespace inplace::memsim {

namespace {

constexpr double kKernelEfficiency = 0.7;

double block_efficiency(double block, double segment) {
  if (block <= 0) {
    return 1.0;
  }
  const double transactions = std::ceil(block / segment);
  return std::min(1.0, block / (transactions * segment));
}

void time_pass(pass_model& p, double elements, const device_params& dev) {
  const double transported =
      p.read_bytes / p.read_efficiency + p.write_bytes / p.write_efficiency;
  const double mem_time = transported / (dev.achievable_bandwidth_gbs * 1e9);
  const double ops = elements * p.index_ops_per_element;
  const double compute_time =
      ops / (dev.int_ops_per_cycle_per_sm * dev.sm_count * dev.clock_ghz *
             1e9);
  p.memory_bound = mem_time >= compute_time;
  p.seconds = std::max(mem_time, compute_time) / kKernelEfficiency;
}

transpose_prediction finish(std::vector<pass_model> passes,
                            std::uint64_t m, std::uint64_t n,
                            std::uint64_t elem_size,
                            const device_params& dev) {
  transpose_prediction out;
  const double elements = static_cast<double>(m) * static_cast<double>(n);
  for (auto& p : passes) {
    time_pass(p, elements, dev);
    out.seconds += p.seconds;
  }
  out.passes = std::move(passes);
  const double bytes = 2.0 * elements * static_cast<double>(elem_size);
  out.throughput_gbs = out.seconds > 0 ? bytes / out.seconds * 1e-9 : 0.0;
  return out;
}

/// The paper's GPU engine: pre-rotation (coarse + fine), gather-based row
/// shuffle, column rotation (coarse + fine), row permutation.
transpose_prediction predict_decomposition(std::uint64_t m, std::uint64_t n,
                                           std::uint64_t elem_size,
                                           const device_params& dev) {
  const double bytes = static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(elem_size);
  const std::uint64_t c = std::gcd(m, n);
  const std::uint64_t b = c ? n / c : 1;
  const std::uint64_t width =
      std::max<std::uint64_t>(1, dev.streaming_segment_bytes / elem_size);
  const double scat_eff = static_cast<double>(elem_size) /
                          static_cast<double>(dev.scattered_segment_bytes);
  const double subrow_eff = 0.9;  // aligned segment-wide sub-row moves
  std::vector<pass_model> passes;

  if (c > 1 && m > 1) {
    passes.push_back({"prerotate-coarse", bytes, bytes, subrow_eff,
                      subrow_eff, 1.0, 0.0, true});
    if (b < width) {
      // Residual rotations present (Section 4.6 notes this pass is often
      // skippable when b is large).
      passes.push_back({"prerotate-fine", bytes, bytes, 1.0, 1.0, 1.5, 0.0,
                        true});
    }
  }

  // Row shuffle.  Three regimes by row length: fully on chip in shared
  // memory (coalesced reads and writes — Figure 4's fast band at small
  // n); register-resident rows whose gathers hit global memory at the
  // scattered granularity (the paper's explanation for doubles beating
  // floats); and rows too long for the register file, which additionally
  // round-trip a global temporary.
  const double row_bytes =
      static_cast<double>(n) * static_cast<double>(elem_size);
  if (row_bytes <= static_cast<double>(dev.smem_row_bytes)) {
    passes.push_back({"row-shuffle (on-chip)", bytes, bytes, 1.0, 1.0, 4.0,
                      0.0, true});
  } else {
    passes.push_back({"row-shuffle gather", bytes, bytes, scat_eff, 1.0,
                      4.0, 0.0, true});
    if (row_bytes > static_cast<double>(dev.onchip_bytes_per_sm)) {
      passes.push_back({"row-shuffle spill", bytes, bytes, 1.0, 1.0, 0.5,
                        0.0, true});
    }
  }

  if (m > 1) {
    passes.push_back({"p-rotate-coarse", bytes, bytes, subrow_eff,
                      subrow_eff, 1.0, 0.0, true});
    passes.push_back({"p-rotate-fine", bytes, bytes, 1.0, 1.0, 1.5, 0.0,
                      true});
    passes.push_back({"q-permute", bytes, bytes, subrow_eff, subrow_eff,
                      1.0 + 6.0 / static_cast<double>(width), 0.0, true});
  }
  return finish(std::move(passes), m, n, elem_size, dev);
}

}  // namespace

transpose_prediction predict_c2r(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t elem_size,
                                 const device_params& dev) {
  return predict_decomposition(m, n, elem_size, dev);
}

transpose_prediction predict_r2c(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t elem_size,
                                 const device_params& dev) {
  // Mirror pass multiset; the additive traffic model is direction
  // symmetric on the same (m, n) view.
  return predict_decomposition(m, n, elem_size, dev);
}

transpose_prediction predict_heuristic(std::uint64_t m, std::uint64_t n,
                                       std::uint64_t elem_size,
                                       const device_params& dev) {
  // Section 5.2: C2R on (m, n) when m > n, else R2C on the swapped view.
  return m > n ? predict_c2r(m, n, elem_size, dev)
               : predict_r2c(n, m, elem_size, dev);
}

transpose_prediction predict_skinny(std::uint64_t count,
                                    std::uint64_t fields,
                                    std::uint64_t elem_size,
                                    const device_params& dev) {
  const double bytes = static_cast<double>(count) *
                       static_cast<double>(fields) *
                       static_cast<double>(elem_size);
  const double row_bytes =
      static_cast<double>(fields) * static_cast<double>(elem_size);
  std::vector<pass_model> passes;
  passes.push_back({"fused rotate+shuffle", bytes, bytes, 1.0, 1.0, 3.0,
                    0.0, true});
  passes.push_back({"fine rotate", bytes, bytes, 1.0, 1.0, 1.0, 0.0, true});
  const double eff = block_efficiency(
      row_bytes, static_cast<double>(dev.streaming_segment_bytes));
  passes.push_back({"row permute", bytes, bytes, eff, eff, 1.0, 0.0, true});
  return finish(std::move(passes), count, fields, elem_size, dev);
}

transpose_prediction predict_tiled(std::uint64_t m, std::uint64_t n,
                                   std::uint64_t tr, std::uint64_t tc,
                                   std::uint64_t elem_size,
                                   const device_params& dev) {
  const double bytes = static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(elem_size);
  const double elements = bytes / static_cast<double>(elem_size);
  const double scat_eff = static_cast<double>(elem_size) /
                          static_cast<double>(dev.scattered_segment_bytes);
  const double flag_scat_eff =
      4.0 / static_cast<double>(dev.scattered_segment_bytes);
  std::vector<pass_model> passes;
  const bool degenerate = tr <= 1 || tc <= 1;
  if (degenerate) {
    passes.push_back({"element cycle follow", bytes, bytes, scat_eff,
                      scat_eff, 4.0, 0.0, true});
  } else {
    const double chunk1 =
        static_cast<double>(tc) * static_cast<double>(elem_size);
    const double chunk3 =
        static_cast<double>(tr) * static_cast<double>(elem_size);
    const double e1 = block_efficiency(
        chunk1, static_cast<double>(dev.streaming_segment_bytes));
    const double e3 = block_efficiency(
        chunk3, static_cast<double>(dev.streaming_segment_bytes));
    passes.push_back({"band tiling", bytes, bytes, e1, e1, 2.0, 0.0, true});
    // PTTWAC's in-tile transposition moves elements individually, but
    // within a tile the scattered accesses enjoy tile-local reuse.
    const double intile_eff = std::min(1.0, 4.0 * scat_eff);
    passes.push_back({"in-tile element moves", bytes, bytes, intile_eff,
                      scat_eff, 3.0, 0.0, true});
    passes.push_back({"band untiling", bytes, bytes, e3, e3, 2.0, 0.0,
                      true});
  }
  // Per-element completion flags (one word per element, atomically
  // updated) — the algorithm's O(mn)-bit auxiliary state.  With healthy
  // tiles the flag words of a tile are contiguous and processed
  // together; in the degenerate limit every flag access is scattered.
  const double flag_eff = degenerate ? flag_scat_eff : 1.0;
  passes.push_back({"completion flags", elements * 4.0, elements * 4.0,
                    flag_eff, flag_eff, 2.0, 0.0, true});
  return finish(std::move(passes), m, n, elem_size, dev);
}

}  // namespace inplace::memsim
