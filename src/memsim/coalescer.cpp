#include "memsim/coalescer.hpp"

#include <algorithm>
#include <vector>

namespace inplace::memsim {

double traffic::efficiency() const {
  const std::uint64_t transported = transported_bytes();
  if (transported == 0) {
    return 0.0;
  }
  const double e =
      static_cast<double>(useful_bytes) / static_cast<double>(transported);
  return e > 1.0 ? 1.0 : e;
}

traffic& traffic::operator+=(const traffic& other) {
  useful_bytes += other.useful_bytes;
  transactions += other.transactions;
  segment_bytes = other.segment_bytes;
  return *this;
}

traffic coalescer::instruction(std::span<const std::uint64_t> addresses,
                               std::uint64_t bytes_per_lane) const {
  traffic t;
  t.segment_bytes = params_.segment_bytes;
  if (addresses.empty() || bytes_per_lane == 0) {
    return t;
  }
  t.useful_bytes = addresses.size() * bytes_per_lane;

  // Collect the segment index range each lane touches, then count the
  // distinct segments across the warp.
  std::vector<std::uint64_t> segments;
  segments.reserve(addresses.size() * 2);
  const std::uint64_t g = params_.segment_bytes;
  for (const std::uint64_t addr : addresses) {
    const std::uint64_t first = addr / g;
    const std::uint64_t last = (addr + bytes_per_lane - 1) / g;
    for (std::uint64_t s = first; s <= last; ++s) {
      segments.push_back(s);
    }
  }
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()),
                 segments.end());
  t.transactions = segments.size();
  return t;
}

}  // namespace inplace::memsim
