#pragma once
// Address-stream generators for the six bandwidth curves of Figures 8-9:
// {unit-stride, random} x {direct, vector, c2r} Array-of-Structures
// access.  Each generator simulates the warp memory instructions the
// corresponding code would issue and feeds them to the coalescer.

#include <cstdint>

#include "memsim/coalescer.hpp"
#include "util/rng.hpp"

namespace inplace::memsim {

/// Workload description for one simulated access sweep.
struct pattern_params {
  std::uint64_t struct_bytes = 16;   ///< sizeof one structure
  std::uint64_t elem_bytes = 4;      ///< scalar word moved per lane per op
  std::uint64_t vector_bytes = 16;   ///< native vector ld/st width (128-bit)
  std::uint64_t num_structs = 1 << 14;
  memory_params mem{};
};

/// Traffic for the simulated pattern (implemented in bandwidth_model.cpp).
traffic unit_stride_direct(const pattern_params& p);
traffic unit_stride_vector(const pattern_params& p);
traffic unit_stride_c2r(const pattern_params& p);
traffic random_direct(const pattern_params& p, util::xoshiro256& rng);
traffic random_vector(const pattern_params& p, util::xoshiro256& rng);
traffic random_c2r(const pattern_params& p, util::xoshiro256& rng);

}  // namespace inplace::memsim
