#pragma once
// Analytic GPU execution model: predicts end-to-end in-place transpose
// throughput on a Kepler-class device by composing per-pass traffic and
// arithmetic models.  This is the simulation substrate standing in for
// the paper's Tesla K20c in Figures 4-6 / Table 2 (DESIGN.md §2): each
// engine pass is classified by its memory-access pattern (streaming,
// sub-row granular, or element-scattered), its transported bytes follow
// the same coalescing arithmetic as memsim/coalescer.hpp in closed form,
// and pass time is the max of the memory time and the index-arithmetic
// time (memory-bound passes hide their arithmetic, compute-bound passes
// do not — which is exactly why the paper needs Section 4.4's strength
// reduction).

#include <cstdint>
#include <string>
#include <vector>

namespace inplace::memsim {

/// Device parameters; defaults approximate the Tesla K20c.
struct device_params {
  double achievable_bandwidth_gbs = 180.0;  ///< measured copy bandwidth
  std::uint64_t streaming_segment_bytes = 128;  ///< coalesced transaction
  std::uint64_t scattered_segment_bytes = 32;   ///< uncached gather granule
  double clock_ghz = 0.705;
  unsigned sm_count = 13;
  /// Index-arithmetic throughput: warp-instructions per cycle per SM
  /// times lanes — effective scalar integer ops per cycle per SM.
  double int_ops_per_cycle_per_sm = 96.0;
  /// Shared-memory capacity for fully on-chip row shuffles: rows at most
  /// this long are gathered entirely on chip (the fast band at small n in
  /// Figure 4).
  std::uint64_t smem_row_bytes = 16 * 1024;
  /// Register-file capacity for single-pass row shuffles (Section 4.5
  /// reports rows up to 29440 64-bit elements ≈ 235 KB); rows beyond it
  /// pay a global-temporary round trip.
  std::uint64_t onchip_bytes_per_sm = 235 * 1024;
};

/// One modelled pass over the array.
struct pass_model {
  std::string name;
  double read_bytes = 0;        ///< useful bytes read
  double write_bytes = 0;       ///< useful bytes written
  double read_efficiency = 1;   ///< useful/transported on the read side
  double write_efficiency = 1;  ///< useful/transported on the write side
  double index_ops_per_element = 0;
  double seconds = 0;           ///< filled in by the model
  bool memory_bound = true;
};

/// Prediction for one transposition.
struct transpose_prediction {
  std::vector<pass_model> passes;
  double seconds = 0;
  double throughput_gbs = 0;  ///< Eq. 37: 2*m*n*s / time
};

/// Predicts the decomposition's engine (pre-rotate + row shuffle + fused
/// column shuffle) for an m x n array of elem_size-byte elements.
transpose_prediction predict_c2r(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t elem_size,
                                 const device_params& dev = {});

/// Predicts the R2C form (mirror passes).
transpose_prediction predict_r2c(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t elem_size,
                                 const device_params& dev = {});

/// Predicts the Section 5.2 heuristic (C2R when m > n, else R2C with
/// swapped extents) for a row-major m x n transpose.
transpose_prediction predict_heuristic(std::uint64_t m, std::uint64_t n,
                                       std::uint64_t elem_size,
                                       const device_params& dev = {});

/// Predicts the skinny AoS->SoA specialization (Figure 7's subject):
/// column operations on chip, three streaming passes.
transpose_prediction predict_skinny(std::uint64_t count,
                                    std::uint64_t fields,
                                    std::uint64_t elem_size,
                                    const device_params& dev = {});

/// Predicts a Sung-style tiled transpose with tiles tr x tc (degenerate
/// tiles model the element-wise collapse of Figure 6's low tail).
transpose_prediction predict_tiled(std::uint64_t m, std::uint64_t n,
                                   std::uint64_t tr, std::uint64_t tc,
                                   std::uint64_t elem_size,
                                   const device_params& dev = {});

}  // namespace inplace::memsim
