#pragma once
// Bandwidth roofline on top of the coalescer: predicted GB/s is the
// device's peak achievable bandwidth scaled by bus efficiency (useful
// bytes / transported bytes).  This reproduces the *shape* of Figures 8-9
// analytically; the companion CPU kernels in simd/cpu_kernels.hpp provide
// measured counterparts.

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/access_patterns.hpp"
#include "memsim/coalescer.hpp"

namespace inplace::memsim {

/// One point of a bandwidth-vs-struct-size curve.
struct bandwidth_point {
  std::uint64_t struct_bytes = 0;
  double gbs = 0.0;
  double efficiency = 0.0;
};

enum class access_kind { direct, vector, c2r };
enum class locality { unit_stride, random };

[[nodiscard]] std::string to_string(access_kind k);
[[nodiscard]] std::string to_string(locality l);

/// Sweeps struct sizes (in bytes, multiples of elem_bytes) for one access
/// kind/locality pair and returns the predicted curve.
[[nodiscard]] std::vector<bandwidth_point> sweep_struct_sizes(
    access_kind kind, locality loc,
    const std::vector<std::uint64_t>& struct_sizes,
    const pattern_params& base);

}  // namespace inplace::memsim
