#pragma once
// Memory-system model for the Figure 8/9 reproduction: a Kepler-class
// coalescer that groups the per-lane byte addresses of one warp memory
// instruction into distinct fixed-size segment transactions.  Global
// loads/stores are modelled as uncached between instructions (as on the
// K20c, where global accesses bypass L1), so every instruction pays for
// every segment it touches — which is exactly why compiler-generated
// strided AoS access collapses and the in-register transpose reaches peak.

#include <cstdint>
#include <span>

namespace inplace::memsim {

/// Device memory parameters.  Defaults approximate the NVIDIA Tesla K20c
/// used in the paper: 32-lane warps, 128-byte transactions, and its
/// ~180 GB/s achievable copy bandwidth.
struct memory_params {
  std::uint64_t segment_bytes = 128;
  unsigned warp_width = 32;
  double peak_gbs = 180.0;
};

/// Accumulated traffic of a simulated access stream.
struct traffic {
  std::uint64_t useful_bytes = 0;   ///< bytes the program asked for
  std::uint64_t transactions = 0;   ///< segment transfers performed
  std::uint64_t segment_bytes = 128;

  [[nodiscard]] std::uint64_t transported_bytes() const {
    return transactions * segment_bytes;
  }
  /// Fraction of transported bytes that were useful (<= 1).
  [[nodiscard]] double efficiency() const;
  /// Predicted sustained bandwidth: peak scaled by bus efficiency.
  [[nodiscard]] double predicted_gbs(double peak_gbs) const {
    return peak_gbs * efficiency();
  }

  traffic& operator+=(const traffic& other);
};

/// Stateless coalescing logic.
class coalescer {
 public:
  explicit coalescer(const memory_params& params) : params_(params) {}

  [[nodiscard]] const memory_params& params() const { return params_; }

  /// Accounts one warp memory instruction: every active lane accesses
  /// `bytes_per_lane` bytes at its address; distinct touched segments
  /// each cost one transaction.
  [[nodiscard]] traffic instruction(std::span<const std::uint64_t> addresses,
                                    std::uint64_t bytes_per_lane) const;

 private:
  memory_params params_;
};

}  // namespace inplace::memsim
