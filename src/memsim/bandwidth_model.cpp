#include "memsim/bandwidth_model.hpp"

#include <stdexcept>
#include <vector>

namespace inplace::memsim {

namespace {

/// Lanes' byte addresses for one warp instruction, reused across calls.
using addr_list = std::vector<std::uint64_t>;

/// Simulates element-wise ("direct", compiler-generated) AoS access: for
/// each element e of the structure, one warp instruction in which lane t
/// touches struct_base(t) + e*elem_bytes — a stride of struct_bytes
/// between lanes.
traffic simulate_direct(const pattern_params& p,
                        const std::vector<std::uint64_t>& struct_bases) {
  const coalescer co(p.mem);
  const unsigned w = p.mem.warp_width;
  const std::uint64_t elems = p.struct_bytes / p.elem_bytes;
  traffic total;
  total.segment_bytes = p.mem.segment_bytes;
  addr_list addrs;
  for (std::uint64_t first = 0; first < struct_bases.size(); first += w) {
    const std::uint64_t lanes =
        std::min<std::uint64_t>(w, struct_bases.size() - first);
    for (std::uint64_t e = 0; e < elems; ++e) {
      addrs.clear();
      for (std::uint64_t t = 0; t < lanes; ++t) {
        addrs.push_back(struct_bases[first + t] + e * p.elem_bytes);
      }
      total += co.instruction(addrs, p.elem_bytes);
    }
  }
  return total;
}

/// Simulates native vector loads/stores: like direct, but each lane moves
/// vector_bytes per instruction (the K20c's 128-bit accesses), with a
/// scalar tail when struct_bytes is not a multiple.
traffic simulate_vector(const pattern_params& p,
                        const std::vector<std::uint64_t>& struct_bases) {
  const coalescer co(p.mem);
  const unsigned w = p.mem.warp_width;
  traffic total;
  total.segment_bytes = p.mem.segment_bytes;
  addr_list addrs;
  const std::uint64_t vec = p.vector_bytes;
  const std::uint64_t full = p.struct_bytes / vec * vec;
  for (std::uint64_t first = 0; first < struct_bases.size(); first += w) {
    const std::uint64_t lanes =
        std::min<std::uint64_t>(w, struct_bases.size() - first);
    for (std::uint64_t off = 0; off < full; off += vec) {
      addrs.clear();
      for (std::uint64_t t = 0; t < lanes; ++t) {
        addrs.push_back(struct_bases[first + t] + off);
      }
      total += co.instruction(addrs, vec);
    }
    for (std::uint64_t off = full; off < p.struct_bytes;
         off += p.elem_bytes) {
      addrs.clear();
      for (std::uint64_t t = 0; t < lanes; ++t) {
        addrs.push_back(struct_bases[first + t] + off);
      }
      total += co.instruction(addrs, p.elem_bytes);
    }
  }
  return total;
}

/// Simulates the paper's cooperative access: the warp covers the same
/// structures with consecutive-element instructions (lane t reads element
/// chunk*width + t of the warp's combined tile for unit stride, or of one
/// structure at a time for random indices), then transposes in registers
/// — register traffic is free as far as the memory system is concerned.
traffic simulate_c2r_unit(const pattern_params& p,
                          std::uint64_t num_structs) {
  const coalescer co(p.mem);
  const unsigned w = p.mem.warp_width;
  traffic total;
  total.segment_bytes = p.mem.segment_bytes;
  addr_list addrs;
  const std::uint64_t tile_bytes = p.struct_bytes * w;
  for (std::uint64_t first = 0; first < num_structs; first += w) {
    const std::uint64_t lanes = std::min<std::uint64_t>(w, num_structs - first);
    const std::uint64_t base = first * p.struct_bytes;
    const std::uint64_t bytes = lanes == w ? tile_bytes
                                           : lanes * p.struct_bytes;
    for (std::uint64_t off = 0; off < bytes; off += w * p.elem_bytes) {
      addrs.clear();
      for (std::uint64_t t = 0; t < w && off + t * p.elem_bytes < bytes;
           ++t) {
        addrs.push_back(base + off + t * p.elem_bytes);
      }
      total += co.instruction(addrs, p.elem_bytes);
    }
  }
  return total;
}

traffic simulate_c2r_random(const pattern_params& p,
                            const std::vector<std::uint64_t>& struct_bases) {
  const coalescer co(p.mem);
  const unsigned w = p.mem.warp_width;
  traffic total;
  total.segment_bytes = p.mem.segment_bytes;
  addr_list addrs;
  // Random indices defeat inter-structure coalescing, but the warp still
  // reads each structure with consecutive lanes (indices are exchanged
  // with shuffles, Section 6.2), touching each structure's segments once.
  for (const std::uint64_t base : struct_bases) {
    for (std::uint64_t off = 0; off < p.struct_bytes;
         off += w * p.elem_bytes) {
      addrs.clear();
      for (std::uint64_t t = 0;
           t < w && off + t * p.elem_bytes < p.struct_bytes; ++t) {
        addrs.push_back(base + off + t * p.elem_bytes);
      }
      total += co.instruction(addrs, p.elem_bytes);
    }
  }
  return total;
}

std::vector<std::uint64_t> unit_stride_bases(const pattern_params& p) {
  std::vector<std::uint64_t> bases(p.num_structs);
  for (std::uint64_t k = 0; k < p.num_structs; ++k) {
    bases[k] = k * p.struct_bytes;
  }
  return bases;
}

std::vector<std::uint64_t> random_bases(const pattern_params& p,
                                        util::xoshiro256& rng) {
  std::vector<std::uint64_t> bases(p.num_structs);
  for (auto& b : bases) {
    b = rng.uniform(0, p.num_structs) * p.struct_bytes;
  }
  return bases;
}

}  // namespace

traffic unit_stride_direct(const pattern_params& p) {
  return simulate_direct(p, unit_stride_bases(p));
}

traffic unit_stride_vector(const pattern_params& p) {
  return simulate_vector(p, unit_stride_bases(p));
}

traffic unit_stride_c2r(const pattern_params& p) {
  return simulate_c2r_unit(p, p.num_structs);
}

traffic random_direct(const pattern_params& p, util::xoshiro256& rng) {
  return simulate_direct(p, random_bases(p, rng));
}

traffic random_vector(const pattern_params& p, util::xoshiro256& rng) {
  return simulate_vector(p, random_bases(p, rng));
}

traffic random_c2r(const pattern_params& p, util::xoshiro256& rng) {
  return simulate_c2r_random(p, random_bases(p, rng));
}

std::string to_string(access_kind k) {
  switch (k) {
    case access_kind::direct:
      return "Direct";
    case access_kind::vector:
      return "Vector";
    case access_kind::c2r:
      return "C2R";
  }
  return "?";
}

std::string to_string(locality l) {
  return l == locality::unit_stride ? "unit-stride" : "random";
}

std::vector<bandwidth_point> sweep_struct_sizes(
    access_kind kind, locality loc,
    const std::vector<std::uint64_t>& struct_sizes,
    const pattern_params& base) {
  std::vector<bandwidth_point> curve;
  curve.reserve(struct_sizes.size());
  for (const std::uint64_t sb : struct_sizes) {
    if (sb % base.elem_bytes != 0) {
      throw std::invalid_argument(
          "sweep_struct_sizes: struct size must be a multiple of the "
          "element size");
    }
    pattern_params p = base;
    p.struct_bytes = sb;
    util::xoshiro256 rng(sb * 2654435761u + 12345);
    traffic t;
    if (loc == locality::unit_stride) {
      t = kind == access_kind::direct   ? unit_stride_direct(p)
          : kind == access_kind::vector ? unit_stride_vector(p)
                                        : unit_stride_c2r(p);
    } else {
      t = kind == access_kind::direct   ? random_direct(p, rng)
          : kind == access_kind::vector ? random_vector(p, rng)
                                        : random_c2r(p, rng);
    }
    curve.push_back({sb, t.predicted_gbs(p.mem.peak_gbs), t.efficiency()});
  }
  return curve;
}

}  // namespace inplace::memsim
