#pragma once
// The production engine: Algorithm 1 with the paper's Section 4
// optimizations applied —
//   * fully gather-based row shuffles (Section 4.2/4.3),
//   * the column shuffle decomposed into a rotation and a static row
//     permutation (Section 4.1),
//   * cache-aware two-phase rotations moving cache-line-sized sub-rows
//     (Section 4.6),
//   * cache-aware cycle-following row permutation (Section 4.7),
//   * OpenMP parallelism over independent rows / column groups — the
//     decomposition's "perfect load balancing" claim.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/equations.hpp"
#include "core/failpoint.hpp"
#include "core/permute.hpp"
#include "core/plan.hpp"
#include "core/recovery.hpp"
#include "core/rotate.hpp"
#include "core/telemetry.hpp"
#include "util/threads.hpp"

#if defined(INPLACE_HAVE_OPENMP)
#include <omp.h>
#endif

namespace inplace::detail {

/// Tag selecting workspace_pool's single-workspace constructor (the OOM
/// ladder's reduced rung: the plan is rewritten to threads = 1, so one
/// workspace covers the whole — serial — team).
struct serial_workspace_tag {};

/// Per-thread scratch pool sized for one plan.
template <typename T>
class workspace_pool {
 public:
  /// Sizes the pool for the current OpenMP pool (or threads_hint if
  /// larger).  A later thread_count_guard can still raise the pool past
  /// either — the engines call ensure() after installing their guard so
  /// the pool always covers the team about to launch.
  workspace_pool(std::uint64_t m, std::uint64_t n, std::uint64_t width,
                 int threads_hint = 0)
      : m_(m), n_(n), width_(width) {
    grow(std::max({util::hardware_threads(), threads_hint, 1}));
  }

  /// Minimum-footprint pool: exactly one workspace, for serial plans.
  workspace_pool(std::uint64_t m, std::uint64_t n, std::uint64_t width,
                 serial_workspace_tag)
      : m_(m), n_(n), width_(width) {
    grow(1);
  }

  /// Grows the pool to at least `count` workspaces.  Must run outside any
  /// parallel region that uses the pool (the engines call it between
  /// installing their thread_count_guard and launching the first loop).
  void ensure(int count) {
    if (count > 0 && static_cast<std::size_t>(count) > pool_.size()) {
      grow(count);
    }
  }

  /// This thread's workspace.  The pool must cover the active team: an
  /// undersized pool would silently alias one workspace across two
  /// threads — a data race on the scratch line that corrupts results —
  /// so checked builds fail loudly instead of wrapping around.
  workspace<T>& local() {
#if defined(INPLACE_HAVE_OPENMP)
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    INPLACE_CHECK(tid < pool_.size(),
                  "workspace_pool undersized for the active parallel "
                  "region (two threads would alias one workspace)");
    return pool_[tid % pool_.size()];  // modulo: release-mode bounds safety
#else
    return pool_.front();
#endif
  }

  workspace<T>& front() { return pool_.front(); }

  [[nodiscard]] std::size_t size() const { return pool_.size(); }

 private:
  void grow(int count) {
    // inplace-lint: allow-block(raw-alloc): per-thread workspace pool
    // growth is part of the audited acquisition funnel (ensure() runs
    // before the parallel region; each slot sizes via workspace::reserve)
    const std::size_t old = pool_.size();
    pool_.resize(static_cast<std::size_t>(count));
    for (std::size_t k = old; k < pool_.size(); ++k) {
      pool_[k].reserve(m_, n_, width_);
    }
    // inplace-lint: end-block
  }

  std::uint64_t m_;
  std::uint64_t n_;
  std::uint64_t width_;
  std::vector<workspace<T>> pool_;
};

/// Parallel cache-aware rotation of all columns by amount(j).  Each
/// group fences its own streamed stores (rotate_group_cache_aware), so
/// the parallel region ends with every non-temporal write published.
template <typename T, typename AmountFn>
void rotate_all_parallel(T* a, std::uint64_t m, std::uint64_t n,
                         std::uint64_t width, AmountFn amount,
                         workspace_pool<T>& pool,
                         const kernels::kernel_set* ks = nullptr,
                         bool stream = false) {
  if (m <= 1) {
    return;
  }
  const auto groups =
      static_cast<std::int64_t>((n + width - 1) / width);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::uint64_t j0 = static_cast<std::uint64_t>(g) * width;
    const std::uint64_t w = std::min(width, n - j0);
    rotate_group_cache_aware(a, m, n, j0, w, amount, pool.local(), ks,
                             stream);
  }
}

/// Parallel row shuffle: each row gathers through its own scratch line.
template <typename T, typename IndexFn>
void shuffle_rows_parallel(T* a, std::uint64_t m, std::uint64_t n,
                           IndexFn idx, workspace_pool<T>& pool) {
  const auto rows = static_cast<std::int64_t>(m);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
#endif
  for (std::int64_t ii = 0; ii < rows; ++ii) {
    const auto i = static_cast<std::uint64_t>(ii);
    row_gather_inplace(a + i * n, n, pool.local().line.data(),
                       [&](std::uint64_t j) { return idx(i, j); });
  }
}

/// Parallel row shuffle, scatter form.  The scratch line is cache
/// resident, so the scatter costs the same memory traffic as the gather
/// while the C2R index function d' (Eq. 24) is far cheaper to evaluate
/// than its modular inverse d'^-1 (Eq. 31).
template <typename T, typename IndexFn>
void shuffle_rows_scatter_parallel(T* a, std::uint64_t m, std::uint64_t n,
                                   IndexFn idx, workspace_pool<T>& pool) {
  const auto rows = static_cast<std::int64_t>(m);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
#endif
  for (std::int64_t ii = 0; ii < rows; ++ii) {
    const auto i = static_cast<std::uint64_t>(ii);
    row_scatter_inplace(a + i * n, n, pool.local().line.data(),
                        [&](std::uint64_t j) { return idx(i, j); });
  }
}

/// Parallel whole-array row permutation (gather dst[i] = src[perm(i)]):
/// cycles are discovered once, then every width-wide column group replays
/// them independently (Section 4.7).
template <typename T, typename PermFn>
void permute_rows_parallel(T* a, std::uint64_t m, std::uint64_t n,
                           std::uint64_t width, PermFn perm,
                           workspace_pool<T>& pool) {
  auto& ws0 = pool.front();
  find_cycles(m, perm, ws0.visited, ws0.cycle_starts);
  if (ws0.cycle_starts.empty()) {
    return;
  }
  const std::vector<std::uint64_t>& cycles = ws0.cycle_starts;
  const auto groups =
      static_cast<std::int64_t>((n + width - 1) / width);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::uint64_t j0 = static_cast<std::uint64_t>(g) * width;
    const std::uint64_t w = std::min(width, n - j0);
    permute_rows_in_group(a, n, j0, w, perm, cycles,
                          pool.local().subrow.data());
  }
}

/// Whether the kernel layer should run row i's d' shuffle, and the
/// segment geometry it needs.  Row i's index stream d'_i(j) is piecewise
/// affine: within each of the c segments of length b = n/c, advance()
/// adds only (m mod n), so the whole segment is one affine
/// gather/scatter kernel call; the +1 / wrap corrections happen between
/// segments (Eq. 31 strength reduction, vector form).  Short segments
/// (b below one vector's worth of lanes with headroom) stay on the
/// scalar stepper — per-segment dispatch overhead would dominate.
/// The kernels additionally require the scratch line to spill L2
/// (kernels::row_kernel_min_line_bytes): the scattered side of a row
/// shuffle is the line itself, and while it is cache-resident a hardware
/// gather/scatter has no miss latency to hide — measured ~25% slower
/// than the scalar stepper on an AVX-512 Xeon for a 40 KiB line, in
/// both the scatter (C2R) and gather (R2C) forms.
inline constexpr std::uint64_t row_pass_min_segment = 16;

/// The shared engagement predicate for both row-pass directions.
template <typename T, typename Math>
[[nodiscard]] inline bool row_pass_use_kernels(
    const Math& mm, const kernels::kernel_set* ks) {
  return kernels::has_gather_lanes<T> && ks != nullptr &&
         mm.b >= row_pass_min_segment &&
         mm.n * sizeof(T) >= kernels::row_kernel_min_line_bytes();
}

#if INPLACE_CHECKS_ENABLED
/// Checked-mode pre-pass for the kernel row shuffle: replays row i's
/// index stream with the scalar stepper and proves it is a bijection on
/// [0, n) — the same coverage proof the scalar path gets inline.
template <typename Math>
inline void check_row_stream_bijective(const Math& mm, std::uint64_t i) {
  shuffle_coverage cover(mm.n);
  d_prime_stepper step(mm, i);
  for (std::uint64_t j = 0; j < mm.n; ++j, step.advance()) {
    INPLACE_CHECK(step.value() < mm.n,
                  "row shuffle kernel index out of range (Eq. 31)");
    cover.mark(step.value(),
               "row shuffle kernel stream hit a slot twice (Eq. 24/31 is "
               "not a bijection)");
  }
  INPLACE_ENSURE(cover.complete(),
                 "row shuffle kernel stream skipped a slot (Eq. 24/31)");
}
#endif

/// Runs row i's d' shuffle through the kernel set, one affine segment at
/// a time.  Scatter form (C2R): tmp[d'_i(j)] = row[j].  Gather form
/// (R2C): tmp[j] = row[d'_i(j)].  The inter-segment index update mirrors
/// d_prime_stepper::advance()'s boundary branch exactly.
template <bool Scatter, typename T, typename Math>
inline void row_pass_kernel_row(T* row, T* tmp, const Math& mm,
                                std::uint64_t i,
                                const kernels::kernel_set& ks) {
  const std::uint64_t n = mm.n;
  const std::uint64_t b = mm.b;
  const std::uint64_t step = mm.m % n;
  const std::uint64_t b_step = b * step % n;
  const std::uint64_t wrap_fix = (n + 1 - step) % n;  // (1 - m) mod n
  std::uint64_t val = i % n;
  std::uint64_t u = i;
  for (std::uint64_t s = 0; s < mm.c; ++s) {
    if constexpr (Scatter) {
      kernels::scatter_affine(ks, tmp, row + s * b,
                              static_cast<std::size_t>(b), val, step, n);
    } else {
      kernels::gather_affine(ks, tmp + s * b, row,
                             static_cast<std::size_t>(b), val, step, n);
    }
    val += b_step;
    if (val >= n) {
      val -= n;
    }
    if (++u == mm.m) {
      u = 0;
      val += wrap_fix;
    } else {
      val += 1;
    }
    if (val >= n) {
      val -= n;
    }
  }
}

/// Parallel C2R row shuffle with the incremental d' evaluator: scatter
/// tmp[d'_i(j)] = row[j] with adds and conditional subtracts only.
/// With a kernel set, 4/8-byte elements dispatch each affine segment to
/// the tier's scatter kernel and copy back through the tier's (optionally
/// non-temporal) contiguous copy.
template <typename T, typename Math>
void c2r_row_pass(T* a, const Math& mm, workspace_pool<T>& pool,
                  const kernels::kernel_set* ks = nullptr,
                  bool stream = false) {
  const auto rows = static_cast<std::int64_t>(mm.m);
  const std::uint64_t n = mm.n;
  [[maybe_unused]] const bool use_kernels = row_pass_use_kernels<T>(mm, ks);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
#endif
  for (std::int64_t ii = 0; ii < rows; ++ii) {
    const auto i = static_cast<std::uint64_t>(ii);
    T* row = a + i * n;
    T* tmp = pool.local().line.data();
    if constexpr (kernels::has_gather_lanes<T>) {
      if (use_kernels) {
#if INPLACE_CHECKS_ENABLED
        check_row_stream_bijective(mm, i);
#endif
        row_pass_kernel_row</*Scatter=*/true>(row, tmp, mm, i, *ks);
        copy_back(row, tmp, n, ks, stream);
        continue;
      }
    }
    d_prime_stepper step(mm, i);
    for (std::uint64_t j = 0; j < n; ++j, step.advance()) {
      tmp[step.value()] = row[j];
    }
    copy_back(row, tmp, n, ks, stream);
  }
}

/// Parallel R2C row shuffle (gather form, Section 4.3) with the
/// incremental d' evaluator: tmp[j] = row[d'_i(j)].  Kernel dispatch as
/// in c2r_row_pass, using the tier's affine gather (vpgatherdd/qq).
template <typename T, typename Math>
void r2c_row_pass(T* a, const Math& mm, workspace_pool<T>& pool,
                  const kernels::kernel_set* ks = nullptr,
                  bool stream = false) {
  const auto rows = static_cast<std::int64_t>(mm.m);
  const std::uint64_t n = mm.n;
  [[maybe_unused]] const bool use_kernels = row_pass_use_kernels<T>(mm, ks);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 8)
#endif
  for (std::int64_t ii = 0; ii < rows; ++ii) {
    const auto i = static_cast<std::uint64_t>(ii);
    T* row = a + i * n;
    T* tmp = pool.local().line.data();
    if constexpr (kernels::has_gather_lanes<T>) {
      if (use_kernels) {
#if INPLACE_CHECKS_ENABLED
        check_row_stream_bijective(mm, i);
#endif
        row_pass_kernel_row</*Scatter=*/false>(row, tmp, mm, i, *ks);
        copy_back(row, tmp, n, ks, stream);
        continue;
      }
    }
    d_prime_stepper step(mm, i);
    for (std::uint64_t j = 0; j < n; ++j, step.advance()) {
      tmp[j] = row[step.value()];
    }
    copy_back(row, tmp, n, ks, stream);
  }
}

/// Fused column shuffle for C2R (Section 4.1-4.2 sharpened): instead of
/// [rotate p: coarse+fine] + [permute q], each width-wide group runs
///   1. a fine streaming rotation by (j - j0) mod m, then
///   2. cycle-following with the group-local permutation
///      P_g(i) = (q(i) + j0) mod m, moving whole sub-rows —
/// because s'_j = rot_{j-j0} then P_g as sequential gathers.  Two fewer
/// element touches per element than the split form.
/// An optional col_cycle_memo caches each group's cycle leaders across
/// executions of one plan: the first run discovers them (into the memo
/// slot instead of the per-thread scratch), every later run replays them
/// and skips find_cycles entirely.
template <typename T, typename Math>
void c2r_col_shuffle(T* a, const Math& mm, std::uint64_t width,
                     workspace_pool<T>& pool,
                     col_cycle_memo* memo = nullptr,
                     const kernels::kernel_set* ks = nullptr,
                     bool stream = false) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  const auto groups = static_cast<std::int64_t>((n + width - 1) / width);
  const bool replay = memo != nullptr && memo->ready;
  if (memo != nullptr && !replay) {
    // inplace-lint: allow-next(raw-alloc): one-time cycle-memo
    // population, bounded by the group count and reused on every replay
    memo->groups.assign(static_cast<std::size_t>(groups), {});
  }
  INPLACE_CHECK(!replay ||
                    memo->groups.size() == static_cast<std::size_t>(groups),
                "col_cycle_memo group count does not match the plan");
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::int64_t g = 0; g < groups; ++g) {
    workspace<T>& ws = pool.local();
    const std::uint64_t j0 = static_cast<std::uint64_t>(g) * width;
    const std::uint64_t w = std::min(width, n - j0);
    for (std::uint64_t jj = 0; jj < w; ++jj) {
      ws.offsets[jj] = jj % m;
    }
    fine_rotate_group(a, m, n, j0, w, ws.offsets.data(), ws.head.data(), ks,
                      ws.index.data(), stream);
    const std::uint64_t shift = j0 % m;
    const auto perm = [&](std::uint64_t i) {
      const std::uint64_t v = mm.q(i) + shift;
      return v >= m ? v - m : v;
    };
    if (memo != nullptr) {
      auto& starts = memo->groups[static_cast<std::size_t>(g)];
      if (!replay) {
        find_cycles(m, perm, ws.visited, starts);
      }
      permute_rows_in_group(a, n, j0, w, perm, starts, ws.subrow.data(), ks,
                            stream);
    } else {
      find_cycles(m, perm, ws.visited, ws.cycle_starts);
      permute_rows_in_group(a, n, j0, w, perm, ws.cycle_starts,
                            ws.subrow.data(), ks, stream);
    }
  }
  if (memo != nullptr) {
    memo->ready = true;
  }
}

/// Fused inverse column shuffle for R2C: per group, cycle-following with
/// W_g(x) = q^-1((x + delta_g) mod m), delta_g = (-j0 - (w-1)) mod m,
/// then a fine streaming rotation by (w-1-jj) mod m.
template <typename T, typename Math>
void r2c_col_shuffle(T* a, const Math& mm, std::uint64_t width,
                     workspace_pool<T>& pool,
                     col_cycle_memo* memo = nullptr,
                     const kernels::kernel_set* ks = nullptr,
                     bool stream = false) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  const auto groups = static_cast<std::int64_t>((n + width - 1) / width);
  const bool replay = memo != nullptr && memo->ready;
  if (memo != nullptr && !replay) {
    // inplace-lint: allow-next(raw-alloc): one-time cycle-memo
    // population, bounded by the group count and reused on every replay
    memo->groups.assign(static_cast<std::size_t>(groups), {});
  }
  INPLACE_CHECK(!replay ||
                    memo->groups.size() == static_cast<std::size_t>(groups),
                "col_cycle_memo group count does not match the plan");
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::int64_t g = 0; g < groups; ++g) {
    workspace<T>& ws = pool.local();
    const std::uint64_t j0 = static_cast<std::uint64_t>(g) * width;
    const std::uint64_t w = std::min(width, n - j0);
    const std::uint64_t delta = (m - (j0 + w - 1) % m) % m;
    const auto perm = [&](std::uint64_t x) {
      std::uint64_t v = x + delta;
      v %= m;
      return mm.q_inv(v);
    };
    if (memo != nullptr) {
      auto& starts = memo->groups[static_cast<std::size_t>(g)];
      if (!replay) {
        find_cycles(m, perm, ws.visited, starts);
      }
      permute_rows_in_group(a, n, j0, w, perm, starts, ws.subrow.data(), ks,
                            stream);
    } else {
      find_cycles(m, perm, ws.visited, ws.cycle_starts);
      permute_rows_in_group(a, n, j0, w, perm, ws.cycle_starts,
                            ws.subrow.data(), ks, stream);
    }
    for (std::uint64_t jj = 0; jj < w; ++jj) {
      ws.offsets[jj] = (w - 1 - jj) % m;
    }
    fine_rotate_group(a, m, n, j0, w, ws.offsets.data(), ws.head.data(), ks,
                      ws.index.data(), stream);
  }
  if (memo != nullptr) {
    memo->ready = true;
  }
}

/// Cache-aware, parallel C2R transposition using caller-owned scratch.
/// An optional col_cycle_memo (owned alongside the pool) memoizes the
/// column-shuffle cycle structure across executions of the same plan.
template <typename T, typename Math>
void c2r_blocked(T* a, const Math& mm, const transpose_plan& plan,
                 workspace_pool<T>& pool, col_cycle_memo* memo = nullptr,
                 stage_progress* prog = nullptr) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  const std::uint64_t width = plan.block_width;
  // One vtable lookup per execution; every pass below dispatches through
  // the plan's resolved tier, and streams (non-temporal stores) when the
  // planner decided the working set exceeds the cache threshold.
  const kernels::kernel_set& ks = kernels::set_for(plan.ktier);
  const bool stream = plan.streaming_stores;
  // The rotation/shuffle passes work one column group (width * m
  // elements) at a time, and stages within a group re-read each other's
  // writes; when the group fits in cache, non-temporal stores would evict
  // exactly the lines the next stage is about to load, turning L2 hits
  // into DRAM round-trips (measured 0.8-0.9x in bench/ablation_kernels).
  // Stream group-local stores only when the group itself spills.
  const bool stream_group =
      stream && kernels::streaming_profitable(
                    static_cast<std::size_t>(width * m) * sizeof(T),
                    plan.ktier);
  util::thread_count_guard guard(plan.threads);
  // The guard may have raised the OpenMP pool past what the workspace
  // pool was constructed for; size from the actual upcoming team.
  pool.ensure(util::hardware_threads());

  // Every pass reads and writes each element once: 2*m*n*elem bytes of
  // modelled traffic per stage span (the per-stage analogue of Eq. 37).
  if (mm.needs_prerotate()) {
    INPLACE_TELEMETRY_SPAN(span_rot, telemetry::stage::prerotate,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::prerotate);
    rotate_all_parallel(
        a, m, n, width,
        [&](std::uint64_t j) { return mm.prerotate_offset(j); }, pool, &ks,
        stream_group);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("blocked.c2r.after_prerotate");
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    // Row copy-backs never stream: the shuffle just read the row, so its
    // lines sit in cache in exclusive state and a temporal write-back is
    // free of RFO traffic — NT stores only add store-path overhead here
    // (measured ~15% slower on the row pass of a 320 MiB double matrix).
    begin_stage(prog, stage_id::row_shuffle);
    c2r_row_pass(a, mm, pool, &ks, /*stream=*/false);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("blocked.c2r.after_row_shuffle");
  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::col_shuffle);
    c2r_col_shuffle(a, mm, width, pool, memo, &ks, stream_group);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("blocked.c2r.after_col_shuffle");
}

/// Cache-aware, parallel C2R transposition.
template <typename T, typename Math>
void c2r_blocked(T* a, const Math& mm, const transpose_plan& plan) {
  workspace_pool<T> pool(mm.m, mm.n, plan.block_width, plan.threads);
  c2r_blocked(a, mm, plan, pool);
}

/// Cache-aware, parallel R2C transposition (inverse steps, Section 4.3)
/// using caller-owned scratch.
template <typename T, typename Math>
void r2c_blocked(T* a, const Math& mm, const transpose_plan& plan,
                 workspace_pool<T>& pool, col_cycle_memo* memo = nullptr,
                 stage_progress* prog = nullptr) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  const std::uint64_t width = plan.block_width;
  // See c2r_blocked: one vtable lookup, every pass dispatches through it,
  // and group-local stores stream only when a column group spills cache.
  const kernels::kernel_set& ks = kernels::set_for(plan.ktier);
  const bool stream = plan.streaming_stores;
  const bool stream_group =
      stream && kernels::streaming_profitable(
                    static_cast<std::size_t>(width * m) * sizeof(T),
                    plan.ktier);
  util::thread_count_guard guard(plan.threads);
  // See c2r_blocked: cover any pool growth the guard just performed.
  pool.ensure(util::hardware_threads());

  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::col_shuffle);
    r2c_col_shuffle(a, mm, width, pool, memo, &ks, stream_group);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("blocked.r2c.after_col_shuffle");
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    // Never streamed, same rationale as the C2R row pass.
    begin_stage(prog, stage_id::row_shuffle);
    r2c_row_pass(a, mm, pool, &ks, /*stream=*/false);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("blocked.r2c.after_row_shuffle");
  if (mm.needs_prerotate()) {
    INPLACE_TELEMETRY_SPAN(span_rot, telemetry::stage::prerotate,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::prerotate);
    rotate_all_parallel(
        a, m, n, width,
        [&](std::uint64_t j) { return mm.prerotate_inv_offset(j); }, pool,
        &ks, stream_group);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("blocked.r2c.after_prerotate");
}

/// Cache-aware, parallel R2C transposition.
template <typename T, typename Math>
void r2c_blocked(T* a, const Math& mm, const transpose_plan& plan) {
  workspace_pool<T> pool(mm.m, mm.n, plan.block_width, plan.threads);
  r2c_blocked(a, mm, plan, pool);
}

}  // namespace inplace::detail
