#pragma once
// Algorithm 1 of the paper, verbatim: naive per-column gathers and per-row
// scatters through a max(m, n)-element temporary.  This engine exists as
// the executable specification the optimized engines are tested against,
// and it carries the instrumentation that checks Theorem 6's "each element
// is read and written at most 6 times" bound.
//
// Each pass is factored into a standalone helper; the pass and its
// inverse (the matching pass of the opposite direction) are what the
// failure-rollback path in core/execute.hpp replays when an execution
// throws at a stage boundary.

#include <cstdint>

#include "core/equations.hpp"
#include "core/failpoint.hpp"
#include "core/permute.hpp"
#include "core/recovery.hpp"
#include "core/telemetry.hpp"

namespace inplace::detail {

/// Array-element touch counts (scratch traffic excluded, matching the
/// paper's accounting in Theorem 6).
struct touch_counter {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// Pre-rotation (Eq. 23): column j rotates up by prerotate_offset(j).
/// Inverse of reference_prerotate_inv.
template <typename T, typename Math>
void reference_prerotate(T* a, const Math& mm, workspace<T>& ws) {
  T* tmp = ws.line.data();
  for (std::uint64_t j = 0; j < mm.n; ++j) {
    const std::uint64_t k = mm.prerotate_offset(j);
    column_gather_inplace(a, mm.m, mm.n, j, tmp, [&](std::uint64_t i) {
      std::uint64_t s = i + k;
      return s >= mm.m ? s - mm.m : s;
    });
  }
}

/// Inverse pre-rotation (Eq. 36).  Inverse of reference_prerotate.
template <typename T, typename Math>
void reference_prerotate_inv(T* a, const Math& mm, workspace<T>& ws) {
  T* tmp = ws.line.data();
  for (std::uint64_t j = 0; j < mm.n; ++j) {
    const std::uint64_t k = mm.prerotate_inv_offset(j);
    column_gather_inplace(a, mm.m, mm.n, j, tmp, [&](std::uint64_t i) {
      std::uint64_t s = i + k;
      return s >= mm.m ? s - mm.m : s;
    });
  }
}

/// Row shuffle, scatter per Eq. 24.  Inverse of reference_row_gather.
template <typename T, typename Math>
void reference_row_scatter(T* a, const Math& mm, workspace<T>& ws) {
  T* tmp = ws.line.data();
  for (std::uint64_t i = 0; i < mm.m; ++i) {
    row_scatter_inplace(a + i * mm.n, mm.n, tmp,
                        [&](std::uint64_t j) { return mm.d_prime(i, j); });
  }
}

/// Row shuffle, gather form through d' (Section 4.3) — the exact inverse
/// of reference_row_scatter on every row.
template <typename T, typename Math>
void reference_row_gather(T* a, const Math& mm, workspace<T>& ws) {
  T* tmp = ws.line.data();
  for (std::uint64_t i = 0; i < mm.m; ++i) {
    row_gather_inplace(a + i * mm.n, mm.n, tmp,
                       [&](std::uint64_t j) { return mm.d_prime(i, j); });
  }
}

/// Column shuffle, gather per Eq. 26.  Inverse of
/// reference_col_shuffle_inv.
template <typename T, typename Math>
void reference_col_shuffle(T* a, const Math& mm, workspace<T>& ws) {
  T* tmp = ws.line.data();
  for (std::uint64_t j = 0; j < mm.n; ++j) {
    column_gather_inplace(a, mm.m, mm.n, j, tmp, [&](std::uint64_t i) {
      return mm.s_prime(i, j);
    });
  }
}

/// Inverse column shuffle: the C2R column shuffle is the gather
/// composition p_j then q, so its inverse is the single gather
/// q^-1((i + p^-1_j) mod m) (Eqs. 34-35), one pass per column.
template <typename T, typename Math>
void reference_col_shuffle_inv(T* a, const Math& mm, workspace<T>& ws) {
  T* tmp = ws.line.data();
  for (std::uint64_t j = 0; j < mm.n; ++j) {
    const std::uint64_t k = mm.p_inv_offset(j);
    column_gather_inplace(a, mm.m, mm.n, j, tmp, [&](std::uint64_t i) {
      std::uint64_t s = i + k;
      if (s >= mm.m) {
        s -= mm.m;
      }
      return mm.q_inv(s);
    });
  }
}

/// In-place C2R transposition (Algorithm 1).  After the call, the buffer
/// holds the row-major linearization of the transpose (Theorem 1).
/// `prog` (optional) records completed passes for stage-boundary
/// rollback.
template <typename T, typename Math>
void c2r_reference(T* a, const Math& mm, workspace<T>& ws,
                   touch_counter* tc = nullptr,
                   stage_progress* prog = nullptr) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;

  // Step 1 — pre-rotation (Eq. 23), needed only when gcd(m, n) > 1.
  if (mm.needs_prerotate()) {
    INPLACE_TELEMETRY_SPAN(span_rot, telemetry::stage::prerotate,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::prerotate);
    reference_prerotate(a, mm, ws);
    end_stage(prog);
    if (tc) {
      tc->reads += m * n;
      tc->writes += m * n;
    }
  }
  INPLACE_FAILPOINT("reference.c2r.after_prerotate");

  // Step 2 — row shuffle, scatter per Eq. 24.
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::row_shuffle);
    reference_row_scatter(a, mm, ws);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("reference.c2r.after_row_shuffle");

  // Step 3 — column shuffle, gather per Eq. 26.
  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::col_shuffle);
    reference_col_shuffle(a, mm, ws);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("reference.c2r.after_col_shuffle");
  if (tc) {
    tc->reads += 2 * m * n;
    tc->writes += 2 * m * n;
  }
}

/// Gather-based C2R variant (Section 5.1's CPU implementation uses the
/// fully gather-based form with d'^-1).
template <typename T, typename Math>
void c2r_reference_gather(T* a, const Math& mm, workspace<T>& ws) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  T* tmp = ws.line.data();
  if (mm.needs_prerotate()) {
    reference_prerotate(a, mm, ws);
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    row_gather_inplace(a + i * n, n, tmp, [&](std::uint64_t j) {
      return mm.d_prime_inv(i, j);
    });
  }
  reference_col_shuffle(a, mm, ws);
}

/// In-place R2C transposition: the inverse of C2R, i.e. the C2R steps
/// reversed with gathers/scatters interchanged (Section 4.3).
template <typename T, typename Math>
void r2c_reference(T* a, const Math& mm, workspace<T>& ws,
                   touch_counter* tc = nullptr,
                   stage_progress* prog = nullptr) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;

  // Step 1 — inverse column shuffle (Eqs. 34-35).
  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::col_shuffle);
    reference_col_shuffle_inv(a, mm, ws);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("reference.r2c.after_col_shuffle");
  if (tc) {
    tc->reads += m * n;
    tc->writes += m * n;
  }

  // Step 2 — row shuffle; the gather form uses d' directly (Section 4.3).
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::row_shuffle);
    reference_row_gather(a, mm, ws);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("reference.r2c.after_row_shuffle");

  // Step 3 — inverse pre-rotation (Eq. 36), when gcd(m, n) > 1.
  if (mm.needs_prerotate()) {
    INPLACE_TELEMETRY_SPAN(span_rot, telemetry::stage::prerotate,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::prerotate);
    reference_prerotate_inv(a, mm, ws);
    end_stage(prog);
    if (tc) {
      tc->reads += m * n;
      tc->writes += m * n;
    }
  }
  INPLACE_FAILPOINT("reference.r2c.after_prerotate");
  if (tc) {
    tc->reads += m * n;
    tc->writes += m * n;
  }
}

}  // namespace inplace::detail
