#pragma once
// Algorithm 1 of the paper, verbatim: naive per-column gathers and per-row
// scatters through a max(m, n)-element temporary.  This engine exists as
// the executable specification the optimized engines are tested against,
// and it carries the instrumentation that checks Theorem 6's "each element
// is read and written at most 6 times" bound.

#include <cstdint>

#include "core/equations.hpp"
#include "core/permute.hpp"
#include "core/telemetry.hpp"

namespace inplace::detail {

/// Array-element touch counts (scratch traffic excluded, matching the
/// paper's accounting in Theorem 6).
struct touch_counter {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// In-place C2R transposition (Algorithm 1).  After the call, the buffer
/// holds the row-major linearization of the transpose (Theorem 1).
template <typename T, typename Math>
void c2r_reference(T* a, const Math& mm, workspace<T>& ws,
                   touch_counter* tc = nullptr) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  T* tmp = ws.line.data();

  // Step 1 — pre-rotation (Eq. 23), needed only when gcd(m, n) > 1.
  if (mm.needs_prerotate()) {
    INPLACE_TELEMETRY_SPAN(span_rot, telemetry::stage::prerotate,
                           2 * m * n * sizeof(T), 0);
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t k = mm.prerotate_offset(j);
      column_gather_inplace(a, m, n, j, tmp, [&](std::uint64_t i) {
        std::uint64_t s = i + k;
        return s >= m ? s - m : s;
      });
    }
    if (tc) {
      tc->reads += m * n;
      tc->writes += m * n;
    }
  }

  // Step 2 — row shuffle, scatter per Eq. 24.
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    for (std::uint64_t i = 0; i < m; ++i) {
      row_scatter_inplace(a + i * n, n, tmp,
                          [&](std::uint64_t j) { return mm.d_prime(i, j); });
    }
  }

  // Step 3 — column shuffle, gather per Eq. 26.
  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           2 * m * n * sizeof(T), 0);
    for (std::uint64_t j = 0; j < n; ++j) {
      column_gather_inplace(a, m, n, j, tmp, [&](std::uint64_t i) {
        return mm.s_prime(i, j);
      });
    }
  }
  if (tc) {
    tc->reads += 2 * m * n;
    tc->writes += 2 * m * n;
  }
}

/// Gather-based C2R variant (Section 5.1's CPU implementation uses the
/// fully gather-based form with d'^-1).
template <typename T, typename Math>
void c2r_reference_gather(T* a, const Math& mm, workspace<T>& ws) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  T* tmp = ws.line.data();
  if (mm.needs_prerotate()) {
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t k = mm.prerotate_offset(j);
      column_gather_inplace(a, m, n, j, tmp, [&](std::uint64_t i) {
        std::uint64_t s = i + k;
        return s >= m ? s - m : s;
      });
    }
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    row_gather_inplace(a + i * n, n, tmp, [&](std::uint64_t j) {
      return mm.d_prime_inv(i, j);
    });
  }
  for (std::uint64_t j = 0; j < n; ++j) {
    column_gather_inplace(a, m, n, j, tmp, [&](std::uint64_t i) {
      return mm.s_prime(i, j);
    });
  }
}

/// In-place R2C transposition: the inverse of C2R, i.e. the C2R steps
/// reversed with gathers/scatters interchanged (Section 4.3).
template <typename T, typename Math>
void r2c_reference(T* a, const Math& mm, workspace<T>& ws,
                   touch_counter* tc = nullptr) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  T* tmp = ws.line.data();

  // Step 1 — inverse column shuffle.  The C2R column shuffle is the gather
  // composition p_j then q, so its inverse is the single gather
  // q^-1((i + p^-1_j) mod m) (Eqs. 34-35), one pass per column.
  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           2 * m * n * sizeof(T), 0);
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t k = mm.p_inv_offset(j);
      column_gather_inplace(a, m, n, j, tmp, [&](std::uint64_t i) {
        std::uint64_t s = i + k;
        if (s >= m) {
          s -= m;
        }
        return mm.q_inv(s);
      });
    }
  }
  if (tc) {
    tc->reads += m * n;
    tc->writes += m * n;
  }

  // Step 2 — row shuffle; the gather form uses d' directly (Section 4.3).
  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    for (std::uint64_t i = 0; i < m; ++i) {
      row_gather_inplace(a + i * n, n, tmp,
                         [&](std::uint64_t j) { return mm.d_prime(i, j); });
    }
  }

  // Step 3 — inverse pre-rotation (Eq. 36), when gcd(m, n) > 1.
  if (mm.needs_prerotate()) {
    INPLACE_TELEMETRY_SPAN(span_rot, telemetry::stage::prerotate,
                           2 * m * n * sizeof(T), 0);
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t k = mm.prerotate_inv_offset(j);
      column_gather_inplace(a, m, n, j, tmp, [&](std::uint64_t i) {
        std::uint64_t s = i + k;
        return s >= m ? s - m : s;
      });
    }
    if (tc) {
      tc->reads += m * n;
      tc->writes += m * n;
    }
  }
  if (tc) {
    tc->reads += m * n;
    tc->writes += m * n;
  }
}

}  // namespace inplace::detail
