#pragma once
// Section 6.1: in-place data layout conversion between Arrays of
// Structures and Structures of Arrays.
//
// An array of `count` structures of `fields` elements each is a row-major
// count x fields matrix; the Structure-of-Arrays layout of the same data is
// its transpose.  The planner routes these tall, skinny problems to the
// fused streaming engine (cpu/skinny.hpp).

#include <cstddef>

#include "core/transpose.hpp"

namespace inplace {

/// Converts an Array of Structures (count structures of `fields` elements
/// of type T) to a Structure of Arrays, in place.  Afterwards the buffer
/// holds `fields` contiguous arrays of `count` elements each.
template <typename T>
void aos_to_soa(T* data, std::size_t count, std::size_t fields,
                const options& opts = {}) {
  transpose(data, count, fields, storage_order::row_major, opts);
}

/// Inverse of aos_to_soa: converts a Structure of Arrays (`fields`
/// contiguous arrays of `count` elements) back to an Array of Structures,
/// in place.
template <typename T>
void soa_to_aos(T* data, std::size_t count, std::size_t fields,
                const options& opts = {}) {
  transpose(data, fields, count, storage_order::row_major, opts);
}

}  // namespace inplace
