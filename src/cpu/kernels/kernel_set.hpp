#pragma once
// The hot-path kernel layer: a per-tier vtable of the primitive memory
// operations the engines execute per element — contiguous copies
// (temporal and non-temporal), the strength-reduced affine gather/scatter
// behind the Eq. 24/31 row shuffles, and the indexed row gather behind the
// Eq. 26/32-34 fine rotation — selected once at plan time by runtime CPU
// feature detection.
//
// Every tier implements the same contract bit-exactly (the operations are
// pure permutations), so forced-scalar and native runs of any engine
// produce identical buffers; tests sweep both.  Each non-scalar tier lives
// in its own translation unit compiled with per-TU -m<isa> flags
// (src/CMakeLists.txt); a tier whose instructions the build compiler or
// the running CPU cannot provide resolves to the next tier down, ending at
// the always-available scalar set.
//
// Aliasing note: the u32/u64 entry points move raw 4/8-byte lanes.  The
// engines pass float/double/int32_t/... buffers through the may_alias
// typedefs below, so the kernels never introduce type-based aliasing UB.

#include <cstddef>
#include <cstdint>

#include "cpu/kernels/tier.hpp"

namespace inplace::kernels {

/// 4/8-byte lanes that may alias any element type of the same width
/// (float, int32_t, double, ...): the kernels are bit movers.
using u32lane = std::uint32_t __attribute__((may_alias));
using u64lane = std::uint64_t __attribute__((may_alias));

/// One tier's implementations.  All dst/src pairs must not overlap (the
/// engines always move matrix <-> scratch or disjoint sub-rows); the only
/// sanctioned same-buffer use is gather_index_* with dst == src where the
/// offsets never read a slot an earlier chunk of the same call wrote
/// (fine_rotate_group's forward sweep guarantees it).
struct kernel_set {
  tier t = tier::scalar;

  /// Contiguous copy, temporal stores.
  void (*copy)(void* dst, const void* src, std::size_t bytes);

  /// Contiguous copy with non-temporal stores on the cache-line-aligned
  /// interior; self-fencing (outstanding NT stores are globally visible
  /// when it returns).  Meant for pass-sized copy-backs whose destination
  /// lines will not be re-read before eviction.
  void (*stream)(void* dst, const void* src, std::size_t bytes);

  /// Sub-row copy with non-temporal interior stores and NO fence: callers
  /// issue many per pass (cycle-following moves) and publish once with
  /// fence().  Falls back to a temporal copy below one cache line.
  void (*stream_subrow)(void* dst, const void* src, std::size_t bytes);

  /// Publishes all outstanding non-temporal stores (sfence on x86).  Must
  /// run before any cross-thread handoff that is not itself NT-aware —
  /// the engines call it at the end of each parallel chunk that streamed.
  void (*fence)();

  /// dst[j] = src[(start + j*step) mod mod] for j in [0, count) — the
  /// Eq. 31 gather with its index stream strength-reduced to an add and a
  /// conditional subtract per lane, exactly as d_prime_stepper does.
  /// Preconditions: start < mod, step < mod, count <= mod, and for the
  /// u32 form mod < 2^31 (hardware gathers sign-extend 32-bit indices).
  void (*gather_affine_u32)(u32lane* dst, const u32lane* src,
                            std::size_t count, std::uint64_t start,
                            std::uint64_t step, std::uint64_t mod);
  void (*gather_affine_u64)(u64lane* dst, const u64lane* src,
                            std::size_t count, std::uint64_t start,
                            std::uint64_t step, std::uint64_t mod);

  /// dst[(start + j*step) mod mod] = src[j] for j in [0, count) — the
  /// Eq. 24 scatter form.  Same preconditions as gather_affine.
  void (*scatter_affine_u32)(u32lane* dst, const u32lane* src,
                             std::size_t count, std::uint64_t start,
                             std::uint64_t step, std::uint64_t mod);
  void (*scatter_affine_u64)(u64lane* dst, const u64lane* src,
                             std::size_t count, std::uint64_t start,
                             std::uint64_t step, std::uint64_t mod);

  /// dst[j] = src[offs[j]] for j in [0, count) (element offsets) — the
  /// fine-rotation gather, offsets precomputed once per column group.
  /// stream_dst selects non-temporal stores (not fenced; pair with
  /// fence()).  dst == src is allowed under the no-read-after-write
  /// pattern documented on the struct.
  void (*gather_index_u32)(u32lane* dst, const u32lane* src,
                           const std::uint64_t* offs, std::size_t count,
                           bool stream_dst);
  void (*gather_index_u64)(u64lane* dst, const u64lane* src,
                           const std::uint64_t* offs, std::size_t count,
                           bool stream_dst);

  /// In-register tile transpose (the Section 6.2 ladder, generated from
  /// src/simd/static_transpose.hpp's schedules): applies
  /// static_r2c<nregs, tile_lanes> (forward) or its inverse
  /// static_c2r (inverse) in place to each of nblocks contiguous blocks
  /// of nregs * tile_lanes lanes.  Null on tiers without an in-register
  /// implementation (scalar, stub builds); plan-time gating checks
  /// tile_lanes/tile_max_regs before selecting the tile path.
  /// Preconditions: 2 <= nregs <= tile_max_regs for the lane width.
  void (*tile_pass_u32)(u32lane* data, std::size_t nregs,
                        std::size_t nblocks, bool forward) = nullptr;
  void (*tile_pass_u64)(u64lane* data, std::size_t nregs,
                        std::size_t nblocks, bool forward) = nullptr;

  /// Vector width (lanes per register) and register budget of the tile
  /// passes above, per lane width; 0 when unimplemented.
  std::uint16_t tile_lanes_u32 = 0;
  std::uint16_t tile_lanes_u64 = 0;
  std::uint16_t tile_max_regs_u32 = 0;
  std::uint16_t tile_max_regs_u64 = 0;
};

/// Software prefetch hints for the irregular streams the hardware
/// prefetchers miss (cycle-following hops, wrapped gathers).  Compile to
/// prefetcht0 / prfm on the vector tiers and to nothing where unsupported.
inline void prefetch_read(const void* p) { __builtin_prefetch(p, 0, 3); }
inline void prefetch_write(void* p) { __builtin_prefetch(p, 1, 3); }

/// Distance (in cycle-following hops) the engines prefetch ahead of the
/// current sub-row move.  One hop of lookahead already covers the DRAM
/// latency of the next random row while the current line-sized copy
/// retires; deeper lookahead re-evaluates the permutation without
/// measurable gain (bench/ablation_kernels).
inline constexpr int subrow_prefetch_hops = 1;

/// The best tier the running CPU supports among those compiled into this
/// binary (cpuid/xgetbv on x86-64, baseline NEON on aarch64).  Cached
/// after the first call; never returns tier::automatic.
[[nodiscard]] tier native_tier();

/// True when `t` is compiled into this binary AND the running CPU can
/// execute it.  tier::scalar is always available.
[[nodiscard]] bool tier_available(tier t);

/// Resolves a requested tier to a concrete available one:
///   1. the INPLACE_FORCE_KERNEL_TIER environment variable, when set to
///      scalar|avx2|avx512|neon|native|inreg or <tier>-inreg, overrides
///      `requested` (unknown values are ignored with a one-time
///      warning); bare "inreg" forces the native tier and the
///      in-register tile path, "<tier>-inreg" pins both;
///   2. tier::automatic becomes native_tier();
///   3. an unavailable tier degrades down its family (avx512 -> avx2 ->
///      scalar, neon -> scalar).
/// Never returns tier::automatic.
[[nodiscard]] tier resolve_tier(tier requested);

/// True when INPLACE_FORCE_KERNEL_TIER requests the in-register tile
/// path ("inreg" or any "<tier>-inreg" form).  Forcing drops the
/// plan-time profitability condition (tall-shape check) but never the
/// correctness gates (divisibility, register budget): a forced-inreg
/// plan on an ineligible shape simply runs without the tile path, same
/// as forcing a tier the CPU lacks degrades.
[[nodiscard]] bool forced_tile_mode();

/// The kernel vtable for a concrete tier; unavailable tiers resolve to
/// the nearest available one (so set_for(resolve_tier(t)) never faults).
[[nodiscard]] const kernel_set& set_for(tier t);

/// Data cache sizes probed once at startup (sysconf where available, with
/// conservative fallbacks).  The streaming-store threshold derives from
/// l3_bytes.
struct cache_sizes {
  std::size_t l1_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t l3_bytes = 32 * 1024 * 1024;
};
[[nodiscard]] const cache_sizes& probed_caches();

/// Byte size past which a plan's working set no longer fits in cache and
/// non-temporal copy-back / rotation stores pay off (default: the probed
/// L3 size; override with the INPLACE_NT_THRESHOLD environment variable,
/// in bytes — tests force 0 to exercise the streaming paths on small
/// shapes).
[[nodiscard]] std::size_t streaming_threshold();

/// True when a plan moving `working_set_bytes` on tier `t` should use
/// non-temporal stores: the tier has NT instructions and the working set
/// exceeds streaming_threshold().
[[nodiscard]] bool streaming_profitable(std::size_t working_set_bytes,
                                        tier t);

/// Byte size the row shuffle's O(n) scratch line must reach before the
/// affine gather/scatter kernels engage (default: the probed L2 size;
/// override with INPLACE_ROW_KERNEL_MIN_LINE, in bytes — tests force 0).
/// Rationale: the scattered side of a row shuffle is the scratch line
/// itself.  While it is cache-resident there is no miss latency for a
/// hardware gather/scatter to hide, and its per-lane overhead loses to
/// the scalar stepper; the vector form only pays once the line spills.
[[nodiscard]] std::size_t row_kernel_min_line_bytes();

// --- typed convenience wrappers used by the engine templates ---------------

/// True when sizeof(T) has a vectorizable gather/scatter lane width.
template <typename T>
inline constexpr bool has_gather_lanes = sizeof(T) == 4 || sizeof(T) == 8;

/// Minimum bytes per streamed copy: each self-fencing stream() pays an
/// sfence, so tiny copies (the skinny engine's whole "rows" can be one
/// or two cache lines) must amortize it or skip streaming — measured
/// 2.6x *slower* end-to-end on a 2621440x16 skinny transpose when every
/// 128 B row copy-back streamed-and-fenced.
inline constexpr std::size_t stream_min_copy_bytes = 4096;

/// Contiguous copy of `count` elements; `stream` selects the self-fencing
/// non-temporal form (honored only past stream_min_copy_bytes).
template <typename T>
inline void copy_elems(const kernel_set& ks, T* dst, const T* src,
                       std::size_t count, bool stream) {
  const std::size_t bytes = count * sizeof(T);
  (stream && bytes >= stream_min_copy_bytes ? ks.stream : ks.copy)(dst, src,
                                                                   bytes);
}

template <typename T>
inline void gather_affine(const kernel_set& ks, T* dst, const T* src,
                          std::size_t count, std::uint64_t start,
                          std::uint64_t step, std::uint64_t mod) {
  if constexpr (sizeof(T) == 4) {
    ks.gather_affine_u32(reinterpret_cast<u32lane*>(dst),
                         reinterpret_cast<const u32lane*>(src), count, start,
                         step, mod);
  } else {
    static_assert(sizeof(T) == 8, "gather lanes are 4 or 8 bytes");
    ks.gather_affine_u64(reinterpret_cast<u64lane*>(dst),
                         reinterpret_cast<const u64lane*>(src), count, start,
                         step, mod);
  }
}

template <typename T>
inline void scatter_affine(const kernel_set& ks, T* dst, const T* src,
                           std::size_t count, std::uint64_t start,
                           std::uint64_t step, std::uint64_t mod) {
  if constexpr (sizeof(T) == 4) {
    ks.scatter_affine_u32(reinterpret_cast<u32lane*>(dst),
                          reinterpret_cast<const u32lane*>(src), count, start,
                          step, mod);
  } else {
    static_assert(sizeof(T) == 8, "scatter lanes are 4 or 8 bytes");
    ks.scatter_affine_u64(reinterpret_cast<u64lane*>(dst),
                          reinterpret_cast<const u64lane*>(src), count, start,
                          step, mod);
  }
}

/// Lane width of the in-register tile pass for element type T (0 when
/// the tier has none).
template <typename T>
inline std::uint16_t tile_lanes(const kernel_set& ks) {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                "tile lanes are 4 or 8 bytes");
  return sizeof(T) == 4 ? ks.tile_lanes_u32 : ks.tile_lanes_u64;
}

/// Register budget of the in-register tile pass for element type T.
template <typename T>
inline std::uint16_t tile_max_regs(const kernel_set& ks) {
  static_assert(sizeof(T) == 4 || sizeof(T) == 8,
                "tile lanes are 4 or 8 bytes");
  return sizeof(T) == 4 ? ks.tile_max_regs_u32 : ks.tile_max_regs_u64;
}

/// In-place tile pass over nblocks contiguous blocks of
/// nregs * tile_lanes<T> elements.  Requires the tier to implement the
/// pass (tile_lanes<T>(ks) != 0).
template <typename T>
inline void tile_pass(const kernel_set& ks, T* data, std::size_t nregs,
                      std::size_t nblocks, bool forward) {
  if constexpr (sizeof(T) == 4) {
    ks.tile_pass_u32(reinterpret_cast<u32lane*>(data), nregs, nblocks,
                     forward);
  } else {
    static_assert(sizeof(T) == 8, "tile lanes are 4 or 8 bytes");
    ks.tile_pass_u64(reinterpret_cast<u64lane*>(data), nregs, nblocks,
                     forward);
  }
}

template <typename T>
inline void gather_index(const kernel_set& ks, T* dst, const T* src,
                         const std::uint64_t* offs, std::size_t count,
                         bool stream_dst) {
  if constexpr (sizeof(T) == 4) {
    ks.gather_index_u32(reinterpret_cast<u32lane*>(dst),
                        reinterpret_cast<const u32lane*>(src), offs, count,
                        stream_dst);
  } else {
    static_assert(sizeof(T) == 8, "gather lanes are 4 or 8 bytes");
    ks.gather_index_u64(reinterpret_cast<u64lane*>(dst),
                        reinterpret_cast<const u64lane*>(src), offs, count,
                        stream_dst);
  }
}

}  // namespace inplace::kernels
