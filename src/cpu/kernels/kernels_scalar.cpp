// The always-available portable tier: restrict-qualified scalar loops
// compiled with the project's baseline flags.  Every other tier is
// measured against this one (bench/ablation_kernels), and
// INPLACE_FORCE_KERNEL_TIER=scalar pins the whole library to it.

#include "cpu/kernels/kernels_common.hpp"

namespace inplace::kernels::detail {

const kernel_set* scalar_set() {
  static const kernel_set ks = make_portable_set(tier::scalar);
  return &ks;
}

}  // namespace inplace::kernels::detail
