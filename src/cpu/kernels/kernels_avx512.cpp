// AVX-512 tier: 512-bit gathers AND scatters (16 x u32 / 8 x u64), full
// 64-byte non-temporal streaming stores, and unsigned 64-bit min for the
// branch-free modular index wrap (_mm512_min_epu64, which AVX2 lacks).
// Compiled with -mavx512f -mavx512bw -mavx512vl -mavx512dq for this TU
// only; excluded when the configure-time compile check fails, in which
// case the stub at the bottom reports the tier as not built.

#include "cpu/kernels/kernels_common.hpp"
#include "cpu/kernels/tile_inreg.hpp"

#if defined(INPLACE_KERNEL_COMPILE_AVX512)

#include <immintrin.h>

namespace inplace::kernels::detail {
namespace {

constexpr std::size_t kNtLine = 64;

/// Contiguous copy with 64-byte non-temporal stores on the 64-byte-
/// aligned interior of dst; head/tail through memcpy.  Unfenced.
void stream_body_avx512(void* dst, const void* src, std::size_t bytes) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) % 64;
  const std::size_t head = mis == 0 ? 0 : 64 - mis;
  if (bytes <= head + 64) {
    std::memcpy(d, s, bytes);
    return;
  }
  if (head != 0) {
    std::memcpy(d, s, head);
    d += head;
    s += head;
    bytes -= head;
  }
  std::size_t v = bytes / 64;
  while (v != 0) {
    prefetch_read(s + 8 * kNtLine);
    const __m512i a = _mm512_loadu_si512(s);
    _mm512_stream_si512(reinterpret_cast<__m512i*>(d), a);
    d += 64;
    s += 64;
    --v;
  }
  const std::size_t tail = bytes % 64;
  if (tail != 0) {
    std::memcpy(d, s, tail);
  }
}

void stream_avx512(void* dst, const void* src, std::size_t bytes) {
  stream_body_avx512(dst, src, bytes);
  _mm_sfence();
}

void stream_subrow_avx512(void* dst, const void* src, std::size_t bytes) {
  if (bytes < kNtLine) {
    std::memcpy(dst, src, bytes);
    return;
  }
  stream_body_avx512(dst, src, bytes);
}

void fence_avx512() { _mm_sfence(); }

/// dst[j] = src[(start + j*step) mod mod], 16 u32 lanes per vpgatherdd.
/// Index maintenance as in the AVX2 tier: add (16*step) mod mod, wrap by
/// unsigned min against the -mod candidate.  Requires mod < 2^31.
void gather_affine_u32_avx512(u32lane* dst, const u32lane* src,
                              std::size_t count, std::uint64_t start,
                              std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t L = 16;
  if (count < 2 * L || mod >= (std::uint64_t{1} << 31)) {
    gather_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  alignas(64) std::uint32_t lane_init[L];
  std::uint64_t idx0 = start;
  for (std::size_t l = 0; l < L; ++l) {
    lane_init[l] = static_cast<std::uint32_t>(idx0);
    idx0 += step;
    if (idx0 >= mod) {
      idx0 -= mod;
    }
  }
  __m512i idx = _mm512_load_si512(lane_init);
  const std::uint32_t adv32 = static_cast<std::uint32_t>(L * step % mod);
  const __m512i adv = _mm512_set1_epi32(static_cast<int>(adv32));
  const __m512i vmod =
      _mm512_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(mod)));
  affine_prefetcher pf(src, 4, start, step, mod, affine_prefetch_dist_u32);
  const std::size_t vec = count / L;
  for (std::size_t i = 0; i < vec; ++i) {
    pf.issue(L);
    const __m512i g = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), static_cast<__mmask16>(-1), idx, src, 4);
    _mm512_storeu_si512(dst + i * L, g);
    const __m512i bumped = _mm512_add_epi32(idx, adv);
    const __m512i wrapped = _mm512_sub_epi32(bumped, vmod);
    idx = _mm512_maskz_min_epu32(static_cast<__mmask16>(-1), bumped,
                                 wrapped);
  }
  const std::size_t done = vec * L;
  if (done < count) {
    // Lane 0 of idx is exactly (start + done*step) mod mod.
    alignas(64) std::uint32_t lanes[L];
    _mm512_store_si512(lanes, idx);
    gather_affine_portable(dst + done, src, count - done, lanes[0], step,
                           mod);
  }
}

/// 8 u64 lanes per vpgatherqq; wrap via _mm512_min_epu64.
void gather_affine_u64_avx512(u64lane* dst, const u64lane* src,
                              std::size_t count, std::uint64_t start,
                              std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t L = 8;
  if (count < 2 * L) {
    gather_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  alignas(64) std::uint64_t lane_init[L];
  std::uint64_t idx0 = start;
  for (std::size_t l = 0; l < L; ++l) {
    lane_init[l] = idx0;
    idx0 += step;
    if (idx0 >= mod) {
      idx0 -= mod;
    }
  }
  __m512i idx = _mm512_load_si512(lane_init);
  const __m512i adv =
      _mm512_set1_epi64(static_cast<long long>(L * step % mod));
  const __m512i vmod = _mm512_set1_epi64(static_cast<long long>(mod));
  affine_prefetcher pf(src, 8, start, step, mod, affine_prefetch_dist_u64);
  const std::size_t vec = count / L;
  for (std::size_t i = 0; i < vec; ++i) {
    pf.issue(L);
    const __m512i g = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), static_cast<__mmask8>(-1), idx, src, 8);
    _mm512_storeu_si512(dst + i * L, g);
    const __m512i bumped = _mm512_add_epi64(idx, adv);
    const __m512i wrapped = _mm512_sub_epi64(bumped, vmod);
    idx = _mm512_maskz_min_epu64(static_cast<__mmask8>(-1), bumped,
                                 wrapped);
  }
  const std::size_t done = vec * L;
  if (done < count) {
    alignas(64) std::uint64_t lanes[L];
    _mm512_store_si512(lanes, idx);
    gather_affine_portable(dst + done, src, count - done, lanes[0], step,
                           mod);
  }
}

/// dst[(start + j*step) mod mod] = src[j]: hardware scatter
/// (vpscatterdd), the instruction AVX2 lacks.  Within one 16-lane block
/// the indices are distinct (the engines' streams are restrictions of
/// bijections), and vpscatterdd writes lanes LSB-to-MSB anyway, matching
/// the scalar loop order.  Requires mod < 2^31.
void scatter_affine_u32_avx512(u32lane* dst, const u32lane* src,
                               std::size_t count, std::uint64_t start,
                               std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t L = 16;
  if (count < 2 * L || mod >= (std::uint64_t{1} << 31)) {
    scatter_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  alignas(64) std::uint32_t lane_init[L];
  std::uint64_t idx0 = start;
  for (std::size_t l = 0; l < L; ++l) {
    lane_init[l] = static_cast<std::uint32_t>(idx0);
    idx0 += step;
    if (idx0 >= mod) {
      idx0 -= mod;
    }
  }
  __m512i idx = _mm512_load_si512(lane_init);
  const std::uint32_t adv32 = static_cast<std::uint32_t>(L * step % mod);
  const __m512i adv = _mm512_set1_epi32(static_cast<int>(adv32));
  const __m512i vmod =
      _mm512_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(mod)));
  const std::size_t vec = count / L;
  for (std::size_t i = 0; i < vec; ++i) {
    const __m512i vals = _mm512_loadu_si512(src + i * L);
    _mm512_i32scatter_epi32(dst, idx, vals, 4);
    const __m512i bumped = _mm512_add_epi32(idx, adv);
    const __m512i wrapped = _mm512_sub_epi32(bumped, vmod);
    idx = _mm512_maskz_min_epu32(static_cast<__mmask16>(-1), bumped,
                                 wrapped);
  }
  const std::size_t done = vec * L;
  if (done < count) {
    alignas(64) std::uint32_t lanes[L];
    _mm512_store_si512(lanes, idx);
    scatter_affine_portable(dst, src + done, count - done, lanes[0], step,
                            mod);
  }
}

void scatter_affine_u64_avx512(u64lane* dst, const u64lane* src,
                               std::size_t count, std::uint64_t start,
                               std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t L = 8;
  if (count < 2 * L) {
    scatter_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  alignas(64) std::uint64_t lane_init[L];
  std::uint64_t idx0 = start;
  for (std::size_t l = 0; l < L; ++l) {
    lane_init[l] = idx0;
    idx0 += step;
    if (idx0 >= mod) {
      idx0 -= mod;
    }
  }
  __m512i idx = _mm512_load_si512(lane_init);
  const __m512i adv =
      _mm512_set1_epi64(static_cast<long long>(L * step % mod));
  const __m512i vmod = _mm512_set1_epi64(static_cast<long long>(mod));
  const std::size_t vec = count / L;
  for (std::size_t i = 0; i < vec; ++i) {
    const __m512i vals = _mm512_loadu_si512(src + i * L);
    _mm512_i64scatter_epi64(dst, idx, vals, 8);
    const __m512i bumped = _mm512_add_epi64(idx, adv);
    const __m512i wrapped = _mm512_sub_epi64(bumped, vmod);
    idx = _mm512_maskz_min_epu64(static_cast<__mmask8>(-1), bumped,
                                 wrapped);
  }
  const std::size_t done = vec * L;
  if (done < count) {
    alignas(64) std::uint64_t lanes[L];
    _mm512_store_si512(lanes, idx);
    scatter_affine_portable(dst, src + done, count - done, lanes[0], step,
                            mod);
  }
}

/// dst[j] = src[offs[j]], 8 lanes per vpgatherqd.  When stream_dst is
/// set, the contiguous 32-byte result stores go non-temporal after a
/// scalar prologue aligns dst (unfenced; callers fence per chunk).  The
/// in-place dst == src forward-sweep use stays safe: each block's lanes
/// are gathered before its store, and streamed stores of slots never
/// re-read within the call don't change the values moved.
void gather_index_u32_avx512(u32lane* dst, const u32lane* src,
                             const std::uint64_t* offs, std::size_t count,
                             bool stream_dst) {
  constexpr std::size_t L = 8;
  std::size_t j = 0;
  if (stream_dst) {
    const std::size_t mis = reinterpret_cast<std::uintptr_t>(dst) % 32;
    std::size_t pro = mis == 0 ? 0 : (32 - mis) / 4;
    pro = pro < count ? pro : count;
    for (; j < pro; ++j) {
      dst[j] = src[offs[j]];
    }
  }
  for (; j + L <= count; j += L) {
    if (j + index_prefetch_dist + L <= count) {
      for (std::size_t l = 0; l < L; ++l) {
        prefetch_read(src + offs[j + index_prefetch_dist + l]);
      }
    }
    const __m512i idx = _mm512_loadu_si512(offs + j);
    const __m256i g = _mm512_mask_i64gather_epi32(
        _mm256_setzero_si256(), static_cast<__mmask8>(-1), idx, src, 4);
    if (stream_dst) {
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + j), g);
    } else {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), g);
    }
  }
  for (; j < count; ++j) {
    dst[j] = src[offs[j]];
  }
}

void gather_index_u64_avx512(u64lane* dst, const u64lane* src,
                             const std::uint64_t* offs, std::size_t count,
                             bool stream_dst) {
  constexpr std::size_t L = 8;
  std::size_t j = 0;
  if (stream_dst) {
    const std::size_t mis = reinterpret_cast<std::uintptr_t>(dst) % 64;
    std::size_t pro = mis == 0 ? 0 : (64 - mis) / 8;
    pro = pro < count ? pro : count;
    for (; j < pro; ++j) {
      dst[j] = src[offs[j]];
    }
  }
  for (; j + L <= count; j += L) {
    if (j + index_prefetch_dist + L <= count) {
      for (std::size_t l = 0; l < L; ++l) {
        prefetch_read(src + offs[j + index_prefetch_dist + l]);
      }
    }
    const __m512i idx = _mm512_loadu_si512(offs + j);
    const __m512i g = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), static_cast<__mmask8>(-1), idx, src, 8);
    if (stream_dst) {
      _mm512_stream_si512(reinterpret_cast<__m512i*>(dst + j), g);
    } else {
      _mm512_storeu_si512(dst + j, g);
    }
  }
  for (; j < count; ++j) {
    dst[j] = src[offs[j]];
  }
}

}  // namespace

const kernel_set* avx512_set() {
  static const kernel_set ks = [] {
    kernel_set s = make_portable_set(tier::avx512);
    s.stream = &stream_avx512;
    s.stream_subrow = &stream_subrow_avx512;
    s.fence = &fence_avx512;
    s.gather_affine_u32 = &gather_affine_u32_avx512;
    s.gather_affine_u64 = &gather_affine_u64_avx512;
    s.scatter_affine_u32 = &scatter_affine_u32_avx512;
    s.scatter_affine_u64 = &scatter_affine_u64_avx512;
    s.gather_index_u32 = &gather_index_u32_avx512;
    s.gather_index_u64 = &gather_index_u64_avx512;
    merge_tile_entry(s, tile_inreg_avx512());
    return s;
  }();
  return &ks;
}

}  // namespace inplace::kernels::detail

#else  // !INPLACE_KERNEL_COMPILE_AVX512

namespace inplace::kernels::detail {

const kernel_set* avx512_set() { return nullptr; }

}  // namespace inplace::kernels::detail

#endif
