#pragma once
// Portable implementations of the kernel_set operations, shared by the
// scalar tier (verbatim) and by the vector tiers for the entry points
// their ISA has no profitable instruction for (e.g. AVX2 has no scatter).
// Written with __restrict qualification and simple loop-carried index
// updates so the compiler can auto-vectorize the affine forms when the
// translation unit's ISA flags allow it — the scalar TU compiles with the
// project baseline, the AVX2/AVX-512 TUs with their per-TU -m flags, so
// even the "fallback" entry points improve per tier.

#include <cstdint>
#include <cstring>

#include "cpu/kernels/kernel_set.hpp"

namespace inplace::kernels::detail {

inline void copy_portable(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

/// Portable tiers have no non-temporal stores: both streaming entry
/// points degrade to the temporal copy, and fence is a no-op.
inline void stream_portable(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

inline void fence_noop() {}

/// dst[j] = src[(start + j*step) mod mod] with the index advanced by one
/// add and a conditional subtract per element (idx stays in [0, mod)
/// because step < mod).
template <typename U>
inline void gather_affine_portable(U* __restrict dst,
                                   const U* __restrict src,
                                   std::size_t count, std::uint64_t start,
                                   std::uint64_t step, std::uint64_t mod) {
  std::uint64_t idx = start;
  for (std::size_t j = 0; j < count; ++j) {
    dst[j] = src[idx];
    idx += step;
    if (idx >= mod) {
      idx -= mod;
    }
  }
}

template <typename U>
inline void scatter_affine_portable(U* __restrict dst,
                                    const U* __restrict src,
                                    std::size_t count, std::uint64_t start,
                                    std::uint64_t step, std::uint64_t mod) {
  std::uint64_t idx = start;
  for (std::size_t j = 0; j < count; ++j) {
    dst[idx] = src[j];
    idx += step;
    if (idx >= mod) {
      idx -= mod;
    }
  }
}

/// dst[j] = src[offs[j]].  dst may equal src under the forward-sweep
/// no-read-after-write pattern (see kernel_set); the scalar loop reads
/// each slot before any j' > j writes it, so element order is safe.
template <typename U>
inline void gather_index_portable(U* dst, const U* src,
                                  const std::uint64_t* __restrict offs,
                                  std::size_t count, bool /*stream_dst*/) {
  for (std::size_t j = 0; j < count; ++j) {
    dst[j] = src[offs[j]];
  }
}

/// Prefetch lookahead for the affine gather/scatter index streams,
/// expressed in elements.  Sized so the prefetches run roughly two DRAM
/// latencies ahead of the gather loop at one element per cycle-ish
/// throughput; per-width because a 64-bit lane covers twice the bytes.
inline constexpr std::size_t affine_prefetch_dist_u32 = 128;
inline constexpr std::size_t affine_prefetch_dist_u64 = 64;

/// Lookahead (elements) into the precomputed offset stream of
/// gather_index_*; the offsets themselves are sequential (hardware
/// covers them), this hides the latency of the scattered src reads.
inline constexpr std::size_t index_prefetch_dist = 32;

/// Walks the same (start + j*step) mod mod index stream as the affine
/// kernels but `dist` elements ahead, issuing one read prefetch per
/// element.  Because the stream wraps inside [0, mod), every prefetch
/// lands inside the row even past the segment end — no bounds guard
/// needed.  When the stride is under a cache line, consecutive elements
/// share lines and one prefetch per `lanes` block suffices.  Pure
/// address arithmetic (never dereferences), so it takes an untyped base
/// plus the element size.
struct affine_prefetcher {
  const char* src_;
  std::size_t esize_;
  std::uint64_t idx_;
  std::uint64_t step_;
  std::uint64_t mod_;
  bool per_lane_;

  affine_prefetcher(const void* src, std::size_t elem_size,
                    std::uint64_t start, std::uint64_t step,
                    std::uint64_t mod, std::size_t dist)
      : src_(static_cast<const char*>(src)),
        esize_(elem_size),
        idx_((start + (dist % mod) * step % mod) % mod),
        step_(step),
        mod_(mod),
        per_lane_(step * elem_size >= 64) {}

  /// Prefetches the `lanes` elements `dist` ahead of the current block
  /// and advances by `lanes`.
  inline void issue(std::size_t lanes) {
    std::uint64_t p = idx_;
    if (per_lane_) {
      for (std::size_t l = 0; l < lanes; ++l) {
        prefetch_read(src_ + p * esize_);
        p += step_;
        if (p >= mod_) {
          p -= mod_;
        }
      }
      idx_ = p;
    } else {
      prefetch_read(src_ + p * esize_);
      idx_ += lanes * step_ % mod_;
      if (idx_ >= mod_) {
        idx_ -= mod_;
      }
    }
  }
};

/// Assembles a kernel_set whose every slot is the portable implementation
/// compiled in the including translation unit (so each tier's fallbacks
/// still benefit from that TU's ISA flags via auto-vectorization).
inline kernel_set make_portable_set(tier t) {
  kernel_set ks;
  ks.t = t;
  ks.copy = &copy_portable;
  ks.stream = &stream_portable;
  ks.stream_subrow = &stream_portable;
  ks.fence = &fence_noop;
  ks.gather_affine_u32 = &gather_affine_portable<u32lane>;
  ks.gather_affine_u64 = &gather_affine_portable<u64lane>;
  ks.scatter_affine_u32 = &scatter_affine_portable<u32lane>;
  ks.scatter_affine_u64 = &scatter_affine_portable<u64lane>;
  ks.gather_index_u32 = &gather_index_portable<u32lane>;
  ks.gather_index_u64 = &gather_index_portable<u64lane>;
  return ks;
}

}  // namespace inplace::kernels::detail
