#pragma once
// In-register tile-transpose tier: declarations shared by the per-ISA
// translation units (tile_inreg_{avx2,avx512,neon}.cpp), the kernel_set
// factories that merge them, and the engines that consume whole register
// tiles.
//
// A "tile" is nregs contiguous vector registers of `lanes` 4- or 8-byte
// elements.  The forward pass applies simd::static_r2c<nregs, lanes> to
// every block — in flat terms out[k] = in[(k % lanes) * nregs + k / lanes]
// — and the inverse pass applies simd::static_c2r<nregs, lanes>
// (out[k] = in[(k % nregs) * lanes + k / nregs]).  That is exactly the
// within-slab factor of a W-divisible skinny transpose: for W | m, the
// C2R permutation of an m x n matrix decomposes into the forward tile
// pass on every W x n slab (n registers of W lanes, contiguous) followed
// by the ordinary skinny C2R on the (m/W) x n matrix of W-element chunks;
// R2C runs the chunk engine first and finishes with the inverse pass.
// The per-ISA implementations realize the passes as the simulator-proved
// <= ceil(log2 nregs)-select ladders of src/simd/static_transpose.hpp.

#include <cstddef>
#include <cstdint>

#include "cpu/kernels/kernel_set.hpp"

namespace inplace::kernels {

/// A W-element chunk of T that the chunked skinny engine moves as one
/// unit; may alias the caller's element buffer (the tile engines
/// reinterpret T* matrices as lane_chunk grids).
template <typename T, unsigned W>
struct __attribute__((may_alias)) lane_chunk {
  T v[W];
};

/// One ISA's in-register tile entry points, merged into that tier's
/// kernel_set by its factory.  lanes/max_regs are 0 and the function
/// pointers null when the TU was compiled without its ISA (stub build)
/// or the ISA has no in-register implementation.
struct tile_entry {
  void (*tile_pass_u32)(u32lane* data, std::size_t nregs,
                        std::size_t nblocks, bool forward) = nullptr;
  void (*tile_pass_u64)(u64lane* data, std::size_t nregs,
                        std::size_t nblocks, bool forward) = nullptr;
  std::uint16_t tile_lanes_u32 = 0;
  std::uint16_t tile_lanes_u64 = 0;
  std::uint16_t tile_max_regs_u32 = 0;
  std::uint16_t tile_max_regs_u64 = 0;
};

/// Per-TU getters; return nullptr when the tier was not compiled in.
[[nodiscard]] const tile_entry* tile_inreg_avx2();
[[nodiscard]] const tile_entry* tile_inreg_avx512();
[[nodiscard]] const tile_entry* tile_inreg_neon();

/// Copies an ISA's tile entry points into its kernel_set (no-op for a
/// stub TU).
inline void merge_tile_entry(kernel_set& s, const tile_entry* te) {
  if (te == nullptr) {
    return;
  }
  s.tile_pass_u32 = te->tile_pass_u32;
  s.tile_pass_u64 = te->tile_pass_u64;
  s.tile_lanes_u32 = te->tile_lanes_u32;
  s.tile_lanes_u64 = te->tile_lanes_u64;
  s.tile_max_regs_u32 = te->tile_max_regs_u32;
  s.tile_max_regs_u64 = te->tile_max_regs_u64;
}

/// Reference implementation of the tile passes with runtime extents:
/// the rollback path (must not depend on which tier planned the run) and
/// the ladder pin tests use it as the oracle.  Blocks are tiny
/// (nregs * lanes <= 256 elements), so a stack buffer suffices.
template <typename U>
inline void tile_pass_portable(U* data, std::size_t nregs, std::size_t lanes,
                               std::size_t nblocks, bool forward) {
  U tmp[256];
  const std::size_t total = nregs * lanes;
  for (std::size_t blk = 0; blk < nblocks; ++blk, data += total) {
    if (forward) {
      for (std::size_t r = 0; r < nregs; ++r) {
        for (std::size_t t = 0; t < lanes; ++t) {
          tmp[r * lanes + t] = data[t * nregs + r];
        }
      }
    } else {
      for (std::size_t r = 0; r < nregs; ++r) {
        for (std::size_t t = 0; t < lanes; ++t) {
          tmp[t * nregs + r] = data[r * lanes + t];
        }
      }
    }
    for (std::size_t k = 0; k < total; ++k) {
      data[k] = tmp[k];
    }
  }
}

}  // namespace inplace::kernels
