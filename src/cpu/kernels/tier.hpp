#pragma once
// Kernel dispatch tiers.  This tiny header exists so the planner
// (core/plan.hpp) can record which hot-path kernel implementation a plan
// selected without pulling in the full vtable/detection machinery
// (cpu/kernels/kernel_set.hpp).

#include <cstdint>

namespace inplace::kernels {

/// Which hot-path kernel implementation the engines dispatch to.  One
/// binary carries every tier compiled in its own translation unit with
/// per-TU ISA flags; the planner picks the best tier the running CPU
/// supports (runtime cpuid/getauxval detection), so the same build runs
/// everywhere.
enum class tier : std::uint8_t {
  automatic = 0,  ///< planner input: pick the best available tier
  scalar = 1,     ///< portable restrict-qualified loops (always available)
  avx2 = 2,       ///< x86-64 AVX2: 256-bit gathers, NT streaming stores
  avx512 = 3,     ///< x86-64 AVX-512F/BW/VL/DQ: 512-bit gathers + scatters
  neon = 4,       ///< aarch64 NEON: vector copies, prefetched scalar gathers
};

/// Stable display names (plan records, telemetry, BENCH JSON).
[[nodiscard]] constexpr const char* tier_name(tier t) {
  switch (t) {
    case tier::automatic:
      return "automatic";
    case tier::scalar:
      return "scalar";
    case tier::avx2:
      return "avx2";
    case tier::avx512:
      return "avx512";
    case tier::neon:
      return "neon";
  }
  return "unknown";
}

/// Display name of a tier running the in-register tile-transpose path
/// on top of its vtable ("avx512+inreg"); plans whose tile_block is set
/// record this combined tag so telemetry and BENCH JSON distinguish the
/// tile tier from plain scratch-line kernels of the same ISA.
[[nodiscard]] constexpr const char* tier_name_inreg(tier t) {
  switch (t) {
    case tier::automatic:
      return "automatic+inreg";
    case tier::scalar:
      return "scalar+inreg";
    case tier::avx2:
      return "avx2+inreg";
    case tier::avx512:
      return "avx512+inreg";
    case tier::neon:
      return "neon+inreg";
  }
  return "unknown";
}

}  // namespace inplace::kernels
