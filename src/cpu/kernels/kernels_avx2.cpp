// AVX2 tier: 256-bit hardware gathers (vpgatherdd/vpgatherqq) for the
// affine and indexed shuffle kernels, non-temporal streaming stores for
// the copy/rotation paths, software prefetch on the strided streams.
// Compiled with -mavx2 -mfma for this TU only (src/CMakeLists.txt); the
// TU is excluded -- and avx2_set() returns nullptr from the registry's
// stub below -- when the configure-time compile check fails.
//
// AVX2 has gathers but no scatters, so the scatter_affine slots keep the
// portable loops (still auto-vectorized under this TU's flags).

#include "cpu/kernels/kernels_common.hpp"
#include "cpu/kernels/tile_inreg.hpp"

#if defined(INPLACE_KERNEL_COMPILE_AVX2)

#include <immintrin.h>

namespace inplace::kernels::detail {
namespace {

constexpr std::size_t kNtLine = 64;

/// Contiguous copy with non-temporal 32-byte stores on the 32-byte-
/// aligned interior of dst.  Head/tail go through memcpy (temporal); the
/// caller fences (or uses stream_avx2 below, which self-fences).
void stream_body_avx2(void* dst, const void* src, std::size_t bytes) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  const std::size_t mis = reinterpret_cast<std::uintptr_t>(d) % 32;
  const std::size_t head = mis == 0 ? 0 : 32 - mis;
  if (bytes <= head + 32) {
    std::memcpy(d, s, bytes);
    return;
  }
  if (head != 0) {
    std::memcpy(d, s, head);
    d += head;
    s += head;
    bytes -= head;
  }
  std::size_t v = bytes / 32;
  while (v >= 2) {
    prefetch_read(s + 8 * kNtLine);
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 32));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d), a);
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d + 32), b);
    d += 64;
    s += 64;
    v -= 2;
  }
  if (v != 0) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(d), a);
    d += 32;
    s += 32;
  }
  const std::size_t tail = bytes % 32;
  if (tail != 0) {
    std::memcpy(d, s, tail);
  }
}

void stream_avx2(void* dst, const void* src, std::size_t bytes) {
  stream_body_avx2(dst, src, bytes);
  _mm_sfence();
}

/// Unfenced variant for the many-small-moves rotation paths; callers
/// publish once per chunk with fence().  Below one cache line the NT
/// setup is pure overhead -> temporal copy.
void stream_subrow_avx2(void* dst, const void* src, std::size_t bytes) {
  if (bytes < kNtLine) {
    std::memcpy(dst, src, bytes);
    return;
  }
  stream_body_avx2(dst, src, bytes);
}

void fence_avx2() { _mm_sfence(); }

/// dst[j] = src[(start + j*step) mod mod], 8 lanes of u32 per gather.
/// The 8-lane index vector advances by (8*step) mod mod each iteration;
/// the wrap is one unsigned min: idx' = idx + adv computed both with and
/// without the compensating -mod, and min_epu32 picks the reduced form
/// because the un-wrapped candidate underflows to a huge value exactly
/// when no wrap happened.  Requires mod < 2^31 (vpgatherdd sign-extends).
void gather_affine_u32_avx2(u32lane* dst, const u32lane* src,
                            std::size_t count, std::uint64_t start,
                            std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t L = 8;
  if (count < 2 * L || mod >= (std::uint64_t{1} << 31)) {
    gather_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  alignas(32) std::uint32_t lane_init[L];
  std::uint64_t idx0 = start;
  for (std::size_t l = 0; l < L; ++l) {
    lane_init[l] = static_cast<std::uint32_t>(idx0);
    idx0 += step;
    if (idx0 >= mod) {
      idx0 -= mod;
    }
  }
  __m256i idx = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_init));
  const std::uint32_t adv32 = static_cast<std::uint32_t>(L * step % mod);
  const __m256i adv = _mm256_set1_epi32(static_cast<int>(adv32));
  const __m256i vmod =
      _mm256_set1_epi32(static_cast<int>(static_cast<std::uint32_t>(mod)));
  affine_prefetcher pf(src, 4, start, step, mod, affine_prefetch_dist_u32);
  const std::size_t vec = count / L;
  const auto* base = reinterpret_cast<const int*>(src);
  for (std::size_t i = 0; i < vec; ++i) {
    pf.issue(L);
    const __m256i g = _mm256_i32gather_epi32(base, idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * L), g);
    const __m256i bumped = _mm256_add_epi32(idx, adv);
    const __m256i wrapped = _mm256_sub_epi32(bumped, vmod);
    idx = _mm256_min_epu32(bumped, wrapped);
  }
  const std::size_t done = vec * L;
  if (done < count) {
    // Lane 0 of idx is exactly (start + done*step) mod mod.
    const auto rem_start = static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm256_castsi256_si128(idx)));
    gather_affine_portable(dst + done, src, count - done, rem_start, step,
                           mod);
  }
}

/// 4 lanes of u64 per vpgatherqq.  The wrap uses a signed compare+blend
/// (no unsigned 64-bit min before AVX-512), valid because mod < 2^62 in
/// any realizable shape, so the pre-wrap candidates stay positive as
/// signed 64-bit values.
void gather_affine_u64_avx2(u64lane* dst, const u64lane* src,
                            std::size_t count, std::uint64_t start,
                            std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t L = 4;
  if (count < 2 * L) {
    gather_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  alignas(32) std::uint64_t lane_init[L];
  std::uint64_t idx0 = start;
  for (std::size_t l = 0; l < L; ++l) {
    lane_init[l] = idx0;
    idx0 += step;
    if (idx0 >= mod) {
      idx0 -= mod;
    }
  }
  __m256i idx = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_init));
  const std::uint64_t adv64 = L * step % mod;
  const __m256i adv = _mm256_set1_epi64x(static_cast<long long>(adv64));
  const __m256i vmod = _mm256_set1_epi64x(static_cast<long long>(mod));
  affine_prefetcher pf(src, 8, start, step, mod, affine_prefetch_dist_u64);
  const std::size_t vec = count / L;
  const auto* base = reinterpret_cast<const long long*>(src);
  for (std::size_t i = 0; i < vec; ++i) {
    pf.issue(L);
    const __m256i g = _mm256_i64gather_epi64(base, idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * L), g);
    const __m256i bumped = _mm256_add_epi64(idx, adv);
    // bumped >= vmod  <=>  vmod > bumped is false (both positive signed).
    const __m256i keep = _mm256_cmpgt_epi64(vmod, bumped);
    const __m256i wrapped = _mm256_sub_epi64(bumped, vmod);
    idx = _mm256_blendv_epi8(wrapped, bumped, keep);
  }
  const std::size_t done = vec * L;
  if (done < count) {
    // Lane 0 of idx is exactly (start + done*step) mod mod.
    const auto rem_start = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm256_castsi256_si128(idx)));
    gather_affine_portable(dst + done, src, count - done, rem_start, step,
                           mod);
  }
}

/// dst[j] = src[offs[j]], 4 lanes per iteration through vpgatherqd /
/// vpgatherqq on the precomputed 64-bit offsets.  stream_dst is accepted
/// but ignored on this tier: AVX2's 16/32-byte NT stores would need a
/// per-row alignment prologue that costs more than the RFO it saves at
/// these sizes (the AVX-512 tier streams).  The engines' in-place use
/// (dst == src, forward sweep) stays safe: lanes are gathered before the
/// iteration's store, and offsets never point at slots written by
/// earlier iterations.
void gather_index_u32_avx2(u32lane* dst, const u32lane* src,
                           const std::uint64_t* offs, std::size_t count,
                           bool /*stream_dst*/) {
  constexpr std::size_t L = 4;
  const std::size_t vec = count / L;
  const auto* base = reinterpret_cast<const int*>(src);
  for (std::size_t i = 0; i < vec; ++i) {
    const std::size_t j = i * L;
    if (j + index_prefetch_dist + L <= count) {
      for (std::size_t l = 0; l < L; ++l) {
        prefetch_read(src + offs[j + index_prefetch_dist + l]);
      }
    }
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offs + j));
    const __m128i g = _mm256_i64gather_epi32(base, idx, 4);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j), g);
  }
  for (std::size_t j = vec * L; j < count; ++j) {
    dst[j] = src[offs[j]];
  }
}

void gather_index_u64_avx2(u64lane* dst, const u64lane* src,
                           const std::uint64_t* offs, std::size_t count,
                           bool /*stream_dst*/) {
  constexpr std::size_t L = 4;
  const std::size_t vec = count / L;
  const auto* base = reinterpret_cast<const long long*>(src);
  for (std::size_t i = 0; i < vec; ++i) {
    const std::size_t j = i * L;
    if (j + index_prefetch_dist + L <= count) {
      for (std::size_t l = 0; l < L; ++l) {
        prefetch_read(src + offs[j + index_prefetch_dist + l]);
      }
    }
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offs + j));
    const __m256i g = _mm256_i64gather_epi64(base, idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), g);
  }
  for (std::size_t j = vec * L; j < count; ++j) {
    dst[j] = src[offs[j]];
  }
}

}  // namespace

const kernel_set* avx2_set() {
  static const kernel_set ks = [] {
    kernel_set s = make_portable_set(tier::avx2);
    s.stream = &stream_avx2;
    s.stream_subrow = &stream_subrow_avx2;
    s.fence = &fence_avx2;
    s.gather_affine_u32 = &gather_affine_u32_avx2;
    s.gather_affine_u64 = &gather_affine_u64_avx2;
    s.gather_index_u32 = &gather_index_u32_avx2;
    s.gather_index_u64 = &gather_index_u64_avx2;
    merge_tile_entry(s, tile_inreg_avx2());
    return s;
  }();
  return &ks;
}

}  // namespace inplace::kernels::detail

#else  // !INPLACE_KERNEL_COMPILE_AVX2

namespace inplace::kernels::detail {

const kernel_set* avx2_set() { return nullptr; }

}  // namespace inplace::kernels::detail

#endif
