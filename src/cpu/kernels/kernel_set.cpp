// Runtime tier detection, the dispatch registry, cache-size probing and
// the streaming-store threshold.  Selection happens once per plan
// (core/plan.cpp calls resolve_tier/set_for at plan time), so nothing
// here is hot; the vtable pointer the plan stores is.

#include "cpu/kernels/kernel_set.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "cpu/kernels/kernels_common.hpp"

namespace inplace::kernels {

namespace detail {
// Per-tier factories, one per TU; a tier not compiled into this binary
// returns nullptr from its stub.
const kernel_set* scalar_set();
const kernel_set* avx2_set();
const kernel_set* avx512_set();
const kernel_set* neon_set();
}  // namespace detail

namespace {

/// True when the running CPU can execute tier `t` (independent of
/// whether the tier was compiled in).
bool cpu_supports(tier t) {
  switch (t) {
    case tier::automatic:
    case tier::scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case tier::avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case tier::avx512:
      // The gather/scatter + min_epu64 kernels need F; VL/BW/DQ are the
      // build flags' assumed baseline, so require the full set before
      // claiming the tier (Skylake-SP onward; excludes AVX512F-only
      // Knights parts).
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
    case tier::neon:
      return false;
#elif defined(__aarch64__)
    case tier::avx2:
    case tier::avx512:
      return false;
    case tier::neon:
      return true;  // NEON is architecturally mandatory on aarch64
#else
    case tier::avx2:
    case tier::avx512:
    case tier::neon:
      return false;
#endif
  }
  return false;
}

const kernel_set* compiled_set(tier t) {
  switch (t) {
    case tier::automatic:
      return nullptr;
    case tier::scalar:
      return detail::scalar_set();
    case tier::avx2:
      return detail::avx2_set();
    case tier::avx512:
      return detail::avx512_set();
    case tier::neon:
      return detail::neon_set();
  }
  return nullptr;
}

/// One step down the degradation chain.
tier degrade(tier t) {
  switch (t) {
    case tier::avx512:
      return tier::avx2;
    case tier::avx2:
    case tier::neon:
    case tier::automatic:
    case tier::scalar:
      return tier::scalar;
  }
  return tier::scalar;
}

std::optional<tier> parse_tier(const char* s) {
  if (std::strcmp(s, "scalar") == 0) {
    return tier::scalar;
  }
  if (std::strcmp(s, "avx2") == 0) {
    return tier::avx2;
  }
  if (std::strcmp(s, "avx512") == 0) {
    return tier::avx512;
  }
  if (std::strcmp(s, "neon") == 0) {
    return tier::neon;
  }
  if (std::strcmp(s, "native") == 0 || std::strcmp(s, "automatic") == 0) {
    return tier::automatic;
  }
  return std::nullopt;
}

/// Parsed INPLACE_FORCE_KERNEL_TIER value: the tier part plus whether
/// the in-register tile path is forced ("inreg" alone = native tier +
/// tile; "<tier>-inreg" pins both).
struct forced_mode {
  std::optional<tier> t;
  bool tile = false;
};

forced_mode parse_forced_mode(const char* s) {
  forced_mode fm;
  if (std::strcmp(s, "inreg") == 0) {
    fm.t = tier::automatic;
    fm.tile = true;
    return fm;
  }
  const std::size_t len = std::strlen(s);
  constexpr std::size_t suffix_len = 6;  // "-inreg"
  if (len > suffix_len &&
      std::strcmp(s + (len - suffix_len), "-inreg") == 0) {
    char base[16];
    if (len - suffix_len < sizeof(base)) {
      std::memcpy(base, s, len - suffix_len);
      base[len - suffix_len] = '\0';
      if (const auto t = parse_tier(base)) {
        fm.t = t;
        fm.tile = true;
      }
    }
    return fm;
  }
  fm.t = parse_tier(s);
  return fm;
}

void warn_unknown_force_env(const char* env) {
  static bool warned = false;
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "inplace: ignoring unknown INPLACE_FORCE_KERNEL_TIER="
                 "'%s' (want scalar|avx2|avx512|neon|native, optionally "
                 "with an -inreg suffix, or bare inreg)\n",
                 env);
  }
}

std::size_t probe_cache_level(int level, std::size_t fallback) {
#if defined(_SC_LEVEL1_DCACHE_SIZE) && defined(_SC_LEVEL2_CACHE_SIZE) && \
    defined(_SC_LEVEL3_CACHE_SIZE)
  const int name = level == 1   ? _SC_LEVEL1_DCACHE_SIZE
                   : level == 2 ? _SC_LEVEL2_CACHE_SIZE
                                : _SC_LEVEL3_CACHE_SIZE;
  const long v = ::sysconf(name);
  if (v > 0) {
    return static_cast<std::size_t>(v);
  }
#else
  (void)level;
#endif
  return fallback;
}

}  // namespace

tier native_tier() {
  static const tier best = [] {
    for (tier t : {tier::avx512, tier::avx2, tier::neon}) {
      if (cpu_supports(t) && compiled_set(t) != nullptr) {
        return t;
      }
    }
    return tier::scalar;
  }();
  return best;
}

bool tier_available(tier t) {
  if (t == tier::automatic) {
    return true;
  }
  return cpu_supports(t) && compiled_set(t) != nullptr;
}

tier resolve_tier(tier requested) {
  // Re-read the environment on every call (not cached): tests flip the
  // override between plans, and plans are made rarely.
  if (const char* env = std::getenv("INPLACE_FORCE_KERNEL_TIER")) {
    if (*env != '\0') {
      const forced_mode fm = parse_forced_mode(env);
      if (fm.t.has_value()) {
        requested = *fm.t;
      } else {
        warn_unknown_force_env(env);
      }
    }
  }
  if (requested == tier::automatic) {
    requested = native_tier();
  }
  while (requested != tier::scalar && !tier_available(requested)) {
    requested = degrade(requested);
  }
  return requested;
}

bool forced_tile_mode() {
  // Same per-call env read as resolve_tier: the two are always queried
  // together at plan time and must see a consistent snapshot.
  if (const char* env = std::getenv("INPLACE_FORCE_KERNEL_TIER")) {
    if (*env != '\0') {
      const forced_mode fm = parse_forced_mode(env);
      if (!fm.t.has_value()) {
        warn_unknown_force_env(env);
      }
      return fm.tile;
    }
  }
  return false;
}

const kernel_set& set_for(tier t) {
  if (t == tier::automatic) {
    t = native_tier();
  }
  while (t != tier::scalar && !tier_available(t)) {
    t = degrade(t);
  }
  const kernel_set* ks = compiled_set(t);
  return ks != nullptr ? *ks : *detail::scalar_set();
}

const cache_sizes& probed_caches() {
  static const cache_sizes sizes = [] {
    cache_sizes cs;
    cs.l1_bytes = probe_cache_level(1, cs.l1_bytes);
    cs.l2_bytes = probe_cache_level(2, cs.l2_bytes);
    cs.l3_bytes = probe_cache_level(3, cs.l3_bytes);
    // Some cores report no L3 (sysconf 0 falls back above, but guard a
    // probed L3 smaller than L2 too): treat the largest level as "the"
    // last-level cache for the streaming threshold.
    if (cs.l3_bytes < cs.l2_bytes) {
      cs.l3_bytes = cs.l2_bytes;
    }
    return cs;
  }();
  return sizes;
}

namespace {

/// Strict full-consumption size parser for the env overrides, matching
/// the discipline parse_bench_args uses (util/bench_harness.cpp): digits
/// only — which rejects signs, spaces and trailing junk outright, and in
/// particular keeps "-1" from silently wrapping to ULLONG_MAX through
/// strtoull's documented negation — plus an ERANGE/size_t range check so
/// overflow is a loud rejection instead of a silent saturation to
/// ULLONG_MAX.
std::optional<std::size_t> parse_env_size(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return std::nullopt;
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      v > std::numeric_limits<std::size_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(v);
}

/// Reads an env-var size override; warns (once per variable) and falls
/// back when the value does not parse strictly.
std::optional<std::size_t> env_size_override(const char* name,
                                             bool& warned) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return std::nullopt;
  }
  if (const auto v = parse_env_size(env)) {
    return v;
  }
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "inplace: ignoring invalid %s='%s' (want an unsigned "
                 "integer <= SIZE_MAX, digits only: no sign, no suffix, "
                 "no whitespace)\n",
                 name, env);
  }
  return std::nullopt;
}

}  // namespace

std::size_t streaming_threshold() {
  // Env read per call for the same reason as resolve_tier: tests set
  // INPLACE_NT_THRESHOLD=0 to force streaming on small shapes.
  static bool warned = false;
  if (const auto v = env_size_override("INPLACE_NT_THRESHOLD", warned)) {
    return *v;
  }
  return probed_caches().l3_bytes;
}

bool streaming_profitable(std::size_t working_set_bytes, tier t) {
  const bool has_nt = t == tier::avx2 || t == tier::avx512;
  return has_nt && working_set_bytes >= streaming_threshold();
}

std::size_t row_kernel_min_line_bytes() {
  // Env read per call, same pattern as streaming_threshold: tests set
  // INPLACE_ROW_KERNEL_MIN_LINE=0 to exercise the row kernels on small
  // shapes.
  static bool warned = false;
  if (const auto v =
          env_size_override("INPLACE_ROW_KERNEL_MIN_LINE", warned)) {
    return *v;
  }
  return probed_caches().l2_bytes;
}

}  // namespace inplace::kernels
