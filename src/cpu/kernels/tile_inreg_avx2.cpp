// AVX2 in-register tile transposes: 8x8 f32-width and 4x4..8x4 f64-width
// register tiles, ladders generated from the static_transpose schedules
// (see tile_ladder.hpp).  Compiled with -mavx2 via per-TU flags
// (src/CMakeLists.txt); without them this TU is the nullptr stub and
// resolve_tier never hands the tile slots out.
//
// Instruction mapping: the rotation ladders are vpblendd chains
// (_mm256_blend_epi32 — immediate mask, 1-cycle, port-parallel), the row
// shuffles are vpermd (_mm256_permutevar8x32_epi32) for 4-byte lanes and
// vpermq (_mm256_permute4x64_epi64, immediate control) for 8-byte lanes.
// 8 registers in flight plus the blend temporaries fill the 16-entry ymm
// file, which caps max_regs at 8 for both widths.

#include "cpu/kernels/tile_inreg.hpp"

#if defined(INPLACE_KERNEL_COMPILE_AVX2)

#include <immintrin.h>

#include "cpu/kernels/tile_ladder.hpp"

namespace inplace::kernels {
namespace {

using detail_tile::packed_lane;

/// Duplicates each of `n` mask bits into pairs: 64-bit lane masks for
/// _mm256_blend_epi32's 32-bit-lane immediate.
constexpr unsigned dup_mask_bits(unsigned mask, unsigned n) {
  unsigned out = 0;
  for (unsigned t = 0; t < n; ++t) {
    if ((mask >> t) & 1u) {
      out |= 3u << (2u * t);
    }
  }
  return out;
}

struct avx2_u32_traits {
  using vec = __m256i;
  using lane = u32lane;
  static constexpr unsigned lanes = 8;
  static constexpr unsigned max_regs = 8;

  static inline vec load(const lane* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static inline void store(lane* p, vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  template <unsigned Mask>
  static inline vec blend(vec a, vec b) {
    return _mm256_blend_epi32(a, b, static_cast<int>(Mask));
  }
  template <std::uint64_t P>
  static inline vec permute(vec v) {
    const __m256i idx = _mm256_setr_epi32(
        static_cast<int>(packed_lane(P, 0)), static_cast<int>(packed_lane(P, 1)),
        static_cast<int>(packed_lane(P, 2)), static_cast<int>(packed_lane(P, 3)),
        static_cast<int>(packed_lane(P, 4)), static_cast<int>(packed_lane(P, 5)),
        static_cast<int>(packed_lane(P, 6)),
        static_cast<int>(packed_lane(P, 7)));
    return _mm256_permutevar8x32_epi32(v, idx);
  }
};

struct avx2_u64_traits {
  using vec = __m256i;
  using lane = u64lane;
  static constexpr unsigned lanes = 4;
  static constexpr unsigned max_regs = 8;

  static inline vec load(const lane* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static inline void store(lane* p, vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  template <unsigned Mask>
  static inline vec blend(vec a, vec b) {
    // constexpr local: the intrinsic needs an 8-bit immediate, and an
    // unevaluated constexpr call is not folded at -O0 (Checked builds).
    constexpr int imm = static_cast<int>(dup_mask_bits(Mask, lanes));
    return _mm256_blend_epi32(a, b, imm);
  }
  template <std::uint64_t P>
  static inline vec permute(vec v) {
    constexpr int imm =
        static_cast<int>(packed_lane(P, 0) | packed_lane(P, 1) << 2u |
                         packed_lane(P, 2) << 4u | packed_lane(P, 3) << 6u);
    return _mm256_permute4x64_epi64(v, imm);
  }
};

}  // namespace

const tile_entry* tile_inreg_avx2() {
  static const tile_entry e = [] {
    tile_entry t;
    t.tile_pass_u32 = &detail_tile::tile_pass_entry<avx2_u32_traits>;
    t.tile_pass_u64 = &detail_tile::tile_pass_entry<avx2_u64_traits>;
    t.tile_lanes_u32 = avx2_u32_traits::lanes;
    t.tile_lanes_u64 = avx2_u64_traits::lanes;
    t.tile_max_regs_u32 = avx2_u32_traits::max_regs;
    t.tile_max_regs_u64 = avx2_u64_traits::max_regs;
    return t;
  }();
  return &e;
}

}  // namespace inplace::kernels

#else  // !INPLACE_KERNEL_COMPILE_AVX2

namespace inplace::kernels {
const tile_entry* tile_inreg_avx2() { return nullptr; }
}  // namespace inplace::kernels

#endif
