// NEON tier (aarch64).  NEON has no hardware gather/scatter, so the
// shuffle kernels keep the portable loops — compiled in this TU, where
// the aarch64 baseline guarantees NEON and GCC auto-vectorizes the
// contiguous copies — and the win over tier::scalar comes from the
// software prefetch the portable loops lack (prfm via
// __builtin_prefetch in affine_prefetcher).  aarch64 also has no
// non-temporal store intrinsic in plain C (STNP is not exposed), so the
// streaming slots stay temporal and fence stays a no-op.

#include "cpu/kernels/kernels_common.hpp"
#include "cpu/kernels/tile_inreg.hpp"

#if defined(INPLACE_KERNEL_COMPILE_NEON)

namespace inplace::kernels::detail {
namespace {

template <typename U, std::size_t Dist>
void gather_affine_neon(U* __restrict dst, const U* __restrict src,
                        std::size_t count, std::uint64_t start,
                        std::uint64_t step, std::uint64_t mod) {
  constexpr std::size_t kBlock = 8;
  if (count < 2 * kBlock) {
    gather_affine_portable(dst, src, count, start, step, mod);
    return;
  }
  affine_prefetcher pf(src, sizeof(U), start, step, mod, Dist);
  std::uint64_t idx = start;
  std::size_t j = 0;
  for (; j + kBlock <= count; j += kBlock) {
    pf.issue(kBlock);
    for (std::size_t l = 0; l < kBlock; ++l) {
      dst[j + l] = src[idx];
      idx += step;
      if (idx >= mod) {
        idx -= mod;
      }
    }
  }
  gather_affine_portable(dst + j, src, count - j, idx, step, mod);
}

template <typename U>
void gather_index_neon(U* dst, const U* src,
                       const std::uint64_t* __restrict offs,
                       std::size_t count, bool /*stream_dst*/) {
  for (std::size_t j = 0; j < count; ++j) {
    if (j + index_prefetch_dist < count) {
      prefetch_read(src + offs[j + index_prefetch_dist]);
    }
    dst[j] = src[offs[j]];
  }
}

}  // namespace

const kernel_set* neon_set() {
  static const kernel_set ks = [] {
    kernel_set s = make_portable_set(tier::neon);
    s.gather_affine_u32 =
        &gather_affine_neon<u32lane, affine_prefetch_dist_u32>;
    s.gather_affine_u64 =
        &gather_affine_neon<u64lane, affine_prefetch_dist_u64>;
    s.gather_index_u32 = &gather_index_neon<u32lane>;
    s.gather_index_u64 = &gather_index_neon<u64lane>;
    merge_tile_entry(s, tile_inreg_neon());
    return s;
  }();
  return &ks;
}

}  // namespace inplace::kernels::detail

#else  // !INPLACE_KERNEL_COMPILE_NEON

namespace inplace::kernels::detail {

const kernel_set* neon_set() { return nullptr; }

}  // namespace inplace::kernels::detail

#endif
