// AVX-512 in-register tile transposes: up to 16x16 f32-width and 16x8
// f64-width register tiles from the static_transpose schedules.  Compiled
// with -mavx512f/vl/bw/dq per-TU flags (src/CMakeLists.txt); stub
// otherwise.
//
// Instruction mapping: rotation ladder steps are mask blends
// (_mm512_mask_blend_epi32/epi64 — the constant lane mask rides in a
// kmask register instead of an immediate), row shuffles are the
// full-width cross-lane permutes vpermd/vpermq
// (_mm512_permutexvar_epi32/epi64) with constant index vectors.  The
// 32-entry zmm file holds 16 registers plus blend temporaries, so
// max_regs is 16 for both widths.

#include "cpu/kernels/tile_inreg.hpp"

#if defined(INPLACE_KERNEL_COMPILE_AVX512)

#include <immintrin.h>

#include "cpu/kernels/tile_ladder.hpp"

namespace inplace::kernels {
namespace {

using detail_tile::packed_lane;

struct avx512_u32_traits {
  using vec = __m512i;
  using lane = u32lane;
  static constexpr unsigned lanes = 16;
  static constexpr unsigned max_regs = 16;

  static inline vec load(const lane* p) { return _mm512_loadu_si512(p); }
  static inline void store(lane* p, vec v) { _mm512_storeu_si512(p, v); }
  template <unsigned Mask>
  static inline vec blend(vec a, vec b) {
    return _mm512_mask_blend_epi32(static_cast<__mmask16>(Mask), a, b);
  }
  template <std::uint64_t P>
  static inline vec permute(vec v) {
    const __m512i idx = _mm512_setr_epi32(
        static_cast<int>(packed_lane(P, 0)), static_cast<int>(packed_lane(P, 1)),
        static_cast<int>(packed_lane(P, 2)), static_cast<int>(packed_lane(P, 3)),
        static_cast<int>(packed_lane(P, 4)), static_cast<int>(packed_lane(P, 5)),
        static_cast<int>(packed_lane(P, 6)), static_cast<int>(packed_lane(P, 7)),
        static_cast<int>(packed_lane(P, 8)), static_cast<int>(packed_lane(P, 9)),
        static_cast<int>(packed_lane(P, 10)),
        static_cast<int>(packed_lane(P, 11)),
        static_cast<int>(packed_lane(P, 12)),
        static_cast<int>(packed_lane(P, 13)),
        static_cast<int>(packed_lane(P, 14)),
        static_cast<int>(packed_lane(P, 15)));
    // maskz form with an all-ones mask: same vpermd, but avoids the
    // _mm512_undefined_epi32 passthrough GCC warns about when inlined.
    return _mm512_maskz_permutexvar_epi32(static_cast<__mmask16>(0xFFFF),
                                          idx, v);
  }
};

struct avx512_u64_traits {
  using vec = __m512i;
  using lane = u64lane;
  static constexpr unsigned lanes = 8;
  static constexpr unsigned max_regs = 16;

  static inline vec load(const lane* p) { return _mm512_loadu_si512(p); }
  static inline void store(lane* p, vec v) { _mm512_storeu_si512(p, v); }
  template <unsigned Mask>
  static inline vec blend(vec a, vec b) {
    return _mm512_mask_blend_epi64(static_cast<__mmask8>(Mask), a, b);
  }
  template <std::uint64_t P>
  static inline vec permute(vec v) {
    const __m512i idx = _mm512_setr_epi64(
        static_cast<long long>(packed_lane(P, 0)),
        static_cast<long long>(packed_lane(P, 1)),
        static_cast<long long>(packed_lane(P, 2)),
        static_cast<long long>(packed_lane(P, 3)),
        static_cast<long long>(packed_lane(P, 4)),
        static_cast<long long>(packed_lane(P, 5)),
        static_cast<long long>(packed_lane(P, 6)),
        static_cast<long long>(packed_lane(P, 7)));
    // maskz form with an all-ones mask: same vpermq, warning-free (see
    // the epi32 note above).
    return _mm512_maskz_permutexvar_epi64(static_cast<__mmask8>(0xFF), idx,
                                          v);
  }
};

}  // namespace

const tile_entry* tile_inreg_avx512() {
  static const tile_entry e = [] {
    tile_entry t;
    t.tile_pass_u32 = &detail_tile::tile_pass_entry<avx512_u32_traits>;
    t.tile_pass_u64 = &detail_tile::tile_pass_entry<avx512_u64_traits>;
    t.tile_lanes_u32 = avx512_u32_traits::lanes;
    t.tile_lanes_u64 = avx512_u64_traits::lanes;
    t.tile_max_regs_u32 = avx512_u32_traits::max_regs;
    t.tile_max_regs_u64 = avx512_u64_traits::max_regs;
    return t;
  }();
  return &e;
}

}  // namespace inplace::kernels

#else  // !INPLACE_KERNEL_COMPILE_AVX512

namespace inplace::kernels {
const tile_entry* tile_inreg_avx512() { return nullptr; }
}  // namespace inplace::kernels

#endif
