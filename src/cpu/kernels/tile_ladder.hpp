#pragma once
// The generator that turns src/simd/static_transpose.hpp's compile-time
// shuffle schedules into real SIMD instruction sequences.  Everything the
// warp simulator proves about the M x W register transpose is consumed
// here as constexpr tables:
//
//   - the two per-lane rotations (Eq. 23 prerotate, Eq. 32 p) become
//     <= ceil(log2 M) blend steps — step k selects, per lane, between a
//     register and the register 2^k below it, with the constant blend
//     mask read off bit k of the lane's rotation amount.  The masks
//     compose additively mod M, so the chain realizes reg[(r+amt) % M]
//     exactly as detail_static::rotate_lanes does (and as the simulator
//     counts);
//   - the row shuffles (Eq. 31 shuffle_src / Eq. 24 shuffle_src_inv)
//     become one constant in-register lane permute per register;
//   - the register renames (Eq. 33 q / its inverse) are folded into the
//     load order (r2c) or the store order (c2r) and cost nothing.
//
// A Traits type supplies the ISA: its vector type, lane count, unaligned
// load/store, a constant-mask blend and a constant-vector lane permute.
// Masks are passed as unsigned NTTPs (bit t = lane t takes the rotated
// source) and permutes as packed-nibble u64 NTTPs (4 bits per lane), so
// ISAs whose instructions demand immediates (_mm256_blend_epi32,
// _mm256_permute4x64_epi64) receive genuine compile-time constants.
//
// Everything is fully unrolled through index_sequence pack expansion over
// local `vec regs[M]` arrays; M is bounded by Traits::max_regs, chosen so
// regs + the blend temporaries fit the architectural register file.

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "cpu/kernels/tile_inreg.hpp"
#include "simd/static_transpose.hpp"

namespace inplace::kernels::detail_tile {

/// Lane j's source index from a packed-nibble permute constant.
constexpr unsigned packed_lane(std::uint64_t p, unsigned j) {
  return static_cast<unsigned>(p >> (4u * j)) & 0xFu;
}

template <typename Traits, unsigned M>
struct tile_ladder {
  using vec = typename Traits::vec;
  using lane = typename Traits::lane;
  static constexpr unsigned W = Traits::lanes;
  using math = simd::static_tile_math<M, W>;
  static_assert(M >= 2 && M <= Traits::max_regs);
  static_assert(W <= 16, "packed-nibble permute constants hold 16 lanes");

  static constexpr unsigned ceil_log2(unsigned x) {
    unsigned k = 0;
    while ((1u << k) < x) {
      ++k;
    }
    return k;
  }
  static constexpr unsigned steps = ceil_log2(M);

  enum class table_id : std::uint8_t { prerotate, p_rot };

  /// The per-lane rotation amount rotate_lanes would apply.
  static constexpr unsigned lane_amt(table_id id, unsigned t, bool invert) {
    const unsigned raw = (id == table_id::prerotate)
                             ? unsigned{math::prerotate[t]}
                             : unsigned{math::p_rot[t]};
    unsigned amt = raw % M;
    if (invert && amt != 0) {
      amt = M - amt;
    }
    return amt;
  }

  /// Blend mask for ladder step k: bit t set selects the rotated source
  /// for lane t.  Depends only on the lane, never the register, so one
  /// constant serves the whole step.
  static constexpr unsigned step_mask(table_id id, bool invert, unsigned k) {
    unsigned mask = 0;
    for (unsigned t = 0; t < W; ++t) {
      if ((lane_amt(id, t, invert) >> k) & 1u) {
        mask |= 1u << t;
      }
    }
    return mask;
  }

  template <table_id Id, bool Invert, unsigned K, std::size_t... R>
  static inline void ladder_step(vec (&regs)[M], std::index_sequence<R...>) {
    constexpr unsigned mask = step_mask(Id, Invert, K);
    if constexpr (mask != 0) {
      constexpr unsigned shift = 1u << K;
      vec rot[M] = {regs[(R + shift) % M]...};
      ((regs[R] = Traits::template blend<mask>(regs[R], rot[R])), ...);
    }
  }

  template <table_id Id, bool Invert, std::size_t... K>
  static inline void ladder_impl(vec (&regs)[M], std::index_sequence<K...>) {
    (ladder_step<Id, Invert, static_cast<unsigned>(K)>(
         regs, std::make_index_sequence<M>{}),
     ...);
  }

  /// reg[r] <- reg[(r + amt(lane)) % M] per lane, as the blend chain.
  template <table_id Id, bool Invert>
  static inline void ladder(vec (&regs)[M]) {
    ladder_impl<Id, Invert>(regs, std::make_index_sequence<steps>{});
  }

  /// Row shuffle for register r as a packed-nibble permute constant.
  static constexpr std::uint64_t pack_row(bool inv, unsigned r) {
    std::uint64_t p = 0;
    for (unsigned j = 0; j < W; ++j) {
      const unsigned s = inv ? unsigned{math::shuffle_src_inv[r][j]}
                             : unsigned{math::shuffle_src[r][j]};
      p |= static_cast<std::uint64_t>(s) << (4u * j);
    }
    return p;
  }
  static constexpr std::uint64_t identity_row = [] {
    std::uint64_t p = 0;
    for (unsigned j = 0; j < W; ++j) {
      p |= static_cast<std::uint64_t>(j) << (4u * j);
    }
    return p;
  }();

  template <std::uint64_t P>
  static inline vec permute_one(vec v) {
    if constexpr (P == identity_row) {
      return v;
    } else {
      return Traits::template permute<P>(v);
    }
  }

  template <bool Inv, std::size_t... R>
  static inline void permute_rows(vec (&regs)[M], std::index_sequence<R...>) {
    ((regs[R] = permute_one<pack_row(Inv, static_cast<unsigned>(R))>(regs[R])),
     ...);
  }

  /// static_r2c on one block: q_inv-ordered loads (rename for free),
  /// inverted p ladder, d' row permutes, inverted prerotate ladder,
  /// contiguous stores.
  template <std::size_t... R>
  static inline void run_forward(lane* data, std::index_sequence<R...> seq) {
    vec regs[M] = {
        Traits::load(data + std::size_t{math::q_inv_perm[R]} * W)...};
    ladder<table_id::p_rot, true>(regs);
    permute_rows<true>(regs, seq);
    if constexpr (math::c > 1) {
      ladder<table_id::prerotate, true>(regs);
    }
    (Traits::store(data + R * W, regs[R]), ...);
  }

  /// static_c2r on one block: contiguous loads, prerotate ladder, row
  /// shuffle permutes, p ladder, q-ordered stores (rename for free).
  template <std::size_t... R>
  static inline void run_inverse(lane* data, std::index_sequence<R...> seq) {
    vec regs[M] = {Traits::load(data + R * W)...};
    if constexpr (math::c > 1) {
      ladder<table_id::prerotate, false>(regs);
    }
    permute_rows<false>(regs, seq);
    ladder<table_id::p_rot, false>(regs);
    (Traits::store(data + R * W, regs[std::size_t{math::q_perm[R]}]), ...);
  }
};

/// The per-M loop body: nblocks contiguous blocks of M registers each,
/// all state in registers between the loads and the stores.
template <typename Traits, unsigned M>
void tile_block_pass(typename Traits::lane* data, std::size_t nblocks,
                     bool forward) {
  using ladder = tile_ladder<Traits, M>;
  constexpr std::size_t stride = std::size_t{M} * Traits::lanes;
  if (forward) {
    for (std::size_t blk = 0; blk < nblocks; ++blk, data += stride) {
      ladder::run_forward(data, std::make_index_sequence<M>{});
    }
  } else {
    for (std::size_t blk = 0; blk < nblocks; ++blk, data += stride) {
      ladder::run_inverse(data, std::make_index_sequence<M>{});
    }
  }
}

/// Plain aggregate for the per-M dispatch table (a std::array template
/// argument would strip the lane type's may_alias attribute and GCC
/// warns; a C array member does not name the type as a template
/// argument).
template <typename Traits>
struct tile_table {
  using fn = void (*)(typename Traits::lane*, std::size_t, bool);
  fn entries[Traits::max_regs - 1];
};

template <typename Traits, std::size_t... Ms>
constexpr tile_table<Traits> make_tile_table(std::index_sequence<Ms...>) {
  return {{&tile_block_pass<Traits, static_cast<unsigned>(Ms) + 2>...}};
}

/// The kernel_set-shaped entry point: dispatches on nregs to the
/// fully-unrolled instantiation.  Precondition (enforced by plan-time
/// gating): 2 <= nregs <= Traits::max_regs.
template <typename Traits>
void tile_pass_entry(typename Traits::lane* data, std::size_t nregs,
                     std::size_t nblocks, bool forward) {
  static constexpr tile_table<Traits> table = make_tile_table<Traits>(
      std::make_index_sequence<Traits::max_regs - 1>{});
  table.entries[nregs - 2](data, nblocks, forward);
}

}  // namespace inplace::kernels::detail_tile
