// NEON in-register tile transposes: up to 16x4 f32-width and 16x2
// f64-width register tiles from the static_transpose schedules.  NEON is
// the aarch64 baseline, so the TU needs no extra -m flags — just the
// INPLACE_KERNEL_COMPILE_NEON definition (src/CMakeLists.txt); on other
// architectures it is the nullptr stub.
//
// Instruction mapping: rotation ladder steps are bitwise selects (vbsl,
// the NEON form of the trn/zip-style two-source lane merge) against
// constant lane masks, 4-byte row shuffles are single-register byte
// tables (vqtbl1q — a q-register holds only 4 f32 lanes, so every
// shuffle stays within one register), and 2-lane 8-byte shuffles reduce
// to identity / vext rotation / lane dup.  The 32-entry q-register file
// holds 16 registers plus select temporaries, so max_regs is 16.

#include "cpu/kernels/tile_inreg.hpp"

#if defined(INPLACE_KERNEL_COMPILE_NEON)

#include <arm_neon.h>

#include "cpu/kernels/tile_ladder.hpp"

namespace inplace::kernels {
namespace {

using detail_tile::packed_lane;

struct neon_u32_traits {
  using vec = uint32x4_t;
  using lane = u32lane;
  static constexpr unsigned lanes = 4;
  static constexpr unsigned max_regs = 16;

  static inline vec load(const lane* p) {
    return vld1q_u32(reinterpret_cast<const std::uint32_t*>(p));
  }
  static inline void store(lane* p, vec v) {
    vst1q_u32(reinterpret_cast<std::uint32_t*>(p), v);
  }
  template <unsigned Mask>
  static inline vec blend(vec a, vec b) {
    const std::uint32_t bits[4] = {
        (Mask & 1u) ? ~std::uint32_t{0} : 0u,
        (Mask & 2u) ? ~std::uint32_t{0} : 0u,
        (Mask & 4u) ? ~std::uint32_t{0} : 0u,
        (Mask & 8u) ? ~std::uint32_t{0} : 0u,
    };
    return vbslq_u32(vld1q_u32(bits), b, a);
  }
  template <std::uint64_t P>
  static inline vec permute(vec v) {
    std::uint8_t idx[16];
    for (unsigned j = 0; j < 4; ++j) {
      const unsigned s = packed_lane(P, j);
      for (unsigned byte = 0; byte < 4; ++byte) {
        idx[4 * j + byte] = static_cast<std::uint8_t>(4 * s + byte);
      }
    }
    return vreinterpretq_u32_u8(
        vqtbl1q_u8(vreinterpretq_u8_u32(v), vld1q_u8(idx)));
  }
};

struct neon_u64_traits {
  using vec = uint64x2_t;
  using lane = u64lane;
  static constexpr unsigned lanes = 2;
  static constexpr unsigned max_regs = 16;

  static inline vec load(const lane* p) {
    return vld1q_u64(reinterpret_cast<const std::uint64_t*>(p));
  }
  static inline void store(lane* p, vec v) {
    vst1q_u64(reinterpret_cast<std::uint64_t*>(p), v);
  }
  template <unsigned Mask>
  static inline vec blend(vec a, vec b) {
    const std::uint64_t bits[2] = {
        (Mask & 1u) ? ~std::uint64_t{0} : 0u,
        (Mask & 2u) ? ~std::uint64_t{0} : 0u,
    };
    return vbslq_u64(vld1q_u64(bits), b, a);
  }
  template <std::uint64_t P>
  static inline vec permute(vec v) {
    constexpr unsigned lo = packed_lane(P, 0);
    constexpr unsigned hi = packed_lane(P, 1);
    if constexpr (lo == 0 && hi == 1) {
      return v;
    } else if constexpr (lo == 1 && hi == 0) {
      return vextq_u64(v, v, 1);
    } else if constexpr (lo == 0 && hi == 0) {
      return vdupq_laneq_u64(v, 0);
    } else {
      return vdupq_laneq_u64(v, 1);
    }
  }
};

}  // namespace

const tile_entry* tile_inreg_neon() {
  static const tile_entry e = [] {
    tile_entry t;
    t.tile_pass_u32 = &detail_tile::tile_pass_entry<neon_u32_traits>;
    t.tile_pass_u64 = &detail_tile::tile_pass_entry<neon_u64_traits>;
    t.tile_lanes_u32 = neon_u32_traits::lanes;
    t.tile_lanes_u64 = neon_u64_traits::lanes;
    t.tile_max_regs_u32 = neon_u32_traits::max_regs;
    t.tile_max_regs_u64 = neon_u64_traits::max_regs;
    return t;
  }();
  return &e;
}

}  // namespace inplace::kernels

#else  // !INPLACE_KERNEL_COMPILE_NEON

namespace inplace::kernels {
const tile_entry* tile_inreg_neon() { return nullptr; }
}  // namespace inplace::kernels

#endif
