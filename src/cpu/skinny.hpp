#pragma once
// Section 6.1: specialized transposition for the tall, narrow arrays that
// arise when converting Arrays of Structures to Structures of Arrays.
// Preconditions (enforced by the planner): n <= skinny_col_limit and
// m > n.  All column operations act over the full (tiny) row width, so
// every pass streams whole rows — the CPU analogue of the paper's "perform
// all column operations in on-chip memory".
//
// C2R runs in three streaming passes (6 element touches, Theorem 6):
//   1. pre-rotation fused with the row shuffle: one top-down sweep with a
//      (c-1)-row head buffer absorbing the wrap-around reads,
//   2. the rotation component p of the column shuffle (residuals j < n),
//   3. the static row permutation q as whole-row cycle following.
// R2C is the mirror image, with the final fused pass sweeping bottom-up.
//
// Each pass is a standalone helper and the R2C helpers are the exact
// pass-wise inverses of the C2R helpers; the failure-rollback path in
// core/execute.hpp replays the inverses of completed passes when an
// execution throws at a stage boundary.

#include <algorithm>
#include <cstdint>

#include "core/equations.hpp"
#include "core/failpoint.hpp"
#include "core/permute.hpp"
#include "core/recovery.hpp"
#include "core/rotate.hpp"
#include "core/telemetry.hpp"

namespace inplace::detail {

template <typename T>
void reserve_skinny(workspace<T>& ws, std::uint64_t m, std::uint64_t n) {
  // inplace-lint: allow-next(raw-alloc): acquisition-funnel entry — the
  // skinny engine sizes its workspace here, before any stage runs
  ws.reserve(m, n, /*width=*/n);
}

/// The narrow-row streaming gate shared by both directions: a narrow row
/// cannot amortize non-temporal write-combining and fencing (measured
/// 2.6x slower end-to-end at n = 16 before this gate), so narrow-row
/// plans stay temporal regardless of the matrix-scale streaming decision.
template <typename T>
[[nodiscard]] inline bool skinny_stream_ok(std::uint64_t n, bool stream) {
  return stream && n * sizeof(T) >= kernels::stream_min_copy_bytes;
}

/// No-op row-block transform: the default hook for the fused passes
/// below.  The in-register tile tier substitutes a real transform
/// (core/execute.hpp's tile runner) that rewrites whole rows in place.
struct no_block_transform {
  template <typename T>
  void operator()(T* /*rows*/, std::uint64_t /*nrows*/) const noexcept {}
};

/// C2R pass 1 — fused pre-rotation (gather, Eq. 23) + row shuffle
/// (scatter, Eq. 24): tmp[d'_i(j)] <- A[(i + ⌊j/b⌋) mod m][j].  Sources
/// sit at or below the sweep row except for wrapped reads, which the head
/// buffer (original rows [0, c-1)) serves.  Inverse of
/// skinny_fused_gather.
///
/// `block(rows, k)` is an optional in-place transform of k contiguous
/// rows, applied to every row exactly once *before* the pass consumes it
/// — i.e. the pass computes (scatter ∘ block) with no extra sweep.  The
/// gather window at row i reads rows [i, i+c), so the prologue
/// transforms rows [0, c) (before the head copies, which must capture
/// transformed rows) and each later iteration transforms the row sliding
/// into the window.  The tile tier fuses its per-slab register transpose
/// here; the default is a no-op.
template <typename T, typename Math, typename BlockFn = no_block_transform>
void skinny_fused_scatter(T* a, const Math& mm, workspace<T>& ws,
                          const kernels::kernel_set* ks, bool stream,
                          BlockFn block = BlockFn{}) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  T* tmp = ws.line.data();
  T* head = ws.head.data();
  block(a, mm.c);  // c = gcd(m, n) <= m
  const std::uint64_t head_rows = mm.needs_prerotate() ? mm.c - 1 : 0;
  for (std::uint64_t r = 0; r < head_rows; ++r) {
    std::copy(a + r * n, a + (r + 1) * n, head + r * n);
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    // The fused gather reads rows [i, i + c) — the next row's window
    // slides down by one, so prefetch the row entering it.
    if (i + mm.c < m) {
      kernels::prefetch_read(a + (i + mm.c) * n);
    }
    if (i > 0 && i + mm.c - 1 < m) {
      block(a + (i + mm.c - 1) * n, 1);
    }
    d_prime_stepper step(mm, i);
    for (std::uint64_t j = 0; j < n; ++j, step.advance()) {
      const std::uint64_t s = i + step.rotation();  // ⌊j/b⌋
      tmp[step.value()] = s < m ? a[s * n + j] : head[(s - m) * n + j];
    }
    copy_back(a + i * n, tmp, n, ks, stream);
  }
}

/// C2R pass 2 — rotation component p_j of the column shuffle.  Offsets
/// are exactly j in [0, n) < m, so the fine streaming pass applies
/// directly.  Inverse of skinny_rotate_p_inv.
template <typename T, typename Math>
void skinny_rotate_p(T* a, const Math& mm, workspace<T>& ws,
                     const kernels::kernel_set* ks, bool stream) {
  const std::uint64_t n = mm.n;
  for (std::uint64_t j = 0; j < n; ++j) {
    ws.offsets[j] = mm.p_offset(j);
  }
  fine_rotate_group(a, mm.m, n, /*j0=*/0, /*width=*/n, ws.offsets.data(),
                    ws.head.data(), ks, ws.index.data(), stream);
}

/// R2C pass 2 — inverse rotation p^-1 (offsets (m - j) mod m; the group
/// machinery normalizes them to a coarse whole-row rotation plus small
/// residuals).  Inverse of skinny_rotate_p.
template <typename T, typename Math>
void skinny_rotate_p_inv(T* a, const Math& mm, workspace<T>& ws,
                         const kernels::kernel_set* ks, bool stream) {
  rotate_group_cache_aware(
      a, mm.m, mm.n, /*j0=*/0, /*w=*/mm.n,
      [&](std::uint64_t j) { return mm.p_inv_offset(j); }, ws, ks, stream);
}

/// C2R pass 3 — static row permutation q, moving whole contiguous rows.
/// The cycles depend only on the plan's shape, so a memo replays them
/// without re-discovery.  Inverse of skinny_permute_q_inv.
template <typename T, typename Math>
void skinny_permute_q(T* a, const Math& mm, workspace<T>& ws,
                      cycle_memo* memo, const kernels::kernel_set* ks,
                      bool stream) {
  const auto q = [&](std::uint64_t i) { return mm.q(i); };
  std::vector<std::uint64_t>& starts =
      memo != nullptr ? memo->starts : ws.cycle_starts;
  if (memo == nullptr || !memo->ready) {
    find_cycles(mm.m, q, ws.visited, starts);
    if (memo != nullptr) {
      memo->ready = true;
    }
  }
  permute_rows_in_group(a, mm.n, /*j0=*/0, /*width=*/mm.n, q, starts,
                        ws.line.data(), ks, stream);
}

/// R2C pass 1 — inverse row permutation q^-1, whole-row cycle following
/// (memoized the same way as skinny_permute_q).  Inverse of
/// skinny_permute_q.
template <typename T, typename Math>
void skinny_permute_q_inv(T* a, const Math& mm, workspace<T>& ws,
                          cycle_memo* memo, const kernels::kernel_set* ks,
                          bool stream) {
  const auto q_inv = [&](std::uint64_t i) { return mm.q_inv(i); };
  std::vector<std::uint64_t>& starts =
      memo != nullptr ? memo->starts : ws.cycle_starts;
  if (memo == nullptr || !memo->ready) {
    find_cycles(mm.m, q_inv, ws.visited, starts);
    if (memo != nullptr) {
      memo->ready = true;
    }
  }
  permute_rows_in_group(a, mm.n, /*j0=*/0, /*width=*/mm.n, q_inv, starts,
                        ws.line.data(), ks, stream);
}

/// R2C pass 3 — row shuffle (gather d') fused with the inverse
/// pre-rotation (gather offset -⌊j/b⌋): row i, col j <- row
/// (i - ⌊j/b⌋) mod m, col d'_s(j).  Sweeping bottom-up keeps unwrapped
/// sources unwritten; the wrapped reads (into the top rows written
/// first) come from a saved tail.  Inverse of skinny_fused_scatter.
///
/// `block(row, 1)` is the mirror of skinny_fused_scatter's hook, applied
/// to each assembled scratch row just before its copy-back — the pass
/// computes (block ∘ gather) with no extra sweep.  Every source the
/// gather reads (in-matrix or saved tail) is a pre-transform value, so
/// fusing the transform after the gather keeps the two passes exact
/// inverses when the hooks are inverses.
template <typename T, typename Math, typename BlockFn = no_block_transform>
void skinny_fused_gather(T* a, const Math& mm, workspace<T>& ws,
                         const kernels::kernel_set* ks, bool stream,
                         BlockFn block = BlockFn{}) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  T* tmp = ws.line.data();
  T* head = ws.head.data();
  const std::uint64_t tail_rows = mm.needs_prerotate() ? mm.c - 1 : 0;
  const std::uint64_t tail_base = m - tail_rows;
  for (std::uint64_t r = 0; r < tail_rows; ++r) {
    std::copy(a + (tail_base + r) * n, a + (tail_base + r + 1) * n,
              head + r * n);
  }
  // Index simplification: with s = (i - ⌊j/b⌋) mod m we have
  // s + ⌊j/b⌋ ≡ i (mod m), so d'_s(j) = ((s + ⌊j/b⌋) mod m + jm) mod n
  // collapses to the unrotated d_i(j) = (i + jm) mod n — incrementally
  // computable with one add and a conditional subtract per element.
  const std::uint64_t m_mod_n = m % n;
  for (std::uint64_t ii = m; ii-- > 0;) {
    // Bottom-up sweep: row ii reads rows (ii - c, ii]; prefetch the row
    // entering the window next iteration.
    if (ii > mm.c) {
      kernels::prefetch_read(a + (ii - mm.c) * n);
    }
    std::uint64_t jj = ii % n;  // d_i(0)
    std::uint64_t off = 0;      // ⌊j/b⌋
    std::uint64_t jb = 0;       // j mod b
    for (std::uint64_t j = 0; j < n; ++j) {
      const bool wrapped = ii < off;
      const std::uint64_t s = wrapped ? ii + m - off : ii - off;
      tmp[j] = wrapped ? head[(s - tail_base) * n + jj] : a[s * n + jj];
      jj += m_mod_n;
      if (jj >= n) {
        jj -= n;
      }
      if (++jb == mm.b) {
        jb = 0;
        ++off;
      }
    }
    block(tmp, 1);
    copy_back(a + ii * n, tmp, n, ks, stream);
  }
}

/// Skinny C2R: in-place transpose of a tall row-major m x n array
/// (m > n); equivalently, AoS -> SoA conversion for m structures of n
/// fields each.  An optional cycle_memo caches the q-permutation's cycle
/// leaders across executions of the same plan; an optional
/// stage_progress records completed passes for rollback.  `block` is the
/// optional pre-consumption row-block transform fused into pass 1 (see
/// skinny_fused_scatter); the tile tier passes its per-slab register
/// transpose, everything else the default no-op.
template <typename T, typename Math, typename BlockFn = no_block_transform>
void c2r_skinny(T* a, const Math& mm, workspace<T>& ws,
                cycle_memo* memo = nullptr,
                const kernels::kernel_set* ks = nullptr,
                bool stream = false, stage_progress* prog = nullptr,
                BlockFn block = BlockFn{}) {
  [[maybe_unused]] const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  stream = skinny_stream_ok<T>(n, stream);

  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::skinny_fused_row);
    skinny_fused_scatter(a, mm, ws, ks, stream, block);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("skinny.c2r.after_fused_row");

  // Passes 2+3 are the column shuffle split into its rotation and static
  // row-permutation components; one span covers both.
  INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                         4 * m * n * sizeof(T), 0);

  begin_stage(prog, stage_id::skinny_rotation);
  skinny_rotate_p(a, mm, ws, ks, stream);
  end_stage(prog);
  INPLACE_FAILPOINT("skinny.c2r.after_rotation");

  begin_stage(prog, stage_id::skinny_permute);
  skinny_permute_q(a, mm, ws, memo, ks, stream);
  end_stage(prog);
  INPLACE_FAILPOINT("skinny.c2r.after_permute");
}

/// Skinny R2C: the inverse of c2r_skinny on the same m x n view
/// (SoA -> AoS conversion).  `block` is the post-assembly row transform
/// fused into pass 3 (see skinny_fused_gather); r2c_skinny with the
/// inverse hook is the exact inverse of c2r_skinny with the forward one.
template <typename T, typename Math, typename BlockFn = no_block_transform>
void r2c_skinny(T* a, const Math& mm, workspace<T>& ws,
                cycle_memo* memo = nullptr,
                const kernels::kernel_set* ks = nullptr,
                bool stream = false, stage_progress* prog = nullptr,
                BlockFn block = BlockFn{}) {
  [[maybe_unused]] const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  stream = skinny_stream_ok<T>(n, stream);

  {
    INPLACE_TELEMETRY_SPAN(span_col, telemetry::stage::col_shuffle,
                           4 * m * n * sizeof(T), 0);

    begin_stage(prog, stage_id::skinny_permute);
    skinny_permute_q_inv(a, mm, ws, memo, ks, stream);
    end_stage(prog);
    INPLACE_FAILPOINT("skinny.r2c.after_permute");

    begin_stage(prog, stage_id::skinny_rotation);
    skinny_rotate_p_inv(a, mm, ws, ks, stream);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("skinny.r2c.after_rotation");

  {
    INPLACE_TELEMETRY_SPAN(span_row, telemetry::stage::row_shuffle,
                           2 * m * n * sizeof(T), 0);
    begin_stage(prog, stage_id::skinny_fused_row);
    skinny_fused_gather(a, mm, ws, ks, stream, block);
    end_stage(prog);
  }
  INPLACE_FAILPOINT("skinny.r2c.after_fused_row");
}

}  // namespace inplace::detail
