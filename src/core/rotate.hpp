#pragma once
// Column rotations (Section 4.6).  A rotation gathers dst[i] =
// src[(i + k_j) mod m] down each column j.  The cache-aware form processes
// `width` adjacent columns together so that every memory touch moves a
// cache-line-sized sub-row:
//
//   1. a *coarse* pass rotates the whole group by a common amount k using
//      analytic cycle following (z = gcd(m, k) cycles of length m/z), and
//   2. a *fine* pass applies the per-column residuals (all < width) in a
//      single streaming sweep with a small "head" buffer.
//
// Both passes move sub-rows, not single elements, which is the whole point
// of Section 4.6.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/permute.hpp"

namespace inplace::detail {

/// Reference rotation of a single column by gather offset k (k in [0, m)).
template <typename T>
void rotate_column_naive(T* a, std::uint64_t m, std::uint64_t n,
                         std::uint64_t j, std::uint64_t k, T* tmp) {
  if (k == 0) {
    return;
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t s = i + k;
    if (s >= m) {
      s -= m;
    }
    tmp[i] = a[s * n + j];
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    a[i * n + j] = tmp[i];
  }
}

/// Coarse pass: rotate the `width`-wide column group at j0 by the common
/// gather offset k, in place, via analytic cycle following on sub-rows.
/// There are gcd(m, k) cycles of length m / gcd(m, k) each.
///
/// The hop stride is the constant k rows — large and regular, but beyond
/// most hardware prefetchers' reach — so each hop prefetches the next
/// source sub-row.  With a kernel set and `stream`, the sub-row stores go
/// non-temporal (their lines are dead until the next pass); the function
/// publishes them with one fence() before returning.
template <typename T>
void coarse_rotate_group(T* a, std::uint64_t m, std::uint64_t n,
                         std::uint64_t j0, std::uint64_t width,
                         std::uint64_t k, T* subrow_tmp,
                         const kernels::kernel_set* ks = nullptr,
                         bool stream = false) {
  if (k == 0) {
    return;
  }
  constexpr bool use_kernels = std::is_trivially_copyable_v<T>;
  const std::size_t sub_bytes = static_cast<std::size_t>(width) * sizeof(T);
  const auto move = [&](T* dst, const T* src, bool to_matrix) {
    if constexpr (use_kernels) {
      if (ks != nullptr) {
        ((stream && to_matrix) ? ks->stream_subrow : ks->copy)(dst, src,
                                                               sub_bytes);
        return;
      }
    }
    std::copy(src, src + width, dst);
  };
  T* base = a + j0;
  const std::uint64_t z = std::gcd(m, k);
  for (std::uint64_t y = 0; y < z; ++y) {
    move(subrow_tmp, base + y * n, /*to_matrix=*/false);
    std::uint64_t i = y;
    for (;;) {
      std::uint64_t s = i + k;
      if (s >= m) {
        s -= m;
      }
      if (s == y) {
        move(base + i * n, subrow_tmp, /*to_matrix=*/true);
        break;
      }
      std::uint64_t s_next = s + k;
      if (s_next >= m) {
        s_next -= m;
      }
      if (s_next != y) {
        kernels::prefetch_read(base + s_next * n);
      }
      move(base + i * n, base + s * n, /*to_matrix=*/true);
      i = s;
    }
  }
  if constexpr (use_kernels) {
    if (ks != nullptr && stream) {
      ks->fence();
    }
  }
}

/// Fine pass: apply per-column residual gather offsets res[jj] (all
/// strictly less than min(width, m)) to the group in one streaming sweep.
/// The first max(res) rows are saved in `head` (width*width elements), so
/// wrapped reads never observe already-overwritten rows.
///
/// Kernel path: for rows [0, m - max_res) no read wraps, and row i's
/// update is exactly the indexed gather row_i[jj] = row_i[idx[jj]] with
/// idx[jj] = res[jj]*n + jj — constant across rows, so it is built once
/// in `idx` (workspace::index, width entries) and the rows dispatch to
/// gather_index.  The in-place call is safe under the kernel contract:
/// slot jj' of row i is written after every read of it (reads come from
/// res*n + jj stripes at row indices >= i; within the row, res[jj']=0
/// lanes read slot jj' itself, gathered before the block's store).  The
/// wrapped tail rows [m - max_res, m) keep the scalar head-buffer loop.
/// `stream` selects non-temporal row stores (the pass is a pure
/// streaming sweep; lines are dead until the next pass), published with
/// one fence() before returning.
template <typename T>
void fine_rotate_group(T* a, std::uint64_t m, std::uint64_t n,
                       std::uint64_t j0, std::uint64_t width,
                       const std::uint64_t* res, T* head,
                       const kernels::kernel_set* ks = nullptr,
                       std::uint64_t* idx = nullptr, bool stream = false) {
  std::uint64_t max_res = 0;
  for (std::uint64_t jj = 0; jj < width; ++jj) {
    max_res = std::max(max_res, res[jj]);
  }
  if (max_res == 0) {
    return;  // Section 4.6: the fine pass is often skippable
  }
  // The head buffer holds width*width elements, one width-wide sub-row per
  // saved row; residuals >= min(width, m) would read past it (or past the
  // matrix) once the sweep wraps.
  INPLACE_REQUIRE(max_res < std::min(width, m) || m <= 1,
                  "fine rotation residual outside the cache-aware window "
                  "(Section 4.6)");
  T* base = a + j0;
  for (std::uint64_t r = 0; r < max_res; ++r) {
    copy_back(head + r * width, base + r * n, width);
  }
  std::uint64_t i = 0;
  if constexpr (kernels::has_gather_lanes<T>) {
    if (ks != nullptr && idx != nullptr && m > max_res) {
      for (std::uint64_t jj = 0; jj < width; ++jj) {
        idx[jj] = res[jj] * n + jj;
      }
      const std::uint64_t unwrapped = m - max_res;
      for (; i < unwrapped; ++i) {
        T* row = base + i * n;
        kernels::gather_index(*ks, row, row, idx,
                              static_cast<std::size_t>(width), stream);
      }
      if (stream) {
        ks->fence();
      }
    }
  }
  for (; i < m; ++i) {
    for (std::uint64_t jj = 0; jj < width; ++jj) {
      const std::uint64_t s = i + res[jj];
      base[i * n + jj] =
          s < m ? base[s * n + jj] : head[(s - m) * width + jj];
    }
  }
}

/// Cache-aware rotation of one `w`-wide column group at j0 by per-column
/// gather offsets amount(j).  Amounts within the group must lie in a window
/// of fewer than min(width, m) consecutive values mod m (true for all of
/// the paper's rotation families: ±j and ±⌊j/b⌋); groups violating the
/// window assumption fall back to naive per-column rotation.
template <typename T, typename AmountFn>
void rotate_group_cache_aware(T* a, std::uint64_t m, std::uint64_t n,
                              std::uint64_t j0, std::uint64_t w,
                              AmountFn amount, workspace<T>& ws,
                              const kernels::kernel_set* ks = nullptr,
                              bool stream = false) {
  // Normalize the group's rotation amounts to a common coarse offset k
  // plus small non-negative residuals: map each (amount - amount(j0))
  // mod m into the signed window (-m/2, m/2] and take its minimum as the
  // correction to k.
  const std::uint64_t k0 = amount(j0) % m;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (std::uint64_t jj = 0; jj < w; ++jj) {
    const std::uint64_t d = (amount(j0 + jj) % m + m - k0) % m;
    auto sd = static_cast<std::int64_t>(d);
    if (d > m / 2) {
      sd -= static_cast<std::int64_t>(m);
    }
    lo = std::min(lo, sd);
    hi = std::max(hi, sd);
  }
  const auto span = static_cast<std::uint64_t>(hi - lo);
  if (span >= std::min(w, m)) {
    for (std::uint64_t jj = 0; jj < w; ++jj) {
      rotate_column_naive(a, m, n, j0 + jj, amount(j0 + jj) % m,
                          ws.line.data());
    }
    return;
  }
  const auto sm = static_cast<std::int64_t>(m);
  const std::uint64_t k =
      (k0 + static_cast<std::uint64_t>((lo % sm + sm) % sm)) % m;
  for (std::uint64_t jj = 0; jj < w; ++jj) {
    ws.offsets[jj] = (amount(j0 + jj) % m + m - k) % m;
  }
  coarse_rotate_group(a, m, n, j0, w, k, ws.subrow.data(), ks, stream);
  fine_rotate_group(a, m, n, j0, w, ws.offsets.data(), ws.head.data(), ks,
                    ws.index.data(), stream);
}

/// Serial convenience wrapper: rotates every column of the array, group by
/// group.  (The parallel engines drive rotate_group_cache_aware directly.)
template <typename T, typename AmountFn>
void rotate_columns_blocked(T* a, std::uint64_t m, std::uint64_t n,
                            std::uint64_t width, AmountFn amount,
                            workspace<T>& ws,
                            const kernels::kernel_set* ks = nullptr,
                            bool stream = false) {
  if (m <= 1) {
    return;
  }
  for (std::uint64_t j0 = 0; j0 < n; j0 += width) {
    rotate_group_cache_aware(a, m, n, j0, std::min(width, n - j0), amount,
                             ws, ks, stream);
  }
}

}  // namespace inplace::detail
