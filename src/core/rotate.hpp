#pragma once
// Column rotations (Section 4.6).  A rotation gathers dst[i] =
// src[(i + k_j) mod m] down each column j.  The cache-aware form processes
// `width` adjacent columns together so that every memory touch moves a
// cache-line-sized sub-row:
//
//   1. a *coarse* pass rotates the whole group by a common amount k using
//      analytic cycle following (z = gcd(m, k) cycles of length m/z), and
//   2. a *fine* pass applies the per-column residuals (all < width) in a
//      single streaming sweep with a small "head" buffer.
//
// Both passes move sub-rows, not single elements, which is the whole point
// of Section 4.6.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/permute.hpp"

namespace inplace::detail {

/// Reference rotation of a single column by gather offset k (k in [0, m)).
template <typename T>
void rotate_column_naive(T* a, std::uint64_t m, std::uint64_t n,
                         std::uint64_t j, std::uint64_t k, T* tmp) {
  if (k == 0) {
    return;
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t s = i + k;
    if (s >= m) {
      s -= m;
    }
    tmp[i] = a[s * n + j];
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    a[i * n + j] = tmp[i];
  }
}

/// Coarse pass: rotate the `width`-wide column group at j0 by the common
/// gather offset k, in place, via analytic cycle following on sub-rows.
/// There are gcd(m, k) cycles of length m / gcd(m, k) each.
template <typename T>
void coarse_rotate_group(T* a, std::uint64_t m, std::uint64_t n,
                         std::uint64_t j0, std::uint64_t width,
                         std::uint64_t k, T* subrow_tmp) {
  if (k == 0) {
    return;
  }
  T* base = a + j0;
  const std::uint64_t z = std::gcd(m, k);
  for (std::uint64_t y = 0; y < z; ++y) {
    std::copy(base + y * n, base + y * n + width, subrow_tmp);
    std::uint64_t i = y;
    for (;;) {
      std::uint64_t s = i + k;
      if (s >= m) {
        s -= m;
      }
      if (s == y) {
        std::copy(subrow_tmp, subrow_tmp + width, base + i * n);
        break;
      }
      std::copy(base + s * n, base + s * n + width, base + i * n);
      i = s;
    }
  }
}

/// Fine pass: apply per-column residual gather offsets res[jj] (all
/// strictly less than min(width, m)) to the group in one streaming sweep.
/// The first max(res) rows are saved in `head` (width*width elements), so
/// wrapped reads never observe already-overwritten rows.
template <typename T>
void fine_rotate_group(T* a, std::uint64_t m, std::uint64_t n,
                       std::uint64_t j0, std::uint64_t width,
                       const std::uint64_t* res, T* head) {
  std::uint64_t max_res = 0;
  for (std::uint64_t jj = 0; jj < width; ++jj) {
    max_res = std::max(max_res, res[jj]);
  }
  if (max_res == 0) {
    return;  // Section 4.6: the fine pass is often skippable
  }
  // The head buffer holds width*width elements, one width-wide sub-row per
  // saved row; residuals >= min(width, m) would read past it (or past the
  // matrix) once the sweep wraps.
  INPLACE_REQUIRE(max_res < std::min(width, m) || m <= 1,
                  "fine rotation residual outside the cache-aware window "
                  "(Section 4.6)");
  T* base = a + j0;
  for (std::uint64_t r = 0; r < max_res; ++r) {
    std::copy(base + r * n, base + r * n + width, head + r * width);
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    for (std::uint64_t jj = 0; jj < width; ++jj) {
      const std::uint64_t s = i + res[jj];
      base[i * n + jj] =
          s < m ? base[s * n + jj] : head[(s - m) * width + jj];
    }
  }
}

/// Cache-aware rotation of one `w`-wide column group at j0 by per-column
/// gather offsets amount(j).  Amounts within the group must lie in a window
/// of fewer than min(width, m) consecutive values mod m (true for all of
/// the paper's rotation families: ±j and ±⌊j/b⌋); groups violating the
/// window assumption fall back to naive per-column rotation.
template <typename T, typename AmountFn>
void rotate_group_cache_aware(T* a, std::uint64_t m, std::uint64_t n,
                              std::uint64_t j0, std::uint64_t w,
                              AmountFn amount, workspace<T>& ws) {
  // Normalize the group's rotation amounts to a common coarse offset k
  // plus small non-negative residuals: map each (amount - amount(j0))
  // mod m into the signed window (-m/2, m/2] and take its minimum as the
  // correction to k.
  const std::uint64_t k0 = amount(j0) % m;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (std::uint64_t jj = 0; jj < w; ++jj) {
    const std::uint64_t d = (amount(j0 + jj) % m + m - k0) % m;
    auto sd = static_cast<std::int64_t>(d);
    if (d > m / 2) {
      sd -= static_cast<std::int64_t>(m);
    }
    lo = std::min(lo, sd);
    hi = std::max(hi, sd);
  }
  const auto span = static_cast<std::uint64_t>(hi - lo);
  if (span >= std::min(w, m)) {
    for (std::uint64_t jj = 0; jj < w; ++jj) {
      rotate_column_naive(a, m, n, j0 + jj, amount(j0 + jj) % m,
                          ws.line.data());
    }
    return;
  }
  const auto sm = static_cast<std::int64_t>(m);
  const std::uint64_t k =
      (k0 + static_cast<std::uint64_t>((lo % sm + sm) % sm)) % m;
  for (std::uint64_t jj = 0; jj < w; ++jj) {
    ws.offsets[jj] = (amount(j0 + jj) % m + m - k) % m;
  }
  coarse_rotate_group(a, m, n, j0, w, k, ws.subrow.data());
  fine_rotate_group(a, m, n, j0, w, ws.offsets.data(), ws.head.data());
}

/// Serial convenience wrapper: rotates every column of the array, group by
/// group.  (The parallel engines drive rotate_group_cache_aware directly.)
template <typename T, typename AmountFn>
void rotate_columns_blocked(T* a, std::uint64_t m, std::uint64_t n,
                            std::uint64_t width, AmountFn amount,
                            workspace<T>& ws) {
  if (m <= 1) {
    return;
  }
  for (std::uint64_t j0 = 0; j0 < n; j0 += width) {
    rotate_group_cache_aware(a, m, n, j0, std::min(width, n - j0), amount,
                             ws);
  }
}

}  // namespace inplace::detail
