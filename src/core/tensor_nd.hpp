#pragma once
// Arbitrary-rank in-place axis permutation: the execution half of the
// HPTT-style engine (planning lives in core/tensor_plan.hpp).  An
// nd_transposer replays a tensor_plan's adjacent-group-swap passes:
//
//   * chunk == 1 passes run through the planned 2-D executor
//     (core/executor.hpp) — one transposer<T> arena per pass, so kernel
//     tiers, NT-streaming policy, stage-boundary rollback and the OOM
//     degradation ladder all apply per pass;
//   * chunk > 1 passes run chunk-grid cycle following over a rows x cols
//     grid of contiguous chunk-element blocks, with scratch from the
//     audited funnel below (its own three-rung OOM ladder, mirroring
//     detail::acquire_scratch: byte visited map -> packed bitset ->
//     O(1)-space leader-min cycle following with one element in flight).
//
// Failure semantics match the 2-D paths: "tensor.pass.begin" fires before
// each pass moves anything, and any pass failure rolls the completed
// passes back in reverse (the inverse of an adjacent-group swap is the
// same swap with the grid extents exchanged), so every entry point throws
// with the caller's buffer restored-or-untouched.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/tensor_plan.hpp"
#include "util/aligned.hpp"

namespace inplace {

/// Non-owning rank-generic view of a row-major tensor with
/// contract-checked element access — the rank-N generalization of
/// tensor_view (core/tensor.hpp).  Extents validate through the
/// overflow-checked N-D funnel at construction.
template <typename T>
class tensor_view_nd {
 public:
  tensor_view_nd(T* data, std::span<const std::size_t> dims)
      : data_(data), rank_(dims.size()) {
    if (rank_ > tensor_max_rank) {
      throw error("inplace: tensor_view_nd rank exceeds tensor_max_rank");
    }
    total_ = detail::checked_extent_nd(data, dims.data(), dims.size(),
                                       sizeof(T));
    std::size_t stride = 1;
    for (std::size_t k = rank_; k-- > 0;) {
      dims_[k] = dims[k];
      strides_[k] = stride;
      stride *= dims[k];
    }
  }

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const { return total_; }
  [[nodiscard]] T* data() const { return data_; }

  [[nodiscard]] std::size_t extent(std::size_t axis) const {
    INPLACE_REQUIRE(axis < rank_, "tensor_view_nd axis out of range");
    return dims_[axis];
  }

  /// Bounds-checked element access (Checked builds; unchecked in Release).
  [[nodiscard]] T& at(std::span<const std::size_t> idx) const {
    INPLACE_CHECK(idx.size() == rank_,
                  "tensor_view_nd index rank does not match the view");
    for (std::size_t k = 0; k < rank_; ++k) {
      INPLACE_CHECK(idx[k] < dims_[k], "tensor_view_nd index out of range");
    }
    return (*this)(idx);
  }

  /// Unchecked element access.
  [[nodiscard]] T& operator()(std::span<const std::size_t> idx) const {
    std::size_t lin = 0;
    for (std::size_t k = 0; k < rank_; ++k) {
      lin += idx[k] * strides_[k];
    }
    return data_[lin];
  }

 private:
  T* data_;
  std::size_t rank_;
  std::size_t total_ = 0;
  std::array<std::size_t, tensor_max_rank> dims_{};
  std::array<std::size_t, tensor_max_rank> strides_{};
};

namespace detail {

/// Scratch for the chunk-grid passes, acquired only through
/// acquire_chunk_scratch below.  The rung records where acquisition
/// landed: full (one visited byte per grid slot), reduced (packed visited
/// bitset), or cycle_follow (no scratch at all — the O(1)-space path).
template <typename T>
struct chunk_scratch {
  util::aligned_vector<std::uint8_t> bits;
  util::aligned_vector<T> tmp;  ///< one chunk in flight
  scratch_rung rung = scratch_rung::cycle_follow;

  [[nodiscard]] std::size_t bytes() const {
    return bits.capacity() + tmp.capacity() * sizeof(T);
  }
};

/// The audited allocation funnel for chunk-grid scratch, walking the same
/// shape of OOM ladder as detail::acquire_scratch: every rung fires the
/// "tensor.chunk.alloc" failpoint, allocation goes through
/// util::aligned_vector (which carries the "alloc.aligned" failpoint),
/// and bad_alloc demotes instead of failing.  Exceptions other than
/// bad_alloc (including injected_fault) propagate untouched — nothing has
/// run yet, so the caller's buffer is untouched too.
template <typename T>
chunk_scratch<T> acquire_chunk_scratch(std::uint64_t slots,
                                       std::uint64_t chunk) {
  chunk_scratch<T> s;
  try {
    INPLACE_FAILPOINT("tensor.chunk.alloc");
    // inplace-lint: allow-next(raw-alloc): the audited funnel itself —
    // aligned_vector growth carries the alloc.aligned failpoint and this
    // site owns the demotion ladder
    s.bits.resize(static_cast<std::size_t>(slots));
    // inplace-lint: allow-next(raw-alloc): audited funnel (see above)
    s.tmp.resize(static_cast<std::size_t>(chunk));
    s.rung = scratch_rung::full;
    return s;
  } catch (const std::bad_alloc&) {
    s.bits = util::aligned_vector<std::uint8_t>();
    s.tmp = util::aligned_vector<T>();
  }
  try {
    INPLACE_FAILPOINT("tensor.chunk.alloc");
    // inplace-lint: allow-next(raw-alloc): audited funnel, reduced rung —
    // one packed visited bit per grid slot instead of a byte
    s.bits.resize(static_cast<std::size_t>((slots + 7) / 8));
    // inplace-lint: allow-next(raw-alloc): audited funnel (see above)
    s.tmp.resize(static_cast<std::size_t>(chunk));
    s.rung = scratch_rung::reduced;
    return s;
  } catch (const std::bad_alloc&) {
    s.bits = util::aligned_vector<std::uint8_t>();
    s.tmp = util::aligned_vector<T>();
  }
  // Last rung: no allocation at all — the O(1)-space leader-min walk.
  s.rung = scratch_rung::cycle_follow;
  return s;
}

/// Chunk-grid transpose with no auxiliary state: for each slot cycle,
/// only the minimum slot leads (every cycle is walked once to check),
/// and the chunk contents rotate one element offset at a time with a
/// single element in flight.  O(cycle length) extra walks, O(1) space —
/// the chunk-path analogue of baselines::cycle_following_permute_limited.
template <typename T>
void run_chunk_grid_inplace(T* base, std::uint64_t rows, std::uint64_t cols,
                            std::uint64_t chunk) {
  const std::uint64_t slots = rows * cols;
  for (std::uint64_t y = 0; y < slots; ++y) {
    // Gather permutation: slot w receives the chunk from slot
    // src(w) = (w mod rows) * cols + (w / rows).
    std::uint64_t w = (y % rows) * cols + y / rows;
    if (w == y) {
      continue;
    }
    bool leader = true;
    while (w != y) {
      if (w < y) {
        leader = false;
        break;
      }
      w = (w % rows) * cols + w / rows;
    }
    if (!leader) {
      continue;
    }
    for (std::uint64_t off = 0; off < chunk; ++off) {
      T saved = base[y * chunk + off];
      std::uint64_t v = y;
      for (;;) {
        const std::uint64_t src = (v % rows) * cols + v / rows;
        if (src == y) {
          base[v * chunk + off] = saved;
          break;
        }
        base[v * chunk + off] = base[src * chunk + off];
        v = src;
      }
    }
  }
}

/// One chunk-grid pass through whichever rung the scratch funnel landed
/// on: transposes a rows x cols grid of contiguous chunk-element blocks
/// in place (block (i, j) moves to slot j*rows + i).
///
/// With a kernel set, chunk moves of trivially copyable elements go
/// through the plan's tier (the same copy/stream_subrow pair the 2-D
/// cycle follower uses); `stream` selects unfenced non-temporal stores
/// for the grid destinations — each slot is written once and never
/// re-read within the pass (gather cycle order), so its lines are dead —
/// with one fence() published at the end.  The tmp save/restore stays
/// temporal: tmp is cache-hot scratch re-read at every cycle close.
template <typename T>
void run_chunk_pass(T* base, std::uint64_t rows, std::uint64_t cols,
                    std::uint64_t chunk, chunk_scratch<T>& s,
                    const kernels::kernel_set* ks = nullptr,
                    bool stream = false) {
  INPLACE_REQUIRE(base != nullptr, "chunk pass invoked with null data");
  if (rows <= 1 || cols <= 1 || chunk == 0) {
    return;
  }
  if (s.rung == scratch_rung::cycle_follow) {
    run_chunk_grid_inplace(base, rows, cols, chunk);
    return;
  }
  constexpr bool use_kernels = std::is_trivially_copyable_v<T>;
  const std::size_t chunk_bytes = static_cast<std::size_t>(chunk) * sizeof(T);
  const auto move = [&](T* dst, const T* src) {
    if constexpr (use_kernels) {
      if (ks != nullptr) {
        (stream ? ks->stream_subrow : ks->copy)(dst, src, chunk_bytes);
        return;
      }
    }
    std::copy(src, src + chunk, dst);
  };
  const auto save = [&](T* dst, const T* src) {
    if constexpr (use_kernels) {
      if (ks != nullptr) {
        ks->copy(dst, src, chunk_bytes);
        return;
      }
    }
    std::copy(src, src + chunk, dst);
  };
  const std::uint64_t slots = rows * cols;
  const bool packed = s.rung == scratch_rung::reduced;
  std::fill(s.bits.begin(), s.bits.end(), std::uint8_t{0});
  const auto visited = [&](std::uint64_t w) {
    return packed ? ((s.bits[w >> 3] >> (w & 7)) & 1u) != 0
                  : s.bits[w] != 0;
  };
  const auto mark = [&](std::uint64_t w) {
    if (packed) {
      s.bits[w >> 3] = static_cast<std::uint8_t>(s.bits[w >> 3] |
                                                 (1u << (w & 7)));
    } else {
      s.bits[w] = 1;
    }
  };
  for (std::uint64_t y = 0; y < slots; ++y) {
    if (visited(y)) {
      continue;
    }
    const std::uint64_t first_src = (y % rows) * cols + y / rows;
    mark(y);
    if (first_src == y) {
      continue;
    }
    save(s.tmp.data(), base + y * chunk);
    std::uint64_t w = y;
    for (;;) {
      const std::uint64_t src = (w % rows) * cols + w / rows;
      mark(w);
      if (src == y) {
        move(base + w * chunk, s.tmp.data());
        break;
      }
      kernels::prefetch_read(base + ((src % rows) * cols + src / rows) *
                                        chunk);
      move(base + w * chunk, base + src * chunk);
      w = src;
    }
  }
  if constexpr (use_kernels) {
    if (ks != nullptr && stream) {
      ks->fence();
    }
  }
}

/// Restores the slabs a failing batched 2-D pass already completed (the
/// failing slab itself was restored by the inner executor's own
/// stage-boundary rollback).  Best-effort by design: building or running
/// the inverse executor can itself fail with the original exception in
/// flight, and then the buffer stays as-is — the documented
/// "unrecoverable" row of the failure taxonomy (DESIGN.md §11).
template <typename T>
void rollback_nd_slabs(T* data, const nd_pass& p,
                       std::uint64_t completed) noexcept {
  if (completed == 0) {
    return;
  }
  try {
    transposer<T> inv(static_cast<std::size_t>(p.cols),
                      static_cast<std::size_t>(p.rows));
    const std::uint64_t slab = p.rows * p.cols * p.chunk;
    for (std::uint64_t k = completed; k-- > 0;) {
      inv(data + k * slab);
    }
  } catch (...) {
    // Unrecoverable: leave the buffer as-is (never throw past here).
  }
}

/// Inverts the completed passes of a tensor plan in reverse order: the
/// inverse of the adjacent-group swap (P, X, Y, S) -> (P, Y, X, S) is the
/// same swap with the grid extents exchanged.  Chunk passes invert
/// through the O(1)-space walk (no allocation on the rollback path).
/// Best-effort, same taxonomy row as rollback_nd_slabs.
template <typename T>
void rollback_nd_passes(T* data, const tensor_plan& plan,
                        std::size_t completed) noexcept {
  try {
    for (std::size_t i = completed; i-- > 0;) {
      const nd_pass& p = plan.passes[i];
      const std::uint64_t slab = p.rows * p.cols * p.chunk;
      if (p.chunk == 1) {
        transposer<T> inv(static_cast<std::size_t>(p.cols),
                          static_cast<std::size_t>(p.rows));
        for (std::uint64_t k = 0; k < p.batch; ++k) {
          inv(data + k * slab);
        }
      } else {
        for (std::uint64_t k = 0; k < p.batch; ++k) {
          run_chunk_grid_inplace(data + k * slab, p.cols, p.rows, p.chunk);
        }
      }
    }
  } catch (...) {
    // Unrecoverable: leave the buffer as-is (never throw past here).
  }
}

/// Emits one telemetry plan record for a tensor execution (any path:
/// "nd" runs passes, "identity" and "empty" are the early returns PR 3's
/// gap fix covers for the 2-D paths).  Compiles to nothing unless the
/// translation unit defines INPLACE_TELEMETRY.
template <typename T>
inline void note_tensor_record([[maybe_unused]] std::uint64_t total,
                               [[maybe_unused]] std::size_t rank,
                               [[maybe_unused]] std::size_t passes,
                               [[maybe_unused]] bool from_cache,
                               [[maybe_unused]] scratch_rung rung,
                               [[maybe_unused]] const char* path,
                               [[maybe_unused]] const char* kernel_tier = "",
                               [[maybe_unused]] const char* calibration = "") {
#if INPLACE_TELEMETRY_ENABLED
  if (telemetry::current_sink() != nullptr) {
    const util::thread_probe probe = util::probe_thread_count(0);
    telemetry::plan_record rec;
    rec.engine = "tensor";
    rec.direction = path;
    rec.m = total;
    rec.n = passes;
    rec.block_width = rank;
    rec.elem_size = sizeof(T);
    rec.strength_reduction = true;
    rec.kernel_tier = kernel_tier;
    rec.threads_requested = probe.requested;
    rec.threads_active = probe.active;
    rec.threads_honored = probe.honored;
    rec.from_cache = from_cache;
    rec.rung = rung_name(rung);
    rec.calibration = calibration;
    INPLACE_TELEMETRY_PLAN(rec);
  }
#endif
}

}  // namespace detail

/// Reusable rank-N permutation executor: adopts a tensor_plan, builds one
/// arena per pass (a transposer<T> for executor passes, funnel-acquired
/// scratch for chunk passes) and replays the passes per execution.
///
/// Not thread-safe — one instance must not execute on two threads at once
/// (the per-pass arenas are exclusive to one execution); transpose_context
/// hands out distinct instances to concurrent callers, exactly as it does
/// for transposer<T>.
template <typename T>
class nd_transposer {
 public:
  explicit nd_transposer(detail::tensor_plan plan, const options& opts = {})
      : plan_(std::move(plan)),
        ktier_(kernels::resolve_tier(opts.kernel)) {
    // inplace-lint: allow-next(raw-alloc): cold-path arena construction,
    // sized once at plan adoption (mirrors the transposer<T> constructor)
    passes_.reserve(plan_.passes.size());
    for (const auto& p : plan_.passes) {
      pass_state ps;
      ps.pass = p;
      if (p.chunk == 1) {
        ps.tr.emplace(static_cast<std::size_t>(p.rows),
                      static_cast<std::size_t>(p.cols),
                      storage_order::row_major, opts);
        worst_rung_ = std::max(worst_rung_, ps.tr->plan().rung);
      } else {
        ps.scratch =
            detail::acquire_chunk_scratch<T>(p.rows * p.cols, p.chunk);
        worst_rung_ = std::max(worst_rung_, ps.scratch.rung);
        // Same matrix-scale NT policy as 2-D planning: each chunk pass
        // sweeps the whole tensor once, so the pass working set is the
        // tensor itself.
        ps.stream = kernels::streaming_profitable(
            static_cast<std::size_t>(p.rows * p.cols * p.chunk * p.batch) *
                sizeof(T),
            ktier_);
      }
      // inplace-lint: allow-next(raw-alloc): cold-path arena construction
      // (see the reserve above)
      passes_.push_back(std::move(ps));
    }
  }

  [[nodiscard]] const detail::tensor_plan& plan() const { return plan_; }

  /// True when any pass's scratch acquisition landed below
  /// scratch_rung::full (an OOM ladder engaged while building the arena).
  [[nodiscard]] bool degraded() const {
    return worst_rung_ != scratch_rung::full;
  }

  /// Permutes one tensor in place.  `data` must have the planned extents.
  void operator()(T* data) { execute(data, /*from_cache=*/false); }

  /// operator() with the telemetry provenance flag transpose_context
  /// passes for cached arenas (matches transposer<T>::execute).
  void execute(T* data, bool from_cache) {
    detail::note_tensor_record<T>(plan_.norm.total, plan_.norm.rank,
                                  passes_.size(), from_cache, worst_rung_,
                                  passes_.empty() ? "identity" : "nd",
                                  kernels::tier_name(ktier_),
                                  plan_.calibration);
    INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                           2 * plan_.norm.total * sizeof(T), cached_bytes());
    std::size_t done = 0;
    try {
      for (; done < passes_.size(); ++done) {
        // Models a fault at a pass boundary: fires before the pass moves
        // anything, so passes 0..done-1 are complete and the rollback
        // below restores the caller's buffer bit-exactly.
        INPLACE_FAILPOINT("tensor.pass.begin");
        run_pass(data, passes_[done], from_cache);
      }
    } catch (...) {
      detail::rollback_nd_passes(data, plan_, done);
      throw;
    }
  }

  /// Approximate bytes retained by the per-pass arenas; transpose_context
  /// uses it to bound the total memory its arena cache pins.
  [[nodiscard]] std::size_t cached_bytes() const {
    std::size_t total = passes_.capacity() * sizeof(pass_state);
    for (const auto& ps : passes_) {
      total += ps.tr ? ps.tr->cached_bytes() : ps.scratch.bytes();
    }
    return total;
  }

 private:
  struct pass_state {
    detail::nd_pass pass;
    std::optional<transposer<T>> tr;  ///< chunk == 1 passes
    detail::chunk_scratch<T> scratch;  ///< chunk > 1 passes
    bool stream = false;  ///< chunk-pass NT-store decision (plan-time)
  };

  void run_pass(T* data, pass_state& ps, bool from_cache) {
    const detail::nd_pass& p = ps.pass;
    const std::uint64_t slab = p.rows * p.cols * p.chunk;
    INPLACE_TELEMETRY_SPAN(
        span_pass, telemetry::stage::total, 2 * plan_.norm.total * sizeof(T),
        ps.tr ? ps.tr->plan().scratch_elements() * sizeof(T)
              : ps.scratch.bytes());
    if (p.chunk == 1) {
      std::uint64_t k = 0;
      try {
        for (; k < p.batch; ++k) {
          ps.tr->execute(data + k * slab, from_cache);
        }
      } catch (...) {
        // The failing slab was restored by the executor's stage-boundary
        // rollback; re-transpose the completed slabs so the whole pass
        // leaves this frame restored-or-untouched.
        detail::rollback_nd_slabs(data, p, k);
        throw;
      }
    } else {
      // The chunk loop allocates nothing and runs no engine — once the
      // pass starts it completes (faults inject at the pass boundary).
      const kernels::kernel_set& ks = kernels::set_for(ktier_);
      for (std::uint64_t k = 0; k < p.batch; ++k) {
        detail::run_chunk_pass(data + k * slab, p.rows, p.cols, p.chunk,
                               ps.scratch, &ks, ps.stream);
      }
    }
  }

  detail::tensor_plan plan_;
  kernels::tier ktier_ = kernels::tier::scalar;
  std::vector<pass_state> passes_;
  scratch_rung worst_rung_ = scratch_rung::full;
};

}  // namespace inplace
