#pragma once
// Reusable execution context: plan/workspace caching with async batched
// submission.
//
// Every one-shot `inplace::transpose` pays the amortizable setup cost on
// the hot path — planning, a fresh scratch arena (threads x O(max(m, n))
// elements for the blocked engine), the strength-reduced reciprocals, and
// row-permutation cycle discovery.  `transpose_context` amortizes all of
// it across calls:
//
//   * a *sharded* LRU plan cache keyed by (rows, cols, elem_size, element
//     type, entry point/order, and every planning-relevant option):
//     context_options::cache_shards lock-striped shards selected by the
//     high bits of context_key_hash, each with its own mutex and LRU, so
//     concurrent mixed-shape clients stop serializing on one lock.  The
//     plan bound (context_options::max_plans) is governed globally by an
//     atomic plan count with shard-local eviction, and the byte budget
//     (max_cached_bytes) stays global, settled by atomic reservation
//     against retained_bytes_;
//   * per-plan reusable arenas — `transposer<T>` instances holding the
//     resolved plan, the index math, the workspace pool and the memoized
//     cycle leaders — checked out exclusively per execution, so the warm
//     path performs zero allocations and zero cycle re-discovery;
//   * an async submission API: `submit()` returns a std::future<void>,
//     optionally scheduled with job_options{qos, deadline} (see
//     core/sched.hpp); `transpose_batch()` runs a span of jobs over one
//     shared QoS-aware worker pool with per-job error capture.
//
// The free functions in core/transpose.hpp route through a process-wide
// `default_context()`, so plain `transpose(data, m, n)` callers get warm
// plan reuse without managing a context.  All entry points are
// thread-safe; concurrent same-shape calls each receive their own arena.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/errors.hpp"
#include "core/executor.hpp"
#include "core/failpoint.hpp"
#include "core/sched.hpp"
#include "core/tensor_nd.hpp"
#include "util/annotated_mutex.hpp"

namespace inplace {

/// Sizing knobs for a transpose_context.
struct context_options {
  /// Distinct cached plans (LRU beyond this).  Clamped to at least 1.
  /// The bound is global across cache shards (an insert into a full
  /// cache evicts from its own shard's LRU tail), so total cached plans
  /// stay within max_plans + cache_shards - 1 under any key skew.
  std::size_t max_plans = 16;

  /// Arenas kept per plan.  Concurrent same-shape executions past this
  /// count still run (with a transient arena); only recycling is bounded.
  std::size_t max_arenas_per_plan = 4;

  /// Total bytes of scratch the context may pin across all cached arenas
  /// (approximate; Theorem 6 scratch plus memoized cycle leaders).  An
  /// arena whose return would exceed the budget is dropped instead of
  /// recycled.  Global across shards, settled by atomic reservation.
  std::size_t max_cached_bytes = std::size_t{256} << 20;

  /// Lock stripes for the plan cache.  Rounded up to a power of two and
  /// clamped to [1, 256]; 0 picks the default (8).  Set 1 to recover the
  /// single-lock cache with one global LRU order (exact max_plans bound).
  std::size_t cache_shards = 8;

  /// Worker threads for submit()/transpose_batch(); 0 picks a small
  /// default.  Workers start lazily on the first async call — a context
  /// used synchronously never spawns threads.
  std::size_t workers = 0;

  /// Bounded-queue backpressure for the async entry points: submit()
  /// blocks while this many jobs are already queued (clamped to at least
  /// 1).  Keeps a producer that outruns the workers from growing the
  /// queue — and the set of outstanding futures — without bound.
  std::size_t max_queue = 1024;

  /// Pin each worker thread to one CPU of the process's allowed set
  /// (util::pin_current_thread).  Where pinning is unsupported the pool
  /// falls back loudly (one stderr warning) and runs unpinned;
  /// context_stats::pinned_workers reports how many pins stuck.
  bool pin_workers = false;
};

/// Monotonic counters describing a context's cache behavior.
struct context_stats {
  std::uint64_t executions = 0;      ///< transposes run through the context
  std::uint64_t plan_hits = 0;       ///< key already cached
  std::uint64_t plan_misses = 0;     ///< key planned fresh
  std::uint64_t plan_evictions = 0;  ///< LRU entries dropped
  std::uint64_t arenas_created = 0;  ///< transposer arenas allocated
  std::uint64_t arenas_reused = 0;   ///< warm checkouts (no allocation)
  std::uint64_t arenas_dropped = 0;  ///< not recycled (cap or exception)
  std::uint64_t async_jobs = 0;      ///< submit()/batch jobs enqueued
  /// Arenas whose scratch acquisition landed below scratch_rung::full
  /// (the OOM degradation ladder engaged while building them).
  std::uint64_t arenas_degraded = 0;
  /// Async jobs failed with context_shutdown before they ran (shutdown
  /// with drain_pending=false, or cancel_pending()).
  std::uint64_t jobs_cancelled = 0;

  /// Per-QoS-class scheduling counters, indexed by qos_index().  The
  /// snapshot is coherent for the monotonic invariant: for every class,
  /// qos[k].settled() <= qos[k].enqueued at the moment of the read (see
  /// detail::context_workers::qos_stats for the memory-order proof).
  std::array<qos_counters, qos_class_count> qos{};

  /// Workers that successfully pinned to a CPU (0 unless
  /// context_options::pin_workers was set and the platform honored it).
  std::uint64_t pinned_workers = 0;
};

/// One matrix in a transpose_batch() call.
template <typename T>
struct transpose_job {
  T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  storage_order order = storage_order::row_major;
  options opts{};
  job_options sched{};  ///< QoS class + optional deadline for this job
};

/// Per-job outcome of transpose_batch(): errors[k] is the exception (if
/// any) job k threw; the batch always runs every job.
struct batch_result {
  std::vector<std::exception_ptr> errors;
  std::size_t failed = 0;

  [[nodiscard]] bool ok() const { return failed == 0; }

  /// Rethrows the first captured error, if any.
  void rethrow_first() const {
    for (const auto& e : errors) {
      if (e) {
        std::rethrow_exception(e);
      }
    }
  }
};

namespace detail {

/// Identity of one cached (plan, arena family): the shape, the element
/// type, the entry point, and every option the planner reads.  Two keys
/// comparing equal guarantee the cached transposer<T> is exactly the one
/// the call would have built.
struct context_key {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::size_t elem_size = 0;
  const void* type_tag = nullptr;  ///< &context_type_tag<T>
  std::uint8_t mode = 0;           ///< 0 transpose, 1 c2r, 2 r2c, 3 permute_nd
  std::uint8_t order = 0;          ///< storage_order (transpose mode only)
  std::uint8_t alg = 0;            ///< options::algorithm
  std::uint8_t engine = 0;         ///< engine_kind
  std::uint8_t kernel = 0;         ///< kernels::tier (requested, pre-resolve)
  std::uint8_t tile = 0;           ///< options::tile_mode
  bool strength_reduction = true;
  int threads = 0;
  std::size_t block_bytes = 0;

  /// permute_nd identity (zero elsewhere): the *normalized* extents and
  /// permutation (unit axes dropped, contiguous groups fused), so every
  /// raw shape that reduces to the same residual problem shares one plan.
  /// rank <= tensor_max_rank packs the perm inline as 4-bit nibbles.
  std::array<std::uint64_t, tensor_max_rank> nd_dims{};
  std::uint32_t nd_perm = 0;
  std::uint8_t nd_rank = 0;

  friend bool operator==(const context_key&, const context_key&) = default;
};

struct context_key_hash {
  std::size_t operator()(const context_key& k) const noexcept;
};

/// The cache shard `key` lands in, out of `shard_count` (a power of
/// two): the *high* bits of context_key_hash.  unordered_map buckets
/// consume the hash modulo a bucket count — effectively the low bits —
/// so striping on the opposite end keeps shard choice and in-shard
/// bucketing independent.  Exposed for the dispersion test in
/// tests/test_context.cpp.
[[nodiscard]] inline std::size_t context_shard_index(
    const context_key& key, std::size_t shard_count) noexcept {
  if (shard_count <= 1) {
    return 0;
  }
  const std::size_t h = context_key_hash{}(key);
  const int width = std::numeric_limits<std::size_t>::digits;
  const int bits = std::countr_zero(shard_count);  // log2 of a power of two
  return h >> (width - bits);
}

/// One inline variable per element type: its address is the program-wide
/// unique type tag for context keys (elem_size alone cannot distinguish
/// float from int32_t, whose workspaces are distinct template types).
template <typename T>
inline constexpr char context_type_tag = 0;

/// One plan-cache slot: a lock-protected free list of type-erased arenas
/// (transposer<T> instances — the key's type_tag pins T) plus their
/// approximate retained bytes.
struct context_entry {
  util::annotated_mutex mu;
  /// Set at eviction; blocks further recycling.
  bool evicted INPLACE_GUARDED_BY(mu) = false;
  std::vector<std::pair<std::shared_ptr<void>, std::size_t>> arenas
      INPLACE_GUARDED_BY(mu);
};

/// One node of a shard's LRU list.
struct context_lru_node {
  context_key key;
  std::shared_ptr<context_entry> entry;
};
using context_lru_iter = std::list<context_lru_node>::iterator;

/// One lock stripe of the plan cache: its own mutex, recency list and
/// key index.  Shards never take each other's locks; the only cross-
/// shard state is the global atomic byte budget.
struct cache_shard {
  mutable util::annotated_mutex mu;
  std::list<context_lru_node> lru INPLACE_GUARDED_BY(mu);
  std::unordered_map<context_key, context_lru_iter, context_key_hash> map
      INPLACE_GUARDED_BY(mu);
};

}  // namespace detail

/// Thread-safe reusable execution context (see the header comment).
class transpose_context {
 public:
  explicit transpose_context(const context_options& copts = {});
  ~transpose_context();
  transpose_context(const transpose_context&) = delete;
  transpose_context& operator=(const transpose_context&) = delete;

  /// Equivalent to inplace::transpose(data, rows, cols, order, opts),
  /// with plan/arena reuse across same-shape calls.
  template <typename T>
  void transpose(T* data, std::size_t rows, std::size_t cols,
                 storage_order order = storage_order::row_major,
                 const options& opts = {}) {
    run(data, rows, cols, static_cast<std::uint8_t>(order), opts,
        mode_transpose);
  }

  /// The raw C2R permutation of an m x n row-major view (cached).
  template <typename T>
  void c2r(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
    run(data, m, n, /*order_tag=*/0, opts, mode_c2r);
  }

  /// The raw R2C permutation — the inverse of c2r (cached).
  template <typename T>
  void r2c(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
    run(data, m, n, /*order_tag=*/0, opts, mode_r2c);
  }

  /// In-place axis permutation of a rank-N row-major tensor: output axis
  /// k takes input axis perm[k] (the permute3 convention, any rank up to
  /// tensor_max_rank).  The permutation is normalized (unit extents
  /// dropped, contiguous axis groups fused), decomposed into
  /// batched/flat 2-D transpositions and chunk-grid passes by a
  /// cost-model search (core/tensor_plan.hpp), and the resolved
  /// nd_transposer arena is cached under the normalized key — repeated
  /// permutations of the same residual problem run the warm path with
  /// zero planning and zero allocation.  Every path records telemetry,
  /// including the empty and identity early returns.
  template <typename T>
  void permute_nd(T* data, std::span<const std::size_t> dims,
                  std::span<const int> perm, const options& opts = {}) {
    detail::validate_nd_perm(dims, perm);
    const std::size_t total =
        detail::checked_extent_nd(data, dims.data(), dims.size(), sizeof(T));
    if (total == 0) {
      detail::note_tensor_record<T>(0, dims.size(), 0, false,
                                    scratch_rung::full, "empty");
      INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total, 0, 0);
      return;
    }
    const detail::nd_normalized norm = detail::normalize_nd(dims, perm);
    if (norm.rank <= 1) {
      // Identity on memory: nothing moves, but the call still records —
      // the degenerate-shape telemetry contract the 2-D executor keeps.
      detail::note_tensor_record<T>(norm.total, dims.size(), 0, false,
                                    scratch_rung::full, "identity");
      INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                             2 * norm.total * sizeof(T), 0);
      return;
    }

    detail::context_key key;
    key.elem_size = sizeof(T);
    key.type_tag = &detail::context_type_tag<T>;
    key.mode = mode_permute_nd;
    key.alg = static_cast<std::uint8_t>(opts.alg);
    key.engine = static_cast<std::uint8_t>(opts.engine);
    key.kernel = static_cast<std::uint8_t>(opts.kernel);
    key.tile = static_cast<std::uint8_t>(opts.tile);
    key.strength_reduction = opts.strength_reduction;
    key.threads = opts.threads;
    key.block_bytes = opts.block_bytes;
    key.nd_rank = static_cast<std::uint8_t>(norm.rank);
    for (std::size_t k = 0; k < norm.rank; ++k) {
      key.nd_dims[k] = norm.dims[k];
    }
    key.nd_perm = detail::pack_nd_perm(norm);

    run_cached<nd_transposer<T>>(data, key, [&] {
      return new nd_transposer<T>(detail::make_tensor_plan(norm, sizeof(T)),
                                  opts);
    });
  }

  /// Asynchronous transpose: enqueues the job on the context's worker
  /// pool and returns a future that completes (or carries the exception)
  /// when the transposition finishes.  The buffer must stay alive and
  /// unaliased until then.
  ///
  /// Lifecycle guarantees: blocks while context_options::max_queue jobs
  /// are already pending (backpressure); throws context_shutdown — with
  /// the job never queued and the buffer untouched — once shutdown()
  /// ran or the context is being destroyed, and queue_overflow for a
  /// worker-thread re-entrant submit against a full queue (which would
  /// otherwise deadlock).  Every future this returns is eventually
  /// satisfied: with a value, the job's own exception, deadline_exceeded
  /// if its job_options deadline lapsed before pickup, or
  /// context_shutdown if the context went down before the job started.
  template <typename T>
  [[nodiscard]] std::future<void> submit(
      T* data, std::size_t rows, std::size_t cols,
      storage_order order = storage_order::row_major,
      const options& opts = {}) {
    return submit(data, rows, cols, order, opts, job_options{});
  }

  /// submit() with explicit scheduling: a QoS class (interactive jobs
  /// overtake queued standard/batch work) and an optional absolute
  /// deadline.  A job whose deadline passes before a worker picks it up
  /// settles its future with deadline_exceeded without running.
  template <typename T>
  [[nodiscard]] std::future<void> submit(T* data, std::size_t rows,
                                         std::size_t cols,
                                         storage_order order,
                                         const options& opts,
                                         const job_options& sched) {
    auto done = std::make_shared<std::promise<void>>();
    std::future<void> fut = done->get_future();
    detail::context_workers::job body =
        [this, done, data, rows, cols, order, opts](
            std::exception_ptr abort) {
          if (abort) {
            done->set_exception(abort);
            return;
          }
          try {
            this->transpose(data, rows, cols, order, opts);
            done->set_value();
          } catch (...) {
            done->set_exception(std::current_exception());
          }
        };
    // Counted before the enqueue and rolled back if it throws: with the
    // old count-after-enqueue ordering a fast worker could settle the
    // job before it was counted, so a concurrent stats() snapshot saw
    // settled counters ahead of async_jobs (torn read).  On throw the
    // closure — and with it the promise — is discarded along with
    // `fut`, which submit's caller never receives.
    async_jobs_.fetch_add(1, std::memory_order_relaxed);
    try {
      workers().enqueue(std::move(body), sched);
    } catch (...) {
      async_jobs_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    return fut;
  }

  /// Runs every job over the shared worker pool, blocking until all
  /// complete.  Failures are captured per job (never thrown): jobs after
  /// a failing one still run.  Each job's `sched` options apply — the
  /// pool runs higher-QoS jobs first regardless of span order.
  template <typename T>
  batch_result transpose_batch(std::span<const transpose_job<T>> jobs) {
    batch_result res;
    res.errors.assign(jobs.size(), std::exception_ptr{});
    std::vector<std::future<void>> futs;
    futs.reserve(jobs.size());
    for (const auto& job : jobs) {
      futs.push_back(submit(job.data, job.rows, job.cols, job.order,
                            job.opts, job.sched));
    }
    for (std::size_t k = 0; k < futs.size(); ++k) {
      try {
        futs[k].get();
      } catch (...) {
        res.errors[k] = std::current_exception();
        ++res.failed;
      }
    }
    return res;
  }

  /// Snapshot of the cache and scheduling counters.  Coherent for the
  /// monotonic per-class invariant settled() <= enqueued (the settle
  /// side is read before the enqueue side, against release stores).
  [[nodiscard]] context_stats stats() const;

  /// Currently cached plan count / approximate pinned arena bytes.
  [[nodiscard]] std::size_t cached_plans() const;
  [[nodiscard]] std::size_t cached_bytes() const;

  /// The resolved shard count (power of two).
  [[nodiscard]] std::size_t cache_shards() const { return shard_count_; }

  /// Drops every cached plan and arena (in-flight executions finish on
  /// the arenas they hold).  Counters are not reset.
  void clear();

  /// Stops the async machinery deterministically: no further submit()
  /// succeeds (context_shutdown), in-flight jobs finish, and
  /// queued-but-unstarted jobs either run (drain_pending=true) or fail
  /// their futures with context_shutdown (default).  Either way every
  /// outstanding future is satisfied when this returns.  Idempotent;
  /// the destructor calls shutdown(false) implicitly.  Synchronous
  /// entry points (transpose/c2r/r2c) keep working after shutdown.
  void shutdown(bool drain_pending = false);

  /// Fails every queued-but-unstarted async job with context_shutdown,
  /// without shutting the context down (later submits still work).
  /// In-flight jobs are not interrupted.  Returns how many were failed.
  std::size_t cancel_pending();

 private:
  static constexpr std::uint8_t mode_transpose = 0;
  static constexpr std::uint8_t mode_c2r = 1;
  static constexpr std::uint8_t mode_r2c = 2;
  static constexpr std::uint8_t mode_permute_nd = 3;

  /// Finds (LRU-touching) or inserts the entry for `key` in its shard,
  /// evicting past the per-shard plan bound.  Sets `hit` iff the key
  /// was already cached.
  std::shared_ptr<detail::context_entry> acquire_entry(
      const detail::context_key& key, bool& hit);

  /// Drops one LRU node of `shard` and its stored arenas.
  void evict_locked(detail::cache_shard& shard, detail::context_lru_iter it)
      INPLACE_REQUIRES(shard.mu);

  /// Lazily started worker pool for the async entry points.
  detail::context_workers& workers() INPLACE_EXCLUDES(workers_mu_);

  /// The single audited checkout/execute/recycle path every cached entry
  /// point shares.  `Arena` is the per-plan executor type (transposer<T>
  /// for the 2-D modes, nd_transposer<T> for permute_nd) and must provide
  /// execute(T*, bool from_cache), cached_bytes() and degraded(); `make`
  /// builds a fresh heap-allocated arena on a cache miss.  All counter
  /// and byte-budget semantics (reservation-settled recycling, the
  /// drop-on-exception rule, degradation accounting) live here once.
  template <typename Arena, typename T, typename Make>
  void run_cached(T* data, const detail::context_key& key, Make&& make) {
    bool hit = false;
    std::shared_ptr<detail::context_entry> entry = acquire_entry(key, hit);

    // Check out an arena; `warm` means this execution skips allocation
    // and cycle discovery entirely.
    std::shared_ptr<void> arena;
    std::size_t arena_bytes = 0;
    {
      util::mutex_guard lock(entry->mu);
      if (!entry->arenas.empty()) {
        arena = std::move(entry->arenas.back().first);
        arena_bytes = entry->arenas.back().second;
        entry->arenas.pop_back();
      }
    }
    const bool warm = arena != nullptr;
    if (warm) {
      retained_bytes_.fetch_sub(arena_bytes, std::memory_order_relaxed);
      arenas_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      arena = std::shared_ptr<void>(static_cast<void*>(make()), [](void* p) {
        delete static_cast<Arena*>(p);
      });
      arenas_created_.fetch_add(1, std::memory_order_relaxed);
      if (static_cast<Arena*>(arena.get())->degraded()) {
        // Scratch acquisition walked the OOM ladder while building this
        // arena — surface the pressure episode in the stats.
        arenas_degraded_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto* tr = static_cast<Arena*>(arena.get());

    executions_.fetch_add(1, std::memory_order_relaxed);
    try {
      tr->execute(data, /*from_cache=*/warm);
    } catch (...) {
      // The arena's memo/scratch state may be mid-update — drop it rather
      // than recycle a possibly inconsistent warm path.
      arenas_dropped_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }

    // Recycle within the per-plan and total-bytes budgets.  The byte
    // budget is settled by *reservation*: fetch_add first, check the
    // bound on the pre-reservation value, and roll the reservation back
    // if the arena is not recycled after all.  With the old
    // load-compare-add sequence two racing recycles on different
    // entries could both pass the check and overshoot the budget; a
    // reservation loses at most transiently (a doomed reservation can
    // make a neighbor drop, never overshoot).  The reservation also
    // happens before the arena becomes visible to eviction, preserving
    // the PR-5 underflow fix: evict_locked only ever subtracts bytes
    // that were added first.
    const std::size_t bytes = tr->cached_bytes();
    bool recycled = false;
    {
      util::mutex_guard lock(entry->mu);
      if (!entry->evicted && entry->arenas.size() < max_arenas_per_plan_) {
        const std::size_t prior =
            retained_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        if (prior + bytes <= max_cached_bytes_) {
          entry->arenas.emplace_back(std::move(arena), bytes);
          recycled = true;
        } else {
          retained_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
        }
      }
    }
    if (!recycled) {
      arenas_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  template <typename T>
  void run(T* data, std::size_t rows, std::size_t cols,
           std::uint8_t order_tag, const options& opts, std::uint8_t mode) {
    detail::checked_extent(data, rows, cols);

    detail::context_key key;
    key.rows = rows;
    key.cols = cols;
    key.elem_size = sizeof(T);
    key.type_tag = &detail::context_type_tag<T>;
    key.mode = mode;
    key.order = order_tag;
    key.alg = static_cast<std::uint8_t>(opts.alg);
    key.engine = static_cast<std::uint8_t>(opts.engine);
    key.kernel = static_cast<std::uint8_t>(opts.kernel);
    key.tile = static_cast<std::uint8_t>(opts.tile);
    key.strength_reduction = opts.strength_reduction;
    key.threads = opts.threads;
    key.block_bytes = opts.block_bytes;

    run_cached<transposer<T>>(data, key, [&] {
      const transpose_plan plan =
          mode == mode_transpose
              ? make_plan(data, rows, cols,
                          static_cast<storage_order>(order_tag), opts,
                          sizeof(T))
              : make_directed_plan(
                    data, rows, cols,
                    mode == mode_c2r ? direction::c2r : direction::r2c, opts,
                    sizeof(T));
      return new transposer<T>(plan);
    });
  }

  // Sizing knobs resolved at construction; const so no lock discipline
  // applies (the linter's guarded-by rule audits every non-exempt field
  // of a mutex-bearing class).
  const std::size_t max_plans_;
  const std::size_t max_arenas_per_plan_;
  const std::size_t max_cached_bytes_;
  const std::size_t shard_count_;      ///< power of two in [1, 256]
  const std::size_t worker_count_;
  const std::size_t max_queue_;
  const bool pin_workers_;

  /// The lock stripes.  The vector itself is immutable after
  /// construction (const, sized shard_count_); all mutation happens
  /// inside a shard under its own mu.
  const std::vector<std::unique_ptr<detail::cache_shard>> shards_;

  /// Plans cached across all shards.  Capacity is governed globally
  /// (insert evicts from its own shard while this is at max_plans_), so
  /// a skewed key distribution cannot shrink the effective cache the
  /// way a hard per-shard quota would.
  std::atomic<std::size_t> plan_count_{0};
  std::atomic<std::size_t> retained_bytes_{0};
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> plan_hits_{0};
  std::atomic<std::uint64_t> plan_misses_{0};
  std::atomic<std::uint64_t> plan_evictions_{0};
  std::atomic<std::uint64_t> arenas_created_{0};
  std::atomic<std::uint64_t> arenas_reused_{0};
  std::atomic<std::uint64_t> arenas_dropped_{0};
  std::atomic<std::uint64_t> async_jobs_{0};
  std::atomic<std::uint64_t> arenas_degraded_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};

  /// Guards lazy worker start and the shutdown flag (a mutex, not a
  /// once_flag: shutdown() must observe and stop a pool that a racing
  /// submit() is still creating).  The pool pointer is guarded; the pool
  /// *object* is internally synchronized, so shutdown()/cancel_pending()
  /// legitimately copy the raw pointer out and call it unlocked.
  mutable util::annotated_mutex workers_mu_;
  bool shutdown_ INPLACE_GUARDED_BY(workers_mu_) = false;
  std::unique_ptr<detail::context_workers> workers_
      INPLACE_GUARDED_BY(workers_mu_);
};

/// The process-wide context the free functions in core/transpose.hpp
/// execute through.  Shared by all threads; never destroyed before other
/// statics that might transpose during teardown.
transpose_context& default_context();

/// transpose_batch over the default context.
template <typename T>
batch_result transpose_batch(std::span<const transpose_job<T>> jobs) {
  return default_context().transpose_batch(jobs);
}

}  // namespace inplace
