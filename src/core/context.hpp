#pragma once
// Reusable execution context: plan/workspace caching with async batched
// submission.
//
// Every one-shot `inplace::transpose` pays the amortizable setup cost on
// the hot path — planning, a fresh scratch arena (threads x O(max(m, n))
// elements for the blocked engine), the strength-reduced reciprocals, and
// row-permutation cycle discovery.  `transpose_context` amortizes all of
// it across calls:
//
//   * an LRU plan cache keyed by (rows, cols, elem_size, element type,
//     entry point/order, and every planning-relevant option), bounded by
//     context_options::max_plans;
//   * per-plan reusable arenas — `transposer<T>` instances holding the
//     resolved plan, the index math, the workspace pool and the memoized
//     cycle leaders — checked out exclusively per execution, so the warm
//     path performs zero allocations and zero cycle re-discovery;
//   * an async submission API: `submit()` returns a std::future<void>,
//     `transpose_batch()` runs a span of jobs over one shared worker pool
//     with per-job error capture.
//
// The free functions in core/transpose.hpp route through a process-wide
// `default_context()`, so plain `transpose(data, m, n)` callers get warm
// plan reuse without managing a context.  All entry points are
// thread-safe; concurrent same-shape calls each receive their own arena.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/errors.hpp"
#include "core/executor.hpp"
#include "core/failpoint.hpp"
#include "util/annotated_mutex.hpp"

namespace inplace {

/// Sizing knobs for a transpose_context.
struct context_options {
  /// Distinct cached plans (LRU beyond this).  Clamped to at least 1.
  std::size_t max_plans = 16;

  /// Arenas kept per plan.  Concurrent same-shape executions past this
  /// count still run (with a transient arena); only recycling is bounded.
  std::size_t max_arenas_per_plan = 4;

  /// Total bytes of scratch the context may pin across all cached arenas
  /// (approximate; Theorem 6 scratch plus memoized cycle leaders).  An
  /// arena whose return would exceed the budget is dropped instead of
  /// recycled.
  std::size_t max_cached_bytes = std::size_t{256} << 20;

  /// Worker threads for submit()/transpose_batch(); 0 picks a small
  /// default.  Workers start lazily on the first async call — a context
  /// used synchronously never spawns threads.
  std::size_t workers = 0;

  /// Bounded-queue backpressure for the async entry points: submit()
  /// blocks while this many jobs are already queued (clamped to at least
  /// 1).  Keeps a producer that outruns the workers from growing the
  /// queue — and the set of outstanding futures — without bound.
  std::size_t max_queue = 1024;
};

/// Monotonic counters describing a context's cache behavior.
struct context_stats {
  std::uint64_t executions = 0;      ///< transposes run through the context
  std::uint64_t plan_hits = 0;       ///< key already cached
  std::uint64_t plan_misses = 0;     ///< key planned fresh
  std::uint64_t plan_evictions = 0;  ///< LRU entries dropped
  std::uint64_t arenas_created = 0;  ///< transposer arenas allocated
  std::uint64_t arenas_reused = 0;   ///< warm checkouts (no allocation)
  std::uint64_t arenas_dropped = 0;  ///< not recycled (cap or exception)
  std::uint64_t async_jobs = 0;      ///< submit()/batch jobs enqueued
  /// Arenas whose scratch acquisition landed below scratch_rung::full
  /// (the OOM degradation ladder engaged while building them).
  std::uint64_t arenas_degraded = 0;
  /// Async jobs failed with context_shutdown before they ran (shutdown
  /// with drain_pending=false, or cancel_pending()).
  std::uint64_t jobs_cancelled = 0;
};

/// One matrix in a transpose_batch() call.
template <typename T>
struct transpose_job {
  T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  storage_order order = storage_order::row_major;
  options opts{};
};

/// Per-job outcome of transpose_batch(): errors[k] is the exception (if
/// any) job k threw; the batch always runs every job.
struct batch_result {
  std::vector<std::exception_ptr> errors;
  std::size_t failed = 0;

  [[nodiscard]] bool ok() const { return failed == 0; }

  /// Rethrows the first captured error, if any.
  void rethrow_first() const {
    for (const auto& e : errors) {
      if (e) {
        std::rethrow_exception(e);
      }
    }
  }
};

namespace detail {

/// Identity of one cached (plan, arena family): the shape, the element
/// type, the entry point, and every option the planner reads.  Two keys
/// comparing equal guarantee the cached transposer<T> is exactly the one
/// the call would have built.
struct context_key {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::size_t elem_size = 0;
  const void* type_tag = nullptr;  ///< &context_type_tag<T>
  std::uint8_t mode = 0;           ///< 0 transpose, 1 c2r, 2 r2c
  std::uint8_t order = 0;          ///< storage_order (transpose mode only)
  std::uint8_t alg = 0;            ///< options::algorithm
  std::uint8_t engine = 0;         ///< engine_kind
  std::uint8_t kernel = 0;         ///< kernels::tier (requested, pre-resolve)
  bool strength_reduction = true;
  int threads = 0;
  std::size_t block_bytes = 0;

  friend bool operator==(const context_key&, const context_key&) = default;
};

struct context_key_hash {
  std::size_t operator()(const context_key& k) const noexcept;
};

/// One inline variable per element type: its address is the program-wide
/// unique type tag for context keys (elem_size alone cannot distinguish
/// float from int32_t, whose workspaces are distinct template types).
template <typename T>
inline constexpr char context_type_tag = 0;

/// One plan-cache slot: a lock-protected free list of type-erased arenas
/// (transposer<T> instances — the key's type_tag pins T) plus their
/// approximate retained bytes.
struct context_entry {
  util::annotated_mutex mu;
  /// Set at eviction; blocks further recycling.
  bool evicted INPLACE_GUARDED_BY(mu) = false;
  std::vector<std::pair<std::shared_ptr<void>, std::size_t>> arenas
      INPLACE_GUARDED_BY(mu);
};

/// FIFO worker pool backing submit()/transpose_batch(), with bounded
/// backpressure and deterministic shutdown.
///
/// Lifecycle contract: every job that enters the queue is *settled*
/// exactly once — run by a worker, or failed (invoked with a non-null
/// exception_ptr) by shutdown(drain=false)/cancel_pending().  Jobs are
/// closures over a promise, so "settled" means the caller's future never
/// dangles unsatisfied, however the pool goes down.
class context_workers {
 public:
  /// One queued job.  Invoked with a null exception_ptr to run normally,
  /// or with the failure reason to satisfy its promise with — either
  /// way, the job must settle its future and must not throw.
  using job = std::function<void(std::exception_ptr)>;

  /// Spawns `count` workers (at least 1).  If a thread fails to start,
  /// the already-started workers are stopped and joined before the
  /// exception propagates — no half-alive pool escapes.
  context_workers(std::size_t count, std::size_t max_queue);

  /// Equivalent to shutdown(/*drain_pending=*/false): queued-but-
  /// unstarted jobs fail with context_shutdown, in-flight jobs finish,
  /// workers join.
  ~context_workers();
  context_workers(const context_workers&) = delete;
  context_workers& operator=(const context_workers&) = delete;

  /// Enqueues a job, blocking while the queue is at max_queue
  /// (backpressure).  Throws context_shutdown once shutdown began; the
  /// job is then untouched (the caller still holds it and must settle
  /// its own promise — transpose_context::submit simply propagates).
  void enqueue(job j) INPLACE_EXCLUDES(mu_);

  /// Fails every queued-but-unstarted job with context_shutdown
  /// ("cancelled") without stopping the pool.  Returns how many.
  std::size_t cancel_pending() INPLACE_EXCLUDES(mu_);

  /// Stops the pool: no further enqueues succeed.  drain_pending=true
  /// runs the queued jobs first; false fails them with context_shutdown.
  /// In-flight jobs always finish.  Joins the workers; idempotent and
  /// safe to call concurrently.  Returns how many jobs were failed.
  std::size_t shutdown(bool drain_pending)
      INPLACE_EXCLUDES(mu_, join_mu_);

  /// Jobs queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const INPLACE_EXCLUDES(mu_);

 private:
  void worker_loop() INPLACE_EXCLUDES(mu_);

  /// Settles `doomed` with a context_shutdown carrying `what`.
  static std::size_t fail_jobs(std::deque<job>&& doomed, const char* what);

  mutable util::annotated_mutex mu_;
  std::condition_variable cv_work_;   ///< workers: work available / stopping
  std::condition_variable cv_space_;  ///< producers: queue below the bound
  std::deque<job> queue_ INPLACE_GUARDED_BY(mu_);
  bool stopping_ INPLACE_GUARDED_BY(mu_) = false;
  const std::size_t max_queue_;  ///< immutable after construction
  /// Serializes the join in concurrent shutdowns; ordered after mu_
  /// (shutdown takes mu_ first, releases it, then joins under join_mu_ —
  /// the two are never held together).
  util::annotated_mutex join_mu_;
  std::vector<std::thread> threads_ INPLACE_GUARDED_BY(join_mu_);
};

}  // namespace detail

/// Thread-safe reusable execution context (see the header comment).
class transpose_context {
 public:
  explicit transpose_context(const context_options& copts = {});
  ~transpose_context();
  transpose_context(const transpose_context&) = delete;
  transpose_context& operator=(const transpose_context&) = delete;

  /// Equivalent to inplace::transpose(data, rows, cols, order, opts),
  /// with plan/arena reuse across same-shape calls.
  template <typename T>
  void transpose(T* data, std::size_t rows, std::size_t cols,
                 storage_order order = storage_order::row_major,
                 const options& opts = {}) {
    run(data, rows, cols, static_cast<std::uint8_t>(order), opts,
        mode_transpose);
  }

  /// The raw C2R permutation of an m x n row-major view (cached).
  template <typename T>
  void c2r(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
    run(data, m, n, /*order_tag=*/0, opts, mode_c2r);
  }

  /// The raw R2C permutation — the inverse of c2r (cached).
  template <typename T>
  void r2c(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
    run(data, m, n, /*order_tag=*/0, opts, mode_r2c);
  }

  /// Asynchronous transpose: enqueues the job on the context's worker
  /// pool and returns a future that completes (or carries the exception)
  /// when the transposition finishes.  The buffer must stay alive and
  /// unaliased until then.
  ///
  /// Lifecycle guarantees: blocks while context_options::max_queue jobs
  /// are already pending (backpressure); throws context_shutdown — with
  /// the job never queued and the buffer untouched — once shutdown()
  /// ran or the context is being destroyed.  Every future this returns
  /// is eventually satisfied: with a value, the job's own exception, or
  /// context_shutdown if the context went down before the job started.
  template <typename T>
  [[nodiscard]] std::future<void> submit(
      T* data, std::size_t rows, std::size_t cols,
      storage_order order = storage_order::row_major,
      const options& opts = {}) {
    auto done = std::make_shared<std::promise<void>>();
    std::future<void> fut = done->get_future();
    detail::context_workers::job body =
        [this, done, data, rows, cols, order, opts](
            std::exception_ptr abort) {
          if (abort) {
            done->set_exception(abort);
            return;
          }
          try {
            this->transpose(data, rows, cols, order, opts);
            done->set_value();
          } catch (...) {
            done->set_exception(std::current_exception());
          }
        };
    // May block (backpressure) or throw context_shutdown; on throw the
    // closure — and with it the promise — is discarded along with `fut`,
    // which submit's caller never receives.
    workers().enqueue(std::move(body));
    async_jobs_.fetch_add(1, std::memory_order_relaxed);
    return fut;
  }

  /// Runs every job over the shared worker pool, blocking until all
  /// complete.  Failures are captured per job (never thrown): jobs after
  /// a failing one still run.
  template <typename T>
  batch_result transpose_batch(std::span<const transpose_job<T>> jobs) {
    batch_result res;
    res.errors.assign(jobs.size(), std::exception_ptr{});
    std::vector<std::future<void>> futs;
    futs.reserve(jobs.size());
    for (const auto& job : jobs) {
      futs.push_back(submit(job.data, job.rows, job.cols, job.order,
                            job.opts));
    }
    for (std::size_t k = 0; k < futs.size(); ++k) {
      try {
        futs[k].get();
      } catch (...) {
        res.errors[k] = std::current_exception();
        ++res.failed;
      }
    }
    return res;
  }

  /// Snapshot of the cache counters.
  [[nodiscard]] context_stats stats() const;

  /// Currently cached plan count / approximate pinned arena bytes.
  [[nodiscard]] std::size_t cached_plans() const;
  [[nodiscard]] std::size_t cached_bytes() const;

  /// Drops every cached plan and arena (in-flight executions finish on
  /// the arenas they hold).  Counters are not reset.
  void clear();

  /// Stops the async machinery deterministically: no further submit()
  /// succeeds (context_shutdown), in-flight jobs finish, and
  /// queued-but-unstarted jobs either run (drain_pending=true) or fail
  /// their futures with context_shutdown (default).  Either way every
  /// outstanding future is satisfied when this returns.  Idempotent;
  /// the destructor calls shutdown(false) implicitly.  Synchronous
  /// entry points (transpose/c2r/r2c) keep working after shutdown.
  void shutdown(bool drain_pending = false);

  /// Fails every queued-but-unstarted async job with context_shutdown,
  /// without shutting the context down (later submits still work).
  /// In-flight jobs are not interrupted.  Returns how many were failed.
  std::size_t cancel_pending();

 private:
  static constexpr std::uint8_t mode_transpose = 0;
  static constexpr std::uint8_t mode_c2r = 1;
  static constexpr std::uint8_t mode_r2c = 2;

  struct lru_node {
    detail::context_key key;
    std::shared_ptr<detail::context_entry> entry;
  };
  using lru_iter = std::list<lru_node>::iterator;

  /// Finds (LRU-touching) or inserts the entry for `key`, evicting past
  /// max_plans.  Sets `hit` iff the key was already cached.
  std::shared_ptr<detail::context_entry> acquire_entry(
      const detail::context_key& key, bool& hit) INPLACE_EXCLUDES(mu_);

  /// Drops one LRU node and its stored arenas.
  void evict_locked(lru_iter it) INPLACE_REQUIRES(mu_);

  /// Lazily started worker pool for the async entry points.
  detail::context_workers& workers() INPLACE_EXCLUDES(workers_mu_);

  template <typename T>
  void run(T* data, std::size_t rows, std::size_t cols,
           std::uint8_t order_tag, const options& opts, std::uint8_t mode) {
    detail::checked_extent(data, rows, cols);

    detail::context_key key;
    key.rows = rows;
    key.cols = cols;
    key.elem_size = sizeof(T);
    key.type_tag = &detail::context_type_tag<T>;
    key.mode = mode;
    key.order = order_tag;
    key.alg = static_cast<std::uint8_t>(opts.alg);
    key.engine = static_cast<std::uint8_t>(opts.engine);
    key.kernel = static_cast<std::uint8_t>(opts.kernel);
    key.strength_reduction = opts.strength_reduction;
    key.threads = opts.threads;
    key.block_bytes = opts.block_bytes;

    bool hit = false;
    std::shared_ptr<detail::context_entry> entry = acquire_entry(key, hit);

    // Check out an arena; `warm` means this execution skips allocation
    // and cycle discovery entirely.
    std::shared_ptr<void> arena;
    std::size_t arena_bytes = 0;
    {
      util::mutex_guard lock(entry->mu);
      if (!entry->arenas.empty()) {
        arena = std::move(entry->arenas.back().first);
        arena_bytes = entry->arenas.back().second;
        entry->arenas.pop_back();
      }
    }
    const bool warm = arena != nullptr;
    if (warm) {
      retained_bytes_.fetch_sub(arena_bytes, std::memory_order_relaxed);
      arenas_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const transpose_plan plan =
          mode == mode_transpose
              ? make_plan(data, rows, cols,
                          static_cast<storage_order>(order_tag), opts,
                          sizeof(T))
              : make_directed_plan(
                    data, rows, cols,
                    mode == mode_c2r ? direction::c2r : direction::r2c, opts,
                    sizeof(T));
      arena = std::shared_ptr<void>(new transposer<T>(plan), [](void* p) {
        delete static_cast<transposer<T>*>(p);
      });
      arenas_created_.fetch_add(1, std::memory_order_relaxed);
      if (static_cast<transposer<T>*>(arena.get())->plan().rung !=
          scratch_rung::full) {
        // Scratch acquisition walked the OOM ladder while building this
        // arena — surface the pressure episode in the stats.
        arenas_degraded_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto* tr = static_cast<transposer<T>*>(arena.get());

    executions_.fetch_add(1, std::memory_order_relaxed);
    try {
      tr->execute(data, /*from_cache=*/warm);
    } catch (...) {
      // The arena's memo/scratch state may be mid-update — drop it rather
      // than recycle a possibly inconsistent warm path.
      arenas_dropped_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }

    // Recycle within the per-plan and total-bytes budgets.
    const std::size_t bytes = tr->cached_bytes();
    bool recycled = false;
    {
      util::mutex_guard lock(entry->mu);
      if (!entry->evicted && entry->arenas.size() < max_arenas_per_plan_ &&
          retained_bytes_.load(std::memory_order_relaxed) + bytes <=
              max_cached_bytes_) {
        entry->arenas.emplace_back(std::move(arena), bytes);
        // The byte accounting must happen under entry->mu, before the
        // arena is visible to eviction: with the old add-after-unlock
        // ordering, a concurrent evict_locked could fetch_sub this
        // arena's bytes *between* the push and the fetch_add, and
        // retained_bytes_ underflowed (wrapping to ~SIZE_MAX, which then
        // blocked all future recycling against max_cached_bytes_).
        retained_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        recycled = true;
      }
    }
    if (!recycled) {
      arenas_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Sizing knobs resolved at construction; const so no lock discipline
  // applies (the linter's guarded-by rule audits every non-exempt field
  // of a mutex-bearing class).
  const std::size_t max_plans_;
  const std::size_t max_arenas_per_plan_;
  const std::size_t max_cached_bytes_;
  const std::size_t worker_count_;
  const std::size_t max_queue_;

  mutable util::annotated_mutex mu_;  ///< guards lru_/map_
  std::list<lru_node> lru_ INPLACE_GUARDED_BY(mu_);
  std::unordered_map<detail::context_key, lru_iter, detail::context_key_hash>
      map_ INPLACE_GUARDED_BY(mu_);

  std::atomic<std::size_t> retained_bytes_{0};
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> plan_hits_{0};
  std::atomic<std::uint64_t> plan_misses_{0};
  std::atomic<std::uint64_t> plan_evictions_{0};
  std::atomic<std::uint64_t> arenas_created_{0};
  std::atomic<std::uint64_t> arenas_reused_{0};
  std::atomic<std::uint64_t> arenas_dropped_{0};
  std::atomic<std::uint64_t> async_jobs_{0};
  std::atomic<std::uint64_t> arenas_degraded_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};

  /// Guards lazy worker start and the shutdown flag (a mutex, not a
  /// once_flag: shutdown() must observe and stop a pool that a racing
  /// submit() is still creating).  The pool pointer is guarded; the pool
  /// *object* is internally synchronized, so shutdown()/cancel_pending()
  /// legitimately copy the raw pointer out and call it unlocked.
  util::annotated_mutex workers_mu_;
  bool shutdown_ INPLACE_GUARDED_BY(workers_mu_) = false;
  std::unique_ptr<detail::context_workers> workers_
      INPLACE_GUARDED_BY(workers_mu_);
};

/// The process-wide context the free functions in core/transpose.hpp
/// execute through.  Shared by all threads; never destroyed before other
/// statics that might transpose during teardown.
transpose_context& default_context();

/// transpose_batch over the default context.
template <typename T>
batch_result transpose_batch(std::span<const transpose_job<T>> jobs) {
  return default_context().transpose_batch(jobs);
}

}  // namespace inplace
