#include "core/errors.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/contracts.hpp"

namespace inplace::detail {

void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const char* msg) {
  std::string what("inplace contract violation [");
  what += kind;
  what += "] at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ": (";
  what += expr;
  what += ") — ";
  what += msg;
  // Aborting preserves the stack for debuggers and sanitizers; throwing
  // lets tests observe the violation.  The environment picks.
  if (std::getenv("INPLACE_CONTRACT_ABORT") != nullptr) {
    std::fprintf(stderr, "%s\n", what.c_str());
    std::abort();
  }
  throw contract_violation(what);
}

std::size_t checked_extent(const void* data, std::size_t rows,
                           std::size_t cols) {
  if (rows != 0 && cols > std::numeric_limits<std::size_t>::max() / rows) {
    throw error("inplace: rows*cols overflows size_t (" +
                std::to_string(rows) + " x " + std::to_string(cols) + ")");
  }
  const std::size_t total = rows * cols;
  if (total != 0 && data == nullptr) {
    throw error("inplace: null data with nonzero extent");
  }
  return total;
}

std::size_t checked_extent_nd(const void* data, const std::size_t* dims,
                              std::size_t rank, std::size_t elem_size) {
  constexpr std::size_t size_max = std::numeric_limits<std::size_t>::max();
  for (std::size_t k = 0; k < rank; ++k) {
    if (dims[k] == 0) {
      return 0;  // empty tensor: no element is ever addressed
    }
  }
  std::size_t total = 1;
  for (std::size_t k = 0; k < rank; ++k) {
    if (total > size_max / dims[k]) {
      throw error("inplace: extent product overflows size_t at axis " +
                  std::to_string(k) + " (extent " + std::to_string(dims[k]) +
                  ", partial product " + std::to_string(total) + ")");
    }
    total *= dims[k];
  }
  if (elem_size != 0 && total > size_max / elem_size) {
    throw error("inplace: tensor byte extent overflows size_t (" +
                std::to_string(total) + " elements of " +
                std::to_string(elem_size) + " bytes)");
  }
  if (data == nullptr) {
    throw error("inplace: null data with nonzero extent");
  }
  return total;
}

}  // namespace inplace::detail
