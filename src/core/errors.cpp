#include "core/errors.hpp"

#include <limits>

namespace inplace::detail {

std::size_t checked_extent(const void* data, std::size_t rows,
                           std::size_t cols) {
  if (rows != 0 && cols > std::numeric_limits<std::size_t>::max() / rows) {
    throw error("inplace: rows*cols overflows size_t (" +
                std::to_string(rows) + " x " + std::to_string(cols) + ")");
  }
  const std::size_t total = rows * cols;
  if (total != 0 && data == nullptr) {
    throw error("inplace: null data with nonzero extent");
  }
  return total;
}

}  // namespace inplace::detail
