#pragma once
// Barrett reduction for full 64-bit dividends.  The fast_divmod reciprocal
// (fastdiv.hpp) is exact only for 32-bit operands, which covers any matrix
// with mn < 2^32; beyond that the index equations fall back to hardware
// division.  This divider removes the fallback: with a 128-bit fixed-point
// reciprocal M = floor(2^128 / d), the quotient estimate
// q̂ = floor(x·M / 2^128) is within 1 of x/d for every x < 2^64, so one
// conditional correction yields the exact quotient and remainder.

#include <cstdint>
#include <stdexcept>

namespace inplace {

/// Exact division/modulus by a fixed divisor for arbitrary 64-bit
/// dividends, via 128-bit Barrett reduction.
class barrett_divmod {
 public:
  explicit constexpr barrett_divmod(std::uint64_t d) : d_(d) {
    if (d == 0) {
      throw std::invalid_argument("barrett_divmod: divisor must be nonzero");
    }
    // M = floor(2^128 / d) as two 64-bit limbs: the high limb is
    // floor(2^64 / d); the low limb is floor((r_hi·2^64) / d) where
    // r_hi = 2^64 mod d.  (Long division by limbs.)
    const auto two64 = static_cast<__uint128_t>(1) << 64;
    m_hi_ = static_cast<std::uint64_t>(two64 / d);
    const auto r_hi = static_cast<std::uint64_t>(two64 % d);
    m_lo_ = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(r_hi) << 64) / d);
  }

  constexpr barrett_divmod() : barrett_divmod(1) {}

  [[nodiscard]] constexpr std::uint64_t divisor() const { return d_; }

  struct qr {
    std::uint64_t quot;
    std::uint64_t rem;
  };

  [[nodiscard]] constexpr qr divmod(std::uint64_t x) const {
    if (d_ == 1) {
      return {x, 0};
    }
    // q̂ = (x · (m_hi·2^64 + m_lo)) >> 128
    const __uint128_t lo = static_cast<__uint128_t>(x) * m_lo_;
    const __uint128_t t =
        static_cast<__uint128_t>(x) * m_hi_ +
        static_cast<std::uint64_t>(lo >> 64);
    std::uint64_t q = static_cast<std::uint64_t>(t >> 64);
    std::uint64_t r = x - q * d_;
    if (r >= d_) {  // Barrett estimate is at most one short
      ++q;
      r -= d_;
    }
    return {q, r};
  }

  [[nodiscard]] constexpr std::uint64_t div(std::uint64_t x) const {
    return divmod(x).quot;
  }

  [[nodiscard]] constexpr std::uint64_t mod(std::uint64_t x) const {
    return divmod(x).rem;
  }

 private:
  std::uint64_t m_hi_ = 0;
  std::uint64_t m_lo_ = 0;
  std::uint64_t d_ = 1;
};

}  // namespace inplace
