#pragma once
// Public in-place transposition API.
//
//   inplace::transpose(data, rows, cols)        — transpose a row-major
//       rows x cols matrix in place; afterwards the buffer is the
//       row-major cols x rows transpose.  A storage_order argument selects
//       the column-major interpretation instead.
//
//   inplace::c2r(data, m, n) / inplace::r2c(data, m, n) — the raw
//       "Columns to Rows" / "Rows to Columns" permutations of Figure 1 on
//       an m x n row-major view.  They are mutual inverses; C2R equals the
//       row-major transposition (Theorem 1).
//
// All entry points run in O(mn) work with O(max(m, n)) auxiliary space
// (Theorem 6) and are parallelized with OpenMP when available.
//
// The free functions execute through the process-wide default_context()
// (core/context.hpp): repeated same-shape calls reuse the cached plan,
// scratch arenas and memoized permutation cycles instead of rebuilding
// them per call.  Construct a dedicated transpose_context (or a
// transposer<T>, core/executor.hpp) for isolated caching, async
// submission, or batch execution.  detail::execute_plan — the uncached
// one-shot path — lives in core/execute.hpp.

#include <cstddef>

#include "core/context.hpp"

namespace inplace {

/// Transposes a rows x cols matrix in place.  For row-major storage the
/// buffer afterwards holds the row-major cols x rows transpose; for
/// column-major, the column-major transpose.
template <typename T>
void transpose(T* data, std::size_t rows, std::size_t cols,
               storage_order order = storage_order::row_major,
               const options& opts = {}) {
  default_context().transpose(data, rows, cols, order, opts);
}

/// The raw C2R permutation of an m x n row-major view (Figure 1, left to
/// right).  Equivalent to row-major transposition (Theorem 1): afterwards
/// the buffer is the row-major n x m transpose.
template <typename T>
void c2r(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
  default_context().c2r(data, m, n, opts);
}

/// The raw R2C permutation of an m x n row-major view — the inverse of
/// c2r(data, m, n).  Per Theorem 2, r2c(data, n, m) also transposes a
/// row-major m x n matrix.
template <typename T>
void r2c(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
  default_context().r2c(data, m, n, opts);
}

}  // namespace inplace
