#pragma once
// Public in-place transposition API.
//
//   inplace::transpose(data, rows, cols)        — transpose a row-major
//       rows x cols matrix in place; afterwards the buffer is the
//       row-major cols x rows transpose.  A storage_order argument selects
//       the column-major interpretation instead.
//
//   inplace::c2r(data, m, n) / inplace::r2c(data, m, n) — the raw
//       "Columns to Rows" / "Rows to Columns" permutations of Figure 1 on
//       an m x n row-major view.  They are mutual inverses; C2R equals the
//       row-major transposition (Theorem 1).
//
// All entry points run in O(mn) work with O(max(m, n)) auxiliary space
// (Theorem 6) and are parallelized with OpenMP when available.

#include <cstddef>

#include "core/contracts.hpp"
#include "core/equations.hpp"
#include "core/errors.hpp"
#include "core/layout.hpp"
#include "core/plan.hpp"
#include "core/telemetry.hpp"
#include "cpu/engine_blocked.hpp"
#include "cpu/engine_reference.hpp"
#include "cpu/skinny.hpp"
#include "util/threads.hpp"

namespace inplace {

namespace detail {

/// Emits one telemetry plan record for an execution about to run.
/// Compiles to an empty function unless the translation unit defines
/// INPLACE_TELEMETRY.
template <typename T>
inline void note_plan_record([[maybe_unused]] const transpose_plan& plan) {
#if INPLACE_TELEMETRY_ENABLED
  if (telemetry::current_sink() != nullptr) {
    // A short-lived guard probes what thread pool this plan's request
    // would actually get (thread_count_guard restores on destruction).
    util::thread_count_guard probe(plan.threads);
    telemetry::plan_record rec;
    rec.engine = engine_name(plan.engine);
    rec.direction = direction_name(plan.dir);
    rec.m = plan.m;
    rec.n = plan.n;
    rec.block_width = plan.block_width;
    rec.elem_size = sizeof(T);
    rec.strength_reduction = plan.strength_reduction;
    rec.threads_requested = probe.requested();
    rec.threads_active = probe.active();
    rec.threads_honored = probe.honored();
    INPLACE_TELEMETRY_PLAN(rec);
  }
#endif
}

template <typename T, typename Math>
void run_with_math(T* data, const Math& mm, const transpose_plan& plan) {
  INPLACE_REQUIRE(mm.m == plan.m && mm.n == plan.n,
                  "index math shape does not match the plan");
  switch (plan.engine) {
    case engine_kind::reference: {
      workspace<T> ws;
      ws.reserve(mm.m, mm.n, plan.block_width);
      if (plan.dir == direction::c2r) {
        c2r_reference(data, mm, ws);
      } else {
        r2c_reference(data, mm, ws);
      }
      break;
    }
    case engine_kind::skinny: {
      workspace<T> ws;
      reserve_skinny(ws, mm.m, mm.n);
      if (plan.dir == direction::c2r) {
        c2r_skinny(data, mm, ws);
      } else {
        r2c_skinny(data, mm, ws);
      }
      break;
    }
    case engine_kind::blocked:
      if (plan.dir == direction::c2r) {
        c2r_blocked(data, mm, plan);
      } else {
        r2c_blocked(data, mm, plan);
      }
      break;
    case engine_kind::automatic:
      // make_plan/make_directed_plan guarantee a concrete engine (plan
      // postcondition); an unresolved plan here is forged or corrupted.
      // Fail loudly instead of silently picking an engine.
      INPLACE_CHECK(false,
                    "unresolved engine_kind::automatic reached the executor");
      throw error(
          "inplace: plan with unresolved engine_kind::automatic reached "
          "the executor (plans must come from make_plan/make_directed_"
          "plan/make_plan_for_shape)");
  }
}

template <typename T>
void execute_plan(T* data, const transpose_plan& plan) {
  // Degenerate shapes: a 1 x n or m x 1 matrix transposes to the identical
  // buffer, and the permutation equations degenerate with it.
  if (plan.m <= 1 || plan.n <= 1) {
    return;
  }
  note_plan_record<T>(plan);
  INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                         2 * plan.m * plan.n * sizeof(T),
                         plan.scratch_elements() * sizeof(T));
  if (plan.strength_reduction) {
    const transpose_math<fast_divmod> mm(plan.m, plan.n);
    run_with_math(data, mm, plan);
  } else {
    const transpose_math<plain_divmod> mm(plan.m, plan.n);
    run_with_math(data, mm, plan);
  }
}

}  // namespace detail

/// Transposes a rows x cols matrix in place.  For row-major storage the
/// buffer afterwards holds the row-major cols x rows transpose; for
/// column-major, the column-major transpose.
template <typename T>
void transpose(T* data, std::size_t rows, std::size_t cols,
               storage_order order = storage_order::row_major,
               const options& opts = {}) {
  const transpose_plan plan =
      make_plan(data, rows, cols, order, opts, sizeof(T));
  detail::execute_plan(data, plan);
}

/// The raw C2R permutation of an m x n row-major view (Figure 1, left to
/// right).  Equivalent to row-major transposition (Theorem 1): afterwards
/// the buffer is the row-major n x m transpose.
template <typename T>
void c2r(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
  const transpose_plan plan =
      make_directed_plan(data, m, n, direction::c2r, opts, sizeof(T));
  detail::execute_plan(data, plan);
}

/// The raw R2C permutation of an m x n row-major view — the inverse of
/// c2r(data, m, n).  Per Theorem 2, r2c(data, n, m) also transposes a
/// row-major m x n matrix.
template <typename T>
void r2c(T* data, std::size_t m, std::size_t n, const options& opts = {}) {
  const transpose_plan plan =
      make_directed_plan(data, m, n, direction::r2c, opts, sizeof(T));
  detail::execute_plan(data, plan);
}

}  // namespace inplace
