#pragma once
// Out-of-place row/column permutation primitives and the reusable scratch
// workspace.  Algorithm 1 performs every permutation out-of-place into a
// temporary vector of max(m, n) elements and copies the result back; these
// helpers are those two loops, expressed once.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace inplace::detail {

/// Scratch storage for one in-place transposition.  Holds the paper's
/// max(m, n)-element temporary vector plus the small fixed-size buffers
/// used by the cache-aware passes (Sections 4.6-4.7): a head buffer of
/// width^2 elements, one sub-row, a visited bitmap and the cycle-leader
/// list for the row permutation.
template <typename T>
struct workspace {
  std::vector<T> line;        ///< max(m, n) elements (Algorithm 1's tmp)
  std::vector<T> head;        ///< width * width elements (fine rotation)
  std::vector<T> subrow;      ///< width elements (coarse rotation)
  std::vector<std::uint8_t> visited;        ///< m flags (cycle discovery)
  std::vector<std::uint64_t> cycle_starts;  ///< row-permutation cycles
  std::vector<std::uint64_t> offsets;       ///< per-column residual shifts

  void reserve(std::uint64_t m, std::uint64_t n, std::uint64_t width) {
    line.resize(static_cast<std::size_t>(std::max(m, n)));
    head.resize(static_cast<std::size_t>(width * width));
    subrow.resize(static_cast<std::size_t>(width));
    visited.assign(static_cast<std::size_t>(m), 0);
    offsets.resize(static_cast<std::size_t>(width));
    cycle_starts.clear();
  }
};

/// tmp[j] = row[idx(j)] for j in [0, n), then copy tmp back over the row.
template <typename T, typename IndexFn>
void row_gather_inplace(T* row, std::uint64_t n, T* tmp, IndexFn idx) {
  for (std::uint64_t j = 0; j < n; ++j) {
    tmp[j] = row[idx(j)];
  }
  std::copy(tmp, tmp + n, row);
}

/// tmp[idx(j)] = row[j] for j in [0, n), then copy tmp back over the row.
template <typename T, typename IndexFn>
void row_scatter_inplace(T* row, std::uint64_t n, T* tmp, IndexFn idx) {
  for (std::uint64_t j = 0; j < n; ++j) {
    tmp[idx(j)] = row[j];
  }
  std::copy(tmp, tmp + n, row);
}

/// tmp[i] = A[idx(i)][j] for i in [0, m), then copy tmp back down column j.
/// A is row-major m x n.  (Reference path; the cache-aware engines use the
/// blocked primitives in rotate.hpp instead.)
template <typename T, typename IndexFn>
void column_gather_inplace(T* a, std::uint64_t m, std::uint64_t n,
                           std::uint64_t j, T* tmp, IndexFn idx) {
  for (std::uint64_t i = 0; i < m; ++i) {
    tmp[i] = a[idx(i) * n + j];
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    a[i * n + j] = tmp[i];
  }
}

/// Finds the cycle structure of the row permutation P (a gather:
/// dst[i] = src[P(i)]), recording one starting index per nontrivial cycle.
/// Runs once per transposition; every column group then replays the cycles
/// (Section 4.7 computes cycles dynamically and stores the descriptors in
/// temporary memory).
template <typename PermFn>
void find_cycles(std::uint64_t m, PermFn perm,
                 std::vector<std::uint8_t>& visited,
                 std::vector<std::uint64_t>& cycle_starts) {
  std::fill(visited.begin(), visited.end(), std::uint8_t{0});
  cycle_starts.clear();
  for (std::uint64_t y = 0; y < m; ++y) {
    if (visited[y]) {
      continue;
    }
    visited[y] = 1;
    const std::uint64_t first = perm(y);
    if (first == y) {
      continue;  // fixed point
    }
    cycle_starts.push_back(y);
    for (std::uint64_t i = first; i != y; i = perm(i)) {
      visited[i] = 1;
    }
  }
}

/// Applies the row permutation (gather dst[i] = src[P(i)]) to the width-wide
/// column group starting at column j0, by following the precomputed cycles
/// and moving width-element sub-rows through `tmp` (width elements).
template <typename T, typename PermFn>
void permute_rows_in_group(T* a, std::uint64_t n, std::uint64_t j0,
                           std::uint64_t width, PermFn perm,
                           const std::vector<std::uint64_t>& cycle_starts,
                           T* tmp) {
  for (const std::uint64_t y : cycle_starts) {
    T* base = a + j0;
    std::copy(base + y * n, base + y * n + width, tmp);
    std::uint64_t i = y;
    for (;;) {
      const std::uint64_t s = perm(i);
      if (s == y) {
        std::copy(tmp, tmp + width, base + i * n);
        break;
      }
      std::copy(base + s * n, base + s * n + width, base + i * n);
      i = s;
    }
  }
}

}  // namespace inplace::detail
