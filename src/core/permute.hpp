#pragma once
// Out-of-place row/column permutation primitives and the reusable scratch
// workspace.  Algorithm 1 performs every permutation out-of-place into a
// temporary vector of max(m, n) elements and copies the result back; these
// helpers are those two loops, expressed once.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/contracts.hpp"

namespace inplace::detail {

#if INPLACE_CHECKS_ENABLED
/// Checked-mode slot-coverage tracker: proves that a shuffle of `size`
/// slots touches every slot exactly once (i.e. its index map is a
/// bijection).  Marking all `size` slots without a duplicate is exactly
/// that proof, since the indices are range-checked first.  A thread-local
/// generation-stamped array makes each tracker O(size) without clearing,
/// and keeps the concurrent engines' checks race-free.
class shuffle_coverage {
 public:
  explicit shuffle_coverage(std::uint64_t size) : size_(size) {
    if (stamps_.size() < size) {
      stamps_.resize(static_cast<std::size_t>(size), 0);
    }
    gen_ = ++generation_;
  }

  /// Marks `slot` visited; fails the contract on a duplicate visit.
  void mark(std::uint64_t slot, const char* what) {
    if (stamps_[static_cast<std::size_t>(slot)] == gen_) {
      contract_fail("postcondition", "slot visited once", __FILE__, __LINE__,
                    what);
    }
    stamps_[static_cast<std::size_t>(slot)] = gen_;
    ++marked_;
  }

  /// True when every slot in [0, size) was marked exactly once.
  [[nodiscard]] bool complete() const { return marked_ == size_; }

 private:
  inline static thread_local std::vector<std::uint64_t> stamps_;
  inline static thread_local std::uint64_t generation_ = 0;
  std::uint64_t size_;
  std::uint64_t gen_ = 0;
  std::uint64_t marked_ = 0;
};
#endif

/// Scratch storage for one in-place transposition.  Holds the paper's
/// max(m, n)-element temporary vector plus the small fixed-size buffers
/// used by the cache-aware passes (Sections 4.6-4.7): a head buffer of
/// width^2 elements, one sub-row, a visited bitmap and the cycle-leader
/// list for the row permutation.
template <typename T>
struct workspace {
  std::vector<T> line;        ///< max(m, n) elements (Algorithm 1's tmp)
  std::vector<T> head;        ///< width * width elements (fine rotation)
  std::vector<T> subrow;      ///< width elements (coarse rotation)
  std::vector<std::uint8_t> visited;        ///< m flags (cycle discovery)
  std::vector<std::uint64_t> cycle_starts;  ///< row-permutation cycles
  std::vector<std::uint64_t> offsets;       ///< per-column residual shifts

  void reserve(std::uint64_t m, std::uint64_t n, std::uint64_t width) {
    line.resize(static_cast<std::size_t>(std::max(m, n)));
    head.resize(static_cast<std::size_t>(width * width));
    subrow.resize(static_cast<std::size_t>(width));
    visited.assign(static_cast<std::size_t>(m), 0);
    offsets.resize(static_cast<std::size_t>(width));
    cycle_starts.clear();
    INPLACE_ENSURE(line.size() >= std::max(m, n),
                   "workspace line smaller than max(m, n) — Theorem 6's "
                   "scratch bound");
  }

  /// True when this workspace can serve an m x n problem with `width`-wide
  /// column groups (checked-mode capacity precondition for the engines).
  [[nodiscard]] bool fits(std::uint64_t m, std::uint64_t n,
                          std::uint64_t width) const {
    return line.size() >= std::max(m, n) && head.size() >= width * width &&
           subrow.size() >= width && visited.size() >= m &&
           offsets.size() >= width;
  }
};

/// Memoized cycle-leader list for a row permutation that is replayed
/// across executions of one cached plan (transpose_context / transposer
/// warm path).  Valid for exactly one permutation — one (m, n, direction)
/// tuple — so it lives next to the arena that discovered it.
struct cycle_memo {
  std::vector<std::uint64_t> starts;
  bool ready = false;
};

/// Per-column-group memoized cycle structure for the fused column shuffles
/// (engine_blocked): groups[g] holds the cycle leaders of group g's
/// group-local permutation.  Valid for one (m, n, width, direction) tuple.
struct col_cycle_memo {
  std::vector<std::vector<std::uint64_t>> groups;
  bool ready = false;
};

/// tmp[j] = row[idx(j)] for j in [0, n), then copy tmp back over the row.
/// Checked mode proves idx is a bijection on [0, n): n in-range gathers
/// without a duplicate source read every slot exactly once.
template <typename T, typename IndexFn>
void row_gather_inplace(T* row, std::uint64_t n, T* tmp, IndexFn idx) {
#if INPLACE_CHECKS_ENABLED
  shuffle_coverage cover(n);
#endif
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t s = idx(j);
    INPLACE_CHECK(s < n, "row shuffle gather index out of range (Eq. 31)");
#if INPLACE_CHECKS_ENABLED
    cover.mark(s, "row shuffle gather read a slot twice (Eq. 31 is not a "
                  "bijection)");
#endif
    tmp[j] = row[s];
  }
  INPLACE_ENSURE(cover.complete(),
                 "row shuffle gather skipped a slot (Eq. 31)");
  std::copy(tmp, tmp + n, row);
}

/// tmp[idx(j)] = row[j] for j in [0, n), then copy tmp back over the row.
/// Checked mode proves idx is a bijection on [0, n): n in-range scatters
/// without a collision fill every slot exactly once.
template <typename T, typename IndexFn>
void row_scatter_inplace(T* row, std::uint64_t n, T* tmp, IndexFn idx) {
#if INPLACE_CHECKS_ENABLED
  shuffle_coverage cover(n);
#endif
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t d = idx(j);
    INPLACE_CHECK(d < n, "row shuffle scatter index out of range (Eq. 24)");
#if INPLACE_CHECKS_ENABLED
    cover.mark(d, "row shuffle scatter wrote a slot twice (Eq. 24 is not a "
                  "bijection)");
#endif
    tmp[d] = row[j];
  }
  INPLACE_ENSURE(cover.complete(),
                 "row shuffle scatter left a slot unwritten (Eq. 24)");
  std::copy(tmp, tmp + n, row);
}

/// tmp[i] = A[idx(i)][j] for i in [0, m), then copy tmp back down column j.
/// A is row-major m x n.  (Reference path; the cache-aware engines use the
/// blocked primitives in rotate.hpp instead.)  Checked mode proves idx is
/// a bijection on [0, m) — the column shuffle visits every row once.
template <typename T, typename IndexFn>
void column_gather_inplace(T* a, std::uint64_t m, std::uint64_t n,
                           std::uint64_t j, T* tmp, IndexFn idx) {
#if INPLACE_CHECKS_ENABLED
  shuffle_coverage cover(m);
#endif
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t s = idx(i);
    INPLACE_CHECK(s < m, "column shuffle index out of range (Eq. 26)");
#if INPLACE_CHECKS_ENABLED
    cover.mark(s, "column shuffle read a row twice (Eq. 26 is not a "
                  "bijection)");
#endif
    tmp[i] = a[s * n + j];
  }
  INPLACE_ENSURE(cover.complete(),
                 "column shuffle skipped a row (Eq. 26)");
  for (std::uint64_t i = 0; i < m; ++i) {
    a[i * n + j] = tmp[i];
  }
}

/// Finds the cycle structure of the row permutation P (a gather:
/// dst[i] = src[P(i)]), recording one starting index per nontrivial cycle.
/// Runs once per transposition; every column group then replays the cycles
/// (Section 4.7 computes cycles dynamically and stores the descriptors in
/// temporary memory).
template <typename PermFn>
void find_cycles(std::uint64_t m, PermFn perm,
                 std::vector<std::uint8_t>& visited,
                 std::vector<std::uint64_t>& cycle_starts) {
  std::fill(visited.begin(), visited.end(), std::uint8_t{0});
  cycle_starts.clear();
#if INPLACE_CHECKS_ENABLED
  // A bijection on [0, m) decomposes into disjoint cycles whose lengths
  // sum to m; walking more than m steps in total means perm merged two
  // cycles (not injective) and the walk would never terminate.
  std::uint64_t steps = 0;
#endif
  for (std::uint64_t y = 0; y < m; ++y) {
    if (visited[y]) {
      continue;
    }
    visited[y] = 1;
    const std::uint64_t first = perm(y);
    INPLACE_CHECK(first < m, "row permutation index out of range");
    if (first == y) {
      continue;  // fixed point
    }
    cycle_starts.push_back(y);
    for (std::uint64_t i = first; i != y; i = perm(i)) {
      INPLACE_CHECK(i < m, "row permutation index out of range");
      INPLACE_CHECK(++steps <= m,
                    "row permutation cycle walk exceeded m steps (the map "
                    "is not a bijection)");
      INPLACE_CHECK(!visited[i],
                    "row permutation revisited a row (the map is not a "
                    "bijection)");
      visited[i] = 1;
    }
  }
}

/// Applies the row permutation (gather dst[i] = src[P(i)]) to the width-wide
/// column group starting at column j0, by following the precomputed cycles
/// and moving width-element sub-rows through `tmp` (width elements).
template <typename T, typename PermFn>
void permute_rows_in_group(T* a, std::uint64_t n, std::uint64_t j0,
                           std::uint64_t width, PermFn perm,
                           const std::vector<std::uint64_t>& cycle_starts,
                           T* tmp) {
  INPLACE_REQUIRE(j0 + width <= n,
                  "row permutation column group exceeds the row width");
  for (const std::uint64_t y : cycle_starts) {
    T* base = a + j0;
    std::copy(base + y * n, base + y * n + width, tmp);
    std::uint64_t i = y;
    for (;;) {
      const std::uint64_t s = perm(i);
      if (s == y) {
        std::copy(tmp, tmp + width, base + i * n);
        break;
      }
      std::copy(base + s * n, base + s * n + width, base + i * n);
      i = s;
    }
  }
}

}  // namespace inplace::detail
