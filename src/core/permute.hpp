#pragma once
// Out-of-place row/column permutation primitives and the reusable scratch
// workspace.  Algorithm 1 performs every permutation out-of-place into a
// temporary vector of max(m, n) elements and copies the result back; these
// helpers are those two loops, expressed once.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/contracts.hpp"
#include "cpu/kernels/kernel_set.hpp"
#include "util/aligned.hpp"

namespace inplace::detail {

/// Copies `count` elements dst <- src (disjoint).  Trivially copyable
/// element types go through memcpy — the compiler cannot always prove
/// the equivalence through the template, and glibc's memcpy beats an
/// element loop on whole-row copy-backs — everything else through
/// std::copy.
template <typename T>
inline void copy_back(T* dst, const T* src, std::uint64_t count) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    std::memcpy(dst, src, static_cast<std::size_t>(count) * sizeof(T));
  } else {
    std::copy(src, src + count, dst);
  }
}

/// Like copy_back, with the plan's kernel set and streaming decision:
/// `stream` selects the tier's self-fencing non-temporal copy for
/// destinations that will not be re-read before eviction.
template <typename T>
inline void copy_back(T* dst, const T* src, std::uint64_t count,
                      const kernels::kernel_set* ks, bool stream) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    if (ks != nullptr) {
      kernels::copy_elems(*ks, dst, src, static_cast<std::size_t>(count),
                          stream);
      return;
    }
  }
  copy_back(dst, src, count);
}

#if INPLACE_CHECKS_ENABLED
/// Checked-mode slot-coverage tracker: proves that a shuffle of `size`
/// slots touches every slot exactly once (i.e. its index map is a
/// bijection).  Marking all `size` slots without a duplicate is exactly
/// that proof, since the indices are range-checked first.  A thread-local
/// generation-stamped array makes each tracker O(size) without clearing,
/// and keeps the concurrent engines' checks race-free.
class shuffle_coverage {
 public:
  explicit shuffle_coverage(std::uint64_t size) : size_(size) {
    if (stamps_.size() < size) {
      // inplace-lint: allow-next(raw-alloc): checked-mode-only coverage
      // tracker; thread-local, grows monotonically to max(size) and is
      // absent from release builds (INPLACE_CHECKS_ENABLED gate)
      stamps_.resize(static_cast<std::size_t>(size), 0);
    }
    gen_ = ++generation_;
  }

  /// Marks `slot` visited; fails the contract on a duplicate visit.
  void mark(std::uint64_t slot, const char* what) {
    if (stamps_[static_cast<std::size_t>(slot)] == gen_) {
      contract_fail("postcondition", "slot visited once", __FILE__, __LINE__,
                    what);
    }
    stamps_[static_cast<std::size_t>(slot)] = gen_;
    ++marked_;
  }

  /// True when every slot in [0, size) was marked exactly once.
  [[nodiscard]] bool complete() const { return marked_ == size_; }

 private:
  inline static thread_local std::vector<std::uint64_t> stamps_;
  inline static thread_local std::uint64_t generation_ = 0;
  std::uint64_t size_;
  std::uint64_t gen_ = 0;
  std::uint64_t marked_ = 0;
};
#endif

/// Scratch storage for one in-place transposition.  Holds the paper's
/// max(m, n)-element temporary vector plus the small fixed-size buffers
/// used by the cache-aware passes (Sections 4.6-4.7): a head buffer of
/// width^2 elements, one sub-row, a visited bitmap and the cycle-leader
/// list for the row permutation.
/// All scratch buffers are 64-byte aligned (util::aligned_vector): the
/// vector kernels' non-temporal and aligned paths require it, and the
/// scalar loops assume it (std::assume_aligned below).
template <typename T>
struct workspace {
  util::aligned_vector<T> line;    ///< max(m, n) elements (Algorithm 1's tmp)
  util::aligned_vector<T> head;    ///< width * width elements (fine rotation)
  util::aligned_vector<T> subrow;  ///< width elements (coarse rotation)
  std::vector<std::uint8_t> visited;        ///< m flags (cycle discovery)
  std::vector<std::uint64_t> cycle_starts;  ///< row-permutation cycles
  std::vector<std::uint64_t> offsets;       ///< per-column residual shifts
  util::aligned_vector<std::uint64_t> index;  ///< kernel gather offsets

  void reserve(std::uint64_t m, std::uint64_t n, std::uint64_t width) {
    // inplace-lint: allow-block(raw-alloc): this IS the audited scratch
    // funnel — acquire_scratch sizes every workspace through here, once
    // per plan, before the engines run (Theorem 6's O(max(m,n)) bound)
    line.resize(static_cast<std::size_t>(std::max(m, n)));
    head.resize(static_cast<std::size_t>(width * width));
    subrow.resize(static_cast<std::size_t>(width));
    visited.assign(static_cast<std::size_t>(m), 0);
    offsets.resize(static_cast<std::size_t>(width));
    index.resize(static_cast<std::size_t>(width));
    cycle_starts.clear();
    // inplace-lint: end-block
    INPLACE_ENSURE(line.size() >= std::max(m, n),
                   "workspace line smaller than max(m, n) — Theorem 6's "
                   "scratch bound");
    INPLACE_ENSURE(util::is_scratch_aligned(line.data()) &&
                       util::is_scratch_aligned(head.data()) &&
                       util::is_scratch_aligned(subrow.data()),
                   "workspace scratch is not 64-byte aligned (the kernel "
                   "layer's streaming/aligned paths require it)");
  }

  /// True when this workspace can serve an m x n problem with `width`-wide
  /// column groups (checked-mode capacity precondition for the engines).
  [[nodiscard]] bool fits(std::uint64_t m, std::uint64_t n,
                          std::uint64_t width) const {
    return line.size() >= std::max(m, n) && head.size() >= width * width &&
           subrow.size() >= width && visited.size() >= m &&
           offsets.size() >= width && index.size() >= width;
  }
};

/// Memoized cycle-leader list for a row permutation that is replayed
/// across executions of one cached plan (transpose_context / transposer
/// warm path).  Valid for exactly one permutation — one (m, n, direction)
/// tuple — so it lives next to the arena that discovered it.
struct cycle_memo {
  std::vector<std::uint64_t> starts;
  bool ready = false;
};

/// Per-column-group memoized cycle structure for the fused column shuffles
/// (engine_blocked): groups[g] holds the cycle leaders of group g's
/// group-local permutation.  Valid for one (m, n, width, direction) tuple.
struct col_cycle_memo {
  std::vector<std::vector<std::uint64_t>> groups;
  bool ready = false;
};

/// tmp[j] = row[idx(j)] for j in [0, n), then copy tmp back over the row.
/// `tmp` must be 64-byte-aligned scratch disjoint from the row (the
/// engines pass workspace::line); the loop asserts both to the compiler.
/// Checked mode proves idx is a bijection on [0, n): n in-range gathers
/// without a duplicate source read every slot exactly once.
template <typename T, typename IndexFn>
void row_gather_inplace(T* row, std::uint64_t n, T* tmp, IndexFn idx) {
  INPLACE_CHECK(util::is_scratch_aligned(tmp),
                "row shuffle scratch is not 64-byte aligned (use "
                "workspace/aligned_vector scratch)");
#if INPLACE_CHECKS_ENABLED
  shuffle_coverage cover(n);
#endif
  const T* __restrict src = row;
  T* __restrict dst = std::assume_aligned<util::scratch_alignment>(tmp);
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t s = idx(j);
    INPLACE_CHECK(s < n, "row shuffle gather index out of range (Eq. 31)");
#if INPLACE_CHECKS_ENABLED
    cover.mark(s, "row shuffle gather read a slot twice (Eq. 31 is not a "
                  "bijection)");
#endif
    dst[j] = src[s];
  }
  INPLACE_ENSURE(cover.complete(),
                 "row shuffle gather skipped a slot (Eq. 31)");
  copy_back(row, tmp, n);
}

/// tmp[idx(j)] = row[j] for j in [0, n), then copy tmp back over the row.
/// Same tmp alignment/aliasing contract as row_gather_inplace.
/// Checked mode proves idx is a bijection on [0, n): n in-range scatters
/// without a collision fill every slot exactly once.
template <typename T, typename IndexFn>
void row_scatter_inplace(T* row, std::uint64_t n, T* tmp, IndexFn idx) {
  INPLACE_CHECK(util::is_scratch_aligned(tmp),
                "row shuffle scratch is not 64-byte aligned (use "
                "workspace/aligned_vector scratch)");
#if INPLACE_CHECKS_ENABLED
  shuffle_coverage cover(n);
#endif
  const T* __restrict src = row;
  T* __restrict dst = std::assume_aligned<util::scratch_alignment>(tmp);
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t d = idx(j);
    INPLACE_CHECK(d < n, "row shuffle scatter index out of range (Eq. 24)");
#if INPLACE_CHECKS_ENABLED
    cover.mark(d, "row shuffle scatter wrote a slot twice (Eq. 24 is not a "
                  "bijection)");
#endif
    dst[d] = src[j];
  }
  INPLACE_ENSURE(cover.complete(),
                 "row shuffle scatter left a slot unwritten (Eq. 24)");
  copy_back(row, tmp, n);
}

/// tmp[i] = A[idx(i)][j] for i in [0, m), then copy tmp back down column j.
/// A is row-major m x n.  (Reference path; the cache-aware engines use the
/// blocked primitives in rotate.hpp instead.)  Checked mode proves idx is
/// a bijection on [0, m) — the column shuffle visits every row once.
template <typename T, typename IndexFn>
void column_gather_inplace(T* a, std::uint64_t m, std::uint64_t n,
                           std::uint64_t j, T* tmp, IndexFn idx) {
  INPLACE_CHECK(util::is_scratch_aligned(tmp),
                "column shuffle scratch is not 64-byte aligned (use "
                "workspace/aligned_vector scratch)");
#if INPLACE_CHECKS_ENABLED
  shuffle_coverage cover(m);
#endif
  const T* __restrict src = a;
  T* __restrict dst = std::assume_aligned<util::scratch_alignment>(tmp);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t s = idx(i);
    INPLACE_CHECK(s < m, "column shuffle index out of range (Eq. 26)");
#if INPLACE_CHECKS_ENABLED
    cover.mark(s, "column shuffle read a row twice (Eq. 26 is not a "
                  "bijection)");
#endif
    dst[i] = src[s * n + j];
  }
  INPLACE_ENSURE(cover.complete(),
                 "column shuffle skipped a row (Eq. 26)");
  for (std::uint64_t i = 0; i < m; ++i) {
    a[i * n + j] = tmp[i];
  }
}

/// Finds the cycle structure of the row permutation P (a gather:
/// dst[i] = src[P(i)]), recording one starting index per nontrivial cycle.
/// Runs once per transposition; every column group then replays the cycles
/// (Section 4.7 computes cycles dynamically and stores the descriptors in
/// temporary memory).
template <typename PermFn>
void find_cycles(std::uint64_t m, PermFn perm,
                 std::vector<std::uint8_t>& visited,
                 std::vector<std::uint64_t>& cycle_starts) {
  std::fill(visited.begin(), visited.end(), std::uint8_t{0});
  cycle_starts.clear();
#if INPLACE_CHECKS_ENABLED
  // A bijection on [0, m) decomposes into disjoint cycles whose lengths
  // sum to m; walking more than m steps in total means perm merged two
  // cycles (not injective) and the walk would never terminate.
  std::uint64_t steps = 0;
#endif
  for (std::uint64_t y = 0; y < m; ++y) {
    if (visited[y]) {
      continue;
    }
    visited[y] = 1;
    const std::uint64_t first = perm(y);
    INPLACE_CHECK(first < m, "row permutation index out of range");
    if (first == y) {
      continue;  // fixed point
    }
    // inplace-lint: allow-next(raw-alloc): cycle discovery appends into
    // workspace-owned storage bounded by m; the vector is reused (and
    // its capacity retained) across executions via the arena cache
    cycle_starts.push_back(y);
    for (std::uint64_t i = first; i != y; i = perm(i)) {
      INPLACE_CHECK(i < m, "row permutation index out of range");
      INPLACE_CHECK(++steps <= m,
                    "row permutation cycle walk exceeded m steps (the map "
                    "is not a bijection)");
      INPLACE_CHECK(!visited[i],
                    "row permutation revisited a row (the map is not a "
                    "bijection)");
      visited[i] = 1;
    }
  }
}

/// Applies the row permutation (gather dst[i] = src[P(i)]) to the width-wide
/// column group starting at column j0, by following the precomputed cycles
/// and moving width-element sub-rows through `tmp` (width elements).
///
/// The cycle hops visit rows in permutation order — exactly the random
/// stride pattern hardware prefetchers miss — so the loop evaluates the
/// permutation one hop ahead (kernels::subrow_prefetch_hops) and
/// prefetches the next source sub-row while the current one copies.
/// With a kernel set, sub-row moves of trivially copyable elements go
/// through the tier's copy/stream_subrow kernels; `stream` selects
/// unfenced non-temporal stores (one fence() published at the end).
template <typename T, typename PermFn>
void permute_rows_in_group(T* a, std::uint64_t n, std::uint64_t j0,
                           std::uint64_t width, PermFn perm,
                           const std::vector<std::uint64_t>& cycle_starts,
                           T* tmp, const kernels::kernel_set* ks = nullptr,
                           bool stream = false) {
  INPLACE_REQUIRE(j0 + width <= n,
                  "row permutation column group exceeds the row width");
  constexpr bool use_kernels = std::is_trivially_copyable_v<T>;
  const std::size_t sub_bytes = static_cast<std::size_t>(width) * sizeof(T);
  // Matrix-destination moves may stream (their lines are dead for this
  // pass); the tmp save stays temporal — tmp is cache-hot scratch that
  // the cycle close re-reads.
  const auto move = [&](T* dst, const T* src) {
    if constexpr (use_kernels) {
      if (ks != nullptr) {
        (stream ? ks->stream_subrow : ks->copy)(dst, src, sub_bytes);
        return;
      }
    }
    std::copy(src, src + width, dst);
  };
  const auto save = [&](T* dst, const T* src) {
    if constexpr (use_kernels) {
      if (ks != nullptr) {
        ks->copy(dst, src, sub_bytes);
        return;
      }
    }
    std::copy(src, src + width, dst);
  };
  for (const std::uint64_t y : cycle_starts) {
    T* base = a + j0;
    save(tmp, base + y * n);
    std::uint64_t i = y;
    std::uint64_t s = perm(i);
    for (;;) {
      if (s == y) {
        move(base + i * n, tmp);
        break;
      }
      const std::uint64_t s_next = perm(s);
      if (s_next != y) {
        kernels::prefetch_read(base + s_next * n);
      }
      move(base + i * n, base + s * n);
      i = s;
      s = s_next;
    }
  }
  if constexpr (use_kernels) {
    if (ks != nullptr && stream) {
      ks->fence();
    }
  }
}

}  // namespace inplace::detail
