#pragma once
// Deterministic fault injection for the failure-semantics tests.
//
// A *failpoint* is a named site in the library — an allocation, a stage
// boundary, a worker-pool transition — where a test can ask the library
// to fail on purpose.  The design copies the telemetry layer's two-gate
// structure exactly:
//
//   * Compile-time gate: the INPLACE_FAILPOINT(name) macro expands to
//     nothing unless the translation unit defines INPLACE_FAILPOINTS.
//     The default library build carries zero injection branches on the
//     hot paths; the failure-semantics test binary (and core/context.cpp,
//     whose control-plane paths are cold) opt in per TU.
//   * Runtime gate: a process-global armed counter.  An instrumented
//     site costs one relaxed atomic load and a branch while nothing is
//     armed; only armed processes pay the registry lookup.
//
// Sites fire by throwing: mode::fault throws injected_fault, mode::oom
// throws std::bad_alloc (exercising the same catch paths a real
// allocation failure takes), mode::count only counts traversals.  A
// trigger is armed programmatically (arm()/scoped_trigger) or from the
// environment: INPLACE_FAILPOINTS="name[:mode[:skip[:count]]],..." —
// e.g. INPLACE_FAILPOINTS="exec.alloc.full:oom" forces the workspace
// ladder off its first rung process-wide.  The registry itself always
// compiles into the library so instrumented and plain TUs share one
// trigger table.

#include <cstdint>
#include <new>
#include <stdexcept>

namespace inplace::failpoint {

/// Thrown by a failpoint armed with mode::fault.  Deliberately not
/// derived from inplace::error: tests distinguish injected failures from
/// genuine argument validation.
class injected_fault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What an armed failpoint does when its trigger condition is met.
enum class mode : std::uint8_t {
  fault,  ///< throw injected_fault
  oom,    ///< throw std::bad_alloc (simulated allocation failure)
  count,  ///< never throw; only count traversals (coverage probes)
};

/// Arms `name`: after `skip` traversals, the next `count` traversals
/// fire (count == 0 means every one).  Re-arming an armed name resets
/// its counters.
void arm(const char* name, mode m = mode::fault, std::uint64_t skip = 0,
         std::uint64_t count = 0);

/// Disarms `name`; returns false if it was not armed.
bool disarm(const char* name);

/// Disarms everything (test teardown).
void disarm_all();

/// Traversals of `name` observed while armed (0 if never armed).
[[nodiscard]] std::uint64_t hits(const char* name);

/// Times `name` actually fired (threw) while armed.
[[nodiscard]] std::uint64_t fires(const char* name);

/// True when at least one failpoint is armed.  This is the whole runtime
/// cost of an instrumented site in the common case.
[[nodiscard]] bool any_armed() noexcept;

/// Evaluates the failpoint `name`: counts the traversal and throws per
/// the armed mode.  Call sites use INPLACE_FAILPOINT, not this.
void trigger(const char* name);

/// Re-reads the INPLACE_FAILPOINTS environment variable, replacing all
/// env-armed triggers (programmatic arms survive only if re-issued).
/// The first registry use parses the environment automatically; tests
/// that setenv() after startup call this to apply the change.
void reload_env();

/// RAII arm/disarm for tests.
class scoped_trigger {
 public:
  explicit scoped_trigger(const char* name, mode m = mode::fault,
                          std::uint64_t skip = 0, std::uint64_t count = 0)
      : name_(name) {
    arm(name, m, skip, count);
  }
  ~scoped_trigger() { disarm(name_); }
  scoped_trigger(const scoped_trigger&) = delete;
  scoped_trigger& operator=(const scoped_trigger&) = delete;

 private:
  const char* name_;
};

}  // namespace inplace::failpoint

// The call-site macro.  Per-TU opt-in, exactly like INPLACE_TELEMETRY:
// without INPLACE_FAILPOINTS the site vanishes, with it the site costs
// one relaxed atomic load until something is armed.
#if defined(INPLACE_FAILPOINTS)
#define INPLACE_FAILPOINT(name)                    \
  do {                                             \
    if (::inplace::failpoint::any_armed()) {       \
      ::inplace::failpoint::trigger(name);         \
    }                                              \
  } while (false)
#else
#define INPLACE_FAILPOINT(name) \
  do {                          \
  } while (false)
#endif
