#pragma once
// In-place 3-D tensor axis permutation, composed from the paper's 2-D
// machinery (an extension in the spirit of Section 6.1's layout
// conversions).  A row-major tensor [d0][d1][d2] supports all six axis
// orders:
//
//   (0,1,2)  identity
//   (0,2,1)  batched transposition of d0 independent d1 x d2 slabs
//   (1,2,0)  one 2-D transposition of the d0 x (d1*d2) view
//   (2,0,1)  one 2-D transposition of the (d0*d1) x d2 view
//   (1,0,2)  chunk-granular transposition of the d0 x d1 grid of
//            d2-element rows (cycle following over fixed chunk slots)
//   (2,1,0)  (0,2,1) followed by (1,2,0)
//
// Everything runs in place; the chunk-grid case uses one visited bit per
// chunk (d0*d1 bits), all other cases inherit the O(max) scratch bound.

#include <array>
#include <cstddef>
#include <vector>

#include "baselines/tiled_core.hpp"
#include "core/contracts.hpp"
#include "core/executor.hpp"
#include "core/transpose.hpp"

namespace inplace {

/// Axis order for permute3: out[i_perm[0]][i_perm[1]][i_perm[2]] layout.
/// perm must be a permutation of {0, 1, 2}; perm[k] names the input axis
/// that becomes output axis k.
using axis_perm = std::array<int, 3>;

namespace detail {

inline void validate_axis_perm(const axis_perm& p) {
  int seen = 0;
  for (const int axis : p) {
    if (axis < 0 || axis > 2) {
      throw error("permute3: axes must be 0, 1 or 2");
    }
    seen |= 1 << axis;
  }
  if (seen != 0b111) {
    throw error("permute3: axes must be a permutation of {0,1,2}");
  }
}

/// In-place transpose of a d0 x d1 grid of contiguous `chunk`-element
/// blocks: block (i, j) moves to slot j*d0 + i.
template <typename T>
void transpose_chunk_matrix(T* data, std::size_t d0, std::size_t d1,
                            std::size_t chunk) {
  if (d0 <= 1 || d1 <= 1 || chunk == 0) {
    return;
  }
  std::vector<std::uint8_t> bits(d0 * d1);
  std::vector<T> tmp(chunk);
  baselines::detail::transpose_chunk_grid(data, d0, d1, chunk, bits, tmp);
}

}  // namespace detail

/// Non-owning view of a row-major [d0][d1][d2] tensor with contract-checked
/// element access.  `at(i0, i1, i2)` verifies every index against its
/// extent in Checked builds and compiles down to the plain linearized load
/// in Release; `operator()` is the always-unchecked form for hot loops.
template <typename T>
class tensor_view {
 public:
  tensor_view(T* data, std::size_t d0, std::size_t d1, std::size_t d2)
      : data_(data), d0_(d0), d1_(d1), d2_(d2) {
    if (d0 != 0 && d1 != 0 && d2 != 0) {
      detail::checked_extent(data, d0 * d1, d2);
    }
  }

  [[nodiscard]] std::size_t extent(int axis) const {
    INPLACE_REQUIRE(axis >= 0 && axis < 3, "tensor_view axis out of range");
    return axis == 0 ? d0_ : axis == 1 ? d1_ : d2_;
  }
  [[nodiscard]] std::size_t size() const { return d0_ * d1_ * d2_; }
  [[nodiscard]] T* data() const { return data_; }

  /// Bounds-checked element access (Checked builds; unchecked in Release).
  [[nodiscard]] T& at(std::size_t i0, std::size_t i1, std::size_t i2) const {
    INPLACE_CHECK(i0 < d0_, "tensor_view index 0 out of range");
    INPLACE_CHECK(i1 < d1_, "tensor_view index 1 out of range");
    INPLACE_CHECK(i2 < d2_, "tensor_view index 2 out of range");
    return (*this)(i0, i1, i2);
  }

  /// Unchecked element access.
  [[nodiscard]] T& operator()(std::size_t i0, std::size_t i1,
                              std::size_t i2) const {
    return data_[(i0 * d1_ + i1) * d2_ + i2];
  }

 private:
  T* data_;
  std::size_t d0_, d1_, d2_;
};

/// Permutes the axes of a row-major [d0][d1][d2] tensor in place.
/// Afterwards the buffer is row-major with extents
/// [d_{perm[0]}][d_{perm[1]}][d_{perm[2]}] and
/// out[a][b][c] == in[i0][i1][i2] where (i_{perm[0]}, i_{perm[1]},
/// i_{perm[2]}) = (a, b, c).
template <typename T>
void permute3(T* data, std::size_t d0, std::size_t d1, std::size_t d2,
              const axis_perm& perm, const options& opts = {}) {
  detail::validate_axis_perm(perm);
  if (d0 != 0 && d1 != 0 && d2 != 0) {
    detail::checked_extent(data, d0 * d1, d2);
  }
  const std::size_t total = d0 * d1 * d2;
  if (total == 0) {
    return;
  }

  const axis_perm identity{0, 1, 2};
  if (perm == identity) {
    return;
  }
  if (perm == axis_perm{0, 2, 1}) {
    transpose_batched(data, d0, d1, d2, storage_order::row_major, opts);
    return;
  }
  if (perm == axis_perm{1, 2, 0}) {
    transpose(data, d0, d1 * d2, storage_order::row_major, opts);
    return;
  }
  if (perm == axis_perm{2, 0, 1}) {
    transpose(data, d0 * d1, d2, storage_order::row_major, opts);
    return;
  }
  if (perm == axis_perm{1, 0, 2}) {
    detail::transpose_chunk_matrix(data, d0, d1, d2);
    return;
  }
  // perm == {2, 1, 0}: swap the last two axes per slab, then rotate the
  // leading axis to the back.
  transpose_batched(data, d0, d1, d2, storage_order::row_major, opts);
  transpose(data, d0, d2 * d1, storage_order::row_major, opts);
}

}  // namespace inplace
