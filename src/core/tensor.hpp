#pragma once
// In-place tensor axis permutation, composed from the paper's 2-D
// machinery (an extension in the spirit of Section 6.1's layout
// conversions).  `permute_nd` handles any rank up to tensor_max_rank by
// normalizing the permutation and decomposing the residual into
// batched/flat 2-D transpositions and chunk-grid passes (see
// core/tensor_plan.hpp for the planner, core/tensor_nd.hpp for the
// executor); `permute3` is the historical rank-3 entry point, now a thin
// wrapper over the same engine.  Both route through default_context(),
// so repeated permutations of the same shape reuse the cached plan and
// arenas.
//
// For rank 3 the decompositions the planner finds coincide with the
// hand-written table this header used to carry:
//
//   (0,1,2)  identity (normalizes to rank <= 1; nothing runs)
//   (0,2,1)  batched transposition of d0 independent d1 x d2 slabs
//   (1,2,0)  one 2-D transposition of the d0 x (d1*d2) view
//   (2,0,1)  one 2-D transposition of the (d0*d1) x d2 view
//   (1,0,2)  chunk-grid pass: the d0 x d1 grid of d2-element rows
//   (2,1,0)  (0,2,1) followed by (1,2,0)

#include <array>
#include <cstddef>
#include <span>

#include "core/contracts.hpp"
#include "core/transpose.hpp"

namespace inplace {

/// Axis order for permute3: out[i_perm[0]][i_perm[1]][i_perm[2]] layout.
/// perm must be a permutation of {0, 1, 2}; perm[k] names the input axis
/// that becomes output axis k.
using axis_perm = std::array<int, 3>;

namespace detail {

inline void validate_axis_perm(const axis_perm& p) {
  int seen = 0;
  for (const int axis : p) {
    if (axis < 0 || axis > 2) {
      throw error("permute3: axes must be 0, 1 or 2");
    }
    seen |= 1 << axis;
  }
  if (seen != 0b111) {
    throw error("permute3: axes must be a permutation of {0,1,2}");
  }
}

}  // namespace detail

/// Non-owning view of a row-major [d0][d1][d2] tensor with contract-checked
/// element access.  `at(i0, i1, i2)` verifies every index against its
/// extent in Checked builds and compiles down to the plain linearized load
/// in Release; `operator()` is the always-unchecked form for hot loops.
/// Extents validate through the overflow-checked N-D funnel — a crafted
/// d0*d1*d2 can no longer wrap size_t before the check sees it.
template <typename T>
class tensor_view {
 public:
  tensor_view(T* data, std::size_t d0, std::size_t d1, std::size_t d2)
      : data_(data), d0_(d0), d1_(d1), d2_(d2) {
    const std::array<std::size_t, 3> dims{d0, d1, d2};
    detail::checked_extent_nd(data, dims.data(), dims.size(), sizeof(T));
  }

  [[nodiscard]] std::size_t extent(int axis) const {
    INPLACE_REQUIRE(axis >= 0 && axis < 3, "tensor_view axis out of range");
    return axis == 0 ? d0_ : axis == 1 ? d1_ : d2_;
  }
  [[nodiscard]] std::size_t size() const { return d0_ * d1_ * d2_; }
  [[nodiscard]] T* data() const { return data_; }

  /// Bounds-checked element access (Checked builds; unchecked in Release).
  [[nodiscard]] T& at(std::size_t i0, std::size_t i1, std::size_t i2) const {
    INPLACE_CHECK(i0 < d0_, "tensor_view index 0 out of range");
    INPLACE_CHECK(i1 < d1_, "tensor_view index 1 out of range");
    INPLACE_CHECK(i2 < d2_, "tensor_view index 2 out of range");
    return (*this)(i0, i1, i2);
  }

  /// Unchecked element access.
  [[nodiscard]] T& operator()(std::size_t i0, std::size_t i1,
                              std::size_t i2) const {
    return data_[(i0 * d1_ + i1) * d2_ + i2];
  }

 private:
  T* data_;
  std::size_t d0_, d1_, d2_;
};

/// Permutes the axes of a row-major rank-N tensor in place: output axis k
/// takes input axis perm[k], so afterwards the buffer is row-major with
/// extents [dims[perm[0]]]...[dims[perm[N-1]]].  Runs through
/// default_context() — see transpose_context::permute_nd for the caching
/// and decomposition contract.
template <typename T>
void permute_nd(T* data, std::span<const std::size_t> dims,
                std::span<const int> perm, const options& opts = {}) {
  default_context().permute_nd(data, dims, perm, opts);
}

/// Permutes the axes of a row-major [d0][d1][d2] tensor in place.
/// Afterwards the buffer is row-major with extents
/// [d_{perm[0]}][d_{perm[1]}][d_{perm[2]}] and
/// out[a][b][c] == in[i0][i1][i2] where (i_{perm[0]}, i_{perm[1]},
/// i_{perm[2]}) = (a, b, c).  Thin wrapper over permute_nd.
template <typename T>
void permute3(T* data, std::size_t d0, std::size_t d1, std::size_t d2,
              const axis_perm& perm, const options& opts = {}) {
  detail::validate_axis_perm(perm);
  const std::array<std::size_t, 3> dims{d0, d1, d2};
  default_context().permute_nd(
      data, std::span<const std::size_t>(dims.data(), dims.size()),
      std::span<const int>(perm.data(), perm.size()), opts);
}

}  // namespace inplace
