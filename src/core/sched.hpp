#pragma once
// QoS-aware scheduling for transpose_context's async entry points.
//
// PR 3/5 gave the context a FIFO worker pool with bounded backpressure
// and settle-exactly-once lifecycle guarantees.  This header makes
// scheduling a first-class subsystem: jobs carry a `job_options` — a QoS
// class and an optional absolute deadline — and the queue is a priority
// heap keyed by
//
//     {qos_class, deadline, enqueue_seq}
//
// so interactive work overtakes batch work, earlier deadlines overtake
// later ones within a class, and equal-priority jobs stay FIFO (the
// sequence number is the tiebreak, so no submission order is ever
// reshuffled gratuitously).  A job whose deadline already lapsed when a
// worker picks it up settles with `deadline_exceeded` instead of
// running — its buffer is untouched and the latency bound it missed is
// visible in the per-class counters rather than silently blown.
//
// Lifecycle contract (unchanged from the FIFO pool): every job that
// enters the queue is *settled* exactly once — run by a worker, expired
// by the deadline check, or failed by shutdown/cancel.  Two fixes ride
// along with the rewrite, each with a regression test in
// tests/test_sched.cpp:
//
//   * cancel_pending() notifies cv_space_ after draining the queue, so
//     producers blocked in the enqueue() backpressure wait resume
//     promptly instead of staying parked until an unrelated wakeup;
//   * a *worker-thread re-entrant* submit against a full queue fails
//     fast with `queue_overflow` instead of blocking — a worker parked
//     in its own pool's backpressure wait can never be woken, because
//     the queue drains only through that same pool (deadlock).
//
// Per-class counters (enqueued / completed / deadline_expired /
// cancelled) are maintained with release stores on the settle side and
// snapshotted settled-before-enqueued with acquire loads, so a
// concurrent qos_stats() snapshot always satisfies
// settled <= enqueued per class — see qos_stats().

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/errors.hpp"
#include "util/annotated_mutex.hpp"

namespace inplace {

/// Scheduling class of an async job, highest priority first.  Workers
/// always pop the best (lowest-valued) class with work pending.
enum class qos_class : std::uint8_t {
  interactive = 0,  ///< latency-sensitive: overtakes everything else
  standard = 1,     ///< the default for plain submit()
  batch = 2,        ///< throughput work: runs when nothing better waits
};
inline constexpr std::size_t qos_class_count = 3;

[[nodiscard]] constexpr const char* qos_class_name(qos_class q) {
  switch (q) {
    case qos_class::interactive:
      return "interactive";
    case qos_class::standard:
      return "standard";
    case qos_class::batch:
      return "batch";
  }
  return "unknown";
}

/// Index of `q` into per-class counter arrays, clamped so a corrupted
/// enum value can never index out of bounds.
[[nodiscard]] constexpr std::size_t qos_index(qos_class q) {
  const auto k = static_cast<std::size_t>(q);
  return k < qos_class_count ? k : qos_class_count - 1;
}

/// Sentinel for "no deadline" (sorts after every real deadline).
inline constexpr std::chrono::steady_clock::time_point no_deadline =
    std::chrono::steady_clock::time_point::max();

/// Per-job scheduling options for submit()/transpose_batch().
struct job_options {
  qos_class qos = qos_class::standard;

  /// Absolute steady_clock deadline; `no_deadline` disables the check.
  /// A job whose deadline passed before a worker picked it up settles
  /// its future with `deadline_exceeded` without running.
  std::chrono::steady_clock::time_point deadline = no_deadline;

  [[nodiscard]] bool has_deadline() const { return deadline != no_deadline; }

  /// Convenience: a deadline `budget` from now at class `q`.
  [[nodiscard]] static job_options within(std::chrono::nanoseconds budget,
                                          qos_class q = qos_class::standard) {
    job_options o;
    o.qos = q;
    o.deadline = std::chrono::steady_clock::now() + budget;
    return o;
  }
};

/// Monotonic per-class scheduling counters (one slot of the array
/// exposed through context_stats::qos).
struct qos_counters {
  std::uint64_t enqueued = 0;          ///< jobs accepted into the queue
  std::uint64_t completed = 0;         ///< picked up and settled by a worker
  std::uint64_t deadline_expired = 0;  ///< settled with deadline_exceeded
  std::uint64_t cancelled = 0;         ///< failed by shutdown/cancel_pending

  /// Jobs whose future has been satisfied, however it went.  Any
  /// coherent snapshot keeps settled() <= enqueued.
  [[nodiscard]] std::uint64_t settled() const {
    return completed + deadline_expired + cancelled;
  }
};

namespace detail {

/// QoS-aware worker pool backing submit()/transpose_batch(), with
/// bounded backpressure, optional CPU pinning and deterministic
/// shutdown.  See the header comment for the scheduling and lifecycle
/// contracts.
class context_workers {
 public:
  /// One queued job.  Invoked with a null exception_ptr to run normally,
  /// or with the failure reason (shutdown, cancel, deadline, injected
  /// worker fault) to satisfy its promise with — either way, the job
  /// must settle its future and must not throw.
  using job = std::function<void(std::exception_ptr)>;

  /// Pool sizing resolved by transpose_context from context_options.
  struct config {
    std::size_t count = 1;      ///< worker threads (clamped to >= 1)
    std::size_t max_queue = 1;  ///< backpressure bound (clamped to >= 1)
    bool pin_workers = false;   ///< request one-CPU affinity per worker
  };

  /// Spawns the workers.  If a thread fails to start, the already-
  /// started workers are stopped and joined before the exception
  /// propagates — no half-alive pool escapes.
  explicit context_workers(const config& cfg);

  /// Equivalent to shutdown(/*drain_pending=*/false).
  ~context_workers();
  context_workers(const context_workers&) = delete;
  context_workers& operator=(const context_workers&) = delete;

  /// Enqueues a job at `opts`' class/deadline, blocking while the queue
  /// is at max_queue (backpressure).  Throws context_shutdown once
  /// shutdown began, and queue_overflow for a worker-thread re-entrant
  /// submit against a full queue (see header comment); either way the
  /// job is untouched and the caller still owns its promise.
  void enqueue(job j, const job_options& opts = {}) INPLACE_EXCLUDES(mu_);

  /// Fails every queued-but-unstarted job with context_shutdown
  /// ("cancelled") without stopping the pool, then wakes producers
  /// blocked in the backpressure wait (the queue they were waiting on
  /// has space now).  Returns how many jobs were failed.
  std::size_t cancel_pending() INPLACE_EXCLUDES(mu_);

  /// Stops the pool: no further enqueues succeed.  drain_pending=true
  /// runs the queued jobs first (still in priority order); false fails
  /// them with context_shutdown.  In-flight jobs always finish.  Joins
  /// the workers; idempotent and safe to call concurrently.  Returns
  /// how many jobs were failed.
  std::size_t shutdown(bool drain_pending) INPLACE_EXCLUDES(mu_, join_mu_);

  /// Jobs queued but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const INPLACE_EXCLUDES(mu_);

  /// Coherent per-class counter snapshot: the settle-side counters are
  /// read with acquire loads *before* the enqueue counters, and every
  /// settle increment is a release store that happens-after its job's
  /// enqueue increment, so settled() <= enqueued holds per class at
  /// every sample, concurrency notwithstanding.
  [[nodiscard]] std::array<qos_counters, qos_class_count> qos_stats() const;

  /// Workers that successfully pinned to a CPU (0 when pinning was not
  /// requested or the platform fell back).
  [[nodiscard]] std::size_t pinned_workers() const {
    return pinned_count_.load(std::memory_order_relaxed);
  }

 private:
  /// One heap slot: the scheduling key plus the job closure.
  struct ticket {
    qos_class qos = qos_class::standard;
    std::chrono::steady_clock::time_point deadline = no_deadline;
    std::uint64_t seq = 0;
    job fn;
  };

  /// Max-heap comparator: true when `a` runs *after* `b` — worse class,
  /// then later deadline, then later submission.
  static bool runs_after(const ticket& a, const ticket& b);

  void worker_loop(std::size_t index) INPLACE_EXCLUDES(mu_);

  /// Settles `doomed` with a context_shutdown carrying `what`, counting
  /// each ticket's class as cancelled.
  std::size_t fail_tickets(std::vector<ticket>&& doomed, const char* what);

  mutable util::annotated_mutex mu_;
  std::condition_variable cv_work_;   ///< workers: work available / stopping
  std::condition_variable cv_space_;  ///< producers: queue below the bound
  std::vector<ticket> queue_ INPLACE_GUARDED_BY(mu_);  ///< binary heap
  std::uint64_t next_seq_ INPLACE_GUARDED_BY(mu_) = 0;
  bool stopping_ INPLACE_GUARDED_BY(mu_) = false;
  const std::size_t max_queue_;   ///< immutable after construction
  const bool pin_workers_;        ///< immutable after construction

  // Per-class counters.  Enqueue increments are relaxed (ordered before
  // any settle of the same job by the queue mutex); settle increments
  // are release so the qos_stats() read order proves the invariant.
  std::array<std::atomic<std::uint64_t>, qos_class_count> enqueued_{};
  std::array<std::atomic<std::uint64_t>, qos_class_count> completed_{};
  std::array<std::atomic<std::uint64_t>, qos_class_count> expired_{};
  std::array<std::atomic<std::uint64_t>, qos_class_count> cancelled_{};

  std::atomic<std::size_t> pinned_count_{0};
  std::atomic<bool> pin_fallback_warned_{false};

  /// Serializes the join in concurrent shutdowns; ordered after mu_
  /// (shutdown takes mu_ first, releases it, then joins under join_mu_ —
  /// the two are never held together).
  util::annotated_mutex join_mu_;
  std::vector<std::thread> threads_ INPLACE_GUARDED_BY(join_mu_);
};

}  // namespace detail
}  // namespace inplace
