#pragma once
// Observability layer: per-stage spans and plan records for the engines.
//
// The paper's throughput model (Eq. 37) counts an ideal transpose as one
// read and one write of the whole array; every engine stage (pre-rotation
// Eq. 23, row shuffle Eq. 24/31, column shuffle Eq. 26/32-34) moves the
// same 2*m*n*elem bytes again.  This header lets the benches attribute
// wall time to those stages without perturbing the hot paths:
//
//   * Compile-time gate: the INPLACE_TELEMETRY macro.  Hook call sites
//     (INPLACE_TELEMETRY_SPAN / INPLACE_TELEMETRY_PLAN, placed in the
//     engine headers) expand to nothing when it is undefined — the
//     default library build carries zero instrumentation code.  Bench
//     translation units opt in per target, the same way test_contracts
//     opts into INPLACE_ENABLE_CHECKS: the engines are header templates,
//     so each binary instantiates its own (un)instrumented copy.
//   * Runtime gate: a process-global sink pointer.  With no sink
//     installed, an instrumented span costs one atomic load and a branch;
//     with a sink, each span adds two steady_clock reads per *stage* (not
//     per element), which is noise against a full matrix pass.
//
// The sink registry and the bounded `collector` below compile
// unconditionally into the library so that instrumented and plain
// translation units can share one recording endpoint.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace inplace::telemetry {

/// Engine stages, matching the decomposition's three passes plus the
/// end-to-end envelope.
enum class stage : std::uint8_t {
  total = 0,        ///< whole transposition (Eq. 37 envelope)
  prerotate = 1,    ///< Eq. 23 column pre-rotation (and its inverse Eq. 36)
  row_shuffle = 2,  ///< Eq. 24 scatter / Eq. 31 gather row pass
  col_shuffle = 3,  ///< Eq. 26 / Eqs. 32-34 column shuffle
};
inline constexpr std::size_t stage_count = 4;

[[nodiscard]] constexpr const char* stage_name(stage s) {
  switch (s) {
    case stage::total:
      return "total";
    case stage::prerotate:
      return "prerotate";
    case stage::row_shuffle:
      return "row_shuffle";
    case stage::col_shuffle:
      return "col_shuffle";
  }
  return "unknown";
}

/// One closed span: a stage's wall time plus its minimum memory traffic
/// (each pass reads and writes every element once: 2*m*n*elem bytes).
struct span_record {
  stage s = stage::total;
  int depth = 0;  ///< nesting depth at open: 0 = envelope, 1 = pass
  double seconds = 0.0;
  std::uint64_t bytes_moved = 0;    ///< modelled traffic for the stage
  std::uint64_t scratch_bytes = 0;  ///< auxiliary space in use (Theorem 6)
};

/// One planning decision, recorded per executed transposition.
struct plan_record {
  const char* engine = "";     ///< engine_name(plan.engine)
  const char* direction = "";  ///< direction_name(plan.dir)
  std::uint64_t m = 0;
  std::uint64_t n = 0;
  std::uint64_t block_width = 0;
  std::size_t elem_size = 0;
  bool strength_reduction = true;
  /// kernels::tier_name of the plan's resolved hot-path kernel tier, so
  /// scalar and vector runs of one shape dedup separately.
  const char* kernel_tier = "";
  int threads_requested = 0;  ///< util::thread_probe::requested
  int threads_active = 0;     ///< util::thread_probe::active
  bool threads_honored = true;
  /// True when the execution reused a transpose_context cached plan (so
  /// warm/cold traffic separates cleanly in the dedup table).
  bool from_cache = false;
  /// rung_name of the scratch-acquisition outcome: "full" on the fast
  /// path, "reduced"/"cycle_follow" when the executor degraded under
  /// memory pressure — degraded runs dedup separately so a pressure
  /// episode is visible in bench JSON.
  const char* rung = "";
  /// Provenance of the tensor cost model's calibration constants
  /// ("probed" when the startup micro-probe supplied them, "static" for
  /// the compiled-in defaults); "" for the 2-D paths, which have none.
  const char* calibration = "";
};

/// Receiver for telemetry events.  Implementations must tolerate calls
/// from whichever thread runs the engine entry point (the parallel loops
/// inside a stage do not emit).
class sink {
 public:
  virtual ~sink() = default;
  virtual void on_span(const span_record& rec) = 0;
  virtual void on_plan(const plan_record& rec) = 0;
};

/// Installs `s` as the process-global sink (nullptr disables recording)
/// and returns the previous sink.
sink* exchange_sink(sink* s);

/// The currently installed sink, or nullptr.
[[nodiscard]] sink* current_sink();

/// Per-thread span nesting depth (0 outside any span).
[[nodiscard]] int& span_depth();

/// RAII sink installation for benches and tests; restores the previous
/// sink on destruction.
class scoped_sink {
 public:
  explicit scoped_sink(sink* s) : previous_(exchange_sink(s)) {}
  ~scoped_sink() { exchange_sink(previous_); }
  scoped_sink(const scoped_sink&) = delete;
  scoped_sink& operator=(const scoped_sink&) = delete;

 private:
  sink* previous_;
};

/// Running aggregate for one stage across a collector's lifetime.
struct stage_total {
  std::uint64_t calls = 0;
  double seconds = 0.0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t scratch_bytes_max = 0;
};

/// A bounded, thread-safe sink: aggregates per-stage totals and distinct
/// plan decisions on the fly, keeping at most `raw_cap` raw spans (so a
/// microbenchmark loop emitting millions of spans cannot exhaust memory —
/// the aggregates keep counting past the cap).
class collector final : public sink {
 public:
  struct plan_count {
    plan_record rec;
    std::uint64_t count = 0;
  };

  explicit collector(std::size_t raw_cap = 4096) : raw_cap_(raw_cap) {}

  void on_span(const span_record& rec) override INPLACE_EXCLUDES(mu_);
  void on_plan(const plan_record& rec) override INPLACE_EXCLUDES(mu_);

  [[nodiscard]] std::vector<span_record> raw_spans() const
      INPLACE_EXCLUDES(mu_);
  [[nodiscard]] std::array<stage_total, stage_count> totals() const
      INPLACE_EXCLUDES(mu_);
  [[nodiscard]] std::vector<plan_count> plan_counts() const
      INPLACE_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t spans_seen() const INPLACE_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t plans_seen() const INPLACE_EXCLUDES(mu_);
  /// True when distinct plan shapes exceeded the dedup table and were
  /// folded into plans_seen() only.
  [[nodiscard]] bool plans_truncated() const INPLACE_EXCLUDES(mu_);
  void clear() INPLACE_EXCLUDES(mu_);

 private:
  static constexpr std::size_t plan_table_cap = 64;

  mutable util::annotated_mutex mu_;
  const std::size_t raw_cap_;  ///< immutable after construction
  std::vector<span_record> spans_ INPLACE_GUARDED_BY(mu_);
  std::array<stage_total, stage_count> totals_ INPLACE_GUARDED_BY(mu_){};
  std::vector<plan_count> plans_ INPLACE_GUARDED_BY(mu_);
  std::uint64_t spans_seen_ INPLACE_GUARDED_BY(mu_) = 0;
  std::uint64_t plans_seen_ INPLACE_GUARDED_BY(mu_) = 0;
  bool plans_truncated_ INPLACE_GUARDED_BY(mu_) = false;
};

// --- compile-time-gated hooks ------------------------------------------------
//
// Both span types are always defined (distinct names, so mixed-setting
// translation units never violate the ODR); the macro picks one.  The
// disabled span is an empty literal type — test_telemetry_off verifies
// sizeof(stage_span) == 1 in an uninstrumented TU, the "compiles to
// nothing" size check.

/// Live span: opens on construction, records to the sink on destruction.
class enabled_span {
 public:
  enabled_span(stage s, std::uint64_t bytes_moved,
               std::uint64_t scratch_bytes)
      : sink_(current_sink()) {
    if (sink_ != nullptr) {
      rec_.s = s;
      rec_.bytes_moved = bytes_moved;
      rec_.scratch_bytes = scratch_bytes;
      rec_.depth = span_depth()++;
      start_ = clock::now();
    }
  }

  ~enabled_span() {
    if (sink_ != nullptr) {
      rec_.seconds =
          std::chrono::duration<double>(clock::now() - start_).count();
      --span_depth();
      sink_->on_span(rec_);
    }
  }

  enabled_span(const enabled_span&) = delete;
  enabled_span& operator=(const enabled_span&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  sink* sink_;
  span_record rec_;
  clock::time_point start_{};
};

/// Compiled-out span: a no-op literal type with the same constructor
/// shape, so sizeof() checks can prove the off configuration is empty.
struct disabled_span {
  constexpr disabled_span(stage, std::uint64_t, std::uint64_t) noexcept {}
};

/// Forwards a plan record to the sink, if any.  Only instrumented call
/// sites (INPLACE_TELEMETRY_PLAN) reach this.
inline void note_plan(const plan_record& rec) {
  if (sink* s = current_sink()) {
    s->on_plan(rec);
  }
}

}  // namespace inplace::telemetry

#if defined(INPLACE_TELEMETRY)
#define INPLACE_TELEMETRY_ENABLED 1
namespace inplace::telemetry {
using stage_span = enabled_span;
}
/// Opens a RAII stage span named `var` for the rest of the scope.
#define INPLACE_TELEMETRY_SPAN(var, st, bytes, scratch) \
  ::inplace::telemetry::stage_span var { st, bytes, scratch }
#define INPLACE_TELEMETRY_PLAN(rec) ::inplace::telemetry::note_plan(rec)
#else
#define INPLACE_TELEMETRY_ENABLED 0
namespace inplace::telemetry {
using stage_span = disabled_span;
}
/// Telemetry compiled out: the hook vanishes (arguments are not
/// evaluated).
#define INPLACE_TELEMETRY_SPAN(var, st, bytes, scratch) static_cast<void>(0)
#define INPLACE_TELEMETRY_PLAN(rec) static_cast<void>(0)
#endif
