#pragma once
// Contract/checked mode.  The library's correctness rests on the modular
// index algebra of Eqs. 23-26/31-36 being implemented without off-by-one
// or overflow errors; this header provides the machine-checked guardrails
// that the engines and planner are annotated with:
//
//   INPLACE_REQUIRE(cond, msg)  — precondition at an API boundary
//   INPLACE_CHECK(cond, msg)    — internal invariant inside an engine
//   INPLACE_ENSURE(cond, msg)   — postcondition after a pass completes
//
// All three compile to nothing unless INPLACE_ENABLE_CHECKS is defined
// (the `Checked` CMake configuration, or -DINPLACE_CHECKED=ON), so Release
// performance is untouched.  When enabled, a failed contract calls
// detail::contract_fail, which throws inplace::contract_violation with the
// expression, source location and message — or aborts with the same
// diagnostic when the INPLACE_CONTRACT_ABORT environment variable is set
// (useful under sanitizers, where an abort keeps the stack trace).
//
// The INPLACE_CHECKS_ENABLED macro (always defined, 0 or 1) lets code gate
// checked-mode-only bookkeeping, e.g. the slot-coverage stamps that prove
// each row/column shuffle visited every slot exactly once (permute.hpp).

#include <stdexcept>

namespace inplace {

/// Thrown when a contract annotated with INPLACE_REQUIRE / INPLACE_CHECK /
/// INPLACE_ENSURE fails in a Checked build.  Inherits logic_error rather
/// than inplace::error: a contract violation is a bug in the library or in
/// the caller's use of it, not a recoverable bad-argument condition.
class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Reports a failed contract: throws contract_violation, or aborts after
/// printing the diagnostic when $INPLACE_CONTRACT_ABORT is set.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line, const char* msg);

}  // namespace detail
}  // namespace inplace

#if defined(INPLACE_ENABLE_CHECKS)
#define INPLACE_CHECKS_ENABLED 1
#define INPLACE_CONTRACT_IMPL(kind, cond, msg)                         \
  ((cond) ? static_cast<void>(0)                                       \
          : ::inplace::detail::contract_fail(kind, #cond, __FILE__,    \
                                             __LINE__, msg))
#else
#define INPLACE_CHECKS_ENABLED 0
#define INPLACE_CONTRACT_IMPL(kind, cond, msg) static_cast<void>(0)
#endif

#define INPLACE_REQUIRE(cond, msg) \
  INPLACE_CONTRACT_IMPL("precondition", cond, msg)
#define INPLACE_CHECK(cond, msg) INPLACE_CONTRACT_IMPL("invariant", cond, msg)
#define INPLACE_ENSURE(cond, msg) \
  INPLACE_CONTRACT_IMPL("postcondition", cond, msg)
