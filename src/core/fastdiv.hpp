#pragma once
// Arithmetic strength reduction (paper Section 4.4): the index equations
// evaluate `x / d` and `x % d` with the same handful of divisors (m, n, a,
// b, c) millions of times.  Following Warren's fixed-point-reciprocal
// technique [Hacker's Delight] in the formulation of Lemire et al., we
// amortize one reciprocal per divisor and turn every division into a
// multiply-high.
//
// The reciprocal trick is exact when both dividend and divisor fit in 32
// bits; for larger dividends the functor falls back to hardware division
// (a predictable, almost-never-taken branch), so correctness never depends
// on the caller's extents.

#include <cstdint>
#include <stdexcept>

namespace inplace {

/// Strength-reduced division/modulus by a fixed 32-bit divisor.
class fast_divmod {
 public:
  /// Prepares the fixed-point reciprocal M = ceil(2^64 / d).
  explicit constexpr fast_divmod(std::uint64_t d) : d_(d) {
    if (d == 0) {
      throw std::invalid_argument("fast_divmod: divisor must be nonzero");
    }
    if (d >> 32 != 0) {
      magic_ = 0;  // divisor too wide for the reciprocal path
    } else if (d == 1) {
      magic_ = 0;  // 2^64/1 does not fit in 64 bits; handled explicitly
    } else {
      magic_ = ~std::uint64_t{0} / d + 1;
    }
  }

  /// Identity divisor; useful as a default member value.
  constexpr fast_divmod() : fast_divmod(1) {}

  [[nodiscard]] constexpr std::uint64_t divisor() const { return d_; }

  [[nodiscard]] constexpr std::uint64_t div(std::uint64_t x) const {
    if (d_ == 1) {
      return x;
    }
    if (magic_ == 0 || (x >> 32) != 0) {
      return x / d_;  // exactness of the reciprocal requires 32-bit operands
    }
    return mulhi(magic_, x);
  }

  [[nodiscard]] constexpr std::uint64_t mod(std::uint64_t x) const {
    if (d_ == 1) {
      return 0;
    }
    if (magic_ == 0 || (x >> 32) != 0) {
      return x % d_;
    }
    // lowbits = frac(x / d) in 0.64 fixed point; scaling by d recovers the
    // remainder exactly for 32-bit operands (Lemire's "fastmod").
    const std::uint64_t lowbits = magic_ * x;
    return mulhi(lowbits, d_);
  }

  /// Quotient and remainder in one call (one multiply saved vs div+mod).
  struct qr {
    std::uint64_t quot;
    std::uint64_t rem;
  };

  [[nodiscard]] constexpr qr divmod(std::uint64_t x) const {
    if (d_ == 1) {
      return {x, 0};
    }
    if (magic_ == 0 || (x >> 32) != 0) {
      return {x / d_, x % d_};
    }
    const std::uint64_t q = mulhi(magic_, x);
    return {q, x - q * d_};
  }

 private:
  static constexpr std::uint64_t mulhi(std::uint64_t x, std::uint64_t y) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(x) * y) >> 64);
  }

  std::uint64_t magic_ = 0;
  std::uint64_t d_ = 1;
};

/// Division policy used by the index equations when strength reduction is
/// disabled (the ablation benchmark toggles between the two policies).
class plain_divmod {
 public:
  explicit constexpr plain_divmod(std::uint64_t d) : d_(d) {
    if (d == 0) {
      throw std::invalid_argument("plain_divmod: divisor must be nonzero");
    }
  }

  constexpr plain_divmod() : plain_divmod(1) {}

  [[nodiscard]] constexpr std::uint64_t divisor() const { return d_; }
  [[nodiscard]] constexpr std::uint64_t div(std::uint64_t x) const {
    return x / d_;
  }
  [[nodiscard]] constexpr std::uint64_t mod(std::uint64_t x) const {
    return x % d_;
  }

  struct qr {
    std::uint64_t quot;
    std::uint64_t rem;
  };

  [[nodiscard]] constexpr qr divmod(std::uint64_t x) const {
    return {x / d_, x % d_};
  }

 private:
  std::uint64_t d_ = 1;
};

}  // namespace inplace
