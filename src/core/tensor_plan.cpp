#include "core/tensor_plan.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/failpoint.hpp"
#include "memsim/device_model.hpp"

namespace inplace::detail {

namespace {

/// Keeps the probe buffers (and the loops writing them) alive past the
/// optimizer: the asm consumes the pointer and claims to clobber memory,
/// so stores before it cannot be elided and loads after it cannot be
/// hoisted.  No-op fallback elsewhere — the probe then merely risks DCE
/// and the clamp below still bounds the damage.
inline void probe_barrier([[maybe_unused]] const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" ::"r"(p) : "memory");
#endif
}

/// L1 data-cache line size from sysconf, or 0 when unavailable.  The
/// [8, 256] clamp in calibrate() rejects the 0 and any exotic value a
/// container might report.
double probe_line_bytes() {
#if defined(_SC_LEVEL1_DCACHE_LINESIZE)
  const long ls = ::sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  return ls > 0 ? static_cast<double>(ls) : 0.0;
#else
  return 0.0;
#endif
}

/// Times one streaming copy sweep and one strided per-row rotate-gather
/// sweep (the engines' dominant access pattern) over a ~128 KiB slab and
/// returns the strided/streaming ratio, or 0 on failure.  Deliberately
/// raw loops: this TU compiles without INPLACE_TELEMETRY, so routing the
/// probe through transposer<T> would instantiate telemetry-off inline
/// definitions that collide (ODR) with the telemetry-on bench TUs.
double probe_sweep_ratio() {
  constexpr std::size_t rows = 4096;
  constexpr std::size_t cols = 8;
  constexpr std::size_t total = rows * cols;
  constexpr int reps = 4;
  std::vector<float> src(total);
  std::vector<float> dst(total);
  for (std::size_t k = 0; k < total; ++k) {
    src[k] = static_cast<float>(k & 0xffffU);
  }
  using clock = std::chrono::steady_clock;
  double best_stream = std::numeric_limits<double>::infinity();
  double best_strided = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = clock::now();
    std::memcpy(dst.data(), src.data(), total * sizeof(float));
    probe_barrier(dst.data());
    const auto t1 = clock::now();
    // Column-major walk with a per-column row rotation: every element
    // moves, no two consecutive accesses share a row — the shape of the
    // skinny engine's rotation pass, minus its cache-aware grouping.
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        dst[r * cols + c] = src[((r + c) % rows) * cols + c];
      }
    }
    probe_barrier(dst.data());
    const auto t2 = clock::now();
    const std::chrono::duration<double> stream = t1 - t0;
    const std::chrono::duration<double> strided = t2 - t1;
    best_stream = std::min(best_stream, stream.count());
    best_strided = std::min(best_strided, strided.count());
  }
  if (!(best_stream > 0.0) || !std::isfinite(best_strided)) {
    return 0.0;  // clock too coarse or probe elided: fall back to static
  }
  return best_strided / best_stream;
}

/// Runs both probes with the static defaults as the starting point.
/// Never throws; each probe degrades independently.
tensor_calibration_values calibrate() {
  tensor_calibration_values cal;  // static defaults
  // inplace-lint: allow-next(env-access): documented opt-out knob
  // (INPLACE_TENSOR_CALIBRATION=static, README); exact string equality
  // against one literal — nothing to parse, no funnel value validation
  // applies, and any other value deliberately falls through to the probe
  if (const char* env = std::getenv("INPLACE_TENSOR_CALIBRATION");
      env != nullptr && std::strcmp(env, "static") == 0) {
    return cal;
  }
  bool probed = false;
  const double line = probe_line_bytes();
  if (line >= 8.0 && line <= 256.0) {
    cal.line_bytes = line;
    probed = true;
  }
  try {
    const double ratio = probe_sweep_ratio();
    if (ratio > 0.0) {
      // The probe's naive scalar rotation over-costs one fused engine
      // pass by roughly the engine's pass count, so the raw ratio stands
      // in for the whole multi-pass factor (it lands on ~7, the old
      // hand-calibrated constant, on the reference machine).  The clamp
      // keeps a noisy machine (or a TSan/valgrind run) from steering the
      // search off a cliff.
      cal.engine_sweeps = std::clamp(ratio, 2.0, 20.0);
      probed = true;
    }
  } catch (const std::bad_alloc&) {
    // Keep the static engine_sweeps; line_bytes may still be probed.
  }
  if (probed) {
    cal.provenance = "probed";
  }
  return cal;
}

}  // namespace

const tensor_calibration_values& tensor_calibration() {
  // Magic static: one probe per process, first planner pays it.
  static const tensor_calibration_values cal = calibrate();
  return cal;
}

void validate_nd_perm(std::span<const std::size_t> dims,
                      std::span<const int> perm) {
  if (dims.size() != perm.size()) {
    throw error("inplace: permute_nd dims/perm rank mismatch (" +
                std::to_string(dims.size()) + " vs " +
                std::to_string(perm.size()) + ")");
  }
  if (dims.size() > tensor_max_rank) {
    throw error("inplace: permute_nd rank " + std::to_string(dims.size()) +
                " exceeds tensor_max_rank (" +
                std::to_string(tensor_max_rank) + ")");
  }
  unsigned seen = 0;
  for (const int axis : perm) {
    if (axis < 0 || static_cast<std::size_t>(axis) >= perm.size()) {
      throw error("inplace: permute_nd axis " + std::to_string(axis) +
                  " out of range for rank " + std::to_string(perm.size()));
    }
    const unsigned bit = 1u << static_cast<unsigned>(axis);
    if ((seen & bit) != 0) {
      throw error("inplace: permute_nd axis " + std::to_string(axis) +
                  " repeated — perm must be a permutation of {0.." +
                  std::to_string(perm.size() - 1) + "}");
    }
    seen |= bit;
  }
}

nd_normalized normalize_nd(std::span<const std::size_t> dims,
                           std::span<const int> perm) {
  nd_normalized out;
  out.total = 1;
  for (const std::size_t d : dims) {
    out.total *= d;  // caller validated via checked_extent_nd
  }

  // 1. Drop unit extents: they contribute nothing to the layout.  `kept`
  // maps surviving input axes to compact labels 0..r-1 in input order.
  std::array<int, tensor_max_rank> kept{};
  kept.fill(-1);
  std::size_t r = 0;
  for (std::size_t a = 0; a < dims.size(); ++a) {
    if (dims[a] > 1) {
      kept[a] = static_cast<int>(r++);
    }
  }
  // Surviving extents in input order and the residual perm over them.
  std::array<std::uint64_t, tensor_max_rank> rdims{};
  std::array<std::uint8_t, tensor_max_rank> rperm{};
  for (std::size_t a = 0; a < dims.size(); ++a) {
    if (kept[a] >= 0) {
      rdims[static_cast<std::size_t>(kept[a])] = dims[a];
    }
  }
  std::size_t kpos = 0;
  for (const int axis : perm) {
    const int label = kept[static_cast<std::size_t>(axis)];
    if (label >= 0) {
      rperm[kpos++] = static_cast<std::uint8_t>(label);
    }
  }

  // 2. Fuse input-adjacent axes that remain adjacent (in order) under the
  // permutation: axes i and i+1 merge iff the output places i+1 directly
  // after i.  Groups are maximal runs, labelled in input order.
  std::array<std::size_t, tensor_max_rank> pos{};  // input axis -> output slot
  for (std::size_t k = 0; k < r; ++k) {
    pos[rperm[k]] = k;
  }
  std::array<std::uint8_t, tensor_max_rank> group{};
  std::size_t groups = 0;
  for (std::size_t i = 0; i < r; ++i) {
    if (i > 0 && pos[i] == pos[i - 1] + 1) {
      group[i] = group[i - 1];
    } else {
      group[i] = static_cast<std::uint8_t>(groups++);
    }
  }
  out.rank = groups;
  for (std::size_t i = 0; i < r; ++i) {
    if (out.dims[group[i]] == 0) {
      out.dims[group[i]] = rdims[i];
    } else {
      out.dims[group[i]] *= rdims[i];
    }
  }
  // The fused perm: groups in output order.  Fused members are contiguous
  // in the output too, so each group appears exactly once at the slot of
  // its first member.
  std::size_t gpos = 0;
  for (std::size_t k = 0; k < r; ++k) {
    const std::uint8_t g = group[rperm[k]];
    if (k == 0 || g != out.perm[gpos - 1]) {
      out.perm[gpos++] = g;
    }
  }
  return out;
}

std::uint32_t pack_nd_perm(const nd_normalized& norm) noexcept {
  std::uint32_t packed = 0;
  for (std::size_t k = 0; k < norm.rank; ++k) {
    packed |= static_cast<std::uint32_t>(norm.perm[k]) << (4 * k);
  }
  return packed;
}

namespace {

using axis_order = std::array<std::uint8_t, tensor_max_rank>;

std::uint32_t pack_order(const axis_order& s, std::size_t r) {
  std::uint32_t packed = 0;
  for (std::size_t k = 0; k < r; ++k) {
    packed |= static_cast<std::uint32_t>(s[k]) << (4 * k);
  }
  return packed;
}

/// Cost model for one adjacent-group-swap pass, memoized per shape.  The
/// memsim roofline heuristic scores a single streaming sweep; the two
/// execution paths depart from that in opposite directions, scaled by
/// the tensor_calibration() constants (startup-probed, static fallback):
///
///   * a chunk == 1 pass routes through the planned in-place engines,
///     whose c2r/r2c decomposition makes several rotate/shuffle sweeps
///     over the slab with strided access — ~7x a single sweep;
///   * a chunk > 1 pass is one gather sweep of whole chunks, near the
///     roofline when the chunk stride covers a cache line and degrading
///     as sub-line chunks waste line bandwidth.
class pass_cost_model {
 public:
  explicit pass_cost_model(std::size_t elem_size)
      : elem_(elem_size), cal_(tensor_calibration()) {}

  double cost(const nd_pass& p) {
    const std::uint64_t key =
        (p.rows * 0x9e3779b97f4a7c15ull) ^ (p.cols * 0xc2b2ae3d27d4eb4full) ^
        p.chunk;
    const auto it = memo_.find(key);
    double per_slab = 0.0;
    if (it != memo_.end()) {
      per_slab = it->second;
    } else {
      per_slab = memsim::predict_heuristic(p.rows, p.cols,
                                           elem_ * p.chunk)
                     .seconds;
      if (p.chunk > 1) {
        const double chunk_bytes =
            static_cast<double>(elem_) * static_cast<double>(p.chunk);
        per_slab *= 1.0 + cal_.line_bytes / chunk_bytes;
      } else {
        per_slab *= cal_.engine_sweeps;
      }
      memo_.emplace(key, per_slab);
    }
    return per_slab * static_cast<double>(p.batch);
  }

 private:
  std::size_t elem_;
  tensor_calibration_values cal_;
  std::unordered_map<std::uint64_t, double> memo_;
};

/// The adjacent-group-swap applied to an axis order: [a,b) and [b,c)
/// exchange, everything else stays.
axis_order apply_swap(const axis_order& s, std::size_t r, std::size_t a,
                      std::size_t b, std::size_t c) {
  axis_order out{};
  std::size_t w = 0;
  for (std::size_t i = 0; i < a; ++i) {
    out[w++] = s[i];
  }
  for (std::size_t i = b; i < c; ++i) {
    out[w++] = s[i];
  }
  for (std::size_t i = a; i < b; ++i) {
    out[w++] = s[i];
  }
  for (std::size_t i = c; i < r; ++i) {
    out[w++] = s[i];
  }
  return out;
}

nd_pass make_pass(const nd_normalized& norm, const axis_order& s,
                  std::size_t a, std::size_t b, std::size_t c) {
  nd_pass p;
  for (std::size_t i = 0; i < a; ++i) {
    p.batch *= norm.dims[s[i]];
  }
  for (std::size_t i = a; i < b; ++i) {
    p.rows *= norm.dims[s[i]];
  }
  for (std::size_t i = b; i < c; ++i) {
    p.cols *= norm.dims[s[i]];
  }
  for (std::size_t i = c; i < norm.rank; ++i) {
    p.chunk *= norm.dims[s[i]];
  }
  return p;
}

struct move_list {
  std::vector<std::array<std::size_t, 3>> splits;  // (a, b, c) triples
};

/// All (a, b, c) split points for rank r.  The full move set for r <= 6;
/// at r in {7, 8} the swapped groups are capped at two axes each, which
/// still reaches every ordering (adjacent transpositions generate the
/// group) while bounding the 40320-state search's edge count.
move_list moves_for_rank(std::size_t r) {
  move_list m;
  const std::size_t cap = r <= 6 ? r : 2;
  for (std::size_t a = 0; a < r; ++a) {
    for (std::size_t b = a + 1; b < r && b - a <= cap; ++b) {
      for (std::size_t c = b + 1; c <= r && c - b <= cap; ++c) {
        m.splits.push_back({a, b, c});
      }
    }
  }
  return m;
}

struct search_node {
  double cost = std::numeric_limits<double>::infinity();
  std::uint32_t prev = 0;
  nd_pass via{};
  bool has_prev = false;
  axis_order order{};
};

tensor_plan search_best(const nd_normalized& norm, std::size_t elem_size) {
  const std::size_t r = norm.rank;
  pass_cost_model model(elem_size);
  const move_list moves = moves_for_rank(r);

  axis_order start{};
  for (std::size_t k = 0; k < r; ++k) {
    start[k] = static_cast<std::uint8_t>(k);
  }
  axis_order goal{};
  for (std::size_t k = 0; k < r; ++k) {
    goal[k] = norm.perm[k];
  }
  const std::uint32_t goal_key = pack_order(goal, r);

  std::unordered_map<std::uint32_t, search_node> nodes;
  using pq_item = std::pair<double, std::uint32_t>;
  std::priority_queue<pq_item, std::vector<pq_item>, std::greater<>> pq;
  const std::uint32_t start_key = pack_order(start, r);
  nodes[start_key] = {0.0, 0, {}, false, start};
  pq.emplace(0.0, start_key);

  while (!pq.empty()) {
    const auto [cost, key] = pq.top();
    pq.pop();
    const search_node node = nodes[key];  // copy: the map may rehash below
    if (cost > node.cost) {
      continue;  // stale queue entry
    }
    if (key == goal_key) {
      break;
    }
    for (const auto& [a, b, c] : moves.splits) {
      const nd_pass p = make_pass(norm, node.order, a, b, c);
      const axis_order next = apply_swap(node.order, r, a, b, c);
      const std::uint32_t nkey = pack_order(next, r);
      const double ncost = cost + model.cost(p);
      auto [it, fresh] = nodes.try_emplace(nkey);
      if (fresh || ncost < it->second.cost) {
        it->second = {ncost, key, p, true, next};
        pq.emplace(ncost, nkey);
      }
    }
  }

  tensor_plan plan;
  plan.norm = norm;
  const auto goal_it = nodes.find(goal_key);
  // The move set generates the symmetric group, so the goal is always
  // reached; guard anyway so a logic slip fails loudly, not silently.
  if (goal_it == nodes.end()) {
    throw error("inplace: tensor plan search failed to reach the target "
                "axis order");
  }
  plan.model_seconds = goal_it->second.cost;
  std::uint32_t key = goal_key;
  while (nodes[key].has_prev) {
    plan.passes.push_back(nodes[key].via);
    key = nodes[key].prev;
  }
  std::reverse(plan.passes.begin(), plan.passes.end());
  return plan;
}

/// Depth-bounded exhaustive DFS maximizing cost — the ablation foil.
/// Only meaningful at the bench's small ranks; callers above rank 4 get
/// the best plan back (a worst-order search over 8! states would dwarf
/// the work it measures).
void search_worst_from(const nd_normalized& norm, pass_cost_model& model,
                       const move_list& moves, const axis_order& order,
                       std::uint32_t goal_key, double cost,
                       std::vector<nd_pass>& path,
                       std::vector<std::uint32_t>& visited,
                       std::size_t depth_left, tensor_plan& out) {
  const std::uint32_t key = pack_order(order, norm.rank);
  if (key == goal_key && !path.empty()) {
    if (cost > out.model_seconds) {
      out.model_seconds = cost;
      out.passes = path;
    }
    return;
  }
  if (depth_left == 0) {
    return;
  }
  for (const auto& [a, b, c] : moves.splits) {
    const axis_order next = apply_swap(order, norm.rank, a, b, c);
    const std::uint32_t nkey = pack_order(next, norm.rank);
    if (std::find(visited.begin(), visited.end(), nkey) != visited.end()) {
      continue;  // simple paths only
    }
    const nd_pass p = make_pass(norm, order, a, b, c);
    path.push_back(p);
    visited.push_back(nkey);
    search_worst_from(norm, model, moves, next, goal_key, cost + model.cost(p),
                      path, visited, depth_left - 1, out);
    visited.pop_back();
    path.pop_back();
  }
}

tensor_plan search_worst(const nd_normalized& norm, std::size_t elem_size,
                         std::size_t pass_budget) {
  pass_cost_model model(elem_size);
  const move_list moves = moves_for_rank(norm.rank);
  axis_order start{};
  for (std::size_t k = 0; k < norm.rank; ++k) {
    start[k] = static_cast<std::uint8_t>(k);
  }
  axis_order goal{};
  for (std::size_t k = 0; k < norm.rank; ++k) {
    goal[k] = norm.perm[k];
  }
  tensor_plan out;
  out.norm = norm;
  out.model_seconds = -1.0;
  std::vector<nd_pass> path;
  std::vector<std::uint32_t> visited{pack_order(start, norm.rank)};
  search_worst_from(norm, model, moves, start, pack_order(goal, norm.rank),
                    0.0, path, visited, pass_budget, out);
  return out;
}

}  // namespace

tensor_plan make_tensor_plan(const nd_normalized& norm, std::size_t elem_size,
                             tensor_goal goal) {
  // Models a planner-side fault (e.g. a failing bookkeeping allocation
  // inside the search).  Fires before any state exists, so an injected
  // fault propagates with the caller's buffer untouched.
  INPLACE_FAILPOINT("tensor.plan.search");
  const char* cal = tensor_calibration().provenance;
  tensor_plan plan;
  plan.norm = norm;
  plan.calibration = cal;
  if (norm.rank <= 1) {
    return plan;  // identity on memory: nothing to run
  }
  tensor_plan best = search_best(norm, elem_size);
  best.calibration = cal;
  if (goal == tensor_goal::best || norm.rank > 4) {
    return best;
  }
  tensor_plan worst =
      search_worst(norm, elem_size, std::min<std::size_t>(best.passes.size() + 1, 4));
  worst.calibration = cal;
  return worst.model_seconds >= 0.0 ? worst : best;
}

tensor_plan make_tensor_plan(std::span<const std::size_t> dims,
                             std::span<const int> perm, std::size_t elem_size,
                             tensor_goal goal) {
  validate_nd_perm(dims, perm);
  return make_tensor_plan(normalize_nd(dims, perm), elem_size, goal);
}

}  // namespace inplace::detail
