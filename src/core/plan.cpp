#include "core/plan.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "core/errors.hpp"
#include "cpu/kernels/kernel_set.hpp"

namespace inplace {

std::uint64_t transpose_plan::scratch_elements() const {
  if (tile_block != 0) {
    // Tile plans run the skinny engine over (m / W) x n chunks of W
    // elements: a line of max(m/W, n) chunks, an n^2-chunk head buffer
    // and an n-chunk sub-row, all W elements wide.  Still >= max(m, n)
    // (the line alone covers m), so Theorem 6's bound holds.
    const std::uint64_t chunk_rows = m / tile_block;
    const std::uint64_t line = std::max(chunk_rows, n);
    return (line + n * n + n) * tile_block;
  }
  const std::uint64_t line = std::max(m, n);
  return line + block_width * block_width + block_width;
}

transpose_plan make_directed_plan(const void* data, std::size_t m,
                                  std::size_t n, direction dir,
                                  const options& opts,
                                  std::size_t elem_size) {
  detail::checked_extent(data, m, n);
  if (elem_size == 0) {
    throw error("inplace: zero element size");
  }

  transpose_plan plan;
  plan.dir = dir;
  plan.m = m;
  plan.n = n;
  plan.strength_reduction = opts.strength_reduction;
  plan.threads = opts.threads;

  // Sub-rows approximate one cache line (Section 4.6), never narrower than
  // four elements so the head-buffer scheme stays worthwhile.
  plan.block_width = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(
             std::max<std::size_t>(1, opts.block_bytes) / elem_size));

  plan.engine = opts.engine;
  if (plan.engine == engine_kind::automatic) {
    plan.engine = (plan.n <= skinny_col_limit && plan.m > plan.n)
                      ? engine_kind::skinny
                      : engine_kind::blocked;
  }
  if (plan.engine == engine_kind::skinny &&
      (plan.n > skinny_col_limit || plan.m <= plan.n)) {
    // The fused skinny passes assume a tall, narrow problem; quietly run
    // the blocked engine when forced onto an unsuitable shape.
    plan.engine = engine_kind::blocked;
  }

  // Hot-path kernel dispatch happens here, once per plan: resolve the
  // requested tier against the environment override, the running CPU and
  // the tiers compiled into this binary, then decide whether the working
  // set is large enough for non-temporal copy-back stores to pay off.
  plan.ktier = kernels::resolve_tier(opts.kernel);
  plan.streaming_stores = kernels::streaming_profitable(
      static_cast<std::size_t>(plan.m) * plan.n * elem_size, plan.ktier);

  // In-register tile gate.  Correctness part: skinny engine with
  // strength reduction (the chunked run reuses the fused skinny passes
  // and their fast_divmod math), a 4/8-byte element whose lane width the
  // tier implements and divides m, and n within both [2, max_regs] (one
  // register per matrix column).  Profitability part: the chunked
  // problem must stay tall (m/W > n) so the fused passes keep their
  // streaming shape — dropped under INPLACE_FORCE_KERNEL_TIER=inreg so
  // tests can force the path onto any eligible small shape.
  plan.tile_block = 0;
  if (plan.engine == engine_kind::skinny && plan.strength_reduction &&
      opts.tile != options::tile_mode::off &&
      (elem_size == 4 || elem_size == 8)) {
    const kernels::kernel_set& ks = kernels::set_for(plan.ktier);
    const std::uint64_t lanes =
        elem_size == 4 ? ks.tile_lanes_u32 : ks.tile_lanes_u64;
    const std::uint64_t max_regs =
        elem_size == 4 ? ks.tile_max_regs_u32 : ks.tile_max_regs_u64;
    if (lanes >= 2 && plan.n >= 2 && plan.n <= max_regs &&
        plan.m % lanes == 0) {
      const std::uint64_t chunk_rows = plan.m / lanes;
      if (chunk_rows > plan.n || kernels::forced_tile_mode()) {
        plan.tile_block = lanes;
      }
    }
  }

  // Plan postconditions: the planner must resolve `automatic` to a
  // concrete engine (the executors refuse unresolved plans), must never
  // hand an engine a shape it cannot run, and the scratch sizing must
  // honor Theorem 6's bound.
  INPLACE_ENSURE(plan.engine != engine_kind::automatic,
                 "planner left engine_kind::automatic unresolved");
  INPLACE_ENSURE(plan.ktier != kernels::tier::automatic,
                 "planner left kernels::tier::automatic unresolved");
  INPLACE_ENSURE(kernels::tier_available(plan.ktier),
                 "planner selected a kernel tier the CPU or build cannot "
                 "execute");
  INPLACE_ENSURE(plan.engine != engine_kind::skinny ||
                     (plan.n <= skinny_col_limit && plan.m > plan.n),
                 "skinny engine selected for a non-skinny shape");
  INPLACE_ENSURE(plan.block_width >= 4,
                 "sub-row width below the cache-aware minimum");
  INPLACE_ENSURE(plan.scratch_elements() >= std::max(plan.m, plan.n),
                 "scratch sizing violates Theorem 6's max(m, n) bound");
  INPLACE_ENSURE(plan.tile_block == 0 ||
                     (plan.engine == engine_kind::skinny &&
                      plan.tile_block >= 2 && plan.n >= 2 &&
                      plan.m % plan.tile_block == 0),
                 "in-register tile selected outside its gate");
  return plan;
}

transpose_plan make_plan_for_shape(std::size_t rows, std::size_t cols,
                                   storage_order order, const options& opts,
                                   std::size_t elem_size) {
  // A dummy non-null pointer satisfies the pointer check; extents and
  // element size are validated as usual.
  return make_plan(reinterpret_cast<const void*>(sizeof(void*)), rows, cols,
                   order, opts, elem_size);
}

transpose_plan make_plan(const void* data, std::size_t rows,
                         std::size_t cols, storage_order order,
                         const options& opts, std::size_t elem_size) {
  // A column-major rows x cols buffer is bit-identical to a row-major
  // cols x rows buffer; normalize to the row-major view and transpose that
  // (Theorems 1-2 make both directions available either way).
  std::size_t vm = rows;
  std::size_t vn = cols;
  if (order == storage_order::col_major) {
    std::swap(vm, vn);
  }

  // Section 5.2's heuristic: C2R when m > n, else R2C.  The R2C form
  // transposes a row-major array after swapping the extents (Theorem 2).
  const bool use_c2r = opts.alg == options::algorithm::c2r ||
                       (opts.alg == options::algorithm::automatic && vm > vn);
  if (use_c2r) {
    return make_directed_plan(data, vm, vn, direction::c2r, opts, elem_size);
  }
  return make_directed_plan(data, vn, vm, direction::r2c, opts, elem_size);
}

}  // namespace inplace
