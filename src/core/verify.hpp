#pragma once
// Exhaustive algebraic verification of the decomposition (permcheck core).
//
// The engines are only correct if, for the given (m, n), the row shuffle
// d'_i (Eq. 24) and its gather-form inverse d'^-1_i (Eq. 31) are mutually
// inverse bijections of [0, n), the column shuffle s'_j (Eq. 26) factors
// into the rotation p_j and static permutation q (Eqs. 32-33) with q^-1
// (Eq. 34) inverting q, and the three stages compose to the true
// transposition permutation l -> l*m mod (mn - 1).  This header proves all
// of that *by enumeration*, per shape, exercising exactly the headers the
// engines use (equations.hpp with its division policies, including the
// incremental d_prime_stepper) — independent of any engine, so an index
// bug cannot hide behind a compensating bug in engine code.
//
// Fault injection (`fault`) deliberately plants one of the bug classes the
// verifier exists to catch (off-by-one wrap handling, a flipped inverse
// branch, a drifted static permutation, a mis-rounded reciprocal).  The
// permcheck tool's --seed-bug mode and the unit tests use it to prove the
// harness fails loudly instead of vacuously passing.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/equations.hpp"
#include "core/fastdiv.hpp"
#include "core/fastdiv64.hpp"
#include "core/gcdmath.hpp"

namespace inplace::verify {

/// Deliberately planted index bugs, one per bug class the verifier guards
/// against.  `none` verifies the real library code.
enum class fault : int {
  none = 0,
  row_shuffle_wrap,      ///< Eq. 24: wrap test uses > instead of >=
  inverse_branch,        ///< Eq. 31: f-helper branch condition off by one
  column_shuffle_drift,  ///< Eq. 33: q(i) drifted by +1
  fastdiv_magic,         ///< reciprocal computed without the +1 rounding
};

/// Outcome of a verification sweep.
struct report {
  std::uint64_t shapes = 0;    ///< (m, n) pairs fully verified
  std::uint64_t checks = 0;    ///< individual predicates evaluated
  std::uint64_t failures = 0;  ///< predicates that did not hold
  std::vector<std::string> messages;  ///< first few failure diagnostics

  [[nodiscard]] bool ok() const { return failures == 0; }

  void fail(std::string msg) {
    ++failures;
    if (messages.size() < 16) {
      messages.push_back(std::move(msg));
    }
  }

  void merge(const report& other) {
    shapes += other.shapes;
    checks += other.checks;
    failures += other.failures;
    for (const auto& msg : other.messages) {
      if (messages.size() >= 16) {
        break;
      }
      messages.push_back(msg);
    }
  }
};

/// transpose_math with one optional planted bug.  Derivation shadows the
/// faulty members; everything else is the real library code, so a sweep
/// with fault::none measures exactly what the engines compute.
template <typename Divmod>
struct faulty_math : transpose_math<Divmod> {
  using base = transpose_math<Divmod>;
  fault f;

  faulty_math(std::uint64_t rows, std::uint64_t cols, fault f_)
      : base(rows, cols), f(f_) {}

  [[nodiscard]] std::uint64_t d_prime(std::uint64_t i,
                                      std::uint64_t j) const {
    if (f == fault::row_shuffle_wrap) {
      std::uint64_t u = i + this->by_b.div(j);
      if (u > this->m) {  // BUG: misses u == m, the exact-wrap case
        u -= this->m;
      }
      return (u + j * this->m) % this->n;
    }
    return base::d_prime(i, j);
  }

  [[nodiscard]] std::uint64_t d_prime_inv(std::uint64_t i,
                                          std::uint64_t j) const {
    if (f == fault::inverse_branch) {
      const std::uint64_t fb = j + i * (this->n - 1);
      // BUG: strict < where Eq. 31's f-helper needs <=
      const std::uint64_t fh =
          (i + this->c < this->m + this->by_c.mod(j)) ? fb : fb + this->m;
      const auto [fq, fr] = this->by_c.divmod(fh);
      return this->by_b.mod(this->a_inv * this->by_b.mod(fq)) +
             fr * this->b;
    }
    return base::d_prime_inv(i, j);
  }

  [[nodiscard]] std::uint64_t q(std::uint64_t i) const {
    if (f == fault::column_shuffle_drift) {
      // BUG: q drifted by one row; s' no longer factors as p then q
      return this->by_m.mod(i * this->n - this->by_a.div(i) + 1);
    }
    return base::q(i);
  }
};

namespace detail {

[[nodiscard]] inline std::uint64_t mulhi64(std::uint64_t x, std::uint64_t y) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(x) * y) >> 64);
}

/// The fastdiv_magic fault: Lemire's reciprocal with the ceiling rounding
/// dropped (M = floor(2^64/d) instead of ceil).  Exact for some operands,
/// wrong for others — precisely the kind of bug an "agrees with / and %"
/// sweep must catch.
[[nodiscard]] inline std::uint64_t bad_magic_div(std::uint64_t d,
                                                 std::uint64_t x) {
  if (d == 1) {
    return x;
  }
  return mulhi64(~std::uint64_t{0} / d, x);
}

/// Generation-stamped scratch for the bijectivity bitmaps; reused across
/// shapes so the sweep never reallocates.
struct sweep_scratch {
  std::vector<std::uint64_t> stamp;
  std::uint64_t gen = 0;

  /// Starts a fresh coverage pass over `size` slots.
  std::uint64_t begin(std::uint64_t size) {
    if (stamp.size() < size) {
      stamp.resize(static_cast<std::size_t>(size), 0);
    }
    return ++gen;
  }
};

inline std::string shape_tag(std::uint64_t m, std::uint64_t n) {
  return "(m=" + std::to_string(m) + ", n=" + std::to_string(n) + ")";
}

}  // namespace detail

/// Verifies that fast_divmod and barrett_divmod agree with hardware / and
/// % for divisor d across a small exhaustive range plus the boundary
/// dividends that stress the reciprocals (mn-1, the 32-bit edge, 2^64-1).
inline void check_divmod_agreement(std::uint64_t d, std::uint64_t mn,
                                   fault f, report& rep) {
  const fast_divmod fd(d);
  const barrett_divmod bd(d);
  const std::uint64_t boundaries[] = {
      mn > 0 ? mn - 1 : 0,
      mn,
      mn + 1,
      d > 0 ? d - 1 : 0,
      d,
      d + 1,
      (std::uint64_t{1} << 32) - 1,
      std::uint64_t{1} << 32,
      (std::uint64_t{1} << 32) + 1,
      ~std::uint64_t{0} - 1,
      ~std::uint64_t{0},
  };
  auto check_one = [&](std::uint64_t x) {
    const std::uint64_t q = x / d;
    const std::uint64_t r = x % d;
    const std::uint64_t fq =
        (f == fault::fastdiv_magic) ? detail::bad_magic_div(d, x)
                                    : fd.div(x);
    rep.checks += 6;
    if (fq != q || fd.mod(x) != r) {
      rep.fail("fastdiv: reciprocal for d=" + std::to_string(d) +
               " disagrees with hardware division at x=" +
               std::to_string(x));
      return false;
    }
    const auto [dq, dr] = fd.divmod(x);
    const auto [bq, br] = bd.divmod(x);
    if (dq != q || dr != r || bq != q || br != r || bd.div(x) != q ||
        bd.mod(x) != r) {
      rep.fail("fastdiv64: Barrett reduction for d=" + std::to_string(d) +
               " disagrees with hardware division at x=" +
               std::to_string(x));
      return false;
    }
    return true;
  };
  const std::uint64_t dense = std::min<std::uint64_t>(mn, 512);
  for (std::uint64_t x = 0; x <= dense; ++x) {
    if (!check_one(x)) {
      return;
    }
  }
  for (const std::uint64_t x : boundaries) {
    if (!check_one(x)) {
      return;
    }
  }
}

/// Exhaustively verifies the decomposition algebra for one (m, n):
///   1. per row i, d'_i is a bijection of [0, n), the incremental
///      d_prime_stepper reproduces it (and its fused ⌊j/b⌋ rotation term),
///      and d'^-1_i inverts it (Eqs. 23, 24, 31);
///   2. the column shuffle factors as s'_j(i) = (q(i) + p_j) mod m with q
///      a bijection inverted by q^-1, and the rotation offsets cancel
///      (Eqs. 26, 32-36);
///   3. the three stages compose, in scatter form, to the transposition
///      permutation l -> l*m mod (mn - 1) on the linearized array.
/// Returns false (and records diagnostics) on the first violated
/// predicate for this shape.
template <typename Math>
bool check_shape(const Math& mm, report& rep,
                 detail::sweep_scratch& scratch) {
  const std::uint64_t m = mm.m;
  const std::uint64_t n = mm.n;
  const std::string tag = detail::shape_tag(m, n);

  // --- 1. Row shuffle: bijectivity, stepper agreement, mutual inverse.
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t gen = scratch.begin(n);
    d_prime_stepper step(mm, i);
    for (std::uint64_t j = 0; j < n; ++j, step.advance()) {
      const std::uint64_t d = mm.d_prime(i, j);
      rep.checks += 5;
      if (d >= n) {
        rep.fail(tag + ": Eq. 24 d'_" + std::to_string(i) + "(" +
                 std::to_string(j) + ") = " + std::to_string(d) +
                 " is out of range");
        return false;
      }
      if (scratch.stamp[d] == gen) {
        rep.fail(tag + ": Eq. 24 row shuffle d'_" + std::to_string(i) +
                 " is not a bijection — slot " + std::to_string(d) +
                 " hit twice (second time at j=" + std::to_string(j) + ")");
        return false;
      }
      scratch.stamp[d] = gen;
      if (step.value() != d || step.rotation() != mm.prerotate_offset(j)) {
        rep.fail(tag + ": incremental d' evaluator disagrees with Eq. 24 "
                       "at (i=" +
                 std::to_string(i) + ", j=" + std::to_string(j) +
                 "): stepper " + std::to_string(step.value()) +
                 ", direct " + std::to_string(d));
        return false;
      }
      if (mm.d_prime_inv(i, d) != j) {
        rep.fail(tag + ": Eq. 31 does not invert Eq. 24 at (i=" +
                 std::to_string(i) + ", j=" + std::to_string(j) +
                 "): d'^-1(d'(j)) = " +
                 std::to_string(mm.d_prime_inv(i, d)));
        return false;
      }
    }
  }

  // --- 2. Column shuffle factoring and inverses.
  {
    const std::uint64_t gen = scratch.begin(m);
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint64_t qi = mm.q(i);
      rep.checks += 3;
      if (qi >= m) {
        rep.fail(tag + ": Eq. 33 q(" + std::to_string(i) + ") = " +
                 std::to_string(qi) + " is out of range");
        return false;
      }
      if (scratch.stamp[qi] == gen) {
        rep.fail(tag + ": Eq. 33 static permutation q is not a bijection "
                       "— row " +
                 std::to_string(qi) + " hit twice (second time at i=" +
                 std::to_string(i) + ")");
        return false;
      }
      scratch.stamp[qi] = gen;
      if (mm.q_inv(qi) != i) {
        rep.fail(tag + ": Eq. 34 does not invert Eq. 33 at i=" +
                 std::to_string(i) + ": q^-1(q(i)) = " +
                 std::to_string(mm.q_inv(qi)));
        return false;
      }
    }
  }
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t p = mm.p_offset(j);
    const std::uint64_t pr = mm.prerotate_offset(j);
    rep.checks += 3;
    if ((p + mm.p_inv_offset(j)) % m != 0) {
      rep.fail(tag + ": Eq. 35 rotation offsets do not cancel at j=" +
               std::to_string(j));
      return false;
    }
    if ((pr + mm.prerotate_inv_offset(j)) % m != 0) {
      rep.fail(tag + ": Eq. 36 pre-rotation offsets do not cancel at j=" +
               std::to_string(j));
      return false;
    }
  }

  // --- 3. Column-shuffle factoring (full coverage) and the composition
  // to the transposition permutation, scatter form: element l = i*n + j
  // passes through the pre-rotation scatter (i - ⌊j/b⌋ mod m), the
  // row-shuffle scatter d' (Eq. 24) and the column-shuffle scatter
  // q^-1((row - col) mod m) — landing at l*m mod (mn - 1), with the last
  // element fixed.
  const std::uint64_t mn = m * n;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t qi = mm.q(i);
    for (std::uint64_t j = 0; j < n; ++j) {
      rep.checks += 1;
      const std::uint64_t pj = mm.p_offset(j);
      if (mm.s_prime(i, j) != (qi + pj >= m ? qi + pj - m : qi + pj)) {
        rep.fail(tag + ": Eq. 26 does not factor as p then q (Eqs. 32-33) "
                       "at (i=" +
                 std::to_string(i) + ", j=" + std::to_string(j) + ")");
        return false;
      }
      const std::uint64_t rot = mm.prerotate_offset(j);
      const std::uint64_t i1 = i >= rot ? i - rot : i + m - rot;
      const std::uint64_t j2 = mm.d_prime(i1, j);
      const std::uint64_t diff = i1 >= j2 % m ? i1 - j2 % m
                                              : i1 + m - j2 % m;
      const std::uint64_t dst = mm.q_inv(diff) * n + j2;
      const std::uint64_t l = i * n + j;
      const std::uint64_t want =
          (l == mn - 1) ? mn - 1
                        : static_cast<std::uint64_t>(
                              (static_cast<__uint128_t>(l) * m) % (mn - 1));
      rep.checks += 1;
      if (dst != want) {
        rep.fail(tag + ": composed C2R scatter sends l=" +
                 std::to_string(l) + " to " + std::to_string(dst) +
                 ", but transposition (l*m mod mn-1) requires " +
                 std::to_string(want));
        return false;
      }
    }
  }

  // --- 4. The divisors the strength-reduced engines actually use.
  std::uint64_t divisors[] = {m, n, mm.a, mm.b, mm.c};
  std::sort(std::begin(divisors), std::end(divisors));
  const auto* end = std::unique(std::begin(divisors), std::end(divisors));
  for (const auto* d = std::begin(divisors); d != end; ++d) {
    if (*d >= 1) {
      const std::uint64_t before = rep.failures;
      check_divmod_agreement(
          *d, mn,
          // Only verify_options threads the fault through; a Math that is
          // faulty_math still runs the clean divmod sweep here.
          fault::none, rep);
      if (rep.failures != before) {
        return false;
      }
    }
  }

  ++rep.shapes;
  return true;
}

/// Sweep configuration for run_sweep / the permcheck tool.
struct sweep_options {
  std::uint64_t min_extent = 2;
  std::uint64_t max_extent = 64;
  fault inject = fault::none;
  bool use_plain_divmod = false;  ///< verify the no-strength-reduction policy
  /// Called (from one thread at a time) with shapes completed so far.
  void (*progress)(std::uint64_t done, std::uint64_t total) = nullptr;
};

/// Verifies every (m, n) with min_extent <= m, n <= max_extent.
/// Parallelized over shapes with OpenMP when available.
inline report run_sweep(const sweep_options& opt) {
  report total;
  const std::uint64_t lo = std::max<std::uint64_t>(opt.min_extent, 2);
  const std::uint64_t hi = std::max<std::uint64_t>(opt.max_extent, lo);
  const std::uint64_t extents = hi - lo + 1;
  const auto pairs = static_cast<std::int64_t>(extents * extents);
  std::uint64_t done = 0;

#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    report local;
    detail::sweep_scratch scratch;
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16)
#endif
    for (std::int64_t k = 0; k < pairs; ++k) {
      const std::uint64_t m = lo + static_cast<std::uint64_t>(k) / extents;
      const std::uint64_t n = lo + static_cast<std::uint64_t>(k) % extents;
      if (opt.use_plain_divmod) {
        const faulty_math<plain_divmod> mm(m, n, opt.inject);
        check_shape(mm, local, scratch);
      } else {
        const faulty_math<fast_divmod> mm(m, n, opt.inject);
        check_shape(mm, local, scratch);
      }
      if (opt.inject == fault::fastdiv_magic) {
        check_divmod_agreement(n, m * n, opt.inject, local);
      }
      if (opt.progress != nullptr && (k & 1023) == 0) {
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp critical(inplace_verify_progress)
#endif
        {
          done += 1024;
          opt.progress(std::min<std::uint64_t>(
                           done, static_cast<std::uint64_t>(pairs)),
                       static_cast<std::uint64_t>(pairs));
        }
      }
    }
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp critical(inplace_verify_merge)
#endif
    total.merge(local);
  }
  return total;
}

/// Convenience single-shape entry point (used by the unit tests).
inline report verify_shape(std::uint64_t m, std::uint64_t n,
                           fault inject = fault::none) {
  report rep;
  detail::sweep_scratch scratch;
  const faulty_math<fast_divmod> mm(m, n, inject);
  check_shape(mm, rep, scratch);
  if (inject == fault::fastdiv_magic) {
    check_divmod_agreement(n, m * n, inject, rep);
  }
  return rep;
}

}  // namespace inplace::verify
