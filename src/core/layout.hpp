#pragma once
// Linearizations and the C2R/R2C index maps of Section 2 (Eqs. 1-14).
// These are the *definitions*; the decomposed per-row/per-column equations
// used by the actual algorithm live in equations.hpp.

#include <cstddef>
#include <cstdint>

namespace inplace {

/// Storage order of the caller's array.
enum class storage_order { row_major, col_major };

/// Matrix extents: m rows by n cols, as in the paper.
struct extents {
  std::uint64_t m;  ///< rows
  std::uint64_t n;  ///< cols
  friend constexpr bool operator==(const extents&, const extents&) = default;
};

namespace lin {

// Row-major linearization (Eqs. 1-3).
[[nodiscard]] constexpr std::uint64_t lrm(std::uint64_t i, std::uint64_t j,
                                          std::uint64_t n) {
  return j + i * n;
}
[[nodiscard]] constexpr std::uint64_t irm(std::uint64_t l, std::uint64_t n) {
  return l / n;
}
[[nodiscard]] constexpr std::uint64_t jrm(std::uint64_t l, std::uint64_t n) {
  return l % n;
}

// Column-major linearization (Eqs. 4-6).
[[nodiscard]] constexpr std::uint64_t lcm(std::uint64_t i, std::uint64_t j,
                                          std::uint64_t m) {
  return i + j * m;
}
[[nodiscard]] constexpr std::uint64_t icm(std::uint64_t l, std::uint64_t m) {
  return l % m;
}
[[nodiscard]] constexpr std::uint64_t jcm(std::uint64_t l, std::uint64_t m) {
  return l / m;
}

}  // namespace lin

// The four index functions defining C2R and R2C as gathers (Eqs. 7-10):
//   A_C2R[i,j] = A[s(i,j), c(i,j)]     (Eq. 11)
//   A_R2C[i,j] = A[t(i,j), d(i,j)]     (Eq. 12)

[[nodiscard]] constexpr std::uint64_t eq_s(std::uint64_t i, std::uint64_t j,
                                           const extents& e) {
  return lin::lrm(i, j, e.n) % e.m;
}
[[nodiscard]] constexpr std::uint64_t eq_c(std::uint64_t i, std::uint64_t j,
                                           const extents& e) {
  return lin::lrm(i, j, e.n) / e.m;
}
[[nodiscard]] constexpr std::uint64_t eq_t(std::uint64_t i, std::uint64_t j,
                                           const extents& e) {
  return lin::lcm(i, j, e.m) / e.n;
}
[[nodiscard]] constexpr std::uint64_t eq_d(std::uint64_t i, std::uint64_t j,
                                           const extents& e) {
  return lin::lcm(i, j, e.m) % e.n;
}

}  // namespace inplace
