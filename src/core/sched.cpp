#include "core/sched.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/failpoint.hpp"
#include "util/threads.hpp"

namespace inplace::detail {

namespace {

// The pool the calling thread is a worker of, if any.  Set for the
// lifetime of worker_loop; lets enqueue() recognize a re-entrant submit
// (a job submitting to its own context) and refuse to park in the
// backpressure wait it could never be woken from.
thread_local context_workers* t_current_pool = nullptr;

}  // namespace

bool context_workers::runs_after(const ticket& a, const ticket& b) {
  // std::push_heap/pop_heap keep the *best* ticket at the front under a
  // "less-than" comparator, so this orders by "a is scheduled after b".
  if (a.qos != b.qos) {
    return static_cast<std::uint8_t>(a.qos) > static_cast<std::uint8_t>(b.qos);
  }
  if (a.deadline != b.deadline) {
    return a.deadline > b.deadline;
  }
  return a.seq > b.seq;  // FIFO within {class, deadline}
}

context_workers::context_workers(const config& cfg)
    : max_queue_(std::max<std::size_t>(1, cfg.max_queue)),
      pin_workers_(cfg.pin_workers) {
  const std::size_t want = std::max<std::size_t>(1, cfg.count);
  // threads_ is guarded by join_mu_; no shutdown() can race a running
  // constructor, but holding the capability keeps the discipline uniform
  // (and provable) across every threads_ access.  The workers spawned
  // below contend only on mu_, never join_mu_, so no deadlock.
  util::mutex_guard jlock(join_mu_);
  threads_.reserve(want);
  try {
    for (std::size_t k = 0; k < want; ++k) {
      INPLACE_FAILPOINT("ctx.spawn");
      threads_.emplace_back([this, k] { worker_loop(k); });
    }
  } catch (...) {
    // Partial spawn: stop and join the workers that did start, so the
    // half-built pool never escapes the constructor with live threads.
    {
      util::mutex_guard lock(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    throw;
  }
}

context_workers::~context_workers() { shutdown(/*drain_pending=*/false); }

void context_workers::enqueue(job j, const job_options& opts) {
  const bool reentrant = t_current_pool == this;
  {
    util::waitable_lock lock(mu_);
    if (reentrant && !stopping_ && queue_.size() >= max_queue_) {
      // A worker parked in the backpressure wait below can never be
      // woken: the queue drains only through this pool, and this thread
      // IS the pool (or one max_queue_-th of it).  Fail fast instead.
      throw queue_overflow(
          "inplace: re-entrant submit from a worker thread with the "
          "context queue at max_queue would deadlock; complete or "
          "defer the nested job instead");
    }
    while (!stopping_ && !reentrant && queue_.size() >= max_queue_) {
      lock.wait(cv_space_);
    }
    if (stopping_) {
      throw context_shutdown(
          "inplace: submit on a transpose_context whose async machinery "
          "was shut down");
    }
    INPLACE_FAILPOINT("ctx.queue.push");
    ticket t;
    t.qos = opts.qos;
    t.deadline = opts.deadline;
    t.seq = next_seq_++;
    t.fn = std::move(j);
    queue_.push_back(std::move(t));
    std::push_heap(queue_.begin(), queue_.end(), runs_after);
    // Counted before mu_ is released: any settle of this job acquires
    // mu_ first (the worker pop), so the enqueue increment is ordered
    // before the settle increment without needing release here.
    enqueued_[qos_index(opts.qos)].fetch_add(1, std::memory_order_relaxed);
  }
  cv_work_.notify_one();
}

std::size_t context_workers::cancel_pending() {
  std::vector<ticket> doomed;
  {
    util::mutex_guard lock(mu_);
    doomed.swap(queue_);
  }
  // Regression guard (tests/test_sched.cpp CancelUnblocksProducer): the
  // drain freed max_queue_ worth of space, so producers parked in the
  // enqueue() backpressure wait must be woken here — without this they
  // stay blocked until an unrelated pop happens to notify them.
  cv_space_.notify_all();
  return fail_tickets(std::move(doomed),
                      "inplace: async transpose cancelled before execution "
                      "(transpose_context::cancel_pending)");
}

std::size_t context_workers::shutdown(bool drain_pending) {
  std::vector<ticket> doomed;
  {
    util::mutex_guard lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      if (!drain_pending) {
        doomed.swap(queue_);
      }
    }
    // Already stopping: a concurrent shutdown owns the queue decision;
    // fall through to the join so both calls return with workers dead.
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  const std::size_t failed = fail_tickets(
      std::move(doomed),
      "inplace: async transpose abandoned by context shutdown before it "
      "started (transpose_context::shutdown(drain_pending=false))");
  {
    util::mutex_guard jlock(join_mu_);
    for (auto& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
  }
  return failed;
}

std::size_t context_workers::pending() const {
  util::mutex_guard lock(mu_);
  return queue_.size();
}

std::array<qos_counters, qos_class_count> context_workers::qos_stats() const {
  std::array<qos_counters, qos_class_count> out{};
  // Settled counters first, with acquire: each settle increment is a
  // release store that happens-after its own job's enqueue increment
  // (ordered by mu_ at the pop).  Reading settled before enqueued
  // therefore can only *under*count settles relative to the enqueues
  // read afterwards — settled <= enqueued holds at every sample.
  for (std::size_t k = 0; k < qos_class_count; ++k) {
    out[k].completed = completed_[k].load(std::memory_order_acquire);
    out[k].deadline_expired = expired_[k].load(std::memory_order_acquire);
    out[k].cancelled = cancelled_[k].load(std::memory_order_acquire);
  }
  for (std::size_t k = 0; k < qos_class_count; ++k) {
    out[k].enqueued = enqueued_[k].load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t context_workers::fail_tickets(std::vector<ticket>&& doomed,
                                          const char* what) {
  if (doomed.empty()) {
    return 0;
  }
  const std::exception_ptr reason =
      std::make_exception_ptr(context_shutdown(what));
  for (auto& t : doomed) {
    cancelled_[qos_index(t.qos)].fetch_add(1, std::memory_order_release);
    t.fn(reason);  // settles the job's promise with context_shutdown
  }
  const std::size_t n = doomed.size();
  doomed.clear();
  return n;
}

void context_workers::worker_loop(std::size_t index) {
  t_current_pool = this;
  if (pin_workers_) {
    if (util::pin_current_thread(index)) {
      pinned_count_.fetch_add(1, std::memory_order_relaxed);
    } else if (!pin_fallback_warned_.exchange(true,
                                              std::memory_order_relaxed)) {
      // Loud, once per pool: pinning was requested but this platform (or
      // its affinity policy) refused — the pool still runs, unpinned.
      std::fprintf(stderr,
                   "inplace: pin_workers requested but thread pinning is "
                   "unavailable here; workers run unpinned\n");
    }
  }
  for (;;) {
    ticket t;
    std::exception_ptr sched_poison;
    {
      util::waitable_lock lock(mu_);
      while (!stopping_ && queue_.empty()) {
        lock.wait(cv_work_);
      }
      if (queue_.empty()) {
        return;  // stop requested and nothing pending
      }
      // "ctx.sched.pop" models a scheduler fault at the pop.  A throw
      // here must not escape the thread function (std::terminate) and
      // must not orphan the picked ticket, so the fault is captured and
      // settles the ticket's future below — exactly-once, like every
      // other settle path.
#if defined(INPLACE_FAILPOINTS)
      try {
        INPLACE_FAILPOINT("ctx.sched.pop");
      } catch (...) {
        sched_poison = std::current_exception();
      }
#endif
      std::pop_heap(queue_.begin(), queue_.end(), runs_after);
      t = std::move(queue_.back());
      queue_.pop_back();
    }
    cv_space_.notify_one();
    // Settle counters tick immediately *before* the job settles its
    // promise: a caller whose future.get() returned then synchronizes
    // with the set_value/set_exception, so the increment is already
    // visible in its next stats() read.  settled <= enqueued still
    // holds — this job's enqueue increment happened long before.
    const std::size_t qi = qos_index(t.qos);
    if (sched_poison) {
      cancelled_[qi].fetch_add(1, std::memory_order_release);
      t.fn(sched_poison);
      continue;
    }
    // Deadline check at pickup: an expired ticket settles with
    // deadline_exceeded instead of running — its buffer is untouched.
    if (t.deadline != no_deadline &&
        std::chrono::steady_clock::now() > t.deadline) {
      expired_[qi].fetch_add(1, std::memory_order_release);
      t.fn(std::make_exception_ptr(deadline_exceeded(
          "inplace: async transpose deadline passed before a worker "
          "picked the job up (job_options::deadline)")));
      continue;
    }
    // "ctx.worker.job" models a worker-side fault before the job body
    // runs (e.g. a TLS or pool-resource failure): the job still settles
    // its future — with the injected exception — instead of vanishing.
    std::exception_ptr poison;
#if defined(INPLACE_FAILPOINTS)
    try {
      INPLACE_FAILPOINT("ctx.worker.job");
    } catch (...) {
      poison = std::current_exception();
    }
#endif
    completed_[qi].fetch_add(1, std::memory_order_release);
    t.fn(poison);  // the closure captures any exception into its future
  }
}

}  // namespace inplace::detail
