#pragma once
// Plan-time machinery for arbitrary-rank axis permutation (the HPTT
// direction: Springer et al., PAPERS.md).  Any rank-N permutation of a
// row-major tensor decomposes into a short sequence of *adjacent group
// swaps*: with the current axis order split as (P, X, Y, S), one pass
// reorders the layout to (P, Y, X, S).  Each such pass is exactly one of
// the primitives this repo already has:
//
//   |S| == 0              batched 2-D transposition: prod(P) independent
//                         prod(X) x prod(Y) matrices through the planned
//                         executor (kernel tiers, NT streaming, rollback,
//                         OOM ladder all apply);
//   |P| == |S| == 0       one flat 2-D transposition of the reshaped
//                         prod(X) x prod(Y) view;
//   |S| >  0              chunk-grid cycle following: a prod(X) x prod(Y)
//                         grid of contiguous prod(S)-element blocks.
//
// Planning happens in three steps, mirroring HPTT:
//
//   1. normalize_nd — drop unit extents and fuse input-adjacent axes that
//      stay adjacent (in order) under the permutation.  NCHW->NHWC, for
//      example, fuses H,W and becomes a rank-3 problem with a single
//      batched-transpose decomposition.
//   2. make_tensor_plan — Dijkstra over the (normalized-rank)! axis
//      orderings, every adjacent-group swap an edge, edge cost scored by
//      the memsim roofline model (memsim::predict_heuristic on the pass's
//      matrix shape, batch-scaled).  The cheapest path from the identity
//      order to the target order is the emitted pass sequence.
//   3. tensor_goal::worst — the same search maximizing cost under a pass
//      budget, used by bench/ablation_tensor_nd to measure what the
//      search buys over a naive decomposition order.
//
// Execution (core/tensor_nd.hpp) replays the passes; the plan is memoized
// in transpose_context keyed by the normalized (dims, perm).

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/errors.hpp"

namespace inplace {

/// Upper bound on the tensor rank permute_nd accepts.  Eight axes pack as
/// 4-bit nibbles into the context key's nd_perm word, and 8! = 40320 axis
/// orderings keep the plan search tractable.
inline constexpr std::size_t tensor_max_rank = 8;

namespace detail {

/// A permutation after normalization: unit extents dropped, adjacent
/// axes that the permutation keeps adjacent (in order) fused.  rank <= 1
/// means the permutation is the identity on memory.  perm[k] names the
/// normalized input axis that becomes output axis k — the same convention
/// as permute3/permute_nd.  By construction a normalized perm of rank >= 2
/// is never the identity (an identity residual would have fused).
struct nd_normalized {
  std::size_t rank = 0;
  std::array<std::uint64_t, tensor_max_rank> dims{};
  std::array<std::uint8_t, tensor_max_rank> perm{};
  std::uint64_t total = 0;  ///< element count of the full tensor
};

/// Throws inplace::error unless perm is a permutation of {0..rank-1},
/// dims/perm agree on the rank, and the rank is within tensor_max_rank.
void validate_nd_perm(std::span<const std::size_t> dims,
                      std::span<const int> perm);

/// Normalizes a validated (dims, perm) pair.  Requires every extent
/// nonzero (callers early-return empty tensors before planning).
nd_normalized normalize_nd(std::span<const std::size_t> dims,
                           std::span<const int> perm);

/// The normalized perm packed as 4-bit nibbles (axis k in bits [4k,4k+4)),
/// the context key's nd_perm word.
[[nodiscard]] std::uint32_t pack_nd_perm(const nd_normalized& norm) noexcept;

/// One decomposition pass: the current layout (P, X, Y, S) becomes
/// (P, Y, X, S), i.e. `batch` independent rows x cols grids of
/// contiguous chunk-element blocks transpose in place.  chunk == 1 passes
/// route through the 2-D executor; chunk > 1 passes run the hardened
/// chunk-grid cycle following (core/tensor_nd.hpp).
struct nd_pass {
  std::uint64_t batch = 1;
  std::uint64_t rows = 1;
  std::uint64_t cols = 1;
  std::uint64_t chunk = 1;
};

/// Which end of the decomposition-order search to return.
enum class tensor_goal : std::uint8_t {
  best,   ///< Dijkstra minimum-cost pass sequence (the production plan)
  worst,  ///< maximum-cost sequence within a pass budget (ablation foil)
};

/// The pass cost model's two machine-dependent constants.  The defaults
/// are the hand-calibrated values from the CPU reference machine; on
/// first use make_tensor_plan replaces them with a startup micro-probe
/// (tensor_calibration below) unless the probe fails or the caller opts
/// out with INPLACE_TENSOR_CALIBRATION=static.
struct tensor_calibration_values {
  /// Strided-sweep multiplier for chunk == 1 passes: how many effective
  /// streaming sweeps one planned in-place engine pass costs.
  double engine_sweeps = 7.0;
  /// Cache-line size charged to sub-line chunk gathers in chunk > 1
  /// passes.
  double line_bytes = 64.0;
  /// "probed" when at least one probe supplied a value, else "static".
  /// Always a string literal — safe to store in telemetry records.
  const char* provenance = "static";
};

/// Process-wide calibration, probed once on first call (a few hundred
/// microseconds) and cached.  Never throws: any probe failure — OOM,
/// sysconf unavailable, degenerate timings — falls back to the static
/// defaults with provenance "static".
[[nodiscard]] const tensor_calibration_values& tensor_calibration();

/// A resolved rank-N permutation plan: the normalized problem and the
/// ordered pass list.  An empty pass list means identity (nothing runs).
struct tensor_plan {
  nd_normalized norm;
  std::vector<nd_pass> passes;
  double model_seconds = 0.0;  ///< memsim score of the chosen sequence
  /// tensor_calibration().provenance at plan time, carried into the
  /// telemetry plan record so bench JSON shows which cost-model constants
  /// scored the pass search.
  const char* calibration = "static";
};

/// Builds the pass sequence for an already-normalized permutation.
/// Fires the "tensor.plan.search" failpoint before the search (plan-time
/// fault: the caller's buffer is untouched).
tensor_plan make_tensor_plan(const nd_normalized& norm, std::size_t elem_size,
                             tensor_goal goal = tensor_goal::best);

/// Convenience overload: validates, normalizes, then plans.
tensor_plan make_tensor_plan(std::span<const std::size_t> dims,
                             std::span<const int> perm, std::size_t elem_size,
                             tensor_goal goal = tensor_goal::best);

}  // namespace detail
}  // namespace inplace
