#pragma once
// Argument validation shared by all public entry points.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace inplace {

/// Thrown for invalid arguments to the public transposition API
/// (null data with nonzero extent, extent products overflowing size_t, ...).
class error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by the async entry points when a transpose_context is shut
/// down: submit() after shutdown, and every queued-but-unstarted job's
/// future when the context is destroyed or cancelled before the job ran.
/// Not an inplace::error — the arguments were fine; the context's
/// lifecycle ended first.  The job's buffer is untouched.
class context_shutdown : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown into a job's future when its job_options deadline passed before
/// a worker picked the job up: the transpose never ran and the buffer is
/// untouched.  Not an inplace::error — the arguments were fine; the
/// scheduler declined the work because its deadline already lapsed.
class deadline_exceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by submit() for a *worker-thread re-entrant* submission while
/// the queue is at context_options::max_queue.  A worker blocking in the
/// backpressure wait can never be woken (the queue drains only through
/// that same worker pool), so re-entrant submits fail fast instead of
/// deadlocking; the job is never queued and the buffer is untouched.
/// Ordinary producers are unaffected — they block as before.
class queue_overflow : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Validates an (rows, cols) extent pair against a data pointer and returns
/// rows*cols, throwing inplace::error on overflow or null data.
std::size_t checked_extent(const void* data, std::size_t rows,
                           std::size_t cols);

/// Rank-N generalization of checked_extent: validates an extent list
/// against a data pointer and returns the element count.  The product
/// accumulates with a per-step overflow check — the transpose_batched
/// funnel generalized — so crafted extents can never wrap size_t before
/// anyone looks (the pre-PR-8 tensor paths computed d0*d1*d2 first and
/// validated the wrapped value).  The byte extent (count * elem_size) is
/// checked too.  A zero extent makes the tensor empty (returns 0): no
/// memory is addressed, matching the 2-D funnel's zero-extent semantics.
std::size_t checked_extent_nd(const void* data, const std::size_t* dims,
                              std::size_t rank, std::size_t elem_size);

}  // namespace detail
}  // namespace inplace
