#pragma once
// The decomposed permutation equations of Sections 3-4 (Eqs. 22-36).
//
// All functions are written exactly as derived in the paper, templated on a
// division policy (fast_divmod for the strength-reduced build, plain_divmod
// for the ablation).  Index arithmetic is unsigned 64-bit throughout; every
// subtraction below is guarded by an addition that keeps the intermediate
// non-negative.
//
// Gather convention: a permutation P applied as a *gather* produces
// dst[k] = src[P(k)].  All rotations are expressed as gathers with an
// offset: rotating a length-m column by k means dst[i] = src[(i+k) mod m].

#include <cstdint>

#include "core/contracts.hpp"
#include "core/fastdiv.hpp"
#include "core/gcdmath.hpp"
#include "core/layout.hpp"

namespace inplace {

/// Precomputed constants and index equations for one (m, n) problem.
///
/// Divmod is the division policy (fast_divmod or plain_divmod).
template <typename Divmod = fast_divmod>
struct transpose_math {
  std::uint64_t m;       ///< rows
  std::uint64_t n;       ///< cols
  std::uint64_t c;       ///< gcd(m, n)
  std::uint64_t a;       ///< m / c
  std::uint64_t b;       ///< n / c
  std::uint64_t a_inv;   ///< mmi(a, b) — Eq. 31
  std::uint64_t b_inv;   ///< mmi(b, a) — Eq. 34
  Divmod by_m, by_n, by_a, by_b, by_c;

  /// Precondition: rows >= 1 and cols >= 1 (validated by transpose_plan).
  transpose_math(std::uint64_t rows, std::uint64_t cols)
      : m(rows), n(cols) {
    const gcd_triplet g = decompose_gcd(m, n);
    c = g.c;
    a = g.a;
    b = g.b;
    a_inv = mmi(a, b);
    b_inv = mmi(b, a);
    by_m = Divmod(m);
    by_n = Divmod(n);
    by_a = Divmod(a);
    by_b = Divmod(b);
    by_c = Divmod(c);
  }

  /// True when the pre-rotation step is required (Lemma 1: conflicts exist
  /// exactly when gcd(m, n) > 1).
  [[nodiscard]] bool needs_prerotate() const { return c > 1; }

  // --- C2R direction -----------------------------------------------------

  /// Eq. 23 — pre-rotation gather offset for column j: r_j(i) = (i + ⌊j/b⌋)
  /// mod m.  Returns ⌊j/b⌋, which is < c ≤ m, so no reduction is needed.
  [[nodiscard]] std::uint64_t prerotate_offset(std::uint64_t j) const {
    return by_b.div(j);
  }

  /// Eq. 24 — destination column of element j of (pre-rotated) row i:
  /// d′_i(j) = (((i + ⌊j/b⌋) mod m) + j·m) mod n.  Scatter form of the row
  /// shuffle.
  [[nodiscard]] std::uint64_t d_prime(std::uint64_t i,
                                      std::uint64_t j) const {
    return by_n.mod(by_m.mod(i + by_b.div(j)) + j * m);
  }

  /// The helper f(i, j) of Section 4.2 used to invert d′.
  [[nodiscard]] std::uint64_t f_helper(std::uint64_t i,
                                       std::uint64_t j) const {
    const std::uint64_t base = j + i * (n - 1);
    // Condition "i - (j mod c) + c <= m", rearranged to stay unsigned.
    return (i + c <= m + by_c.mod(j)) ? base : base + m;
  }

  /// Eq. 31 — gather form of the row shuffle:
  /// d′⁻¹_i(j) = (a⁻¹·⌊f/c⌋) mod b + (f mod c)·b.
  [[nodiscard]] std::uint64_t d_prime_inv(std::uint64_t i,
                                          std::uint64_t j) const {
    const auto [fq, fr] = by_c.divmod(f_helper(i, j));
    return by_b.mod(a_inv * by_b.mod(fq)) + fr * b;
  }

  /// Eq. 26 — column-shuffle gather: s′_j(i) = (j + i·n − ⌊i/a⌋) mod m.
  [[nodiscard]] std::uint64_t s_prime(std::uint64_t i,
                                      std::uint64_t j) const {
    return by_m.mod(j + i * n - by_a.div(i));
  }

  /// Eq. 32 — rotation component of the column shuffle: p_j rotates column
  /// j by j.  Returned reduced mod m for use as a gather offset.
  [[nodiscard]] std::uint64_t p_offset(std::uint64_t j) const {
    return by_m.mod(j);
  }

  /// Eq. 33 — static row permutation component of the column shuffle:
  /// q(i) = (i·n − ⌊i/a⌋) mod m.
  [[nodiscard]] std::uint64_t q(std::uint64_t i) const {
    return by_m.mod(i * n - by_a.div(i));
  }

  // --- R2C direction (inverses, Section 4.3) ------------------------------

  /// Eq. 34 — gather form of the inverse row permutation:
  /// q⁻¹(i) = (⌊(c−1+i)/c⌋·b⁻¹) mod a + ((c−1)·i mod c)·a.
  [[nodiscard]] std::uint64_t q_inv(std::uint64_t i) const {
    return by_a.mod(by_c.div(c - 1 + i) * b_inv) +
           by_c.mod((c - 1) * i) * a;
  }

  /// Eq. 35 — gather offset inverting p_j: p⁻¹_j rotates by (−j) mod m.
  [[nodiscard]] std::uint64_t p_inv_offset(std::uint64_t j) const {
    const std::uint64_t r = by_m.mod(j);
    return r == 0 ? 0 : m - r;
  }

  /// Eq. 36 — gather offset inverting the pre-rotation: (−⌊j/b⌋) mod m.
  [[nodiscard]] std::uint64_t prerotate_inv_offset(std::uint64_t j) const {
    const std::uint64_t r = by_b.div(j);  // < c <= m
    return r == 0 ? 0 : m - r;
  }
};

/// Incremental evaluator of d'_i(j) for j = 0, 1, ..., n-1 — Section 4.4's
/// strength reduction taken to its conclusion for the row shuffle: since
/// rows are traversed in j order, d'_i(j) = ((i + ⌊j/b⌋) mod m + j·m)
/// mod n advances by (m mod n) each step, plus a +1 correction every b
/// steps (or +(1-m) when the inner rotation wraps), leaving only adds and
/// conditional subtracts in the per-element loop.
class d_prime_stepper {
 public:
  /// Starts at j = 0 for row i.  Requires i < m, n >= 1.
  template <typename Divmod>
  d_prime_stepper(const transpose_math<Divmod>& mm, std::uint64_t i)
      : m_(mm.m),
        n_(mm.n),
        b_(mm.b),
        m_mod_n_(mm.m % mm.n),
        wrap_fix_((mm.n + 1 - mm.m % mm.n) % mm.n),
        u_(i),
        val_(i % mm.n) {
    INPLACE_REQUIRE(i < mm.m, "d_prime_stepper row index out of range");
    INPLACE_REQUIRE(mm.n >= 1, "d_prime_stepper requires n >= 1");
  }

  /// d'_i(j) for the current j.
  [[nodiscard]] std::uint64_t value() const { return val_; }

  /// ⌊j/b⌋ for the current j — the pre-rotation offset of column j
  /// (Eq. 23), maintained for free by the same counter.
  [[nodiscard]] std::uint64_t rotation() const { return rot_; }

  /// Steps j -> j + 1.
  void advance() {
    val_ += m_mod_n_;
    if (val_ >= n_) {
      val_ -= n_;
    }
    if (++jb_ == b_) {
      jb_ = 0;
      ++rot_;
      ++u_;
      if (u_ == m_) {
        u_ = 0;
        val_ += wrap_fix_;  // (1 - m) mod n
      } else {
        val_ += 1;
      }
      if (val_ >= n_) {
        val_ -= n_;
      }
    }
  }

 private:
  std::uint64_t m_, n_, b_;
  std::uint64_t m_mod_n_, wrap_fix_;
  std::uint64_t u_;          ///< (i + ⌊j/b⌋) mod m
  std::uint64_t val_;        ///< d'_i(j)
  std::uint64_t jb_ = 0;     ///< j mod b
  std::uint64_t rot_ = 0;    ///< ⌊j/b⌋
};

}  // namespace inplace
