#pragma once
// Number-theoretic helpers behind the decomposition: gcd, the extended
// Euclidean algorithm, and the modular multiplicative inverse used by the
// gather forms of the row shuffle (Eq. 31) and row permutation (Eq. 34).

#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace inplace {

/// Result of the extended Euclidean algorithm: g = gcd(x, y) with Bezout
/// coefficients g = s*x + t*y.
struct extended_gcd_result {
  std::uint64_t g;
  std::int64_t s;
  std::int64_t t;
};

[[nodiscard]] constexpr extended_gcd_result extended_gcd(std::uint64_t x,
                                                         std::uint64_t y) {
  std::int64_t s0 = 1, s1 = 0;
  std::int64_t t0 = 0, t1 = 1;
  std::uint64_t r0 = x, r1 = y;
  while (r1 != 0) {
    const auto q = static_cast<std::int64_t>(r0 / r1);
    const std::uint64_t r2 = r0 % r1;
    r0 = r1;
    r1 = r2;
    const std::int64_t s2 = s0 - q * s1;
    s0 = s1;
    s1 = s2;
    const std::int64_t t2 = t0 - q * t1;
    t0 = t1;
    t1 = t2;
  }
  return {r0, s0, t0};
}

/// Modular multiplicative inverse: the x' in [0, y) with (x*x') mod y == 1.
/// Defined for coprime x, y (the paper applies it to the coprime pair a, b).
/// By convention mmi(x, 1) == 0, since every value is congruent mod 1.
[[nodiscard]] constexpr std::uint64_t mmi(std::uint64_t x, std::uint64_t y) {
  if (y == 0) {
    throw std::invalid_argument("mmi: modulus must be nonzero");
  }
  if (y == 1) {
    return 0;
  }
  const extended_gcd_result e = extended_gcd(x % y, y);
  if (e.g != 1) {
    throw std::invalid_argument("mmi: arguments are not coprime");
  }
  const auto m = static_cast<std::int64_t>(y);
  std::int64_t inv = e.s % m;
  if (inv < 0) {
    inv += m;
  }
  return static_cast<std::uint64_t>(inv);
}

/// The paper's standing decomposition constants for an m x n array:
/// c = gcd(m, n), a = m/c, b = n/c (Section 3).
struct gcd_triplet {
  std::uint64_t c;
  std::uint64_t a;
  std::uint64_t b;
};

[[nodiscard]] constexpr gcd_triplet decompose_gcd(std::uint64_t m,
                                                  std::uint64_t n) {
  const std::uint64_t c = std::gcd(m, n);
  return {c, c == 0 ? 0 : m / c, c == 0 ? 0 : n / c};
}

}  // namespace inplace
