#pragma once
// Plan-reusing execution: `transposer<T>` precomputes the plan, the index
// math (including every strength-reduced reciprocal) and the scratch
// workspace once, so repeated transpositions of the same shape — the
// common case in iterative solvers and ML input pipelines — pay no
// per-call setup.  `transpose_batched` applies it across a contiguous
// batch of equally shaped matrices.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>

#include "core/contracts.hpp"
#include "core/execute.hpp"

namespace inplace {

/// Reusable in-place transposition executor for one fixed shape.
///
/// Not thread-safe: one transposer instance must not execute on two
/// threads at once (the workspaces and cycle memos are exclusive to one
/// execution).  transpose_context hands out distinct instances to
/// concurrent callers.
template <typename T>
class transposer {
 public:
  /// Plans the transposition of a rows x cols matrix in `order`.
  transposer(std::size_t rows, std::size_t cols,
             storage_order order = storage_order::row_major,
             const options& opts = {})
      : transposer(make_plan_for_shape(rows, cols, order, opts, sizeof(T))) {}

  /// Adopts an already-resolved plan (transpose_context caches the plan
  /// per shape and constructs arenas from it directly, skipping repeated
  /// planning).  The plan must come from make_plan/make_directed_plan/
  /// make_plan_for_shape — the executor refuses unresolved engines.
  /// Scratch acquisition walks the OOM degradation ladder (see
  /// detail::acquire_scratch); plan().rung reports where it landed.
  explicit transposer(const transpose_plan& plan) : plan_(plan) {
    if (plan_.m > 1 && plan_.n > 1) {
      if (plan_.strength_reduction) {
        fast_math_.emplace(plan_.m, plan_.n);
      } else {
        plain_math_.emplace(plan_.m, plan_.n);
      }
      detail::scratch_bundle<T> scratch = detail::acquire_scratch<T>(plan_);
      ws_ = std::move(scratch.ws);
      pool_ = std::move(scratch.pool);
      tile_ = std::move(scratch.tile);
    }
  }

  [[nodiscard]] const transpose_plan& plan() const { return plan_; }

  /// True when scratch acquisition landed below scratch_rung::full (the
  /// OOM degradation ladder engaged while building this arena).  Part of
  /// the arena interface transpose_context::run_cached consumes.
  [[nodiscard]] bool degraded() const {
    return plan_.rung != scratch_rung::full;
  }

  /// Transposes one matrix in place.  `data` must have the planned shape.
  void operator()(T* data) { execute(data, /*from_cache=*/false); }

  /// operator() with an explicit telemetry provenance flag:
  /// transpose_context passes from_cache=true when this arena was reused
  /// from its cache, so warm and cold executions separate in the
  /// collector's plan dedup table.
  void execute(T* data, bool from_cache) {
    if (plan_.m <= 1 || plan_.n <= 1) {
      // Degenerate shapes transpose to the identical buffer, but they are
      // still executions — record the plan and the total span so bench
      // JSON does not silently undercount 1 x n / m x 1 calls.
      detail::note_plan_record<T>(plan_, from_cache);
      INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                             2 * plan_.m * plan_.n * sizeof(T), 0);
      return;
    }
    if (plan_.rung == scratch_rung::cycle_follow) {
      // Construction could not obtain even the reduced scratch: run the
      // strictly in-place O(1)-space fallback instead of the planned
      // engine (no workspaces exist to hand it).
      detail::note_plan_record<T>(plan_, from_cache);
      INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                             2 * plan_.m * plan_.n * sizeof(T), 0);
      detail::run_cycle_follow(data, plan_);
      return;
    }
    if (tile_ != nullptr) {
      // Tile plans carry their own chunk-grid math and workspace inside
      // the runner; the element-level math members stay unused.
      INPLACE_REQUIRE(data != nullptr, "transposer invoked with null data");
      detail::note_plan_record<T>(plan_, from_cache);
      INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                             2 * plan_.m * plan_.n * sizeof(T),
                             plan_.scratch_elements() * sizeof(T));
      detail::run_tile(data, plan_, *tile_);
      return;
    }
    if (fast_math_) {
      run(data, *fast_math_, from_cache);
    } else {
      run(data, *plain_math_, from_cache);
    }
  }

  /// Approximate bytes retained by this executor's cached state (scratch
  /// arenas plus memoized cycle leaders).  transpose_context uses it to
  /// bound the total memory its arena cache pins.
  [[nodiscard]] std::size_t cached_bytes() const {
    const auto per_ws =
        static_cast<std::size_t>(plan_.scratch_elements()) * sizeof(T);
    // On the cycle_follow rung neither scratch member exists: the arena
    // retains only the (empty) memo capacity.
    std::size_t total = ws_ ? per_ws : 0;
    if (pool_) {
      total = per_ws * std::max<std::size_t>(1, pool_->size());
    }
    if (tile_) {
      total += tile_->cached_bytes();
    }
    total += memo_.starts.capacity() * sizeof(std::uint64_t);
    for (const auto& g : col_memo_.groups) {
      total += g.capacity() * sizeof(std::uint64_t);
    }
    return total;
  }

 private:
  template <typename Math>
  void run(T* data, const Math& mm, bool from_cache) {
    INPLACE_REQUIRE(data != nullptr, "transposer invoked with null data");
    // The precomputed index math and scratch must match the plan they were
    // sized for; a mismatch here means the executor state was corrupted.
    INPLACE_CHECK(mm.m == plan_.m && mm.n == plan_.n,
                  "index math shape does not match the plan");
    INPLACE_CHECK(!ws_.has_value() ||
                      ws_->line.size() >= std::max(plan_.m, plan_.n),
                  "workspace line smaller than max(m, n) — Theorem 6's "
                  "scratch bound");
    detail::note_plan_record<T>(plan_, from_cache);
    INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                           2 * plan_.m * plan_.n * sizeof(T),
                           plan_.scratch_elements() * sizeof(T));
    detail::stage_progress prog;
    try {
      switch (plan_.engine) {
        case engine_kind::reference:
          if (plan_.dir == direction::c2r) {
            detail::c2r_reference(data, mm, *ws_, nullptr, &prog);
          } else {
            detail::r2c_reference(data, mm, *ws_, nullptr, &prog);
          }
          break;
        case engine_kind::skinny: {
          // The cycle memo makes the second and later executions skip the
          // row-permutation cycle discovery entirely (the cycles depend
          // only on the plan's shape and direction, which are fixed here).
          const kernels::kernel_set& ks = kernels::set_for(plan_.ktier);
          if (plan_.dir == direction::c2r) {
            detail::c2r_skinny(data, mm, *ws_, &memo_, &ks,
                               plan_.streaming_stores, &prog);
          } else {
            detail::r2c_skinny(data, mm, *ws_, &memo_, &ks,
                               plan_.streaming_stores, &prog);
          }
          break;
        }
        case engine_kind::blocked:
          if (plan_.dir == direction::c2r) {
            detail::c2r_blocked(data, mm, plan_, *pool_, &col_memo_, &prog);
          } else {
            detail::r2c_blocked(data, mm, plan_, *pool_, &col_memo_, &prog);
          }
          break;
        case engine_kind::automatic:
          // The constructor's make_plan_for_shape resolves `automatic`
          // (plan postcondition); reaching this case means plan_ was
          // corrupted after construction.  Fail loudly instead of silently
          // running the blocked engine.
          INPLACE_CHECK(
              false, "unresolved engine_kind::automatic reached the executor");
          throw error(
              "inplace: transposer plan corrupted — unresolved "
              "engine_kind::automatic at execution time");
      }
    } catch (...) {
      // Stage-boundary failure: invert the completed passes so the
      // caller's buffer leaves this frame restored, not scrambled.
      detail::rollback_stages(data, mm, plan_,
                              ws_.has_value() ? &*ws_ : nullptr,
                              pool_.has_value() ? &*pool_ : nullptr, prog);
      throw;
    }
  }

  transpose_plan plan_;
  std::optional<transpose_math<fast_divmod>> fast_math_;
  std::optional<transpose_math<plain_divmod>> plain_math_;
  std::optional<detail::workspace<T>> ws_;
  std::optional<detail::workspace_pool<T>> pool_;
  std::unique_ptr<detail::tile_runner_base<T>> tile_;
  detail::cycle_memo memo_;          ///< skinny row-permutation cycles
  detail::col_cycle_memo col_memo_;  ///< blocked column-shuffle cycles
};

/// Transposes `batch` contiguous, equally shaped rows x cols matrices in
/// place (data[k * rows * cols] starts matrix k).  Plans once; reuses
/// scratch across the batch.
template <typename T>
void transpose_batched(T* data, std::size_t batch, std::size_t rows,
                       std::size_t cols,
                       storage_order order = storage_order::row_major,
                       const options& opts = {}) {
  if (batch == 0) {
    return;
  }
  // checked_extent covers one matrix; the whole batch must also address
  // within size_t, in elements (the k * stride offsets below) *and* in
  // bytes — batch * rows * cols * sizeof(T) — or the offsets wrap and the
  // loop scribbles over low memory.
  const std::size_t stride = detail::checked_extent(data, rows, cols);
  constexpr std::size_t size_max = std::numeric_limits<std::size_t>::max();
  if (stride != 0 && batch > size_max / stride) {
    throw error("inplace: batch*rows*cols overflows size_t (" +
                std::to_string(batch) + " x " + std::to_string(rows) +
                " x " + std::to_string(cols) + ")");
  }
  const std::size_t total = batch * stride;
  if (total > size_max / sizeof(T)) {
    throw error("inplace: batched byte extent overflows size_t (" +
                std::to_string(total) + " elements of " +
                std::to_string(sizeof(T)) + " bytes)");
  }
  INPLACE_REQUIRE(stride == 0 || total / stride == batch,
                  "batched extent product must not wrap size_t");
  transposer<T> tr(rows, cols, order, opts);
  for (std::size_t k = 0; k < batch; ++k) {
    tr(data + k * stride);
  }
}

}  // namespace inplace
