#pragma once
// Plan-reusing execution: `transposer<T>` precomputes the plan, the index
// math (including every strength-reduced reciprocal) and the scratch
// workspace once, so repeated transpositions of the same shape — the
// common case in iterative solvers and ML input pipelines — pay no
// per-call setup.  `transpose_batched` applies it across a contiguous
// batch of equally shaped matrices.

#include <algorithm>
#include <cstddef>
#include <optional>

#include "core/contracts.hpp"
#include "core/transpose.hpp"

namespace inplace {

/// Reusable in-place transposition executor for one fixed shape.
template <typename T>
class transposer {
 public:
  /// Plans the transposition of a rows x cols matrix in `order`.
  transposer(std::size_t rows, std::size_t cols,
             storage_order order = storage_order::row_major,
             const options& opts = {})
      : plan_(make_plan_for_shape(rows, cols, order, opts, sizeof(T))) {
    if (plan_.m > 1 && plan_.n > 1) {
      if (plan_.strength_reduction) {
        fast_math_.emplace(plan_.m, plan_.n);
      } else {
        plain_math_.emplace(plan_.m, plan_.n);
      }
      if (plan_.engine == engine_kind::blocked) {
        pool_.emplace(plan_.m, plan_.n, plan_.block_width, plan_.threads);
      } else {
        ws_.emplace();
        if (plan_.engine == engine_kind::skinny) {
          detail::reserve_skinny(*ws_, plan_.m, plan_.n);
        } else {
          ws_->reserve(plan_.m, plan_.n, plan_.block_width);
        }
      }
    }
  }

  [[nodiscard]] const transpose_plan& plan() const { return plan_; }

  /// Transposes one matrix in place.  `data` must have the planned shape.
  void operator()(T* data) {
    if (plan_.m <= 1 || plan_.n <= 1) {
      return;
    }
    if (fast_math_) {
      run(data, *fast_math_);
    } else {
      run(data, *plain_math_);
    }
  }

 private:
  template <typename Math>
  void run(T* data, const Math& mm) {
    INPLACE_REQUIRE(data != nullptr, "transposer invoked with null data");
    // The precomputed index math and scratch must match the plan they were
    // sized for; a mismatch here means the executor state was corrupted.
    INPLACE_CHECK(mm.m == plan_.m && mm.n == plan_.n,
                  "index math shape does not match the plan");
    INPLACE_CHECK(!ws_.has_value() ||
                      ws_->line.size() >= std::max(plan_.m, plan_.n),
                  "workspace line smaller than max(m, n) — Theorem 6's "
                  "scratch bound");
    switch (plan_.engine) {
      case engine_kind::reference:
        if (plan_.dir == direction::c2r) {
          detail::c2r_reference(data, mm, *ws_);
        } else {
          detail::r2c_reference(data, mm, *ws_);
        }
        break;
      case engine_kind::skinny:
        if (plan_.dir == direction::c2r) {
          detail::c2r_skinny(data, mm, *ws_);
        } else {
          detail::r2c_skinny(data, mm, *ws_);
        }
        break;
      case engine_kind::automatic:
      case engine_kind::blocked:
        if (plan_.dir == direction::c2r) {
          detail::c2r_blocked(data, mm, plan_, *pool_);
        } else {
          detail::r2c_blocked(data, mm, plan_, *pool_);
        }
        break;
    }
  }

  transpose_plan plan_;
  std::optional<transpose_math<fast_divmod>> fast_math_;
  std::optional<transpose_math<plain_divmod>> plain_math_;
  std::optional<detail::workspace<T>> ws_;
  std::optional<detail::workspace_pool<T>> pool_;
};

/// Transposes `batch` contiguous, equally shaped rows x cols matrices in
/// place (data[k * rows * cols] starts matrix k).  Plans once; reuses
/// scratch across the batch.
template <typename T>
void transpose_batched(T* data, std::size_t batch, std::size_t rows,
                       std::size_t cols,
                       storage_order order = storage_order::row_major,
                       const options& opts = {}) {
  if (batch == 0) {
    return;
  }
  detail::checked_extent(data, rows, cols);
  transposer<T> tr(rows, cols, order, opts);
  const std::size_t stride = rows * cols;
  for (std::size_t k = 0; k < batch; ++k) {
    tr(data + k * stride);
  }
}

}  // namespace inplace
