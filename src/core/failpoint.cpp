#include "core/failpoint.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>

#include "util/annotated_mutex.hpp"
#include "util/parse.hpp"

namespace inplace::failpoint {

namespace {

struct entry {
  mode m = mode::fault;
  std::uint64_t skip = 0;   ///< traversals to pass through before firing
  std::uint64_t count = 0;  ///< fires allowed after skip (0 = unlimited)
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  bool from_env = false;
};

struct registry {
  util::annotated_mutex mu;
  std::unordered_map<std::string, entry> map INPLACE_GUARDED_BY(mu);
  /// Retired names keep their counters after disarm so tests can assert
  /// hits()/fires() once a scoped_trigger has gone out of scope.
  std::unordered_map<std::string, entry> retired INPLACE_GUARDED_BY(mu);
};

std::atomic<std::uint64_t> armed_count{0};

registry& reg() {
  static registry* r = [] {
    auto* fresh = new registry();  // leaked: triggers may fire at exit
    return fresh;
  }();
  return *r;
}

mode parse_mode(const char* text, bool& ok) {
  ok = true;
  if (std::strcmp(text, "fault") == 0) {
    return mode::fault;
  }
  if (std::strcmp(text, "oom") == 0) {
    return mode::oom;
  }
  if (std::strcmp(text, "count") == 0) {
    return mode::count;
  }
  ok = false;
  return mode::fault;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const auto v = util::parse_u64(text);
  if (!v) {
    return false;
  }
  out = *v;
  return true;
}

/// Parses one INPLACE_FAILPOINTS entry "name[:mode[:skip[:count]]]" and
/// arms it (caller holds r.mu — enforced by the analysis).  Malformed
/// entries warn and are skipped — injection must never silently change
/// meaning.
void arm_env_entry_locked(registry& r, const std::string& spec)
    INPLACE_REQUIRES(r.mu) {
  std::string fields[4];
  std::size_t field = 0;
  for (const char c : spec) {
    if (c == ':' && field < 3) {
      ++field;
    } else {
      fields[field] += c;
    }
  }
  const std::string& name = fields[0];
  entry e;
  e.from_env = true;
  bool ok = !name.empty();
  if (ok && !fields[1].empty()) {
    e.m = parse_mode(fields[1].c_str(), ok);
  }
  if (ok && !fields[2].empty()) {
    ok = parse_u64(fields[2], e.skip);
  }
  if (ok && !fields[3].empty()) {
    ok = parse_u64(fields[3], e.count);
  }
  if (!ok) {
    std::fprintf(stderr,
                 "inplace: ignoring malformed INPLACE_FAILPOINTS entry '%s' "
                 "(want name[:fault|oom|count[:skip[:count]]])\n",
                 spec.c_str());
    return;
  }
  if (r.map.insert_or_assign(name, e).second) {
    armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void reload_env_locked(registry& r) INPLACE_REQUIRES(r.mu) {
  // Drop previous env-armed triggers (programmatic ones stay).
  for (auto it = r.map.begin(); it != r.map.end();) {
    if (it->second.from_env) {
      r.retired[it->first] = it->second;
      it = r.map.erase(it);
      armed_count.fetch_sub(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  const char* env = std::getenv("INPLACE_FAILPOINTS");
  if (env == nullptr || *env == '\0') {
    return;
  }
  std::string spec;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!spec.empty()) {
        arm_env_entry_locked(r, spec);
      }
      spec.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      spec += *p;
    }
  }
}

registry& env_initialized_reg() {
  static registry& r = [&]() -> registry& {
    registry& inner = reg();
    util::mutex_guard lock(inner.mu);
    reload_env_locked(inner);
    return inner;
  }();
  return r;
}

}  // namespace

void arm(const char* name, mode m, std::uint64_t skip, std::uint64_t count) {
  registry& r = env_initialized_reg();
  util::mutex_guard lock(r.mu);
  entry e;
  e.m = m;
  e.skip = skip;
  e.count = count;
  if (r.map.insert_or_assign(name, e).second) {
    armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

bool disarm(const char* name) {
  registry& r = env_initialized_reg();
  util::mutex_guard lock(r.mu);
  const auto it = r.map.find(name);
  if (it == r.map.end()) {
    return false;
  }
  r.retired[it->first] = it->second;
  r.map.erase(it);
  armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void disarm_all() {
  registry& r = env_initialized_reg();
  util::mutex_guard lock(r.mu);
  for (const auto& [name, e] : r.map) {
    r.retired[name] = e;
  }
  armed_count.fetch_sub(r.map.size(), std::memory_order_relaxed);
  r.map.clear();
}

std::uint64_t hits(const char* name) {
  registry& r = env_initialized_reg();
  util::mutex_guard lock(r.mu);
  if (const auto it = r.map.find(name); it != r.map.end()) {
    return it->second.hits;
  }
  if (const auto it = r.retired.find(name); it != r.retired.end()) {
    return it->second.hits;
  }
  return 0;
}

std::uint64_t fires(const char* name) {
  registry& r = env_initialized_reg();
  util::mutex_guard lock(r.mu);
  if (const auto it = r.map.find(name); it != r.map.end()) {
    return it->second.fires;
  }
  if (const auto it = r.retired.find(name); it != r.retired.end()) {
    return it->second.fires;
  }
  return 0;
}

bool any_armed() noexcept {
  return armed_count.load(std::memory_order_relaxed) != 0;
}

void trigger(const char* name) {
  mode fire_mode = mode::count;
  bool fire = false;
  {
    registry& r = env_initialized_reg();
    util::mutex_guard lock(r.mu);
    const auto it = r.map.find(name);
    if (it == r.map.end()) {
      return;
    }
    entry& e = it->second;
    ++e.hits;
    if (e.hits > e.skip && (e.count == 0 || e.fires < e.count)) {
      ++e.fires;
      fire_mode = e.m;
      fire = e.m != mode::count;
    }
  }
  // Throw outside the registry lock: the unwound frames may themselves
  // traverse (and query) failpoints.
  if (!fire) {
    return;
  }
  if (fire_mode == mode::oom) {
    throw std::bad_alloc();
  }
  throw injected_fault(std::string("inplace: injected fault at failpoint '") +
                       name + "'");
}

void reload_env() {
  registry& r = env_initialized_reg();
  util::mutex_guard lock(r.mu);
  reload_env_locked(r);
}

}  // namespace inplace::failpoint
