#pragma once
// Planning: algorithm direction (Section 5.2's heuristic), engine variant
// and scratch sizing for one transposition.  The plan is element-type
// independent; engines consume it together with a transpose_math instance.

#include <cstddef>
#include <cstdint>

#include "core/layout.hpp"
#include "cpu/kernels/tier.hpp"

namespace inplace {

/// Which of the two mutually inverse permutations to run (Figure 1).
enum class direction { c2r, r2c };

/// Engine implementations (Sections 4-5).
enum class engine_kind {
  automatic,  ///< pick by shape: skinny for narrow problems, else blocked
  reference,  ///< Algorithm 1 verbatim: naive per-row/per-column passes
  blocked,    ///< cache-aware rotations + cycle row permute, parallel
  skinny,     ///< Section 6.1 fused streaming passes (narrow arrays)
};

/// Stable display names (telemetry plan records, bench JSON).
[[nodiscard]] constexpr const char* engine_name(engine_kind e) {
  switch (e) {
    case engine_kind::automatic:
      return "automatic";
    case engine_kind::reference:
      return "reference";
    case engine_kind::blocked:
      return "blocked";
    case engine_kind::skinny:
      return "skinny";
  }
  return "unknown";
}

[[nodiscard]] constexpr const char* direction_name(direction d) {
  return d == direction::c2r ? "c2r" : "r2c";
}

/// Which rung of the memory-pressure degradation ladder a plan's scratch
/// acquisition landed on.  Planning always targets `full`; the executor
/// walks down only when an allocation throws std::bad_alloc
/// (see detail::acquire_scratch in core/execute.hpp).
enum class scratch_rung : std::uint8_t {
  full,         ///< Theorem 6 scratch, per-thread pool — the fast path
  reduced,      ///< serial, minimum sub-row width, a single workspace
  cycle_follow, ///< O(1)-auxiliary-space cycle following, no scratch
};

/// Stable display names (telemetry plan records, bench JSON).
[[nodiscard]] constexpr const char* rung_name(scratch_rung r) {
  switch (r) {
    case scratch_rung::full:
      return "full";
    case scratch_rung::reduced:
      return "reduced";
    case scratch_rung::cycle_follow:
      return "cycle_follow";
  }
  return "unknown";
}

/// User-facing knobs for the public API.
struct options {
  /// Force a direction; `automatic` applies the paper's heuristic
  /// (Section 5.2): C2R when rows > cols, else R2C with swapped extents.
  enum class algorithm { automatic, c2r, r2c };
  algorithm alg = algorithm::automatic;

  engine_kind engine = engine_kind::automatic;

  /// Section 4.4 strength reduction; disabling selects hardware division
  /// (used by the ablation benchmark).
  bool strength_reduction = true;

  /// OpenMP thread count; 0 keeps the runtime default.
  int threads = 0;

  /// Sub-row width in bytes for the cache-aware passes.  Section 4.6
  /// sizes sub-rows to the GPU's 128-byte cache lines; on CPUs a few
  /// lines per sub-row amortizes the random-row accesses better (see
  /// bench/ablation_block_width), hence the 256-byte default.
  std::size_t block_bytes = 256;

  /// Hot-path kernel tier; `automatic` lets runtime CPU detection pick
  /// the best compiled tier (cpu/kernels/).  Pinning tier::scalar is the
  /// ablation baseline; the INPLACE_FORCE_KERNEL_TIER environment
  /// variable overrides whatever is set here at plan time.
  kernels::tier kernel = kernels::tier::automatic;

  /// In-register tile-transpose path (the Section 6.2 ladders realized
  /// as SIMD kernels).  `automatic` engages it when the plan-time gate
  /// holds: skinny engine, strength reduction on, 4/8-byte elements, the
  /// tier implements tile passes, the lane width divides m, n fits the
  /// register budget and the chunked problem stays tall.  `off` disables
  /// it unconditionally — the scratch-line ablation foil
  /// (bench/ablation_kernels).  INPLACE_FORCE_KERNEL_TIER=inreg (or
  /// <tier>-inreg) forces the path onto any shape that passes the
  /// correctness part of the gate.
  enum class tile_mode : std::uint8_t { automatic, off };
  tile_mode tile = tile_mode::automatic;
};

/// A resolved execution plan.
struct transpose_plan {
  std::uint64_t m = 0;      ///< rows as seen by the algorithm
  std::uint64_t n = 0;      ///< cols as seen by the algorithm
  direction dir = direction::c2r;
  engine_kind engine = engine_kind::blocked;
  bool strength_reduction = true;
  int threads = 0;
  std::uint64_t block_width = 16;  ///< sub-row width in *elements*

  /// Resolved hot-path kernel tier (never tier::automatic after
  /// planning): options.kernel filtered through the environment
  /// override, runtime CPU detection and the availability chain.
  kernels::tier ktier = kernels::tier::scalar;

  /// True when the copy-back and rotation passes should use non-temporal
  /// streaming stores: the tier has them and the working set exceeds the
  /// cache threshold probed at startup (kernels::streaming_threshold).
  bool streaming_stores = false;

  /// Where scratch acquisition landed on the OOM degradation ladder.
  /// Planning emits `full`; the executor demotes (and rewrites threads /
  /// block_width to match) only when allocation fails.
  scratch_rung rung = scratch_rung::full;

  /// Vector lane count W of the in-register tile pass fused into the
  /// skinny engine; 0 = scratch-line path.  When set, the engine runs
  /// the chunked factorization: the C2R of m x n becomes the forward
  /// tile pass (static_r2c<n, W>) on every W x n slab followed by the
  /// skinny C2R of the (m/W) x n matrix of W-element chunks (R2C is the
  /// mirror with the inverse pass last), with the tile pass fused into
  /// the skinny engine's streaming row passes so no extra DRAM sweep is
  /// paid.  The executor clears it (falling back to the scratch-line
  /// path) only when the chunk workspace cannot be allocated.
  std::uint64_t tile_block = 0;

  /// Scratch elements the engines may allocate; Theorem 6's bound of
  /// max(m, n) plus the constant-size cache-aware buffers.
  [[nodiscard]] std::uint64_t scratch_elements() const;
};

/// Builds the plan for transposing a `rows x cols` matrix stored in
/// `order`, after validating extents.  The returned plan's (m, n) are the
/// extents the chosen permutation runs with — already swapped when the
/// heuristic picked the R2C form (Theorem 2).
transpose_plan make_plan(const void* data, std::size_t rows,
                         std::size_t cols, storage_order order,
                         const options& opts, std::size_t elem_size);

/// Builds a plan for the raw C2R/R2C permutation on an m x n row-major
/// view, without the heuristic or any extent swapping.  Used by the
/// low-level c2r()/r2c() entry points and by the benchmarks that study one
/// direction in isolation (Figs. 4-5).
transpose_plan make_directed_plan(const void* data, std::size_t m,
                                  std::size_t n, direction dir,
                                  const options& opts, std::size_t elem_size);

/// Shape-only planning (no data pointer yet) — used by transposer<T> to
/// plan before buffers exist.  Validates extents but not the pointer.
transpose_plan make_plan_for_shape(std::size_t rows, std::size_t cols,
                                   storage_order order, const options& opts,
                                   std::size_t elem_size);

/// Shape threshold for the skinny specialization (Section 6.1): problems
/// whose algorithm-facing column count is at most this use fused passes.
inline constexpr std::uint64_t skinny_col_limit = 32;

}  // namespace inplace
