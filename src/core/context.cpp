#include "core/context.hpp"

#include <algorithm>

#include "util/threads.hpp"

namespace inplace {

namespace detail {

std::size_t context_key_hash::operator()(
    const context_key& k) const noexcept {
  // FNV-1a over the key fields; the packed byte word keeps the four
  // enum-ish fields from washing each other out.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.rows);
  mix(k.cols);
  mix(k.elem_size);
  mix(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(
      k.type_tag)));
  mix((std::uint64_t{k.kernel} << 32) | (std::uint64_t{k.mode} << 24) |
      (std::uint64_t{k.order} << 16) | (std::uint64_t{k.alg} << 8) |
      std::uint64_t{k.engine});
  mix(static_cast<std::uint64_t>(k.strength_reduction));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.threads)));
  mix(k.block_bytes);
  return static_cast<std::size_t>(h);
}

context_workers::context_workers(std::size_t count, std::size_t max_queue)
    : max_queue_(std::max<std::size_t>(1, max_queue)) {
  const std::size_t want = std::max<std::size_t>(1, count);
  // threads_ is guarded by join_mu_; no shutdown() can race a running
  // constructor, but holding the capability keeps the discipline uniform
  // (and provable) across every threads_ access.  The workers spawned
  // below contend only on mu_, never join_mu_, so no deadlock.
  util::mutex_guard jlock(join_mu_);
  threads_.reserve(want);
  try {
    for (std::size_t k = 0; k < want; ++k) {
      INPLACE_FAILPOINT("ctx.spawn");
      threads_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Partial spawn: stop and join the workers that did start, so the
    // half-built pool never escapes the constructor with live threads.
    {
      util::mutex_guard lock(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    throw;
  }
}

context_workers::~context_workers() { shutdown(/*drain_pending=*/false); }

void context_workers::enqueue(job j) {
  {
    util::waitable_lock lock(mu_);
    while (!stopping_ && queue_.size() >= max_queue_) {
      lock.wait(cv_space_);
    }
    if (stopping_) {
      throw context_shutdown(
          "inplace: submit on a transpose_context whose async machinery "
          "was shut down");
    }
    INPLACE_FAILPOINT("ctx.queue.push");
    queue_.push_back(std::move(j));
  }
  cv_work_.notify_one();
}

std::size_t context_workers::cancel_pending() {
  std::deque<job> doomed;
  {
    util::mutex_guard lock(mu_);
    doomed.swap(queue_);
  }
  cv_space_.notify_all();
  return fail_jobs(std::move(doomed),
                   "inplace: async transpose cancelled before execution "
                   "(transpose_context::cancel_pending)");
}

std::size_t context_workers::shutdown(bool drain_pending) {
  std::deque<job> doomed;
  {
    util::mutex_guard lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      if (!drain_pending) {
        doomed.swap(queue_);
      }
    }
    // Already stopping: a concurrent shutdown owns the queue decision;
    // fall through to the join so both calls return with workers dead.
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  const std::size_t failed = fail_jobs(
      std::move(doomed),
      "inplace: async transpose abandoned by context shutdown before it "
      "started (transpose_context::shutdown(drain_pending=false))");
  {
    util::mutex_guard jlock(join_mu_);
    for (auto& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
  }
  return failed;
}

std::size_t context_workers::pending() const {
  util::mutex_guard lock(mu_);
  return queue_.size();
}

std::size_t context_workers::fail_jobs(std::deque<job>&& doomed,
                                       const char* what) {
  if (doomed.empty()) {
    return 0;
  }
  const std::exception_ptr reason =
      std::make_exception_ptr(context_shutdown(what));
  for (auto& j : doomed) {
    j(reason);  // settles the job's promise with context_shutdown
  }
  const std::size_t n = doomed.size();
  doomed.clear();
  return n;
}

void context_workers::worker_loop() {
  for (;;) {
    job fn;
    {
      util::waitable_lock lock(mu_);
      while (!stopping_ && queue_.empty()) {
        lock.wait(cv_work_);
      }
      if (queue_.empty()) {
        return;  // stop requested and nothing pending
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    cv_space_.notify_one();
    // "ctx.worker.job" models a worker-side fault before the job body
    // runs (e.g. a TLS or pool-resource failure): the job still settles
    // its future — with the injected exception — instead of vanishing.
    std::exception_ptr poison;
#if defined(INPLACE_FAILPOINTS)
    try {
      INPLACE_FAILPOINT("ctx.worker.job");
    } catch (...) {
      poison = std::current_exception();
    }
#endif
    fn(poison);  // the closure captures any exception into its future
  }
}

}  // namespace detail

transpose_context::transpose_context(const context_options& copts)
    : max_plans_(std::max<std::size_t>(1, copts.max_plans)),
      max_arenas_per_plan_(std::max<std::size_t>(1, copts.max_arenas_per_plan)),
      max_cached_bytes_(copts.max_cached_bytes),
      worker_count_(copts.workers),
      max_queue_(std::max<std::size_t>(1, copts.max_queue)) {}

transpose_context::~transpose_context() {
  // Deterministic teardown: fail queued jobs, finish in-flight ones, join
  // the workers.  Every future submit() ever returned is settled by now.
  shutdown(/*drain_pending=*/false);
}

std::shared_ptr<detail::context_entry> transpose_context::acquire_entry(
    const detail::context_key& key, bool& hit) {
  util::mutex_guard lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    hit = true;
    plan_hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->entry;
  }
  hit = false;
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  while (map_.size() >= max_plans_ && !lru_.empty()) {
    evict_locked(std::prev(lru_.end()));
  }
  lru_.push_front({key, std::make_shared<detail::context_entry>()});
  map_.emplace(key, lru_.begin());
  return lru_.front().entry;
}

void transpose_context::evict_locked(lru_iter it) {
  const std::shared_ptr<detail::context_entry> entry = it->entry;
  map_.erase(it->key);
  lru_.erase(it);
  plan_evictions_.fetch_add(1, std::memory_order_relaxed);

  // Mark the entry dead and release its stored arenas; executions holding
  // the entry finish on their checked-out arena and then drop it (the
  // evicted flag blocks recycling into the orphaned entry).
  std::size_t bytes = 0;
  std::size_t dropped = 0;
  {
    util::mutex_guard elock(entry->mu);
    entry->evicted = true;
    for (const auto& [arena, b] : entry->arenas) {
      bytes += b;
      ++dropped;
    }
    entry->arenas.clear();
  }
  retained_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  arenas_dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

context_stats transpose_context::stats() const {
  context_stats s;
  s.executions = executions_.load(std::memory_order_relaxed);
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.plan_evictions = plan_evictions_.load(std::memory_order_relaxed);
  s.arenas_created = arenas_created_.load(std::memory_order_relaxed);
  s.arenas_reused = arenas_reused_.load(std::memory_order_relaxed);
  s.arenas_dropped = arenas_dropped_.load(std::memory_order_relaxed);
  s.async_jobs = async_jobs_.load(std::memory_order_relaxed);
  s.arenas_degraded = arenas_degraded_.load(std::memory_order_relaxed);
  s.jobs_cancelled = jobs_cancelled_.load(std::memory_order_relaxed);
  return s;
}

std::size_t transpose_context::cached_plans() const {
  util::mutex_guard lock(mu_);
  return map_.size();
}

std::size_t transpose_context::cached_bytes() const {
  return retained_bytes_.load(std::memory_order_relaxed);
}

void transpose_context::clear() {
  util::mutex_guard lock(mu_);
  while (!lru_.empty()) {
    evict_locked(std::prev(lru_.end()));
  }
}

void transpose_context::shutdown(bool drain_pending) {
  detail::context_workers* pool = nullptr;
  {
    util::mutex_guard lock(workers_mu_);
    shutdown_ = true;  // later submit()s fail before touching the pool
    pool = workers_.get();
  }
  if (pool == nullptr) {
    return;  // never went async; nothing to stop
  }
  const std::size_t failed = pool->shutdown(drain_pending);
  jobs_cancelled_.fetch_add(failed, std::memory_order_relaxed);
}

std::size_t transpose_context::cancel_pending() {
  detail::context_workers* pool = nullptr;
  {
    util::mutex_guard lock(workers_mu_);
    pool = workers_.get();
  }
  if (pool == nullptr) {
    return 0;
  }
  const std::size_t failed = pool->cancel_pending();
  jobs_cancelled_.fetch_add(failed, std::memory_order_relaxed);
  return failed;
}

detail::context_workers& transpose_context::workers() {
  util::mutex_guard lock(workers_mu_);
  if (shutdown_) {
    throw context_shutdown(
        "inplace: submit on a transpose_context after shutdown()");
  }
  if (!workers_) {
    std::size_t count = worker_count_;
    if (count == 0) {
      // Small default: enough to overlap planning/allocation with engine
      // execution without oversubscribing the OpenMP pool badly.
      count = std::clamp<std::size_t>(
          static_cast<std::size_t>(util::hardware_threads()), 2, 4);
    }
    workers_ = std::make_unique<detail::context_workers>(count, max_queue_);
  }
  return *workers_;
}

transpose_context& default_context() {
  // Intentionally leaked: worker threads and cached arenas must outlive
  // any static-destruction-order transposes, and the OS reclaims the
  // memory anyway.
  static auto* ctx = new transpose_context();
  return *ctx;
}

}  // namespace inplace
