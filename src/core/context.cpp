#include "core/context.hpp"

#include <algorithm>

#include "util/threads.hpp"

namespace inplace {

namespace detail {

std::size_t context_key_hash::operator()(
    const context_key& k) const noexcept {
  // FNV-1a over the key fields; the packed byte word keeps the four
  // enum-ish fields from washing each other out.  The multiplicative mix
  // diffuses every field into the high bits too — context_shard_index
  // stripes on those, and the dispersion test in tests/test_context.cpp
  // holds this hash to a chi-square bound over adversarial shape sweeps.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.rows);
  mix(k.cols);
  mix(k.elem_size);
  mix(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(
      k.type_tag)));
  mix((std::uint64_t{k.tile} << 40) | (std::uint64_t{k.kernel} << 32) |
      (std::uint64_t{k.mode} << 24) | (std::uint64_t{k.order} << 16) |
      (std::uint64_t{k.alg} << 8) | std::uint64_t{k.engine});
  mix(static_cast<std::uint64_t>(k.strength_reduction));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.threads)));
  mix(k.block_bytes);
  // permute_nd identity: the normalized extents and the packed perm.
  // nd_rank bounds the loop so the 2-D modes (rank 0) pay nothing extra
  // beyond one mix of the packed word.
  for (std::size_t a = 0; a < k.nd_rank; ++a) {
    mix(k.nd_dims[a]);
  }
  mix((std::uint64_t{k.nd_rank} << 32) | std::uint64_t{k.nd_perm});
  return static_cast<std::size_t>(h);
}

namespace {

/// Resolves context_options::cache_shards: 0 means the default, then
/// round up to a power of two (context_shard_index needs one) and clamp.
std::size_t resolve_shard_count(std::size_t requested) {
  std::size_t n = requested == 0 ? 8 : requested;
  n = std::bit_ceil(n);
  return std::min<std::size_t>(n, 256);
}

std::vector<std::unique_ptr<cache_shard>> make_shards(std::size_t count) {
  std::vector<std::unique_ptr<cache_shard>> shards;
  shards.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    shards.push_back(std::make_unique<cache_shard>());
  }
  return shards;
}

}  // namespace

}  // namespace detail

transpose_context::transpose_context(const context_options& copts)
    : max_plans_(std::max<std::size_t>(1, copts.max_plans)),
      max_arenas_per_plan_(std::max<std::size_t>(1, copts.max_arenas_per_plan)),
      max_cached_bytes_(copts.max_cached_bytes),
      shard_count_(detail::resolve_shard_count(copts.cache_shards)),
      worker_count_(copts.workers),
      max_queue_(std::max<std::size_t>(1, copts.max_queue)),
      pin_workers_(copts.pin_workers),
      shards_(detail::make_shards(shard_count_)) {}

transpose_context::~transpose_context() {
  // Deterministic teardown: fail queued jobs, finish in-flight ones, join
  // the workers.  Every future submit() ever returned is settled by now.
  shutdown(/*drain_pending=*/false);
}

std::shared_ptr<detail::context_entry> transpose_context::acquire_entry(
    const detail::context_key& key, bool& hit) {
  detail::cache_shard& shard =
      *shards_[detail::context_shard_index(key, shard_count_)];
  util::mutex_guard lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hit = true;
    plan_hits_.fetch_add(1, std::memory_order_relaxed);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->entry;
  }
  hit = false;
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  // Capacity is global, eviction local: make room from THIS shard's LRU
  // tail while the whole cache is full.  With one shard this is exactly
  // the classic global-LRU bound; with N shards a full cache whose
  // overflow lives elsewhere lets the insert through after draining the
  // local tail, so total plans stay within max_plans_ + shard_count_ - 1
  // while a skewed key distribution never shrinks the effective cache
  // (a hard ceil(max_plans/shards) quota would evict a 4-plan working
  // set out of a 16-plan cache whenever two keys shared a stripe).
  while (plan_count_.load(std::memory_order_relaxed) >= max_plans_ &&
         !shard.lru.empty()) {
    evict_locked(shard, std::prev(shard.lru.end()));
  }
  shard.lru.push_front({key, std::make_shared<detail::context_entry>()});
  shard.map.emplace(key, shard.lru.begin());
  plan_count_.fetch_add(1, std::memory_order_relaxed);
  return shard.lru.front().entry;
}

void transpose_context::evict_locked(detail::cache_shard& shard,
                                     detail::context_lru_iter it) {
  // "ctx.shard.evict" models an eviction-path fault (e.g. a failing
  // bookkeeping allocation).  Fires before any mutation so a fault
  // leaves the shard — map, LRU, byte accounting — fully intact.
  INPLACE_FAILPOINT("ctx.shard.evict");
  const std::shared_ptr<detail::context_entry> entry = it->entry;
  shard.map.erase(it->key);
  shard.lru.erase(it);
  plan_count_.fetch_sub(1, std::memory_order_relaxed);
  plan_evictions_.fetch_add(1, std::memory_order_relaxed);

  // Mark the entry dead and release its stored arenas; executions holding
  // the entry finish on their checked-out arena and then drop it (the
  // evicted flag blocks recycling into the orphaned entry).
  std::size_t bytes = 0;
  std::size_t dropped = 0;
  {
    util::mutex_guard elock(entry->mu);
    entry->evicted = true;
    for (const auto& [arena, b] : entry->arenas) {
      bytes += b;
      ++dropped;
    }
    entry->arenas.clear();
  }
  retained_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  arenas_dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

context_stats transpose_context::stats() const {
  context_stats s;
  // Settle-side counters before enqueue-side ones, for the same
  // monotonic-snapshot reason as context_workers::qos_stats(): reading
  // jobs_cancelled (a settled count) before async_jobs can only
  // undercount settles relative to the enqueues read after it.
  s.jobs_cancelled = jobs_cancelled_.load(std::memory_order_acquire);
  detail::context_workers* pool = nullptr;
  {
    util::mutex_guard lock(workers_mu_);
    pool = workers_.get();
  }
  if (pool != nullptr) {
    s.qos = pool->qos_stats();
    s.pinned_workers = pool->pinned_workers();
  }
  s.async_jobs = async_jobs_.load(std::memory_order_relaxed);
  s.executions = executions_.load(std::memory_order_relaxed);
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.plan_evictions = plan_evictions_.load(std::memory_order_relaxed);
  s.arenas_created = arenas_created_.load(std::memory_order_relaxed);
  s.arenas_reused = arenas_reused_.load(std::memory_order_relaxed);
  s.arenas_dropped = arenas_dropped_.load(std::memory_order_relaxed);
  s.arenas_degraded = arenas_degraded_.load(std::memory_order_relaxed);
  return s;
}

std::size_t transpose_context::cached_plans() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::mutex_guard lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

std::size_t transpose_context::cached_bytes() const {
  return retained_bytes_.load(std::memory_order_relaxed);
}

void transpose_context::clear() {
  for (const auto& shard : shards_) {
    util::mutex_guard lock(shard->mu);
    while (!shard->lru.empty()) {
      evict_locked(*shard, std::prev(shard->lru.end()));
    }
  }
}

void transpose_context::shutdown(bool drain_pending) {
  detail::context_workers* pool = nullptr;
  {
    util::mutex_guard lock(workers_mu_);
    shutdown_ = true;  // later submit()s fail before touching the pool
    pool = workers_.get();
  }
  if (pool == nullptr) {
    return;  // never went async; nothing to stop
  }
  const std::size_t failed = pool->shutdown(drain_pending);
  jobs_cancelled_.fetch_add(failed, std::memory_order_release);
}

std::size_t transpose_context::cancel_pending() {
  detail::context_workers* pool = nullptr;
  {
    util::mutex_guard lock(workers_mu_);
    pool = workers_.get();
  }
  if (pool == nullptr) {
    return 0;
  }
  const std::size_t failed = pool->cancel_pending();
  jobs_cancelled_.fetch_add(failed, std::memory_order_release);
  return failed;
}

detail::context_workers& transpose_context::workers() {
  util::mutex_guard lock(workers_mu_);
  if (shutdown_) {
    throw context_shutdown(
        "inplace: submit on a transpose_context after shutdown()");
  }
  if (!workers_) {
    detail::context_workers::config cfg;
    cfg.count = worker_count_;
    if (cfg.count == 0) {
      // Small default: enough to overlap planning/allocation with engine
      // execution without oversubscribing the OpenMP pool badly.
      cfg.count = std::clamp<std::size_t>(
          static_cast<std::size_t>(util::hardware_threads()), 2, 4);
    }
    cfg.max_queue = max_queue_;
    cfg.pin_workers = pin_workers_;
    workers_ = std::make_unique<detail::context_workers>(cfg);
  }
  return *workers_;
}

transpose_context& default_context() {
  // Intentionally leaked: worker threads and cached arenas must outlive
  // any static-destruction-order transposes, and the OS reclaims the
  // memory anyway.
  static auto* ctx = new transpose_context();
  return *ctx;
}

}  // namespace inplace
