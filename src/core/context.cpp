#include "core/context.hpp"

#include <algorithm>

#include "util/threads.hpp"

namespace inplace {

namespace detail {

std::size_t context_key_hash::operator()(
    const context_key& k) const noexcept {
  // FNV-1a over the key fields; the packed byte word keeps the four
  // enum-ish fields from washing each other out.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.rows);
  mix(k.cols);
  mix(k.elem_size);
  mix(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(
      k.type_tag)));
  mix((std::uint64_t{k.kernel} << 32) | (std::uint64_t{k.mode} << 24) |
      (std::uint64_t{k.order} << 16) | (std::uint64_t{k.alg} << 8) |
      std::uint64_t{k.engine});
  mix(static_cast<std::uint64_t>(k.strength_reduction));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.threads)));
  mix(k.block_bytes);
  return static_cast<std::size_t>(h);
}

context_workers::context_workers(std::size_t count) {
  threads_.reserve(std::max<std::size_t>(1, count));
  for (std::size_t k = 0; k < std::max<std::size_t>(1, count); ++k) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

context_workers::~context_workers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void context_workers::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void context_workers::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and nothing pending
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();  // packaged_task captures any exception into its future
  }
}

}  // namespace detail

transpose_context::transpose_context(const context_options& copts)
    : max_plans_(std::max<std::size_t>(1, copts.max_plans)),
      max_arenas_per_plan_(std::max<std::size_t>(1, copts.max_arenas_per_plan)),
      max_cached_bytes_(copts.max_cached_bytes),
      worker_count_(copts.workers) {}

transpose_context::~transpose_context() = default;

std::shared_ptr<detail::context_entry> transpose_context::acquire_entry(
    const detail::context_key& key, bool& hit) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    hit = true;
    plan_hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->entry;
  }
  hit = false;
  plan_misses_.fetch_add(1, std::memory_order_relaxed);
  while (map_.size() >= max_plans_ && !lru_.empty()) {
    evict_locked(std::prev(lru_.end()));
  }
  lru_.push_front({key, std::make_shared<detail::context_entry>()});
  map_.emplace(key, lru_.begin());
  return lru_.front().entry;
}

void transpose_context::evict_locked(lru_iter it) {
  const std::shared_ptr<detail::context_entry> entry = it->entry;
  map_.erase(it->key);
  lru_.erase(it);
  plan_evictions_.fetch_add(1, std::memory_order_relaxed);

  // Mark the entry dead and release its stored arenas; executions holding
  // the entry finish on their checked-out arena and then drop it (the
  // evicted flag blocks recycling into the orphaned entry).
  std::size_t bytes = 0;
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> elock(entry->mu);
    entry->evicted = true;
    for (const auto& [arena, b] : entry->arenas) {
      bytes += b;
      ++dropped;
    }
    entry->arenas.clear();
  }
  retained_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  arenas_dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

context_stats transpose_context::stats() const {
  context_stats s;
  s.executions = executions_.load(std::memory_order_relaxed);
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.plan_evictions = plan_evictions_.load(std::memory_order_relaxed);
  s.arenas_created = arenas_created_.load(std::memory_order_relaxed);
  s.arenas_reused = arenas_reused_.load(std::memory_order_relaxed);
  s.arenas_dropped = arenas_dropped_.load(std::memory_order_relaxed);
  s.async_jobs = async_jobs_.load(std::memory_order_relaxed);
  return s;
}

std::size_t transpose_context::cached_plans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t transpose_context::cached_bytes() const {
  return retained_bytes_.load(std::memory_order_relaxed);
}

void transpose_context::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) {
    evict_locked(std::prev(lru_.end()));
  }
}

detail::context_workers& transpose_context::workers() {
  std::call_once(workers_once_, [this] {
    std::size_t count = worker_count_;
    if (count == 0) {
      // Small default: enough to overlap planning/allocation with engine
      // execution without oversubscribing the OpenMP pool badly.
      count = std::clamp<std::size_t>(
          static_cast<std::size_t>(util::hardware_threads()), 2, 4);
    }
    workers_ = std::make_unique<detail::context_workers>(count);
  });
  return *workers_;
}

transpose_context& default_context() {
  // Intentionally leaked: worker threads and cached arenas must outlive
  // any static-destruction-order transposes, and the OS reclaims the
  // memory anyway.
  static auto* ctx = new transpose_context();
  return *ctx;
}

}  // namespace inplace
