#pragma once
// Plan execution internals shared by the public entry points: the free
// functions (core/transpose.hpp, routed through core/context.hpp), the
// plan-reusing transposer (core/executor.hpp) and the context's cached
// entries.  Split out of transpose.hpp so context.hpp can reuse the
// machinery without a circular include.
//
// This header also owns the two halves of the failure-semantics layer
// that sit between the entry points and the engines:
//
//   * acquire_scratch — workspace acquisition walks a degradation ladder
//     under memory pressure instead of failing: full Theorem 6 scratch →
//     a reduced serial footprint → the O(1)-auxiliary-space
//     cycle-following fallback (baselines/cycle_follow.hpp), recording
//     the rung in the plan and telemetry;
//   * rollback_stages — when an engine throws at a stage boundary, the
//     inverses of the completed passes run in reverse order (each pass
//     of the decomposition is a bijection whose inverse is the matching
//     pass of the opposite direction, Theorems 1-2), restoring the
//     caller's buffer bit-exactly before the exception continues.

#include <cstddef>
#include <memory>
#include <new>
#include <optional>

#include "baselines/cycle_follow.hpp"
#include "core/contracts.hpp"
#include "core/equations.hpp"
#include "core/errors.hpp"
#include "core/failpoint.hpp"
#include "core/layout.hpp"
#include "core/plan.hpp"
#include "core/recovery.hpp"
#include "core/telemetry.hpp"
#include "cpu/engine_blocked.hpp"
#include "cpu/engine_reference.hpp"
#include "cpu/kernels/tile_inreg.hpp"
#include "cpu/skinny.hpp"
#include "util/threads.hpp"

namespace inplace::detail {

/// Emits one telemetry plan record for an execution about to run.
/// Compiles to an empty function unless the translation unit defines
/// INPLACE_TELEMETRY.  `from_cache` marks transpose_context cache hits so
/// warm and cold executions separate in the collector's dedup table.
template <typename T>
inline void note_plan_record([[maybe_unused]] const transpose_plan& plan,
                             [[maybe_unused]] bool from_cache = false) {
#if INPLACE_TELEMETRY_ENABLED
  if (telemetry::current_sink() != nullptr) {
    // Predict the pool this plan's request would get WITHOUT touching the
    // OpenMP runtime.  The old probe constructed a thread_count_guard,
    // whose omp_set_num_threads mutates global state: two concurrent
    // telemetry-enabled transposes raced, and one could observe (or run
    // its parallel region with) the other's probe value.
    const util::thread_probe probe = util::probe_thread_count(plan.threads);
    telemetry::plan_record rec;
    rec.engine = engine_name(plan.engine);
    rec.direction = direction_name(plan.dir);
    rec.m = plan.m;
    rec.n = plan.n;
    rec.block_width = plan.block_width;
    rec.elem_size = sizeof(T);
    rec.strength_reduction = plan.strength_reduction;
    rec.kernel_tier = plan.tile_block != 0
                          ? kernels::tier_name_inreg(plan.ktier)
                          : kernels::tier_name(plan.ktier);
    rec.threads_requested = probe.requested;
    rec.threads_active = probe.active;
    rec.threads_honored = probe.honored;
    rec.from_cache = from_cache;
    rec.rung = rung_name(plan.rung);
    INPLACE_TELEMETRY_PLAN(rec);
  }
#endif
}

/// Type-erased executor for in-register tile plans (plan.tile_block != 0).
/// The W template parameter must be a compile-time constant (lane_chunk's
/// width is part of its type), so acquire_scratch dispatches once on
/// plan.tile_block and the executors call through this interface.
template <typename T>
struct tile_runner_base {
  virtual ~tile_runner_base() = default;
  /// Runs the full chunked transposition, recording stage completion in
  /// `prog` for rollback.  Throws like the skinny engine does.
  virtual void run(T* data, const transpose_plan& plan,
                   stage_progress* prog) = 0;
  /// Inverts the completed stages in reverse order (best-effort, never
  /// throws) — the tile-plan arm of rollback_stages.
  virtual void rollback(T* data, const transpose_plan& plan,
                        const stage_progress& prog) noexcept = 0;
  /// Bytes retained by the chunk workspace and cycle memo.
  [[nodiscard]] virtual std::size_t cached_bytes() const = 0;
};

/// The chunked skinny execution behind a tile plan: the element matrix is
/// reinterpreted as an (m / W) x n grid of W-element lane_chunks and run
/// through the ordinary skinny engine on chunks, with the in-register
/// tile pass fused into the row pass as the engine's block hook — forward
/// (static_r2c<n, W>) *before* the C2R scatter consumes each W x n slab,
/// inverse (static_c2r) *after* the R2C gather assembles each row.  The
/// composition is exactly the element-level C2R/R2C permutation (see
/// cpu/kernels/tile_inreg.hpp for the factorization), and pairing each
/// direction with its inverse hook keeps the two directions exact
/// inverses, which the rollback path relies on.
template <typename T, unsigned W>
class tile_runner final : public tile_runner_base<T> {
 public:
  using chunk = kernels::lane_chunk<T, W>;

  explicit tile_runner(const transpose_plan& plan)
      : mm_(plan.m / W, plan.n) {
    reserve_skinny(ws_, plan.m / W, plan.n);
  }

  void run(T* data, const transpose_plan& plan,
           stage_progress* prog) override {
    INPLACE_REQUIRE(plan.tile_block == W && plan.m == mm_.m * W &&
                        plan.n == mm_.n,
                    "tile runner shape does not match the plan");
    const kernels::kernel_set& ks = kernels::set_for(plan.ktier);
    INPLACE_CHECK(kernels::tile_lanes<T>(ks) == W,
                  "plan's kernel tier lost its tile pass after planning");
    chunk* c = reinterpret_cast<chunk*>(data);
    const std::uint64_t nregs = plan.n;
    if (plan.dir == direction::c2r) {
      const auto hook = [&ks, nregs](chunk* rows, std::uint64_t k) {
        kernels::tile_pass<T>(ks, reinterpret_cast<T*>(rows), nregs, k,
                              /*forward=*/true);
      };
      c2r_skinny(c, mm_, ws_, &memo_, &ks, plan.streaming_stores, prog, hook);
    } else {
      const auto hook = [&ks, nregs](chunk* rows, std::uint64_t k) {
        kernels::tile_pass<T>(ks, reinterpret_cast<T*>(rows), nregs, k,
                              /*forward=*/false);
      };
      r2c_skinny(c, mm_, ws_, &memo_, &ks, plan.streaming_stores, prog, hook);
    }
  }

  void rollback(T* data, const transpose_plan& plan,
                const stage_progress& prog) noexcept override {
    if (!prog.dirty() || !prog.at_boundary()) {
      return;
    }
    chunk* c = reinterpret_cast<chunk*>(data);
    const bool fwd_c2r = plan.dir == direction::c2r;
    // Portable hooks: rollback must not depend on the tier that planned
    // the run (the ISA dispatch could differ after a partial failure).
    const auto fwd_hook = [nregs = plan.n](chunk* rows, std::uint64_t k) {
      kernels::tile_pass_portable(reinterpret_cast<T*>(rows), nregs, W, k,
                                  /*forward=*/true);
    };
    const auto inv_hook = [nregs = plan.n](chunk* rows, std::uint64_t k) {
      kernels::tile_pass_portable(reinterpret_cast<T*>(rows), nregs, W, k,
                                  /*forward=*/false);
    };
    try {
      for (std::size_t k = prog.completed; k-- > 0;) {
        switch (prog.done[k]) {
          case stage_id::skinny_fused_row:
            // The fused row pass computed (scatter ∘ tile) or
            // (tile⁻¹ ∘ gather); the mirror pass with the opposite hook
            // is its exact inverse (see skinny_fused_gather's contract).
            if (fwd_c2r) {
              skinny_fused_gather(c, mm_, ws_, nullptr, false, inv_hook);
            } else {
              skinny_fused_scatter(c, mm_, ws_, nullptr, false, fwd_hook);
            }
            break;
          case stage_id::skinny_rotation:
            if (fwd_c2r) {
              skinny_rotate_p_inv(c, mm_, ws_, nullptr, false);
            } else {
              skinny_rotate_p(c, mm_, ws_, nullptr, false);
            }
            break;
          case stage_id::skinny_permute:
            if (fwd_c2r) {
              skinny_permute_q_inv(c, mm_, ws_, nullptr, nullptr, false);
            } else {
              skinny_permute_q(c, mm_, ws_, nullptr, nullptr, false);
            }
            break;
          default:
            break;  // non-skinny stages cannot appear in a tile run
        }
      }
    } catch (...) {
      // Swallowed, same policy as rollback_stages: the original exception
      // is the one the caller must see.
    }
  }

  [[nodiscard]] std::size_t cached_bytes() const override {
    std::size_t total =
        (ws_.line.size() + ws_.head.size() + ws_.subrow.size()) *
        sizeof(chunk);
    total += ws_.visited.size();
    total += (ws_.cycle_starts.capacity() + ws_.offsets.size() +
              ws_.index.size() + memo_.starts.capacity()) *
             sizeof(std::uint64_t);
    return total;
  }

 private:
  transpose_math<fast_divmod> mm_;  ///< chunk-grid math: (m / W) x n
  workspace<chunk> ws_;
  cycle_memo memo_;
};

/// Builds the tile runner for a tile plan, dispatching plan.tile_block to
/// the compile-time chunk width.  Returns null when T cannot take the
/// tile path (wrong size or not trivially copyable — possible only for a
/// plan built with a mismatched elem_size) or the width is unknown; the
/// caller demotes to the scratch-line path.  Propagates std::bad_alloc
/// from the chunk workspace.
template <typename T>
std::unique_ptr<tile_runner_base<T>> make_tile_runner(
    const transpose_plan& plan) {
  if constexpr (std::is_trivially_copyable_v<T> &&
                (sizeof(T) == 4 || sizeof(T) == 8)) {
    // inplace-lint: allow-block(raw-alloc): acquisition-funnel extension —
    // acquire_scratch's tile rung allocates the chunk workspace through
    // here, once per plan, inside the same bad_alloc demotion ladder as
    // the element workspaces
    switch (plan.tile_block) {
      case 2:
        return std::make_unique<tile_runner<T, 2>>(plan);
      case 4:
        return std::make_unique<tile_runner<T, 4>>(plan);
      case 8:
        return std::make_unique<tile_runner<T, 8>>(plan);
      case 16:
        return std::make_unique<tile_runner<T, 16>>(plan);
      default:
        return nullptr;
    }
    // inplace-lint: end-block
  } else {
    return nullptr;
  }
}

/// Runs a tile plan with the same stage-boundary rollback contract as
/// run_with_math.
template <typename T>
void run_tile(T* data, const transpose_plan& plan,
              tile_runner_base<T>& runner) {
  stage_progress prog;
  try {
    runner.run(data, plan, &prog);
  } catch (...) {
    runner.rollback(data, plan, prog);
    throw;
  }
}

/// The scratch an execution owns: at most one of the three members is
/// engaged (pool for the blocked engine, ws for reference/skinny, tile
/// for in-register tile plans); all stay empty on the cycle_follow rung
/// and for degenerate shapes.
template <typename T>
struct scratch_bundle {
  std::optional<workspace<T>> ws;
  std::optional<workspace_pool<T>> pool;
  std::unique_ptr<tile_runner_base<T>> tile;
};

/// Acquires engine scratch for `plan`, walking the OOM degradation
/// ladder on std::bad_alloc:
///
///   full         — Theorem 6 scratch, one workspace per thread
///   reduced      — serial (threads = 1), minimum sub-row width, a
///                  single workspace
///   cycle_follow — no scratch at all; the executor dispatches to the
///                  O(1)-space cycle-following permutation instead of
///                  the planned engine
///
/// Demotion rewrites the plan to match (rung, threads, block_width), so
/// everything downstream — engines, telemetry, cached_bytes — sees a
/// self-consistent plan.  Exceptions other than bad_alloc (including
/// injected_fault from the failpoints below) propagate untouched, with
/// the caller's buffer untouched too: nothing has run yet.
template <typename T>
scratch_bundle<T> acquire_scratch(transpose_plan& plan) {
  scratch_bundle<T> bundle;
  if (plan.m <= 1 || plan.n <= 1) {
    return bundle;
  }
  if (plan.tile_block != 0) {
    // Tile rung: the chunk workspace replaces (not supplements) the
    // element workspace.  If it cannot be allocated, clear tile_block and
    // fall through to the ordinary ladder — the scratch-line skinny path
    // is the documented demotion target.
    try {
      INPLACE_FAILPOINT("exec.alloc.full");
      bundle.tile = make_tile_runner<T>(plan);
    } catch (const std::bad_alloc&) {
      bundle.tile.reset();
    }
    if (bundle.tile != nullptr) {
      plan.rung = scratch_rung::full;
      return bundle;
    }
    plan.tile_block = 0;
  }
  try {
    INPLACE_FAILPOINT("exec.alloc.full");
    if (plan.engine == engine_kind::blocked) {
      bundle.pool.emplace(plan.m, plan.n, plan.block_width, plan.threads);
    } else {
      bundle.ws.emplace();
      if (plan.engine == engine_kind::skinny) {
        reserve_skinny(*bundle.ws, plan.m, plan.n);
      } else {
        bundle.ws->reserve(plan.m, plan.n, plan.block_width);
      }
    }
    plan.rung = scratch_rung::full;
    return bundle;
  } catch (const std::bad_alloc&) {
    bundle.ws.reset();
    bundle.pool.reset();
  }
  try {
    INPLACE_FAILPOINT("exec.alloc.reduced");
    plan.threads = 1;
    if (plan.engine == engine_kind::blocked) {
      plan.block_width = 4;  // the planner's floor — minimum sub-row
      bundle.pool.emplace(plan.m, plan.n, plan.block_width,
                          serial_workspace_tag{});
    } else {
      bundle.ws.emplace();
      if (plan.engine == engine_kind::skinny) {
        reserve_skinny(*bundle.ws, plan.m, plan.n);
      } else {
        plan.block_width = 4;
        bundle.ws->reserve(plan.m, plan.n, plan.block_width);
      }
    }
    plan.rung = scratch_rung::reduced;
    return bundle;
  } catch (const std::bad_alloc&) {
    bundle.ws.reset();
    bundle.pool.reset();
  }
  // Last rung: no allocation at all.  The failpoint lets tests forbid
  // even this rung, proving the caller's buffer survives a full ladder
  // failure untouched.
  INPLACE_FAILPOINT("exec.rung.cycle_follow");
  plan.threads = 1;
  plan.rung = scratch_rung::cycle_follow;
  return bundle;
}

/// Executes a cycle_follow-rung plan: the strictly in-place directed
/// permutation, serial, no scratch (Dudek et al.'s problem class; the
/// paper's introduction's cycle-following baseline).
template <typename T>
void run_cycle_follow(T* data, const transpose_plan& plan) {
  baselines::cycle_following_permute_limited(
      data, plan.m, plan.n, plan.dir == direction::c2r);
}

/// Restores the caller's buffer after a stage-boundary failure by
/// replaying the inverses of the completed passes in reverse order.
/// Best-effort by design: if the buffer is mid-pass (prog.in_flight) or
/// an inverse pass itself fails, the buffer is left as-is — the
/// documented "unrecoverable" row of the failure taxonomy (DESIGN.md
/// §11).  Never throws.
template <typename T, typename Math>
void rollback_stages(T* data, const Math& mm, const transpose_plan& plan,
                     workspace<T>* ws, workspace_pool<T>* pool,
                     const stage_progress& prog) noexcept {
  if (!prog.dirty() || !prog.at_boundary()) {
    return;
  }
  const bool fwd_c2r = plan.dir == direction::c2r;
  try {
    // The inverse passes run with the plan's threading (the pool is
    // sized for it) and without kernels/streaming: rollback is a cold
    // path where simplicity beats throughput.
    util::thread_count_guard guard(plan.threads);
    if (pool != nullptr) {
      pool->ensure(util::hardware_threads());
    }
    for (std::size_t k = prog.completed; k-- > 0;) {
      switch (prog.done[k]) {
        case stage_id::prerotate:
          if (pool != nullptr) {
            if (fwd_c2r) {
              rotate_all_parallel(
                  data, mm.m, mm.n, plan.block_width,
                  [&](std::uint64_t j) { return mm.prerotate_inv_offset(j); },
                  *pool);
            } else {
              rotate_all_parallel(
                  data, mm.m, mm.n, plan.block_width,
                  [&](std::uint64_t j) { return mm.prerotate_offset(j); },
                  *pool);
            }
          } else if (fwd_c2r) {
            reference_prerotate_inv(data, mm, *ws);
          } else {
            reference_prerotate(data, mm, *ws);
          }
          break;
        case stage_id::row_shuffle:
          if (pool != nullptr) {
            if (fwd_c2r) {
              r2c_row_pass(data, mm, *pool);
            } else {
              c2r_row_pass(data, mm, *pool);
            }
          } else if (fwd_c2r) {
            reference_row_gather(data, mm, *ws);
          } else {
            reference_row_scatter(data, mm, *ws);
          }
          break;
        case stage_id::col_shuffle:
          if (pool != nullptr) {
            if (fwd_c2r) {
              r2c_col_shuffle(data, mm, plan.block_width, *pool);
            } else {
              c2r_col_shuffle(data, mm, plan.block_width, *pool);
            }
          } else if (fwd_c2r) {
            reference_col_shuffle_inv(data, mm, *ws);
          } else {
            reference_col_shuffle(data, mm, *ws);
          }
          break;
        case stage_id::skinny_fused_row:
          if (fwd_c2r) {
            skinny_fused_gather(data, mm, *ws, nullptr, false);
          } else {
            skinny_fused_scatter(data, mm, *ws, nullptr, false);
          }
          break;
        case stage_id::skinny_rotation:
          if (fwd_c2r) {
            skinny_rotate_p_inv(data, mm, *ws, nullptr, false);
          } else {
            skinny_rotate_p(data, mm, *ws, nullptr, false);
          }
          break;
        case stage_id::skinny_permute:
          // No memo: the inverse permutation's cycles differ from the
          // forward memo the engine may hold.
          if (fwd_c2r) {
            skinny_permute_q_inv(data, mm, *ws, nullptr, nullptr, false);
          } else {
            skinny_permute_q(data, mm, *ws, nullptr, nullptr, false);
          }
          break;
      }
    }
  } catch (...) {
    // Swallowed: the original exception (in flight in the caller) is the
    // one the user must see; a failed rollback downgrades the guarantee
    // from "restored" to "left at a stage boundary", never hides errors.
  }
}

/// Runs the planned engine on caller-provided scratch, with
/// stage-boundary rollback: if the engine throws between passes, the
/// completed passes are inverted before the exception continues, so the
/// caller's buffer is restored to its input state.
template <typename T, typename Math>
void run_with_math(T* data, const Math& mm, const transpose_plan& plan,
                   scratch_bundle<T>& scratch) {
  INPLACE_REQUIRE(mm.m == plan.m && mm.n == plan.n,
                  "index math shape does not match the plan");
  stage_progress prog;
  try {
    switch (plan.engine) {
      case engine_kind::reference:
        if (plan.dir == direction::c2r) {
          c2r_reference(data, mm, *scratch.ws, nullptr, &prog);
        } else {
          r2c_reference(data, mm, *scratch.ws, nullptr, &prog);
        }
        break;
      case engine_kind::skinny: {
        const kernels::kernel_set& ks = kernels::set_for(plan.ktier);
        if (plan.dir == direction::c2r) {
          c2r_skinny(data, mm, *scratch.ws, nullptr, &ks,
                     plan.streaming_stores, &prog);
        } else {
          r2c_skinny(data, mm, *scratch.ws, nullptr, &ks,
                     plan.streaming_stores, &prog);
        }
        break;
      }
      case engine_kind::blocked:
        if (plan.dir == direction::c2r) {
          c2r_blocked(data, mm, plan, *scratch.pool, nullptr, &prog);
        } else {
          r2c_blocked(data, mm, plan, *scratch.pool, nullptr, &prog);
        }
        break;
      case engine_kind::automatic:
        // make_plan/make_directed_plan guarantee a concrete engine (plan
        // postcondition); an unresolved plan here is forged or corrupted.
        // Fail loudly instead of silently picking an engine.
        INPLACE_CHECK(false,
                      "unresolved engine_kind::automatic reached the executor");
        throw error(
            "inplace: plan with unresolved engine_kind::automatic reached "
            "the executor (plans must come from make_plan/make_directed_"
            "plan/make_plan_for_shape)");
    }
  } catch (...) {
    rollback_stages(data, mm, plan,
                    scratch.ws.has_value() ? &*scratch.ws : nullptr,
                    scratch.pool.has_value() ? &*scratch.pool : nullptr,
                    prog);
    throw;
  }
}

/// One-shot (uncached) execution: builds fresh workspaces (degrading
/// under memory pressure), runs with rollback protection, frees.
template <typename T>
void execute_plan(T* data, const transpose_plan& plan_in) {
  // Degenerate shapes: a 1 x n or m x 1 matrix transposes to the identical
  // buffer, and the permutation equations degenerate with it.  Still a
  // real execution, though — record the plan and the total span so bench
  // JSON does not silently undercount 1 x n / m x 1 calls.
  if (plan_in.m <= 1 || plan_in.n <= 1) {
    note_plan_record<T>(plan_in);
    INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                           2 * plan_in.m * plan_in.n * sizeof(T), 0);
    return;
  }
  transpose_plan plan = plan_in;
  scratch_bundle<T> scratch = acquire_scratch<T>(plan);
  note_plan_record<T>(plan);
  INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                         2 * plan.m * plan.n * sizeof(T),
                         plan.rung == scratch_rung::cycle_follow
                             ? 0
                             : plan.scratch_elements() * sizeof(T));
  if (plan.rung == scratch_rung::cycle_follow) {
    run_cycle_follow(data, plan);
    return;
  }
  if (scratch.tile != nullptr) {
    run_tile(data, plan, *scratch.tile);
    return;
  }
  if (plan.strength_reduction) {
    const transpose_math<fast_divmod> mm(plan.m, plan.n);
    run_with_math(data, mm, plan, scratch);
  } else {
    const transpose_math<plain_divmod> mm(plan.m, plan.n);
    run_with_math(data, mm, plan, scratch);
  }
}

}  // namespace inplace::detail
