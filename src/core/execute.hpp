#pragma once
// Plan execution internals shared by the public entry points: the free
// functions (core/transpose.hpp, routed through core/context.hpp), the
// plan-reusing transposer (core/executor.hpp) and the context's cached
// entries.  Split out of transpose.hpp so context.hpp can reuse the
// machinery without a circular include.

#include <cstddef>

#include "core/contracts.hpp"
#include "core/equations.hpp"
#include "core/errors.hpp"
#include "core/layout.hpp"
#include "core/plan.hpp"
#include "core/telemetry.hpp"
#include "cpu/engine_blocked.hpp"
#include "cpu/engine_reference.hpp"
#include "cpu/skinny.hpp"
#include "util/threads.hpp"

namespace inplace::detail {

/// Emits one telemetry plan record for an execution about to run.
/// Compiles to an empty function unless the translation unit defines
/// INPLACE_TELEMETRY.  `from_cache` marks transpose_context cache hits so
/// warm and cold executions separate in the collector's dedup table.
template <typename T>
inline void note_plan_record([[maybe_unused]] const transpose_plan& plan,
                             [[maybe_unused]] bool from_cache = false) {
#if INPLACE_TELEMETRY_ENABLED
  if (telemetry::current_sink() != nullptr) {
    // Predict the pool this plan's request would get WITHOUT touching the
    // OpenMP runtime.  The old probe constructed a thread_count_guard,
    // whose omp_set_num_threads mutates global state: two concurrent
    // telemetry-enabled transposes raced, and one could observe (or run
    // its parallel region with) the other's probe value.
    const util::thread_probe probe = util::probe_thread_count(plan.threads);
    telemetry::plan_record rec;
    rec.engine = engine_name(plan.engine);
    rec.direction = direction_name(plan.dir);
    rec.m = plan.m;
    rec.n = plan.n;
    rec.block_width = plan.block_width;
    rec.elem_size = sizeof(T);
    rec.strength_reduction = plan.strength_reduction;
    rec.kernel_tier = kernels::tier_name(plan.ktier);
    rec.threads_requested = probe.requested;
    rec.threads_active = probe.active;
    rec.threads_honored = probe.honored;
    rec.from_cache = from_cache;
    INPLACE_TELEMETRY_PLAN(rec);
  }
#endif
}

template <typename T, typename Math>
void run_with_math(T* data, const Math& mm, const transpose_plan& plan) {
  INPLACE_REQUIRE(mm.m == plan.m && mm.n == plan.n,
                  "index math shape does not match the plan");
  switch (plan.engine) {
    case engine_kind::reference: {
      workspace<T> ws;
      ws.reserve(mm.m, mm.n, plan.block_width);
      if (plan.dir == direction::c2r) {
        c2r_reference(data, mm, ws);
      } else {
        r2c_reference(data, mm, ws);
      }
      break;
    }
    case engine_kind::skinny: {
      workspace<T> ws;
      reserve_skinny(ws, mm.m, mm.n);
      const kernels::kernel_set& ks = kernels::set_for(plan.ktier);
      if (plan.dir == direction::c2r) {
        c2r_skinny(data, mm, ws, nullptr, &ks, plan.streaming_stores);
      } else {
        r2c_skinny(data, mm, ws, nullptr, &ks, plan.streaming_stores);
      }
      break;
    }
    case engine_kind::blocked:
      if (plan.dir == direction::c2r) {
        c2r_blocked(data, mm, plan);
      } else {
        r2c_blocked(data, mm, plan);
      }
      break;
    case engine_kind::automatic:
      // make_plan/make_directed_plan guarantee a concrete engine (plan
      // postcondition); an unresolved plan here is forged or corrupted.
      // Fail loudly instead of silently picking an engine.
      INPLACE_CHECK(false,
                    "unresolved engine_kind::automatic reached the executor");
      throw error(
          "inplace: plan with unresolved engine_kind::automatic reached "
          "the executor (plans must come from make_plan/make_directed_"
          "plan/make_plan_for_shape)");
  }
}

/// One-shot (uncached) execution: builds fresh workspaces, runs, frees.
template <typename T>
void execute_plan(T* data, const transpose_plan& plan) {
  // Degenerate shapes: a 1 x n or m x 1 matrix transposes to the identical
  // buffer, and the permutation equations degenerate with it.  Still a
  // real execution, though — record the plan and the total span so bench
  // JSON does not silently undercount 1 x n / m x 1 calls.
  if (plan.m <= 1 || plan.n <= 1) {
    note_plan_record<T>(plan);
    INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                           2 * plan.m * plan.n * sizeof(T), 0);
    return;
  }
  note_plan_record<T>(plan);
  INPLACE_TELEMETRY_SPAN(span_total, telemetry::stage::total,
                         2 * plan.m * plan.n * sizeof(T),
                         plan.scratch_elements() * sizeof(T));
  if (plan.strength_reduction) {
    const transpose_math<fast_divmod> mm(plan.m, plan.n);
    run_with_math(data, mm, plan);
  } else {
    const transpose_math<plain_divmod> mm(plan.m, plan.n);
    run_with_math(data, mm, plan);
  }
}

}  // namespace inplace::detail
