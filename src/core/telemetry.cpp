#include "core/telemetry.hpp"

#include <algorithm>
#include <cstring>

namespace inplace::telemetry {

namespace {

std::atomic<sink*> g_sink{nullptr};

/// Field-wise equality with string *contents* for the name fields: the
/// const char* members may point into different translation units'
/// literals for the same engine.
bool same_plan(const plan_record& a, const plan_record& b) {
  return std::strcmp(a.engine, b.engine) == 0 &&
         std::strcmp(a.direction, b.direction) == 0 &&
         std::strcmp(a.kernel_tier, b.kernel_tier) == 0 && a.m == b.m &&
         a.n == b.n && a.block_width == b.block_width &&
         a.elem_size == b.elem_size &&
         a.strength_reduction == b.strength_reduction &&
         a.threads_requested == b.threads_requested &&
         a.threads_active == b.threads_active &&
         a.threads_honored == b.threads_honored &&
         a.from_cache == b.from_cache && std::strcmp(a.rung, b.rung) == 0 &&
         std::strcmp(a.calibration, b.calibration) == 0;
}

}  // namespace

sink* exchange_sink(sink* s) {
  return g_sink.exchange(s, std::memory_order_acq_rel);
}

sink* current_sink() { return g_sink.load(std::memory_order_acquire); }

int& span_depth() {
  thread_local int depth = 0;
  return depth;
}

void collector::on_span(const span_record& rec) {
  const util::mutex_guard lock(mu_);
  ++spans_seen_;
  auto& total = totals_[static_cast<std::size_t>(rec.s)];
  ++total.calls;
  total.seconds += rec.seconds;
  total.bytes_moved += rec.bytes_moved;
  total.scratch_bytes_max =
      std::max(total.scratch_bytes_max, rec.scratch_bytes);
  if (spans_.size() < raw_cap_) {
    spans_.push_back(rec);
  }
}

void collector::on_plan(const plan_record& rec) {
  const util::mutex_guard lock(mu_);
  ++plans_seen_;
  for (auto& entry : plans_) {
    if (same_plan(entry.rec, rec)) {
      ++entry.count;
      return;
    }
  }
  if (plans_.size() < plan_table_cap) {
    plans_.push_back(plan_count{rec, 1});
  } else {
    plans_truncated_ = true;
  }
}

std::vector<span_record> collector::raw_spans() const {
  const util::mutex_guard lock(mu_);
  return spans_;
}

std::array<stage_total, stage_count> collector::totals() const {
  const util::mutex_guard lock(mu_);
  return totals_;
}

std::vector<collector::plan_count> collector::plan_counts() const {
  const util::mutex_guard lock(mu_);
  return plans_;
}

std::uint64_t collector::spans_seen() const {
  const util::mutex_guard lock(mu_);
  return spans_seen_;
}

std::uint64_t collector::plans_seen() const {
  const util::mutex_guard lock(mu_);
  return plans_seen_;
}

bool collector::plans_truncated() const {
  const util::mutex_guard lock(mu_);
  return plans_truncated_;
}

void collector::clear() {
  const util::mutex_guard lock(mu_);
  spans_.clear();
  totals_ = {};
  plans_.clear();
  spans_seen_ = 0;
  plans_seen_ = 0;
  plans_truncated_ = false;
}

}  // namespace inplace::telemetry
