#pragma once
// Stage-boundary progress tracking for rollback-on-failure.
//
// The decomposition runs as a short sequence of bijective passes
// (pre-rotation Eq. 23, row shuffle Eq. 24/31, column shuffle
// Eq. 26/32-34; the skinny engine's three fused passes), and each pass
// has an exact inverse — the corresponding pass of the opposite
// direction (Theorems 1-2).  That structure gives failures a recovery
// path: if execution throws *between* passes, re-running the inverses of
// the completed passes, in reverse order, restores the caller's buffer
// bit-exactly.  The engines record each completed pass in a
// stage_progress; the executor's catch block replays the inverses before
// rethrowing (detail::rollback_stages in core/execute.hpp).
//
// A failure *inside* a pass (in_flight == true) is not recoverable this
// way — the pass's permutation is half-applied.  In practice the
// interior of every pass is allocation-free straight-line loop code (all
// allocations and all failpoints sit at stage boundaries), and an
// exception inside an OpenMP parallel region would terminate the process
// anyway, so the in-flight window carries no throw sites of its own.

#include <array>
#include <cstddef>
#include <cstdint>

namespace inplace::detail {

/// The invertible passes an engine can complete (union over engines;
/// each engine uses its own subset).
enum class stage_id : std::uint8_t {
  prerotate,         ///< Eq. 23 (or its inverse Eq. 36)
  row_shuffle,       ///< Eq. 24 scatter / Eq. 31 gather
  col_shuffle,       ///< Eq. 26 / Eqs. 32-34
  skinny_fused_row,  ///< skinny pass: pre-rotation fused with row shuffle
  skinny_rotation,   ///< skinny pass: rotation component p
  skinny_permute,    ///< skinny pass: static row permutation q
};

/// Records which passes have fully completed on the caller's buffer.
/// Fixed-capacity (no engine runs more than three passes) so recording
/// progress can never itself allocate or throw.
struct stage_progress {
  static constexpr std::size_t max_stages = 4;
  std::array<stage_id, max_stages> done{};
  std::size_t completed = 0;
  bool in_flight = false;
  stage_id current = stage_id::prerotate;

  void begin(stage_id s) noexcept {
    current = s;
    in_flight = true;
  }
  void end() noexcept {
    if (completed < max_stages) {
      done[completed++] = current;
    }
    in_flight = false;
  }
  /// True when the buffer no longer holds (exactly) the caller's input.
  [[nodiscard]] bool dirty() const noexcept {
    return completed > 0 || in_flight;
  }
  /// True when the buffer sits at a pass boundary — the rollback-able
  /// states.
  [[nodiscard]] bool at_boundary() const noexcept { return !in_flight; }
};

/// Null-tolerant helpers: engines take an optional stage_progress* so
/// call sites that do not need rollback (benches, rollback itself) pass
/// nothing and pay nothing.
inline void begin_stage(stage_progress* p, stage_id s) noexcept {
  if (p != nullptr) {
    p->begin(s);
  }
}
inline void end_stage(stage_progress* p) noexcept {
  if (p != nullptr) {
    p->end();
  }
}

}  // namespace inplace::detail
