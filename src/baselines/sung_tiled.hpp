#pragma once
// Sung-like tiled in-place transposition (the paper's GPU comparison,
// Sung [6]).  Tile extents must evenly divide the array extents; they are
// chosen with the heuristic the paper used to benchmark Sung's code:
// sort each dimension's prime factors and multiply from the smallest
// until the tile extent reaches the threshold t = 72.  Dimensions with
// few small factors produce degenerate tiles, which is exactly the
// behaviour behind Sung's poor-dimension tail in Figure 6.

#include <cstdint>

#include "baselines/tiled_core.hpp"

namespace inplace::baselines {

/// Result of the factor-product tile heuristic.
struct tile_choice {
  std::uint64_t tile_rows = 1;
  std::uint64_t tile_cols = 1;
  /// False when either tile extent degenerated (1, or more than 8x the
  /// threshold) — the shapes on which tiled algorithms collapse.
  bool well_tiled = false;
};

/// The paper's Section 5.2 heuristic with threshold t (default 72).
tile_choice choose_tiles(std::uint64_t m, std::uint64_t n,
                         std::uint64_t threshold = 72);

/// In-place transpose of a row-major m x n array using Sung-style tiling.
/// Returns the tile choice actually used (degenerate tiles still produce a
/// correct transpose, just slowly).
template <typename T>
tile_choice sung_tiled_transpose(T* a, std::uint64_t m, std::uint64_t n,
                                 std::uint64_t threshold = 72) {
  const tile_choice tiles = choose_tiles(m, n, threshold);
  detail::tiled_transpose(a, m, n, tiles.tile_rows, tiles.tile_cols);
  return tiles;
}

}  // namespace inplace::baselines
