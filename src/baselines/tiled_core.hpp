#pragma once
// Shared machinery for the tiled in-place transposition baselines
// (Sung-like and Gustavson-like).  A row-major m x n array with tile
// extents Tr | m and Tc | n transposes in three stages:
//
//   1. per band of Tr rows: permute Tc-wide chunks so every Tr x Tc tile
//      becomes contiguous (a chunk-granularity Tr x Q transpose),
//   2. transpose the P x Q grid of now-contiguous tiles by cycle
//      following on fixed tile slots, transposing each tile as it moves,
//   3. per band of Tc rows of the transposed array: the inverse chunk
//      permutation, restoring plain row-major layout.
//
// Stages 1 and 3 parallelize over bands with OpenMP.  Auxiliary space is
// one tile plus visited bitmaps (up to one bit per tile/chunk — the O(mn)
// worst-case bit requirement the paper notes for Sung's algorithm).

#include <cstdint>
#include <vector>

#include "core/errors.hpp"

#if defined(INPLACE_HAVE_OPENMP)
#include <omp.h>
#endif

namespace inplace::baselines::detail {

/// In-place transpose of a rows x cols matrix of contiguous fixed-size
/// chunks: chunk (r, q) moves to slot q*rows + r.  Gather cycle following
/// over rows*cols chunk slots.
template <typename T>
void transpose_chunk_grid(T* base, std::uint64_t rows, std::uint64_t cols,
                          std::uint64_t chunk, std::vector<std::uint8_t>& bits,
                          std::vector<T>& tmp) {
  const std::uint64_t slots = rows * cols;
  std::fill(bits.begin(), bits.begin() + slots, std::uint8_t{0});
  for (std::uint64_t y = 0; y < slots; ++y) {
    if (bits[y]) {
      continue;
    }
    // Gather permutation: slot w receives the chunk from slot
    // src(w) = (w mod rows) * cols + (w / rows).
    const std::uint64_t first_src = (y % rows) * cols + y / rows;
    bits[y] = 1;
    if (first_src == y) {
      continue;
    }
    std::copy(base + y * chunk, base + (y + 1) * chunk, tmp.begin());
    std::uint64_t w = y;
    for (;;) {
      const std::uint64_t s = (w % rows) * cols + w / rows;
      bits[w] = 1;
      if (s == y) {
        std::copy(tmp.begin(), tmp.begin() + chunk, base + w * chunk);
        break;
      }
      std::copy(base + s * chunk, base + (s + 1) * chunk, base + w * chunk);
      w = s;
    }
  }
}

/// Stage 2: transpose the P x Q grid of contiguous tr x tc tiles,
/// transposing each tile's contents (tr x tc row-major -> tc x tr) as it
/// moves.
template <typename T>
void transpose_tile_grid(T* a, std::uint64_t grid_rows,
                         std::uint64_t grid_cols, std::uint64_t tr,
                         std::uint64_t tc, std::vector<std::uint8_t>& bits,
                         std::vector<T>& tile_tmp,
                         std::vector<T>& tile_tmp2) {
  const std::uint64_t slots = grid_rows * grid_cols;
  const std::uint64_t tile = tr * tc;
  std::fill(bits.begin(), bits.begin() + slots, std::uint8_t{0});

  auto transpose_into = [&](const T* src, T* dst) {
    for (std::uint64_t r = 0; r < tr; ++r) {
      for (std::uint64_t c = 0; c < tc; ++c) {
        dst[c * tr + r] = src[r * tc + c];
      }
    }
  };

  for (std::uint64_t y = 0; y < slots; ++y) {
    if (bits[y]) {
      continue;
    }
    bits[y] = 1;
    // Destination grid is grid_cols x grid_rows; dst slot v corresponds to
    // src slot src(v) = (v mod grid_rows) * grid_cols + v / grid_rows.
    const std::uint64_t first_src =
        (y % grid_rows) * grid_cols + y / grid_rows;
    if (first_src == y) {
      // Fixed slot, but the tile itself still needs transposing.
      transpose_into(a + y * tile, tile_tmp.data());
      std::copy(tile_tmp.begin(), tile_tmp.begin() + tile, a + y * tile);
      continue;
    }
    std::copy(a + y * tile, a + (y + 1) * tile, tile_tmp.begin());
    std::uint64_t v = y;
    for (;;) {
      const std::uint64_t s = (v % grid_rows) * grid_cols + v / grid_rows;
      bits[v] = 1;
      if (s == y) {
        transpose_into(tile_tmp.data(), tile_tmp2.data());
        std::copy(tile_tmp2.begin(), tile_tmp2.begin() + tile, a + v * tile);
        break;
      }
      transpose_into(a + s * tile, tile_tmp2.data());
      std::copy(tile_tmp2.begin(), tile_tmp2.begin() + tile, a + v * tile);
      v = s;
    }
  }
}

/// Full three-stage tiled transpose.  Preconditions: tr | m, tc | n.
/// Afterwards the buffer holds the row-major n x m transpose.
template <typename T>
void tiled_transpose(T* a, std::uint64_t m, std::uint64_t n,
                     std::uint64_t tr, std::uint64_t tc) {
  inplace::detail::checked_extent(a, m, n);
  if (m <= 1 || n <= 1) {
    return;
  }
  const std::uint64_t grid_rows = m / tr;  // P
  const std::uint64_t grid_cols = n / tc;  // Q

  // Stage 1: tile-contiguity within each Tr-row band (parallel).
  {
    const auto bands = static_cast<std::int64_t>(grid_rows);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
    for (std::int64_t b = 0; b < bands; ++b) {
      std::vector<std::uint8_t> bits(tr * grid_cols);
      std::vector<T> chunk_tmp(tc);
      transpose_chunk_grid(a + static_cast<std::uint64_t>(b) * tr * n, tr,
                           grid_cols, tc, bits, chunk_tmp);
    }
  }

  // Stage 2: tile-grid transpose (serial cycle following).
  {
    std::vector<std::uint8_t> bits(grid_rows * grid_cols);
    std::vector<T> t1(tr * tc);
    std::vector<T> t2(tr * tc);
    transpose_tile_grid(a, grid_rows, grid_cols, tr, tc, bits, t1, t2);
  }

  // Stage 3: back to row-major within each Tc-row band of the n x m
  // result (parallel).  The band currently holds grid_rows tiles of
  // tc x tr; the inverse chunk permutation is a chunk-grid transpose with
  // swapped roles.
  {
    const auto bands = static_cast<std::int64_t>(grid_cols);
#if defined(INPLACE_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
    for (std::int64_t b = 0; b < bands; ++b) {
      std::vector<std::uint8_t> bits(tc * grid_rows);
      std::vector<T> chunk_tmp(tr);
      transpose_chunk_grid(a + static_cast<std::uint64_t>(b) * tc * m,
                           grid_rows, tc, tr, bits, chunk_tmp);
    }
  }
}

}  // namespace inplace::baselines::detail
