#include "baselines/cycle_follow.hpp"

#include <algorithm>

namespace inplace::baselines {

std::vector<std::uint64_t> transpose_cycle_lengths(std::uint64_t m,
                                                   std::uint64_t n) {
  std::vector<std::uint64_t> lengths;
  const std::uint64_t total = m * n;
  if (total < 2) {
    return lengths;
  }
  const std::uint64_t wrap = total - 1;
  std::vector<std::uint8_t> visited(total, 0);
  for (std::uint64_t y = 1; y < wrap; ++y) {
    if (visited[y]) {
      continue;
    }
    std::uint64_t len = 0;
    std::uint64_t l = y;
    do {
      visited[l] = 1;
      ++len;
      l = l * n % wrap;
    } while (l != y);
    lengths.push_back(len);
  }
  std::sort(lengths.begin(), lengths.end());
  return lengths;
}

}  // namespace inplace::baselines
