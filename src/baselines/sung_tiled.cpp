#include "baselines/sung_tiled.hpp"

#include <algorithm>
#include <vector>

namespace inplace::baselines {

namespace {

std::vector<std::uint64_t> sorted_prime_factors(std::uint64_t x) {
  std::vector<std::uint64_t> factors;
  for (std::uint64_t p = 2; p * p <= x; p += (p == 2 ? 1 : 2)) {
    while (x % p == 0) {
      factors.push_back(p);
      x /= p;
    }
  }
  if (x > 1) {
    factors.push_back(x);
  }
  std::sort(factors.begin(), factors.end());
  return factors;
}

std::uint64_t factor_product_tile(std::uint64_t dim,
                                  std::uint64_t threshold) {
  // "Sort the factors of the array dimension, then starting with the
  // smallest factors, multiply them until the tile dimension equals or
  // exceeds some threshold t" (Section 5.2).
  std::uint64_t tile = 1;
  for (const std::uint64_t p : sorted_prime_factors(dim)) {
    if (tile >= threshold) {
      break;
    }
    tile *= p;
  }
  return tile;
}

}  // namespace

tile_choice choose_tiles(std::uint64_t m, std::uint64_t n,
                         std::uint64_t threshold) {
  tile_choice out;
  if (m == 0 || n == 0) {
    return out;
  }
  out.tile_rows = factor_product_tile(m, threshold);
  out.tile_cols = factor_product_tile(n, threshold);
  const auto degenerate = [&](std::uint64_t tile, std::uint64_t dim) {
    return tile <= 1 || (tile > 8 * threshold && tile == dim) ||
           tile > 64 * threshold;
  };
  out.well_tiled = !degenerate(out.tile_rows, m) &&
                   !degenerate(out.tile_cols, n);
  return out;
}

}  // namespace inplace::baselines
