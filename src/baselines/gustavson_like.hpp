#pragma once
// Gustavson-like baseline (Gustavson, Karlsson & Kagstrom [1]): in-place
// storage-format conversion via *square* blocks.  The original packs the
// array into a square-blocked format, transposes blocks and block grid,
// and unpacks; arrays that do not tile conveniently pay a packing/
// unpacking penalty.  Our stand-in uses the same three-stage structure
// (tiled_core.hpp) with the largest square block size that divides
// gcd(m, n), capped at 64: generous gcds give Gustavson-class blocked
// performance, while coprime-ish extents degrade towards element-wise
// cycle following — the same penalty class as the original's packing.

#include <cstdint>
#include <numeric>

#include "baselines/tiled_core.hpp"

namespace inplace::baselines {

/// Largest divisor of gcd(m, n) that is <= cap (square block edge; kept
/// for the strictly square-blocked variant).
std::uint64_t square_block_edge(std::uint64_t m, std::uint64_t n,
                                std::uint64_t cap = 64);

/// Largest divisor of x that is <= cap.
std::uint64_t largest_divisor_le(std::uint64_t x, std::uint64_t cap);

/// In-place transpose of a row-major m x n array with Gustavson-style
/// blocks: the largest block extents <= cap that divide each dimension
/// (the original handles ragged edges by packing; dimensions with no
/// usable divisor degenerate here, standing in for that packing cost).
/// Returns the block edge pair used as tile_rows*65536 + tile_cols.
template <typename T>
std::uint64_t gustavson_like_transpose(T* a, std::uint64_t m,
                                       std::uint64_t n,
                                       std::uint64_t cap = 96) {
  const std::uint64_t tr = largest_divisor_le(m, cap);
  const std::uint64_t tc = largest_divisor_le(n, cap);
  detail::tiled_transpose(a, m, n, tr, tc);
  return tr * 65536 + tc;
}

}  // namespace inplace::baselines
