#include "baselines/gustavson_like.hpp"

namespace inplace::baselines {

std::uint64_t largest_divisor_le(std::uint64_t x, std::uint64_t cap) {
  std::uint64_t best = 1;
  for (std::uint64_t d = 2; d <= cap && d <= x; ++d) {
    if (x % d == 0) {
      best = d;
    }
  }
  return best;
}

std::uint64_t square_block_edge(std::uint64_t m, std::uint64_t n,
                                std::uint64_t cap) {
  const std::uint64_t g = std::gcd(m, n);
  std::uint64_t best = 1;
  for (std::uint64_t d = 1; d <= cap; ++d) {
    if (g % d == 0) {
      best = d;
    }
  }
  return best;
}

}  // namespace inplace::baselines
