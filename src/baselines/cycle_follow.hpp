#pragma once
// The traditional cycle-following in-place transposition the paper
// compares against (its "MKL" and Knuth [3] reference class).
//
// A row-major m x n array transposes by the linear permutation
//   dest(l) = (l * m) mod (mn - 1)        for 0 < l < mn - 1,
// with 0 and mn-1 fixed.  Two variants are provided:
//   * bitvector: O(mn) bits of auxiliary space, O(mn) work — the practical
//     serial formulation;
//   * space-limited: O(1) auxiliary space, which must recompute cycles by
//     walking each candidate leader, giving the O(mn log mn)-and-worse
//     work the paper's introduction cites.
// Cycle statistics are exposed so the "poorly distributed cycle lengths"
// parallelization argument can be demonstrated empirically.

#include <cstdint>
#include <vector>

#include "core/errors.hpp"

namespace inplace::baselines {

/// Cycle-length distribution of the transpose permutation for an m x n
/// row-major array (implemented in cycle_follow.cpp).
std::vector<std::uint64_t> transpose_cycle_lengths(std::uint64_t m,
                                                   std::uint64_t n);

/// In-place transpose by cycle following with a visited bitvector.
/// Afterwards the buffer holds the row-major n x m transpose.
template <typename T>
void cycle_following_transpose(T* a, std::uint64_t m, std::uint64_t n) {
  inplace::detail::checked_extent(a, m, n);
  const std::uint64_t total = m * n;
  if (total < 2 || m == 1 || n == 1) {
    return;
  }
  const std::uint64_t wrap = total - 1;
  std::vector<std::uint8_t> visited(total, 0);
  // Gather walk: position l receives the value from src(l) = (l*n) mod
  // (mn-1), the inverse of dest since n*m ≡ 1 (mod mn-1).
  for (std::uint64_t y = 1; y < wrap; ++y) {
    if (visited[y]) {
      continue;
    }
    const T saved = a[y];
    std::uint64_t l = y;
    for (;;) {
      visited[l] = 1;
      const std::uint64_t src = l * n % wrap;
      if (src == y) {
        a[l] = saved;
        break;
      }
      a[l] = a[src];
      l = src;
    }
  }
}

/// In-place transpose by cycle following with O(1) auxiliary space: a
/// position starts a cycle only if it is the minimum of its cycle, which
/// is verified by walking the cycle — the work blow-up the decomposition
/// eliminates.  Intended for small arrays and complexity demonstrations.
template <typename T>
void cycle_following_transpose_limited(T* a, std::uint64_t m,
                                       std::uint64_t n) {
  inplace::detail::checked_extent(a, m, n);
  const std::uint64_t total = m * n;
  if (total < 2 || m == 1 || n == 1) {
    return;
  }
  const std::uint64_t wrap = total - 1;
  for (std::uint64_t y = 1; y < wrap; ++y) {
    // Leader check: walk the cycle; abandon if any member is smaller.
    bool leader = true;
    for (std::uint64_t l = y * n % wrap; l != y; l = l * n % wrap) {
      if (l < y) {
        leader = false;
        break;
      }
    }
    if (!leader) {
      continue;
    }
    const T saved = a[y];
    std::uint64_t l = y;
    for (;;) {
      const std::uint64_t src = l * n % wrap;
      if (src == y) {
        a[l] = saved;
        break;
      }
      a[l] = a[src];
      l = src;
    }
  }
}

/// Directed O(1)-auxiliary-space form of the limited variant: applies
/// the raw C2R permutation (dir_c2r, identical to the transpose of the
/// row-major m x n view) or its inverse R2C.  The gather multiplier
/// flips between the mutually inverse linear maps — src(l) = l*n for
/// C2R, src(l) = l*m for R2C (n*m ≡ 1 mod mn-1, Theorem 2's composition
/// identity).  This is the last rung of the executor's OOM degradation
/// ladder: strictly in-place, no scratch beyond registers, at the
/// O(mn log mn)-and-worse work bound the decomposition exists to avoid.
template <typename T>
void cycle_following_permute_limited(T* a, std::uint64_t m, std::uint64_t n,
                                     bool dir_c2r) {
  inplace::detail::checked_extent(a, m, n);
  const std::uint64_t total = m * n;
  if (total < 2 || m == 1 || n == 1) {
    return;
  }
  const std::uint64_t wrap = total - 1;
  const std::uint64_t mult = dir_c2r ? n : m;
  for (std::uint64_t y = 1; y < wrap; ++y) {
    // Leader check: walk the cycle; abandon if any member is smaller.
    bool leader = true;
    for (std::uint64_t l = y * mult % wrap; l != y; l = l * mult % wrap) {
      if (l < y) {
        leader = false;
        break;
      }
    }
    if (!leader) {
      continue;
    }
    const T saved = a[y];
    std::uint64_t l = y;
    for (;;) {
      const std::uint64_t src = l * mult % wrap;
      if (src == y) {
        a[l] = saved;
        break;
      }
      a[l] = a[src];
      l = src;
    }
  }
}

}  // namespace inplace::baselines
