#pragma once
// Blocked out-of-place transpose: the throughput ceiling every in-place
// algorithm is measured against (it reads and writes each element exactly
// once, at the cost of O(mn) auxiliary space).

#include <cstdint>
#include <vector>

#include "core/errors.hpp"

namespace inplace::baselines {

/// Out-of-place blocked transpose of a row-major m x n array into dst
/// (row-major n x m).  Block edge sized for L1-resident square blocks.
template <typename T>
void blocked_transpose_into(const T* src, T* dst, std::uint64_t m,
                            std::uint64_t n, std::uint64_t block = 64) {
  for (std::uint64_t i0 = 0; i0 < m; i0 += block) {
    const std::uint64_t i1 = std::min(i0 + block, m);
    for (std::uint64_t j0 = 0; j0 < n; j0 += block) {
      const std::uint64_t j1 = std::min(j0 + block, n);
      for (std::uint64_t i = i0; i < i1; ++i) {
        for (std::uint64_t j = j0; j < j1; ++j) {
          dst[j * m + i] = src[i * n + j];
        }
      }
    }
  }
}

/// "In-place" transpose through a full-size temporary: the O(mn)-space
/// reference point for Figure 3/6 comparisons.
template <typename T>
void out_of_place_transpose(T* a, std::uint64_t m, std::uint64_t n,
                            std::uint64_t block = 64) {
  inplace::detail::checked_extent(a, m, n);
  if (m <= 1 || n <= 1) {
    return;
  }
  std::vector<T> tmp(static_cast<std::size_t>(m) * n);
  blocked_transpose_into(a, tmp.data(), m, n, block);
  std::copy(tmp.begin(), tmp.end(), a);
}

}  // namespace inplace::baselines
