#pragma once
// Order statistics used by the benchmark harness (the paper reports medians
// and maxima of throughput distributions).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace inplace::util {

/// q-quantile (q in [0,1]) with linear interpolation between order
/// statistics.  Copies the input; callers keep their sample order.
[[nodiscard]] inline double quantile(std::span<const double> samples,
                                     double q) {
  if (samples.empty()) {
    throw std::invalid_argument("quantile: empty sample set");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q outside [0,1]");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

[[nodiscard]] inline double median(std::span<const double> samples) {
  return quantile(samples, 0.5);
}

[[nodiscard]] inline double mean(std::span<const double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("mean: empty sample set");
  }
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

[[nodiscard]] inline double min_value(std::span<const double> samples) {
  return *std::min_element(samples.begin(), samples.end());
}

[[nodiscard]] inline double max_value(std::span<const double> samples) {
  return *std::max_element(samples.begin(), samples.end());
}

/// Median absolute deviation from the median — the robust spread estimate
/// the perf-regression gate uses (a stray slow sample inflates stddev but
/// barely moves the MAD).
[[nodiscard]] inline double median_abs_dev(std::span<const double> samples) {
  const double med = median(samples);
  std::vector<double> dev(samples.size());
  for (std::size_t k = 0; k < samples.size(); ++k) {
    dev[k] = std::abs(samples[k] - med);
  }
  return median(dev);
}

/// Sample standard deviation (n-1 denominator).
[[nodiscard]] inline double stddev(std::span<const double> samples) {
  if (samples.size() < 2) {
    return 0.0;
  }
  const double mu = mean(samples);
  double acc = 0.0;
  for (double s : samples) {
    acc += (s - mu) * (s - mu);
  }
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace inplace::util
