#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace inplace::util {

namespace {

constexpr const char kShades[] = " .:-=+*#%@";
constexpr std::size_t kShadeCount = sizeof(kShades) - 1;

constexpr const char kMarkers[] = "ox+*sd^v";

}  // namespace

std::string heatmap(const std::vector<double>& grid, std::size_t rows,
                    std::size_t cols, const std::string& title) {
  if (grid.size() != rows * cols) {
    throw std::invalid_argument("heatmap: grid size mismatch");
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : grid) {
    if (std::isnan(v)) {
      continue;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
  const double span = hi > lo ? hi - lo : 1.0;

  std::string out = title + "\n";
  for (std::size_t r = 0; r < rows; ++r) {
    out += "  |";
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = grid[r * cols + c];
      if (std::isnan(v)) {
        out += ' ';
        continue;
      }
      auto shade = static_cast<std::size_t>((v - lo) / span *
                                            double(kShadeCount - 1) +
                                            0.5);
      out += kShades[std::min(shade, kShadeCount - 1)];
    }
    out += "|\n";
  }
  char legend[96];
  std::snprintf(legend, sizeof legend, "  scale: '%c'=%.2f .. '%c'=%.2f\n",
                kShades[0], lo, kShades[kShadeCount - 1], hi);
  out += legend;
  return out;
}

std::string line_chart(const std::vector<series>& data,
                       const std::string& title, const std::string& x_label,
                       const std::string& y_label, std::size_t width,
                       std::size_t height) {
  double xlo = std::numeric_limits<double>::infinity();
  double xhi = -xlo;
  double ylo = std::numeric_limits<double>::infinity();
  double yhi = -ylo;
  for (const auto& s : data) {
    if (s.x.size() != s.y.size()) {
      throw std::invalid_argument("line_chart: x/y size mismatch in series " +
                                  s.name);
    }
    for (std::size_t k = 0; k < s.x.size(); ++k) {
      xlo = std::min(xlo, s.x[k]);
      xhi = std::max(xhi, s.x[k]);
      ylo = std::min(ylo, s.y[k]);
      yhi = std::max(yhi, s.y[k]);
    }
  }
  if (!std::isfinite(xlo)) {
    return title + " (no data)\n";
  }
  ylo = std::min(ylo, 0.0);  // anchor bandwidth charts at zero
  const double xspan = xhi > xlo ? xhi - xlo : 1.0;
  const double yspan = yhi > ylo ? yhi - ylo : 1.0;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::size_t si = 0; si < data.size(); ++si) {
    const char mark = kMarkers[si % (sizeof(kMarkers) - 1)];
    const auto& s = data[si];
    for (std::size_t k = 0; k < s.x.size(); ++k) {
      auto cx = static_cast<std::size_t>((s.x[k] - xlo) / xspan *
                                         double(width - 1) +
                                         0.5);
      auto cy = static_cast<std::size_t>((s.y[k] - ylo) / yspan *
                                         double(height - 1) +
                                         0.5);
      canvas[height - 1 - cy][cx] = mark;
    }
  }

  std::string out = title + "\n";
  char buf[192];
  for (std::size_t r = 0; r < height; ++r) {
    const double yval =
        ylo + yspan * double(height - 1 - r) / double(height - 1);
    std::snprintf(buf, sizeof buf, "%10.2f |%s\n", yval, canvas[r].c_str());
    out += buf;
  }
  out += std::string(11, ' ') + '+' + std::string(width, '-') + '\n';
  std::snprintf(buf, sizeof buf, "%10.2f%*s%.2f   (%s vs %s)\n", xlo,
                static_cast<int>(width) - 6, "", xhi, y_label.c_str(),
                x_label.c_str());
  out += buf;
  out += "  legend:";
  for (std::size_t si = 0; si < data.size(); ++si) {
    out += ' ';
    out += kMarkers[si % (sizeof(kMarkers) - 1)];
    out += '=' + data[si].name;
  }
  out += '\n';
  return out;
}

}  // namespace inplace::util
