// Comparator core for the perf-regression gate: diffs two schema-versioned
// BENCH_*.json reports series-by-series with noise-aware thresholds.  A
// series regresses only when the candidate median moves against the series'
// declared direction by more than
//
//     allowed_drop = max(rel_threshold, mad_k * max(base_mad, cand_mad)
//                                             / |base_median|)
//
// so noisy series earn a proportionally wider band (MAD is the robust
// dispersion the harness already emits) while quiet series are held to the
// flat relative threshold.  Header-only so tools/bench_gate.cpp and the
// unit tests share one implementation.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/bench_harness.hpp"  // bench_schema
#include "util/json.hpp"

namespace inplace::util {

struct gate_options {
  double rel_threshold = 0.10;  ///< flat allowance: 10% median movement
  double mad_k = 4.0;           ///< noise band half-width, in MADs
  bool fail_on_missing = true;  ///< a series present in base but absent in
                                ///< the candidate fails the gate
};

enum class gate_status {
  ok,         ///< within the allowance (includes improvements)
  regressed,  ///< moved against the series' direction beyond the allowance
  missing,    ///< present in base, absent in candidate
  skipped,    ///< not comparable (empty series or zero base median)
};

struct gate_finding {
  std::string series;
  gate_status status = gate_status::ok;
  double base_median = 0.0;
  double cand_median = 0.0;
  /// Signed relative movement in the series' direction: positive means the
  /// candidate improved, negative means it got worse.
  double rel_change = 0.0;
  double allowed_drop = 0.0;
  std::string detail;
};

struct gate_result {
  std::string artifact;
  std::vector<gate_finding> findings;
  std::size_t regressed = 0;
  std::size_t missing = 0;
  std::size_t compared = 0;

  [[nodiscard]] bool passed(const gate_options& opt) const {
    return regressed == 0 && (missing == 0 || !opt.fail_on_missing);
  }
};

namespace detail {

struct series_view {
  std::string name;
  std::string direction;
  double median = 0.0;
  double mad = 0.0;
  std::size_t count = 0;
};

inline std::vector<series_view> load_series(const json::value& report) {
  std::vector<series_view> out;
  for (const json::value& s : report.at("series").as_array()) {
    series_view v;
    v.name = s.at("name").as_string();
    v.direction = s.at("direction").as_string();
    v.count = static_cast<std::size_t>(s.at("count").as_number());
    if (v.count > 0) {
      v.median = s.at("median").as_number();
      v.mad = s.at("mad").as_number();
    }
    out.push_back(std::move(v));
  }
  return out;
}

inline void require_schema(const json::value& report, std::string_view role) {
  const json::value* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != bench_schema) {
    throw std::runtime_error(std::string(role) + " report is not a '" +
                             bench_schema + "' document");
  }
}

}  // namespace detail

/// Compare a candidate report against a baseline.  Throws
/// std::runtime_error when the documents are not comparable at all (wrong
/// schema, different artifact); per-series trouble lands in the findings.
[[nodiscard]] inline gate_result compare_reports(const json::value& base,
                                                 const json::value& cand,
                                                 const gate_options& opt) {
  detail::require_schema(base, "baseline");
  detail::require_schema(cand, "candidate");
  const std::string& base_artifact = base.at("artifact").as_string();
  const std::string& cand_artifact = cand.at("artifact").as_string();
  if (base_artifact != cand_artifact) {
    throw std::runtime_error("artifact mismatch: baseline '" + base_artifact +
                             "' vs candidate '" + cand_artifact + "'");
  }

  gate_result result;
  result.artifact = base_artifact;
  const auto base_series = detail::load_series(base);
  const auto cand_series = detail::load_series(cand);

  for (const auto& b : base_series) {
    gate_finding f;
    f.series = b.name;
    f.base_median = b.median;

    const detail::series_view* c = nullptr;
    for (const auto& candidate : cand_series) {
      if (candidate.name == b.name) {
        c = &candidate;
        break;
      }
    }
    if (c == nullptr) {
      f.status = gate_status::missing;
      f.detail = "series absent from candidate report";
      ++result.missing;
      result.findings.push_back(std::move(f));
      continue;
    }
    f.cand_median = c->median;
    if (b.count == 0 || c->count == 0) {
      f.status = gate_status::skipped;
      f.detail = "empty series";
      result.findings.push_back(std::move(f));
      continue;
    }
    if (b.direction != c->direction) {
      f.status = gate_status::missing;
      f.detail = "direction changed: " + b.direction + " -> " + c->direction;
      ++result.missing;
      result.findings.push_back(std::move(f));
      continue;
    }
    if (b.median == 0.0 || !std::isfinite(b.median) ||
        !std::isfinite(c->median)) {
      f.status = gate_status::skipped;
      f.detail = "non-finite or zero baseline median";
      result.findings.push_back(std::move(f));
      continue;
    }

    const bool higher_is_better = b.direction == "higher_is_better";
    const double signed_change = (c->median - b.median) / std::abs(b.median);
    f.rel_change = higher_is_better ? signed_change : -signed_change;
    const double noise_band =
        opt.mad_k * std::max(b.mad, c->mad) / std::abs(b.median);
    f.allowed_drop = std::max(opt.rel_threshold, noise_band);
    if (f.rel_change < -f.allowed_drop) {
      f.status = gate_status::regressed;
      ++result.regressed;
    }
    ++result.compared;
    result.findings.push_back(std::move(f));
  }

  return result;
}

}  // namespace inplace::util
