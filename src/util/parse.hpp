#pragma once
// Strict, validating numeric parsing — the designated funnel for
// turning external text (argv values, config fields) into integers.
//
// The project invariant (enforced by tools/lint/inplace-lint's
// naked-strtol rule) is that no example, tool, or execution-path code
// calls strtol/strtoul/strtoull/strtod/atoi directly: those APIs accept
// trailing garbage, wrap negatives through unsigned, and return 0 for
// "no digits at all", so a typo like "3x2" or an empty string silently
// becomes a matrix shape.  Call sites either use the helpers below or
// live inside one of the audited parsing funnels the linter allowlists
// (util/json.hpp, util/bench_harness.cpp, cpu/kernels/kernel_set.cpp).
//
// Grammar: decimal digits only.  No sign (except parse_int's leading
// '-'), no whitespace, no 0x prefix, no partial consumption; overflow
// is a parse failure, not saturation.

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string_view>

namespace inplace::util {

/// Parses a complete string of decimal digits into a u64.  Rejects
/// empty input, any non-digit byte, and overflow — the strict
/// complement of strtoull's permissiveness.
[[nodiscard]] constexpr std::optional<std::uint64_t> parse_u64(
    std::string_view text) noexcept {
  if (text.empty()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // would overflow: fail, never saturate
    }
    value = value * 10 + digit;
  }
  return value;
}

/// parse_u64 narrowed to std::size_t (the two differ on 32-bit
/// targets, so the range check is not vacuous everywhere).
[[nodiscard]] constexpr std::optional<std::size_t> parse_size(
    std::string_view text) noexcept {
  const auto v = parse_u64(text);
  if (!v || *v > std::numeric_limits<std::size_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*v);
}

/// Decimal int with one optional leading '-'; same strictness.
[[nodiscard]] constexpr std::optional<int> parse_int(
    std::string_view text) noexcept {
  bool negative = false;
  if (!text.empty() && text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  const auto magnitude = parse_u64(text);
  if (!magnitude) {
    return std::nullopt;
  }
  constexpr auto int_max =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  if (negative) {
    if (*magnitude > int_max + 1) {
      return std::nullopt;
    }
    return static_cast<int>(-static_cast<std::int64_t>(*magnitude));
  }
  if (*magnitude > int_max) {
    return std::nullopt;
  }
  return static_cast<int>(*magnitude);
}

/// Full-consumption double parse: the entire token must be one number
/// (strtod's grammar, minus its leading-whitespace skip), and range
/// overflow is a failure.  Delegates to strtod for the float grammar —
/// this function is the audited wrapper the naked-strtol rule points to.
[[nodiscard]] inline std::optional<double> parse_f64(
    std::string_view text) noexcept {
  char buf[64];
  if (text.empty() || text.size() >= sizeof(buf) ||
      std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    return std::nullopt;
  }
  std::memcpy(buf, text.data(), text.size());
  buf[text.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

/// Optional positional size argument for example/tool main()s:
/// argv[index] if present (strictly parsed), `fallback` if absent.  A
/// malformed value is a usage error — the process prints a diagnostic
/// naming the offending argument and exits with status 2, because a
/// demo run on a silently-zero shape measures nothing.
[[nodiscard]] inline std::size_t parse_size_arg(int argc, char** argv,
                                               int index,
                                               std::size_t fallback) {
  if (index >= argc) {
    return fallback;
  }
  if (const auto v = parse_size(argv[index])) {
    return *v;
  }
  std::fprintf(stderr, "%s: argument %d ('%s') is not a decimal size\n",
               argv[0], index, argv[index]);
  std::exit(2);
}

}  // namespace inplace::util
