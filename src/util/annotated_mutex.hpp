#pragma once
// Capability-annotated locking primitives for Clang Thread Safety
// Analysis (TSA).
//
// Every mutex-protected structure in the library declares its lock
// discipline through the macros below: the mutex is a *capability*, the
// fields it protects carry INPLACE_GUARDED_BY, and the functions that
// assume or take the lock carry INPLACE_REQUIRES / INPLACE_ACQUIRE /
// INPLACE_RELEASE.  A clang build with -DINPLACE_THREAD_SAFETY=ON
// compiles the whole library and test suite with
//
//     -Wthread-safety -Wthread-safety-beta -Werror
//
// turning the lock discipline — which PRs 1-5 could only test
// dynamically, by TSan happening to hit the bad interleaving — into a
// compile-time proof: an unguarded field access, a missing lock, a
// double acquire, or a lock released on the wrong path is a build error.
//
// Under GCC (or clang without the capability attribute) every macro
// expands to nothing and `annotated_mutex` degrades to a plain
// std::mutex wrapper with identical codegen, so GCC-only environments
// build and run the full suite unchanged; tools/verify.sh --static
// prints a loud notice when the proof pass has to be skipped.
//
// The vocabulary follows the Clang TSA documentation (and mirrors
// abseil's ABSL_GUARDED_BY family) so the annotations read as standard
// practice:
//
//   INPLACE_CAPABILITY(name)    class is a capability (the mutex types)
//   INPLACE_SCOPED_CAPABILITY   RAII class acquiring/releasing in
//                               ctor/dtor (the guards below)
//   INPLACE_GUARDED_BY(mu)      field access requires holding mu
//   INPLACE_PT_GUARDED_BY(mu)   pointee access requires holding mu
//   INPLACE_REQUIRES(mu)        caller must already hold mu
//   INPLACE_ACQUIRE(mu)         function takes mu and does not release
//   INPLACE_RELEASE(mu)         function releases mu
//   INPLACE_TRY_ACQUIRE(b, mu)  takes mu iff the return value is b
//   INPLACE_EXCLUDES(mu)        caller must NOT hold mu (deadlock guard)
//   INPLACE_ACQUIRED_BEFORE/AFTER(mu)  global lock-order edges
//   INPLACE_RETURN_CAPABILITY(mu)      accessor returning the mutex
//   INPLACE_ASSERT_CAPABILITY(mu)      runtime assertion the lock is held
//   INPLACE_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (documented
//                                      allowlist uses only; the linter's
//                                      mutex-discipline rule counts them)

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define INPLACE_TSA_(x) __attribute__((x))
#endif
#endif
#if !defined(INPLACE_TSA_)
#define INPLACE_TSA_(x)  // no-op outside clang: annotations vanish
#endif

#define INPLACE_CAPABILITY(name) INPLACE_TSA_(capability(name))
#define INPLACE_SCOPED_CAPABILITY INPLACE_TSA_(scoped_lockable)
#define INPLACE_GUARDED_BY(...) INPLACE_TSA_(guarded_by(__VA_ARGS__))
#define INPLACE_PT_GUARDED_BY(...) INPLACE_TSA_(pt_guarded_by(__VA_ARGS__))
#define INPLACE_REQUIRES(...) \
  INPLACE_TSA_(requires_capability(__VA_ARGS__))
#define INPLACE_ACQUIRE(...) INPLACE_TSA_(acquire_capability(__VA_ARGS__))
#define INPLACE_RELEASE(...) INPLACE_TSA_(release_capability(__VA_ARGS__))
#define INPLACE_TRY_ACQUIRE(...) \
  INPLACE_TSA_(try_acquire_capability(__VA_ARGS__))
#define INPLACE_EXCLUDES(...) INPLACE_TSA_(locks_excluded(__VA_ARGS__))
#define INPLACE_ACQUIRED_BEFORE(...) \
  INPLACE_TSA_(acquired_before(__VA_ARGS__))
#define INPLACE_ACQUIRED_AFTER(...) \
  INPLACE_TSA_(acquired_after(__VA_ARGS__))
#define INPLACE_RETURN_CAPABILITY(x) INPLACE_TSA_(lock_returned(x))
#define INPLACE_ASSERT_CAPABILITY(x) INPLACE_TSA_(assert_capability(x))
#define INPLACE_NO_THREAD_SAFETY_ANALYSIS \
  INPLACE_TSA_(no_thread_safety_analysis)

namespace inplace::util {

/// std::mutex with the capability attribute: TSA tracks who holds it.
/// Same layout and codegen as std::mutex; native() exposes the wrapped
/// mutex for std::condition_variable interop (see waitable_lock).
class INPLACE_CAPABILITY("mutex") annotated_mutex {
 public:
  annotated_mutex() = default;
  annotated_mutex(const annotated_mutex&) = delete;
  annotated_mutex& operator=(const annotated_mutex&) = delete;

  void lock() INPLACE_ACQUIRE() { mu_.lock(); }
  void unlock() INPLACE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() INPLACE_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// The wrapped std::mutex, for condition_variable waits only.  Locking
  /// through this reference bypasses the analysis — use waitable_lock.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over an annotated_mutex, visible to the analysis as a
/// scoped capability: construction acquires, destruction releases, and
/// the guarded fields are accessible for exactly the guard's scope.
class INPLACE_SCOPED_CAPABILITY mutex_guard {
 public:
  explicit mutex_guard(annotated_mutex& mu) INPLACE_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~mutex_guard() INPLACE_RELEASE() { mu_.unlock(); }
  mutex_guard(const mutex_guard&) = delete;
  mutex_guard& operator=(const mutex_guard&) = delete;

 private:
  annotated_mutex& mu_;
};

/// std::unique_lock equivalent for condition-variable waits.  The
/// capability is held for the guard's whole scope as far as the
/// analysis is concerned; wait() releases and reacquires the underlying
/// mutex atomically inside the condition variable, which is the
/// standard, sound blind spot of the annotation system (the predicate
/// re-check happens with the lock held, so guarded reads in the
/// predicate are correct).
class INPLACE_SCOPED_CAPABILITY waitable_lock {
 public:
  explicit waitable_lock(annotated_mutex& mu) INPLACE_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~waitable_lock() INPLACE_RELEASE() {}
  waitable_lock(const waitable_lock&) = delete;
  waitable_lock& operator=(const waitable_lock&) = delete;

  /// One blocking wait on `cv`.  Callers loop over their predicate in
  /// the enclosing scope (`while (!ready) lock.wait(cv);`) rather than
  /// passing a lambda: the analysis then sees every guarded read of the
  /// predicate inside the scope that provably holds the capability.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace inplace::util
