#pragma once
// Shared scaffolding for the per-figure/per-table benchmark binaries:
// sample-count scaling, CSV output location, a standard banner so the
// reproduced rows are easy to find in `bench_output.txt`, and the
// machine-readable BENCH_<artifact>.json report consumed by
// tools/bench_gate.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/telemetry.hpp"
#include "util/json.hpp"

namespace inplace::util {

/// Version tag stamped into every report; bump on breaking layout changes.
inline constexpr const char* bench_schema = "inplace.bench/1";

/// Parsed command line / environment for a bench binary.
///
/// Recognised flags:
///   --csv <path>     also dump the raw series as CSV
///   --json <path>    write the BENCH_*.json report here instead of the
///                    default BENCH_<artifact>.json in the working dir
///   --no-json        suppress the JSON report
///   --scale <f>      multiply workload sample counts by f (default from
///                    the INPLACE_BENCH_SCALE environment variable, then
///                    1.0)
///   --threads <n>    OpenMP thread count (default: all)
struct bench_config {
  double scale = 1.0;
  int threads = 0;  // 0 = library default
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  bool emit_json = true;

  /// Scaled sample count, never less than `minimum`; saturates instead of
  /// wrapping when scale * base exceeds size_t.
  [[nodiscard]] std::size_t samples(std::size_t base,
                                    std::size_t minimum = 4) const;
};

[[nodiscard]] bench_config parse_bench_args(int argc, char** argv);

/// Prints the standard header tying a binary back to the paper artifact.
void print_banner(const std::string& artifact, const std::string& paper_claim);

/// One measured (or modelled) sample series of a report.
struct bench_series {
  std::string name;
  std::string unit;
  bool higher_is_better = true;
  std::vector<double> samples;
};

/// Accumulates everything one bench binary measured and serializes it as
/// a schema-versioned JSON document (`bench_schema`).  The `artifact`
/// string names the output file: BENCH_<artifact>.json.
class bench_report {
 public:
  bench_report(std::string artifact, std::string paper_claim,
               const bench_config& cfg);

  /// Appends a whole series (replacing any prior series with this name).
  void add_series(const std::string& name, const std::string& unit,
                  std::span<const double> samples,
                  bool higher_is_better = true);

  /// Appends one sample to a (created-on-first-use) series.
  void add_sample(const std::string& name, const std::string& unit,
                  double sample, bool higher_is_better = true);

  /// Records a free-form metadata entry under the report's "meta" object.
  void note(const std::string& key, json::value v);

  /// Snapshots per-stage totals, raw spans and plan decisions out of a
  /// telemetry collector into the report.  `instrumented` says whether the
  /// calling translation unit was compiled with INPLACE_TELEMETRY — pass
  /// INPLACE_TELEMETRY_ENABLED != 0 (the collector exists either way, it
  /// just stays empty in uninstrumented builds).
  void attach_telemetry(const telemetry::collector& coll, bool instrumented);

  [[nodiscard]] const std::string& artifact() const { return artifact_; }
  [[nodiscard]] std::string default_path() const {
    return "BENCH_" + artifact_ + ".json";
  }

  /// The full report document (schema, config, series + summary stats,
  /// telemetry, metadata).
  [[nodiscard]] json::value to_json() const;

  /// Writes the report per the config captured at construction
  /// (`--no-json` suppresses, `--json` overrides the path).  Returns the
  /// path written, or nullopt when suppressed.
  std::optional<std::string> write() const;  // NOLINT(modernize-use-nodiscard)

 private:
  std::string artifact_;
  std::string paper_claim_;
  bench_config cfg_;
  std::vector<bench_series> series_;
  json::value meta_ = json::object{};
  std::optional<json::value> telemetry_;
};

}  // namespace inplace::util
