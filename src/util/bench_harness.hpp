#pragma once
// Shared scaffolding for the per-figure/per-table benchmark binaries:
// sample-count scaling, CSV output location, and a standard banner so the
// reproduced rows are easy to find in `bench_output.txt`.

#include <cstddef>
#include <optional>
#include <string>

namespace inplace::util {

/// Parsed command line / environment for a bench binary.
///
/// Recognised flags:
///   --csv <path>   also dump the raw series as CSV
///   --scale <f>    multiply workload sample counts by f (default from the
///                  INPLACE_BENCH_SCALE environment variable, then 1.0)
///   --threads <n>  OpenMP thread count (default: all)
struct bench_config {
  double scale = 1.0;
  int threads = 0;  // 0 = library default
  std::optional<std::string> csv_path;

  /// Scaled sample count, never less than `minimum`.
  [[nodiscard]] std::size_t samples(std::size_t base,
                                    std::size_t minimum = 4) const;
};

[[nodiscard]] bench_config parse_bench_args(int argc, char** argv);

/// Prints the standard header tying a binary back to the paper artifact.
void print_banner(const std::string& artifact, const std::string& paper_claim);

}  // namespace inplace::util
