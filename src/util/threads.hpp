#pragma once
// Thin OpenMP shims so the library builds and runs (serially) without it.

#include <cstddef>

#if defined(INPLACE_HAVE_OPENMP)
#include <omp.h>
#endif

namespace inplace::util {

/// The OpenMP worker-pool size the next parallel region will use
/// (omp_get_max_threads), honoring any active thread_count_guard.  In
/// builds without OpenMP this is always 1: there is no pool to resize, so
/// requested overrides cannot take effect — check
/// thread_count_guard::honored() when the count matters.
[[nodiscard]] inline int hardware_threads() {
#if defined(INPLACE_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Non-mutating prediction of what a thread_count_guard(threads) would
/// achieve: the pool size the next parallel region would get and whether
/// the request would be honored.  Unlike constructing a guard, this never
/// calls omp_set_num_threads, so it is safe from concurrent transposes —
/// a mutating probe would leak a wrong pool size into a neighbor's
/// parallel region for the probe's lifetime.
struct thread_probe {
  int requested = 0;   ///< the caller's request (<= 0 means "no change")
  int active = 1;      ///< pool size the request would run with
  bool honored = true; ///< whether the request would take effect
};

[[nodiscard]] inline thread_probe probe_thread_count(int threads) {
#if defined(INPLACE_HAVE_OPENMP)
  if (threads <= 0) {
    return {threads, omp_get_max_threads(), true};
  }
  const int limit = omp_get_thread_limit();
  const int active = threads < limit ? threads : limit;
  return {threads, active, active == threads};
#else
  return {threads, 1, threads <= 1};  // a serial build honors only "1"
#endif
}

/// Scoped override of the OpenMP thread count; restores on destruction.
///
/// `threads <= 0` requests no change (the runtime default stays active and
/// counts as honored).  A positive request is honored only in OpenMP
/// builds; serial builds always run single-threaded, and `honored()`
/// reports whether the request actually took effect so callers can detect
/// a silently-serial configuration instead of assuming parallelism.
class thread_count_guard {
 public:
  explicit thread_count_guard(int threads) : requested_(threads) {
#if defined(INPLACE_HAVE_OPENMP)
    previous_ = omp_get_max_threads();
    if (threads > 0) {
      omp_set_num_threads(threads);
      honored_ = omp_get_max_threads() == threads;
    }
#else
    honored_ = threads <= 1;  // a serial build honors only "1" (or no-op)
#endif
  }

  ~thread_count_guard() {
#if defined(INPLACE_HAVE_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  thread_count_guard(const thread_count_guard&) = delete;
  thread_count_guard& operator=(const thread_count_guard&) = delete;

  /// The thread count passed to the constructor (<= 0 means "no change").
  [[nodiscard]] int requested() const { return requested_; }

  /// The pool size in effect while this guard is active.
  [[nodiscard]] int active() const { return hardware_threads(); }

  /// True when the requested override (or "no change") is actually in
  /// effect.  False when a positive request was ignored — a non-OpenMP
  /// build, or an OpenMP runtime that refused the resize.
  [[nodiscard]] bool honored() const { return honored_; }

 private:
  int requested_ = 0;
  bool honored_ = true;
#if defined(INPLACE_HAVE_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace inplace::util
