#pragma once
// Thin OpenMP shims so the library builds and runs (serially) without it,
// plus CPU-topology probing and optional thread pinning for the context
// worker pool (context_options::pin_workers).

#include <cstddef>

#if defined(INPLACE_HAVE_OPENMP)
#include <omp.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace inplace::util {

/// The OpenMP worker-pool size the next parallel region will use
/// (omp_get_max_threads), honoring any active thread_count_guard.  In
/// builds without OpenMP this is always 1: there is no pool to resize, so
/// requested overrides cannot take effect — check
/// thread_count_guard::honored() when the count matters.
[[nodiscard]] inline int hardware_threads() {
#if defined(INPLACE_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Non-mutating prediction of what a thread_count_guard(threads) would
/// achieve: the pool size the next parallel region would get and whether
/// the request would be honored.  Unlike constructing a guard, this never
/// calls omp_set_num_threads, so it is safe from concurrent transposes —
/// a mutating probe would leak a wrong pool size into a neighbor's
/// parallel region for the probe's lifetime.
struct thread_probe {
  int requested = 0;   ///< the caller's request (<= 0 means "no change")
  int active = 1;      ///< pool size the request would run with
  bool honored = true; ///< whether the request would take effect
};

[[nodiscard]] inline thread_probe probe_thread_count(int threads) {
#if defined(INPLACE_HAVE_OPENMP)
  if (threads <= 0) {
    return {threads, omp_get_max_threads(), true};
  }
  const int limit = omp_get_thread_limit();
  const int active = threads < limit ? threads : limit;
  return {threads, active, active == threads};
#else
  return {threads, 1, threads <= 1};  // a serial build honors only "1"
#endif
}

/// What the machine looks like to a worker pool deciding placement.
///
/// `allowed` counts the CPUs in *this process's* affinity mask (cgroup /
/// taskset restrictions included), which is the honest bound for pinning;
/// `logical` is the OS-reported online count.  On platforms without an
/// affinity API both fall back to the OpenMP/STL estimate and
/// `pinning_supported` is false, so callers can fall back loudly instead
/// of silently pretending placement happened.
struct cpu_topology {
  int logical = 1;                ///< online logical CPUs
  int allowed = 1;                ///< CPUs this process may run on
  bool pinning_supported = false; ///< pin_current_thread can succeed here
};

[[nodiscard]] inline cpu_topology probe_topology() {
  cpu_topology topo;
#if defined(__linux__)
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  topo.logical = online > 0 ? static_cast<int>(online) : 1;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    topo.allowed = count > 0 ? count : 1;
    topo.pinning_supported = true;
  } else {
    topo.allowed = topo.logical;
  }
#else
  topo.logical = hardware_threads() > 0 ? hardware_threads() : 1;
  topo.allowed = topo.logical;
#endif
  return topo;
}

/// Pins the calling thread to the `index`-th CPU of the process's allowed
/// set (wrapping modulo the set size).  Returns true when the affinity
/// call succeeded; false where unsupported or refused, so the caller can
/// report the fallback instead of assuming placement took effect.
[[nodiscard]] inline bool pin_current_thread(std::size_t index) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
    return false;
  }
  const int count = CPU_COUNT(&allowed);
  if (count <= 0) {
    return false;
  }
  // Walk to the (index mod count)-th set bit: pinning targets must come
  // from the allowed mask or pthread_setaffinity_np fails outright.
  // (Unsigned loop indices: the glibc CPU_* macros index bit words and
  // warn under -Wsign-conversion when handed an int.)
  std::size_t want = index % static_cast<std::size_t>(count);
  std::size_t target = CPU_SETSIZE;
  for (std::size_t cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed)) {
      if (want == 0) {
        target = cpu;
        break;
      }
      --want;
    }
  }
  if (target >= CPU_SETSIZE) {
    return false;
  }
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(target, &one);
  return pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
#else
  (void)index;
  return false;  // no portable affinity API: fall back (loudly) upstream
#endif
}

/// Scoped override of the OpenMP thread count; restores on destruction.
///
/// `threads <= 0` requests no change (the runtime default stays active and
/// counts as honored).  A positive request is honored only in OpenMP
/// builds; serial builds always run single-threaded, and `honored()`
/// reports whether the request actually took effect so callers can detect
/// a silently-serial configuration instead of assuming parallelism.
class thread_count_guard {
 public:
  explicit thread_count_guard(int threads) : requested_(threads) {
#if defined(INPLACE_HAVE_OPENMP)
    previous_ = omp_get_max_threads();
    if (threads > 0) {
      omp_set_num_threads(threads);
      honored_ = omp_get_max_threads() == threads;
    }
#else
    honored_ = threads <= 1;  // a serial build honors only "1" (or no-op)
#endif
  }

  ~thread_count_guard() {
#if defined(INPLACE_HAVE_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  thread_count_guard(const thread_count_guard&) = delete;
  thread_count_guard& operator=(const thread_count_guard&) = delete;

  /// The thread count passed to the constructor (<= 0 means "no change").
  [[nodiscard]] int requested() const { return requested_; }

  /// The pool size in effect while this guard is active.
  [[nodiscard]] int active() const { return hardware_threads(); }

  /// True when the requested override (or "no change") is actually in
  /// effect.  False when a positive request was ignored — a non-OpenMP
  /// build, or an OpenMP runtime that refused the resize.
  [[nodiscard]] bool honored() const { return honored_; }

 private:
  int requested_ = 0;
  bool honored_ = true;
#if defined(INPLACE_HAVE_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace inplace::util
