#pragma once
// Thin OpenMP shims so the library builds and runs (serially) without it.

#include <cstddef>

#if defined(INPLACE_HAVE_OPENMP)
#include <omp.h>
#endif

namespace inplace::util {

[[nodiscard]] inline int hardware_threads() {
#if defined(INPLACE_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Scoped override of the OpenMP thread count; restores on destruction.
class thread_count_guard {
 public:
  explicit thread_count_guard(int threads) {
#if defined(INPLACE_HAVE_OPENMP)
    previous_ = omp_get_max_threads();
    if (threads > 0) {
      omp_set_num_threads(threads);
    }
#else
    (void)threads;
#endif
  }

  ~thread_count_guard() {
#if defined(INPLACE_HAVE_OPENMP)
    omp_set_num_threads(previous_);
#endif
  }

  thread_count_guard(const thread_count_guard&) = delete;
  thread_count_guard& operator=(const thread_count_guard&) = delete;

 private:
#if defined(INPLACE_HAVE_OPENMP)
  int previous_ = 1;
#endif
};

}  // namespace inplace::util
