#pragma once
// Fixed-bin histograms rendered as ASCII, mirroring the throughput
// histograms of Figures 3, 6 and 7 in the paper.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace inplace::util {

/// Histogram over [lo, hi) with uniformly sized bins.  Samples outside the
/// range are clamped into the first/last bin (the paper clamps fast outliers
/// to the 99th percentile in the same spirit).
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  void add(std::span<const double> samples);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Multi-line ASCII rendering: one row per bin, bar length proportional
  /// to count, with an optional marker line for e.g. the median.
  [[nodiscard]] std::string render(std::size_t width = 50,
                                   double marker = -1.0) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace inplace::util
