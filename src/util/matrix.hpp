#pragma once
// Matrix fixtures shared by tests and benchmarks: canonical fills, the
// out-of-place reference transpose, and buffer verification.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace inplace::util {

/// Fill with the element's own linear index so any permutation of the
/// buffer is directly observable.
template <typename T>
void fill_iota(std::span<T> data) {
  for (std::size_t l = 0; l < data.size(); ++l) {
    data[l] = static_cast<T>(l);
  }
}

template <typename T>
[[nodiscard]] std::vector<T> iota_matrix(std::size_t rows, std::size_t cols) {
  std::vector<T> data(rows * cols);
  fill_iota(std::span<T>(data));
  return data;
}

/// Out-of-place reference transpose of a row-major rows x cols array.
/// The result is a row-major cols x rows array.
template <typename T>
[[nodiscard]] std::vector<T> reference_transpose(std::span<const T> src,
                                                 std::size_t rows,
                                                 std::size_t cols) {
  if (src.size() != rows * cols) {
    throw std::invalid_argument("reference_transpose: size mismatch");
  }
  std::vector<T> dst(src.size());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      dst[j * rows + i] = src[i * cols + j];
    }
  }
  return dst;
}

/// Index of the first mismatching element, or -1 if the spans are equal.
template <typename T>
[[nodiscard]] std::ptrdiff_t first_mismatch(std::span<const T> a,
                                            std::span<const T> b) {
  if (a.size() != b.size()) {
    return 0;
  }
  for (std::size_t l = 0; l < a.size(); ++l) {
    if (a[l] != b[l]) {
      return static_cast<std::ptrdiff_t>(l);
    }
  }
  return -1;
}

/// A 16-byte POD mimicking the structures in the paper's AoS experiments.
struct alignas(16) vec4f {
  float x, y, z, w;
  friend bool operator==(const vec4f&, const vec4f&) = default;
};

}  // namespace inplace::util
