#pragma once
// Terminal renderings of the paper's figures: heatmaps (Figs. 4-5
// performance landscapes) and line charts (Figs. 8-9 bandwidth curves).

#include <cstddef>
#include <string>
#include <vector>

namespace inplace::util {

/// Render a row-major grid of values as a shaded ASCII heatmap with a
/// legend mapping shades to value ranges.  NaN cells render as spaces.
[[nodiscard]] std::string heatmap(const std::vector<double>& grid,
                                  std::size_t rows, std::size_t cols,
                                  const std::string& title);

/// One labelled series for line_chart.
struct series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Render multiple series on a shared-axis ASCII chart (marker per series).
[[nodiscard]] std::string line_chart(const std::vector<series>& data,
                                     const std::string& title,
                                     const std::string& x_label,
                                     const std::string& y_label,
                                     std::size_t width = 72,
                                     std::size_t height = 20);

}  // namespace inplace::util
