#pragma once
// Minimal CSV emission so every benchmark can dump the raw series behind
// the table/figure it reproduces.

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace inplace::util {

/// Append-only CSV writer.  Values are stringified with operator<<; strings
/// containing separators/quotes are quoted per RFC 4180.
class csv_writer {
 public:
  explicit csv_writer(const std::string& path) : out_(path) {
    if (!out_) {
      throw std::runtime_error("csv_writer: cannot open " + path);
    }
  }

  template <typename... Fields>
  void row(const Fields&... fields) {
    bool first = true;
    ((write_field(to_string(fields), first), first = false), ...);
    out_ << '\n';
  }

 private:
  template <typename T>
  static std::string to_string(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  void write_field(const std::string& field, bool first) {
    if (!first) {
      out_ << ',';
    }
    if (field.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char ch : field) {
        if (ch == '"') {
          out_ << '"';
        }
        out_ << ch;
      }
      out_ << '"';
    } else {
      out_ << field;
    }
  }

  std::ofstream out_;
};

}  // namespace inplace::util
