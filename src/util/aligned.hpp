#pragma once
// Cache-line-aligned storage for the engines' scratch buffers.  The
// workspace lines feed the vector kernels (cpu/kernels/): 64-byte
// alignment makes every scratch row start on a cache line, satisfies the
// non-temporal store alignment the streaming copy-back wants, and lets
// the scalar permute/rotate loops carry std::assume_aligned hints.

#include <cstddef>
#include <new>
#include <vector>

#include "core/failpoint.hpp"

namespace inplace::util {

/// Scratch buffers are aligned to one cache line (also the widest vector
/// register and the non-temporal store granularity on x86-64).
inline constexpr std::size_t scratch_alignment = 64;

/// Minimal allocator handing out `Align`-aligned storage via the aligned
/// operator new (C++17).  Equality is stateless: any two instances for
/// the same T/Align interoperate.
template <typename T, std::size_t Align = scratch_alignment>
struct aligned_allocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment below the type's own");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  aligned_allocator() noexcept = default;
  template <typename U>
  explicit aligned_allocator(const aligned_allocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = aligned_allocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t count) {
    // Failure-injection shim: in an INPLACE_FAILPOINTS TU, arming
    // "alloc.aligned" (mode oom, with skip/count) makes the k-th scratch
    // allocation fail exactly where a real std::bad_alloc would — the
    // OOM-ladder tests drive every workspace allocation through this.
    INPLACE_FAILPOINT("alloc.aligned");
    return static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const aligned_allocator&,
                         const aligned_allocator&) noexcept {
    return true;
  }
};

/// A std::vector whose data() is 64-byte aligned (workspace scratch, the
/// kernel index buffers, and the test/bench temporaries handed to the
/// permute primitives, which require the alignment — see permute.hpp).
template <typename T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

/// True when `p` satisfies the scratch alignment contract.
inline bool is_scratch_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % scratch_alignment == 0;
}

}  // namespace inplace::util
