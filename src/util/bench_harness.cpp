#include "util/bench_harness.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/telemetry.hpp"
#include "util/stats.hpp"

namespace inplace::util {

namespace {

/// strtod with full-consumption validation: the whole token must be a
/// finite number, not merely start with one ("1.5x" and "" both fail).
std::optional<double> parse_double(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

/// strtol with full-consumption validation and an int range check.
std::optional<int> parse_int(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE || v < INT_MIN ||
      v > INT_MAX) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

}  // namespace

std::size_t bench_config::samples(std::size_t base,
                                  std::size_t minimum) const {
  const double scaled = static_cast<double>(base) * scale;
  // double -> size_t is undefined behaviour when the value does not fit;
  // saturate instead (a 1e30 scale should mean "huge", not garbage).
  constexpr auto max_exact =
      static_cast<double>(std::size_t{1} << 53U);  // exact in double
  if (!(scaled >= 0.0)) {  // also catches NaN
    return minimum;
  }
  if (scaled >= max_exact) {
    return std::max<std::size_t>(minimum, std::size_t{1} << 53U);
  }
  return std::max<std::size_t>(minimum, static_cast<std::size_t>(scaled));
}

bench_config parse_bench_args(int argc, char** argv) {
  bench_config cfg;
  if (const char* env = std::getenv("INPLACE_BENCH_SCALE")) {
    const auto v = parse_double(env);
    if (v && *v > 0.0) {
      cfg.scale = *v;
    } else {
      // An unparsable env var silently running the full-size workload (or
      // a zero-sample one) wastes a CI cycle; say what happened.
      std::fprintf(stderr,
                   "warning: ignoring INPLACE_BENCH_SCALE=\"%s\" (not a "
                   "positive number); using scale %g\n",
                   env, cfg.scale);
    }
  }
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto need_value = [&](const char* flag) -> const char* {
      if (k + 1 >= argc) {
        throw std::runtime_error(std::string("missing value for ") + flag);
      }
      return argv[++k];
    };
    if (arg == "--csv") {
      cfg.csv_path = need_value("--csv");
    } else if (arg == "--json") {
      cfg.json_path = need_value("--json");
    } else if (arg == "--no-json") {
      cfg.emit_json = false;
    } else if (arg == "--scale") {
      const char* text = need_value("--scale");
      const auto v = parse_double(text);
      if (!v || *v <= 0.0) {
        throw std::runtime_error(std::string("--scale expects a positive "
                                             "number, got \"") +
                                 text + "\"");
      }
      cfg.scale = *v;
    } else if (arg == "--threads") {
      const char* text = need_value("--threads");
      const auto v = parse_int(text);
      if (!v || *v < 0) {
        throw std::runtime_error(
            std::string("--threads expects a non-negative integer, got \"") +
            text + "\"");
      }
      cfg.threads = *v;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--csv path] [--json path] [--no-json] [--scale f] "
          "[--threads n]\n",
          argv[0]);
      std::exit(0);
    } else {
      throw std::runtime_error("unknown flag: " + arg);
    }
  }
  return cfg;
}

void print_banner(const std::string& artifact,
                  const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("Reproducing: %s\n", artifact.c_str());
  std::printf("Paper claim: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

bench_report::bench_report(std::string artifact, std::string paper_claim,
                           const bench_config& cfg)
    : artifact_(std::move(artifact)),
      paper_claim_(std::move(paper_claim)),
      cfg_(cfg) {}

void bench_report::add_series(const std::string& name,
                              const std::string& unit,
                              std::span<const double> samples,
                              bool higher_is_better) {
  for (bench_series& s : series_) {
    if (s.name == name) {
      s.unit = unit;
      s.higher_is_better = higher_is_better;
      s.samples.assign(samples.begin(), samples.end());
      return;
    }
  }
  series_.push_back(bench_series{
      name, unit, higher_is_better,
      std::vector<double>(samples.begin(), samples.end())});
}

void bench_report::add_sample(const std::string& name,
                              const std::string& unit, double sample,
                              bool higher_is_better) {
  for (bench_series& s : series_) {
    if (s.name == name) {
      s.samples.push_back(sample);
      return;
    }
  }
  series_.push_back(
      bench_series{name, unit, higher_is_better, {sample}});
}

void bench_report::note(const std::string& key, json::value v) {
  meta_.set(key, std::move(v));
}

void bench_report::attach_telemetry(const telemetry::collector& coll,
                                    bool instrumented) {
  json::value tel = json::object{};
  tel.set("instrumented", instrumented);
  tel.set("spans_seen", static_cast<double>(coll.spans_seen()));
  tel.set("plans_seen", static_cast<double>(coll.plans_seen()));
  tel.set("plans_truncated", coll.plans_truncated());

  json::array stages;
  const auto totals = coll.totals();
  for (std::size_t k = 0; k < telemetry::stage_count; ++k) {
    const telemetry::stage_total& t = totals[k];
    if (t.calls == 0) {
      continue;
    }
    json::value s = json::object{};
    s.set("stage",
          telemetry::stage_name(static_cast<telemetry::stage>(k)));
    s.set("calls", static_cast<double>(t.calls));
    s.set("seconds", t.seconds);
    s.set("bytes_moved", static_cast<double>(t.bytes_moved));
    s.set("scratch_bytes_max", static_cast<double>(t.scratch_bytes_max));
    stages.push_back(std::move(s));
  }
  tel.set("stages", std::move(stages));

  json::array plans;
  for (const telemetry::collector::plan_count& pc : coll.plan_counts()) {
    json::value p = json::object{};
    p.set("engine", pc.rec.engine);
    p.set("direction", pc.rec.direction);
    p.set("m", static_cast<double>(pc.rec.m));
    p.set("n", static_cast<double>(pc.rec.n));
    p.set("block_width", static_cast<double>(pc.rec.block_width));
    p.set("elem_size", static_cast<double>(pc.rec.elem_size));
    p.set("strength_reduction", pc.rec.strength_reduction);
    p.set("kernel_tier", pc.rec.kernel_tier);
    p.set("threads_requested",
          static_cast<double>(pc.rec.threads_requested));
    p.set("threads_active", static_cast<double>(pc.rec.threads_active));
    p.set("threads_honored", pc.rec.threads_honored);
    p.set("from_cache", pc.rec.from_cache);
    p.set("calibration", pc.rec.calibration);
    p.set("count", static_cast<double>(pc.count));
    plans.push_back(std::move(p));
  }
  tel.set("plans", std::move(plans));
  telemetry_ = std::move(tel);
}

json::value bench_report::to_json() const {
  json::value doc = json::object{};
  doc.set("schema", bench_schema);
  doc.set("artifact", artifact_);
  doc.set("paper_claim", paper_claim_);

  json::value config = json::object{};
  config.set("scale", cfg_.scale);
  config.set("threads", cfg_.threads);
#if defined(INPLACE_HAVE_OPENMP)
  config.set("openmp", true);
#else
  config.set("openmp", false);
#endif
  doc.set("config", std::move(config));

  json::array series;
  for (const bench_series& s : series_) {
    json::value js = json::object{};
    js.set("name", s.name);
    js.set("unit", s.unit);
    js.set("direction",
           s.higher_is_better ? "higher_is_better" : "lower_is_better");
    js.set("count", static_cast<double>(s.samples.size()));
    if (!s.samples.empty()) {
      js.set("median", median(s.samples));
      js.set("mad", median_abs_dev(s.samples));
      js.set("min", min_value(s.samples));
      js.set("max", max_value(s.samples));
      js.set("mean", mean(s.samples));
    }
    json::array samples;
    samples.reserve(s.samples.size());
    for (const double v : s.samples) {
      samples.push_back(v);
    }
    js.set("samples", std::move(samples));
    series.push_back(std::move(js));
  }
  doc.set("series", std::move(series));

  if (telemetry_) {
    doc.set("telemetry", *telemetry_);
  }
  if (!meta_.as_object().empty()) {
    doc.set("meta", meta_);
  }
  return doc;
}

std::optional<std::string> bench_report::write() const {
  if (!cfg_.emit_json) {
    return std::nullopt;
  }
  const std::string path = cfg_.json_path.value_or(default_path());
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bench_report: cannot open " + path);
  }
  out << to_json().dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("bench_report: write failed for " + path);
  }
  std::printf("\nwrote %s\n", path.c_str());
  return path;
}

}  // namespace inplace::util
