#include "util/bench_harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace inplace::util {

std::size_t bench_config::samples(std::size_t base,
                                  std::size_t minimum) const {
  const double scaled = static_cast<double>(base) * scale;
  return std::max<std::size_t>(minimum, static_cast<std::size_t>(scaled));
}

bench_config parse_bench_args(int argc, char** argv) {
  bench_config cfg;
  if (const char* env = std::getenv("INPLACE_BENCH_SCALE")) {
    cfg.scale = std::strtod(env, nullptr);
    if (cfg.scale <= 0.0) {
      cfg.scale = 1.0;
    }
  }
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto need_value = [&](const char* flag) -> const char* {
      if (k + 1 >= argc) {
        throw std::runtime_error(std::string("missing value for ") + flag);
      }
      return argv[++k];
    };
    if (arg == "--csv") {
      cfg.csv_path = need_value("--csv");
    } else if (arg == "--scale") {
      cfg.scale = std::strtod(need_value("--scale"), nullptr);
      if (cfg.scale <= 0.0) {
        throw std::runtime_error("--scale must be positive");
      }
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(need_value("--threads"));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--csv path] [--scale f] [--threads n]\n",
                  argv[0]);
      std::exit(0);
    } else {
      throw std::runtime_error("unknown flag: " + arg);
    }
  }
  return cfg;
}

void print_banner(const std::string& artifact,
                  const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("Reproducing: %s\n", artifact.c_str());
  std::printf("Paper claim: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace inplace::util
