#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace inplace::util {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) {
    throw std::invalid_argument("histogram: lo must be < hi");
  }
  if (bins == 0) {
    throw std::invalid_argument("histogram: need at least one bin");
  }
}

void histogram::add(double sample) {
  const double scaled =
      (sample - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto bin = scaled <= 0.0 ? std::ptrdiff_t{0}
                           : static_cast<std::ptrdiff_t>(scaled);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void histogram::add(std::span<const double> samples) {
  for (double s : samples) {
    add(s);
  }
}

std::size_t histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("histogram::count: bin out of range");
  }
  return counts_[bin];
}

double histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

std::string histogram::render(std::size_t width, double marker) const {
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[bin] * width / peak;
    const bool marked =
        marker >= bin_low(bin) && marker < bin_high(bin);
    std::snprintf(line, sizeof line, "%9.3f..%-9.3f |%s%s %zu%s\n",
                  bin_low(bin), bin_high(bin),
                  std::string(bar, '#').c_str(), marked ? "<" : "",
                  counts_[bin], marked ? "   <-- median" : "");
    out += line;
  }
  return out;
}

}  // namespace inplace::util
