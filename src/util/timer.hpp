#pragma once
// Wall-clock timing for throughput measurement (Eq. 37 of the paper uses
// end-to-end transposition time).

#include <chrono>
#include <cstddef>

namespace inplace::util {

/// Monotonic wall-clock stopwatch.
class timer {
 public:
  timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Throughput in GB/s per the paper's Eq. 37: an ideal transpose reads the
/// array once and writes it once, so it moves 2*m*n*elem_size bytes.
[[nodiscard]] inline double transpose_throughput_gbs(std::size_t rows,
                                                     std::size_t cols,
                                                     std::size_t elem_size,
                                                     double seconds) {
  const double bytes = 2.0 * static_cast<double>(rows) *
                       static_cast<double>(cols) *
                       static_cast<double>(elem_size);
  return bytes / seconds * 1e-9;
}

}  // namespace inplace::util
