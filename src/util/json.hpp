#pragma once
// Minimal JSON document model for the benchmark reports: enough of
// RFC 8259 to serialize BENCH_*.json files and for tools/bench_gate to
// parse them back, with zero third-party dependencies.  Objects preserve
// insertion order so emitted reports diff cleanly run-to-run.

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace inplace::util::json {

/// Thrown on malformed documents (parse) and type mismatches (accessors).
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class value;
using array = std::vector<value>;
/// Insertion-ordered key/value sequence (reports stay diffable).
using object = std::vector<std::pair<std::string, value>>;

// Storage is one tagged struct of plain members rather than std::variant:
// a report document holds a few hundred nodes at most, so the footprint
// does not matter, and the memberwise moves sidestep GCC 12's spurious
// -Wmaybe-uninitialized on variant's visit-based special members.
class value {
 public:
  enum class kind : std::uint8_t {
    null,
    boolean,
    number,
    string,
    arr,
    obj,
  };

  value() = default;
  value(std::nullptr_t) {}    // NOLINT(google-explicit-constructor)
  value(bool b)               // NOLINT(google-explicit-constructor)
      : kind_(kind::boolean), bool_(b) {}
  value(double d)             // NOLINT(google-explicit-constructor)
      : kind_(kind::number), num_(d) {}
  value(int i)                // NOLINT(google-explicit-constructor)
      : kind_(kind::number), num_(static_cast<double>(i)) {}
  value(std::uint64_t u)      // NOLINT(google-explicit-constructor)
      : kind_(kind::number), num_(static_cast<double>(u)) {}
  value(const char* s)        // NOLINT(google-explicit-constructor)
      : kind_(kind::string), str_(s) {}
  value(std::string s)        // NOLINT(google-explicit-constructor)
      : kind_(kind::string), str_(std::move(s)) {}
  value(json::array a)        // NOLINT(google-explicit-constructor)
      : kind_(kind::arr), arr_(std::move(a)) {}
  value(json::object o)       // NOLINT(google-explicit-constructor)
      : kind_(kind::obj), obj_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return kind_ == kind::null; }
  [[nodiscard]] bool is_bool() const { return kind_ == kind::boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const { return kind_ == kind::arr; }
  [[nodiscard]] bool is_object() const { return kind_ == kind::obj; }

  [[nodiscard]] bool as_bool() const {
    require(kind::boolean, "bool");
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    require(kind::number, "number");
    return num_;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(kind::string, "string");
    return str_;
  }
  [[nodiscard]] const json::array& as_array() const {
    require(kind::arr, "array");
    return arr_;
  }
  [[nodiscard]] const json::object& as_object() const {
    require(kind::obj, "object");
    return obj_;
  }

  /// Looks a key up in an object value; nullptr when absent.
  [[nodiscard]] const value* find(std::string_view key) const {
    for (const auto& [k, v] : as_object()) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }

  /// Object member by key; throws when absent.
  [[nodiscard]] const value& at(std::string_view key) const {
    if (const value* v = find(key)) {
      return *v;
    }
    throw error("json: missing key \"" + std::string(key) + "\"");
  }

  /// Appends (or replaces) a member of an object value.
  void set(std::string_view key, value v) {
    require(kind::obj, "object");
    for (auto& [k, existing] : obj_) {
      if (k == key) {
        existing = std::move(v);
        return;
      }
    }
    obj_.emplace_back(std::string(key), std::move(v));
  }

  /// Serializes to text.  `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 2) const {
    std::string out;
    write(out, indent, 0);
    return out;
  }

 private:
  void require(kind k, const char* what) const {
    if (kind_ != k) {
      throw error(std::string("json: value is not a ") + what);
    }
  }

  static void write_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  static void write_number(std::string& out, double d) {
    if (!std::isfinite(d)) {
      // JSON has no Inf/NaN; null is the conventional stand-in.
      out += "null";
      return;
    }
    char buf[32];
    // %.17g round-trips every double; shorten when a coarser precision
    // already parses back exactly (keeps "0.1" as 0.1, integers bare).
    for (const int prec : {15, 16, 17}) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
      if (std::strtod(buf, nullptr) == d) {
        break;
      }
    }
    out += buf;
  }

  void write(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
      if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
      }
    };
    switch (kind_) {
      case kind::null:
        out += "null";
        break;
      case kind::boolean:
        out += bool_ ? "true" : "false";
        break;
      case kind::number:
        write_number(out, num_);
        break;
      case kind::string:
        write_escaped(out, str_);
        break;
      case kind::arr: {
        if (arr_.empty()) {
          out += "[]";
          return;
        }
        out += '[';
        bool first = true;
        for (const value& item : arr_) {
          if (!first) {
            out += ',';
          }
          first = false;
          newline(depth + 1);
          item.write(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case kind::obj: {
        if (obj_.empty()) {
          out += "{}";
          return;
        }
        out += '{';
        bool first = true;
        for (const auto& [k, v] : obj_) {
          if (!first) {
            out += ',';
          }
          first = false;
          newline(depth + 1);
          write_escaped(out, k);
          out += indent > 0 ? ": " : ":";
          v.write(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
  }

  kind kind_ = kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  json::array arr_;
  json::object obj_;
};

namespace detail {

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  value parse_document() {
    value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  static constexpr int max_depth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  value parse_value(int depth) {
    if (depth > max_depth) {
      fail("nesting deeper than " + std::to_string(max_depth));
    }
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return value(parse_string());
      case 't':
        if (consume_literal("true")) {
          return value(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return value(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return value(nullptr);
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  value parse_object(int depth) {
    expect('{');
    object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return value(std::move(obj));
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  value parse_array(int depth) {
    expect('[');
    array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return value(std::move(arr));
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_utf8(out, parse_hex4());
          break;
        default:
          fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos_ >= text_.size()) {
        fail("truncated \\u escape");
      }
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    // Surrogate pairs are not recombined (the reports only emit ASCII);
    // lone surrogates become U+FFFD.
    if (code >= 0xD800 && code <= 0xDFFF) {
      code = 0xFFFD;
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0U | (code >> 6U));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    } else {
      out += static_cast<char>(0xE0U | (code >> 12U));
      out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    }
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(
                                    text_[pos_])) == 0) {
      fail("invalid number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("invalid number");
    }
    return value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws json::error with the byte
/// offset on malformed input.
[[nodiscard]] inline value parse(std::string_view text) {
  return detail::parser(text).parse_document();
}

}  // namespace inplace::util::json
