#pragma once
// Deterministic, fast pseudo-random number generation for tests and
// benchmark workload sampling.  We avoid <random>'s distributions in hot
// paths: benchmarks draw millions of matrix extents and need reproducible
// streams across compilers, which std distributions do not guarantee.

#include <cstdint>
#include <limits>

namespace inplace::util {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
/// Deterministic across platforms; passes BigCrush; 2^256-1 period.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors: avoids the
    // all-zero state and decorrelates nearby seeds.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi) using Lemire's unbiased multiply-shift
  /// rejection method.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t range = hi - lo;
    // Fast path: multiply-high maps a 64-bit draw onto [0, range) with a
    // rejection zone of size (2^64 mod range) to remove modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace inplace::util
