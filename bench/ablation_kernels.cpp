// Ablation for the hot-path kernel layer (cpu/kernels/): what the
// vectorized tiers (SIMD gathers, software prefetch, non-temporal
// streaming stores) buy over the portable scalar loops on working sets
// that exceed the last-level cache — the regime the tentpole targets.
//
// Two gates, both independent of absolute machine speed:
//   1. bit-exactness: the forced-scalar and native-tier runs of every
//      shape must produce identical buffers (the kernels are pure
//      permutations; any divergence is a correctness bug, not noise);
//   2. speedup: on at least one shape whose working set is >= the probed
//      L3 size, the native tier must be >= 1.2x the forced-scalar tier.
//      The bar is set by the memory wall, not ambition: on the committed
//      baseline host the native tier runs the best >L3 shape at ~10 GB/s
//      — the machine's single-core DRAM bandwidth — so the scalar
//      baseline is itself only ~1.25-1.3x away from the roof and no
//      end-to-end number above that is honestly reachable (per-stage,
//      the rotation kernels reach ~1.35x; the JSON telemetry carries the
//      stage spans).  1.2x sits outside the +-8% run-to-run noise of a
//      shared VM while still far above any regression signature seen in
//      development (broken dispatch reads 1.0x, NT misuse 0.4-0.9x).
//      The gate is skipped (exit 0, with a note in the JSON) when the
//      native tier IS scalar (no vector ISA compiled/available, or
//      INPLACE_FORCE_KERNEL_TIER=scalar) and when --scale shrinks every
//      shape below L3 (the ctest smoke run: bit-exactness still checked,
//      timing noise not trusted).
//
// Beware measuring memcpy instead of the engines: glibc's memcpy already
// switches to non-temporal stores for huge copies, so the gate times
// whole in-place transposes (gathers + rotations + copy-backs), where
// the scalar/vector contrast is real work, not a libc rematch.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/executor.hpp"
#include "cpu/kernels/kernel_set.hpp"
#include "util/bench_harness.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

/// Best-of-reps milliseconds per tier for one in-place transpose of
/// m x n doubles.  The scalar and native reps interleave (S N S N ...)
/// so that slow machine-level drift — noisy neighbors on shared hosts
/// dwarf the effect under test — cancels out of the ratio instead of
/// landing entirely on whichever tier ran last; within the interleaved
/// series each tier takes its *minimum*, because interference noise is
/// strictly additive and the minimum estimates the uninterfered run.
struct tier_pair_ms {
  double scalar_ms = 0.0;
  double native_ms = 0.0;
};
tier_pair_ms run_pair_ms(std::uint64_t m, std::uint64_t n,
                         kernels::tier native, int reps,
                         std::vector<double>& buf) {
  options scalar_opts;
  scalar_opts.kernel = kernels::tier::scalar;
  transposer<double> scalar_tr(static_cast<std::size_t>(m),
                               static_cast<std::size_t>(n),
                               storage_order::row_major, scalar_opts);
  options native_opts;
  native_opts.kernel = native;
  transposer<double> native_tr(static_cast<std::size_t>(m),
                               static_cast<std::size_t>(n),
                               storage_order::row_major, native_opts);
  std::vector<double> scalar_ms;
  std::vector<double> native_ms;
  for (int r = 0; r < reps; ++r) {
    util::fill_iota(std::span<double>(buf));
    util::timer sclk;
    scalar_tr(buf.data());
    scalar_ms.push_back(sclk.seconds() * 1e3);
    util::fill_iota(std::span<double>(buf));
    util::timer nclk;
    native_tr(buf.data());
    native_ms.push_back(nclk.seconds() * 1e3);
  }
  return {*std::min_element(scalar_ms.begin(), scalar_ms.end()),
          *std::min_element(native_ms.begin(), native_ms.end())};
}

/// One transpose with tier `t` from an iota start; returns the buffer
/// for the bit-exactness comparison.
std::vector<double> result_of(std::uint64_t m, std::uint64_t n,
                              kernels::tier t) {
  std::vector<double> buf(static_cast<std::size_t>(m * n));
  util::fill_iota(std::span<double>(buf));
  options opts;
  opts.kernel = t;
  transposer<double> tr(static_cast<std::size_t>(m),
                        static_cast<std::size_t>(n),
                        storage_order::row_major, opts);
  tr(buf.data());
  return buf;
}

/// Shrinks a row count by --scale while keeping at least a few blocks.
std::uint64_t scaled_rows(std::uint64_t rows, double scale) {
  if (scale >= 1.0) {
    return rows;
  }
  const auto scaled =
      static_cast<std::uint64_t>(static_cast<double>(rows) * scale);
  return std::max<std::uint64_t>(scaled, 64);
}

/// scaled_rows for the in-register tile probes: rounded up to a lane
/// multiple (16 covers every tier's f64 lane width) and floored high
/// enough that m / lanes > n keeps the tile gate engaged, so even the
/// smoke run's bit-exactness pass goes through the ladder kernels.
std::uint64_t scaled_tile_rows(std::uint64_t rows, double scale) {
  const std::uint64_t scaled =
      std::max<std::uint64_t>(scaled_rows(rows, scale), 1024);
  return (scaled + 15) / 16 * 16;
}

/// One tile-probe transpose of m x n doubles with the given options,
/// from an iota start; returns the buffer for bit-exactness checks.
std::vector<double> result_with(std::uint64_t m, std::uint64_t n,
                                const options& opts) {
  std::vector<double> buf(static_cast<std::size_t>(m * n));
  util::fill_iota(std::span<double>(buf));
  transposer<double> tr(static_cast<std::size_t>(m),
                        static_cast<std::size_t>(n),
                        storage_order::row_major, opts);
  tr(buf.data());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "ablation_kernels",
      "vectorized kernel tiers (SIMD gathers + prefetch + NT stores) vs "
      "forced-scalar on >L3 working sets",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Ablation: hot-path kernel dispatch layer",
      "native tier >= 1.2x forced-scalar on at least one >L3 shape, "
      "bit-identical results");

  const kernels::tier native = kernels::resolve_tier(kernels::tier::automatic);
  const std::size_t l3 = kernels::probed_caches().l3_bytes;
  std::printf("native tier: %s, probed L3: %.1f MiB\n\n",
              kernels::tier_name(native),
              static_cast<double>(l3) / (1024.0 * 1024.0));
  rep.note("native_tier", kernels::tier_name(native));
  rep.note("l3_bytes", static_cast<double>(l3));

  // All >= the probed L3 in doubles.  8191x5120: coprime (8191 prime), so
  // the column shuffle's strided gathers carry the whole pass — the
  // vpgather MLP win.  16384x2560: gcd-rich and tall, so the pre-rotation
  // (coarse cycle following + fine indexed gathers) dominates — the
  // rotation-kernel win, and the shape expected to clear the speedup
  // gate.  2621440x16: skinny engine, whole "rows" of two cache lines —
  // not expected to clear the gate; it pins the small-copy streaming
  // guard (per-row fenced NT copy-backs once made this shape 2.6x
  // *slower*).  --scale shrinks the row counts for smoke runs.
  struct shape {
    std::uint64_t m, n;
  };
  const shape bases[] = {{8191, 5120}, {16384, 2560}, {2621440, 16}};
  const int reps = static_cast<int>(cfg.samples(5, 3));

  bool bit_exact = true;
  bool any_gated = false;
  bool gate_met = false;
  std::printf("  %-14s %10s %12s %12s %9s %6s\n", "shape", "MiB",
              "scalar ms", "native ms", "speedup", "gated");
  for (const shape& base : bases) {
    const std::uint64_t m = scaled_rows(base.m, cfg.scale);
    const std::uint64_t n = base.n;
    const std::size_t bytes =
        static_cast<std::size_t>(m * n) * sizeof(double);
    const bool gated = native != kernels::tier::scalar && bytes >= l3;

    // Bit-exactness first (also warms the buffers/page tables).
    {
      const std::vector<double> got_scalar =
          result_of(m, n, kernels::tier::scalar);
      const std::vector<double> got_native = result_of(m, n, native);
      if (std::memcmp(got_scalar.data(), got_native.data(),
                      bytes) != 0) {
        std::fprintf(stderr,
                     "FAIL %llux%llu: native tier result differs from "
                     "forced-scalar\n",
                     static_cast<unsigned long long>(m),
                     static_cast<unsigned long long>(n));
        bit_exact = false;
      }
    }

    std::vector<double> buf(static_cast<std::size_t>(m * n));
    const tier_pair_ms pair = run_pair_ms(m, n, native, reps, buf);
    const double scalar_ms = pair.scalar_ms;
    const double native_ms = pair.native_ms;
    const double speedup = scalar_ms / native_ms;
    std::printf("  %6llux%-7llu %10.1f %12.1f %12.1f %8.2fx %6s\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n),
                static_cast<double>(bytes) / (1024.0 * 1024.0), scalar_ms,
                native_ms, speedup, gated ? "yes" : "no");
    rep.add_sample("scalar_ms", "ms", scalar_ms,
                   /*higher_is_better=*/false);
    rep.add_sample("native_ms", "ms", native_ms,
                   /*higher_is_better=*/false);
    rep.add_sample("speedup", "x", speedup);
    if (gated) {
      any_gated = true;
      if (speedup >= 1.2) {
        gate_met = true;
      }
    }
  }

  // --- in-register tile probes -------------------------------------------
  //
  // The Fig. 7/8/9 regime at the kernel layer: tall AoS<->SoA problems
  // (small struct sizes n, millions of records m) where the skinny
  // engine's chunk decomposition hands whole register tiles to the
  // vpunpck/vpermd ladders.  Foil = the SAME native tier with the tile
  // knob off (options::tile_mode::off), so the contrast isolates the
  // in-register pass fusion from plain SIMD dispatch; bit-exactness is
  // still checked against forced-scalar.  Gate: >= 1.25x on >= 2 of the
  // 3 probe shapes, armed only at full scale (all probes >= L3 and
  // tiled); the smoke run keeps the bit-exactness sweep.
  const shape tile_bases[] = {{2621440, 16}, {5242880, 8}, {10485760, 4}};
  bool tile_bit_exact = true;
  int tile_gated = 0;
  int tile_hits = 0;
  std::printf("\n  in-register tile vs scratch-chunk foil (f64 AoS<->SoA)\n");
  std::printf("  %-14s %10s %12s %12s %9s %6s\n", "shape", "MiB",
              "foil ms", "tile ms", "speedup", "gated");
  for (const shape& base : tile_bases) {
    const std::uint64_t m = scaled_tile_rows(base.m, cfg.scale);
    const std::uint64_t n = base.n;
    const std::size_t bytes =
        static_cast<std::size_t>(m * n) * sizeof(double);
    options tile_opts;  // native tier, tile automatic
    options foil_opts;
    foil_opts.tile = options::tile_mode::off;
    transposer<double> tile_tr(static_cast<std::size_t>(m),
                               static_cast<std::size_t>(n),
                               storage_order::row_major, tile_opts);
    transposer<double> foil_tr(static_cast<std::size_t>(m),
                               static_cast<std::size_t>(n),
                               storage_order::row_major, foil_opts);
    const bool tiled = tile_tr.plan().tile_block != 0;
    const bool gated = tiled && bytes >= l3;

    {
      options scalar_opts;
      scalar_opts.kernel = kernels::tier::scalar;
      const std::vector<double> got_scalar = result_with(m, n, scalar_opts);
      const std::vector<double> got_tile = result_with(m, n, tile_opts);
      if (std::memcmp(got_scalar.data(), got_tile.data(), bytes) != 0) {
        std::fprintf(stderr,
                     "FAIL %llux%llu: in-register tile result differs "
                     "from forced-scalar\n",
                     static_cast<unsigned long long>(m),
                     static_cast<unsigned long long>(n));
        tile_bit_exact = false;
      }
    }

    // Interleaved best-of-reps, same drift-cancelling discipline as the
    // scalar/native pair above.
    std::vector<double> buf(static_cast<std::size_t>(m * n));
    double tile_ms = 0.0;
    double foil_ms = 0.0;
    {
      std::vector<double> tile_samples;
      std::vector<double> foil_samples;
      for (int r = 0; r < reps; ++r) {
        util::fill_iota(std::span<double>(buf));
        util::timer fclk;
        foil_tr(buf.data());
        foil_samples.push_back(fclk.seconds() * 1e3);
        util::fill_iota(std::span<double>(buf));
        util::timer tclk;
        tile_tr(buf.data());
        tile_samples.push_back(tclk.seconds() * 1e3);
      }
      foil_ms = *std::min_element(foil_samples.begin(), foil_samples.end());
      tile_ms = *std::min_element(tile_samples.begin(), tile_samples.end());
    }
    const double speedup = foil_ms / tile_ms;
    std::printf("  %7llux%-6llu %10.1f %12.1f %12.1f %8.2fx %6s\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(n),
                static_cast<double>(bytes) / (1024.0 * 1024.0), foil_ms,
                tile_ms, speedup, gated ? "yes" : "no");
    rep.add_sample("tile_foil_ms", "ms", foil_ms,
                   /*higher_is_better=*/false);
    rep.add_sample("tile_ms", "ms", tile_ms, /*higher_is_better=*/false);
    rep.add_sample("tile_speedup", "x", speedup);
    if (gated) {
      ++tile_gated;
      if (speedup >= 1.25) {
        ++tile_hits;
      }
    }
  }
  const int tile_shapes =
      static_cast<int>(sizeof(tile_bases) / sizeof(tile_bases[0]));
  const bool tile_gate_applicable = tile_gated == tile_shapes;
  const bool tile_gate_met = tile_hits >= 2;

  rep.note("bit_exact", bit_exact);
  rep.note("gate_applicable", any_gated);
  rep.note("gate_met", gate_met);
  rep.note("tile_bit_exact", tile_bit_exact);
  rep.note("tile_gate_applicable", tile_gate_applicable);
  rep.note("tile_gate_met", tile_gate_met);
  rep.note("tile_gate_hits", static_cast<double>(tile_hits));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();

  if (!bit_exact || !tile_bit_exact) {
    std::fprintf(stderr,
                 "ablation_kernels: tier divergence — kernel correctness "
                 "regression\n");
    return 1;
  }
  if (tile_gate_applicable && !tile_gate_met) {
    std::fprintf(stderr,
                 "ablation_kernels: in-register tile cleared 1.25x on only "
                 "%d of %d probe shapes (need 2) — tile perf regression\n",
                 tile_hits, tile_shapes);
    return 1;
  }
  if (!tile_gate_applicable) {
    std::printf("\ntile speedup gate skipped (%s)\n",
                tile_gated == 0 && cfg.scale < 1.0
                    ? "probe shapes below L3 at this --scale"
                    : "in-register tile not engaged on every probe shape");
  }
  if (!any_gated) {
    std::printf(
        "\nspeedup gate skipped (%s)\n",
        native == kernels::tier::scalar
            ? "native tier is scalar; nothing to compare"
            : "all shapes below L3 at this --scale; timing not trusted");
    return 0;
  }
  if (!gate_met) {
    std::fprintf(stderr,
                 "ablation_kernels: no >L3 shape reached 1.2x — vector "
                 "kernel perf regression\n");
    return 1;
  }
  std::printf("\nspeedup gate met (>= 1.2x on a >L3 shape)\n");
  return 0;
}
