// Reproduces Figures 4 and 5: the C2R and R2C performance landscapes over
// the (m, n) extent plane, rendered as ASCII heatmaps.
//
// Paper setup: 250000 row-major float arrays, m,n in [1000, 25000], Tesla
// K20c; 10-26 GB/s.  Shape claims: C2R has a high-performing band at
// small n (a row fits on chip); R2C has the mirror band at small m (a
// column fits on chip); performance is otherwise fairly flat.
//
// Here: a grid sweep at laptop scale.  "On chip" is the L1/L2 cache, so
// the bands appear where the short dimension keeps the per-row/column
// working set cache resident.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/transpose.hpp"
#include "util/ascii_plot.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/matrix.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace inplace;

double measure(direction dir, std::uint64_t m, std::uint64_t n,
               std::vector<float>& buf, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    buf.resize(m * n);
    util::fill_iota(std::span<float>(buf));
    options opts;
    util::timer clk;
    // Figures 4-5 study each permutation in isolation: run the raw
    // C2R/R2C permutation on the m x n view (no heuristic, no swap).
    const transpose_plan plan =
        make_directed_plan(buf.data(), m, n, dir, opts, sizeof(float));
    detail::execute_plan(buf.data(), plan);
    best = std::max(best, util::transpose_throughput_gbs(
                              m, n, sizeof(float), clk.seconds()));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "fig4_fig5_landscape",
      "K20c: 10-26 GB/s; C2R fast band at small n, R2C fast band at small "
      "m, C2R/R2C symmetric",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "Figures 4-5 (C2R / R2C performance landscapes)",
      "K20c: 10-26 GB/s; C2R fast band at small n, R2C fast band at small "
      "m, C2R/R2C symmetric");

  const std::size_t grid = cfg.samples(12, 6);
  const int reps = 3;
  const std::uint64_t lo = 128;
  const std::uint64_t hi = 3072;
  std::vector<std::uint64_t> sizes(grid);
  for (std::size_t k = 0; k < grid; ++k) {
    sizes[k] = lo + (hi - lo) * k / (grid - 1);
  }
  std::printf("grid: %zux%zu, m,n in [%llu, %llu], 32-bit elements\n\n",
              grid, grid, static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));

  std::vector<double> c2r_grid(grid * grid);
  std::vector<double> r2c_grid(grid * grid);
  std::vector<float> buf;
  for (std::size_t r = 0; r < grid; ++r) {    // rows of the heatmap: m
    for (std::size_t c = 0; c < grid; ++c) {  // cols of the heatmap: n
      c2r_grid[r * grid + c] =
          measure(direction::c2r, sizes[r], sizes[c], buf, reps);
      r2c_grid[r * grid + c] =
          measure(direction::r2c, sizes[r], sizes[c], buf, reps);
    }
  }

  std::printf("%s\n",
              util::heatmap(c2r_grid, grid, grid,
                            "[Fig 4] C2R GB/s (rows: m small->large top->"
                            "bottom; cols: n)")
                  .c_str());
  std::printf("%s\n",
              util::heatmap(r2c_grid, grid, grid,
                            "[Fig 5] R2C GB/s (same axes)")
                  .c_str());

  // Quantify the bands: compare the narrow-side average against the bulk.
  auto band_ratio = [&](const std::vector<double>& g, bool narrow_cols) {
    std::vector<double> band;
    std::vector<double> bulk;
    for (std::size_t r = 0; r < grid; ++r) {
      for (std::size_t c = 0; c < grid; ++c) {
        const bool in_band = narrow_cols ? c == 0 : r == 0;
        (in_band ? band : bulk).push_back(g[r * grid + c]);
      }
    }
    return util::median(band) / util::median(bulk);
  };
  const double c2r_band = band_ratio(c2r_grid, true);
  const double r2c_band = band_ratio(r2c_grid, false);
  std::printf("shape check: C2R narrow-n band vs bulk: %.2fx (paper: high "
              "band on the left)\n",
              c2r_band);
  std::printf("shape check: R2C narrow-m band vs bulk: %.2fx (paper: high "
              "band on top)\n",
              r2c_band);

  // Section 5.2's heuristic: max(C2R, R2C) by shape.
  std::vector<double> heuristic(grid * grid);
  std::size_t heuristic_optimal = 0;
  for (std::size_t r = 0; r < grid; ++r) {
    for (std::size_t c = 0; c < grid; ++c) {
      const bool pick_c2r = sizes[r] > sizes[c];
      const double h =
          pick_c2r ? c2r_grid[r * grid + c] : r2c_grid[r * grid + c];
      heuristic[r * grid + c] = h;
      if (h >= 0.90 * std::max(c2r_grid[r * grid + c],
                               r2c_grid[r * grid + c])) {
        ++heuristic_optimal;
      }
    }
  }
  std::printf("heuristic (m>n -> C2R) within 10%% of the better direction "
              "on %zu/%zu cells\n",
              heuristic_optimal, grid * grid);

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("m", "n", "c2r_gbs", "r2c_gbs");
    for (std::size_t r = 0; r < grid; ++r) {
      for (std::size_t c = 0; c < grid; ++c) {
        csv.row(sizes[r], sizes[c], c2r_grid[r * grid + c],
                r2c_grid[r * grid + c]);
      }
    }
  }

  rep.add_series("c2r_landscape_gbs", "GB/s", c2r_grid);
  rep.add_series("r2c_landscape_gbs", "GB/s", r2c_grid);
  rep.add_series("heuristic_gbs", "GB/s", heuristic);
  rep.add_sample("c2r_band_over_bulk", "ratio", c2r_band);
  rep.add_sample("r2c_band_over_bulk", "ratio", r2c_band);
  rep.note("grid", static_cast<std::uint64_t>(grid));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
