// GPU-model reproduction of the paper's absolute numbers: the analytic
// device model (memsim/device_model.hpp) predicts end-to-end transpose
// throughput on Tesla-K20c parameters for every GPU experiment —
// Table 2, the Figure 4/5 landscape bands, and Figure 7's medians —
// complementing the measured-CPU benches with magnitude checks that the
// build host cannot provide.

#include <cstdio>
#include <vector>

#include "baselines/sung_tiled.hpp"
#include "memsim/device_model.hpp"
#include "util/bench_harness.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace inplace;
  const auto cfg = util::parse_bench_args(argc, argv);
  util::bench_report rep(
      "gpu_model_predictions",
      "K20c medians GB/s: Sung(f32) 5.33 | C2R(f32) 14.23 | C2R(f64) "
      "19.53 | skinny median 34.3 / max 51",
      cfg);
  telemetry::collector coll;
  telemetry::scoped_sink sink_guard(&coll);
  util::print_banner(
      "GPU device-model predictions (Table 2, Figs. 4-7 magnitudes)",
      "K20c medians GB/s: Sung(f32) 5.33 | C2R(f32) 14.23 | C2R(f64) "
      "19.53 | skinny median 34.3 / max 51");

  // --- Table 2 / Figure 6 -------------------------------------------------
  const std::size_t samples = cfg.samples(400);
  util::xoshiro256 rng(1);
  std::vector<double> sung;
  std::vector<double> c2r_f32;
  std::vector<double> c2r_f64;
  for (std::size_t t = 0; t < samples; ++t) {
    const auto m = rng.uniform(1000, 20000);
    const auto n = rng.uniform(1000, 20000);
    const auto tiles = baselines::choose_tiles(m, n);
    sung.push_back(memsim::predict_tiled(
                       m, n, tiles.well_tiled ? tiles.tile_rows : 1,
                       tiles.well_tiled ? tiles.tile_cols : 1, 4)
                       .throughput_gbs);
    c2r_f32.push_back(memsim::predict_heuristic(m, n, 4).throughput_gbs);
    c2r_f64.push_back(memsim::predict_heuristic(m, n, 8).throughput_gbs);
  }
  std::printf("[Table 2, modelled] %zu arrays, m,n ~ U[1000,20000)\n",
              samples);
  std::printf("  %-24s %10s %10s\n", "implementation", "paper", "model");
  std::printf("  %-24s %10.2f %10.2f\n", "Sung [6] (float)", 5.33,
              util::median(sung));
  std::printf("  %-24s %10.2f %10.2f\n", "C2R (float)", 14.23,
              util::median(c2r_f32));
  std::printf("  %-24s %10.2f %10.2f\n", "C2R (double)", 19.53,
              util::median(c2r_f64));
  std::printf("  ratios: f64/f32 = %.2f (paper 1.37), C2R/Sung = %.2f "
              "(paper 2.67)\n\n",
              util::median(c2r_f64) / util::median(c2r_f32),
              util::median(c2r_f32) / util::median(sung));

  // --- Figures 4-5 bands ----------------------------------------------------
  // The paper's landscapes run 10-26 GB/s with a fast band where the
  // short dimension keeps rows on chip.
  std::vector<double> small_n;
  std::vector<double> bulk;
  for (std::size_t t = 0; t < samples; ++t) {
    const auto m = rng.uniform(1000, 25000);
    const auto n = rng.uniform(1000, 25000);
    const double g = memsim::predict_c2r(m, n, 4).throughput_gbs;
    (n < 3000 ? small_n : bulk).push_back(g);
  }
  std::printf("[Figs 4-5, modelled] C2R landscape: bulk median %.1f GB/s "
              "(paper: 10-26 GB/s range)\n",
              util::median(bulk));
  std::printf("  small-n band median %.1f GB/s -> band/bulk = %.2fx\n\n",
              util::median(small_n),
              util::median(small_n) / util::median(bulk));

  // --- Figure 7 ---------------------------------------------------------------
  std::vector<double> skinny;
  for (std::size_t t = 0; t < samples; ++t) {
    const auto fields = rng.uniform(2, 32);
    const auto count = rng.uniform(10'000, 10'000'000);
    skinny.push_back(
        memsim::predict_skinny(count, fields, 8).throughput_gbs);
  }
  std::printf("[Fig 7, modelled] AoS->SoA conversions (64-bit fields)\n");
  std::printf("  %-24s %10s %10s\n", "", "paper", "model");
  std::printf("  %-24s %10.1f %10.2f\n", "median GB/s", 34.3,
              util::median(skinny));
  std::printf("  %-24s %10.1f %10.2f\n", "max GB/s", 51.0,
              util::max_value(skinny));
  std::printf("  %-24s %10.1f %10.2f\n", "vs general median (19.5)", 1.76,
              util::median(skinny) / util::median(c2r_f64));

  if (cfg.csv_path) {
    util::csv_writer csv(*cfg.csv_path);
    csv.row("series", "median_gbs");
    csv.row("sung_f32", util::median(sung));
    csv.row("c2r_f32", util::median(c2r_f32));
    csv.row("c2r_f64", util::median(c2r_f64));
    csv.row("skinny_f64", util::median(skinny));
  }

  rep.add_series("model_sung_f32_gbs", "GB/s", sung);
  rep.add_series("model_c2r_f32_gbs", "GB/s", c2r_f32);
  rep.add_series("model_c2r_f64_gbs", "GB/s", c2r_f64);
  rep.add_series("model_skinny_f64_gbs", "GB/s", skinny);
  rep.add_series("model_landscape_small_n_gbs", "GB/s", small_n);
  rep.add_series("model_landscape_bulk_gbs", "GB/s", bulk);
  rep.note("sampled_arrays", static_cast<std::uint64_t>(samples));
  rep.attach_telemetry(coll, INPLACE_TELEMETRY_ENABLED != 0);
  rep.write();
  return 0;
}
